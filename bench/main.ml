(* Benchmark harness: regenerates every table and figure of the paper.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig10 -- one experiment
     dune exec bench/main.exe -- --buffer 2MB -- override the Fig.10/11 buffer
     dune exec bench/main.exe -- --quick      -- trim the slow sweeps
     dune exec bench/main.exe -- --json       -- time the DSE engine
                                                 (seq vs parallel) and
                                                 write BENCH_dse.json
     dune exec bench/main.exe -- --smoke      -- tiny-op smoke of the
                                                 bench machinery (also
                                                 `dune build @bench-smoke`)
     dune exec bench/main.exe -- --service    -- replay the service
                                                 fixture (cache on vs
                                                 off), run the socket
                                                 fault drill, and write
                                                 BENCH_service.json
     dune exec bench/main.exe -- --socket-smoke -- socket fault drill
                                                 only: concurrent
                                                 clients + slow loris +
                                                 mid-batch disconnect
                                                 against the live
                                                 daemon (also part of
                                                 `dune build
                                                 @service-smoke`)
     dune exec bench/main.exe -- --bnb-smoke   -- branch-and-bound vs
                                                 exhaustive on the
                                                 paper fixtures: fails
                                                 if B&B ever misses the
                                                 optimum or spends more
                                                 than 10% of the
                                                 enumeration's cost
                                                 evaluations (also part
                                                 of `dune build
                                                 @bench-smoke`)
     dune exec bench/main.exe -- --nest-smoke -- projective-nest mapper
                                                 vs exhaustive on the
                                                 beyond-matmul zoo
                                                 (conv2d, batched MM,
                                                 GQA, attention pair):
                                                 fails if B&B misses
                                                 the optimum or stops
                                                 pruning (also part of
                                                 `dune build
                                                 @nest-smoke`)
     dune exec bench/main.exe -- --model      -- whole-model planner
                                                 bench: fixtures vs
                                                 exhaustive + a random
                                                 graph soak, results to
                                                 BENCH_model.json
     dune exec bench/main.exe -- --model-smoke -- short strict version
                                                 (also `dune build
                                                 @model-smoke`)
     dune exec bench/main.exe -- --load       -- load generator against
                                                 the live socket server:
                                                 closed-loop p50/p99
                                                 latency, streaming
                                                 throughput, and the
                                                 warm-vs-cold store hit
                                                 rate, merged into
                                                 BENCH_service.json
     dune exec bench/main.exe -- --load-smoke -- short strict version of
                                                 --load (cold/warm
                                                 byte-identity + hit-rate
                                                 gates only; part of
                                                 `dune build
                                                 @store-smoke`)
     dune exec bench/main.exe -- --obs-smoke  -- observability drill:
                                                 2-shard routed replay
                                                 with tracing, debug
                                                 logging and a live
                                                 fleet Prometheus
                                                 exporter — transcripts
                                                 must stay
                                                 byte-identical, the
                                                 per-process traces
                                                 must merge into one
                                                 valid timeline, and
                                                 the fleet metrics
                                                 response must equal
                                                 the shard-wise merge
                                                 (also `dune build
                                                 @obs-smoke`)
     dune exec bench/main.exe -- --store-smoke -- persistence drill:
                                                 1-shard router fleet
                                                 with a store, kill -9,
                                                 warm restart, 2-shard
                                                 replay, plus torn-tail
                                                 and CRC-corruption
                                                 recovery — all held to
                                                 the golden transcript
                                                 (also `dune build
                                                 @store-smoke`)
     dune exec bench/main.exe -- --oracle      -- differential-oracle
                                                 soak: 5000 seeded
                                                 cases (1000 with
                                                 --quick), results to
                                                 BENCH_oracle.json
                                                 (short version: `dune
                                                 build @oracle-smoke`)

   Experiments: table1 table2 table3 example fig9 fig10 fig11 fig12
   energy ablation softmax hierarchy contention gqa chains speed;
   --csv DIR exports figure data *)

let usage () =
  print_endline
    "usage: main.exe [--only \
     table1|table2|table3|example|fig4|fig9|fig10|fig11|fig12|energy|ablation|softmax|hierarchy|speed] [--buffer \
     <size>] [--quick] [--json] [--smoke] [--service] [--socket-smoke] \
     [--bnb-smoke] [--nest-smoke] [--oracle] [--model] [--model-smoke] \
     [--load] [--load-smoke] [--store-smoke] [--obs-smoke] [--trace FILE]";
  exit 1

type options = {
  only : string option;
  buffer : Fusecu_loopnest.Buffer.t;
  quick : bool;
  csv_dir : string option;
  json : bool;
  smoke : bool;
  service : bool;
  socket_smoke : bool;
  bnb_smoke : bool;
  nest_smoke : bool;
  oracle : bool;
  model : bool;
  model_smoke : bool;
  load : bool;
  load_smoke : bool;
  store_smoke : bool;
  obs_smoke : bool;
  trace : string option;
}

(* --oracle: a long differential-conformance soak (much larger than the
   @oracle-smoke alias), with the run parameters and outcome written to
   BENCH_oracle.json so soak results can be tracked over time. Exits
   non-zero on any divergence, like the CLI. *)
let oracle_soak ~quick () =
  let open Fusecu_util in
  let cases = if quick then 1000 else 5000 in
  let seed = 7 in
  let t0 = Unix.gettimeofday () in
  let report = Fusecu_oracle.Oracle.run ~cases ~seed () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Fusecu_oracle.Oracle.pp_report report;
  Printf.printf "soak: %.1f s (%.0f cases/s)\n" elapsed
    (float_of_int cases /. elapsed);
  let tally kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs) in
  let json =
    Json.Obj
      [ ("cases", Json.Int report.Fusecu_oracle.Oracle.cases);
        ("seed", Json.Int seed);
        ("max_dim", Json.Int 24);
        ("checks", Json.Int report.Fusecu_oracle.Oracle.checks);
        ("divergences",
         Json.Int (List.length report.Fusecu_oracle.Oracle.counterexamples));
        ("elapsed_s", Json.Float elapsed);
        ("by_shape", tally report.Fusecu_oracle.Oracle.by_shape);
        ("by_regime", tally report.Fusecu_oracle.Oracle.by_regime);
        ("counterexamples",
         Json.List
           (List.map
              (fun (ce : Fusecu_oracle.Oracle.counterexample) ->
                Json.String (Fusecu_oracle.Problem.to_spec ce.shrunk))
              report.Fusecu_oracle.Oracle.counterexamples)) ]
  in
  Out_channel.with_open_text "BENCH_oracle.json" (fun oc ->
      output_string oc (Json.print_hum json ^ "\n"));
  print_endline "wrote BENCH_oracle.json";
  if report.Fusecu_oracle.Oracle.counterexamples <> [] then exit 1

let parse_args () =
  let only = ref None and buffer = ref Experiments.default_buffer in
  let quick = ref false and csv_dir = ref None in
  let json = ref false and smoke = ref false and service = ref false in
  let socket_smoke = ref false and bnb_smoke = ref false in
  let nest_smoke = ref false in
  let oracle = ref false in
  let model = ref false and model_smoke = ref false in
  let load = ref false and load_smoke = ref false in
  let store_smoke = ref false and obs_smoke = ref false in
  let trace = ref None in
  let rec loop = function
    | [] -> ()
    | "--only" :: tag :: rest ->
      only := Some tag;
      loop rest
    | "--buffer" :: size :: rest ->
      (match Fusecu_util.Units.parse_bytes size with
      | Ok bytes -> buffer := Fusecu_loopnest.Buffer.make bytes
      | Error e ->
        prerr_endline e;
        usage ());
      loop rest
    | "--quick" :: rest ->
      quick := true;
      loop rest
    | "--json" :: rest ->
      json := true;
      loop rest
    | "--smoke" :: rest ->
      smoke := true;
      loop rest
    | "--service" :: rest ->
      service := true;
      loop rest
    | "--socket-smoke" :: rest ->
      socket_smoke := true;
      loop rest
    | "--bnb-smoke" :: rest ->
      bnb_smoke := true;
      loop rest
    | "--nest-smoke" :: rest ->
      nest_smoke := true;
      loop rest
    | "--oracle" :: rest ->
      oracle := true;
      loop rest
    | "--model" :: rest ->
      model := true;
      loop rest
    | "--model-smoke" :: rest ->
      model_smoke := true;
      loop rest
    | "--load" :: rest ->
      load := true;
      loop rest
    | "--load-smoke" :: rest ->
      load_smoke := true;
      loop rest
    | "--store-smoke" :: rest ->
      store_smoke := true;
      loop rest
    | "--obs-smoke" :: rest ->
      obs_smoke := true;
      loop rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      loop rest
    | "--trace" :: file :: rest ->
      trace := Some file;
      loop rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ()
  in
  loop (List.tl (Array.to_list Sys.argv));
  { only = !only; buffer = !buffer; quick = !quick; csv_dir = !csv_dir;
    json = !json; smoke = !smoke; service = !service;
    socket_smoke = !socket_smoke; bnb_smoke = !bnb_smoke;
    nest_smoke = !nest_smoke; oracle = !oracle;
    model = !model; model_smoke = !model_smoke; load = !load;
    load_smoke = !load_smoke; store_smoke = !store_smoke;
    obs_smoke = !obs_smoke; trace = !trace }

let () =
  let { only; buffer; quick; csv_dir; json; smoke; service; socket_smoke;
        bnb_smoke; nest_smoke; oracle; model; model_smoke; load; load_smoke;
        store_smoke; obs_smoke; trace } =
    parse_args ()
  in
  (* --trace FILE: profile whatever runs below and write a Chrome
     trace-event JSON on exit (at_exit covers every early-exit path).
     [Speed.write_json] manages its own collection window, so --json
     runs also get a file without double-starting. *)
  (match trace with
  | None -> ()
  | Some file ->
    if not json then Fusecu_util.Trace.start ();
    at_exit (fun () ->
        Fusecu_util.Trace.stop ();
        Fusecu_util.Trace.export file));
  if smoke then begin
    Speed.smoke ();
    exit 0
  end;
  if socket_smoke then begin
    Service_replay.socket_smoke ();
    exit 0
  end;
  if bnb_smoke then begin
    Speed.bnb_smoke ();
    exit 0
  end;
  if nest_smoke then begin
    Nest_bench.smoke ();
    exit 0
  end;
  if oracle then begin
    oracle_soak ~quick ();
    exit 0
  end;
  if model then begin
    Model_bench.write_json ~quick ();
    exit 0
  end;
  if model_smoke then begin
    Model_bench.smoke ();
    exit 0
  end;
  if store_smoke then begin
    (* must run before anything touches the global domain pool: the
       drill forks a shard fleet, and forking a process with live
       worker domains is undefined *)
    Store_drill.run ~fixture:(Service_replay.resolve_fixture ()) ();
    exit 0
  end;
  if obs_smoke then begin
    (* forks fleets too: same before-the-pool rule as --store-smoke *)
    Obs_drill.run ~fixture:(Service_replay.resolve_fixture ()) ();
    exit 0
  end;
  if load_smoke then begin
    Load.smoke ();
    exit 0
  end;
  if load then begin
    let rows = Load.run ~quick () in
    Service_replay.write_json ~load:rows ();
    exit 0
  end;
  if service then begin
    Service_replay.write_json ();
    exit 0
  end;
  if json then begin
    Speed.write_json
      ~nest:(List.map Nest_bench.row_json (Nest_bench.rows ()))
      ();
    exit 0
  end;
  let run tag f =
    match only with
    | Some t when t <> tag -> ()
    | _ -> f ()
  in
  run "table1" Experiments.table1;
  run "table2" Experiments.table2;
  run "table3" Experiments.table3;
  run "example" Experiments.example;
  run "fig4" Experiments.fig4;
  run "fig9" (fun () ->
      if quick then Experiments.run_fig9_quick () else Experiments.fig9 ());
  run "fig10" (fun () -> Experiments.fig10 ~buf:buffer ());
  run "fig11" (fun () -> Experiments.fig11 ~buf:buffer ());
  run "fig12" Experiments.fig12;
  run "energy" (fun () -> Experiments.energy ~buf:buffer ());
  run "ablation" (fun () -> Experiments.ablation ~buf:buffer ());
  run "softmax" (fun () -> Experiments.softmax ~buf:buffer ());
  run "hierarchy" Experiments.hierarchy;
  run "contention" (fun () -> Experiments.contention ~buf:buffer ());
  run "gqa" (fun () -> Experiments.gqa ~buf:buffer ());
  run "chains" (fun () -> Experiments.chains ~buf:buffer ());
  run "speed" (fun () -> if not quick then Speed.run ());
  Option.iter (fun dir -> Experiments.export_csv ~buf:buffer ~dir ()) csv_dir
