(* The @store-smoke drill: persistence and sharding against the golden
   transcript.

   Router leg (real processes, forked before any domain pool exists):
   a 1-shard fleet with a persistent store replays the fixture, is
   killed with SIGKILL, restarted on the same store, and replayed
   again — the warm transcript must match the cold one byte for byte
   on every non-control line (stats counters legitimately differ warm:
   recovered entries turn misses into hits). A 2-shard fleet replays
   the same fixture and must produce the identical non-control
   transcript, exercising consistent-hash placement and in-order
   reassembly.

   Store leg (in-process, deterministic damage): the fixture replayed
   through an engine with a store; then the store file is truncated at
   arbitrary byte positions — every torn tail a kill -9 could leave —
   and recovery must keep a clean prefix of records and still replay
   the golden bytes. A corrupted CRC likewise severs the tail. *)

open Fusecu_util
open Fusecu_service

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let golden_path = "test/fixtures/service_responses.golden"

let resolve p = if Sys.file_exists p then p else Filename.concat ".." p

let is_control_line line =
  match Json.parse line with
  | Ok r -> (
    match Json.member "op" r with
    | Some (Json.String ("stats" | "shutdown" | "metrics")) -> true
    | _ -> false)
  | Error _ -> false

let non_control = List.filter (fun l -> not (is_control_line l))

let check what expected actual =
  if expected <> actual then begin
    List.iteri
      (fun i (e, a) ->
        if e <> a then
          Printf.eprintf "store drill: %s line %d:\n  expected %s\n  got      %s\n"
            what i e a)
      (try List.combine expected actual with Invalid_argument _ -> []);
    failwith
      (Printf.sprintf "store drill: %s diverged (%d vs %d lines)" what
         (List.length expected) (List.length actual))
  end

(* ------------------------------------------------------------------ *)
(* Router fleet leg                                                    *)

let spawn_fleet ~dir ~shards ~store =
  let make_engine i =
    let store =
      if not store then None
      else
        let path = Filename.concat dir (Printf.sprintf "shard-%d.store" i) in
        match Store.open_ ~path with
        | Ok s -> Some s
        | Error e -> failwith e
    in
    Engine.create ?store (Engine.default_config ())
  in
  let server_config =
    { Server.max_conns = 16; idle_timeout = 30.; max_line = 1 lsl 20 }
  in
  List.init shards (fun i ->
      Router.spawn_shard ~make_engine
        ~socket:(Filename.concat dir (Printf.sprintf "shard-%d.sock" i))
        ~server_config i)

let await_fleet children =
  List.iter
    (fun (c : Router.child) ->
      if not (Router.wait_for_socket c.socket) then
        failwith ("store drill: shard socket never appeared: " ^ c.socket))
    children

let route_replay ~requests children =
  let tmp_in = Filename.temp_file "fusecu_route" ".in" in
  let tmp_out = Filename.temp_file "fusecu_route" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove tmp_in with Sys_error _ -> ());
      try Sys.remove tmp_out with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin tmp_in (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) requests);
      In_channel.with_open_bin tmp_in (fun input ->
          Out_channel.with_open_bin tmp_out (fun output ->
              Router.run
                ~backends:(List.map (fun (c : Router.child) -> c.socket) children)
                ~input ~output ()));
      read_lines tmp_out)

let router_leg ~fixture () =
  let requests = read_lines fixture in
  let golden = read_lines (resolve golden_path) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_drill_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* cold 1-shard fleet with stores *)
      let fleet = spawn_fleet ~dir ~shards:1 ~store:true in
      await_fleet fleet;
      let cold = route_replay ~requests fleet in
      check "router cold vs golden (non-control)" (non_control golden)
        (non_control cold);
      (* kill -9: no drain, no store close — the write-behind flusher
         dies wherever it happens to be *)
      List.iter
        (fun (c : Router.child) ->
          Unix.kill c.pid Sys.sigkill;
          ignore (Unix.waitpid [] c.pid);
          (* SIGKILL skips the server's unlink; clear the socket path
             so the restarted shard can bind it *)
          try Unix.unlink c.socket with Unix.Unix_error _ -> ())
        fleet;
      (* restart on the same stores: warm replay, byte-identical *)
      let fleet2 = spawn_fleet ~dir ~shards:1 ~store:true in
      await_fleet fleet2;
      let warm = route_replay ~requests fleet2 in
      (* the restarted shard's registry must surface what recovery
         found: a quiet scrape (moves no deterministic counter) shows
         the loaded-record count from the kill-9 crash image *)
      (match Router.scrape_metrics (List.hd fleet2).Router.socket with
      | Error e -> failwith ("store drill: warm scrape failed: " ^ e)
      | Ok dump ->
        let loaded =
          match Json.member "counters" dump with
          | Some (Json.Obj kvs) -> (
            match List.assoc_opt "store_records_loaded" kvs with
            | Some (Json.Int n) -> n
            | _ -> 0)
          | _ -> 0
        in
        if loaded = 0 then
          failwith
            "store drill: kill-9 restart registered no store_records_loaded");
      Router.stop_children fleet2;
      check "router warm-after-kill vs cold (non-control)" (non_control cold)
        (non_control warm);
      let store_file = Filename.concat dir "shard-0.store" in
      (match Store.open_ ~path:store_file with
      | Error e -> failwith e
      | Ok s ->
        let rec_ = Store.recovered s in
        Store.close s;
        if rec_.Store.records = 0 then
          failwith "store drill: kill-9 left an empty store";
        Printf.printf
          "store drill: kill-9 store recovered %d records (%d dropped)\n"
          rec_.Store.records rec_.Store.dropped_records);
      (* 2-shard fleet, no stores: same non-control transcript *)
      let fleet3 = spawn_fleet ~dir ~shards:2 ~store:false in
      await_fleet fleet3;
      let sharded = route_replay ~requests fleet3 in
      Router.stop_children fleet3;
      check "router 2-shard vs golden (non-control)" (non_control golden)
        (non_control sharded);
      Printf.printf
        "store drill: 1-shard cold, kill-9 warm restart, and 2-shard replays \
         all match the golden (%d planning lines)\n"
        (List.length (non_control golden)))

(* ------------------------------------------------------------------ *)
(* Deterministic damage leg                                            *)

let replay_with_store ~requests store_path =
  let store =
    match Store.open_ ~path:store_path with
    | Ok s -> s
    | Error e -> failwith e
  in
  let engine = Engine.create ~store (Engine.default_config ()) in
  let responses = Engine.handle_lines engine requests in
  let recovered = List.length (Store.recovered store).Store.entries in
  Store.flush store;
  Store.close store;
  (responses, recovered)

let damage_leg ~fixture () =
  let requests = read_lines fixture in
  let golden = read_lines (resolve golden_path) in
  let store_path = Filename.temp_file "fusecu_drill" ".store" in
  Sys.remove store_path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove store_path with Sys_error _ -> ())
    (fun () ->
      let cold, recovered0 = replay_with_store ~requests store_path in
      if recovered0 <> 0 then failwith "store drill: fresh store not empty";
      check "engine cold vs golden" golden cold;
      let pristine =
        In_channel.with_open_bin store_path In_channel.input_all
      in
      let total = String.length pristine in
      if total = 0 then failwith "store drill: cold run wrote nothing";
      let write_store s =
        Out_channel.with_open_bin store_path (fun oc ->
            Out_channel.output_string oc s)
      in
      let count_records () =
        match Store.open_ ~path:store_path with
        | Error e -> failwith e
        | Ok s ->
          let n = List.length (Store.recovered s).Store.entries in
          Store.close s;
          n
      in
      let full = count_records () in
      (* torn tails: truncate at every prefix length across the last
         two records plus a spread over the whole file — recovery must
         never lose more than the damaged tail, and the warm replay
         must stay golden byte for byte (stats excluded: warm hits). *)
      let cuts =
        List.filter
          (fun c -> c > 0 && c < total)
          (List.concat
             [ List.init 40 (fun i -> total - 1 - (i * 7));
               List.init 10 (fun i -> (i + 1) * total / 11) ])
      in
      List.iter
        (fun cut ->
          write_store (String.sub pristine 0 cut);
          let n = count_records () in
          if n > full then
            failwith "store drill: truncation grew the store?";
          let warm, recovered = replay_with_store ~requests store_path in
          if recovered <> n then
            failwith "store drill: warm load does not match recovery count";
          check
            (Printf.sprintf "warm-after-truncate@%d vs golden (non-control)" cut)
            (non_control golden) (non_control warm))
        cuts;
      (* corrupted CRC in the middle: the damaged record and everything
         after it are dropped; the clean prefix still warms golden *)
      let mid = total / 2 in
      let flipped = Bytes.of_string pristine in
      Bytes.set flipped mid
        (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x01));
      write_store (Bytes.to_string flipped);
      let n_corrupt = count_records () in
      if n_corrupt >= full then
        failwith "store drill: CRC corruption went undetected";
      let warm, _ = replay_with_store ~requests store_path in
      check "warm-after-corruption vs golden (non-control)"
        (non_control golden) (non_control warm);
      Printf.printf
        "store drill: %d truncations + 1 CRC flip recovered cleanly (%d \
         records intact -> %d after mid-file corruption)\n"
        (List.length cuts) full n_corrupt)

let run ~fixture () =
  (* fork the fleet before anything touches the global domain pool *)
  router_leg ~fixture ();
  damage_leg ~fixture ();
  print_endline "store drill: ok"
