(* The @obs-smoke drill: distributed observability must cost zero bytes.

   A 2-shard router fleet replays the service fixture twice — once
   plain, once with every observability surface live at once: tracing
   in the router and both shards, debug logging everywhere, a router
   metrics registry, and the fleet Prometheus exporter being scraped
   concurrently over TCP for the whole replay. Every planning line must
   agree byte for byte, the stats fan-out must agree except for the
   connection-lifecycle counters the scrapes' own connections bump, and
   the planning lines must equal the single-server golden — DESIGN.md
   §6b's no-perturbation rule, extended across process boundaries.

   The instrumented pass then has to prove the observability actually
   observed something: the per-process Chrome traces (router +
   shard-0 + shard-1) must merge into one well-formed timeline whose
   backend spans carry the router-stamped trace contexts, and the
   in-band fleet metrics response must be exactly the {!Fleet} merge of
   the per-shard snapshots it itself carries under "shards". *)

open Fusecu_util
open Fusecu_service

let read_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let golden_path = "test/fixtures/service_responses.golden"

let resolve p = if Sys.file_exists p then p else Filename.concat ".." p

let response_op line =
  match Json.parse line with
  | Ok r -> (
    match Json.member "op" r with Some (Json.String op) -> Some op | _ -> None)
  | Error _ -> None

let is_control line =
  match response_op line with
  | Some ("stats" | "metrics" | "shutdown") -> true
  | _ -> false

let non_control = List.filter (fun l -> not (is_control l))

(* Out-of-band quiet scrapes move no tick and no request counter, but
   they are real connections: the servers' conns_accepted/conns_closed
   legitimately observe them. Strip exactly those two counters so the
   stats comparison pins everything else to byte equality. *)
let rec strip_conns = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "conns_accepted" || k = "conns_closed" then None
           else Some (k, strip_conns v))
         fields)
  | Json.List l -> Json.List (List.map strip_conns l)
  | x -> x

let normalize_stats line =
  match Json.parse line with
  | Ok j -> Json.print (strip_conns j)
  | Error _ -> line

let check what expected actual =
  if expected <> actual then begin
    List.iteri
      (fun i (e, a) ->
        if e <> a then
          Printf.eprintf "obs drill: %s line %d:\n  expected %s\n  got      %s\n"
            what i e a)
      (try List.combine expected actual with Invalid_argument _ -> []);
    failwith
      (Printf.sprintf "obs drill: %s diverged (%d vs %d lines)" what
         (List.length expected) (List.length actual))
  end

(* ------------------------------------------------------------------ *)
(* Fleet plumbing                                                      *)

let spawn_fleet ~dir ~shards ~trace =
  let make_engine _ = Engine.create (Engine.default_config ()) in
  let server_config =
    { Server.max_conns = 16; idle_timeout = 30.; max_line = 1 lsl 20 }
  in
  List.init shards (fun i ->
      let trace_file =
        if trace then
          Some (Filename.concat dir (Printf.sprintf "shard-%d.json" i))
        else None
      in
      Router.spawn_shard ?trace:trace_file ~make_engine
        ~socket:(Filename.concat dir (Printf.sprintf "shard-%d.sock" i))
        ~server_config i)

let await_fleet children =
  List.iter
    (fun (c : Router.child) ->
      if not (Router.wait_for_socket c.socket) then
        failwith ("obs drill: shard socket never appeared: " ^ c.socket))
    children

let route_replay ?metrics ~requests children =
  let tmp_in = Filename.temp_file "fusecu_obs" ".in" in
  let tmp_out = Filename.temp_file "fusecu_obs" ".out" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove tmp_in with Sys_error _ -> ());
      try Sys.remove tmp_out with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin tmp_in (fun oc ->
          List.iter (fun l -> output_string oc (l ^ "\n")) requests);
      In_channel.with_open_bin tmp_in (fun input ->
          Out_channel.with_open_bin tmp_out (fun output ->
              Router.run ?metrics
                ~backends:(List.map (fun (c : Router.child) -> c.socket) children)
                ~input ~output ()));
      read_lines tmp_out)

(* ------------------------------------------------------------------ *)
(* Merged-trace validation                                             *)

let looks_like_tc = function
  | Json.String s ->
    String.length s >= 4
    && s.[0] = 'r'
    && String.contains s '.'
    && String.for_all (fun c -> c = 'r' || c = '.' || (c >= '0' && c <= '9')) s
  | _ -> false

let validate_merged_trace ~router_pid ~child_pids merged =
  let events =
    match Json.member "traceEvents" merged with
    | Some (Json.List evs) -> evs
    | _ -> failwith "obs drill: merged trace has no traceEvents list"
  in
  let field ev k = Json.member k ev in
  let pid_of ev =
    match field ev "pid" with Some (Json.Int p) -> Some p | _ -> None
  in
  let name_of ev =
    match field ev "name" with Some (Json.String n) -> Some n | _ -> None
  in
  (* every process contributed events under its real pid *)
  List.iter
    (fun pid ->
      if not (List.exists (fun ev -> pid_of ev = Some pid) events) then
        failwith
          (Printf.sprintf "obs drill: merged trace has no events for pid %d" pid))
    (router_pid :: child_pids);
  (* process lanes are named: one metadata event per process *)
  let lanes =
    List.filter_map
      (fun ev ->
        match (field ev "ph", name_of ev, field ev "args") with
        | Some (Json.String "M"), Some "process_name", Some args -> (
          match Json.member "name" args with
          | Some (Json.String n) -> Some n
          | _ -> None)
        | _ -> None)
      events
  in
  List.iter
    (fun lane ->
      if not (List.mem lane lanes) then
        failwith ("obs drill: merged trace is missing the " ^ lane ^ " lane"))
    [ "router"; "shard-0"; "shard-1" ];
  (* the router's pipeline spans are present *)
  List.iter
    (fun span ->
      if not (List.exists (fun ev -> name_of ev = Some span) events) then
        failwith ("obs drill: merged trace has no " ^ span ^ " span"))
    [ "router.enqueue"; "router.route"; "router.reassemble" ];
  (* backend spans opened under router-stamped trace contexts, in both
     shards: cross-process propagation end to end *)
  List.iter
    (fun pid ->
      let stamped =
        List.exists
          (fun ev ->
            pid_of ev = Some pid
            &&
            match field ev "args" with
            | Some args -> (
              match Json.member "tc" args with
              | Some tc -> looks_like_tc tc
              | None -> false)
            | None -> false)
          events
      in
      if not stamped then
        failwith
          (Printf.sprintf
             "obs drill: no span in shard pid %d carries a propagated trace \
              context"
             pid))
    child_pids;
  (* timestamps are merged into one non-decreasing timeline (metadata
     events lead) *)
  let ts_of ev =
    match field ev "ts" with
    | Some (Json.Float t) -> Some t
    | Some (Json.Int t) -> Some (float_of_int t)
    | _ -> None
  in
  let rec monotonic last = function
    | [] -> ()
    | ev :: rest -> (
      match ts_of ev with
      | None -> monotonic last rest
      | Some t ->
        if t < last then failwith "obs drill: merged trace is not time-sorted";
        monotonic t rest)
  in
  monotonic neg_infinity
    (List.filter
       (fun ev -> field ev "ph" <> Some (Json.String "M"))
       events);
  List.length events

(* ------------------------------------------------------------------ *)
(* Fleet-metrics self-consistency                                      *)

(* The fleet metrics response carries the raw per-shard snapshots it
   was merged from; recomputing the merge from them must reproduce the
   response exactly (counter sums, bucket-wise histograms, gauge sums,
   the router-owned uptime_ticks). *)
let validate_fleet_metrics line =
  let result =
    match Json.parse line with
    | Ok r -> (
      match Json.member "result" r with
      | Some res -> res
      | None -> failwith "obs drill: metrics response has no result")
    | Error e -> failwith ("obs drill: metrics response unparsable: " ^ e)
  in
  let shard_dumps =
    match Json.member "shards" result with
    | Some (Json.List rows) ->
      List.map
        (fun row ->
          match Json.member "result" row with
          | Some dump -> dump
          | None -> failwith "obs drill: shards row has no result")
        rows
    | _ -> failwith "obs drill: fleet metrics has no shards breakdown"
  in
  if List.length shard_dumps <> 2 then
    failwith "obs drill: expected 2 per-shard metric snapshots";
  let uptime =
    match Json.member "gauges" result with
    | Some gauges -> (
      match Json.member "uptime_ticks" gauges with
      | Some (Json.Float u) -> int_of_float u
      | Some (Json.Int u) -> u
      | _ -> failwith "obs drill: fleet metrics has no uptime_ticks gauge")
    | None -> failwith "obs drill: fleet metrics has no gauges"
  in
  match Fleet.merge_metrics ~uptime_ticks:uptime shard_dumps with
  | Error e -> failwith ("obs drill: fleet merge failed: " ^ e)
  | Ok expected ->
    if Json.print expected <> Json.print result then
      failwith
        "obs drill: fleet metrics response is not the merge of its own \
         per-shard snapshots"

(* ------------------------------------------------------------------ *)

let scrape_exporter port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let buf = Buffer.create 4096 and scratch = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd scratch 0 (Bytes.length scratch) with
        | 0 -> Buffer.contents buf
        | n ->
          Buffer.add_subbytes buf scratch 0 n;
          drain ()
      in
      drain ())

let run ~fixture () =
  let requests = read_lines fixture @ [ "{\"op\":\"metrics\",\"id\":990}" ] in
  let golden = read_lines (resolve golden_path) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_obs_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* pass A: plain 2-shard replay, nothing instrumented *)
      let fleet_a = spawn_fleet ~dir ~shards:2 ~trace:false in
      await_fleet fleet_a;
      let plain = route_replay ~requests fleet_a in
      Router.stop_children fleet_a;
      check "plain 2-shard vs golden (non-control)" (non_control golden)
        (non_control plain);
      (* pass B: everything on at once. Debug level is set before the
         fork so the children inherit it; spawn_shard tags their
         records with the shard index. *)
      Log.set_level (Some Log.Debug);
      let fleet_b = spawn_fleet ~dir ~shards:2 ~trace:true in
      await_fleet fleet_b;
      let sockets = List.map (fun (c : Router.child) -> c.socket) fleet_b in
      Trace.start ();
      let router_metrics = Metrics.create () in
      let exporter =
        Server.start_metrics_exporter
          ~render:(fun () ->
            Router.fleet_prometheus_render ~metrics:router_metrics ~sockets ())
          ~addr:"127.0.0.1:0"
      in
      let port = Server.exporter_port exporter in
      let scraping = Atomic.make true in
      let scrapes = ref [] in
      let scraper =
        Thread.create
          (fun () ->
            while Atomic.get scraping do
              (try scrapes := scrape_exporter port :: !scrapes
               with Unix.Unix_error _ | Failure _ -> ());
              Thread.delay 0.02
            done)
          ()
      in
      let instrumented =
        Fun.protect
          ~finally:(fun () ->
            Atomic.set scraping false;
            Thread.join scraper;
            Server.stop_metrics_exporter exporter)
          (fun () ->
            let out = route_replay ~metrics:router_metrics ~requests fleet_b in
            (* one guaranteed scrape while the fleet is still up *)
            scrapes := scrape_exporter port :: !scrapes;
            out)
      in
      Trace.stop ();
      let router_pid = Unix.getpid () in
      Trace.export ~pid:router_pid ~process_name:"router"
        (Filename.concat dir "router.json");
      Router.stop_children fleet_b;
      Log.set_level None;
      (* zero perturbation: every planning byte identical; the stats
         fan-out identical except the connection-lifecycle counters the
         concurrent scrapes legitimately bump; the metrics line excluded
         outright (its latency histograms measure wall time) *)
      check "instrumented vs plain (planning lines)" (non_control plain)
        (non_control instrumented);
      check "instrumented vs plain (stats, sans conn counters)"
        (List.filter_map
           (fun l ->
             if response_op l = Some "stats" then Some (normalize_stats l)
             else None)
           plain)
        (List.filter_map
           (fun l ->
             if response_op l = Some "stats" then Some (normalize_stats l)
             else None)
           instrumented);
      check "instrumented vs golden (non-control)" (non_control golden)
        (non_control instrumented);
      (* the concurrent scrapes really happened and really were fleet
         expositions *)
      let scrape_count = List.length !scrapes in
      if scrape_count = 0 then failwith "obs drill: exporter was never scraped";
      let contains hay needle =
        let hn = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= hn && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      let last_scrape = List.hd !scrapes in
      List.iter
        (fun needle ->
          if not (contains last_scrape needle) then
            failwith (Printf.sprintf "obs drill: exposition lacks %S" needle))
        [ "fusecu_router_requests"; "shard=\"0\""; "shard=\"1\"" ];
      (* merge the three per-process profiles and validate the timeline *)
      let parts =
        List.map
          (fun f ->
            let path = Filename.concat dir f in
            match Json.parse (In_channel.with_open_text path In_channel.input_all) with
            | Ok j -> j
            | Error e -> failwith ("obs drill: " ^ path ^ ": " ^ e))
          [ "router.json"; "shard-0.json"; "shard-1.json" ]
      in
      let merged =
        match Trace.merge_chrome parts with
        | Ok m -> m
        | Error e -> failwith ("obs drill: trace merge failed: " ^ e)
      in
      let child_pids = List.map (fun (c : Router.child) -> c.pid) fleet_b in
      let n_events = validate_merged_trace ~router_pid ~child_pids merged in
      (* the in-band fleet metrics line is the merge of its own shards *)
      (match List.rev instrumented with
      | last :: _ -> validate_fleet_metrics last
      | [] -> failwith "obs drill: empty instrumented transcript");
      Printf.printf
        "obs drill: instrumented 2-shard replay byte-identical (%d planning \
         lines), %d concurrent scrapes, merged trace has %d events across 3 \
         process lanes, fleet metrics = shard-wise merge\n"
        (List.length (non_control golden))
        scrape_count n_events;
      print_endline "obs drill: ok")
