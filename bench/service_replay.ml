(* Replay the checked-in service fixture through the batch engine and
   record cache effectiveness in BENCH_service.json, next to
   BENCH_dse.json.

   The replay doubles as a correctness gate: the same stream is run with
   the plan cache enabled and disabled, and every planning response must
   be byte-identical (only the [stats] lines may differ — with the cache
   off its counters are legitimately different). A hit rate of zero also
   fails: the fixture contains deliberate repeats, symmetric transposes
   and re-spelled buffer sizes, so a cold cache means canonicalization
   broke. *)

open Fusecu_util
open Fusecu_service

let default_fixture = "test/fixtures/service_requests.ndjson"

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let is_stats_line line =
  match Json.parse line with
  | Ok r -> Json.member "op" r = Some (Json.String "stats")
  | Error _ -> false

let replay ~cache_enabled lines =
  let config =
    { (Engine.default_config ()) with
      cache_enabled;
      cache_entries = (if cache_enabled then 4096 else 0) }
  in
  let engine = Engine.create config in
  let t0 = Unix.gettimeofday () in
  let responses = Engine.handle_lines engine lines in
  let elapsed = Unix.gettimeofday () -. t0 in
  (responses, Engine.cache_stats engine, elapsed)

let write_json ?(fixture = default_fixture) ?(path = "BENCH_service.json") () =
  let lines = read_lines fixture in
  let cached, stats, elapsed_cached = replay ~cache_enabled:true lines in
  let uncached, _, elapsed_uncached = replay ~cache_enabled:false lines in
  let strip = List.filter (fun l -> not (is_stats_line l)) in
  let identical = strip cached = strip uncached in
  let hit_rate = Cache.hit_rate stats in
  if not identical then
    failwith "service replay: cache-on and cache-off responses differ";
  if not (hit_rate > 0.) then
    failwith "service replay: cache hit rate is zero on a fixture with repeats";
  let json =
    Json.Obj
      [ ("fixture", Json.String fixture);
        ("domains", Json.Int (Pool.size (Pool.get_global ())));
        ("requests", Json.Int (List.length lines));
        ("responses", Json.Int (List.length cached));
        ( "cache",
          Json.Obj
            [ ("hits", Json.Int stats.Cache.hits);
              ("misses", Json.Int stats.Cache.misses);
              ("evictions", Json.Int stats.Cache.evictions);
              ("entries", Json.Int stats.Cache.entries);
              ("hit_rate", Json.Float hit_rate) ] );
        ("identical_with_cache_off", Json.Bool identical);
        ("elapsed_cached_s", Json.Float elapsed_cached);
        ("elapsed_uncached_s", Json.Float elapsed_uncached) ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.print_hum json ^ "\n"));
  Printf.printf
    "service replay: %d requests, hit rate %.3f, cache on/off identical; wrote %s\n"
    (List.length lines) hit_rate path
