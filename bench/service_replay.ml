(* Replay the checked-in service fixture through the batch engine and
   record cache effectiveness in BENCH_service.json, next to
   BENCH_dse.json.

   The replay doubles as a correctness gate: the same stream is run with
   the plan cache enabled and disabled, and every planning response must
   be byte-identical (only the [stats] lines may differ — with the cache
   off its counters are legitimately different). A hit rate of zero also
   fails: the fixture contains deliberate repeats, symmetric transposes
   and re-spelled buffer sizes, so a cold cache means canonicalization
   broke.

   [socket_drill] additionally pushes the fixture through the concurrent
   socket server under fault injection (slow loris, mid-batch
   disconnect, backpressure) and records the served-connection and
   timeout counters; [socket_smoke] is its standalone entry point behind
   `dune build @service-smoke`. *)

open Fusecu_util
open Fusecu_service

let default_fixture = "test/fixtures/service_requests.ndjson"

(* `dune exec bench/main.exe` runs from the project root, but the
   @service-smoke alias rule runs from bench/ — accept either. *)
let resolve_fixture () =
  if Sys.file_exists default_fixture then default_fixture
  else Filename.concat ".." default_fixture

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      go [])

let is_stats_line line =
  match Json.parse line with
  | Ok r -> Json.member "op" r = Some (Json.String "stats")
  | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Socket fault drill                                                  *)

(* Drive the real concurrent [Server.serve_socket] accept loop the way
   misbehaving production traffic would: several concurrent fast
   clients replaying the fixture, one slow-loris connection that must
   be evicted by the idle timeout, and one client that disconnects
   mid-batch without reading. Asserts byte-determinism (every fast
   client gets the sequential golden transcript) and returns the
   connection-lifecycle counters for BENCH_service.json. *)

let drill_config =
  { Server.max_conns = 2 (* below the client count: exercises backpressure *);
    idle_timeout = 0.5;
    max_line = 64 * 1024 }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let recv_lines fd =
  let buf = Buffer.create 4096 in
  let scratch = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf scratch 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

let exchange path lines =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      send_all fd (String.concat "\n" lines ^ "\n");
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      recv_lines fd)

let is_control_line line =
  match Json.parse line with
  | Ok r -> (
    match Json.member "op" r with
    | Some (Json.String ("stats" | "shutdown")) -> true
    | _ -> false)
  | Error _ -> false

let socket_drill ?(fixture = default_fixture) ?(clients = 4) () =
  (* stats responses legitimately differ once connections share the
     engine, so the drill replays only the planning traffic *)
  let requests =
    read_lines fixture |> List.filter (fun l -> not (is_control_line l))
  in
  let golden =
    Engine.handle_lines (Engine.create (Engine.default_config ())) requests
  in
  let engine = Engine.create (Engine.default_config ()) in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_bench_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let server =
    Thread.create
      (fun () -> Server.serve_socket engine ~config:drill_config ~path ())
      ()
  in
  let rec wait n =
    if n = 0 then failwith "socket drill: server did not come up";
    match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> ()
    | _ | (exception Unix.Unix_error (Unix.ENOENT, _, _)) ->
      Thread.delay 0.02;
      wait (n - 1)
  in
  wait 250;
  let t0 = Unix.gettimeofday () in
  (* fault injection: a slow loris (incomplete line, then silence) and a
     mid-batch disconnect (requests sent, connection closed unread) *)
  let loris = connect path in
  send_all loris "{\"op\":\"intra\",";
  let dropper = connect path in
  send_all dropper (String.concat "\n" (List.filteri (fun i _ -> i < 2) requests) ^ "\n");
  Unix.close dropper;
  let results = Array.make clients [] in
  let threads =
    List.init clients (fun i ->
        Thread.create (fun () -> results.(i) <- exchange path requests) ())
  in
  List.iter Thread.join threads;
  let mismatches = ref 0 in
  Array.iter
    (fun lines -> if lines <> golden then incr mismatches)
    results;
  (* wait out the loris eviction, then stop the daemon in-band *)
  ignore (recv_lines loris);
  (try Unix.close loris with Unix.Unix_error _ -> ());
  ignore (exchange path [ "{\"op\":\"shutdown\"}" ]);
  Thread.join server;
  let elapsed = Unix.gettimeofday () -. t0 in
  if !mismatches > 0 then
    failwith
      (Printf.sprintf
         "socket drill: %d of %d concurrent clients diverged from the \
          sequential golden transcript"
         !mismatches clients);
  if Sys.file_exists path then
    failwith "socket drill: socket file survived shutdown";
  let m = Engine.metrics engine in
  let counter name = (name, Json.Int (Metrics.get m name)) in
  ( Json.Obj
      [ ("clients", Json.Int clients);
        ("requests_per_client", Json.Int (List.length requests));
        ("max_conns", Json.Int drill_config.Server.max_conns);
        ("idle_timeout_s", Json.Float drill_config.Server.idle_timeout);
        ("deterministic_across_clients", Json.Bool (!mismatches = 0));
        counter "conns_accepted";
        counter "conns_closed";
        counter "conn_idle_timeouts";
        counter "conn_client_drops";
        counter "conn_oversized_lines";
        ("elapsed_s", Json.Float elapsed) ],
    Metrics.get m "conn_idle_timeouts" )

let socket_smoke () =
  let json, timeouts = socket_drill ~fixture:(resolve_fixture ()) () in
  if timeouts < 1 then
    failwith "socket drill: the slow-loris client was never timed out";
  print_endline ("socket drill: " ^ Json.print json)

let replay ~cache_enabled lines =
  let config =
    { (Engine.default_config ()) with
      cache_enabled;
      cache_entries = (if cache_enabled then 4096 else 0) }
  in
  let engine = Engine.create config in
  let t0 = Unix.gettimeofday () in
  let responses = Engine.handle_lines engine lines in
  let elapsed = Unix.gettimeofday () -. t0 in
  (responses, Engine.cache_stats engine, elapsed)

let write_json ?(fixture = default_fixture) ?(path = "BENCH_service.json")
    ?load () =
  let lines = read_lines fixture in
  let cached, stats, elapsed_cached = replay ~cache_enabled:true lines in
  let uncached, _, elapsed_uncached = replay ~cache_enabled:false lines in
  let strip = List.filter (fun l -> not (is_stats_line l)) in
  let identical = strip cached = strip uncached in
  let hit_rate = Cache.hit_rate stats in
  if not identical then
    failwith "service replay: cache-on and cache-off responses differ";
  if not (hit_rate > 0.) then
    failwith "service replay: cache hit rate is zero on a fixture with repeats";
  let connections, _ = socket_drill ~fixture () in
  let json =
    Json.Obj
      [ ("fixture", Json.String fixture);
        ("domains", Json.Int (Pool.size (Pool.get_global ())));
        ("requests", Json.Int (List.length lines));
        ("responses", Json.Int (List.length cached));
        ( "cache",
          Json.Obj
            [ ("hits", Json.Int stats.Cache.hits);
              ("misses", Json.Int stats.Cache.misses);
              ("evictions", Json.Int stats.Cache.evictions);
              ("entries", Json.Int stats.Cache.entries);
              ("hit_rate", Json.Float hit_rate) ] );
        ("identical_with_cache_off", Json.Bool identical);
        ("connections", connections);
        ("elapsed_cached_s", Json.Float elapsed_cached);
        ("elapsed_uncached_s", Json.Float elapsed_uncached) ]
  in
  let json =
    match (load, json) with
    | Some l, Json.Obj fields -> Json.Obj (fields @ [ ("load", l) ])
    | _ -> json
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.print_hum json ^ "\n"));
  Printf.printf
    "service replay: %d requests, hit rate %.3f, cache on/off identical; wrote %s\n"
    (List.length lines) hit_rate path
