(* Optimizer wall-clock comparison (the paper's motivating claim:
   search-based DSE is time-consuming, the principles are one-shot),
   plus the sequential-vs-parallel DSE engine benchmark: every searched
   hot path (exhaustive search, per-class search, buffer sweep, fused
   search, workload eval) is timed on one domain and on the full pool.

   [run] prints a Bechamel table; [write_json] times the same tasks with
   a monotonic wall clock and writes BENCH_dse.json so the perf
   trajectory is tracked across commits; [smoke] runs tiny variants of
   everything once (and checks parallel = sequential) so the bench code
   cannot bit-rot. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse

(* bechamel's own [Bechamel.Monotonic_clock] measure shadows the raw
   clock module once [Bechamel] is opened — alias it first *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit
module Pool = Fusecu_util.Pool

let bert = Matmul.make ~name:"bert-proj" ~m:1024 ~k:768 ~l:768 ()

let buf = Buffer.of_kib 512

let attention_pair =
  Fused.make_pair_exn
    (Matmul.make ~name:"qk" ~m:1024 ~k:64 ~l:1024 ())
    (Matmul.make ~name:"sv" ~m:1024 ~k:1024 ~l:64 ())

(* ------------------------------------------------------------------ *)
(* The DSE engine tasks, parameterized by pool so each runs both ways  *)

type task = { name : string; run : pool:Pool.t -> unit }

let dse_tasks ~op ~buf ~pair ~fused_buf ~model ~sweep_bytes =
  let workload = Fusecu_workloads.Workload.of_model model in
  [ { name = "exhaustive-search";
      run = (fun ~pool -> ignore (Exhaustive.search ~pool op buf)) };
    { name = "best-per-class";
      run = (fun ~pool -> ignore (Exhaustive.best_per_class ~pool op buf)) };
    { name = "buffer-sweep";
      run = (fun ~pool -> ignore (Buffer_sweep.run ~pool op ~bytes:sweep_bytes)) };
    { name = "fused-search";
      run = (fun ~pool -> ignore (Fused_search.exhaustive ~pool pair fused_buf)) };
    { name = "workload-eval";
      run =
        (fun ~pool ->
          ignore
            (Fusecu_arch.Perf.eval_workload ~pool Fusecu_arch.Platform.fusecu buf
               workload)) } ]

let paper_tasks () =
  dse_tasks ~op:bert ~buf ~pair:attention_pair ~fused_buf:(Buffer.of_kib 64)
    ~model:Fusecu_workloads.Zoo.bert
    ~sweep_bytes:
      (Buffer_sweep.geometric ~from_bytes:(32 * 1024)
         ~to_bytes:(8 * 1024 * 1024) ~steps_per_octave:2 ())

let tiny_tasks () =
  dse_tasks
    ~op:(Matmul.make ~name:"tiny" ~m:64 ~k:48 ~l:36 ())
    ~buf:(Buffer.make 2048)
    ~pair:
      (Fused.make_pair_exn
         (Matmul.make ~name:"qk" ~m:16 ~k:4 ~l:16 ())
         (Matmul.make ~name:"sv" ~m:16 ~k:16 ~l:4 ()))
    ~fused_buf:(Buffer.make 512)
    ~model:
      (Fusecu_workloads.Model.make ~name:"tiny" ~batch:1 ~heads:2 ~seq:32
         ~hidden:32 ())
    ~sweep_bytes:(Buffer_sweep.geometric ~from_bytes:256 ~to_bytes:4096 ())

(* ------------------------------------------------------------------ *)
(* Wall-clock timing (monotonic; Sys.time would count CPU time across
   all domains and hide any parallel speedup)                          *)

let time_ns ?(repeats = 3) f =
  f ();
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Mclock.now () in
    f ();
    let dt = Int64.to_float (Int64.sub (Mclock.now ()) t0) in
    if dt < !best then best := dt
  done;
  !best

let pp_time ns =
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let measure_tasks ?repeats tasks =
  let pool = Pool.get_global () in
  (* On a one-domain pool the "parallel" run takes the sequential code
     path anyway, so timing it separately would launder measurement
     noise into a fake speedup column. Reuse the sequential timing and
     report the bypass honestly (the [pool_bypassed] JSON field). *)
  let bypassed = Pool.size pool = 1 in
  let rows =
    List.map
      (fun t ->
        let seq_ns = time_ns ?repeats (fun () -> t.run ~pool:Pool.sequential) in
        let par_ns =
          if bypassed then seq_ns
          else time_ns ?repeats (fun () -> t.run ~pool)
        in
        (t.name, seq_ns, par_ns))
      tasks
  in
  (rows, bypassed)

(* ------------------------------------------------------------------ *)
(* Branch-and-bound vs exhaustive: same optimum, a fraction of the
   cost evaluations. Each fixture runs both searches and records the
   counts; [bnb_check] is the smoke-level guard (optimality must hold
   exactly, evaluations must stay under 10% of the enumeration).       *)

type bnb_row = {
  bnb_task : string;
  traffic_bnb : int;
  traffic_exhaustive : int;
  evaluated : int;  (** B&B cost evaluations *)
  enumerated : int;  (** exhaustive cost evaluations on the same space *)
  nodes : int;
  pruned_bound : int;
  pruned_infeasible : int;
}

type bnb_fixture =
  | B_intra of Matmul.t * Buffer.t
  | B_fused of Fused.pair * Buffer.t

let bnb_fixtures () =
  [ ("bnb-bert-512k", B_intra (bert, buf));
    ("bnb-bert-64k", B_intra (bert, Buffer.of_kib 64));
    ("bnb-bert-8k", B_intra (bert, Buffer.of_kib 8));
    ("bnb-attention-fused-64k", B_fused (attention_pair, Buffer.of_kib 64)) ]

let bnb_rows ?(fixtures = bnb_fixtures ()) () =
  List.filter_map
    (fun (name, fixture) ->
      match fixture with
      | B_intra (op, b) -> (
        let seed =
          match Intra.optimize op b with
          | Ok p -> Some p.Intra.schedule
          | Error _ -> None
        in
        match
          (Bnb.search_with_stats ?seed op b,
           Exhaustive.search ~pool:Pool.sequential op b)
        with
        | (Some br, stats), Some er ->
          Some
            { bnb_task = name;
              traffic_bnb = br.Exhaustive.cost.Cost.total;
              traffic_exhaustive = er.Exhaustive.cost.Cost.total;
              evaluated = stats.Bnb.explored;
              enumerated = er.Exhaustive.explored;
              nodes = stats.Bnb.nodes;
              pruned_bound = stats.Bnb.pruned_bound;
              pruned_infeasible = stats.Bnb.pruned_infeasible }
        | _ -> None)
      | B_fused (pair, b) -> (
        match
          (Bnb.search_fused_with_stats pair b,
           Fused_search.exhaustive ~pool:Pool.sequential pair b)
        with
        | (Some br, stats), Some er ->
          Some
            { bnb_task = name;
              traffic_bnb = br.Fused_search.traffic;
              traffic_exhaustive = er.Fused_search.traffic;
              evaluated = stats.Bnb.explored;
              enumerated = er.Fused_search.explored;
              nodes = stats.Bnb.nodes;
              pruned_bound = stats.Bnb.pruned_bound;
              pruned_infeasible = stats.Bnb.pruned_infeasible }
        | _ -> None))
    fixtures

let bnb_ratio r = float_of_int r.evaluated /. float_of_int r.enumerated

let bnb_row_json r =
  let module Json = Fusecu_util.Json in
  Json.Obj
    [ ("task", Json.String r.bnb_task);
      ("traffic", Json.Int r.traffic_bnb);
      ("traffic_exhaustive", Json.Int r.traffic_exhaustive);
      ("explored", Json.Int r.evaluated);
      ("enumerated", Json.Int r.enumerated);
      ("ratio", Json.Float (bnb_ratio r));
      ("nodes", Json.Int r.nodes);
      ("pruned_bound", Json.Int r.pruned_bound);
      ("pruned_infeasible", Json.Int r.pruned_infeasible) ]

let bnb_check rows =
  if rows = [] then failwith "bnb: no fixture produced a result";
  List.iter
    (fun r ->
      Printf.printf
        "bnb: %-24s traffic %d (exhaustive %d), %d/%d evaluations (%.1f%%), \
         pruned %d+%d\n"
        r.bnb_task r.traffic_bnb r.traffic_exhaustive r.evaluated r.enumerated
        (100. *. bnb_ratio r)
        r.pruned_bound r.pruned_infeasible;
      if r.traffic_bnb > r.traffic_exhaustive then
        failwith
          (Printf.sprintf "bnb: %s: B&B traffic %d exceeds exhaustive %d"
             r.bnb_task r.traffic_bnb r.traffic_exhaustive);
      if r.traffic_bnb < r.traffic_exhaustive then
        failwith
          (Printf.sprintf
             "bnb: %s: B&B traffic %d below exhaustive %d (bound unsound?)"
             r.bnb_task r.traffic_bnb r.traffic_exhaustive);
      if 10 * r.evaluated > r.enumerated then
        failwith
          (Printf.sprintf
             "bnb: %s: %d evaluations is over 10%% of the %d enumerated"
             r.bnb_task r.evaluated r.enumerated))
    rows

let bnb_smoke () =
  bnb_check (bnb_rows ());
  print_endline "smoke: bnb = exhaustive optimum within the evaluation budget"

(* ------------------------------------------------------------------ *)
(* BENCH_dse.json                                                      *)

let write_json ?(path = "BENCH_dse.json") ?repeats ?(tasks = paper_tasks ())
    ?(bnb = bnb_rows ()) ?(nest = ([] : Fusecu_util.Json.t list)) () =
  let module Trace = Fusecu_util.Trace in
  let module Json = Fusecu_util.Json in
  (* Span durations must come from the same monotonic clock as the
     measurements; the default Trace clock is wall time. *)
  Trace.set_clock (fun () -> Int64.to_float (Mclock.now ()) /. 1e9);
  Trace.start ();
  Pool.reset_stats (Pool.get_global ());
  let domains = Pool.size (Pool.get_global ()) in
  let rows, pool_bypassed = measure_tasks ?repeats tasks in
  Trace.stop ();
  (* total recorded span time per phase (enumerate / evaluate / merge /
     pool), exact regardless of ring eviction *)
  let trace_json =
    Json.Obj
      (List.map
         (fun (s : Trace.cat_summary) ->
           ( s.cat,
             Json.Obj
               [ ("total_s", Json.Float s.total_s);
                 ("count", Json.Int s.count) ] ))
         (Trace.summary ()))
  in
  let pool_json = Pool.stats_json (Pool.get_global ()) in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"domains\": %d,\n  \"pool_bypassed\": %b,\n  \"tasks\": [\n"
    domains pool_bypassed;
  List.iteri
    (fun i (name, seq_ns, par_ns) ->
      Printf.fprintf oc
        "    {\"task\": %S, \"seq_ns\": %.0f, \"par_ns\": %.0f, \"speedup\": \
         %.3f}%s\n"
        name seq_ns par_ns (seq_ns /. par_ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"bnb\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n"
        (Json.print (bnb_row_json r))
        (if i = List.length bnb - 1 then "" else ","))
    bnb;
  Printf.fprintf oc "  ],\n  \"nest\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" (Json.print r)
        (if i = List.length nest - 1 then "" else ","))
    nest;
  Printf.fprintf oc "  ],\n  \"trace\": %s,\n  \"pool\": %s\n}\n"
    (Json.print trace_json) (Json.print pool_json);
  close_out oc;
  Printf.printf "wrote %s (%d domains):\n" path domains;
  List.iter
    (fun (name, seq_ns, par_ns) ->
      Printf.printf "  %-18s seq %-10s par %-10s speedup %.2fx\n" name
        (pp_time seq_ns) (pp_time par_ns) (seq_ns /. par_ns))
    rows

(* ------------------------------------------------------------------ *)
(* Smoke: run every task once on tiny inputs, check parallel results
   match sequential ones, and exercise the JSON writer                 *)

let smoke () =
  let tasks = tiny_tasks () in
  let pool = Pool.get_global () in
  List.iter
    (fun t ->
      t.run ~pool:Pool.sequential;
      t.run ~pool;
      Printf.printf "smoke: %-18s ok\n" t.name)
    tasks;
  let op = Matmul.make ~m:64 ~k:48 ~l:36 () in
  let b = Buffer.make 2048 in
  (match
     ( Exhaustive.search ~pool:Pool.sequential op b,
       Exhaustive.search ~pool op b )
   with
  | Some s, Some p
    when Schedule.equal s.schedule p.schedule
         && s.cost.Cost.total = p.cost.Cost.total && s.explored = p.explored ->
    Printf.printf "smoke: parallel search = sequential search (explored %d)\n"
      s.explored
  | _ -> failwith "smoke: parallel and sequential search disagree");
  let json = Filename.temp_file "fusecu_bench" ".json" in
  let tiny_bnb =
    bnb_rows
      ~fixtures:
        [ ("bnb-tiny", B_intra (op, b));
          ("bnb-tiny-fused",
           B_fused
             ( Fused.make_pair_exn
                 (Matmul.make ~name:"qk" ~m:16 ~k:4 ~l:16 ())
                 (Matmul.make ~name:"sv" ~m:16 ~k:16 ~l:4 ()),
               Buffer.make 512 )) ]
      ()
  in
  write_json ~path:json ~repeats:1 ~tasks ~bnb:tiny_bnb ();
  (* the file must parse and carry the embedded observability sections *)
  let contents = In_channel.with_open_text json In_channel.input_all in
  (match Fusecu_util.Json.parse contents with
  | Error e -> failwith ("smoke: BENCH_dse.json does not parse: " ^ e)
  | Ok obj ->
    List.iter
      (fun field ->
        if Fusecu_util.Json.member field obj = None then
          failwith ("smoke: BENCH_dse.json is missing \"" ^ field ^ "\""))
      [ "domains"; "pool_bypassed"; "tasks"; "bnb"; "nest"; "trace"; "pool" ]);
  Sys.remove json;
  Printf.printf "smoke: bench ok (%d domains)\n" (Pool.size pool)

(* ------------------------------------------------------------------ *)
(* Bechamel table: principles vs searched baselines, seq vs par        *)

let tests =
  let engine =
    List.concat_map
      (fun t ->
        [ Test.make
            ~name:(t.name ^ " (1 domain)")
            (Staged.stage (fun () -> t.run ~pool:Pool.sequential));
          Test.make
            ~name:
              (Printf.sprintf "%s (%d domains)" t.name
                 (Pool.size (Pool.get_global ())))
            (Staged.stage (fun () -> t.run ~pool:(Pool.get_global ()))) ])
      (paper_tasks ())
  in
  Test.make_grouped ~name:"optimizers"
    ([ Test.make ~name:"intra/principles (one-shot)"
         (Staged.stage (fun () -> ignore (Intra.optimize bert buf : _ result)));
       Test.make ~name:"intra/genetic-DSE (DAT proxy)"
         (Staged.stage (fun () ->
              ignore (Genetic.search bert buf : Exhaustive.result option)));
       Test.make ~name:"fusion/principles (one-shot)"
         (Staged.stage (fun () ->
              ignore (Fusion.plan_pair attention_pair buf : _ result)));
       Test.make ~name:"fusion/genetic-DSE (DAT proxy)"
         (Staged.stage (fun () ->
              ignore
                (Fused_search.genetic attention_pair buf
                  : Fused_search.result option))) ]
    @ engine)

let run () =
  Printf.printf "\n=== Optimizer timing (Bechamel) ===\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !rows in
  let t = Fusecu_util.Table.create [ "Optimizer"; "time/run"; "vs fastest" ] in
  let fastest = match sorted with (_, ns) :: _ -> ns | [] -> 1. in
  let t =
    Fusecu_util.Table.add_rows t
      (List.map
         (fun (name, ns) ->
           [ name; pp_time ns; Printf.sprintf "%.0fx" (ns /. fastest) ])
         sorted)
  in
  Fusecu_util.Table.print t;
  Printf.printf
    "\nThe principle-based optimizer is one-shot; the searched baselines\n\
     evaluate thousands of schedules (the paper's motivation). The\n\
     \"(N domains)\" rows run the same search on the domain pool\n\
     (FUSECU_DOMAINS overrides the size).\n"
