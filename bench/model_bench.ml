(* Whole-model planner benchmark: measures the DP / branch-and-bound
   partitioner against exhaustive enumeration on the Table-II model
   fixtures, soaks it on seeded random graphs through the differential
   graph oracle, and records everything in BENCH_model.json.

   [--model-smoke] (the @model-smoke alias) runs the small fixtures and
   a short soak and fails the build on any planner-vs-exhaustive
   mismatch; [--model] is the long version with the full soak. *)

open Fusecu_util
open Fusecu_workloads
open Fusecu_planner

type fixture = { model : string; layers : int; bytes : int }

let fixtures =
  [ { model = "bert"; layers = 1; bytes = 512 * 1024 };
    { model = "bert"; layers = 1; bytes = 8 * 1024 * 1024 };
    { model = "bert"; layers = 2; bytes = 512 * 1024 };
    { model = "bert"; layers = 2; bytes = 8 * 1024 * 1024 };
    { model = "bert"; layers = 4; bytes = 8 * 1024 * 1024 };
    { model = "llama2"; layers = 1; bytes = 2 * 1024 * 1024 };
    { model = "llama2"; layers = 2; bytes = 2 * 1024 * 1024 } ]

let smoke_fixtures = List.filter (fun f -> f.layers <= 2) fixtures

type row = {
  fixture : fixture;
  groups : int;
  fused : int;
  candidate_edges : int;
  dp_states : int;
  bnb_nodes : int;
  exhaustive_partitions : int;
  plan_ms : float;
  traffic : int;
  effective : int;
  unfused_effective : int;
  agrees : bool;
}

let edge_key (e : Partition.edge) = (e.Partition.src, e.Partition.dst)

(* One fixture: plan, time it, then hold the result to the enumerated
   optimum (same effective cost, raw traffic, and chosen cuts). *)
let run_fixture f =
  let model =
    match Zoo.find f.model with
    | Some m -> m
    | None -> failwith ("model_bench: unknown model " ^ f.model)
  in
  let g = Graph.stack (Graph.of_model model) ~layers:f.layers in
  let buf = Fusecu_loopnest.Buffer.make f.bytes in
  let t0 = Unix.gettimeofday () in
  let p =
    match Partition.plan g buf with
    | Ok p -> p
    | Error e -> failwith (Printf.sprintf "model_bench: plan %s/%d failed: %s" f.model f.layers e)
  in
  let plan_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let ex =
    match Partition.exhaustive g buf with
    | Ok ex -> ex
    | Error e ->
      failwith
        (Printf.sprintf "model_bench: exhaustive %s/%d failed: %s" f.model
           f.layers e)
  in
  let b = ex.Partition.best in
  let agrees =
    p.Partition.effective = b.Partition.effective
    && p.Partition.traffic = b.Partition.traffic
    && List.map edge_key p.Partition.selected
       = List.map edge_key b.Partition.selected
  in
  let s = p.Partition.stats in
  { fixture = f;
    groups = List.length p.Partition.groups;
    fused = List.length p.Partition.selected;
    candidate_edges = s.Partition.candidate_edges;
    dp_states = s.Partition.dp_states;
    bnb_nodes = s.Partition.bnb_nodes;
    exhaustive_partitions = ex.Partition.partitions;
    plan_ms;
    traffic = p.Partition.traffic;
    effective = p.Partition.effective;
    unfused_effective = p.Partition.unfused_effective;
    agrees }

let saved_pct r =
  if r.unfused_effective = 0 then 0.0
  else
    100.0
    *. float_of_int (r.unfused_effective - r.effective)
    /. float_of_int r.unfused_effective

let print_rows rows =
  let t =
    Table.create
      [ "Model"; "Layers"; "Buffer"; "Groups"; "Fused"; "DP+B&B"; "Exhaustive";
        "Plan ms"; "Saved"; "Agrees" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun r ->
           [ r.fixture.model;
             string_of_int r.fixture.layers;
             Units.pp_bytes r.fixture.bytes;
             string_of_int r.groups;
             string_of_int r.fused;
             string_of_int (r.dp_states + r.bnb_nodes);
             string_of_int r.exhaustive_partitions;
             Printf.sprintf "%.1f" r.plan_ms;
             Printf.sprintf "%.1f%%" (saved_pct r);
             (if r.agrees then "yes" else "NO") ])
         rows)
  in
  Table.print t

let row_json r =
  Json.Obj
    [ ("model", Json.String r.fixture.model);
      ("layers", Json.Int r.fixture.layers);
      ("buffer_bytes", Json.Int r.fixture.bytes);
      ("groups", Json.Int r.groups);
      ("fused_edges", Json.Int r.fused);
      ("candidate_edges", Json.Int r.candidate_edges);
      ("dp_states", Json.Int r.dp_states);
      ("bnb_nodes", Json.Int r.bnb_nodes);
      ("exhaustive_partitions", Json.Int r.exhaustive_partitions);
      ("plan_ms", Json.Float r.plan_ms);
      ("traffic", Json.Int r.traffic);
      ("effective", Json.Int r.effective);
      ("unfused_effective", Json.Int r.unfused_effective);
      ("saved_pct", Json.Float (saved_pct r));
      ("agrees_with_exhaustive", Json.Bool r.agrees) ]

(* The random-graph soak: DP / B&B vs exhaustive on seeded graphs the
   fixtures never produce (diamonds, mixed counts, infeasible buffers). *)
let soak ~cases ~seed =
  let t0 = Unix.gettimeofday () in
  let report = Fusecu_oracle.Graph_check.run ~log:prerr_endline ~cases ~seed () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Fusecu_oracle.Graph_check.pp_report report;
  Printf.printf "soak: %.1f s (%.0f graphs/s)\n" elapsed
    (float_of_int cases /. elapsed);
  (report, elapsed)

let soak_json (report : Fusecu_oracle.Graph_check.report) elapsed ~seed =
  Json.Obj
    [ ("cases", Json.Int report.Fusecu_oracle.Graph_check.cases);
      ("seed", Json.Int seed);
      ("checks", Json.Int report.Fusecu_oracle.Graph_check.checks);
      ("candidate_edges",
       Json.Int report.Fusecu_oracle.Graph_check.candidate_edges);
      ("fused_cases", Json.Int report.Fusecu_oracle.Graph_check.fused_cases);
      ("divergences",
       Json.Int
         (List.length report.Fusecu_oracle.Graph_check.counterexamples));
      ("elapsed_s", Json.Float elapsed);
      ("counterexamples",
       Json.List
         (List.map
            (fun (ce : Fusecu_oracle.Graph_check.counterexample) ->
              Json.String (Fusecu_oracle.Graph_check.to_spec ce.shrunk))
            report.Fusecu_oracle.Graph_check.counterexamples)) ]

let write_json ~quick () =
  let rows = List.map run_fixture fixtures in
  print_rows rows;
  let cases = if quick then 500 else 1000 in
  let seed = 7 in
  let report, elapsed = soak ~cases ~seed in
  let json =
    Json.Obj
      [ ("models", Json.List (List.map row_json rows));
        ("graph_soak", soak_json report elapsed ~seed) ]
  in
  Out_channel.with_open_text "BENCH_model.json" (fun oc ->
      output_string oc (Json.print_hum json ^ "\n"));
  print_endline "wrote BENCH_model.json";
  if List.exists (fun r -> not r.agrees) rows then begin
    prerr_endline "model_bench: planner diverged from exhaustive on a fixture";
    exit 1
  end;
  if not (Fusecu_oracle.Graph_check.ok report) then exit 1

(* @model-smoke: small fixtures + a short soak, strict. *)
let smoke () =
  let rows = List.map run_fixture smoke_fixtures in
  print_rows rows;
  if List.exists (fun r -> not r.agrees) rows then begin
    prerr_endline "model_bench: planner diverged from exhaustive on a fixture";
    exit 1
  end;
  let report, _ = soak ~cases:120 ~seed:11 in
  if not (Fusecu_oracle.Graph_check.ok report) then exit 1;
  print_endline "model smoke ok"
