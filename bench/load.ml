(* Load generator for the serving tier: sustained concurrent traffic
   over a realistic request mix, measured end to end through the real
   Unix-socket server.

   Two measurements, matching how the tier is actually operated:

   - {b closed-loop latency}: C client threads, each with one
     connection at [batch = 1], send-one-wait-one; every request's
     wall-clock round trip is recorded and summarized as p50/p99.
   - {b streaming throughput}: one connection at the default batch
     size pipelines the whole request list and drains responses —
     the saturation shape (batching amortizes planner work across the
     pool), reported as requests/second.

   Both run twice against the same persistent store file: a cold pass
   (empty store) and a warm pass (fresh server process state,
   store-recovered cache), so BENCH_service.json records the
   warm-start hit rate next to the latency rows. Responses must be
   byte-identical cold vs. warm per client stream (control lines
   excluded) — the store can only change how much is recomputed. *)

open Fusecu_util
open Fusecu_service

(* ------------------------------------------------------------------ *)
(* Deterministic request mix                                           *)

(* SplitMix64, same generator family as the oracle: the mix is a pure
   function of the seed, so load-bench numbers are comparable across
   runs and machines. *)
let mix_state = ref 0L

let rnd () =
  let open Int64 in
  mix_state := add !mix_state 0x9E3779B97F4A7C15L;
  let z = !mix_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 1)
  land Stdlib.max_int

let pick arr = arr.(rnd () mod Array.length arr)

(* A bounded pool of distinct problems with repeats drawn from it: the
   mix has the redundancy production traffic has (same shapes priced
   again and again), which is what makes hit rate and warm starts
   meaningful. Shares the fixture's op distribution: mostly intra,
   then fuse/chain, a few plan_model. *)
let generate ~seed ~pool ~n =
  mix_state := Int64.of_int seed;
  let dims = [| 64; 96; 128; 192; 256; 384; 512; 768 |] in
  let buffers = [| "128KB"; "256KB"; "512KB"; "1MB" |] in
  let models = [| "bert"; "llama2"; "gpt-2" |] in
  let problem i =
    match rnd () mod 10 with
    | 0 | 1 ->
      Printf.sprintf
        "{\"op\":\"fuse\",\"id\":%d,\"m\":%d,\"k\":%d,\"l\":%d,\"l2\":%d,\"buffer\":\"%s\"}"
        i (pick dims) (pick dims) (pick dims) (pick dims) (pick buffers)
    | 2 | 3 ->
      Printf.sprintf
        "{\"op\":\"chain\",\"id\":%d,\"m\":%d,\"ks\":[%d,%d,%d],\"buffer\":\"%s\"}"
        i (pick dims) (pick dims) (pick dims) (pick dims) (pick buffers)
    | 4 ->
      Printf.sprintf
        "{\"op\":\"plan_model\",\"id\":%d,\"model\":\"%s\",\"buffer\":\"%s\"}"
        i (pick models) (pick buffers)
    | _ ->
      Printf.sprintf
        "{\"op\":\"intra\",\"id\":%d,\"m\":%d,\"k\":%d,\"l\":%d,\"buffer\":\"%s\"}"
        i (pick dims) (pick dims) (pick dims) (pick buffers)
  in
  let templates = Array.init pool problem in
  List.init n (fun i ->
      (* re-stamp the id so responses are traceable per request *)
      let t = templates.(rnd () mod pool) in
      match Json.parse t with
      | Ok (Json.Obj fields) ->
        Json.print
          (Json.Obj
             (List.map
                (function "id", _ -> ("id", Json.Int i) | kv -> kv)
                fields))
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Socket clients                                                      *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* Minimal buffered line reader for client sockets (the server side
   uses {!Server.Line_reader}; clients just need blocking reads). *)
type rx = { fd : Unix.file_descr; buf : Buffer.t; scratch : Bytes.t }

let rx fd = { fd; buf = Buffer.create 4096; scratch = Bytes.create 4096 }

let rec read_response r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_string r.buf (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)
  | None -> (
    match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
    | 0 -> None
    | n ->
      Buffer.add_subbytes r.buf r.scratch 0 n;
      read_response r
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* ------------------------------------------------------------------ *)
(* Measurement passes                                                  *)

type pass = {
  p50_ms : float;
  p99_ms : float;
  latency_rps : float;  (** closed-loop aggregate request rate *)
  stream_rps : float;  (** single-connection batched throughput *)
  hit_rate : float;
  latencies : float array;  (** every closed-loop round trip, seconds *)
  transcripts : string list list;  (** per latency client, response lines *)
  stream_transcript : string list;
}

(* Full tail shape, not just two percentiles: the same log2 bucket
   layout the service's own latency histograms use, serialized through
   the fleet codec so BENCH rows and metrics dumps are comparable
   bucket for bucket. *)
let latency_histogram latencies =
  let bins = Array.make Metrics.buckets 0 in
  Array.iter
    (fun l ->
      let b = Metrics.bucket_of_seconds l in
      bins.(b) <- bins.(b) + 1)
    latencies;
  Fleet.histogram_to_json
    { Fleet.count = Array.length latencies;
      total_s = Array.fold_left ( +. ) 0. latencies;
      bins }

let with_server ~store_path ~batch f =
  let config =
    { (Engine.default_config ()) with Engine.cache_entries = 65536 }
  in
  let store =
    match store_path with
    | None -> None
    | Some path -> (
      match Store.open_ ~path with
      | Ok s -> Some s
      | Error e -> failwith e)
  in
  let engine = Engine.create ?store config in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_load_%d_%d.sock" (Unix.getpid ()) (rnd () mod 10000))
  in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let server =
    Thread.create
      (fun () ->
        Server.serve_socket engine ~batch
          ~config:{ Server.max_conns = 64; idle_timeout = 30.; max_line = 1 lsl 20 }
          ~path:sock ())
      ()
  in
  let rec wait n =
    if n = 0 then failwith "load: server did not come up";
    match Unix.stat sock with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> ()
    | _ | (exception Unix.Unix_error (Unix.ENOENT, _, _)) ->
      Thread.delay 0.02;
      wait (n - 1)
  in
  wait 250;
  let result = f sock engine in
  (try
     let fd = connect sock in
     send_all fd "{\"op\":\"shutdown\"}\n";
     Unix.shutdown fd Unix.SHUTDOWN_SEND;
     let r = rx fd in
     let rec drain () = match read_response r with Some _ -> drain () | None -> () in
     drain ();
     Unix.close fd
   with Unix.Unix_error _ | Failure _ -> ());
  Thread.join server;
  (match store with Some s -> Store.close s | None -> ());
  result

(* One measurement pass against one server lifetime. *)
let run_pass ~store_path ~concurrency ~latency_requests ~stream_requests () =
  (* closed-loop latency at batch 1 *)
  let latencies = Array.make (List.length latency_requests) 0. in
  let shares = Array.make concurrency [] in
  List.iteri
    (fun i req -> shares.(i mod concurrency) <- (i, req) :: shares.(i mod concurrency))
    latency_requests;
  Array.iteri (fun i s -> shares.(i) <- List.rev s) shares;
  let transcripts = Array.make concurrency [] in
  let lat_elapsed =
    with_server ~store_path ~batch:1 (fun sock _engine ->
        let t0 = Unix.gettimeofday () in
        let threads =
          Array.mapi
            (fun ci share ->
              Thread.create
                (fun () ->
                  let fd = connect sock in
                  let r = rx fd in
                  let out = ref [] in
                  List.iter
                    (fun (i, req) ->
                      let t = Unix.gettimeofday () in
                      send_all fd (req ^ "\n");
                      match read_response r with
                      | Some line ->
                        latencies.(i) <- Unix.gettimeofday () -. t;
                        out := line :: !out
                      | None -> failwith "load: server closed mid-request")
                    share;
                  transcripts.(ci) <- List.rev !out;
                  Unix.close fd)
                ())
            shares
        in
        Array.iter Thread.join threads;
        Unix.gettimeofday () -. t0)
  in
  (* streaming throughput at the default batch on a fresh server
     lifetime (same store: it has absorbed the latency pass's plans) *)
  let stream_transcript, stream_elapsed, hit_rate_stream =
    with_server ~store_path ~batch:64 (fun sock engine ->
        let fd = connect sock in
        let t0 = Unix.gettimeofday () in
        send_all fd (String.concat "\n" stream_requests ^ "\n");
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let r = rx fd in
        let rec drain acc =
          match read_response r with
          | Some l -> drain (l :: acc)
          | None -> List.rev acc
        in
        let lines = drain [] in
        let elapsed = Unix.gettimeofday () -. t0 in
        Unix.close fd;
        (lines, elapsed, Cache.hit_rate (Engine.cache_stats engine)))
  in
  let sorted = Array.map (fun l -> l *. 1000.) latencies in
  Array.sort compare sorted;
  { p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
    latency_rps = float_of_int (Array.length latencies) /. lat_elapsed;
    stream_rps = float_of_int (List.length stream_requests) /. stream_elapsed;
    hit_rate = hit_rate_stream;
    latencies;
    transcripts = Array.to_list transcripts;
    stream_transcript }

let pass_json p =
  Json.Obj
    [ ("p50_ms", Json.Float p.p50_ms);
      ("p99_ms", Json.Float p.p99_ms);
      ("closed_loop_rps", Json.Float p.latency_rps);
      ("stream_rps", Json.Float p.stream_rps);
      ("hit_rate", Json.Float p.hit_rate);
      ("latency", latency_histogram p.latencies) ]

(* ------------------------------------------------------------------ *)
(* Routed closed-loop pass                                             *)

(* Same send-one-wait-one measurement, but through the sharding front
   end: a forked shard fleet behind an in-process {!Router.run} driven
   over pipes, so every round trip crosses the real routing hop
   (stamp, consistent-hash, socket, reassemble, strip). Runs once per
   shard count; the transcripts must be byte-identical across shard
   counts (the mix is all calls, and routing never changes a call's
   response bytes). *)
let routed_pass ~shards ~requests =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_load_fleet_%d_%d" (Unix.getpid ()) shards)
  in
  Unix.mkdir dir 0o700;
  let config =
    { (Engine.default_config ()) with Engine.cache_entries = 65536 }
  in
  let server_config =
    { Server.max_conns = 64; idle_timeout = 30.; max_line = 1 lsl 20 }
  in
  let children =
    List.init shards (fun i ->
        let socket = Filename.concat dir (Printf.sprintf "shard-%d.sock" i) in
        (* batch 1: closed-loop send-one-wait-one would deadlock against
           a shard holding the lone in-flight response in a larger batch *)
        Router.spawn_shard ~batch:1
          ~make_engine:(fun _ -> Engine.create config)
          ~socket ~server_config i)
  in
  Fun.protect
    ~finally:(fun () ->
      Router.stop_children children;
      List.iter
        (fun (c : Router.child) ->
          try Sys.remove c.socket with Sys_error _ -> ())
        children;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter
        (fun (c : Router.child) ->
          if not (Router.wait_for_socket c.socket) then
            failwith "load: routed shard socket never appeared")
        children;
      let req_r, req_w = Unix.pipe ~cloexec:false () in
      let resp_r, resp_w = Unix.pipe ~cloexec:false () in
      let input = Unix.in_channel_of_descr req_r in
      let output = Unix.out_channel_of_descr resp_w in
      let router =
        Thread.create
          (fun () ->
            Router.run
              ~backends:
                (List.map (fun (c : Router.child) -> c.socket) children)
              ~input ~output ();
            close_out output)
          ()
      in
      let latencies = Array.make (List.length requests) 0. in
      let r = rx resp_r in
      let t0 = Unix.gettimeofday () in
      let transcript =
        List.mapi
          (fun i req ->
            let t = Unix.gettimeofday () in
            send_all req_w (req ^ "\n");
            match read_response r with
            | Some line ->
              latencies.(i) <- Unix.gettimeofday () -. t;
              line
            | None -> failwith "load: router closed mid-request")
          requests
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Unix.close req_w;
      Thread.join router;
      close_in input;
      Unix.close resp_r;
      (transcript, latencies, elapsed))

let routed_json ~shards latencies elapsed =
  let sorted = Array.map (fun l -> l *. 1000.) latencies in
  Array.sort compare sorted;
  Json.Obj
    [ ("shards", Json.Int shards);
      ("requests", Json.Int (Array.length latencies));
      ("p50_ms", Json.Float (percentile sorted 0.50));
      ("p99_ms", Json.Float (percentile sorted 0.99));
      ("closed_loop_rps",
       Json.Float (float_of_int (Array.length latencies) /. elapsed));
      ("latency", latency_histogram latencies) ]

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let run ?(quick = false) () =
  let n = if quick then 200 else 2000 in
  let pool = if quick then 40 else 200 in
  let concurrency = 4 in
  (* routed passes first: they fork shard fleets, and forking is only
     safe before anything in this process touches the global domain
     pool (the unrouted passes below spin up in-process servers) *)
  let routed_n = if quick then 120 else 600 in
  let routed_requests = generate ~seed:17 ~pool ~n:routed_n in
  let routed =
    List.map
      (fun shards ->
        let transcript, latencies, elapsed =
          routed_pass ~shards ~requests:routed_requests
        in
        (shards, transcript, routed_json ~shards latencies elapsed))
      [ 1; 2 ]
  in
  (match routed with
  | (_, t1, _) :: rest ->
    List.iter
      (fun (shards, t, _) ->
        if t <> t1 then begin
          let reported = ref false in
          List.iteri
            (fun i (a, b) ->
              if a <> b && not !reported then begin
                reported := true;
                Printf.eprintf
                  "load: first divergence at line %d:\n  1 shard:  %s\n  \
                   %d shards: %s\n%!"
                  i a shards b
              end)
            (List.combine t1 t);
          failwith
            (Printf.sprintf
               "load: routed responses diverge between 1 and %d shards" shards)
        end)
      rest
  | [] -> ());
  let latency_requests = generate ~seed:11 ~pool ~n in
  let stream_requests = generate ~seed:13 ~pool ~n in
  let store_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_load_%d.store" (Unix.getpid ()))
  in
  (try Sys.remove store_path with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () -> try Sys.remove store_path with Sys_error _ -> ())
    (fun () ->
      let cold =
        run_pass ~store_path:(Some store_path) ~concurrency ~latency_requests
          ~stream_requests ()
      in
      let warm =
        run_pass ~store_path:(Some store_path) ~concurrency ~latency_requests
          ~stream_requests ()
      in
      (* correctness gates: warm state must change only speed *)
      if warm.transcripts <> cold.transcripts then
        failwith "load: warm closed-loop responses diverge from cold";
      if warm.stream_transcript <> cold.stream_transcript then
        failwith "load: warm streaming responses diverge from cold";
      if not (warm.hit_rate > cold.hit_rate) then
        failwith
          (Printf.sprintf
             "load: warm start did not raise the hit rate (cold %.3f, warm %.3f)"
             cold.hit_rate warm.hit_rate);
      Printf.printf
        "load: %d reqs x%d conns  cold p50 %.2f ms p99 %.2f ms (%.0f rps \
         closed, %.0f rps stream, hit %.3f)\n\
         load: warm p50 %.2f ms p99 %.2f ms (%.0f rps closed, %.0f rps \
         stream, hit %.3f)\n"
        n concurrency cold.p50_ms cold.p99_ms cold.latency_rps cold.stream_rps
        cold.hit_rate warm.p50_ms warm.p99_ms warm.latency_rps warm.stream_rps
        warm.hit_rate;
      Json.Obj
        [ ("requests", Json.Int n);
          ("distinct_problems", Json.Int pool);
          ("concurrency", Json.Int concurrency);
          ("cold", pass_json cold);
          ("warm", pass_json warm);
          ("warm_identical_to_cold", Json.Bool true);
          ("routed", Json.List (List.map (fun (_, _, j) -> j) routed)) ])

let smoke () =
  ignore (run ~quick:true ());
  print_endline
    "load smoke: cold/warm byte-identical, routed transcripts identical \
     across shard counts, warm hit rate higher"
