(* Nest mapper bench: the branch-and-bound search over the projective
   loop-nest IR vs the exhaustive Divisors-lattice enumeration, on the
   beyond-matmul zoo (conv2d plain/strided/pointwise, per-head batched
   MM, GQA scores, fused attention pair).

   [rows] runs every fixture both ways and records traffic plus visit
   counters; [check] is the smoke-level guard: the B&B answer must be
   bit-for-bit the exhaustive optimum (cost, tiling index, order rank)
   while evaluating no more schedules than the enumeration. [row_json]
   feeds the "nest" section of BENCH_dse.json. *)

open Fusecu_loopnest
open Fusecu_nest
module Json = Fusecu_util.Json

type row = {
  nest_task : string;
  axes : int;  (** nest rank *)
  points : int;  (** iteration-space size *)
  traffic_bnb : int;
  traffic_exhaustive : int;
  ideal : int;  (** unbounded-buffer communication lower bound *)
  evaluated : int;  (** B&B cost evaluations *)
  enumerated : int;  (** exhaustive cost evaluations on the same space *)
  nodes : int;
  pruned_bound : int;
  pruned_infeasible : int;
}

(* Buffers in elements (elt_bytes 1). The strided conv gets a tighter
   buffer than the rest: with stride 2 its tiles are small, and a
   capacity that never binds would make the fixture a pure
   loop-order contest with no feasibility pruning to measure. *)
let fixtures () =
  List.map
    (fun (name, nest) ->
      let capacity =
        match name with
        | "conv3x3-strided" -> 512
        | "attn-pair" -> 2048
        | _ -> 1024
      in
      (name, nest, Buffer.make capacity))
    Fusecu_workloads.Zoo.nest_cases

let rows ?(fixtures = fixtures ()) () =
  List.filter_map
    (fun (name, nest, buf) ->
      match
        ( Fusecu_dse.Nest_bnb.search_with_stats nest buf,
          Search.exhaustive nest ~capacity:(Buffer.elements buf) )
      with
      | (Some br, stats), Some er ->
        if
          br.Search.tiling_index <> er.Search.tiling_index
          || br.Search.order_rank <> er.Search.order_rank
        then
          failwith
            (Printf.sprintf
               "nest: %s: B&B winner (tiling %d, order %d) is not the \
                exhaustive winner (tiling %d, order %d)"
               name br.Search.tiling_index br.Search.order_rank
               er.Search.tiling_index er.Search.order_rank);
        Some
          { nest_task = "nest-" ^ name;
            axes = Nest.rank nest;
            points = Nest.points nest;
            traffic_bnb = br.Search.cost.Nest.total;
            traffic_exhaustive = er.Search.cost.Nest.total;
            ideal = Bound.ideal nest;
            evaluated = stats.Fusecu_dse.Bnb.explored;
            enumerated = er.Search.evaluated;
            nodes = stats.Fusecu_dse.Bnb.nodes;
            pruned_bound = stats.Fusecu_dse.Bnb.pruned_bound;
            pruned_infeasible = stats.Fusecu_dse.Bnb.pruned_infeasible }
      | _ -> None)
    fixtures

let ratio r = float_of_int r.evaluated /. float_of_int r.enumerated

let row_json r =
  Json.Obj
    [ ("task", Json.String r.nest_task);
      ("axes", Json.Int r.axes);
      ("points", Json.Int r.points);
      ("traffic", Json.Int r.traffic_bnb);
      ("traffic_exhaustive", Json.Int r.traffic_exhaustive);
      ("ideal", Json.Int r.ideal);
      ("explored", Json.Int r.evaluated);
      ("enumerated", Json.Int r.enumerated);
      ("ratio", Json.Float (ratio r));
      ("nodes", Json.Int r.nodes);
      ("pruned_bound", Json.Int r.pruned_bound);
      ("pruned_infeasible", Json.Int r.pruned_infeasible) ]

let check rows =
  let expected = List.length (Fusecu_workloads.Zoo.nest_cases) in
  if List.length rows <> expected then
    failwith
      (Printf.sprintf "nest: only %d of %d fixtures produced a result"
         (List.length rows) expected);
  List.iter
    (fun r ->
      Printf.printf
        "nest: %-22s traffic %d (exhaustive %d, ideal %d), %d/%d evaluations \
         (%.1f%%), pruned %d+%d\n"
        r.nest_task r.traffic_bnb r.traffic_exhaustive r.ideal r.evaluated
        r.enumerated (100. *. ratio r) r.pruned_bound r.pruned_infeasible;
      if r.traffic_bnb <> r.traffic_exhaustive then
        failwith
          (Printf.sprintf "nest: %s: B&B traffic %d <> exhaustive %d"
             r.nest_task r.traffic_bnb r.traffic_exhaustive);
      if r.traffic_bnb < r.ideal then
        failwith
          (Printf.sprintf
             "nest: %s: traffic %d below the lower bound %d (bound unsound)"
             r.nest_task r.traffic_bnb r.ideal);
      if r.evaluated > r.enumerated then
        failwith
          (Printf.sprintf
             "nest: %s: B&B evaluated %d schedules, more than the %d \
              enumerated (pruning regressed to negative)"
             r.nest_task r.evaluated r.enumerated))
    rows

let smoke () =
  check (rows ());
  print_endline
    "smoke: nest bnb = exhaustive optimum on every beyond-matmul fixture"
