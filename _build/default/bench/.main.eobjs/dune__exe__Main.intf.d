bench/main.mli:
