bench/main.ml: Array Experiments Fusecu_loopnest Fusecu_util List Option Printf Speed Sys
