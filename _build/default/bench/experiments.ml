(* Reproduction drivers: one function per table / figure of the paper.
   Each prints an ASCII table with the measured numbers and, where the
   paper quotes headline values, the paper-vs-measured comparison. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse
open Fusecu_workloads
open Fusecu_arch
open Fusecu_util

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let f2 x = Printf.sprintf "%.2f" x

let f3 x = Printf.sprintf "%.3f" x

(* ------------------------------------------------------------------ *)
(* Table I: optimizer feature summary                                  *)

let table1 () =
  section "Table I: dataflow optimizer summary";
  let t = Table.create Summary.header in
  let t =
    Table.add_rows t
      (List.map
         (fun (r : Summary.row) ->
           [ r.optimizer; (if r.full_space then "yes" else "no");
             r.tiling_scheme; r.mapping_scheme; r.fusion_medium ])
         Summary.rows)
  in
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table II: transformer model parameters                              *)

let table2 () =
  section "Table II: transformer model parameters (batch 16)";
  let t =
    Table.create
      [ "Model"; "Heads"; "Seq. length"; "Hidden"; "Head dim"; "Layer MACs" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (m : Model.t) ->
           [ m.name; string_of_int m.heads; string_of_int m.seq;
             string_of_int m.hidden;
             string_of_int (Model.head_dim m);
             Units.pp_count (Workload.total_macs (Workload.of_model m)) ])
         Zoo.all)
  in
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table III: platform attributes                                      *)

let table3 () =
  section "Table III: spatial architecture attributes";
  let t = Table.create Platform.attribute_header in
  Table.print (Table.add_rows t (Platform.attribute_rows ()))

(* ------------------------------------------------------------------ *)
(* Sec. III-A worked example                                           *)

let example () =
  section "Worked example (Sec. III-A): BERT 1024x768x768, 512 KB buffer";
  let op = Matmul.make ~name:"bert" ~m:1024 ~k:768 ~l:768 () in
  let buf = Buffer.of_kib 512 in
  let th = Regime.thresholds op in
  Printf.printf "thresholds: Dmin^2/4 = %d, Dmin^2/2 = %d, Tensor_min = %d\n"
    th.tiny_max th.small_max th.medium_max;
  Printf.printf "buffer: %d elements -> regime %s\n" (Buffer.elements buf)
    (Regime.to_string (Regime.classify op buf));
  let plan = Intra.optimize_exn ~mode:Mode.Divisors op buf in
  Format.printf "%a@." Intra.pp_plan plan;
  Printf.printf "paper: Two-NRA, untiled K, T_M = 512, T_L = 1, MA(B) = 2KL = %d\n"
    (2 * 768 * 768);
  Printf.printf "measured: %s, T_M = %d, T_L = %d, MA(B) = %d\n"
    (Nra.dataflow_to_string plan.dataflow)
    (Tiling.get plan.schedule.tiling Dim.M)
    (Tiling.get plan.schedule.tiling Dim.L)
    plan.cost.b.traffic

(* ------------------------------------------------------------------ *)
(* Fig. 9: principle-optimized MA vs the search-based (DAT-proxy)      *)
(* optimizer across buffer sizes                                       *)

let buffer_sweep = List.map Units.kib [ 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768 ]

(* DAT stand-in: GA per operator; GA over the joint fused space per
   chain, falling back to the unfused GA when fusion does not help. *)
let dat_traffic workload buf =
  let intra op =
    match Genetic.search op buf with
    | Some r -> r.cost.Cost.total
    | None -> max_int / 4
  in
  Arith.sum
    (List.map
       (function
         | Workload.Single_op { op; count } -> count * intra op
         | Workload.Fusable { chain; count } -> (
           match Chain.ops chain with
           | [ op1; op2 ] ->
             let pair = Fused.make_pair_exn op1 op2 in
             let unfused = intra op1 + intra op2 in
             let fused =
               match Fused_search.genetic pair buf with
               | Some r -> r.traffic
               | None -> max_int / 4
             in
             count * min fused unfused
           | ops -> count * Arith.sum (List.map intra ops)))
       (Workload.items workload))

let principle_traffic workload buf =
  Arith.sum
    (List.map
       (function
         | Workload.Single_op { op; count } ->
           count * Intra.ma (Intra.optimize_exn ~mode:Mode.Divisors op buf)
         | Workload.Fusable { chain; count } -> (
           match Planner.plan_chain ~mode:Mode.Divisors chain buf with
           | Ok plan -> count * plan.Planner.traffic
           | Error e -> failwith e))
       (Workload.items workload))

let ideal_traffic workload =
  Arith.sum
    (List.map
       (fun (op, count) -> count * Matmul.ideal_ma op)
       (Workload.all_ops workload))

let fig9 ?(models = [ Zoo.bert; Zoo.blenderbot; Zoo.xlm ]) () =
  section
    "Fig. 9: normalized memory access, principles (ours) vs searched (DAT proxy)";
  List.iter
    (fun model ->
      let w = Workload.of_model model in
      let ideal = float_of_int (ideal_traffic w) in
      Printf.printf "%s (normalized to the unfused intra lower bound):\n"
        w.Workload.name;
      let t = Table.create [ "Buffer"; "Ours"; "DAT proxy"; "Ours/DAT" ] in
      let t =
        Table.add_rows t
          (List.map
             (fun bytes ->
               let buf = Buffer.make bytes in
               let ours = float_of_int (principle_traffic w buf) /. ideal in
               let dat = float_of_int (dat_traffic w buf) /. ideal in
               [ Units.pp_bytes bytes; f3 ours; f3 dat; f3 (ours /. dat) ])
             buffer_sweep)
      in
      Table.print t;
      print_newline ())
    models

(* ------------------------------------------------------------------ *)
(* Fig. 10: memory access and utilization across platforms             *)

let default_buffer = Buffer.of_kib 512

let eval_all ?(buf = default_buffer) model =
  let w = Workload.of_model model in
  List.map
    (fun p ->
      match Perf.eval_workload p buf w with
      | Ok e -> (p, e)
      | Error e -> failwith e)
    Platform.all

let fig10 ?(buf = default_buffer) () =
  section
    (Printf.sprintf
       "Fig. 10: normalized memory access (bars) and utilization (lines), %s buffer"
       (Units.pp_bytes buf.Buffer.bytes));
  let header =
    "Model" :: List.map (fun (p : Platform.t) -> p.name) Platform.all
  in
  let ma_table = ref (Table.create header) in
  let util_table = ref (Table.create header) in
  let ratios = Hashtbl.create 8 in
  let speeds = Hashtbl.create 8 in
  List.iter
    (fun model ->
      let evals = eval_all ~buf model in
      let tpu = List.assoc Platform.tpu_v4i evals in
      let fusecu = List.assoc Platform.fusecu evals in
      ma_table :=
        Table.add_row !ma_table
          (model.Model.name
          :: List.map (fun (_, e) -> f3 (Perf.ma_ratio e tpu)) evals);
      util_table :=
        Table.add_row !util_table
          (model.Model.name
          :: List.map (fun (_, e) -> Units.pp_pct e.Perf.utilization) evals);
      List.iter
        (fun ((p : Platform.t), e) ->
          Hashtbl.replace ratios p.name
            (Perf.ma_ratio fusecu e :: Option.value ~default:[] (Hashtbl.find_opt ratios p.name));
          Hashtbl.replace speeds p.name
            (Perf.speedup fusecu e :: Option.value ~default:[] (Hashtbl.find_opt speeds p.name)))
        evals)
    Zoo.all;
  Printf.printf "memory access normalized to TPUv4i:\n";
  Table.print !ma_table;
  Printf.printf "\nachieved utilization (performance / peak FLOPs):\n";
  Table.print !util_table;
  print_newline ();
  let summary =
    Table.create
      [ "FuseCU vs"; "MA saving (measured)"; "MA saving (paper)";
        "speedup (measured)"; "speedup (paper)" ]
  in
  let paper = [ ("TPUv4i", (0.636, 1.33)); ("Gemmini", (0.624, 1.25)); ("Planaria", (0.387, 1.14)) ] in
  let summary =
    Table.add_rows summary
      (List.map
         (fun (name, (ma_p, sp_p)) ->
           let saving = 1. -. Stats.geomean (Hashtbl.find ratios name) in
           let speed = Stats.geomean (Hashtbl.find speeds name) in
           [ name; Units.pp_pct saving; Units.pp_pct ma_p; Units.pp_ratio speed;
             Units.pp_ratio sp_p ])
         paper)
  in
  Table.print summary

(* ------------------------------------------------------------------ *)
(* Fig. 11: LLaMA2 sequence-length sensitivity                         *)

let fig11 ?(buf = default_buffer) () =
  section "Fig. 11: LLaMA2 across sequence lengths (256 - 16K)";
  let header =
    "Seq"
    :: (List.map (fun (p : Platform.t) -> p.name ^ " MA") Platform.all
       @ [ "FuseCU util"; "TPUv4i util" ])
  in
  let t = ref (Table.create header) in
  List.iter
    (fun seq ->
      let evals = eval_all ~buf (Sweep.llama2_at seq) in
      let tpu = List.assoc Platform.tpu_v4i evals in
      let fusecu = List.assoc Platform.fusecu evals in
      t :=
        Table.add_row !t
          (string_of_int seq
          :: (List.map (fun (_, e) -> f3 (Perf.ma_ratio e tpu)) evals
             @ [ Units.pp_pct fusecu.Perf.utilization;
                 Units.pp_pct tpu.Perf.utilization ])))
    Sweep.seq_lengths;
  Printf.printf "memory access normalized to TPUv4i at the same length:\n";
  Table.print !t

(* ------------------------------------------------------------------ *)
(* Fig. 12: area breakdown                                             *)

let fig12 () =
  section "Fig. 12: FuseCU area breakdown and overheads (28 nm model)";
  let b = Area.fusecu_breakdown () in
  let t = Table.create [ "Component"; "Area (mm^2)"; "Overhead?" ] in
  let t =
    Table.add_rows t
      (List.map
         (fun (c : Area.component) ->
           [ c.name; f3 (c.area_um2 /. 1e6); (if c.overhead then "yes" else "") ])
         b.components)
  in
  Table.print t;
  Printf.printf "\npaper: 12.0%% overhead vs TPUv4i; interconnect+control < 0.1%%\n";
  Printf.printf "measured: %s overhead; interconnect+control %s\n"
    (Units.pp_pct b.overhead_pct)
    (Printf.sprintf "%.3f%%" (100. *. b.interconnect_pct))

(* ------------------------------------------------------------------ *)
(* Headline summary                                                    *)

let headline ?(buf = default_buffer) () =
  section "Headline results (paper vs this reproduction)";
  fig10 ~buf ();
  fig12 ();
  Printf.printf
    "\nNote: absolute magnitudes depend on the analytical substrate (see\n\
     DESIGN.md); the comparisons above reproduce the paper's ordering and\n\
     approximate factors, recorded in EXPERIMENTS.md.\n"

let run_fig9_quick () = fig9 ~models:[ Zoo.bert ] ()

(* ------------------------------------------------------------------ *)
(* Extension: energy (the paper's motivating metric)                   *)

let energy ?(buf = default_buffer) () =
  section "Extension: energy per layer (28 nm access-cost model)";
  let header =
    "Model"
    :: (List.map (fun (p : Platform.t) -> p.name ^ " (uJ)") Platform.all
       @ [ "FuseCU saving" ])
  in
  let t = ref (Table.create header) in
  List.iter
    (fun model ->
      let evals = eval_all ~buf model in
      let energies = List.map (fun (p, e) -> (p, Energy.of_eval e)) evals in
      let fusecu = List.assoc Platform.fusecu energies in
      let tpu = List.assoc Platform.tpu_v4i energies in
      t :=
        Table.add_row !t
          (model.Model.name
          :: (List.map
                (fun (_, (en : Energy.t)) ->
                  Printf.sprintf "%.1f" (en.total_nj /. 1e3))
                energies
             @ [ Units.pp_pct (Energy.saving fusecu tpu) ])))
    Zoo.all;
  Table.print !t;
  Printf.printf
    "\nTraffic reduction converts to energy up to the MAC/static floor;\n\
     the DRAM term dominates wherever the layer is memory-bound.\n"

(* ------------------------------------------------------------------ *)
(* Extension: feature ablation ladder                                  *)

let ablation ?(buf = default_buffer) () =
  section "Extension: FuseCU feature ablation (all seven models)";
  match Ablation.run ~buf Zoo.all with
  | Error e -> print_endline ("ablation failed: " ^ e)
  | Ok steps ->
    let t =
      Table.create
        [ "Step"; "Enables"; "Traffic"; "MA saving vs base"; "Speedup vs base" ]
    in
    let t =
      Table.add_rows t
        (List.map
           (fun (s : Ablation.step) ->
             [ s.name; s.adds; Units.pp_count s.traffic;
               Units.pp_pct s.ma_saving_vs_base;
               Units.pp_ratio s.speedup_vs_base ])
           steps)
    in
    Table.print t

(* ------------------------------------------------------------------ *)
(* Extension: softmax-aware accounting                                 *)

let softmax ?(buf = default_buffer) () =
  section "Extension: attention savings with standalone softmax accounted";
  let t =
    Table.create
      [ "Model"; "Softmax traffic"; "share of unfused bound";
        "FuseCU/TPUv4i (matmuls)"; "FuseCU/TPUv4i (+softmax)" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (m : Model.t) ->
           let evals = eval_all ~buf m in
           let fusecu = List.assoc Platform.fusecu evals in
           let tpu = List.assoc Platform.tpu_v4i evals in
           let extra = Softmax.extra_unfused_traffic m in
           let adjusted =
             float_of_int fusecu.Perf.traffic
             /. float_of_int (tpu.Perf.traffic + extra)
           in
           [ m.Model.name; Units.pp_count extra;
             Units.pp_pct (Softmax.relative_weight m);
             f3 (Perf.ma_ratio fusecu tpu); f3 adjusted ])
         Zoo.all)
  in
  Table.print t;
  Printf.printf
    "\nPlatforms without an in-array softmax pay an extra read+write of the\n\
     seq x seq score matrix per head; FuseCU's fused attention avoids it.\n"

(* ------------------------------------------------------------------ *)
(* Extension: two-level hierarchy and the 2N derivation (Sec. IV-B)    *)

let hierarchy () =
  section "Extension: two-level dataflow (buffer + registers) and the 2N bound";
  let stack = Fusecu_hierarchy.Stack.tpu_like () in
  let ops =
    [ Matmul.make ~name:"bert.proj" ~m:16384 ~k:768 ~l:768 ();
      Matmul.make ~name:"bert.qk" ~m:1024 ~k:64 ~l:1024 ();
      Matmul.make ~name:"llama2.qk" ~m:4096 ~k:128 ~l:4096 () ]
  in
  List.iter
    (fun op ->
      match Fusecu_hierarchy.Stack.optimize stack op with
      | Ok plan -> Format.printf "%a@.@." Fusecu_hierarchy.Stack.pp_plan plan
      | Error e -> Printf.printf "%s: %s\n" op.Matmul.name e)
    ops;
  Printf.printf
    "Sec. IV-B: with register capacity N^2, untiling is register-optimal only\n\
     when Dmin < 2N, so the adaptive array (up to 2N) covers every case:\n\n";
  let t =
    Table.create
      [ "Model"; "attention Dmin"; "2N bound"; "untiling optimal?"; "covered?" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (m : Model.t) ->
           let dh = Model.head_dim m in
           let qk = Matmul.make ~m:m.seq ~k:dh ~l:m.seq () in
           let profitable =
             Register_level.untiling_profitable ~pe_dim:128 qk
           in
           [ m.name; string_of_int dh;
             string_of_int (Register_level.max_useful_untiled_dim ~pe_dim:128);
             (if profitable then "yes" else "no");
             (if Register_level.supported_by_fusecu ~pe_dim:128 qk then "yes"
              else "NO") ])
         Zoo.all)
  in
  Table.print t

(* ------------------------------------------------------------------ *)
(* CSV export of the headline figures                                  *)

let export_csv ?(buf = default_buffer) ~dir () =
  let path name = Filename.concat dir name in
  (* Fig. 10 data *)
  let fig10_doc =
    ref
      (Csv.create
         ("model"
         :: List.concat_map
              (fun (p : Platform.t) ->
                [ p.name ^ "_ma_ratio"; p.name ^ "_utilization" ])
              Platform.all))
  in
  List.iter
    (fun model ->
      let evals = eval_all ~buf model in
      let tpu = List.assoc Platform.tpu_v4i evals in
      fig10_doc :=
        Csv.add_row !fig10_doc
          (model.Model.name
          :: List.concat_map
               (fun (_, e) ->
                 [ Printf.sprintf "%.4f" (Perf.ma_ratio e tpu);
                   Printf.sprintf "%.4f" e.Perf.utilization ])
               evals))
    Zoo.all;
  Csv.write ~path:(path "fig10.csv") !fig10_doc;
  (* Fig. 11 data *)
  let fig11_doc =
    ref
      (Csv.create
         ("seq" :: List.map (fun (p : Platform.t) -> p.name ^ "_ma_ratio") Platform.all))
  in
  List.iter
    (fun seq ->
      let evals = eval_all ~buf (Sweep.llama2_at seq) in
      let tpu = List.assoc Platform.tpu_v4i evals in
      fig11_doc :=
        Csv.add_row !fig11_doc
          (string_of_int seq
          :: List.map (fun (_, e) -> Printf.sprintf "%.4f" (Perf.ma_ratio e tpu)) evals))
    Sweep.seq_lengths;
  Csv.write ~path:(path "fig11.csv") !fig11_doc;
  Printf.printf "wrote %s and %s\n" (path "fig10.csv") (path "fig11.csv")

(* ------------------------------------------------------------------ *)
(* Extension: discrete-event contention vs the closed-form roofline    *)

let contention ?(buf = default_buffer) () =
  section
    "Extension: discrete-event CU scheduling (shared-port contention) vs roofline";
  let t =
    Table.create
      [ "Model"; "Platform"; "Roofline cycles"; "Simulated makespan";
        "sim/roofline"; "CU busy fraction" ]
  in
  let t = ref t in
  List.iter
    (fun model ->
      List.iter
        (fun platform ->
          let w = Workload.of_model model in
          match Perf.eval_workload platform buf w with
          | Error e -> failwith e
          | Ok e ->
            let sim = Schedule_sim.simulate_eval e in
            (* the roofline charges the whole machine per segment; the
               simulator schedules instances on individual CUs *)
            t :=
              Table.add_row !t
                [ model.Model.name; platform.Platform.name;
                  Units.pp_count e.Perf.cycles;
                  Units.pp_count (int_of_float sim.Schedule_sim.makespan);
                  Printf.sprintf "%.2f"
                    (sim.Schedule_sim.makespan /. float_of_int e.Perf.cycles);
                  Units.pp_pct sim.Schedule_sim.utilization ])
        [ Platform.tpu_v4i; Platform.fusecu ])
    [ Zoo.bert; Zoo.llama2 ];
  Table.print !t;
  Printf.printf
    "\nThe simulator exposes load imbalance and port contention the\n\
     closed-form model averages away; orderings are preserved.\n"

(* ------------------------------------------------------------------ *)
(* Extension: grouped-query attention                                  *)

let gqa ?(buf = default_buffer) () =
  section "Extension: grouped-query attention (GQA) variant";
  let t =
    Table.create
      [ "Model"; "Q/KV heads"; "TPUv4i traffic"; "FuseCU traffic"; "saving" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (m : Model.t) ->
           let w = Workload.of_model m in
           let eval p =
             match Perf.eval_workload p buf w with
             | Ok e -> e
             | Error e -> failwith e
           in
           let tpu = eval Platform.tpu_v4i and fusecu = eval Platform.fusecu in
           [ m.name; Printf.sprintf "%d/%d" m.heads m.kv_heads;
             Units.pp_count tpu.Perf.traffic;
             Units.pp_count fusecu.Perf.traffic;
             Units.pp_pct (1. -. Perf.ma_ratio fusecu tpu) ])
         [ Zoo.llama2; Zoo.llama2_70b_gqa ])
  in
  Table.print t

(* ------------------------------------------------------------------ *)
(* Extension: whole-chain fusion vs pairwise                           *)

let chains ?(buf = default_buffer) () =
  section "Extension: whole-chain (3-op) fusion vs pairwise planning";
  let cases =
    [ ("attention+proj head", Chain.of_dims ~name:"attn3" ~m:256 [ 64; 256; 64; 64 ]);
      ("mlp stack", Chain.of_dims ~name:"mlp3" ~m:512 [ 64; 128; 64; 32 ]) ]
  in
  let t =
    Table.create
      [ "Chain"; "Solo"; "Pairwise fusion"; "Whole-chain fusion"; "Fused bound" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (label, chain) ->
           let solo =
             match Planner.plan_ops (Chain.ops chain) buf with
             | Ok p -> p.Planner.traffic
             | Error e -> failwith e
           in
           let pairwise =
             match Planner.plan_chain chain buf with
             | Ok p -> p.Planner.traffic
             | Error e -> failwith e
           in
           let full =
             match Multi_fusion.plan chain buf with
             | Ok d -> Multi_fusion.traffic_of_decision d
             | Error e -> failwith e
           in
           [ label; Units.pp_count solo; Units.pp_count pairwise;
             Units.pp_count full;
             Units.pp_count (Chain.ideal_ma_fused chain) ])
         cases)
  in
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig. 4: the fusable-dataflow catalog                                *)

let fig4 () =
  section "Fig. 4: fusable dataflow patterns (green = profitable)";
  let t =
    Table.create
      [ "Producer"; "via"; "Consumer"; "via"; "Profitable"; "Mapping (Fig. 5)" ]
  in
  let t =
    Table.add_rows t
      (List.map
         (fun (a : Catalog.arrow) ->
           [ Nra.to_string a.producer_class;
             Catalog.method_name a.producer_method;
             Nra.to_string a.consumer_class;
             Catalog.method_name a.consumer_method;
             (if a.profitable then "green" else "red");
             (match Catalog.mapping_for a with
             | Some `Tile_fusion -> "tile fusion"
             | Some `Column_fusion -> "column fusion"
             | None -> "-") ])
         Catalog.arrows)
  in
  Table.print t;
  Printf.printf "\n%d fusable combinations, %d profitable (Principle 4)\n"
    (List.length Catalog.arrows)
    (List.length Catalog.green)
