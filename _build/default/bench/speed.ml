(* Optimizer wall-clock comparison (the paper's motivating claim:
   search-based DSE is time-consuming, the principles are one-shot).
   One Bechamel benchmark per optimization task. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse
open Bechamel
open Toolkit

let bert = Matmul.make ~name:"bert-proj" ~m:1024 ~k:768 ~l:768 ()

let buf = Buffer.of_kib 512

let attention_pair =
  Fused.make_pair_exn
    (Matmul.make ~name:"qk" ~m:1024 ~k:64 ~l:1024 ())
    (Matmul.make ~name:"sv" ~m:1024 ~k:1024 ~l:64 ())

let tests =
  Test.make_grouped ~name:"optimizers"
    [ Test.make ~name:"intra/principles (one-shot)"
        (Staged.stage (fun () -> ignore (Intra.optimize bert buf : _ result)));
      Test.make ~name:"intra/exhaustive-DSE (divisors)"
        (Staged.stage (fun () ->
             ignore (Exhaustive.search bert buf : Exhaustive.result option)));
      Test.make ~name:"intra/genetic-DSE (DAT proxy)"
        (Staged.stage (fun () ->
             ignore (Genetic.search bert buf : Exhaustive.result option)));
      Test.make ~name:"fusion/principles (one-shot)"
        (Staged.stage (fun () ->
             ignore (Fusion.plan_pair attention_pair buf : _ result)));
      Test.make ~name:"fusion/genetic-DSE (DAT proxy)"
        (Staged.stage (fun () ->
             ignore
               (Fused_search.genetic attention_pair buf
                 : Fused_search.result option)));
      Test.make ~name:"arch/FuseCU workload eval (BERT layer)"
        (Staged.stage (fun () ->
             ignore
               (Fusecu_arch.Perf.eval_workload Fusecu_arch.Platform.fusecu buf
                  (Fusecu_workloads.Workload.of_model Fusecu_workloads.Zoo.bert)
                 : _ result))) ]

let run () =
  Printf.printf "\n=== Optimizer timing (Bechamel) ===\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !rows in
  let t = Fusecu_util.Table.create [ "Optimizer"; "time/run"; "vs fastest" ] in
  let fastest = match sorted with (_, ns) :: _ -> ns | [] -> 1. in
  let pp_time ns =
    if ns < 1e3 then Printf.sprintf "%.0fns" ns
    else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
    else Printf.sprintf "%.2fs" (ns /. 1e9)
  in
  let t =
    Fusecu_util.Table.add_rows t
      (List.map
         (fun (name, ns) ->
           [ name; pp_time ns; Printf.sprintf "%.0fx" (ns /. fastest) ])
         sorted)
  in
  Fusecu_util.Table.print t;
  Printf.printf
    "\nThe principle-based optimizer is one-shot; the searched baselines\n\
     evaluate thousands of schedules (the paper's motivation).\n"
