open Fusecu_rtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mat_eq name a b =
  if not (Matrix.equal a b) then
    Alcotest.failf "%s: matrices differ:\n%s\nvs\n%s" name
      (Format.asprintf "%a" Matrix.pp a)
      (Format.asprintf "%a" Matrix.pp b)

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)

let test_matrix_mul () =
  let a = Matrix.make ~rows:2 ~cols:3 (fun i j -> (i * 3) + j) in
  let b = Matrix.make ~rows:3 ~cols:2 (fun i j -> (i * 2) + j) in
  let c = Matrix.mul a b in
  (* [[0 1 2];[3 4 5]] x [[0 1];[2 3];[4 5]] = [[10 13];[28 40]] *)
  check_int "c00" 10 (Matrix.get c 0 0);
  check_int "c01" 13 (Matrix.get c 0 1);
  check_int "c10" 28 (Matrix.get c 1 0);
  check_int "c11" 40 (Matrix.get c 1 1);
  Alcotest.check_raises "mismatch" (Invalid_argument "Matrix.mul: dimension mismatch")
    (fun () -> ignore (Matrix.mul a a))

let test_matrix_transpose () =
  let a = Matrix.random ~seed:1 ~rows:4 ~cols:7 () in
  mat_eq "involutive" a (Matrix.transpose (Matrix.transpose a));
  check_int "rows" 7 (Matrix.rows (Matrix.transpose a))

let test_matrix_random_deterministic () =
  let a = Matrix.random ~seed:5 ~rows:3 ~cols:3 () in
  let b = Matrix.random ~seed:5 ~rows:3 ~cols:3 () in
  mat_eq "same seed" a b;
  let c = Matrix.random ~seed:6 ~rows:3 ~cols:3 () in
  check_bool "different seed differs" false (Matrix.equal a c)

(* ------------------------------------------------------------------ *)
(* XS PE                                                               *)

let test_pe_os_mode () =
  let pe = Xs_pe.create () in
  Xs_pe.set_mode pe Xs_pe.Os;
  let out = Xs_pe.step pe { Xs_pe.a_in = 3; b_in = 4; ps_in = 99 } in
  check_int "acc" 12 (Xs_pe.acc pe);
  check_int "a forwarded" 3 out.Xs_pe.a_out;
  check_int "b forwarded" 4 out.Xs_pe.b_out;
  check_int "no ps in OS" 0 out.Xs_pe.ps_out;
  ignore (Xs_pe.step pe { Xs_pe.a_in = 2; b_in = 5; ps_in = 0 });
  check_int "accumulates" 22 (Xs_pe.acc pe)

let test_pe_stationary_mode () =
  let pe = Xs_pe.create () in
  Xs_pe.set_mode pe Xs_pe.Stationary;
  Xs_pe.load_stationary pe 7;
  let out = Xs_pe.step pe { Xs_pe.a_in = 0; b_in = 3; ps_in = 10 } in
  check_int "ps = ps_in + held*b" 31 out.Xs_pe.ps_out;
  check_int "acc untouched" 0 (Xs_pe.acc pe)

let test_pe_promote () =
  let pe = Xs_pe.create () in
  Xs_pe.set_mode pe Xs_pe.Os;
  ignore (Xs_pe.step pe { Xs_pe.a_in = 6; b_in = 7; ps_in = 0 });
  Xs_pe.promote_acc pe;
  check_int "held = old acc" 42 (Xs_pe.stationary pe);
  check_int "acc cleared" 0 (Xs_pe.acc pe)

(* ------------------------------------------------------------------ *)
(* Systolic engines vs reference                                       *)

let test_os_exact () =
  let array = Systolic.create ~rows:6 ~cols:5 in
  let a = Matrix.random ~seed:11 ~rows:4 ~cols:7 () in
  let b = Matrix.random ~seed:12 ~rows:7 ~cols:5 () in
  let cycles = Systolic.run_os array ~a ~b in
  check_int "cycle formula" (Systolic.os_cycles ~m:4 ~k:7 ~l:5) cycles;
  check_int "cycle value" (7 + 4 + 5 - 2) cycles;
  mat_eq "OS == reference" (Matrix.mul a b) (Systolic.read_acc array ~rows:4 ~cols:5)

let test_is_exact () =
  let array = Systolic.create ~rows:5 ~cols:6 in
  let s = Matrix.random ~seed:21 ~rows:5 ~cols:6 () in
  let d = Matrix.random ~seed:22 ~rows:6 ~cols:4 () in
  let e, cycles = Systolic.run_is array ~s ~d in
  check_int "cycle formula" (Systolic.stream_cycles array ~m:5 ~n:4) cycles;
  mat_eq "IS == reference" (Matrix.mul s d) e

let test_ws_exact () =
  let array = Systolic.create ~rows:8 ~cols:8 in
  let a = Matrix.random ~seed:31 ~rows:5 ~cols:8 () in
  let b = Matrix.random ~seed:32 ~rows:8 ~cols:6 () in
  let c, _cycles = Systolic.run_ws array ~a ~b in
  mat_eq "WS == reference" (Matrix.mul a b) c

let test_tile_fusion_primitive () =
  (* OS then promote then stream: (A x B) x D with no reload of C *)
  let array = Systolic.create ~rows:6 ~cols:6 in
  let a = Matrix.random ~seed:41 ~rows:6 ~cols:5 () in
  let b = Matrix.random ~seed:42 ~rows:5 ~cols:6 () in
  let d = Matrix.random ~seed:43 ~rows:6 ~cols:3 () in
  ignore (Systolic.run_os array ~a ~b);
  Systolic.promote array;
  let e, _ = Systolic.run_stream array ~m:6 ~d in
  mat_eq "promoted chain" (Matrix.mul (Matrix.mul a b) d) e

let test_os_rejects_oversize () =
  let array = Systolic.create ~rows:2 ~cols:2 in
  let a = Matrix.random ~seed:1 ~rows:3 ~cols:2 () in
  let b = Matrix.random ~seed:2 ~rows:2 ~cols:2 () in
  Alcotest.check_raises "too tall" (Invalid_argument "Systolic.run_os: tile too large")
    (fun () -> ignore (Systolic.run_os array ~a ~b))

let prop_os_matches_reference =
  QCheck.Test.make ~count:60 ~name:"systolic OS == reference product"
    (QCheck.make
       ~print:(fun (m, k, l, seed) -> Printf.sprintf "m=%d k=%d l=%d seed=%d" m k l seed)
       QCheck.Gen.(
         let* m = int_range 1 10 and* k = int_range 1 10 and* l = int_range 1 10 in
         let* seed = int_range 0 1000 in
         return (m, k, l, seed)))
    (fun (m, k, l, seed) ->
      let array = Systolic.create ~rows:m ~cols:l in
      let a = Matrix.random ~seed ~rows:m ~cols:k () in
      let b = Matrix.random ~seed:(seed + 1) ~rows:k ~cols:l () in
      ignore (Systolic.run_os array ~a ~b);
      Matrix.equal (Matrix.mul a b) (Systolic.read_acc array ~rows:m ~cols:l))

let prop_is_matches_reference =
  QCheck.Test.make ~count:60 ~name:"systolic IS == reference product"
    (QCheck.make
       ~print:(fun (m, q, n, seed) -> Printf.sprintf "m=%d q=%d n=%d seed=%d" m q n seed)
       QCheck.Gen.(
         let* m = int_range 1 10 and* q = int_range 1 10 and* n = int_range 1 10 in
         let* seed = int_range 0 1000 in
         return (m, q, n, seed)))
    (fun (m, q, n, seed) ->
      let array = Systolic.create ~rows:m ~cols:q in
      let s = Matrix.random ~seed ~rows:m ~cols:q () in
      let d = Matrix.random ~seed:(seed + 1) ~rows:q ~cols:n () in
      let e, _ = Systolic.run_is array ~s ~d in
      Matrix.equal (Matrix.mul s d) e)

(* ------------------------------------------------------------------ *)
(* FuseCU cluster                                                      *)

let cluster = Fusecu_sim.create ~n:8 ()

let test_shapes () =
  Alcotest.(check (pair int int)) "square" (8, 8)
    (Fusecu_sim.logical_shape cluster Fusecu_sim.Square);
  Alcotest.(check (pair int int)) "narrow2" (16, 8)
    (Fusecu_sim.logical_shape cluster Fusecu_sim.Narrow2);
  Alcotest.(check (pair int int)) "wide4" (8, 32)
    (Fusecu_sim.logical_shape cluster Fusecu_sim.Wide4);
  Alcotest.(check (pair int int)) "big square" (16, 16)
    (Fusecu_sim.logical_shape cluster Fusecu_sim.Big_square);
  check_int "cus square" 1 (Fusecu_sim.cus_used Fusecu_sim.Square);
  check_int "cus wide2" 2 (Fusecu_sim.cus_used Fusecu_sim.Wide2);
  check_int "cus big" 4 (Fusecu_sim.cus_used Fusecu_sim.Big_square)

let test_run_mm_all_configs () =
  List.iter
    (fun config ->
      let rows, cols = Fusecu_sim.logical_shape cluster config in
      let a = Matrix.random ~seed:51 ~rows ~cols:5 () in
      let b = Matrix.random ~seed:52 ~rows:5 ~cols () in
      match Fusecu_sim.run_mm cluster config ~a ~b with
      | Ok (c, cycles) ->
        mat_eq (Fusecu_sim.config_name config) (Matrix.mul a b) c;
        check_bool "cycles positive" true (cycles > 0)
      | Error e -> Alcotest.fail e)
    Fusecu_sim.all_configs

let test_tile_fused_all_configs () =
  List.iter
    (fun config ->
      let rows, cols = Fusecu_sim.logical_shape cluster config in
      let a = Matrix.random ~seed:61 ~rows ~cols:4 () in
      let b = Matrix.random ~seed:62 ~rows:4 ~cols () in
      let d = Matrix.random ~seed:63 ~rows:cols ~cols:3 () in
      match Fusecu_sim.run_tile_fused cluster config ~a ~b ~d with
      | Ok (e, cycles) ->
        mat_eq (Fusecu_sim.config_name config) (Matrix.mul (Matrix.mul a b) d) e;
        check_bool "cycles account for both phases" true (cycles > 0)
      | Error e -> Alcotest.fail e)
    Fusecu_sim.all_configs

let test_column_fused_all_configs () =
  List.iter
    (fun config ->
      let rows, _cols = Fusecu_sim.logical_shape cluster config in
      (* producer holds A (m x k); stream B; consume with D *)
      let m = rows and k = 4 and l1 = 9 and l2 = 5 in
      let a = Matrix.random ~seed:71 ~rows:m ~cols:k () in
      let b = Matrix.random ~seed:72 ~rows:k ~cols:l1 () in
      let d = Matrix.random ~seed:73 ~rows:l1 ~cols:l2 () in
      match Fusecu_sim.run_column_fused cluster config ~a ~b ~d with
      | Ok (e, cycles) ->
        mat_eq (Fusecu_sim.config_name config) (Matrix.mul (Matrix.mul a b) d) e;
        check_bool "cycles positive" true (cycles > 0)
      | Error e -> Alcotest.fail e)
    [ Fusecu_sim.Square; Fusecu_sim.Wide2; Fusecu_sim.Narrow2 ]

let test_fused_rejects_oversize () =
  let a = Matrix.random ~seed:81 ~rows:20 ~cols:4 () in
  let b = Matrix.random ~seed:82 ~rows:4 ~cols:8 () in
  let d = Matrix.random ~seed:83 ~rows:8 ~cols:3 () in
  check_bool "tile fusion oversize" true
    (Result.is_error (Fusecu_sim.run_tile_fused cluster Fusecu_sim.Square ~a ~b ~d));
  check_bool "column fusion oversize" true
    (Result.is_error
       (Fusecu_sim.run_column_fused cluster Fusecu_sim.Square ~a ~b ~d))

let test_tile_fusion_cycle_accounting () =
  (* the fused run must not be slower than the two phases plus the
     configuration flip, and must beat two separate OS passes that
     would reload the intermediate *)
  let config = Fusecu_sim.Square in
  let a = Matrix.random ~seed:91 ~rows:8 ~cols:6 () in
  let b = Matrix.random ~seed:92 ~rows:6 ~cols:8 () in
  let d = Matrix.random ~seed:93 ~rows:8 ~cols:8 () in
  match Fusecu_sim.run_tile_fused cluster config ~a ~b ~d with
  | Error e -> Alcotest.fail e
  | Ok (_, fused_cycles) ->
    let phase1 = Systolic.os_cycles ~m:8 ~k:6 ~l:8 in
    let array = Systolic.create ~rows:8 ~cols:8 in
    let phase2 = Systolic.stream_cycles array ~m:8 ~n:8 in
    check_int "fused = phase1 + 1 + phase2" (phase1 + 1 + phase2) fused_cycles


(* ------------------------------------------------------------------ *)
(* Configuration controller                                            *)

let test_controller_tile_fused () =
  let array = Systolic.create ~rows:8 ~cols:8 in
  let a = Matrix.random ~seed:101 ~rows:8 ~cols:5 () in
  let b = Matrix.random ~seed:102 ~rows:5 ~cols:8 () in
  let d = Matrix.random ~seed:103 ~rows:8 ~cols:4 () in
  match Controller.execute array (Controller.tile_fused_program ~a ~b ~d) with
  | Error e -> Alcotest.fail e
  | Ok trace ->
    check_int "six commands" 6 trace.commands_run;
    (match trace.outputs with
    | [ e ] -> mat_eq "program result" (Matrix.mul (Matrix.mul a b) d) e
    | _ -> Alcotest.fail "expected one output");
    check_bool "cycles positive" true (trace.cycles > 0)

let test_controller_unfused_matches_and_costs_more () =
  let array = Systolic.create ~rows:8 ~cols:8 in
  let a = Matrix.random ~seed:111 ~rows:8 ~cols:6 () in
  let b = Matrix.random ~seed:112 ~rows:6 ~cols:8 () in
  let d = Matrix.random ~seed:113 ~rows:8 ~cols:8 () in
  let reference = Matrix.mul (Matrix.mul a b) d in
  let fused =
    match Controller.execute array (Controller.tile_fused_program ~a ~b ~d) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let unfused =
    match Controller.execute array (Controller.unfused_program ~a ~b ~d) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (match unfused.outputs with
  | [ e ] -> mat_eq "unfused result" reference e
  | _ -> Alcotest.fail "expected one output");
  (match fused.outputs with
  | [ e ] -> mat_eq "fused result" reference e
  | _ -> Alcotest.fail "expected one output");
  check_bool "fusion is not slower on-array" true
    (fused.cycles <= unfused.cycles)

let test_controller_error_propagates () =
  let array = Systolic.create ~rows:2 ~cols:2 in
  let a = Matrix.random ~seed:1 ~rows:4 ~cols:2 () in
  let b = Matrix.random ~seed:2 ~rows:2 ~cols:2 () in
  match
    Controller.execute array [ Controller.Clear; Controller.Run_os { a; b } ]
  with
  | Error msg ->
    check_bool "names the failing command" true
      (String.length msg > 0 && msg.[8] = '1')
  | Ok _ -> Alcotest.fail "expected an error"


(* ------------------------------------------------------------------ *)
(* Requantization (Fig. 6's quantized-result mux)                      *)

let test_requant_basics () =
  let r = Requant.make ~multiplier:1 ~shift:1 in
  check_int "halving rounds to nearest" 3 (Requant.apply r 5);
  check_int "negative symmetric" (-3) (Requant.apply r (-5));
  check_int "saturates high" 127 (Requant.apply Requant.identity 1000);
  check_int "saturates low" (-128) (Requant.apply Requant.identity (-1000));
  Alcotest.check_raises "bad multiplier"
    (Invalid_argument "Requant.make: multiplier out of range") (fun () ->
      ignore (Requant.make ~multiplier:40000 ~shift:0))

let test_requant_of_scale () =
  List.iter
    (fun scale ->
      let r = Requant.of_scale scale in
      let got = Requant.effective_scale r in
      check_bool
        (Printf.sprintf "scale %.4f approximated (got %.5f)" scale got)
        true
        (Float.abs (got -. scale) /. scale < 0.001))
    [ 1.0; 0.5; 0.1; 1. /. 127.; 0.003 ];
  Alcotest.check_raises "zero scale"
    (Invalid_argument "Requant.of_scale: scale must be in (0, 1]") (fun () ->
      ignore (Requant.of_scale 0.))

let prop_requant_close_to_real =
  QCheck.Test.make ~count:300 ~name:"requant within one ulp of the real scale"
    (QCheck.make
       ~print:(fun (v, s) -> Printf.sprintf "v=%d scale=%.4f" v s)
       QCheck.Gen.(
         let* v = int_range (-100000) 100000 in
         let* s = float_range 0.001 1.0 in
         return (v, s)))
    (fun (v, scale) ->
      let r = Requant.of_scale scale in
      let exact =
        Fusecu_util.Arith.clamp ~lo:(-128) ~hi:127
          (int_of_float (Float.round (float_of_int v *. scale)))
      in
      abs (Requant.apply r v - exact) <= 1)

(* ------------------------------------------------------------------ *)
(* Softmax unit                                                        *)

let softmax = Softmax_unit.create ()

let test_softmax_rows () =
  (* a uniform row maps to equal probabilities *)
  let uniform = Softmax_unit.apply_row softmax [| 5; 5; 5; 5 |] in
  Array.iter (fun p -> check_int "uniform" uniform.(0) p) uniform;
  check_bool "quarter each" true (abs (uniform.(0) - 32) <= 2);
  (* a dominant logit takes nearly all the mass *)
  let peaked = Softmax_unit.apply_row softmax [| 500; 0; 0; 0 |] in
  check_bool "winner take most" true (peaked.(0) > 120);
  check_bool "losers near zero" true (peaked.(1) <= 2);
  (* empty row *)
  check_int "empty" 0 (Array.length (Softmax_unit.apply_row softmax [||]))

let prop_softmax_accuracy =
  QCheck.Test.make ~count:200 ~name:"softmax unit within 3 int8 units of float"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let row = Array.init 16 (fun _ -> Random.State.int rng 512 - 256) in
      Softmax_unit.max_row_error softmax row <= 3)

let prop_softmax_mass_conserved =
  QCheck.Test.make ~count:200 ~name:"softmax outputs sum to ~127"
    (QCheck.make
       ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let rng = Random.State.make [| seed + 77 |] in
      let row = Array.init 12 (fun _ -> Random.State.int rng 256 - 128) in
      let out = Softmax_unit.apply_row softmax row in
      let total = Array.fold_left ( + ) 0 out in
      abs (total - 127) <= 12)

(* ------------------------------------------------------------------ *)
(* Fused attention pipeline                                            *)

let test_attention_pipeline () =
  let q = Matrix.random ~seed:201 ~rows:16 ~cols:8 () in
  let k = Matrix.random ~seed:202 ~rows:16 ~cols:8 () in
  let v = Matrix.random ~seed:203 ~rows:16 ~cols:8 () in
  match Attention_pipeline.run ~q ~k ~v () with
  | Error e -> Alcotest.fail e
  | Ok r ->
    check_bool "close to the float reference" true (r.max_abs_error <= 3);
    check_bool "cycles cover three phases" true (r.cycles > 16);
    check_int "output shape rows" 16 (Matrix.rows r.output);
    check_int "output shape cols" 8 (Matrix.cols r.output)

let test_attention_pipeline_rejects_oversize () =
  let q = Matrix.random ~seed:1 ~rows:64 ~cols:8 () in
  check_bool "seq too large" true
    (Result.is_error (Attention_pipeline.run ~n:32 ~q ~k:q ~v:q ()))

let test_attention_reference_shape () =
  let q = Matrix.random ~seed:5 ~rows:8 ~cols:4 () in
  let reference = Attention_pipeline.reference ~q ~k:q ~v:q in
  check_int "rows" 8 (Matrix.rows reference);
  check_int "cols" 4 (Matrix.cols reference);
  (* outputs are convex combinations of int8 values *)
  Array.iter
    (Array.iter (fun x -> check_bool "int8 range" true (x >= -128 && x <= 127)))
    reference

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
    [ prop_os_matches_reference; prop_is_matches_reference;
      prop_requant_close_to_real; prop_softmax_accuracy;
      prop_softmax_mass_conserved ]

let () =
  Alcotest.run "rtl"
    [ ( "matrix",
        [ Alcotest.test_case "mul" `Quick test_matrix_mul;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "random deterministic" `Quick
            test_matrix_random_deterministic ] );
      ( "xs-pe",
        [ Alcotest.test_case "OS datapath" `Quick test_pe_os_mode;
          Alcotest.test_case "stationary datapath" `Quick test_pe_stationary_mode;
          Alcotest.test_case "promote (tile-fusion trick)" `Quick test_pe_promote ] );
      ( "systolic",
        [ Alcotest.test_case "OS exact" `Quick test_os_exact;
          Alcotest.test_case "IS exact" `Quick test_is_exact;
          Alcotest.test_case "WS exact" `Quick test_ws_exact;
          Alcotest.test_case "tile-fusion primitive" `Quick
            test_tile_fusion_primitive;
          Alcotest.test_case "rejects oversize" `Quick test_os_rejects_oversize ] );
      ( "fusecu",
        [ Alcotest.test_case "logical shapes" `Quick test_shapes;
          Alcotest.test_case "plain MM on all configs" `Quick
            test_run_mm_all_configs;
          Alcotest.test_case "tile fusion on all configs" `Quick
            test_tile_fused_all_configs;
          Alcotest.test_case "column fusion" `Quick test_column_fused_all_configs;
          Alcotest.test_case "rejects oversize tiles" `Quick
            test_fused_rejects_oversize;
          Alcotest.test_case "cycle accounting" `Quick
            test_tile_fusion_cycle_accounting ] );
      ( "requant",
        [ Alcotest.test_case "basics" `Quick test_requant_basics;
          Alcotest.test_case "of_scale" `Quick test_requant_of_scale ] );
      ( "softmax-unit",
        [ Alcotest.test_case "rows" `Quick test_softmax_rows ] );
      ( "attention-pipeline",
        [ Alcotest.test_case "fused attention accurate" `Quick
            test_attention_pipeline;
          Alcotest.test_case "rejects oversize" `Quick
            test_attention_pipeline_rejects_oversize;
          Alcotest.test_case "reference shape" `Quick
            test_attention_reference_shape ] );
      ( "controller",
        [ Alcotest.test_case "tile-fused program" `Quick test_controller_tile_fused;
          Alcotest.test_case "unfused round trip" `Quick
            test_controller_unfused_matches_and_costs_more;
          Alcotest.test_case "error propagation" `Quick
            test_controller_error_propagates ] );
      ("properties", qsuite) ]
