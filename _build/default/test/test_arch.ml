open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_arch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Platform attributes (Table III)                                     *)

let test_platform_roster () =
  check_int "five platforms" 5 (List.length Platform.all);
  Alcotest.(check (list string)) "order"
    [ "TPUv4i"; "Gemmini"; "Planaria"; "UnfCU"; "FuseCU" ]
    (List.map (fun (p : Platform.t) -> p.name) Platform.all)

let test_table3_attributes () =
  let get name = Option.get (Platform.find name) in
  let flexible (p : Platform.t) = List.length p.anchors > 1 in
  check_bool "tpu stationary fixed" false (flexible (get "TPUv4i"));
  check_bool "gemmini stationary flexible" true (flexible (get "Gemmini"));
  check_bool "planaria stationary fixed" false (flexible (get "Planaria"));
  check_bool "fusecu stationary flexible" true (flexible (get "FuseCU"));
  check_bool "only fusecu fuses" true
    (List.for_all
       (fun (p : Platform.t) -> p.fusion = (p.name = "FuseCU"))
       Platform.all);
  check_int "peak PEs" (128 * 128 * 4) (Platform.total_pes (get "TPUv4i"));
  check_int "table rows" 5 (List.length (Platform.attribute_rows ()))

let tpu = Platform.tpu_v4i
let gem = Platform.gemmini
let plan_p = Platform.planaria
let unf = Platform.unfcu
let fus = Platform.fusecu

(* ------------------------------------------------------------------ *)
(* Mapping: anchors                                                    *)

let test_intent_anchor () =
  let operand_t = Alcotest.testable Operand.pp Operand.equal in
  Alcotest.check operand_t "single OS" Operand.C
    (Mapping.intent_anchor (Nra.Single_nra { stationary = Operand.C }));
  Alcotest.check operand_t "two untiled-K redundant B" Operand.A
    (Mapping.intent_anchor
       (Nra.Two_nra { untiled = Dim.K; redundant = Operand.B }));
  Alcotest.check operand_t "two untiled-K redundant A" Operand.B
    (Mapping.intent_anchor
       (Nra.Two_nra { untiled = Dim.K; redundant = Operand.A }));
  Alcotest.check operand_t "three resident" Operand.B
    (Mapping.intent_anchor (Nra.Three_nra { resident = Operand.B }))

let test_schedule_anchor_largest_tile () =
  let op = Matmul.make ~m:64 ~k:64 ~l:64 () in
  let s =
    Schedule.make
      (Tiling.make op ~m:32 ~k:32 ~l:1)
      (Order.make ~outer:Dim.L ~mid:Dim.M ~inner:Dim.K)
  in
  (* A tile = 32x32 = 1024 dominates *)
  Alcotest.check
    (Alcotest.testable Operand.pp Operand.equal)
    "A anchored" Operand.A
    (Mapping.schedule_anchor op s)

let test_anchor_cap () =
  Alcotest.(check (option int)) "low flex capped at 2N" (Some 256)
    (Mapping.anchor_cap tpu);
  Alcotest.(check (option int)) "mid uncapped" None (Mapping.anchor_cap unf);
  Alcotest.(check (option int)) "high uncapped" None (Mapping.anchor_cap plan_p)

let test_admit_restricts_anchor_operand () =
  let op = Matmul.make ~m:512 ~k:512 ~l:512 () in
  let buf = Buffer.of_kib 256 in
  let c_stationary =
    List.find
      (fun (c : Principles.candidate) ->
        match c.intent with
        | Nra.Single_nra { stationary = Operand.C } -> true
        | _ -> false)
      (Intra.candidates op buf)
  in
  check_bool "tpu rejects OS" true (Mapping.admit tpu op buf c_stationary = None);
  check_bool "gemmini admits OS" true
    (Mapping.admit gem op buf c_stationary <> None)

let test_admit_restricts_class () =
  let op = Matmul.make ~m:512 ~k:64 ~l:512 () in
  let buf = Buffer.of_kib 256 in
  let two_b_anchor =
    List.find_opt
      (fun (c : Principles.candidate) ->
        match c.intent with
        | Nra.Two_nra { untiled = Dim.K; redundant = Operand.A } -> true
        | _ -> false)
      (Intra.candidates op buf)
  in
  match two_b_anchor with
  | None -> Alcotest.fail "expected a Two-NRA candidate"
  | Some c ->
    check_bool "tpu rejects Two-NRA" true (Mapping.admit tpu op buf c = None);
    check_bool "planaria admits B-anchored Two-NRA" true
      (Mapping.admit plan_p op buf c <> None)

let test_admit_caps_low_flex_tiles () =
  let op = Matmul.make ~m:4096 ~k:768 ~l:768 () in
  let buf = Buffer.of_mib 8 in
  List.iter
    (fun (c : Principles.candidate) ->
      match Mapping.admit tpu op buf c with
      | None -> ()
      | Some admitted ->
        let anchor = Mapping.intent_anchor admitted.intent in
        let d1, d2 = Operand.dims anchor in
        check_bool "anchor dims capped" true
          (Tiling.get admitted.schedule.tiling d1 <= 256
          && Tiling.get admitted.schedule.tiling d2 <= 256))
    (Intra.candidates op buf)

(* ------------------------------------------------------------------ *)
(* Utilization                                                         *)

let test_spatial_util () =
  (* a 128x128 tile fills a fixed 128x128 array exactly *)
  check_float "perfect fill" 1.0 (Mapping.spatial_util tpu ~rows:128 ~cols:128);
  (* 64 rows on a 128-row fixed array wastes half *)
  check_float "half fill" 0.5 (Mapping.spatial_util tpu ~rows:64 ~cols:128);
  (* Planaria's 16-grain fission handles 64 rows exactly *)
  check_float "planaria fission" 1.0
    (Mapping.spatial_util plan_p ~rows:64 ~cols:128);
  (* FuseCU composes 256-wide shapes *)
  check_float "fusecu wide" 1.0 (Mapping.spatial_util fus ~rows:128 ~cols:256);
  check_bool "fusecu 64 rows partial" true
    (Mapping.spatial_util fus ~rows:64 ~cols:128 < 1.0)

let test_temporal_eff () =
  let short = Mapping.temporal_eff tpu ~rows:128 ~cols:128 ~stream:64 in
  let long = Mapping.temporal_eff tpu ~rows:128 ~cols:128 ~stream:16384 in
  check_bool "longer streams amortize fill" true (long > short);
  check_bool "bounded by 1" true (long < 1.0 && long > 0.97)

let test_solo_util_range () =
  let op = Matmul.make ~m:1024 ~k:768 ~l:768 () in
  let buf = Buffer.of_kib 512 in
  List.iter
    (fun p ->
      match Perf.plan_op p buf op with
      | Error e -> Alcotest.fail e
      | Ok plan ->
        let u = Mapping.solo_util p op plan.schedule in
        check_bool
          (Printf.sprintf "%s util in (0,1]" p.Platform.name)
          true
          (u > 0. && u <= 1.0))
    Platform.all

(* ------------------------------------------------------------------ *)
(* Perf: platform-restricted planning                                  *)

let test_plan_op_obeys_platform () =
  let op = Matmul.make ~m:2048 ~k:768 ~l:768 () in
  let buf = Buffer.of_kib 512 in
  (* TPU: anchor must be B; Gemmini: Single class only *)
  (match Perf.plan_op tpu buf op with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    Alcotest.check
      (Alcotest.testable Operand.pp Operand.equal)
      "tpu anchors B" Operand.B
      (Mapping.schedule_anchor op plan.schedule));
  match Perf.plan_op gem buf op with
  | Error e -> Alcotest.fail e
  | Ok _ -> ()

let test_restricted_never_beats_free () =
  let buf = Buffer.of_kib 512 in
  let ops =
    [ Matmul.make ~m:1024 ~k:768 ~l:768 ();
      Matmul.make ~m:1024 ~k:64 ~l:1024 ();
      Matmul.make ~m:16384 ~k:768 ~l:3072 () ]
  in
  List.iter
    (fun op ->
      let free = Intra.ma (Intra.optimize_exn op buf) in
      List.iter
        (fun p ->
          match Perf.plan_op p buf op with
          | Error e -> Alcotest.fail e
          | Ok plan ->
            check_bool
              (Printf.sprintf "%s >= unrestricted on %s" p.Platform.name
                 op.Matmul.name)
              true
              (Intra.ma plan >= free))
        Platform.all)
    ops

let test_ma_ordering_on_attention () =
  (* attention scores op: the flexible platforms reach the lower bound,
     the rigid ones cannot *)
  let op = Matmul.make ~name:"qk" ~m:4096 ~k:128 ~l:4096 () in
  let buf = Buffer.of_kib 512 in
  let ma p =
    match Perf.plan_op p buf op with
    | Ok plan -> Intra.ma plan
    | Error e -> Alcotest.fail e
  in
  let tpu_ma = ma tpu and plan_ma = ma plan_p and unf_ma = ma unf in
  check_bool "planaria <= tpu" true (plan_ma <= tpu_ma);
  check_bool "unfcu <= planaria" true (unf_ma <= plan_ma);
  check_bool "tpu strictly worse here" true (tpu_ma > unf_ma)

(* ------------------------------------------------------------------ *)
(* Perf: workload evaluation                                           *)

let bert_workload = Fusecu_workloads.Workload.of_model Fusecu_workloads.Zoo.bert

let evals =
  lazy
    (let buf = Buffer.of_kib 512 in
     List.map
       (fun p ->
         match Perf.eval_workload p buf bert_workload with
         | Ok e -> (p.Platform.name, e)
         | Error e -> Alcotest.fail e)
       Platform.all)

let test_eval_totals_consistent () =
  List.iter
    (fun (_, (e : Perf.eval)) ->
      check_int "traffic = segment sum"
        (List.fold_left (fun acc (s : Perf.segment) -> acc + (s.traffic * s.count)) 0
           e.segments)
        e.traffic;
      check_int "macs = workload macs"
        (Fusecu_workloads.Workload.total_macs bert_workload)
        e.macs;
      check_bool "utilization in (0,1]" true
        (e.utilization > 0. && e.utilization <= 1.0))
    (Lazy.force evals)

let test_fig10_ordering () =
  let traffic name = (List.assoc name (Lazy.force evals)).Perf.traffic in
  (* the paper's Fig. 10 ordering: FuseCU < UnfCU <= Planaria < Gemmini
     <= TPUv4i on memory access *)
  check_bool "fusecu < unfcu" true (traffic "FuseCU" < traffic "UnfCU");
  check_bool "unfcu <= planaria" true (traffic "UnfCU" <= traffic "Planaria");
  check_bool "planaria < gemmini" true (traffic "Planaria" < traffic "Gemmini");
  check_bool "gemmini <= tpu" true (traffic "Gemmini" <= traffic "TPUv4i")

let test_fig10_speedup () =
  let cycles name = (List.assoc name (Lazy.force evals)).Perf.cycles in
  check_bool "fusecu fastest" true
    (List.for_all
       (fun (name, _) -> cycles "FuseCU" <= cycles name)
       (Lazy.force evals))

let test_ratios () =
  let e = Lazy.force evals in
  let fusecu = List.assoc "FuseCU" e and tpu_e = List.assoc "TPUv4i" e in
  let r = Perf.ma_ratio fusecu tpu_e in
  check_bool "saving substantial" true (r < 0.7);
  check_bool "speedup >= 1" true (Perf.speedup fusecu tpu_e >= 1.0)

(* ------------------------------------------------------------------ *)
(* Area (Fig. 12)                                                      *)

let test_area_breakdown () =
  let b = Area.fusecu_breakdown () in
  check_bool "overhead near 12%" true
    (b.overhead_pct > 0.08 && b.overhead_pct < 0.16);
  check_bool "interconnect+control < 0.1%" true (b.interconnect_pct < 0.001);
  check_bool "base dominated by MACs" true (b.base_um2 > b.overhead_um2 *. 5.);
  let total_overhead =
    List.fold_left
      (fun acc (c : Area.component) -> if c.overhead then acc +. c.area_um2 else acc)
      0. b.components
  in
  check_float "overhead sums" b.overhead_um2 total_overhead

let test_area_scales_with_pes () =
  let small = Area.fusecu_breakdown ~pe_dim:16 () in
  let big = Area.fusecu_breakdown ~pe_dim:128 () in
  check_bool "area grows" true (big.base_um2 > small.base_um2);
  (* overhead percentage is roughly PE-count independent *)
  check_bool "overhead pct stable" true
    (Float.abs (big.overhead_pct -. small.overhead_pct) < 0.02)


(* ------------------------------------------------------------------ *)
(* Energy                                                              *)

let test_energy_components () =
  let e = List.assoc "TPUv4i" (Lazy.force evals) in
  let energy = Energy.of_eval e in
  Alcotest.(check (float 1e-6)) "components sum"
    energy.Energy.total_nj
    (energy.dram_nj +. energy.buffer_nj +. energy.compute_nj +. energy.static_nj);
  check_bool "all positive" true
    (energy.dram_nj > 0. && energy.buffer_nj > 0. && energy.compute_nj > 0.)

let test_energy_follows_traffic () =
  let e = Lazy.force evals in
  let energy name = Energy.of_eval (List.assoc name e) in
  let fusecu = energy "FuseCU" and tpu_e = energy "TPUv4i" in
  check_bool "fusecu saves energy" true (Energy.saving fusecu tpu_e > 0.);
  (* the MAC floor bounds the saving: both run the same MACs *)
  Alcotest.(check (float 1e-6)) "same compute energy"
    fusecu.Energy.compute_nj tpu_e.Energy.compute_nj;
  check_bool "saving below the traffic saving" true
    (Energy.saving fusecu tpu_e
    < 1. -. Perf.ma_ratio (List.assoc "FuseCU" e) (List.assoc "TPUv4i" e) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ablation ladder                                                     *)

let test_ablation_ladder () =
  check_int "four steps" 4 (List.length Ablation.ladder);
  match Ablation.run [ Fusecu_workloads.Zoo.bert; Fusecu_workloads.Zoo.xlm ] with
  | Error e -> Alcotest.fail e
  | Ok steps ->
    check_int "four results" 4 (List.length steps);
    let base = List.hd steps in
    Alcotest.(check (float 1e-9)) "base saves nothing" 0. base.Ablation.ma_saving_vs_base;
    (* traffic is non-increasing along the ladder *)
    let rec non_increasing = function
      | (a : Ablation.step) :: (b :: _ as rest) ->
        check_bool
          (Printf.sprintf "%s <= %s traffic" b.name a.name)
          true
          (b.traffic <= a.traffic);
        non_increasing rest
      | _ -> ()
    in
    non_increasing steps;
    let final = List.nth steps 3 in
    check_bool "fusion step contributes" true
      (final.traffic < (List.nth steps 2).Ablation.traffic);
    check_bool "full design fastest" true (final.speedup_vs_base >= 1.0)


(* ------------------------------------------------------------------ *)
(* Discrete-event CU scheduler                                         *)

let test_sim_single_job () =
  let job = { Schedule_sim.label = "j"; compute_cycles = 1000.; bytes = 2048. } in
  let r = Schedule_sim.run tpu [ job ] in
  (* one job alone gets the full port: finishes at max(compute, bytes/bw) *)
  Alcotest.(check (float 1.)) "roofline" (Float.max 1000. (2048. /. 1024.)) r.makespan;
  check_bool "one CU busy" true (r.busy.(0) > 0.)

let test_sim_parallel_speedup () =
  let job = { Schedule_sim.label = "j"; compute_cycles = 1000.; bytes = 0. } in
  let r = Schedule_sim.run tpu (List.init 4 (fun _ -> job)) in
  Alcotest.(check (float 1.)) "four compute-bound jobs run in parallel" 1000.
    r.makespan;
  Alcotest.(check (float 1e-6)) "full utilization" 1.0 r.utilization

let test_sim_bandwidth_contention () =
  (* four memory-only jobs share the port: aggregate transfer time *)
  let job = { Schedule_sim.label = "j"; compute_cycles = 0.; bytes = 1024. *. 100. } in
  let r = Schedule_sim.run tpu (List.init 4 (fun _ -> job)) in
  Alcotest.(check (float 1.)) "serialized by the port" 400. r.makespan

let test_sim_bounds_hold () =
  let e = List.assoc "FuseCU" (Lazy.force evals) in
  let r = Schedule_sim.simulate_eval e in
  check_bool "above compute bound" true (r.makespan >= r.compute_bound -. 1e-6);
  check_bool "above bandwidth bound" true
    (r.makespan >= r.bandwidth_bound -. 1e-6);
  check_bool "utilization in (0,1]" true (r.utilization > 0. && r.utilization <= 1.0)

let test_sim_orders_platforms_like_perf () =
  let e = Lazy.force evals in
  let span name = (Schedule_sim.simulate_eval (List.assoc name e)).makespan in
  check_bool "fusecu fastest under contention too" true
    (span "FuseCU" <= span "TPUv4i" && span "FuseCU" <= span "Planaria")


(* ------------------------------------------------------------------ *)
(* Inter-CU link (NoC)                                                 *)

let test_noc_column_fusion_matched () =
  (* attention pair: column heights equal the M tile; on FuseCU the
     link is as wide as a CU, so no stall for tiles <= 128 *)
  let pair =
    Fused.make_pair_exn
      (Matmul.make ~name:"qk" ~m:128 ~k:64 ~l:128 ())
      (Matmul.make ~name:"sv" ~m:128 ~k:128 ~l:64 ())
  in
  match Fusion.plan_pair pair (Buffer.make 65536) with
  | Ok (Fusion.Fuse { fused; _ }) -> (
    match Noc.column_fusion_transfer fus pair fused with
    | None -> () (* tile fusion chosen: nothing crosses the link *)
    | Some t ->
      check_int "no stalls at matched width" 0 t.Noc.stall_cycles;
      Alcotest.(check (float 1e-9)) "full occupancy needs exact match"
        (float_of_int t.Noc.column_height
        /. float_of_int (t.Noc.cycles_per_column * t.Noc.link_width))
        (Noc.occupancy t))
  | Ok (Fusion.No_fuse { why; _ }) -> Alcotest.fail why
  | Error e -> Alcotest.fail e

let test_noc_tall_columns_stall () =
  let pair =
    Fused.make_pair_exn
      (Matmul.make ~m:512 ~k:64 ~l:512 ())
      (Matmul.make ~m:512 ~k:512 ~l:64 ())
  in
  match Fusion.plan_pair pair (Buffer.make 262144) with
  | Ok (Fusion.Fuse { fused; _ }) -> (
    match Noc.column_fusion_transfer fus pair fused with
    | None -> ()
    | Some t ->
      if t.Noc.column_height > t.Noc.link_width then begin
        check_bool "tall columns take multiple link cycles" true
          (t.Noc.cycles_per_column > 1);
        check_bool "stalls counted" true (t.Noc.stall_cycles > 0)
      end)
  | Ok (Fusion.No_fuse _) | Error _ -> ()

let () =
  Alcotest.run "arch"
    [ ( "platform",
        [ Alcotest.test_case "roster" `Quick test_platform_roster;
          Alcotest.test_case "Table III attributes" `Quick test_table3_attributes ] );
      ( "mapping",
        [ Alcotest.test_case "intent anchor" `Quick test_intent_anchor;
          Alcotest.test_case "schedule anchor" `Quick
            test_schedule_anchor_largest_tile;
          Alcotest.test_case "anchor cap" `Quick test_anchor_cap;
          Alcotest.test_case "admit anchor restriction" `Quick
            test_admit_restricts_anchor_operand;
          Alcotest.test_case "admit class restriction" `Quick
            test_admit_restricts_class;
          Alcotest.test_case "admit caps low-flex tiles" `Quick
            test_admit_caps_low_flex_tiles ] );
      ( "utilization",
        [ Alcotest.test_case "spatial" `Quick test_spatial_util;
          Alcotest.test_case "temporal" `Quick test_temporal_eff;
          Alcotest.test_case "solo util range" `Quick test_solo_util_range ] );
      ( "perf",
        [ Alcotest.test_case "platform restrictions honoured" `Quick
            test_plan_op_obeys_platform;
          Alcotest.test_case "restricted >= unrestricted MA" `Quick
            test_restricted_never_beats_free;
          Alcotest.test_case "attention MA ordering" `Quick
            test_ma_ordering_on_attention;
          Alcotest.test_case "eval totals consistent" `Quick
            test_eval_totals_consistent;
          Alcotest.test_case "Fig. 10 MA ordering" `Quick test_fig10_ordering;
          Alcotest.test_case "Fig. 10 speedup" `Quick test_fig10_speedup;
          Alcotest.test_case "headline ratios" `Quick test_ratios ] );
      ( "energy",
        [ Alcotest.test_case "component accounting" `Quick test_energy_components;
          Alcotest.test_case "follows traffic" `Quick test_energy_follows_traffic ] );
      ( "ablation",
        [ Alcotest.test_case "feature ladder" `Quick test_ablation_ladder ] );
      ( "schedule-sim",
        [ Alcotest.test_case "single job roofline" `Quick test_sim_single_job;
          Alcotest.test_case "parallel speedup" `Quick test_sim_parallel_speedup;
          Alcotest.test_case "bandwidth contention" `Quick
            test_sim_bandwidth_contention;
          Alcotest.test_case "bounds hold" `Quick test_sim_bounds_hold;
          Alcotest.test_case "platform ordering preserved" `Quick
            test_sim_orders_platforms_like_perf ] );
      ( "noc",
        [ Alcotest.test_case "matched link" `Quick test_noc_column_fusion_matched;
          Alcotest.test_case "tall columns stall" `Quick
            test_noc_tall_columns_stall ] );
      ( "area",
        [ Alcotest.test_case "Fig. 12 breakdown" `Quick test_area_breakdown;
          Alcotest.test_case "scales with PEs" `Quick test_area_scales_with_pes ] ) ]
