test/test_workloads.ml: Alcotest Chain Fusecu_tensor Fusecu_workloads Graph List Matmul Model Option Result Softmax String Sweep Workload Zoo
