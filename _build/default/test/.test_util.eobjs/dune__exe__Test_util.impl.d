test/test_util.ml: Alcotest Arith Csv Fusecu_util Gen List QCheck QCheck_alcotest Random Result Stats String Table Units
