test/test_loopnest.ml: Alcotest Buffer Cost Dim Fusecu_loopnest Fusecu_tensor Fused List Matmul Movement Operand Order Printf QCheck QCheck_alcotest Random Result Schedule Sim String Tiling
