test/test_tensor.ml: Alcotest Chain Conv Dim Fusecu_tensor List Matmul Operand Printf QCheck QCheck_alcotest Random Result
