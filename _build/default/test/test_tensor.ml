open Fusecu_tensor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let dim_t : Dim.t Alcotest.testable = Alcotest.testable Dim.pp Dim.equal

let operand_t : Operand.t Alcotest.testable =
  Alcotest.testable Operand.pp Operand.equal

let test_dim_other () =
  Alcotest.check dim_t "MK->L" Dim.L (Dim.other Dim.M Dim.K);
  Alcotest.check dim_t "LK->M" Dim.M (Dim.other Dim.L Dim.K);
  Alcotest.check dim_t "ML->K" Dim.K (Dim.other Dim.M Dim.L);
  Alcotest.check_raises "equal" (Invalid_argument "Dim.other: equal dimensions")
    (fun () -> ignore (Dim.other Dim.M Dim.M))

let test_operand_dims () =
  List.iter
    (fun operand ->
      let d1, d2 = Operand.dims operand in
      let free = Operand.free_dim operand in
      check_bool "free not in dims" true
        (not (Dim.equal free d1) && not (Dim.equal free d2));
      Alcotest.check operand_t "of_free_dim inverts" operand
        (Operand.of_free_dim free);
      check_bool "uses own dims" true
        (Operand.uses_dim operand d1 && Operand.uses_dim operand d2);
      check_bool "not free dim" false (Operand.uses_dim operand free))
    Operand.all

let test_with_dim () =
  Alcotest.(check (list (Alcotest.testable Operand.pp Operand.equal)))
    "K used by A,B" [ Operand.A; Operand.B ] (Operand.with_dim Dim.K);
  Alcotest.(check (list (Alcotest.testable Operand.pp Operand.equal)))
    "M used by A,C" [ Operand.A; Operand.C ] (Operand.with_dim Dim.M)

let test_stationary_names () =
  Alcotest.(check string) "A" "IS" (Operand.stationary_name Operand.A);
  Alcotest.(check string) "B" "WS" (Operand.stationary_name Operand.B);
  Alcotest.(check string) "C" "OS" (Operand.stationary_name Operand.C)

let bert = Matmul.make ~name:"bert" ~m:1024 ~k:768 ~l:768 ()

let test_matmul_basics () =
  check_int "dim M" 1024 (Matmul.dim bert Dim.M);
  check_int "A size" (1024 * 768) (Matmul.operand_size bert Operand.A);
  check_int "B size" (768 * 768) (Matmul.operand_size bert Operand.B);
  check_int "macs" (1024 * 768 * 768) (Matmul.macs bert);
  check_int "ideal" ((1024 * 768 * 2) + (768 * 768)) (Matmul.ideal_ma bert);
  let d, size = Matmul.min_dim bert in
  Alcotest.check dim_t "min dim is K" Dim.K d;
  check_int "min dim size" 768 size;
  let operand, size = Matmul.min_operand bert in
  Alcotest.check operand_t "min operand is B" Operand.B operand;
  check_int "min operand size" (768 * 768) size

let test_matmul_validation () =
  Alcotest.check_raises "zero dim"
    (Invalid_argument "Matmul.make: dimensions must be >= 1") (fun () ->
      ignore (Matmul.make ~m:0 ~k:1 ~l:1 ()))

let test_transpose () =
  let t = Matmul.transpose bert in
  check_int "M<->L" 768 (Matmul.dim t Dim.M);
  check_int "L<->M" 1024 (Matmul.dim t Dim.L);
  check_int "K fixed" 768 (Matmul.dim t Dim.K);
  check_int "macs invariant" (Matmul.macs bert) (Matmul.macs t);
  check_int "ideal invariant" (Matmul.ideal_ma bert) (Matmul.ideal_ma t)

let qk = Matmul.make ~name:"qk" ~m:128 ~k:64 ~l:128 ()

let sv = Matmul.make ~name:"sv" ~m:128 ~k:128 ~l:64 ()

let test_chain_ok () =
  let chain = Chain.make_exn [ qk; sv ] in
  check_int "length" 2 (Chain.length chain);
  check_int "pairs" 1 (List.length (Chain.pairs chain));
  Alcotest.(check (list int)) "intermediates" [ 128 * 128 ]
    (Chain.intermediates chain);
  check_int "macs" (Matmul.macs qk + Matmul.macs sv) (Chain.total_macs chain);
  check_int "unfused bound"
    (Matmul.ideal_ma qk + Matmul.ideal_ma sv)
    (Chain.ideal_ma_unfused chain);
  check_int "fused bound"
    (Matmul.ideal_ma qk + Matmul.ideal_ma sv - (2 * 128 * 128))
    (Chain.ideal_ma_fused chain)

let test_chain_reject () =
  let bad_m = Matmul.make ~m:64 ~k:128 ~l:64 () in
  check_bool "mismatched M" true (Result.is_error (Chain.make [ qk; bad_m ]));
  let bad_k = Matmul.make ~m:128 ~k:999 ~l:64 () in
  check_bool "mismatched K" true (Result.is_error (Chain.make [ qk; bad_k ]));
  check_bool "empty" true (Result.is_error (Chain.make []))

let test_chain_of_dims () =
  let chain = Chain.of_dims ~m:16 [ 4; 8; 4 ] in
  check_int "two ops" 2 (Chain.length chain);
  (match Chain.ops chain with
  | [ a; b ] ->
    check_int "op1 k" 4 (Matmul.dim a Dim.K);
    check_int "op1 l" 8 (Matmul.dim a Dim.L);
    check_int "op2 k" 8 (Matmul.dim b Dim.K);
    check_int "op2 l" 4 (Matmul.dim b Dim.L)
  | _ -> Alcotest.fail "expected two ops");
  Alcotest.check_raises "short ks"
    (Invalid_argument "Chain.of_dims: need at least two entries in ks")
    (fun () -> ignore (Chain.of_dims ~m:4 [ 4 ]))


(* ------------------------------------------------------------------ *)
(* Convolution lowering                                                *)

let conv3x3 =
  Conv.make ~name:"c" ~n:2 ~c:16 ~h:14 ~w:14 ~k:32 ~r:3 ~s:3 ~padding:1 ()

let test_conv_output_dims () =
  check_int "same-padded height" 14 (Conv.output_height conv3x3);
  check_int "same-padded width" 14 (Conv.output_width conv3x3);
  let strided = Conv.make ~n:1 ~c:3 ~h:224 ~w:224 ~k:64 ~r:7 ~s:7 ~stride:2 ~padding:3 () in
  check_int "resnet stem height" 112 (Conv.output_height strided)

let test_conv_lowering () =
  let mm = Conv.to_matmul conv3x3 in
  check_int "M = n*p*q" (2 * 14 * 14) (Matmul.dim mm Dim.M);
  check_int "K = c*r*s" (16 * 3 * 3) (Matmul.dim mm Dim.K);
  check_int "L = k" 32 (Matmul.dim mm Dim.L);
  check_int "macs agree" (Conv.macs conv3x3) (Matmul.macs mm)

let test_conv_inflation () =
  check_bool "3x3 inflates" true (Conv.im2col_inflation conv3x3 > 1.0);
  let pointwise = Conv.make ~n:1 ~c:64 ~h:8 ~w:8 ~k:128 ~r:1 ~s:1 () in
  Alcotest.(check (float 1e-9)) "1x1 does not inflate" 1.0
    (Conv.im2col_inflation pointwise)

let test_conv_validation () =
  Alcotest.check_raises "kernel too large"
    (Invalid_argument "Conv.make: kernel larger than the padded input")
    (fun () -> ignore (Conv.make ~n:1 ~c:1 ~h:2 ~w:2 ~k:1 ~r:5 ~s:5 ()));
  Alcotest.check_raises "bad stride"
    (Invalid_argument "Conv.make: stride must be >= 1") (fun () ->
      ignore (Conv.make ~stride:0 ~n:1 ~c:1 ~h:4 ~w:4 ~k:1 ~r:1 ~s:1 ()))

let prop_conv_lowering_principles_apply =
  QCheck.Test.make ~count:100 ~name:"lowered conv optimizes like any matmul"
    (QCheck.make
       ~print:(fun (c, h, k, r) -> Printf.sprintf "c=%d h=%d k=%d r=%d" c h k r)
       QCheck.Gen.(
         let* c = int_range 1 8 and* h = int_range 3 10 and* k = int_range 1 8 in
         let* r = int_range 1 3 in
         return (c, h, k, r)))
    (fun (c, h, k, r) ->
      let conv = Conv.make ~n:1 ~c ~h ~w:h ~k ~r ~s:r () in
      let mm = Conv.to_matmul conv in
      Matmul.macs mm = Conv.macs conv && Matmul.ideal_ma mm > 0)

let gen_matmul =
  QCheck.Gen.(
    map3
      (fun m k l -> Matmul.make ~m ~k ~l ())
      (int_range 1 64) (int_range 1 64) (int_range 1 64))

let arb_matmul = QCheck.make ~print:Matmul.to_string gen_matmul

let prop_min_operand_smallest =
  QCheck.Test.make ~count:300 ~name:"min_operand is smallest" arb_matmul (fun op ->
      let _, min_size = Matmul.min_operand op in
      List.for_all
        (fun x -> Matmul.operand_size op x >= min_size)
        Operand.all)

let prop_ideal_is_sum =
  QCheck.Test.make ~count:300 ~name:"ideal_ma = sum of operand sizes" arb_matmul
    (fun op ->
      Matmul.ideal_ma op
      = List.fold_left (fun acc x -> acc + Matmul.operand_size op x) 0 Operand.all)

let prop_transpose_involutive =
  QCheck.Test.make ~count:300 ~name:"transpose involutive" arb_matmul (fun op ->
      let tt = Matmul.transpose (Matmul.transpose op) in
      Matmul.dim tt Dim.M = Matmul.dim op Dim.M
      && Matmul.dim tt Dim.K = Matmul.dim op Dim.K
      && Matmul.dim tt Dim.L = Matmul.dim op Dim.L)

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
    [ prop_min_operand_smallest; prop_ideal_is_sum; prop_transpose_involutive;
      prop_conv_lowering_principles_apply ]

let () =
  Alcotest.run "tensor"
    [ ( "dim",
        [ Alcotest.test_case "other" `Quick test_dim_other ] );
      ( "operand",
        [ Alcotest.test_case "dims/free" `Quick test_operand_dims;
          Alcotest.test_case "with_dim" `Quick test_with_dim;
          Alcotest.test_case "stationary names" `Quick test_stationary_names ] );
      ( "matmul",
        [ Alcotest.test_case "basics" `Quick test_matmul_basics;
          Alcotest.test_case "validation" `Quick test_matmul_validation;
          Alcotest.test_case "transpose" `Quick test_transpose ] );
      ( "chain",
        [ Alcotest.test_case "valid chain" `Quick test_chain_ok;
          Alcotest.test_case "rejects bad chains" `Quick test_chain_reject;
          Alcotest.test_case "of_dims" `Quick test_chain_of_dims ] );
      ( "conv",
        [ Alcotest.test_case "output dims" `Quick test_conv_output_dims;
          Alcotest.test_case "im2col lowering" `Quick test_conv_lowering;
          Alcotest.test_case "inflation" `Quick test_conv_inflation;
          Alcotest.test_case "validation" `Quick test_conv_validation ] );
      ("properties", qsuite) ]
