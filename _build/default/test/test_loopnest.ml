open Fusecu_tensor
open Fusecu_loopnest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Buffer                                                              *)

let test_buffer () =
  let b = Buffer.of_kib 512 in
  check_int "512KB elements (int8)" 524288 (Buffer.elements b);
  let b2 = Buffer.make ~elt_bytes:2 1024 in
  check_int "fp16 elements" 512 (Buffer.elements b2);
  Alcotest.check_raises "zero" (Invalid_argument "Buffer.make: bytes must be >= 1")
    (fun () -> ignore (Buffer.make 0))

(* ------------------------------------------------------------------ *)
(* Tiling                                                              *)

let op = Matmul.make ~m:8 ~k:6 ~l:10 ()

let test_tiling () =
  let t = Tiling.make op ~m:4 ~k:100 ~l:1 in
  check_int "clamped k" 6 (Tiling.get t Dim.K);
  check_int "m kept" 4 (Tiling.get t Dim.M);
  check_int "footprint" ((4 * 6) + (6 * 1) + (4 * 1)) (Tiling.footprint t);
  check_bool "untiled k" true (Tiling.untiled op t Dim.K);
  check_bool "tiled m" false (Tiling.untiled op t Dim.M);
  check_int "trips m" 2 (Tiling.trips op t Dim.M);
  check_int "trips ragged" 3 (Tiling.trips op (Tiling.make op ~m:3 ~k:6 ~l:10) Dim.M);
  check_int "full footprint" ((8 * 6) + (6 * 10) + (8 * 10))
    (Tiling.footprint (Tiling.full op));
  check_int "unit" 3 (Tiling.footprint Tiling.unit)

let test_tiling_update () =
  let t = Tiling.with_dim op (Tiling.full op) Dim.L 3 in
  check_int "updated" 3 (Tiling.get t Dim.L);
  check_int "others kept" 8 (Tiling.get t Dim.M)

(* ------------------------------------------------------------------ *)
(* Order                                                               *)

let test_order () =
  check_int "six orders" 6 (List.length Order.all);
  let o = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
  check_int "pos outer" 1 (Order.position o Dim.M);
  check_int "pos inner" 3 (Order.position o Dim.K);
  Alcotest.(check string) "pp" "M>L>K" (Order.to_string o);
  Alcotest.check_raises "dup" (Invalid_argument "Order.make: dimensions must be distinct")
    (fun () -> ignore (Order.make ~outer:Dim.M ~mid:Dim.M ~inner:Dim.K));
  (* output-stationary orders end on K *)
  List.iter
    (fun o -> check_int "OS inner is K" 3 (Order.position o Dim.K))
    (Order.stationary_for Operand.C);
  check_int "two OS orders" 2 (List.length (Order.stationary_for Operand.C))

(* ------------------------------------------------------------------ *)
(* Cost model: paper equations                                         *)

(* Eq. 1: output-stationary, T_M = T_L = t, T_K = 1:
   MA = MKL(1/t + 1/t) + ML for dividing t. *)
let test_eq1 () =
  let op = Matmul.make ~m:64 ~k:48 ~l:32 () in
  let t = 16 in
  let tiling = Tiling.make op ~m:t ~k:1 ~l:t in
  let order = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
  let cost = Cost.eval op (Schedule.make tiling order) in
  let mkl = Matmul.macs op in
  check_int "A term" (mkl / t) cost.a.traffic;
  check_int "B term" (mkl / t) cost.b.traffic;
  check_int "C term" (64 * 32) cost.c.traffic;
  check_int "total" ((2 * mkl / t) + (64 * 32)) cost.total;
  check_bool "C is NRA" true (Cost.is_nra op (Schedule.make tiling order) Operand.C);
  check_int "single-NRA" 1 (Cost.nra_count op (Schedule.make tiling order))

(* Eq. 3: untiled K, T_L = 1: MA = MKL/T_M + MK + ML. *)
let test_eq3 () =
  let op = Matmul.make ~m:64 ~k:48 ~l:32 () in
  let tm = 8 in
  let tiling = Tiling.make op ~m:tm ~k:48 ~l:1 in
  let order = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
  let s = Schedule.make tiling order in
  let cost = Cost.eval op s in
  check_int "B redundant" (Matmul.macs op / tm) cost.b.traffic;
  check_int "A once" (64 * 48) cost.a.traffic;
  check_int "C once" (64 * 32) cost.c.traffic;
  check_int "two-NRA" 2 (Cost.nra_count op s)

let test_everything_fits () =
  let op = Matmul.make ~m:8 ~k:4 ~l:6 () in
  let s = Schedule.make (Tiling.full op) (List.hd Order.all) in
  let cost = Cost.eval op s in
  check_int "ideal" (Matmul.ideal_ma op) cost.total;
  check_int "three-NRA" 3 (Cost.nra_count op s)

let test_partial_sum_penalty () =
  let op = Matmul.make ~m:16 ~k:16 ~l:16 () in
  (* K outermost with small tiles: C is revisited *)
  let tiling = Tiling.make op ~m:4 ~k:4 ~l:4 in
  let order = Order.make ~outer:Dim.K ~mid:Dim.M ~inner:Dim.L in
  let s = Schedule.make tiling order in
  let plain = Cost.eval op s in
  let penal = Cost.eval ~partial_sum_penalty:true op s in
  check_int "C revisit" 4 plain.c.revisit;
  check_int "plain C" (4 * 256) plain.c.traffic;
  check_int "penalized C" (((2 * 4) - 1) * 256) penal.c.traffic;
  check_int "A,B unchanged" plain.a.traffic penal.a.traffic

let test_at_least_one_nra () =
  let op = Matmul.make ~m:9 ~k:7 ~l:5 () in
  List.iter
    (fun order ->
      let s = Schedule.make (Tiling.make op ~m:2 ~k:2 ~l:2) order in
      check_bool "some NRA" true (Cost.nra_count op s >= 1))
    Order.all

(* ------------------------------------------------------------------ *)
(* Property: closed form == mechanical simulation                      *)

let gen_case =
  QCheck.Gen.(
    let dim = int_range 1 9 in
    let* m = dim and* k = dim and* l = dim in
    let op = Matmul.make ~m ~k ~l () in
    let tile d = int_range 1 (Matmul.dim op d) in
    let* tm = tile Dim.M and* tk = tile Dim.K and* tl = tile Dim.L in
    let* oi = int_range 0 5 in
    let order = List.nth Order.all oi in
    return (op, Schedule.make (Tiling.make op ~m:tm ~k:tk ~l:tl) order))

let print_case (op, s) =
  Printf.sprintf "%s under %s" (Matmul.to_string op) (Schedule.to_string s)

let arb_case = QCheck.make ~print:print_case gen_case

let prop_cost_matches_sim =
  QCheck.Test.make ~count:800 ~name:"closed-form traffic == simulated traffic"
    arb_case (fun (op, s) ->
      let analytic = Cost.eval op s in
      let simulated = Sim.eval op s in
      analytic.a.traffic = simulated.a.traffic
      && analytic.b.traffic = simulated.b.traffic
      && analytic.c.traffic = simulated.c.traffic)

let prop_fetches_match_sim =
  QCheck.Test.make ~count:800 ~name:"closed-form fetches == simulated fetches"
    arb_case (fun (op, s) ->
      let analytic = Cost.eval op s in
      let simulated = Sim.eval op s in
      analytic.a.fetches = simulated.a.fetches
      && analytic.b.fetches = simulated.b.fetches
      && analytic.c.fetches = simulated.c.fetches)

let prop_revisit_matches_sim =
  QCheck.Test.make ~count:500 ~name:"revisit factor == max simulated refetch"
    arb_case (fun (op, s) ->
      let analytic = Cost.eval op s in
      let simulated = Sim.eval op s in
      analytic.a.revisit = simulated.a.revisit
      && analytic.b.revisit = simulated.b.revisit
      && analytic.c.revisit = simulated.c.revisit)

let prop_sim_macs_exact =
  QCheck.Test.make ~count:500 ~name:"simulated nest covers all MACs" arb_case
    (fun (op, s) -> Sim.macs op s = Matmul.macs op)

let prop_traffic_lower_bound =
  QCheck.Test.make ~count:500 ~name:"traffic >= ideal lower bound" arb_case
    (fun (op, s) -> (Cost.eval op s).total >= Matmul.ideal_ma op)

(* ------------------------------------------------------------------ *)
(* Fused pair model                                                    *)

let fused_pair () =
  let op1 = Matmul.make ~name:"mm1" ~m:16 ~k:8 ~l:12 () in
  let op2 = Matmul.make ~name:"mm2" ~m:16 ~k:12 ~l:8 () in
  Fused.make_pair_exn op1 op2

let test_fused_pair_validation () =
  let op1 = Matmul.make ~m:16 ~k:8 ~l:12 () in
  check_bool "wrong M" true
    (Result.is_error (Fused.make_pair op1 (Matmul.make ~m:8 ~k:12 ~l:8 ())));
  check_bool "wrong K" true
    (Result.is_error (Fused.make_pair op1 (Matmul.make ~m:16 ~k:9 ~l:8 ())))

let os_is_fused pair =
  let { Fused.op1; op2 } = pair in
  let producer =
    Schedule.make
      (Tiling.make op1 ~m:4 ~k:1 ~l:4)
      (Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K)
  in
  let consumer =
    Schedule.make
      (Tiling.make op2 ~m:4 ~k:4 ~l:1)
      (Order.make ~outer:Dim.M ~mid:Dim.K ~inner:Dim.L)
  in
  { Fused.producer; consumer }

let test_fused_valid_os_is () =
  let pair = fused_pair () in
  let f = os_is_fused pair in
  (match Fused.validate pair f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %a" Fused.pp_invalid e);
  (* C tile shared once in the footprint *)
  check_int "footprint"
    (Schedule.footprint f.producer + Schedule.footprint f.consumer - (4 * 4))
    (Fused.footprint f);
  (* traffic = A + B of producer plus D + E of consumer; C free *)
  let prod = Cost.eval pair.op1 f.producer in
  let cons = Cost.eval pair.op2 f.consumer in
  check_int "traffic"
    (prod.a.traffic + prod.b.traffic + cons.b.traffic + cons.c.traffic)
    (Fused.traffic pair f)

let test_fused_rejects_redundant_c () =
  let pair = fused_pair () in
  let { Fused.op1; op2 } = pair in
  (* producer with C revisited: K outermost, tiled *)
  let producer =
    Schedule.make
      (Tiling.make op1 ~m:4 ~k:2 ~l:4)
      (Order.make ~outer:Dim.K ~mid:Dim.M ~inner:Dim.L)
  in
  let consumer = (os_is_fused pair).Fused.consumer in
  (match Fused.validate pair { Fused.producer; consumer } with
  | Error (Fused.Intermediate_redundant `Producer) -> ()
  | Ok () -> Alcotest.fail "expected redundant producer"
  | Error e -> Alcotest.failf "unexpected: %a" Fused.pp_invalid e);
  (* consumer with A revisited *)
  let producer = (os_is_fused pair).Fused.producer in
  let consumer_bad =
    Schedule.make
      (Tiling.make op2 ~m:4 ~k:4 ~l:2)
      (Order.make ~outer:Dim.L ~mid:Dim.M ~inner:Dim.K)
  in
  match Fused.validate pair { Fused.producer; consumer = consumer_bad } with
  | Error (Fused.Intermediate_redundant `Consumer) -> ()
  | Ok () -> Alcotest.fail "expected redundant consumer"
  | Error e -> Alcotest.failf "unexpected: %a" Fused.pp_invalid e

let test_fused_rejects_tile_mismatch () =
  let pair = fused_pair () in
  let { Fused.op2; _ } = pair in
  let f = os_is_fused pair in
  let consumer =
    Schedule.make
      (Tiling.make op2 ~m:8 ~k:4 ~l:1)
      (Order.make ~outer:Dim.M ~mid:Dim.K ~inner:Dim.L)
  in
  match Fused.validate pair { f with Fused.consumer } with
  | Error Fused.Tile_mismatch -> ()
  | Ok () -> Alcotest.fail "expected tile mismatch"
  | Error e -> Alcotest.failf "unexpected: %a" Fused.pp_invalid e

let test_fused_rejects_order_mismatch () =
  let pair = fused_pair () in
  let { Fused.op2; _ } = pair in
  let f = os_is_fused pair in
  (* consumer walks K-major while producer walks M-major *)
  let consumer =
    Schedule.make
      (Tiling.make op2 ~m:4 ~k:4 ~l:1)
      (Order.make ~outer:Dim.K ~mid:Dim.M ~inner:Dim.L)
  in
  match Fused.validate pair { f with Fused.consumer } with
  | Error Fused.Order_mismatch -> ()
  | Ok () -> Alcotest.fail "expected order mismatch"
  | Error e -> Alcotest.failf "unexpected: %a" Fused.pp_invalid e

let test_fused_resident_ignores_order () =
  let pair = fused_pair () in
  let { Fused.op1; op2 } = pair in
  (* whole C on-chip on both sides; orders deliberately mismatched *)
  let producer =
    Schedule.make
      (Tiling.make op1 ~m:16 ~k:1 ~l:12)
      (Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K)
  in
  let consumer =
    Schedule.make
      (Tiling.make op2 ~m:16 ~k:12 ~l:1)
      (Order.make ~outer:Dim.K ~mid:Dim.M ~inner:Dim.L)
  in
  match Fused.validate pair { Fused.producer; consumer } with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resident C should ignore order: %a" Fused.pp_invalid e

let test_fused_eval_buffer_limit () =
  let pair = fused_pair () in
  let f = os_is_fused pair in
  let tiny = Buffer.make 8 in
  check_bool "buffer too small" true (Result.is_error (Fused.eval pair f tiny));
  let big = Buffer.make 4096 in
  match Fused.eval pair f big with
  | Ok traffic -> check_int "eval traffic" (Fused.traffic pair f) traffic
  | Error e -> Alcotest.fail e

let test_fused_beats_unfused_here () =
  let pair = fused_pair () in
  let f = os_is_fused pair in
  let s1 = f.Fused.producer and s2 = f.Fused.consumer in
  check_bool "fusion saves the intermediate" true
    (Fused.traffic pair f < Fused.unfused_traffic pair s1 s2)


(* ------------------------------------------------------------------ *)
(* Movement description                                                *)

let test_movement_output_stationary () =
  let op = Matmul.make ~m:16 ~k:16 ~l:16 () in
  let s =
    Schedule.make
      (Tiling.make op ~m:4 ~k:1 ~l:4)
      (Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K)
  in
  (* C tile stays while K sweeps A and B *)
  (match Movement.motion op s Operand.C with
  | Movement.Swept dims ->
    check_bool "C only on its own loops" true
      (not (List.exists (Dim.equal Dim.K) dims))
  | Movement.Stationary -> Alcotest.fail "C has 16 tiles");
  (match Movement.motion op s Operand.A with
  | Movement.Swept dims -> check_bool "A swept by K" true (List.exists (Dim.equal Dim.K) dims)
  | Movement.Stationary -> Alcotest.fail "A moves");
  let text = Movement.describe op s in
  check_bool "mentions loop nest" true (String.length text > 40)

let test_movement_fully_resident () =
  let op = Matmul.make ~m:4 ~k:4 ~l:4 () in
  let s = Schedule.make (Tiling.full op) (List.hd Order.all) in
  List.iter
    (fun x ->
      check_bool "all stationary" true (Movement.motion op s x = Movement.Stationary))
    Operand.all

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
    [ prop_cost_matches_sim; prop_fetches_match_sim; prop_revisit_matches_sim;
      prop_sim_macs_exact; prop_traffic_lower_bound ]

let () =
  Alcotest.run "loopnest"
    [ ( "buffer", [ Alcotest.test_case "capacity" `Quick test_buffer ] );
      ( "tiling",
        [ Alcotest.test_case "basics" `Quick test_tiling;
          Alcotest.test_case "with_dim" `Quick test_tiling_update ] );
      ( "order", [ Alcotest.test_case "basics" `Quick test_order ] );
      ( "cost",
        [ Alcotest.test_case "paper Eq.1 (output stationary)" `Quick test_eq1;
          Alcotest.test_case "paper Eq.3 (untiled K)" `Quick test_eq3;
          Alcotest.test_case "unbounded buffer is ideal" `Quick
            test_everything_fits;
          Alcotest.test_case "partial-sum penalty" `Quick
            test_partial_sum_penalty;
          Alcotest.test_case "at least one NRA operand" `Quick
            test_at_least_one_nra ] );
      ( "fused",
        [ Alcotest.test_case "pair validation" `Quick test_fused_pair_validation;
          Alcotest.test_case "valid OS-IS fusion" `Quick test_fused_valid_os_is;
          Alcotest.test_case "rejects redundant intermediate" `Quick
            test_fused_rejects_redundant_c;
          Alcotest.test_case "rejects tile mismatch" `Quick
            test_fused_rejects_tile_mismatch;
          Alcotest.test_case "rejects order mismatch" `Quick
            test_fused_rejects_order_mismatch;
          Alcotest.test_case "resident C ignores order" `Quick
            test_fused_resident_ignores_order;
          Alcotest.test_case "buffer capacity enforced" `Quick
            test_fused_eval_buffer_limit;
          Alcotest.test_case "fusion saves intermediate traffic" `Quick
            test_fused_beats_unfused_here ] );
      ( "movement",
        [ Alcotest.test_case "output stationary" `Quick
            test_movement_output_stationary;
          Alcotest.test_case "fully resident" `Quick test_movement_fully_resident ] );
      ("properties", qsuite) ]
