(* Golden regression tests: lock the reproduced headline numbers so a
   model change that silently shifts the paper comparison fails CI.
   Tolerances are deliberately loose (a few percentage points) — these
   guard the story, not the last digit. *)

open Fusecu_loopnest
open Fusecu_arch
open Fusecu_workloads
open Fusecu_util

let check_bool = Alcotest.(check bool)

let buf = Buffer.of_kib 512

let evals =
  lazy
    (List.map
       (fun model ->
         ( model,
           List.map
             (fun p ->
               match Perf.eval_workload p buf (Workload.of_model model) with
               | Ok e -> (p.Platform.name, e)
               | Error e -> Alcotest.fail e)
             Platform.all ))
       Zoo.all)

let geomean_vs baseline =
  let ratios =
    List.map
      (fun (_, evals) ->
        Perf.ma_ratio (List.assoc "FuseCU" evals) (List.assoc baseline evals))
      (Lazy.force evals)
  in
  Stats.geomean ratios

let speedup_vs baseline =
  let speeds =
    List.map
      (fun (_, evals) ->
        Perf.speedup (List.assoc "FuseCU" evals) (List.assoc baseline evals))
      (Lazy.force evals)
  in
  Stats.geomean speeds

let within name value lo hi =
  check_bool
    (Printf.sprintf "%s = %.3f within [%.3f, %.3f]" name value lo hi)
    true
    (value >= lo && value <= hi)

(* Paper: 63.6% / 62.4% / 38.7% MA savings. *)
let test_ma_savings () =
  within "saving vs TPUv4i" (1. -. geomean_vs "TPUv4i") 0.58 0.70;
  within "saving vs Gemmini" (1. -. geomean_vs "Gemmini") 0.58 0.70;
  within "saving vs Planaria" (1. -. geomean_vs "Planaria") 0.32 0.45

(* Paper: 1.33x / 1.25x / 1.14x speedups. *)
let test_speedups () =
  within "speedup vs TPUv4i" (speedup_vs "TPUv4i") 1.15 1.45;
  within "speedup vs Gemmini" (speedup_vs "Gemmini") 1.15 1.40;
  within "speedup vs Planaria" (speedup_vs "Planaria") 1.03 1.25

(* Paper: 12.0% area overhead, < 0.1% interconnect. *)
let test_area () =
  let b = Area.fusecu_breakdown () in
  within "area overhead" b.overhead_pct 0.10 0.14;
  check_bool "interconnect < 0.1%" true (b.interconnect_pct < 0.001)

(* Paper Fig. 11: the advantage grows with sequence length. *)
let test_fig11_monotone_tail () =
  let ratio seq =
    let w = Workload.of_model (Sweep.llama2_at seq) in
    match
      (Perf.eval_workload Platform.fusecu buf w,
       Perf.eval_workload Platform.tpu_v4i buf w)
    with
    | Ok f, Ok t -> Perf.ma_ratio f t
    | _ -> Alcotest.fail "eval failed"
  in
  let r1 = ratio 1024 and r4 = ratio 4096 and r16 = ratio 16384 in
  check_bool "monotone improvement" true (r16 < r4 && r4 < r1);
  within "16K ratio" r16 0.15 0.40

(* The worked example is exact, not banded. *)
let test_worked_example_exact () =
  let open Fusecu_tensor in
  let open Fusecu_core in
  let op = Matmul.make ~name:"bert" ~m:1024 ~k:768 ~l:768 () in
  let plan = Intra.optimize_exn ~mode:Mode.Divisors op (Buffer.of_kib 512) in
  Alcotest.(check int) "T_M" 512 (Tiling.get plan.schedule.tiling Dim.M);
  Alcotest.(check int) "MA(B)" (2 * 768 * 768) plan.cost.b.traffic

let () =
  Alcotest.run "regression"
    [ ( "headline numbers",
        [ Alcotest.test_case "Fig. 10 MA savings" `Quick test_ma_savings;
          Alcotest.test_case "Fig. 10 speedups" `Quick test_speedups;
          Alcotest.test_case "Fig. 12 area" `Quick test_area;
          Alcotest.test_case "Fig. 11 tail" `Quick test_fig11_monotone_tail;
          Alcotest.test_case "worked example" `Quick test_worked_example_exact ] ) ]
