open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_hierarchy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Stack construction                                                  *)

let test_stack_validation () =
  let big = Level.make ~name:"l2" (Buffer.make 1000) in
  let small = Level.make ~name:"l1" (Buffer.make 100) in
  check_bool "ordered ok" true (Result.is_ok (Stack.make [ big; small ]));
  check_bool "inverted rejected" true (Result.is_error (Stack.make [ small; big ]));
  check_bool "equal rejected" true (Result.is_error (Stack.make [ big; big ]));
  check_bool "empty rejected" true (Result.is_error (Stack.make []))

let test_tpu_like_stack () =
  let stack = Stack.tpu_like () in
  match Stack.levels stack with
  | [ l2; l1 ] ->
    check_int "buffer elements" (512 * 1024) (Buffer.elements l2.Level.buffer);
    check_int "register elements" (128 * 128) (Buffer.elements l1.Level.buffer)
  | _ -> Alcotest.fail "expected two levels"

(* ------------------------------------------------------------------ *)
(* Multi-level optimization                                            *)

let op = Matmul.make ~name:"mm" ~m:256 ~k:192 ~l:160 ()

let two_level =
  Stack.make_exn
    [ Level.make ~name:"l2" ~energy_pj_per_element:6.0 (Buffer.make 20000);
      Level.make ~name:"l1" ~energy_pj_per_element:1.0 (Buffer.make 600) ]

let test_optimize_shapes () =
  match Stack.optimize two_level op with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check_int "two level plans" 2 (List.length plan.per_level);
    check_int "two interfaces" 2 (List.length plan.interface_traffic);
    (* the inner level optimizes the outer level's tile *)
    (match plan.per_level with
    | [ (_, outer); (_, inner) ] ->
      List.iter
        (fun d ->
          check_bool "inner op within outer tile" true
            (Matmul.dim inner.Intra.op d <= Tiling.get outer.Intra.schedule.tiling d
             + 0))
        Dim.all;
      List.iter
        (fun d ->
          check_int "inner op = outer tile"
            (Tiling.get outer.Intra.schedule.tiling d)
            (Matmul.dim inner.Intra.op d))
        Dim.all
    | _ -> Alcotest.fail "expected two plans");
    check_bool "energy positive" true (plan.energy_pj > 0.)

let test_top_matches_single_level () =
  (* the outermost interface traffic equals the single-level optimum *)
  let single = Intra.optimize_exn op (Buffer.make 20000) in
  match Stack.optimize two_level op with
  | Error e -> Alcotest.fail e
  | Ok plan -> check_int "top traffic" (Intra.ma single) (Stack.top_traffic plan)

let test_inner_traffic_amplified () =
  (* the inner interface moves at least as much data as the outer one:
     every element entering the buffer must also enter the registers *)
  match Stack.optimize two_level op with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
    match plan.interface_traffic with
    | [ (_, outer); (_, inner) ] -> check_bool "inner >= outer" true (inner >= outer)
    | _ -> Alcotest.fail "expected two interfaces")

let test_infeasible_inner_level () =
  let stack =
    Stack.make_exn
      [ Level.make ~name:"l2" (Buffer.make 20000);
        Level.make ~name:"l1" (Buffer.make 2) ]
  in
  match Stack.optimize stack op with
  | Error msg -> check_bool "names the level" true (String.length msg > 2)
  | Ok _ -> Alcotest.fail "expected failure"

let test_register_level_regimes () =
  (* the Sec. IV-B connection: for an operator with Dmin < 2N, the
     register level picks an untiled-dimension dataflow *)
  let qk = Matmul.make ~name:"qk" ~m:1024 ~k:64 ~l:1024 () in
  let stack = Stack.tpu_like ~pe_dim:128 () in
  match Stack.optimize stack qk with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
    match plan.per_level with
    | [ _; (_, register_plan) ] ->
      check_bool "register level unties a dimension" true
        (match Nra.class_of register_plan.Intra.dataflow with
        | Nra.Two | Nra.Three -> true
        | Nra.Single -> false)
    | _ -> Alcotest.fail "expected two levels")

let prop_multilevel_monotone =
  QCheck.Test.make ~count:100 ~name:"bigger inner level never hurts energy"
    (QCheck.make
       ~print:(fun (m, k, l, inner) ->
         Printf.sprintf "%dx%dx%d inner=%d" m k l inner)
       QCheck.Gen.(
         let* m = int_range 4 64 and* k = int_range 4 64 and* l = int_range 4 64 in
         let* inner = int_range 12 400 in
         return (m, k, l, inner)))
    (fun (m, k, l, inner) ->
      let op = Matmul.make ~m ~k ~l () in
      let stack bytes =
        Stack.make_exn
          [ Level.make ~name:"l2" (Buffer.make 100000);
            Level.make ~name:"l1" (Buffer.make bytes) ]
      in
      match
        (Stack.optimize (stack inner) op, Stack.optimize (stack (inner + 50)) op)
      with
      | Ok a, Ok b -> b.energy_pj <= a.energy_pj +. 1e-6
      | Error _, _ -> true
      | Ok _, Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let trace_op = Matmul.make ~m:4 ~k:6 ~l:4 ()

let trace_schedule =
  Schedule.make
    (Tiling.make trace_op ~m:2 ~k:2 ~l:2)
    (Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K)

let test_trace_consistency () =
  let events = Trace.events trace_op trace_schedule in
  let cost = Cost.eval trace_op trace_schedule in
  check_int "A fetches" cost.a.fetches (Trace.fetch_count events Operand.A);
  check_int "B fetches" cost.b.fetches (Trace.fetch_count events Operand.B);
  check_int "C fetches" cost.c.fetches (Trace.fetch_count events Operand.C);
  check_int "traffic" cost.total (Trace.traffic trace_op trace_schedule events)

let test_trace_computes_cover_space () =
  let events = Trace.events trace_op trace_schedule in
  let computes =
    List.filter (function Trace.Compute _ -> true | Trace.Fetch _ -> false) events
  in
  check_int "one compute per tile iteration"
    (Schedule.total_tile_iterations trace_op trace_schedule)
    (List.length computes)

let test_trace_render () =
  let text = Trace.render ~max_events:8 trace_op trace_schedule in
  check_bool "truncation marker" true
    (String.length text > 0
    &&
    let contains needle =
      let n = String.length needle and t = String.length text in
      let rec scan i = i + n <= t && (String.sub text i n = needle || scan (i + 1)) in
      scan 0
    in
    contains "more events" && contains "total:")

let prop_trace_matches_cost =
  QCheck.Test.make ~count:200 ~name:"trace traffic == closed form"
    (QCheck.make
       ~print:(fun (op, s) ->
         Printf.sprintf "%s %s" (Matmul.to_string op) (Schedule.to_string s))
       QCheck.Gen.(
         let dim = int_range 1 6 in
         let* m = dim and* k = dim and* l = dim in
         let op = Matmul.make ~m ~k ~l () in
         let tile d = int_range 1 (Matmul.dim op d) in
         let* tm = tile Dim.M and* tk = tile Dim.K and* tl = tile Dim.L in
         let* oi = int_range 0 5 in
         return (op, Schedule.make (Tiling.make op ~m:tm ~k:tk ~l:tl) (List.nth Order.all oi))))
    (fun (op, s) ->
      let events = Trace.events op s in
      Trace.traffic op s events = (Cost.eval op s).Cost.total)

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
    [ prop_multilevel_monotone; prop_trace_matches_cost ]

let () =
  Alcotest.run "hierarchy"
    [ ( "stack",
        [ Alcotest.test_case "validation" `Quick test_stack_validation;
          Alcotest.test_case "tpu-like levels" `Quick test_tpu_like_stack ] );
      ( "optimize",
        [ Alcotest.test_case "level plans nest" `Quick test_optimize_shapes;
          Alcotest.test_case "top = single level" `Quick
            test_top_matches_single_level;
          Alcotest.test_case "inner traffic amplified" `Quick
            test_inner_traffic_amplified;
          Alcotest.test_case "infeasible level reported" `Quick
            test_infeasible_inner_level;
          Alcotest.test_case "register-level untiling (Sec. IV-B)" `Quick
            test_register_level_regimes ] );
      ( "trace",
        [ Alcotest.test_case "matches cost model" `Quick test_trace_consistency;
          Alcotest.test_case "computes cover the space" `Quick
            test_trace_computes_cover_space;
          Alcotest.test_case "render" `Quick test_trace_render ] );
      ("properties", qsuite) ]
