type t = {
  name : string;
  heads : int;
  kv_heads : int;
  seq : int;
  hidden : int;
  batch : int;
  ffn_mult : int;
}

let make ?(batch = 16) ?(ffn_mult = 4) ?kv_heads ~name ~heads ~seq ~hidden () =
  if heads < 1 || seq < 1 || hidden < 1 || batch < 1 || ffn_mult < 1 then
    invalid_arg "Model.make: parameters must be >= 1";
  if hidden mod heads <> 0 then
    invalid_arg "Model.make: hidden must be divisible by heads";
  let kv_heads = Option.value ~default:heads kv_heads in
  if kv_heads < 1 || heads mod kv_heads <> 0 then
    invalid_arg "Model.make: heads must be divisible by kv_heads";
  { name; heads; kv_heads; seq; hidden; batch; ffn_mult }

let head_dim t = t.hidden / t.heads

let with_seq t seq = { t with seq; name = Printf.sprintf "%s@%d" t.name seq }

let pp fmt t =
  Format.fprintf fmt "%s (heads=%d seq=%d hidden=%d batch=%d)" t.name t.heads
    t.seq t.hidden t.batch
