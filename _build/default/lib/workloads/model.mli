(** Transformer model parameters (the paper's Table II). Only the
    quantities that determine matmul shapes are kept: head count,
    sequence length, hidden size, batch (16 throughout the paper's
    evaluation) and the FFN expansion factor. *)

type t = private {
  name : string;
  heads : int;
  kv_heads : int;  (** key/value heads; < [heads] under grouped-query
                       attention (GQA), = [heads] for standard MHA *)
  seq : int;
  hidden : int;
  batch : int;
  ffn_mult : int;
}

val make : ?batch:int -> ?ffn_mult:int -> ?kv_heads:int -> name:string ->
  heads:int -> seq:int -> hidden:int -> unit -> t
(** [batch] defaults to 16, [ffn_mult] to 4 and [kv_heads] to [heads]
    (standard multi-head attention). [hidden] must be divisible by
    [heads], and [heads] by [kv_heads]. *)

val head_dim : t -> int
(** Per-head feature size [hidden / heads]. *)

val with_seq : t -> int -> t
(** The same model at a different sequence length (for the LLaMA2
    sweep). *)

val pp : Format.formatter -> t -> unit
