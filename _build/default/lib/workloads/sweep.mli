(** The LLaMA2 sequence-length sensitivity sweep (paper Fig. 11):
    256 to 16K. *)

val seq_lengths : int list
(** [256; 512; 1024; 2048; 4096; 8192; 16384]. *)

val llama2_at : int -> Model.t
(** LLaMA2 with the given sequence length. *)

val workloads : unit -> Workload.t list
(** One workload per sweep point. *)
