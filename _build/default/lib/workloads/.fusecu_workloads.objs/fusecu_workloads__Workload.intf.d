lib/workloads/workload.mli: Chain Format Fusecu_tensor Matmul Model
