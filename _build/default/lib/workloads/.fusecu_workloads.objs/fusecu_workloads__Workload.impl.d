lib/workloads/workload.ml: Chain Format Fusecu_tensor Fusecu_util List Matmul Model
