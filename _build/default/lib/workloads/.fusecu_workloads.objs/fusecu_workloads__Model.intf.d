lib/workloads/model.mli: Format
