lib/workloads/sweep.mli: Model Workload
