lib/workloads/zoo.mli: Model
