lib/workloads/zoo.ml: List Model String
