lib/workloads/graph.ml: Buffer Chain Format Fusecu_tensor Fusecu_util Hashtbl List Matmul Model Printf String Workload
