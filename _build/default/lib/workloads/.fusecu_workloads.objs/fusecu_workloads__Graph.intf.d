lib/workloads/graph.mli: Format Fusecu_tensor Model
