lib/workloads/softmax.ml: Fusecu_tensor Fusecu_util List Model Workload
