lib/workloads/softmax.mli: Model
