lib/workloads/sweep.ml: List Model Workload Zoo
