lib/workloads/model.ml: Format Option Printf
