let extra_unfused_traffic (m : Model.t) = 2 * m.batch * m.heads * m.seq * m.seq

let fused_traffic (_ : Model.t) = 0

let relative_weight (m : Model.t) =
  let w = Workload.of_model m in
  let unfused_bound =
    Fusecu_util.Arith.sum
      (List.map
         (fun (op, count) -> count * Fusecu_tensor.Matmul.ideal_ma op)
         (Workload.all_ops w))
  in
  float_of_int (extra_unfused_traffic m) /. float_of_int unfused_bound
