open Fusecu_tensor

type item =
  | Single_op of { op : Matmul.t; count : int }
  | Fusable of { chain : Chain.t; count : int }

type t = { name : string; model : Model.t; items : item list }

let of_model (m : Model.t) =
  let bs = m.batch * m.seq in
  let dh = Model.head_dim m in
  let proj ?(out = m.hidden) suffix =
    Single_op
      { op = Matmul.make ~name:(m.name ^ "." ^ suffix) ~m:bs ~k:m.hidden ~l:out ();
        count = 1 }
  in
  let kv_width = m.kv_heads * dh in
  let attention =
    let scores =
      Matmul.make ~name:(m.name ^ ".qk") ~m:m.seq ~k:dh ~l:m.seq ()
    in
    let context =
      Matmul.make ~name:(m.name ^ ".sv") ~m:m.seq ~k:m.seq ~l:dh ()
    in
    Fusable
      { chain = Chain.make_exn [ scores; context ]; count = m.batch * m.heads }
  in
  let ffn =
    let up =
      Matmul.make ~name:(m.name ^ ".ff1") ~m:bs ~k:m.hidden
        ~l:(m.ffn_mult * m.hidden) ()
    in
    let down =
      Matmul.make ~name:(m.name ^ ".ff2") ~m:bs ~k:(m.ffn_mult * m.hidden)
        ~l:m.hidden ()
    in
    Fusable { chain = Chain.make_exn [ up; down ]; count = 1 }
  in
  { name = m.name;
    model = m;
    items =
      [ proj "wq"; proj ~out:kv_width "wk"; proj ~out:kv_width "wv"; attention;
        proj "wo"; ffn ] }

let items t = t.items

let all_ops t =
  List.concat_map
    (function
      | Single_op { op; count } -> [ (op, count) ]
      | Fusable { chain; count } ->
        List.map (fun op -> (op, count)) (Chain.ops chain))
    t.items

let chains t =
  List.filter_map
    (function Fusable { chain; count } -> Some (chain, count) | Single_op _ -> None)
    t.items

let total_macs t =
  Fusecu_util.Arith.sum (List.map (fun (op, c) -> Matmul.macs op * c) (all_ops t))

let pp fmt t =
  Format.fprintf fmt "@[<v>workload %s (%s macs):@ %a@]" t.name
    (Fusecu_util.Units.pp_count (total_macs t))
    (Format.pp_print_list (fun fmt -> function
       | Single_op { op; count } -> Format.fprintf fmt "%dx %a" count Matmul.pp op
       | Fusable { chain; count } ->
         Format.fprintf fmt "%dx fusable [%a]" count Chain.pp chain))
    t.items
