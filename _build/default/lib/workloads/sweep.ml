let seq_lengths = [ 256; 512; 1024; 2048; 4096; 8192; 16384 ]

let llama2_at seq = Model.with_seq Zoo.llama2 seq

let workloads () = List.map (fun s -> Workload.of_model (llama2_at s)) seq_lengths
