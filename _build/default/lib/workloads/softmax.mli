(** Softmax traffic accounting for attention blocks.

    The attention chain is really [Q.K^T -> softmax -> .V]; the default
    {!Workload} counts only the matmuls (as the paper's operator set
    does, FuseCU carrying a softmax unit inside the array). This module
    quantifies what the elementwise softmax adds for architectures that
    must run it as a separate memory-to-memory pass — strengthening the
    fusion case exactly the way FLAT [11] argues. *)

val extra_unfused_traffic : Model.t -> int
(** Elements moved by a standalone softmax over all attention heads of
    one layer: each seq x seq score matrix is read and written once
    more ([2 * batch * heads * seq^2]). *)

val fused_traffic : Model.t -> int
(** Softmax traffic when attention is fused on an array with an inline
    softmax unit: zero — scores never leave the chip. *)

val relative_weight : Model.t -> float
(** The standalone-softmax traffic as a fraction of the layer's unfused
    matmul lower bound: how much the matmul-only accounting understates
    the fusion benefit. *)
