(** The seven attention-based models of the paper's Table II. *)

val bert : Model.t
val gpt2 : Model.t
val blenderbot : Model.t
val xlm : Model.t
val deberta_v2 : Model.t
val llama2 : Model.t
val albert : Model.t

val llama2_70b_gqa : Model.t
(** A grouped-query-attention variant (64 query heads, 8 KV heads) —
    not part of the paper's Table II, used by the GQA extension
    experiments. *)

val all : Model.t list
(** In the paper's table order (excludes the GQA variant). *)

val find : string -> Model.t option
(** Case-insensitive lookup by name. *)
