(** A workload is the bag of matmul work in one transformer encoder
    layer: standalone projection/FFN operators plus the operator chains
    that are candidates for fusion (attention score x value, and the
    two FFN matmuls).

    Per-layer work is representative: total traffic scales linearly with
    layer count and the paper reports normalized numbers. *)

open Fusecu_tensor

type item =
  | Single_op of { op : Matmul.t; count : int }
      (** [count] identical instances (e.g. one per batch x head). *)
  | Fusable of { chain : Chain.t; count : int }
      (** A chain whose intermediates may be kept on-chip. *)

type t = { name : string; model : Model.t; items : item list }

val of_model : Model.t -> t
(** One encoder layer:
    - Q/K/V projections: 3 x [(batch*seq) x hidden x hidden]
    - attention per head (count [batch*heads]):
      [seq x head_dim x seq] (scores) chained with
      [seq x seq x head_dim] (context) — fusable
    - output projection: [(batch*seq) x hidden x hidden]
    - FFN: [(batch*seq) x hidden x (ffn_mult*hidden)] chained with
      [(batch*seq) x (ffn_mult*hidden) x hidden] — fusable *)

val items : t -> item list

val all_ops : t -> (Matmul.t * int) list
(** Every operator with its instance count (chains flattened). *)

val chains : t -> (Chain.t * int) list
(** Just the fusable chains. *)

val total_macs : t -> int

val pp : Format.formatter -> t -> unit
