let bert = Model.make ~name:"Bert" ~heads:12 ~seq:1024 ~hidden:768 ()

let gpt2 = Model.make ~name:"GPT-2" ~heads:12 ~seq:2048 ~hidden:768 ()

let blenderbot = Model.make ~name:"Blenderbot" ~heads:16 ~seq:256 ~hidden:1024 ()

let xlm = Model.make ~name:"XLM" ~heads:16 ~seq:1024 ~hidden:2048 ()

let deberta_v2 = Model.make ~name:"DeBERTa-v2" ~heads:24 ~seq:1024 ~hidden:1536 ()

let llama2 = Model.make ~name:"LLaMA2" ~heads:32 ~seq:4096 ~hidden:4096 ()

let albert = Model.make ~name:"ALBERT" ~heads:64 ~seq:1024 ~hidden:4096 ()

let llama2_70b_gqa =
  Model.make ~name:"LLaMA2-70B" ~heads:64 ~kv_heads:8 ~seq:4096 ~hidden:8192 ()

let all = [ bert; gpt2; blenderbot; xlm; deberta_v2; llama2; albert ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun (m : Model.t) -> String.lowercase_ascii m.name = target)
    all
