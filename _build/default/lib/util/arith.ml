let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let isqrt n =
  assert (n >= 0);
  if n < 2 then n
  else begin
    (* Newton iteration on the float estimate, then fix up the boundary. *)
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do decr r done;
    while (!r + 1) * (!r + 1) <= n do incr r done;
    !r
  end

let divisors n =
  assert (n >= 1);
  let rec loop d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then
      let q = n / d in
      if q = d then loop (d + 1) (d :: small) large
      else loop (d + 1) (d :: small) (q :: large)
    else loop (d + 1) small large
  in
  loop 1 [] []

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  assert (n >= 1);
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let pow2s_upto n =
  assert (n >= 1);
  let rec loop p acc = if p > n then List.rev acc else loop (p * 2) (p :: acc) in
  loop 1 []

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let sum = List.fold_left ( + ) 0

let dedup_sorted xs =
  let sorted = List.sort compare xs in
  let rec uniq = function
    | a :: (b :: _ as rest) -> if a = b then uniq rest else a :: uniq rest
    | short -> short
  in
  uniq sorted
