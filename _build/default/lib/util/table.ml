type align = Left | Right

type t = { header : string list; aligns : align list; rows : string list list }

let create ?aligns header =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns length mismatch";
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  { header; aligns; rows = [] }

let add_row t row =
  let ncols = List.length t.header in
  let n = List.length row in
  if n > ncols then invalid_arg "Table.add_row: too many cells";
  let row = row @ List.init (ncols - n) (fun _ -> "") in
  { t with rows = row :: t.rows }

let add_rows t rows = List.fold_left add_row t rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) (List.nth widths i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  let lines = render_row t.header :: sep :: List.map render_row rows in
  String.concat "\n" lines ^ "\n"

let print t = print_string (render t)
