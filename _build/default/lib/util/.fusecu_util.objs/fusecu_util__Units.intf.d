lib/util/units.mli:
