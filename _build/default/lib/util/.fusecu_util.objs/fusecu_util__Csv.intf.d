lib/util/csv.mli:
