lib/util/stats.mli:
