lib/util/arith.ml: List
