lib/util/table.mli:
