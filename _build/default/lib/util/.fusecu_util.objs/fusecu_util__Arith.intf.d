lib/util/arith.mli:
