type t = { header : string list; rows : string list list }

let create header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Csv.add_row: width mismatch";
  { t with rows = row :: t.rows }

let add_rows t rows = List.fold_left add_row t rows

let escape field =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else begin
    let b = Buffer.create (String.length field + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      field;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let render t =
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (List.map line (t.header :: List.rev t.rows)) ^ "\n"

let write ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render t))
