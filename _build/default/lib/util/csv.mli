(** Minimal CSV writer for exporting experiment data (plotting the
    reproduced figures outside the terminal).

    Follows RFC 4180 quoting: fields containing commas, quotes or
    newlines are wrapped in double quotes with inner quotes doubled. *)

type t
(** A CSV document under construction. *)

val create : string list -> t
(** Start a document with the given header. *)

val add_row : t -> string list -> t
(** Append a row; must match the header width. *)

val add_rows : t -> string list list -> t

val render : t -> string
(** The document as a string, [\n] line endings, trailing newline. *)

val write : path:string -> t -> unit
(** Write to a file, creating parent-relative path as-is (no directory
    creation). *)

val escape : string -> string
(** Quote a single field per RFC 4180 when needed. *)
