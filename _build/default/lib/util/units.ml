let kib n = n * 1024
let mib n = n * 1024 * 1024

let pp_scaled ~unit_names ~base n =
  let rec pick value names =
    match names with
    | [] -> assert false
    | [ last ] -> (value, last)
    | name :: rest ->
      if value < float_of_int base then (value, name)
      else pick (value /. float_of_int base) rest
  in
  let value, name = pick (float_of_int n) unit_names in
  if Float.is_integer value && value < 10000. then
    Printf.sprintf "%d%s" (int_of_float value) name
  else Printf.sprintf "%.2f%s" value name

let pp_bytes n = pp_scaled ~unit_names:[ "B"; "KB"; "MB"; "GB"; "TB" ] ~base:1024 n

let pp_count n = pp_scaled ~unit_names:[ ""; "K"; "M"; "G"; "T" ] ~base:1000 n

let parse_bytes s =
  let s = String.trim (String.lowercase_ascii s) in
  let strip_suffix suffix str =
    let ls = String.length suffix and l = String.length str in
    if l >= ls && String.sub str (l - ls) ls = suffix then
      Some (String.sub str 0 (l - ls))
    else None
  in
  let try_unit (suffix, mult) =
    match strip_suffix suffix s with
    | Some digits when digits <> "" -> (
      match int_of_string_opt (String.trim digits) with
      | Some n when n >= 0 -> Some (Ok (n * mult))
      | _ -> Some (Error (Printf.sprintf "invalid byte count: %S" s)))
    | _ -> None
  in
  let units =
    [ ("gib", 1 lsl 30); ("gb", 1 lsl 30); ("g", 1 lsl 30);
      ("mib", 1 lsl 20); ("mb", 1 lsl 20); ("m", 1 lsl 20);
      ("kib", 1 lsl 10); ("kb", 1 lsl 10); ("k", 1 lsl 10);
      ("b", 1); ("", 1) ]
  in
  let rec first = function
    | [] -> Error (Printf.sprintf "invalid byte count: %S" s)
    | u :: rest -> ( match try_unit u with Some r -> r | None -> first rest)
  in
  first units

let pp_pct f = Printf.sprintf "%.1f%%" (100. *. f)

let pp_ratio f = Printf.sprintf "%.2fx" f
