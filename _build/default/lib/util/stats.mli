(** Summary statistics over float series, used for averaging normalized
    memory-access and utilization numbers across workloads. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val geomean : float list -> float
(** Geometric mean; all elements must be positive. Requires a non-empty
    list. This is the standard way to average normalized ratios across
    benchmarks. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths).
    Requires a non-empty list. *)

val minimum : float list -> float
(** Smallest element. Requires a non-empty list. *)

val maximum : float list -> float
(** Largest element. Requires a non-empty list. *)

val stddev : float list -> float
(** Population standard deviation. Requires a non-empty list. *)
