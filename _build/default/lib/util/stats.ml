let check_nonempty = function
  | [] -> invalid_arg "Stats: empty list"
  | _ -> ()

let mean xs =
  check_nonempty xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean xs =
  check_nonempty xs;
  List.iter (fun x -> if x <= 0. then invalid_arg "Stats.geomean: non-positive") xs;
  let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
  exp (log_sum /. float_of_int (List.length xs))

let median xs =
  check_nonempty xs;
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  if n mod 2 = 1 then List.nth sorted (n / 2)
  else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let minimum xs =
  check_nonempty xs;
  List.fold_left min Float.infinity xs

let maximum xs =
  check_nonempty xs;
  List.fold_left max Float.neg_infinity xs

let stddev xs =
  check_nonempty xs;
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
  sqrt var
