(** Minimal ASCII table renderer for experiment output.

    The benchmark harness prints every reproduced table and figure as an
    aligned text table; this module does the layout. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : ?aligns:align list -> string list -> t
(** [create header] starts a table with the given column names.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest, which suits "label, numbers..." layouts. *)

val add_row : t -> string list -> t
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_rows : t -> string list list -> t
(** Append several rows in order. *)

val render : t -> string
(** Render with a header separator, column padding and a trailing
    newline. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)
