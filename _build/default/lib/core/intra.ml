open Fusecu_tensor
open Fusecu_loopnest

type plan = {
  op : Matmul.t;
  schedule : Schedule.t;
  cost : Cost.t;
  dataflow : Nra.dataflow;
  regime : Regime.t;
}

let candidates ?(mode = Mode.Exact) op buf = Principles.all mode op buf

let optimize ?(mode = Mode.Exact) ?(filter = fun _ -> true) op buf =
  let cands = List.filter filter (candidates ~mode op buf) in
  let scored =
    List.map
      (fun (c : Principles.candidate) -> (Cost.eval op c.schedule, c.schedule))
      cands
  in
  let better (ca, sa) (cb, sb) =
    let open Cost in
    if ca.total <> cb.total then ca.total < cb.total
    else Schedule.footprint sa < Schedule.footprint sb
  in
  match scored with
  | [] ->
    Error
      (Format.asprintf "no feasible dataflow for %a within %a" Matmul.pp op
         Buffer.pp buf)
  | first :: rest ->
    let cost, schedule =
      List.fold_left (fun best x -> if better x best then x else best) first rest
    in
    Ok
      { op; schedule; cost;
        dataflow = Nra.classify op schedule;
        regime = Regime.classify op buf }

let optimize_exn ?mode ?filter op buf =
  match optimize ?mode ?filter op buf with
  | Ok p -> p
  | Error e -> invalid_arg e

let ma plan = plan.cost.Cost.total

let redundancy plan =
  float_of_int (ma plan) /. float_of_int (Matmul.ideal_ma plan.op)

let pp_plan fmt p =
  Format.fprintf fmt "@[<v>%a@ regime=%a dataflow=%a@ schedule=%a@ %a@]" Matmul.pp
    p.op Regime.pp p.regime Nra.pp_dataflow p.dataflow Schedule.pp p.schedule
    Cost.pp p.cost
