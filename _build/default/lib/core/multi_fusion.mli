(** Fusing chains of more than two operators.

    The paper handles longer chains by applying Principle 4 pairwise;
    when {e every} link is profitable the whole chain can run as one
    fused region with no intermediate touching memory. A middle
    operator must then keep both its input (the previous intermediate)
    and its output (the next one) free of redundant access, which pins
    it to an untiled-reduction dataflow with its weight tensor resident
    — the row-pipeline that FlashAttention-style kernels use: a block
    of [T_M] rows flows through the whole chain while all weights stay
    on-chip.

    This module gives the chain-wide validity conditions (composed from
    the pairwise conditions of {!Fusecu_loopnest.Fused}), the traffic
    and footprint of a full fusion, and a one-shot builder for the
    row-pipeline family. *)

open Fusecu_tensor
open Fusecu_loopnest

type t = private { schedules : Schedule.t list }
(** One schedule per chain operator, in order. *)

val make : Chain.t -> Schedule.t list -> (t, string) result
(** Checks the count matches the chain length. *)

val validate : Chain.t -> t -> (unit, string) result
(** Every adjacent pair must satisfy the pairwise fusibility conditions
    (non-redundant intermediate on both sides, consistent tiles,
    compatible orders). *)

val footprint : Chain.t -> t -> int
(** Peak buffer elements: all operators' tiles live simultaneously,
    with each shared intermediate tile counted once. *)

val traffic : Chain.t -> t -> int
(** Elements moved when the whole chain is fused: the first operator's
    inputs, every weight tensor, and the final output; intermediates
    are free. *)

val eval : Chain.t -> t -> Buffer.t -> (int, string) result
(** Validate (including the buffer bound) and return the traffic. *)

val row_pipeline : ?mode:Mode.t -> Chain.t -> Buffer.t -> t list
(** One-shot candidates for the row-pipeline family: all reduction
    dims untiled, all weight tensors resident, a shared row-block
    [T_M] maximized under the joint footprint (with the usual
    trip-aligned integer neighbourhood). Empty when the weights cannot
    all fit. *)

(** Whole-chain planning outcome. *)
type decision =
  | Full_fusion of { fused : t; traffic : int }
  | Fallback of Planner.plan
      (** pairwise planning (which may still fuse pairs) *)

val plan : ?mode:Mode.t -> Chain.t -> Buffer.t -> (decision, string) result
(** Fuse the whole chain when a valid full fusion moves less data than
    the pairwise plan; fall back to {!Planner.plan_chain} otherwise. *)

val traffic_of_decision : decision -> int
