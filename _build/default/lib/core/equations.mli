(** The paper's closed-form memory-access equations, as executable
    definitions.

    These are the formulas of Sec. III-A (Eq. 1–4) under their stated
    assumptions (tile sizes dividing their dimensions). The general
    cost model {!Fusecu_loopnest.Cost} subsumes them; keeping them as
    first-class functions documents the derivation and lets tests
    assert the general model reduces to the paper's algebra exactly on
    the assumptions' domain. *)

open Fusecu_tensor

val eq1_ma : Matmul.t -> t:int -> int
(** Eq. 1 — Single-NRA, output-stationary with [T_M = T_L = t],
    [T_K = 1]: [MA = MKL (1/t + 1/t) + ML]. Requires [t] to divide both
    [M] and [L] (raises [Invalid_argument] otherwise). *)

val eq2_constraint : t_m:int -> t_k:int -> t_l:int -> capacity:int -> bool
(** Eq. 2 — the buffer inequality
    [T_M T_K + T_K T_L + T_M T_L <= BS]. *)

val eq3_ma : Matmul.t -> t_m:int -> int
(** Eq. 3 — Two-NRA with [K] untiled and [T_L = 1]:
    [MA = MKL / T_M + MK + ML]. Requires [t_m] to divide [M]. *)

val eq4_max_t_m : Matmul.t -> capacity:int -> int
(** Eq. 4 solved for the largest [T_M]:
    [T_M (K + 1) + K <= BS  =>  T_M = (BS - K) / (K + 1)] (0 when
    infeasible). *)

val single_two_shift_band : Matmul.t -> int * int
(** The Single-to-Two crossover band of Sec. III-A4:
    [(Dmin^2 / 4, Dmin^2 / 2)]. *)

val three_threshold : Matmul.t -> int
(** Buffer size beyond which Three-NRA is preferred: the smallest
    tensor's size. *)
