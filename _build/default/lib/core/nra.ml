open Fusecu_tensor
open Fusecu_loopnest

type t = Single | Two | Three

let to_string = function Single -> "Single-NRA" | Two -> "Two-NRA" | Three -> "Three-NRA"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) b = a = b

let all = [ Single; Two; Three ]

type dataflow =
  | Single_nra of { stationary : Operand.t }
  | Two_nra of { untiled : Dim.t; redundant : Operand.t }
  | Three_nra of { resident : Operand.t }

let class_of = function
  | Single_nra _ -> Single
  | Two_nra _ -> Two
  | Three_nra _ -> Three

let pp_dataflow fmt = function
  | Single_nra { stationary } ->
    Format.fprintf fmt "Single-NRA(%s-stationary)" (Operand.stationary_name stationary)
  | Two_nra { untiled; redundant } ->
    Format.fprintf fmt "Two-NRA(untiled %a, redundant %a)" Dim.pp untiled Operand.pp
      redundant
  | Three_nra { resident } ->
    Format.fprintf fmt "Three-NRA(resident %a)" Operand.pp resident

let dataflow_to_string d = Format.asprintf "%a" pp_dataflow d

let equal_dataflow a b =
  match (a, b) with
  | Single_nra x, Single_nra y -> Operand.equal x.stationary y.stationary
  | Two_nra x, Two_nra y ->
    Dim.equal x.untiled y.untiled && Operand.equal x.redundant y.redundant
  | Three_nra x, Three_nra y -> Operand.equal x.resident y.resident
  | (Single_nra _ | Two_nra _ | Three_nra _), _ -> false

let classify op (s : Schedule.t) =
  let nra = Cost.nra_operands op s in
  let untiled_dims = List.filter (fun d -> Tiling.untiled op s.tiling d) Dim.all in
  match List.length nra with
  | 1 -> Single_nra { stationary = List.hd nra }
  | 2 -> begin
    let redundant =
      match List.filter (fun x -> not (List.mem x nra)) Operand.all with
      | [ r ] -> r
      | _ -> assert false
    in
    (* Prefer reporting an untiled dim of the redundant tensor's
       complement, falling back to any untiled dim; a Two-NRA schedule
       always has at least one. *)
    match untiled_dims with
    | d :: _ -> Two_nra { untiled = d; redundant }
    | [] ->
      (* Possible when a dimension has size 1 (trip count 1 without an
         explicit untiled choice); treat that dimension as untiled. *)
      let d =
        match List.filter (fun d -> Matmul.dim op d = 1) Dim.all with
        | d :: _ -> d
        | [] -> assert false
      in
      Two_nra { untiled = d; redundant }
  end
  | _ ->
    let resident =
      let fully op_t x =
        let d1, d2 = Operand.dims x in
        Tiling.untiled op op_t d1 && Tiling.untiled op op_t d2
      in
      let candidates = List.filter (fully s.tiling) Operand.all in
      let by_size =
        List.stable_sort
          (fun a b -> compare (Matmul.operand_size op a) (Matmul.operand_size op b))
          candidates
      in
      match by_size with
      | x :: _ -> x
      | [] -> fst (Matmul.min_operand op)
    in
    Three_nra { resident }
