type method_ = Keep_stationary | Untile_dimension | Hold_entirely

let methods_available = function
  | Nra.Single -> [ Keep_stationary ]
  | Nra.Two -> [ Keep_stationary; Untile_dimension ]
  | Nra.Three -> [ Untile_dimension; Hold_entirely ]

type arrow = {
  producer_class : Nra.t;
  producer_method : method_;
  consumer_class : Nra.t;
  consumer_method : method_;
  profitable : bool;
}

(* Two methods compose across a fusion boundary when they impose
   consistent movement on the shared tensor: the same method on both
   sides always works, and a fully-resident tensor satisfies either
   side's requirement. *)
let compatible a b =
  a = b || a = Hold_entirely || b = Hold_entirely

let arrows =
  List.concat_map
    (fun pc ->
      List.concat_map
        (fun pm ->
          List.concat_map
            (fun cc ->
              List.filter_map
                (fun cm ->
                  if compatible pm cm then
                    Some
                      { producer_class = pc; producer_method = pm;
                        consumer_class = cc; consumer_method = cm;
                        profitable = Nra.equal pc cc }
                  else None)
                (methods_available cc))
            Nra.all)
        (methods_available pc))
    Nra.all

let green = List.filter (fun a -> a.profitable) arrows

let red = List.filter (fun a -> not a.profitable) arrows

let mapping_for a =
  if not a.profitable then None
  else
    match (a.producer_method, a.consumer_method) with
    | Untile_dimension, _ | _, Untile_dimension -> Some `Column_fusion
    | (Keep_stationary | Hold_entirely), (Keep_stationary | Hold_entirely) ->
      Some `Tile_fusion

let method_name = function
  | Keep_stationary -> "stationary"
  | Untile_dimension -> "untiled dim"
  | Hold_entirely -> "entire tensor"

let pp_arrow fmt a =
  Format.fprintf fmt "%s(%s) -> %s(%s): %s"
    (Nra.to_string a.producer_class)
    (method_name a.producer_method)
    (Nra.to_string a.consumer_class)
    (method_name a.consumer_method)
    (if a.profitable then "profitable" else "fusable, not profitable")
