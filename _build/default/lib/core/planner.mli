(** Whole-chain planning: apply Principle 4 to every pair of connected
    operators in a matmul chain and lay out fused / solo segments.

    Fusion is pairwise (as on the FuseCU array, which joins two compute
    phases); a fused pair consumes two chain positions. *)

open Fusecu_tensor
open Fusecu_loopnest

type segment =
  | Solo of Intra.plan
  | Fused_pair of {
      pair : Fused.pair;
      pattern : Fusion.pattern;
      fused : Fused.t;
      traffic : int;
    }

type plan = { segments : segment list; traffic : int }

val segment_traffic : segment -> int

val plan_chain : ?mode:Mode.t -> ?strategy:Fusion.strategy -> Chain.t -> Buffer.t
  -> (plan, string) result
(** Greedy left-to-right planning: each still-unplanned pair is fused
    when {!Fusion.plan_pair} says so, otherwise the left operator runs
    solo. *)

val plan_ops : ?mode:Mode.t -> Matmul.t list -> Buffer.t -> (plan, string) result
(** Plan a bag of independent operators (no fusion opportunities). *)

val pp : Format.formatter -> plan -> unit
