open Fusecu_tensor
open Fusecu_loopnest

let register_capacity ~pe_dim = pe_dim * pe_dim

let max_useful_untiled_dim ~pe_dim = 2 * pe_dim

let register_buffer ~pe_dim = Buffer.make (register_capacity ~pe_dim)

let register_regime ~pe_dim op = Regime.classify op (register_buffer ~pe_dim)

let untiling_profitable ~pe_dim op =
  (* Two-/Three-NRA appear from the Small regime upwards, i.e. when
     BS > Dmin^2/4. *)
  match register_regime ~pe_dim op with
  | Regime.Tiny -> false
  | Regime.Small | Regime.Medium | Regime.Large -> true

let supported_by_fusecu ~pe_dim op =
  if not (untiling_profitable ~pe_dim op) then true
  else begin
    (* BS > Dmin^2/4 with BS = N^2 gives Dmin < 2N: the dimension the
       principles untile (the smallest one, Principle 2) fits the
       adaptive array. *)
    let _, dmin = Matmul.min_dim op in
    dmin <= max_useful_untiled_dim ~pe_dim
  end
