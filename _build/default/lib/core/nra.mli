(** Non-Redundant-Access (NRA) dataflow classes — the paper's taxonomy of
    matmul dataflows by how many operand tensors avoid redundant memory
    access (Sec. III-A). *)

open Fusecu_tensor
open Fusecu_loopnest

type t = Single | Two | Three

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val all : t list

(** A fully-specified dataflow shape within a class. *)
type dataflow =
  | Single_nra of { stationary : Operand.t }
      (** Only the stationary tensor is accessed once. *)
  | Two_nra of { untiled : Dim.t; redundant : Operand.t }
      (** One dimension is untiled; exactly one tensor (the [redundant]
          one) is refetched. *)
  | Three_nra of { resident : Operand.t }
      (** Both dims of [resident] are untiled (the tensor is held
          entirely on-chip); every tensor is accessed once. *)

val class_of : dataflow -> t

val pp_dataflow : Format.formatter -> dataflow -> unit

val dataflow_to_string : dataflow -> string

val equal_dataflow : dataflow -> dataflow -> bool

val classify : Matmul.t -> Schedule.t -> dataflow
(** Recover the dataflow shape of an arbitrary schedule from its access
    behaviour: the NRA count gives the class, the untiled dimensions and
    the redundant operand give the details. When several operands are
    fully resident the smallest is reported. *)
