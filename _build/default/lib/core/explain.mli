(** Human-readable derivations: why the principles chose a dataflow.

    The paper's selling point over black-box DSE is architectural
    insight; this module renders the insight — the regime arithmetic,
    the applicable principle, the tile-size reasoning, and the
    runner-up candidates — as text for the CLI and examples. *)

open Fusecu_tensor
open Fusecu_loopnest

val intra : ?mode:Mode.t -> Matmul.t -> Buffer.t -> (string, string) result
(** A multi-line derivation for one operator: thresholds, regime,
    chosen principle, resulting schedule, and the cost of every
    dataflow family that was considered. *)

val fusion : ?mode:Mode.t -> Fused.pair -> Buffer.t -> (string, string) result
(** The Principle-4 reasoning for a fusion site: the two operators'
    classes, whether fusion is profitable, and (when fusing) the
    pattern chosen with its traffic against the unfused plan. *)
