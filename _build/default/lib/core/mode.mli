(** Tile-size lattices. The principles give continuous-optimum tile
    sizes; real dataflows snap them to a lattice. *)

open Fusecu_tensor

type t =
  | Exact  (** any integer tile size; ragged edges are costed exactly *)
  | Divisors  (** tile sizes divide their dimension (the paper's worked
                  example: T_M = 512 for M = 1024) *)
  | Pow2  (** power-of-two tile sizes (or the full dimension) *)

val quantize : t -> Matmul.t -> Dim.t -> int -> int
(** [quantize mode op d target] is the largest lattice point [<= target]
    for dimension [d], clamped into [\[1, dim d\]]. A target at or above
    the dimension size always yields the full dimension (untiled). *)

val pp : Format.formatter -> t -> unit
