open Fusecu_tensor
open Fusecu_util

type t = Exact | Divisors | Pow2

let quantize mode op d target =
  let size = Matmul.dim op d in
  let target = Arith.clamp ~lo:1 ~hi:size target in
  if target = size then size
  else
    match mode with
    | Exact -> target
    | Divisors ->
      List.fold_left (fun acc v -> if v <= target then max acc v else acc) 1
        (Arith.divisors size)
    | Pow2 ->
      List.fold_left (fun acc v -> if v <= target then max acc v else acc) 1
        (Arith.pow2s_upto target)

let pp fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Divisors -> Format.pp_print_string fmt "divisors"
  | Pow2 -> Format.pp_print_string fmt "pow2"
