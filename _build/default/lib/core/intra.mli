(** One-shot intra-operator dataflow optimization (Principles 1–3 plus
    the regime-based dataflow choice of Sec. III-A4).

    [optimize] evaluates the constant-size principle candidate set and
    returns the best schedule — no design-space search. *)

open Fusecu_tensor
open Fusecu_loopnest

type plan = {
  op : Matmul.t;
  schedule : Schedule.t;
  cost : Cost.t;
  dataflow : Nra.dataflow;  (** classified from the actual schedule *)
  regime : Regime.t;
}

val candidates : ?mode:Mode.t -> Matmul.t -> Buffer.t -> Principles.candidate list
(** The full principle candidate set ({!Principles.all}); [mode]
    defaults to [Exact]. *)

val optimize : ?mode:Mode.t -> ?filter:(Principles.candidate -> bool) ->
  Matmul.t -> Buffer.t -> (plan, string) result
(** Pick the candidate with the least memory traffic (ties broken by
    smaller buffer footprint). [filter] restricts the candidate set —
    platform models use it to express hardware limitations. [Error] when
    no candidate fits the buffer (capacity below 3 elements). *)

val optimize_exn : ?mode:Mode.t -> ?filter:(Principles.candidate -> bool) ->
  Matmul.t -> Buffer.t -> plan

val ma : plan -> int
(** Total element traffic of a plan. *)

val redundancy : plan -> float
(** Ratio of achieved traffic to the unbounded-buffer lower bound
    [ideal_ma]; 1.0 means the communication lower bound is met. *)

val pp_plan : Format.formatter -> plan -> unit
