(** The Fig. 4 catalog: every way two matmuls can be fused, and which
    of them are profitable.

    The paper derives fusibility from the three ways an intra-operator
    dataflow avoids redundant access to the intermediate tensor —
    keeping it stationary, untiling one of its dimensions, or holding
    it entirely on-chip — and marks fusions between equal NRA classes
    as profitable (green arrows) and cross-class fusions as possible
    but non-profitable (red arrows). This module enumerates that
    catalog as data, so the figure can be regenerated and its structure
    asserted in tests. *)

(** How an operator's dataflow protects the intermediate tensor. *)
type method_ =
  | Keep_stationary  (** method 1: the tensor is the stationary one *)
  | Untile_dimension  (** method 2: one of its dims is untiled *)
  | Hold_entirely  (** method 3: the whole tensor stays in the buffer *)

val methods_available : Nra.t -> method_ list
(** Which methods an NRA class offers (paper Sec. III-B1):
    Single → stationary; Two → stationary or untiled;
    Three → untiled or entire. *)

type arrow = {
  producer_class : Nra.t;
  producer_method : method_;
  consumer_class : Nra.t;
  consumer_method : method_;
  profitable : bool;  (** green (same class) vs red (cross class) *)
}

val arrows : arrow list
(** Every fusable combination: the cartesian product of the classes'
    methods, with compatible method pairs only (both sides must protect
    the shared tensor the same way, or one holds it entirely). *)

val green : arrow list
(** The profitable subset — the arrows FuseCU's mappings implement. *)

val red : arrow list

val mapping_for : arrow -> [ `Tile_fusion | `Column_fusion ] option
(** The Sec. IV-A mapping a profitable arrow uses ([None] for red
    arrows): stationary/entire intermediates map as tile fusion,
    untiled-dimension intermediates as column fusion. *)

val method_name : method_ -> string

val pp_arrow : Format.formatter -> arrow -> unit
