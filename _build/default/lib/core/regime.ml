open Fusecu_tensor
open Fusecu_loopnest

type t = Tiny | Small | Medium | Large

let to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) b = a = b

type thresholds = { tiny_max : int; small_max : int; medium_max : int }

let thresholds op =
  let _, dmin = Matmul.min_dim op in
  let _, tensor_min = Matmul.min_operand op in
  { tiny_max = dmin * dmin / 4; small_max = dmin * dmin / 2; medium_max = tensor_min }

let classify op buf =
  let bs = Buffer.elements buf in
  let t = thresholds op in
  if bs <= t.tiny_max then Tiny
  else if bs <= t.small_max then Small
  else if bs <= t.medium_max then Medium
  else Large

let expected_classes = function
  | Tiny -> [ Nra.Single ]
  | Small -> [ Nra.Single; Nra.Two ]
  | Medium -> [ Nra.Two ]
  | Large -> [ Nra.Three ]
