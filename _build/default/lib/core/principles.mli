(** One-shot schedule constructors, one per principle (paper Sec. III-A).

    Each builder turns a closed-form tile-size solution (plus a small
    integer-lattice neighbourhood, since the closed forms are derived
    over the reals) into concrete candidate schedules. The builders do
    {e not} search: the candidate count is a small constant.

    - {!single} — Principle 1: tile of the stationary tensor's dims
      maximized ([T^2 + 2T <= BS] at the symmetric point), free dim
      minimized to 1, stationary tensor's free dim innermost.
    - {!two} — Principle 2: one dimension untiled; the tile of the dim
      absent from the redundant tensor maximized
      ([T <= (BS - D)/(D + 1)]), the remaining dim minimized.
    - {!three} — Principle 3: both dims of the resident tensor untiled;
      remaining tile size is a don't-care (1 gives the smallest
      footprint). *)

open Fusecu_tensor
open Fusecu_loopnest

type candidate = { intent : Nra.dataflow; schedule : Schedule.t }
(** A proposed schedule tagged with the dataflow shape it implements. *)

val single : Mode.t -> Matmul.t -> Buffer.t -> stationary:Operand.t -> candidate list
(** Single-NRA candidates for a choice of stationary tensor. Empty when
    even the unit tiling does not fit. *)

val two : Mode.t -> Matmul.t -> Buffer.t -> untiled:Dim.t -> redundant:Operand.t
  -> candidate list
(** Two-NRA candidates. [redundant] must be indexed by [untiled]
    (raises [Invalid_argument] otherwise). Empty when infeasible. *)

val three : Mode.t -> Matmul.t -> Buffer.t -> resident:Operand.t -> candidate list
(** Three-NRA candidates keeping [resident] entirely on-chip. Empty when
    the tensor does not fit alongside working tiles. *)

val all : Mode.t -> Matmul.t -> Buffer.t -> candidate list
(** Every candidate from every builder variant: 3 stationary choices,
    6 (untiled, redundant) choices, 3 resident choices. *)
