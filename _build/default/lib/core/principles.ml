open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type candidate = { intent : Nra.dataflow; schedule : Schedule.t }

(* Integer neighbourhood explored around each closed-form tile size:
   the real-valued optimum can straddle a lattice point. *)
let wiggle = [ -2; -1; 0; 1; 2 ]

(* Memory traffic depends on a tile size only through its (integer) trip
   count ceil(D/T), so the canonical useful tile sizes are the minimal
   ones per trip count: T = ceil(D/j). [trip_align] snaps a tile to that
   form (same trips, no larger), freeing buffer for the partner tile. *)
let trip_align d t =
  if t >= d then d else Arith.ceil_div d (Arith.ceil_div d t)

let dedup_candidates cands =
  let rec uniq seen = function
    | [] -> []
    | c :: rest ->
      if List.exists (fun s -> Schedule.equal s c.schedule) seen then uniq seen rest
      else c :: uniq (c.schedule :: seen) rest
  in
  uniq [] cands

(* Largest t2 with t1*t2 + t1 + t2 <= bs (one tile of each operand,
   free-dim tile pinned to 1). *)
let partner_tile ~bs t1 = (bs - t1) / (t1 + 1)

let single mode op buf ~stationary =
  let bs = Buffer.elements buf in
  let d1, d2 = Operand.dims stationary in
  let free = Operand.free_dim stationary in
  let size1 = Matmul.dim op d1 and size2 = Matmul.dim op d2 in
  let base = Arith.isqrt (bs + 1) - 1 in
  let seeds =
    (* symmetric point, each dim clamped to full size, the tile implied
       when the partner clamps, and the trip-aligned versions of each *)
    let raw =
      base :: size1 :: partner_tile ~bs size2 :: List.map (fun w -> base + w) wiggle
    in
    (* Traffic depends on tile sizes only through integer trip counts,
       so the complete candidate set along this dimension is the
       minimal tile per distinct trip count, ceil(D/j) — only O(sqrt D)
       values: large tiles come from j <= sqrt D, small tiles are
       themselves <= sqrt D. The partner dimension then maximizes under
       the buffer constraint, making the builder a one-dimensional
       refinement of the principle's structure, not a search. *)
    let root = Arith.isqrt size1 + 1 in
    let by_trips =
      List.map (fun j -> Arith.ceil_div size1 j) (Arith.range 1 root)
      @ Arith.range 1 root
    in
    raw @ by_trips @ List.map (fun t -> if t >= 1 then trip_align size1 t else t) raw
  in
  let order = Order.make ~outer:d1 ~mid:d2 ~inner:free in
  let mk t1 =
    if t1 < 1 then None
    else begin
      let t1 = Mode.quantize mode op d1 t1 in
      let t2 = partner_tile ~bs t1 in
      if t2 < 1 then None
      else begin
        let t2 = Mode.quantize mode op d2 (trip_align size2 t2) in
        let tiling =
          Tiling.make op ~m:1 ~k:1 ~l:1
          |> fun t -> Tiling.with_dim op t d1 t1
          |> fun t -> Tiling.with_dim op t d2 t2
        in
        let schedule = Schedule.make tiling order in
        if Schedule.fits schedule buf then
          Some { intent = Nra.Single_nra { stationary }; schedule }
        else None
      end
    end
  in
  dedup_candidates (List.filter_map mk seeds)

let two mode op buf ~untiled ~redundant =
  if not (Operand.uses_dim redundant untiled) then
    invalid_arg "Principles.two: redundant operand must use the untiled dim";
  let bs = Buffer.elements buf in
  let d = Matmul.dim op untiled in
  let grow = Operand.free_dim redundant in
  let shrink = Dim.other untiled grow in
  let base = (bs - d) / (d + 1) in
  if base < 1 then []
  else begin
    let grow_size = Matmul.dim op grow in
    let order = Order.make ~outer:grow ~mid:shrink ~inner:untiled in
    let mk t =
      if t < 1 then None
      else begin
        let t = Mode.quantize mode op grow (trip_align grow_size t) in
        let tiling =
          Tiling.full op
          |> fun x -> Tiling.with_dim op x grow t
          |> fun x -> Tiling.with_dim op x shrink 1
        in
        let schedule = Schedule.make tiling order in
        if Schedule.fits schedule buf then
          Some { intent = Nra.Two_nra { untiled; redundant }; schedule }
        else None
      end
    in
    dedup_candidates
      (List.filter_map mk (base :: List.map (fun w -> base + w) wiggle))
  end

let three _mode op buf ~resident =
  let d1, d2 = Operand.dims resident in
  let free = Operand.free_dim resident in
  let order = Order.make ~outer:free ~mid:d1 ~inner:d2 in
  let tiling = Tiling.full op |> fun t -> Tiling.with_dim op t free 1 in
  let schedule = Schedule.make tiling order in
  if Schedule.fits schedule buf then
    [ { intent = Nra.Three_nra { resident }; schedule } ]
  else []

let all mode op buf =
  let singles =
    List.concat_map (fun x -> single mode op buf ~stationary:x) Operand.all
  in
  let twos =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun x -> two mode op buf ~untiled:d ~redundant:x)
          (Operand.with_dim d))
      Dim.all
  in
  let threes =
    List.concat_map (fun x -> three mode op buf ~resident:x) Operand.all
  in
  singles @ twos @ threes
