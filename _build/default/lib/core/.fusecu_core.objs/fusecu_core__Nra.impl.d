lib/core/nra.ml: Cost Dim Format Fusecu_loopnest Fusecu_tensor List Matmul Operand Schedule Tiling
