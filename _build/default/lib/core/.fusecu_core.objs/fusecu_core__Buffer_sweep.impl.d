lib/core/buffer_sweep.ml: Buffer Fusecu_loopnest Fusecu_util Intra List Mode Nra Regime
