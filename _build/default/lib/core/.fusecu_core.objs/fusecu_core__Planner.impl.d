lib/core/planner.ml: Chain Format Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Fusion Intra List Matmul Mode
