lib/core/principles.mli: Buffer Dim Fusecu_loopnest Fusecu_tensor Matmul Mode Nra Operand Schedule
