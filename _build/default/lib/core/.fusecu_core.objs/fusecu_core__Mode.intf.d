lib/core/mode.mli: Dim Format Fusecu_tensor Matmul
