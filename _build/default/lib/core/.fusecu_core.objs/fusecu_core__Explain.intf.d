lib/core/explain.mli: Buffer Fusecu_loopnest Fusecu_tensor Fused Matmul Mode
