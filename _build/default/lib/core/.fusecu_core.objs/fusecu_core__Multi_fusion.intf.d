lib/core/multi_fusion.mli: Buffer Chain Fusecu_loopnest Fusecu_tensor Mode Planner Schedule
