lib/core/nra.mli: Dim Format Fusecu_loopnest Fusecu_tensor Matmul Operand Schedule
