lib/core/lower_bound.ml: Chain Fusecu_tensor Intra Matmul
