lib/core/fusion.mli: Buffer Format Fusecu_loopnest Fused Intra Mode Nra
