lib/core/equations.mli: Fusecu_tensor Matmul
