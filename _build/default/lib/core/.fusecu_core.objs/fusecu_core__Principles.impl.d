lib/core/principles.ml: Arith Buffer Dim Fusecu_loopnest Fusecu_tensor Fusecu_util List Matmul Mode Nra Operand Order Schedule Tiling
