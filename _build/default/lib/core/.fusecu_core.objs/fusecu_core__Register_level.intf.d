lib/core/register_level.mli: Buffer Fusecu_loopnest Fusecu_tensor Matmul Regime
