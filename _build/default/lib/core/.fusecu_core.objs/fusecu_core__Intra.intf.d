lib/core/intra.mli: Buffer Cost Format Fusecu_loopnest Fusecu_tensor Matmul Mode Nra Principles Regime Schedule
