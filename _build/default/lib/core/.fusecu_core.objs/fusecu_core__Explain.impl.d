lib/core/explain.ml: Buffer Cost Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Fusion Hashtbl Intra List Matmul Mode Movement Nra Operand Principles Printf Regime Schedule Stdlib String
