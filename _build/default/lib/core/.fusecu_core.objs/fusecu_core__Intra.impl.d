lib/core/intra.ml: Buffer Cost Format Fusecu_loopnest Fusecu_tensor List Matmul Mode Nra Principles Regime Schedule
