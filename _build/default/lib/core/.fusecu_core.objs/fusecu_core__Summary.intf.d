lib/core/summary.mli:
