lib/core/planner.mli: Buffer Chain Format Fusecu_loopnest Fusecu_tensor Fused Fusion Intra Matmul Mode
