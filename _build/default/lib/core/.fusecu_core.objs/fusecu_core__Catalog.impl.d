lib/core/catalog.ml: Format List Nra
