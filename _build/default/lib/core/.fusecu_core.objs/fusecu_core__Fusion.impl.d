lib/core/fusion.ml: Arith Buffer Dim Format Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Intra List Mode Nra Order Schedule Tiling Units
