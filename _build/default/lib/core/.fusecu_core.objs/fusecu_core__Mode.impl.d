lib/core/mode.ml: Arith Format Fusecu_tensor Fusecu_util List Matmul
