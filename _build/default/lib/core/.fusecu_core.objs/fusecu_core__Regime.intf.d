lib/core/regime.mli: Buffer Format Fusecu_loopnest Fusecu_tensor Matmul Nra
