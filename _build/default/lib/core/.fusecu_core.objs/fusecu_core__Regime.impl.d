lib/core/regime.ml: Buffer Format Fusecu_loopnest Fusecu_tensor Matmul Nra
