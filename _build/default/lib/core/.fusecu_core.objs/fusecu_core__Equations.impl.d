lib/core/equations.ml: Fusecu_tensor Matmul
