lib/core/buffer_sweep.mli: Fusecu_tensor Matmul Mode Nra
