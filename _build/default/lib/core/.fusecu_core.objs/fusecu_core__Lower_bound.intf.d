lib/core/lower_bound.mli: Buffer Chain Fusecu_loopnest Fusecu_tensor Matmul Mode
