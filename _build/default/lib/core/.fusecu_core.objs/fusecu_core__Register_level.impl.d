lib/core/register_level.ml: Buffer Fusecu_loopnest Fusecu_tensor Matmul Regime
