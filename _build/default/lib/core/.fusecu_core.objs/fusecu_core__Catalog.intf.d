lib/core/catalog.mli: Format Nra
