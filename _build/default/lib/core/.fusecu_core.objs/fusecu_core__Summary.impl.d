lib/core/summary.ml:
