lib/core/multi_fusion.ml: Arith Buffer Chain Cost Dim Format Fusecu_loopnest Fusecu_tensor Fusecu_util Fused List Matmul Mode Operand Order Planner Printf Schedule Tiling
