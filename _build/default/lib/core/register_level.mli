(** The principles applied at the register level (paper Sec. IV-B).

    Inside the PE array the "buffer" is the register file: one element
    per PE, so BS = N*N for an N x N array. The paper's derivation:
    untiled-dimension dataflows (Two-/Three-NRA) are only optimal when
    BS > Dmin^2 / 4, i.e. N^2 > Dmin^2 / 4, i.e. Dmin < 2N — so an
    array that supports untiled dimensions up to 2N (via the narrow /
    wide compositions of Fig. 7) covers {e every} case where untiling
    is the right choice. This module makes that argument executable. *)

open Fusecu_tensor
open Fusecu_loopnest

val register_capacity : pe_dim:int -> int
(** Register-level "buffer size" of one [pe_dim x pe_dim] compute
    unit. *)

val max_useful_untiled_dim : pe_dim:int -> int
(** The bound [2N]: the largest dimension size for which an
    untiled-dimension dataflow can be register-level optimal. *)

val untiling_profitable : pe_dim:int -> Matmul.t -> bool
(** Whether an untiled-dimension dataflow is within the optimal set at
    the register level for this operator (the regime of the [N^2]
    register file is beyond Tiny). *)

val register_regime : pe_dim:int -> Matmul.t -> Regime.t
(** The buffer regime of the register file itself. *)

val supported_by_fusecu : pe_dim:int -> Matmul.t -> bool
(** The architecture-design conclusion: either untiling is not optimal
    for this operator (so square arrays suffice), or the dimension that
    the principles would untile fits within [2N] — FuseCU's adaptive
    array covers it. The paper's claim is that this predicate holds for
    {e every} operator; a property test verifies it. *)

val register_buffer : pe_dim:int -> Buffer.t
(** The register file viewed as a buffer ([N^2] one-byte elements). *)
