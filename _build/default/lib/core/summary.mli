(** Static data behind Table I of the paper: feature comparison of
    dataflow optimizers. Rendered by the benchmark harness. *)

type row = {
  optimizer : string;
  full_space : bool;  (** full tiling & scheduling optimization space *)
  tiling_scheme : string;
  mapping_scheme : string;
  fusion_medium : string;
}

val rows : row list
(** One row per column of the paper's Table I, ending with this work. *)

val header : string list
