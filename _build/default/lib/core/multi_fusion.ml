open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type t = { schedules : Schedule.t list }

let make chain schedules =
  if List.length schedules <> Chain.length chain then
    Error "multi-fusion: one schedule per operator required"
  else Ok { schedules }

let pairs_with_schedules chain t =
  let rec zip ops schedules =
    match (ops, schedules) with
    | op1 :: (op2 :: _ as ops_rest), s1 :: (s2 :: _ as s_rest) ->
      (Fused.make_pair_exn op1 op2, { Fused.producer = s1; consumer = s2 })
      :: zip ops_rest s_rest
    | _ -> []
  in
  zip (Chain.ops chain) t.schedules

let validate chain t =
  let rec check i = function
    | [] -> Ok ()
    | (pair, fused) :: rest -> (
      match Fused.validate pair fused with
      | Ok () -> check (i + 1) rest
      | Error e ->
        Error (Format.asprintf "link %d: %a" i Fused.pp_invalid e))
  in
  check 0 (pairs_with_schedules chain t)

let footprint chain t =
  let tile_totals =
    List.map (fun (s : Schedule.t) -> Tiling.footprint s.tiling) t.schedules
  in
  (* each intermediate tile is both a producer C tile and a consumer A
     tile; count it once *)
  let shared =
    List.fold_left
      (fun acc (_, (fused : Fused.t)) ->
        acc + Tiling.operand_tile fused.producer.tiling Operand.C)
      0
      (pairs_with_schedules chain t)
  in
  Arith.sum tile_totals - shared

let traffic chain t =
  let ops = Chain.ops chain in
  let n = List.length ops in
  let costs = List.map2 Cost.eval ops t.schedules in
  List.fold_left ( + ) 0
    (List.mapi
       (fun i (cost : Cost.t) ->
         let first = i = 0 and last = i = n - 1 in
         (if first then cost.a.traffic else 0)
         + cost.b.traffic
         + if last then cost.c.traffic else 0)
       costs)

let eval chain t buf =
  match validate chain t with
  | Error e -> Error e
  | Ok () ->
    let fp = footprint chain t in
    if fp > Buffer.elements buf then
      Error
        (Printf.sprintf "fused chain footprint %d exceeds buffer %d" fp
           (Buffer.elements buf))
    else Ok (traffic chain t)

(* Row pipeline: every reduction dim untiled, every weight resident,
   one shared row block T_M. Footprint(T_M) =
   sum_i (T_M*K_i + K_i*L_i + T_M*L_i) - sum_intermediates T_M*L_i
       = sum_i K_i*L_i + T_M*(K_1 + L_n + sum_i<n L_i ... ) computed
   directly below. *)
let row_pipeline ?(mode = Mode.Exact) chain buf =
  let ops = Chain.ops chain in
  let weights = Arith.sum (List.map (fun (op : Matmul.t) -> op.k * op.l) ops) in
  let first = List.hd ops in
  let per_row =
    (* columns live per row block: A_1 rows (K_1 wide) plus every
       operator's output rows (L_i wide); intermediates shared *)
    first.k + Arith.sum (List.map (fun (op : Matmul.t) -> op.l) ops)
  in
  let budget = Buffer.elements buf - weights in
  if budget < per_row then []
  else begin
    let m = first.m in
    let base = budget / per_row in
    let order = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
    let candidates =
      Arith.dedup_sorted
        (List.filter_map
           (fun tm ->
             if tm < 1 then None
             else begin
               let tm = min tm m in
               (* minimal tile for the same trip count, then the lattice *)
               let aligned = Arith.ceil_div m (Arith.ceil_div m tm) in
               Some (Mode.quantize mode first Dim.M aligned)
             end)
           [ base; base - 1; base + 1; m ])
    in
    List.filter_map
      (fun tm ->
        let schedules =
          List.map
            (fun (op : Matmul.t) ->
              Schedule.make (Tiling.make op ~m:tm ~k:op.k ~l:op.l) order)
            ops
        in
        match make chain schedules with
        | Error _ -> None
        | Ok t -> if footprint chain t <= Buffer.elements buf then Some t else None)
      candidates
  end

type decision =
  | Full_fusion of { fused : t; traffic : int }
  | Fallback of Planner.plan

let traffic_of_decision = function
  | Full_fusion { traffic; _ } -> traffic
  | Fallback plan -> plan.Planner.traffic

let plan ?(mode = Mode.Exact) chain buf =
  match Planner.plan_chain ~mode chain buf with
  | Error e -> Error e
  | Ok pairwise ->
    let best_full =
      List.fold_left
        (fun best candidate ->
          match eval chain candidate buf with
          | Error _ -> best
          | Ok traffic -> (
            match best with
            | Some (_, bt) when bt <= traffic -> best
            | _ -> Some (candidate, traffic)))
        None
        (row_pipeline ~mode chain buf)
    in
    (match best_full with
    | Some (fused, traffic) when traffic < pairwise.Planner.traffic ->
      Ok (Full_fusion { fused; traffic })
    | Some _ | None -> Ok (Fallback pairwise))
