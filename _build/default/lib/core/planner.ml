open Fusecu_tensor
open Fusecu_loopnest

type segment =
  | Solo of Intra.plan
  | Fused_pair of {
      pair : Fused.pair;
      pattern : Fusion.pattern;
      fused : Fused.t;
      traffic : int;
    }

type plan = { segments : segment list; traffic : int }

let segment_traffic = function
  | Solo p -> Intra.ma p
  | Fused_pair { traffic; _ } -> traffic

let of_segments segments =
  { segments;
    traffic = Fusecu_util.Arith.sum (List.map segment_traffic segments) }

let plan_chain ?(mode = Mode.Exact) ?(strategy = Fusion.By_principle) chain buf =
  let rec plan_ops_list acc = function
    | [] -> Ok (List.rev acc)
    | [ last ] -> (
      match Intra.optimize ~mode last buf with
      | Ok p -> Ok (List.rev (Solo p :: acc))
      | Error e -> Error e)
    | op1 :: (op2 :: rest as tail) -> (
      match Fused.make_pair op1 op2 with
      | Error e -> Error e
      | Ok pair -> (
        match Fusion.plan_pair ~mode ~strategy pair buf with
        | Error e -> Error e
        | Ok (Fusion.Fuse { pattern; fused; traffic }) ->
          plan_ops_list (Fused_pair { pair; pattern; fused; traffic } :: acc) rest
        | Ok (Fusion.No_fuse { plan1; _ }) -> plan_ops_list (Solo plan1 :: acc) tail))
  in
  match plan_ops_list [] (Chain.ops chain) with
  | Ok segments -> Ok (of_segments segments)
  | Error e -> Error e

let plan_ops ?(mode = Mode.Exact) ops buf =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | op :: rest -> (
      match Intra.optimize ~mode op buf with
      | Ok p -> loop (Solo p :: acc) rest
      | Error e -> Error e)
  in
  match loop [] ops with
  | Ok segments -> Ok (of_segments segments)
  | Error e -> Error e

let pp fmt t =
  let pp_segment fmt = function
    | Solo p -> Format.fprintf fmt "solo: %a" Intra.pp_plan p
    | Fused_pair { pair; pattern; traffic; _ } ->
      Format.fprintf fmt "fused [%a] %a + %a: %s" Fusion.pp_pattern pattern
        Matmul.pp pair.Fused.op1 Matmul.pp pair.Fused.op2
        (Fusecu_util.Units.pp_count traffic)
  in
  Format.fprintf fmt "@[<v>plan traffic=%s@ %a@]"
    (Fusecu_util.Units.pp_count t.traffic)
    (Format.pp_print_list pp_segment)
    t.segments
