open Fusecu_tensor

let eq1_ma (op : Matmul.t) ~t =
  if t < 1 || op.m mod t <> 0 || op.l mod t <> 0 then
    invalid_arg "Equations.eq1_ma: t must divide M and L";
  (Matmul.macs op * 2 / t) + (op.m * op.l)

let eq2_constraint ~t_m ~t_k ~t_l ~capacity =
  (t_m * t_k) + (t_k * t_l) + (t_m * t_l) <= capacity

let eq3_ma (op : Matmul.t) ~t_m =
  if t_m < 1 || op.m mod t_m <> 0 then
    invalid_arg "Equations.eq3_ma: t_m must divide M";
  (Matmul.macs op / t_m) + (op.m * op.k) + (op.m * op.l)

let eq4_max_t_m (op : Matmul.t) ~capacity =
  max 0 ((capacity - op.k) / (op.k + 1))

let single_two_shift_band op =
  let _, dmin = Matmul.min_dim op in
  (dmin * dmin / 4, dmin * dmin / 2)

let three_threshold op = snd (Matmul.min_operand op)
