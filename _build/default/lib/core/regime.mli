(** Buffer-size regimes (paper Sec. III-A4): which NRA class is optimal
    follows directly from the buffer capacity relative to the operator's
    dimension sizes.

    {v
    Tiny:    BS <= Dmin^2/4                  -> Single-NRA
    Small:   Dmin^2/4 < BS <= Dmin^2/2       -> Single- or Two-NRA
    Medium:  Dmin^2/2 < BS <= Tensor_min     -> Two-NRA
    Large:   BS > Tensor_min                 -> Three-NRA
    v} *)

open Fusecu_tensor
open Fusecu_loopnest

type t = Tiny | Small | Medium | Large

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

type thresholds = {
  tiny_max : int;  (** [Dmin^2 / 4] elements *)
  small_max : int;  (** [Dmin^2 / 2] elements *)
  medium_max : int;  (** size of the smallest tensor, elements *)
}

val thresholds : Matmul.t -> thresholds

val classify : Matmul.t -> Buffer.t -> t
(** Which regime a buffer falls into for an operator. *)

val expected_classes : t -> Nra.t list
(** The NRA classes the paper predicts to be optimal in a regime (two
    candidates in the [Small] regime, one elsewhere). *)
