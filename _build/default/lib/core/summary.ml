type row = {
  optimizer : string;
  full_space : bool;
  tiling_scheme : string;
  mapping_scheme : string;
  fusion_medium : string;
}

let rows =
  [ { optimizer = "Intra-operator [1,3,6,7]"; full_space = false;
      tiling_scheme = "searching"; mapping_scheme = "searching (fixed patterns)";
      fusion_medium = "none" };
    { optimizer = "Chimera"; full_space = false; tiling_scheme = "searching";
      mapping_scheme = "replaceable micro kernels"; fusion_medium = "memory" };
    { optimizer = "SET"; full_space = false; tiling_scheme = "searching";
      mapping_scheme = "not discussed"; fusion_medium = "memory" };
    { optimizer = "FLAT"; full_space = false; tiling_scheme = "searching";
      mapping_scheme = "not discussed"; fusion_medium = "memory" };
    { optimizer = "DAT"; full_space = true; tiling_scheme = "searching";
      mapping_scheme = "not discussed"; fusion_medium = "memory" };
    { optimizer = "This work"; full_space = true; tiling_scheme = "principle";
      mapping_scheme = "principle"; fusion_medium = "compute unit" } ]

let header =
  [ "Optimizer"; "Full space"; "Tiling/scheduling"; "Mapping"; "Fusion medium" ]
