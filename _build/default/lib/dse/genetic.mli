(** Genetic-algorithm intra-operator optimizer — models the GA half of
    DAT [15] (which combines mixed-integer programming with a GA and,
    as the paper notes in Fig. 9, "does not guarantee global
    optimization").

    Deterministic given the seed. *)

open Fusecu_tensor
open Fusecu_loopnest

type params = {
  population : int;
  generations : int;
  mutation_rate : float;
  tournament : int;
  seed : int;
}

val default_params : params
(** population 48, generations 60, mutation 0.25, tournament 3,
    seed 42. *)

val search : ?params:params -> ?lattice:Space.lattice -> Matmul.t -> Buffer.t
  -> Exhaustive.result option
(** Best schedule found by the GA ([explored] counts fitness
    evaluations); [None] when no feasible individual was ever seen
    (buffer below the unit-tiling footprint). [lattice] defaults to
    [Divisors]. *)
