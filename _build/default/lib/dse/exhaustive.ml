open Fusecu_loopnest
open Fusecu_core

type result = { schedule : Schedule.t; cost : Cost.t; explored : int }

let fold_space ?(lattice = Space.Divisors) op buf f init =
  List.fold_left
    (fun acc s -> f acc s (Cost.eval op s))
    init
    (Space.schedules lattice op buf)

let search ?lattice op buf =
  let best =
    fold_space ?lattice op buf
      (fun (best, n) schedule cost ->
        let n = n + 1 in
        match best with
        | Some (_, (bc : Cost.t)) when bc.total <= cost.Cost.total -> (best, n)
        | _ -> (Some (schedule, cost), n))
      (None, 0)
  in
  match best with
  | Some (schedule, cost), explored -> Some { schedule; cost; explored }
  | None, _ -> None

let best_per_class ?lattice op buf =
  let table = Hashtbl.create 3 in
  let explored = ref 0 in
  fold_space ?lattice op buf
    (fun () schedule cost ->
      incr explored;
      let cls = Nra.class_of (Nra.classify op schedule) in
      match Hashtbl.find_opt table cls with
      | Some (_, (bc : Cost.t)) when bc.total <= cost.Cost.total -> ()
      | _ -> Hashtbl.replace table cls (schedule, cost))
    ();
  List.filter_map
    (fun cls ->
      Option.map
        (fun (schedule, cost) -> (cls, { schedule; cost; explored = !explored }))
        (Hashtbl.find_opt table cls))
    Nra.all
