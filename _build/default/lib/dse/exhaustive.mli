(** Exhaustive intra-operator design-space exploration. Ground truth for
    validating the principles: on spaces small enough to enumerate, the
    principle-built schedule must match the searched optimum. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

type result = {
  schedule : Schedule.t;
  cost : Cost.t;
  explored : int;  (** schedules evaluated *)
}

val search : ?lattice:Space.lattice -> Matmul.t -> Buffer.t -> result option
(** Best (minimum-traffic) schedule in the space; [None] when nothing
    fits the buffer. [lattice] defaults to [Divisors]. *)

val best_per_class : ?lattice:Space.lattice -> Matmul.t -> Buffer.t
  -> (Nra.t * result) list
(** Best schedule within each NRA class present in the space — used to
    verify the buffer-regime table of Sec. III-A4. *)
