(** Design-space definition for the search-based baseline optimizer (the
    DAT [15] stand-in): which tile sizes and loop orders a search may
    visit. *)

open Fusecu_tensor
open Fusecu_loopnest

type lattice =
  | All  (** every integer tile size in [\[1, dim\]] — exact but only
             tractable for small operators *)
  | Divisors  (** divisors of the dimension *)
  | Pow2  (** powers of two plus the full dimension *)

val tile_candidates : lattice -> int -> int list
(** Candidate tile sizes for a dimension of the given size, increasing,
    always containing 1 and the dimension itself. *)

val tilings : lattice -> Matmul.t -> Buffer.t -> Tiling.t list
(** Every candidate tiling whose footprint fits the buffer. *)

val schedules : lattice -> Matmul.t -> Buffer.t -> Schedule.t list
(** The full search space: feasible tilings x all six loop orders. *)

val size : lattice -> Matmul.t -> Buffer.t -> int
(** Number of schedules {!schedules} would enumerate. *)
