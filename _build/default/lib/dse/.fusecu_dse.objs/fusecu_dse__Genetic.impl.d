lib/dse/genetic.ml: Array Buffer Cost Exhaustive Fusecu_loopnest Fusecu_tensor Fusecu_util Matmul Option Order Random Schedule Space Tiling
