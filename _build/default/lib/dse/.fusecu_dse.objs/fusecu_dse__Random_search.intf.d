lib/dse/random_search.mli: Buffer Exhaustive Fusecu_loopnest Fusecu_tensor Matmul Space
