lib/dse/random_search.ml: Array Buffer Cost Exhaustive Fusecu_loopnest Fusecu_tensor Matmul Option Order Random Schedule Space Tiling
