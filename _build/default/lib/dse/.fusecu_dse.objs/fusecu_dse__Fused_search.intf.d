lib/dse/fused_search.mli: Buffer Fusecu_loopnest Fused Genetic Space
