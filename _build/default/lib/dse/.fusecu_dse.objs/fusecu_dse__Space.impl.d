lib/dse/space.ml: Arith Buffer Fusecu_loopnest Fusecu_tensor Fusecu_util List Matmul Order Schedule Tiling
