lib/dse/exhaustive.mli: Buffer Cost Fusecu_core Fusecu_loopnest Fusecu_tensor Matmul Nra Schedule Space
