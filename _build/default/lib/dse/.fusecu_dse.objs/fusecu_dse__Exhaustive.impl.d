lib/dse/exhaustive.ml: Cost Fusecu_core Fusecu_loopnest Hashtbl List Nra Option Schedule Space
