lib/dse/genetic.mli: Buffer Exhaustive Fusecu_loopnest Fusecu_tensor Matmul Space
