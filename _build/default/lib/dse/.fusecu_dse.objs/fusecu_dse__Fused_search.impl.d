lib/dse/fused_search.ml: Array Buffer Cost Dim Exhaustive Float Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Genetic List Operand Option Order Random Schedule Space Tiling
