lib/dse/annealing.ml: Array Buffer Cost Exhaustive Float Fusecu_loopnest Fusecu_tensor Fusecu_util Matmul Option Order Random Schedule Space Tiling
