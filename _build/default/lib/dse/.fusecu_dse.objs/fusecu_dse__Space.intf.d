lib/dse/space.mli: Buffer Fusecu_loopnest Fusecu_tensor Matmul Schedule Tiling
