lib/dse/annealing.mli: Buffer Exhaustive Fusecu_loopnest Fusecu_tensor Matmul Space
