open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type lattice = All | Divisors | Pow2

let tile_candidates lattice size =
  match lattice with
  | All -> Arith.range 1 size
  | Divisors -> Arith.divisors size
  | Pow2 -> Arith.dedup_sorted (size :: Arith.pow2s_upto size)

let tilings lattice (op : Matmul.t) buf =
  let capacity = Buffer.elements buf in
  let ms = tile_candidates lattice op.m in
  let ks = tile_candidates lattice op.k in
  let ls = tile_candidates lattice op.l in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun k ->
          List.filter_map
            (fun l ->
              let t = Tiling.make op ~m ~k ~l in
              if Tiling.footprint t <= capacity then Some t else None)
            ls)
        ks)
    ms

let schedules lattice op buf =
  List.concat_map
    (fun t -> List.map (Schedule.make t) Order.all)
    (tilings lattice op buf)

let size lattice op buf = 6 * List.length (tilings lattice op buf)
