(** Simulated-annealing intra-operator optimizer — a second stochastic
    search baseline alongside {!Genetic}, representative of the
    annealing-based mappers in the DSE literature. Deterministic given
    the seed. *)

open Fusecu_tensor
open Fusecu_loopnest

type params = {
  iterations : int;
  initial_temperature : float;  (** in units of relative traffic *)
  cooling : float;  (** geometric factor per iteration, in (0, 1) *)
  seed : int;
}

val default_params : params
(** 4000 iterations, T0 = 0.5, cooling 0.9985, seed 42. *)

val search : ?params:params -> ?lattice:Space.lattice -> Matmul.t -> Buffer.t
  -> Exhaustive.result option
(** Best schedule found; [None] when no feasible schedule exists.
    [explored] counts cost evaluations. [lattice] defaults to
    [Divisors]. *)
