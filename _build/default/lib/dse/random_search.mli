(** Uniform random sampling over the schedule space — the weakest
    baseline in the DSE family, useful for quantifying how much
    structure the guided searches (and the principles) exploit.
    Deterministic given the seed. *)

open Fusecu_tensor
open Fusecu_loopnest

val search : ?samples:int -> ?seed:int -> ?lattice:Space.lattice -> Matmul.t
  -> Buffer.t -> Exhaustive.result option
(** Draw [samples] (default 2000) random schedules from the lattice,
    keep the best feasible one. [None] when no sampled schedule fits. *)
