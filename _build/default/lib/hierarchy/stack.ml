open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

type t = Level.t list

let make levels =
  match levels with
  | [] -> Error "hierarchy: no levels"
  | _ ->
    let rec check = function
      | (a : Level.t) :: (b :: _ as rest) ->
        if Buffer.elements b.buffer >= Buffer.elements a.buffer then
          Error
            (Printf.sprintf "hierarchy: level %s (%d) not smaller than %s (%d)"
               b.name
               (Buffer.elements b.buffer)
               a.name
               (Buffer.elements a.buffer))
        else check rest
      | [ _ ] | [] -> Ok levels
    in
    check levels

let make_exn levels =
  match make levels with Ok t -> t | Error e -> invalid_arg e

let levels t = t

let tpu_like ?(pe_dim = 128) ?(buffer_bytes = 512 * 1024) () =
  make_exn [ Level.on_chip ~bytes:buffer_bytes (); Level.registers ~pe_dim () ]

type plan = {
  op : Matmul.t;
  per_level : (Level.t * Intra.plan) list;
  interface_traffic : (Level.t * int) list;
  energy_pj : float;
}

let sub_operator (outer : Matmul.t) (tiling : Tiling.t) =
  Matmul.make
    ~name:(outer.name ^ ".tile")
    ~m:(Tiling.get tiling Dim.M)
    ~k:(Tiling.get tiling Dim.K)
    ~l:(Tiling.get tiling Dim.L) ()

let optimize ?(mode = Mode.Exact) t op =
  let rec walk current_op outer_iterations acc = function
    | [] -> Ok (List.rev acc)
    | (level : Level.t) :: rest -> (
      match Intra.optimize ~mode current_op level.buffer with
      | Error e -> Error (Printf.sprintf "%s: %s" level.name e)
      | Ok plan ->
        let traffic = outer_iterations * Intra.ma plan in
        let next_op = sub_operator current_op plan.schedule.tiling in
        let next_iterations =
          outer_iterations * Schedule.total_tile_iterations current_op plan.schedule
        in
        walk next_op next_iterations ((level, plan, traffic) :: acc) rest)
  in
  match walk op 1 [] (levels t) with
  | Error e -> Error e
  | Ok results ->
    let per_level = List.map (fun (l, p, _) -> (l, p)) results in
    let interface_traffic = List.map (fun (l, _, traffic) -> (l, traffic)) results in
    let energy_pj =
      List.fold_left
        (fun acc ((l : Level.t), traffic) ->
          acc +. (float_of_int traffic *. l.energy_pj_per_element))
        0. interface_traffic
    in
    Ok { op; per_level; interface_traffic; energy_pj }

let top_traffic plan =
  match plan.interface_traffic with
  | (_, traffic) :: _ -> traffic
  | [] -> 0

let pp_plan fmt plan =
  Format.fprintf fmt "@[<v>multi-level plan for %a:@ " Matmul.pp plan.op;
  List.iter2
    (fun ((level : Level.t), (p : Intra.plan)) (_, traffic) ->
      Format.fprintf fmt "%-10s %a -> %s across its interface@ " level.name
        Schedule.pp p.schedule
        (Fusecu_util.Units.pp_count traffic))
    plan.per_level plan.interface_traffic;
  Format.fprintf fmt "energy %.2f nJ@]" (plan.energy_pj /. 1e3)
