type t = {
  name : string;
  buffer : Fusecu_loopnest.Buffer.t;
  energy_pj_per_element : float;
}

let make ?(energy_pj_per_element = 1.0) ~name buffer =
  if energy_pj_per_element < 0. then
    invalid_arg "Level.make: energy must be non-negative";
  { name; buffer; energy_pj_per_element }

let registers ?(pe_dim = 128) () =
  make ~name:"registers" ~energy_pj_per_element:1.0
    (Fusecu_loopnest.Buffer.make (pe_dim * pe_dim))

let on_chip ?(bytes = 512 * 1024) () =
  make ~name:"buffer" ~energy_pj_per_element:6.0
    (Fusecu_loopnest.Buffer.make bytes)

let pp fmt t =
  Format.fprintf fmt "%s (%a, %.1f pJ/elt)" t.name Fusecu_loopnest.Buffer.pp
    t.buffer t.energy_pj_per_element
