(** A memory hierarchy and multi-level dataflows over it.

    A multi-level dataflow assigns each level a schedule for the
    sub-operator it sees: level 1 tiles the full operator against its
    capacity; level 2 tiles {e one level-1 tile} against its own
    capacity; and so on. Traffic across level [i]'s upper interface is
    the cost of level [i]'s schedule on its sub-operator, replayed once
    per tile iteration of every outer level (the standard conservative
    assumption: no reuse survives an outer tile change).

    The principle-based optimizer applies {!Fusecu_core.Intra} at each
    level in turn — the paper's own move when it re-derives the 2N bound
    by setting BS = N^2 at the register level. *)

open Fusecu_tensor
open Fusecu_core

type t = private Level.t list
(** Outermost level first; non-empty; capacities must shrink strictly
    inward. *)

val make : Level.t list -> (t, string) result

val make_exn : Level.t list -> t

val levels : t -> Level.t list

val tpu_like : ?pe_dim:int -> ?buffer_bytes:int -> unit -> t
(** The paper's two-level stack: on-chip buffer over the PE register
    file. *)

(** A fully-planned multi-level dataflow. *)
type plan = {
  op : Matmul.t;
  per_level : (Level.t * Intra.plan) list;
      (** each level's plan over the sub-operator it sees *)
  interface_traffic : (Level.t * int) list;
      (** elements crossing each level's upper interface *)
  energy_pj : float;  (** sum of traffic x per-level energy *)
}

val optimize : ?mode:Mode.t -> t -> Matmul.t -> (plan, string) result
(** Apply the principles level by level. Fails when some level cannot
    fit even a unit tile of its sub-operator. *)

val top_traffic : plan -> int
(** Traffic across the outermost interface (e.g. DRAM) — what the
    single-level model reports. *)

val pp_plan : Format.formatter -> plan -> unit
