lib/hierarchy/level.ml: Format Fusecu_loopnest
