lib/hierarchy/stack.ml: Buffer Dim Format Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_util Intra Level List Matmul Mode Printf Schedule Tiling
