lib/hierarchy/stack.mli: Format Fusecu_core Fusecu_tensor Intra Level Matmul Mode
