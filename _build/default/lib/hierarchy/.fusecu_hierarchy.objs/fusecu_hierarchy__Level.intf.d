lib/hierarchy/level.mli: Format Fusecu_loopnest
