(** One level of an accelerator's memory hierarchy.

    The paper applies its principles at two levels — the on-chip buffer
    (Sec. III) and the PE register file (Sec. IV-B, where BS = N^2 and
    the 2N untiled-dimension bound falls out). This library generalizes
    to any stack of levels, MAESTRO/Timeloop style. Levels are listed
    from the {e outermost} storage inwards; each level's capacity holds
    the tiles that the next-inner level streams from. *)

type t = {
  name : string;
  buffer : Fusecu_loopnest.Buffer.t;
  energy_pj_per_element : float;
      (** cost of moving one element across this level's upper interface
          (from the enclosing storage into this level) *)
}

val make : ?energy_pj_per_element:float -> name:string -> Fusecu_loopnest.Buffer.t
  -> t
(** [energy_pj_per_element] defaults to 1.0 (relative units). *)

val registers : ?pe_dim:int -> unit -> t
(** The PE register level: [N^2] one-byte elements (default N = 128),
    cheap accesses. *)

val on_chip : ?bytes:int -> unit -> t
(** A default on-chip buffer level (512 KB). *)

val pp : Format.formatter -> t -> unit
