(** Requantization of accumulator values back to the int8 activation
    domain.

    Fig. 6 of the paper shows a mux on the XS PE's activation output
    "allowing for selection between the input activation and the
    quantized result": when a fused consumer reads the producer's
    32-bit accumulations as activations, they first pass through this
    requantize step. The standard inference scheme is a fixed-point
    multiply by a scale, a rounding right-shift, and saturation to the
    int8 range. *)

type t = private { multiplier : int; shift : int }
(** Fixed-point scale [multiplier / 2^shift] with
    [0 <= multiplier < 2^15] and [0 <= shift <= 31]. *)

val make : multiplier:int -> shift:int -> t

val identity : t
(** multiplier 1, shift 0 — pass-through (used by tests and by
    unquantized datapaths). *)

val of_scale : float -> t
(** Closest fixed-point representation of a real scale in (0, 1];
    raises [Invalid_argument] outside that range. *)

val apply : t -> int -> int
(** Scale, round to nearest (ties away from zero), saturate to
    [\[-128, 127\]]. *)

val apply_matrix : t -> Matrix.t -> Matrix.t

val effective_scale : t -> float
(** [multiplier / 2^shift]. *)
