type t = {
  table : int array;  (** exp(-x) in Q15, indexed by quantized x *)
  table_bits : int;
  input_scale : float;
  range : float;  (** clamp width of the (non-positive) exponent inputs *)
}

let create ?(table_bits = 8) ?(input_scale = 1. /. 16.) () =
  if table_bits < 2 || table_bits > 16 then
    invalid_arg "Softmax_unit.create: table_bits out of range";
  if input_scale <= 0. then invalid_arg "Softmax_unit.create: bad input scale";
  (* below -range the exponential is numerically zero in Q15 *)
  let range = 11.1 in
  let entries = 1 lsl table_bits in
  let table =
    Array.init entries (fun i ->
        let x = float_of_int i /. float_of_int (entries - 1) *. range in
        int_of_float (Float.round (exp (-.x) *. 32768.)))
  in
  { table; table_bits; input_scale; range }

let lookup t x =
  (* x is a non-negative real exponent magnitude *)
  let clamped = Float.min x t.range in
  let entries = (1 lsl t.table_bits) - 1 in
  let index =
    int_of_float (Float.round (clamped /. t.range *. float_of_int entries))
  in
  t.table.(index)

let apply_row t row =
  let n = Array.length row in
  if n = 0 then [||]
  else begin
    let maximum = Array.fold_left max row.(0) row in
    let weights =
      Array.map
        (fun v -> lookup t (float_of_int (maximum - v) *. t.input_scale))
        row
    in
    let total = Array.fold_left ( + ) 0 weights in
    Array.map
      (fun w ->
        if total = 0 then 0
        else
          Fusecu_util.Arith.clamp ~lo:0 ~hi:127 (((w * 127) + (total / 2)) / total))
      weights
  end

let apply t m =
  let rows = Matrix.rows m in
  let out = Array.init rows (fun i -> apply_row t m.(i)) in
  Matrix.make ~rows ~cols:(Matrix.cols m) (fun i j -> out.(i).(j))

let reference_row t row =
  let scaled = Array.map (fun v -> float_of_int v *. t.input_scale) row in
  let maximum = Array.fold_left Float.max neg_infinity scaled in
  let exps = Array.map (fun v -> exp (v -. maximum)) scaled in
  let total = Array.fold_left ( +. ) 0. exps in
  Array.map (fun e -> e /. total) exps

let max_row_error t row =
  let hw = apply_row t row in
  let reference = reference_row t row in
  let err = ref 0 in
  Array.iteri
    (fun i p ->
      let expected = int_of_float (Float.round (p *. 127.)) in
      err := max !err (abs (hw.(i) - expected)))
    reference;
  !err
