(** Cycle-accurate systolic-array engine over a grid of {!Xs_pe}s.

    Two execution modes cover the three stationaries of the XS PE:

    - {b OS} ({!run_os}): the result tile accumulates in place.
      [A (m x k)] streams from the left (row [i] skewed by [i] cycles),
      [B (k x l)] from the top (column [j] skewed by [j]); after
      [k + m + l - 2] cycles [acc(i,j) = C(i,j)].
    - {b stationary-stream} ({!run_stream}): a matrix [S (m x q)] held
      in the PEs (preloaded, or {e promoted} from the accumulators —
      the tile-fusion trick) is multiplied by a streamed [D (q x n)]:
      column [t] of the product exits the right edge after
      [t + m + cols - 1] cycles. Partial sums travel along rows, the
      stream travels down columns, both skewed by one hop per PE —
      input-stationary dataflow. Weight-stationary is the same engine
      with operands transposed ({!run_ws}), exactly the paper's "swap
      activations and weights".

    All results are bit-exact against {!Matrix.mul}; cycle counts follow
    the closed forms above and are asserted in tests. *)

type t

val create : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

val clear : t -> unit

val run_os : t -> a:Matrix.t -> b:Matrix.t -> int
(** Stream an OS matmul; the product is left in the accumulators
    (read it with {!read_acc}). Returns the cycle count.
    Requires [rows a <= rows t] and [cols b <= cols t]. *)

val read_acc : t -> rows:int -> cols:int -> Matrix.t

val preload : t -> Matrix.t -> unit
(** Latch a stationary matrix into the top-left corner of the grid
    (remaining PEs hold 0). *)

val promote : t -> unit
(** Accumulators become the stationary values (all PEs); accumulators
    clear. *)

val run_stream : t -> m:int -> d:Matrix.t -> Matrix.t * int
(** Multiply the currently-held stationary matrix (logically [m x q],
    [q = rows d]) by [d]; returns the [m x n] product and the cycle
    count. *)

val run_is : t -> s:Matrix.t -> d:Matrix.t -> Matrix.t * int
(** Input-stationary product [s x d] (preload + stream). *)

val run_ws : t -> a:Matrix.t -> b:Matrix.t -> Matrix.t * int
(** Weight-stationary product [a x b] (holds [b], streams [a]). *)

val os_cycles : m:int -> k:int -> l:int -> int
(** Closed-form cycle count of {!run_os}. *)

val stream_cycles : t -> m:int -> n:int -> int
(** Closed-form cycle count of {!run_stream}. *)
