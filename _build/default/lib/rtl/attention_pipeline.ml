type t = { output : Matrix.t; cycles : int; max_abs_error : int }

(* real value of one score-accumulator unit: int8 x int8 products over
   dh terms; scaling by 1/(16*dh) keeps random int8 data inside the exp
   table's useful range (the usual 1/sqrt(dh) temperature absorbed) *)
let score_scale ~dh = 1. /. (16. *. float_of_int dh)

let float_attention ~unit ~q ~v scores =
  let seq = Matrix.rows q and dh = Matrix.cols v in
  let out = Matrix.zeros ~rows:seq ~cols:dh in
  for i = 0 to seq - 1 do
    let probs = Softmax_unit.reference_row unit scores.(i) in
    for j = 0 to dh - 1 do
      let acc = ref 0. in
      Array.iteri
        (fun l p -> acc := !acc +. (p *. float_of_int (Matrix.get v l j)))
        probs;
      out.(i).(j) <- int_of_float (Float.round !acc)
    done
  done;
  out

let reference ~q ~k ~v =
  let dh = Matrix.cols q in
  let unit = Softmax_unit.create ~input_scale:(score_scale ~dh) () in
  float_attention ~unit ~q ~v (Matrix.mul q (Matrix.transpose k))

let run ?(n = 32) ~q ~k ~v () =
  let seq = Matrix.rows q and dh = Matrix.cols q in
  if Matrix.rows k <> seq || Matrix.cols k <> dh then
    Error "attention: K must match Q's shape"
  else if Matrix.rows v <> seq || Matrix.cols v <> dh then
    Error "attention: V must match Q's shape"
  else if seq > n then
    Error (Printf.sprintf "attention: seq %d exceeds the %dx%d compute unit" seq n n)
  else begin
    let unit = Softmax_unit.create ~input_scale:(score_scale ~dh) () in
    let array = Systolic.create ~rows:n ~cols:n in
    (* phase 1: scores = Q x K^T, output stationary *)
    let c1 = Systolic.run_os array ~a:q ~b:(Matrix.transpose k) in
    let scores = Systolic.read_acc array ~rows:seq ~cols:seq in
    (* phase 2: the softmax unit streams the score rows (one row per
       cycle once full); probabilities come back as int8 codes *)
    let probs = Softmax_unit.apply unit scores in
    let softmax_cycles = seq in
    (* phase 3: output = probs x V, output stationary again; the
       int8-coded probabilities put the result in units of 1/127 *)
    Systolic.clear array;
    let c2 = Systolic.run_os array ~a:probs ~b:v in
    let raw = Systolic.read_acc array ~rows:seq ~cols:dh in
    let output = Requant.apply_matrix (Requant.of_scale (1. /. 127.)) raw in
    (* accuracy against the rounded floating-point reference *)
    let expected = float_attention ~unit ~q ~v scores in
    let max_abs_error = ref 0 in
    for i = 0 to seq - 1 do
      for j = 0 to dh - 1 do
        max_abs_error :=
          max !max_abs_error
            (abs (Matrix.get output i j - Matrix.get expected i j))
      done
    done;
    Ok
      { output;
        cycles = c1 + softmax_cycles + 1 + c2;
        max_abs_error = !max_abs_error }
  end
