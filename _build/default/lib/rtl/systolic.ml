type t = { nrows : int; ncols : int; grid : Xs_pe.t array array }

let create ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Systolic.create: dims must be >= 1";
  { nrows = rows; ncols = cols;
    grid = Array.init rows (fun _ -> Array.init cols (fun _ -> Xs_pe.create ())) }

let rows t = t.nrows

let cols t = t.ncols

let iter_pes t f =
  for i = 0 to t.nrows - 1 do
    for j = 0 to t.ncols - 1 do
      f i j t.grid.(i).(j)
    done
  done

let clear t = iter_pes t (fun _ _ pe -> Xs_pe.clear pe)

let set_mode t mode = iter_pes t (fun _ _ pe -> Xs_pe.set_mode pe mode)

let os_cycles ~m ~k ~l = k + m + l - 2

let run_os t ~a ~b =
  let m = Matrix.rows a and k = Matrix.cols a in
  let l = Matrix.cols b in
  if Matrix.rows b <> k then invalid_arg "Systolic.run_os: dimension mismatch";
  if m > t.nrows || l > t.ncols then invalid_arg "Systolic.run_os: tile too large";
  set_mode t Xs_pe.Os;
  iter_pes t (fun _ _ pe ->
      Xs_pe.load_stationary pe 0;
      Xs_pe.set_mode pe Xs_pe.Os);
  (* a_wave.(i).(j) / b_wave.(i).(j): stream values present at PE (i,j)
     this cycle; they shift one hop per cycle. *)
  let a_wave = Array.make_matrix t.nrows t.ncols 0 in
  let b_wave = Array.make_matrix t.nrows t.ncols 0 in
  let cycles = os_cycles ~m ~k ~l in
  for c = 0 to cycles - 1 do
    (* shift right / down (reverse order so values move one hop) *)
    for i = t.nrows - 1 downto 0 do
      for j = t.ncols - 1 downto 0 do
        a_wave.(i).(j) <- (if j = 0 then 0 else a_wave.(i).(j - 1));
        b_wave.(i).(j) <- (if i = 0 then 0 else b_wave.(i - 1).(j))
      done
    done;
    (* inject skewed streams at the edges *)
    for i = 0 to t.nrows - 1 do
      let kk = c - i in
      a_wave.(i).(0) <- (if i < m && kk >= 0 && kk < k then Matrix.get a i kk else 0)
    done;
    for j = 0 to t.ncols - 1 do
      let kk = c - j in
      b_wave.(0).(j) <- (if j < l && kk >= 0 && kk < k then Matrix.get b kk j else 0)
    done;
    iter_pes t (fun i j pe ->
        ignore
          (Xs_pe.step pe
             { Xs_pe.a_in = a_wave.(i).(j); b_in = b_wave.(i).(j); ps_in = 0 }
            : Xs_pe.out))
  done;
  cycles

let read_acc t ~rows ~cols =
  if rows > t.nrows || cols > t.ncols then
    invalid_arg "Systolic.read_acc: larger than grid";
  Matrix.make ~rows ~cols (fun i j -> Xs_pe.acc t.grid.(i).(j))

let preload t s =
  if Matrix.rows s > t.nrows || Matrix.cols s > t.ncols then
    invalid_arg "Systolic.preload: matrix larger than grid";
  iter_pes t (fun i j pe ->
      let v =
        if i < Matrix.rows s && j < Matrix.cols s then Matrix.get s i j else 0
      in
      Xs_pe.load_stationary pe v)

let promote t = iter_pes t (fun _ _ pe -> Xs_pe.promote_acc pe)

let stream_cycles t ~m ~n = n + m + t.ncols - 2

let run_stream t ~m ~d =
  let q = Matrix.rows d and n = Matrix.cols d in
  if q > t.ncols then invalid_arg "Systolic.run_stream: reduction dim too large";
  if m > t.nrows then invalid_arg "Systolic.run_stream: too many rows";
  set_mode t Xs_pe.Stationary;
  let e = Matrix.zeros ~rows:m ~cols:n in
  let b_wave = Array.make_matrix t.nrows t.ncols 0 in
  let ps_wave = Array.make_matrix t.nrows t.ncols 0 in
  (* ps_valid tracks which output column a partial sum belongs to. *)
  let ps_col = Array.make_matrix t.nrows t.ncols (-1) in
  let cycles = stream_cycles t ~m ~n in
  for c = 0 to cycles - 1 do
    (* shift: the stream moves down, partial sums move right *)
    for i = t.nrows - 1 downto 0 do
      for j = t.ncols - 1 downto 0 do
        b_wave.(i).(j) <- (if i = 0 then 0 else b_wave.(i - 1).(j));
        ps_wave.(i).(j) <- (if j = 0 then 0 else ps_wave.(i).(j - 1));
        ps_col.(i).(j) <- (if j = 0 then -1 else ps_col.(i).(j - 1))
      done
    done;
    (* inject stream column values: D(j, t) enters column j at cycle t+j *)
    for j = 0 to t.ncols - 1 do
      let tcol = c - j in
      b_wave.(0).(j) <-
        (if j < q && tcol >= 0 && tcol < n then Matrix.get d j tcol else 0)
    done;
    (* start a fresh partial sum for output column (c - i) in row i *)
    for i = 0 to t.nrows - 1 do
      let tcol = c - i in
      ps_wave.(i).(0) <- 0;
      ps_col.(i).(0) <- (if i < m && tcol >= 0 && tcol < n then tcol else -1)
    done;
    (* compute: ps_out = ps_in + held * b_in, in place *)
    iter_pes t (fun i j pe ->
        let out =
          Xs_pe.step pe
            { Xs_pe.a_in = 0; b_in = b_wave.(i).(j); ps_in = ps_wave.(i).(j) }
        in
        ps_wave.(i).(j) <- out.Xs_pe.ps_out);
    (* collect finished partial sums at the right edge *)
    for i = 0 to t.nrows - 1 do
      let tcol = ps_col.(i).(t.ncols - 1) in
      if tcol >= 0 then e.(i).(tcol) <- ps_wave.(i).(t.ncols - 1)
    done
  done;
  (e, cycles)

let run_is t ~s ~d =
  preload t s;
  run_stream t ~m:(Matrix.rows s) ~d

let run_ws t ~a ~b =
  (* Hold the weights, stream the activations: C = A x B computed as
     (B^T x A^T)^T on the same stationary-stream engine. *)
  let e_t, cycles = run_is t ~s:(Matrix.transpose b) ~d:(Matrix.transpose a) in
  (Matrix.transpose e_t, cycles)
