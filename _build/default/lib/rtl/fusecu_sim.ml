type config = Square | Narrow2 | Wide2 | Narrow4 | Wide4 | Big_square

let all_configs = [ Square; Narrow2; Wide2; Narrow4; Wide4; Big_square ]

let config_name = function
  | Square -> "square (1 CU)"
  | Narrow2 -> "narrow (2 CUs, 2NxN)"
  | Wide2 -> "wide (2 CUs, Nx2N)"
  | Narrow4 -> "narrow (4 CUs, 4NxN)"
  | Wide4 -> "wide (4 CUs, Nx4N)"
  | Big_square -> "square (4 CUs, 2Nx2N)"

type t = { n : int }

let create ?(n = 128) () =
  if n < 1 then invalid_arg "Fusecu_sim.create: n must be >= 1";
  { n }

let n t = t.n

let logical_shape t = function
  | Square -> (t.n, t.n)
  | Narrow2 -> (2 * t.n, t.n)
  | Wide2 -> (t.n, 2 * t.n)
  | Narrow4 -> (4 * t.n, t.n)
  | Wide4 -> (t.n, 4 * t.n)
  | Big_square -> (2 * t.n, 2 * t.n)

let cus_used = function
  | Square -> 1
  | Narrow2 | Wide2 -> 2
  | Narrow4 | Wide4 | Big_square -> 4

let fits ~rows ~cols (r, c) = rows <= r && cols <= c

let run_mm t config ~a ~b =
  let shape = logical_shape t config in
  let m = Matrix.rows a and l = Matrix.cols b in
  if not (fits ~rows:m ~cols:l shape) then
    Error
      (Printf.sprintf "output tile %dx%d exceeds %s" m l (config_name config))
  else begin
    let rows, cols = shape in
    let array = Systolic.create ~rows ~cols in
    let cycles = Systolic.run_os array ~a ~b in
    Ok (Systolic.read_acc array ~rows:m ~cols:l, cycles)
  end

let run_tile_fused t config ~a ~b ~d =
  let shape = logical_shape t config in
  let m = Matrix.rows a and lc = Matrix.cols b in
  if not (fits ~rows:m ~cols:lc shape) then
    Error
      (Printf.sprintf "intermediate tile %dx%d exceeds %s" m lc
         (config_name config))
  else if Matrix.rows d <> lc then Error "tile fusion: C/D dimension mismatch"
  else begin
    let rows, cols = shape in
    let array = Systolic.create ~rows ~cols in
    let c1 = Systolic.run_os array ~a ~b in
    Systolic.promote array;
    let e, c2 = Systolic.run_stream array ~m ~d in
    (* one cycle to flip the XS configuration between phases *)
    Ok (e, c1 + 1 + c2)
  end

let run_column_fused t config ~a ~b ~d =
  let half = logical_shape t config in
  let m = Matrix.rows a and k = Matrix.cols a in
  let l1 = Matrix.cols b and l2 = Matrix.cols d in
  if not (fits ~rows:m ~cols:k half) then
    Error
      (Printf.sprintf "producer tile %dx%d exceeds %s" m k (config_name config))
  else if not (fits ~rows:m ~cols:l2 half) then
    Error
      (Printf.sprintf "consumer tile %dx%d exceeds %s" m l2 (config_name config))
  else if Matrix.rows b <> k then Error "column fusion: A/B dimension mismatch"
  else if Matrix.rows d <> l1 then Error "column fusion: C/D dimension mismatch"
  else begin
    let rows, cols = half in
    let producer = Systolic.create ~rows ~cols in
    let consumer = Systolic.create ~rows ~cols in
    (* Producer: C columns emerge one per cycle once the pipeline is
       full; simulate the full stream, then replay the columns into the
       consumer as rank-1 updates (OS with reduction dim l1). *)
    let c_mat, _producer_cycles = Systolic.run_is producer ~s:a ~d:b in
    let consumer_cycles = Systolic.run_os consumer ~a:c_mat ~b:d in
    let e = Systolic.read_acc consumer ~rows:m ~cols:l2 in
    (* Pipelined latency: the consumer lags the producer by its fill
       depth (first column available after m + cols - 1 cycles). *)
    let producer_fill = m + cols - 1 in
    Ok (e, producer_fill + consumer_cycles)
  end
