(** Functional/cycle model of the FuseCU compute-unit cluster
    (paper Fig. 7): four N x N compute units whose edge muxes compose
    them into square, narrow (tall) and wide logical arrays, executing
    the two fused-dataflow mappings of Fig. 5.

    - {b Tile fusion}: one logical array runs [A x B = C]
      output-stationary, {e promotes} the accumulated [C] into the
      stationary registers (no extra storage — the XS PE trick), then
      runs [C x D = E] input-stationary.
    - {b Column fusion}: the cluster splits into a producer half
      (input-stationary, holds [A]) and a consumer half
      (output-stationary, accumulates [E]); each column of [C] produced
      by the first half streams directly into the second as a rank-1
      update. Columns pipeline: the consumer starts as soon as the first
      column arrives, so the total latency is the producer fill plus the
      consumer run.

    Every execution returns the exact product (validated against
    {!Matrix.mul} in tests) and a cycle count composed from the
    closed-form phase latencies of {!Systolic}. *)

(** Logical cluster configurations (Fig. 7(c)-(e)). *)
type config =
  | Square  (** one N x N CU (the others run other work) *)
  | Narrow2  (** two CUs stacked: 2N x N *)
  | Wide2  (** two CUs abreast: N x 2N *)
  | Narrow4  (** four CUs stacked: 4N x N *)
  | Wide4  (** four CUs abreast: N x 4N *)
  | Big_square  (** four CUs as 2N x 2N *)

val all_configs : config list

val config_name : config -> string

type t

val create : ?n:int -> unit -> t
(** A cluster of four [n x n] CUs ([n] defaults to 128; tests use small
    [n]). *)

val n : t -> int

val logical_shape : t -> config -> int * int
(** Rows and columns of the composed array. *)

val cus_used : config -> int

val run_mm : t -> config -> a:Matrix.t -> b:Matrix.t -> (Matrix.t * int, string) result
(** Plain (unfused) OS matmul on the composed array; [Error] when the
    output tile exceeds the logical shape. *)

val run_tile_fused : t -> config -> a:Matrix.t -> b:Matrix.t -> d:Matrix.t
  -> (Matrix.t * int, string) result
(** [(A x B) x D] with the intermediate promoted in place. The
    intermediate [(rows a) x (cols b)] must fit the logical shape, and
    [cols d] must fit its columns. *)

val run_column_fused : t -> config -> a:Matrix.t -> b:Matrix.t -> d:Matrix.t
  -> (Matrix.t * int, string) result
(** [(A x B) x D] with [A] resident in the producer half and [E]
    accumulating in the consumer half; [config] describes each half
    (e.g. [Wide2] = two CUs per half, using all four). *)
