(** Integer softmax unit.

    The paper's area breakdown lists a softmax unit alongside the PE
    array (so fused attention never leaves the chip between the score
    and context matmuls). This models the usual hardware scheme: the
    row maximum is subtracted (so exponents are non-positive), exp is a
    table lookup over negated fixed-point inputs, and the row is
    normalized into unsigned fixed-point probabilities that requantize
    to int8.

    Accuracy is bounded, not bit-perfect against floating point:
    {!max_row_error} on random int8 rows stays within a few units in
    the int8 output domain (asserted in tests). *)

type t

val create : ?table_bits:int -> ?input_scale:float -> unit -> t
(** [table_bits] sizes the exp lookup (default 8 -> 256 entries over
    the clamped input range); [input_scale] is the real value of one
    accumulator unit (default 1/16). *)

val apply_row : t -> int array -> int array
(** Softmax over one row of accumulator values, producing int8 codes of
    the probabilities scaled by 127 (so a one-hot row maps to ~127). *)

val apply : t -> Matrix.t -> Matrix.t
(** Row-wise application. *)

val reference_row : t -> int array -> float array
(** Floating-point softmax of the same (scaled) inputs, for accuracy
    comparison. *)

val max_row_error : t -> int array -> int
(** Largest absolute difference, in int8 output units, between
    {!apply_row} and the rounded reference on one row. *)
