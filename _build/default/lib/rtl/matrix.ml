type t = int array array

let make ~rows ~cols f =
  if rows < 1 || cols < 1 then invalid_arg "Matrix.make: dims must be >= 1";
  Array.init rows (fun i -> Array.init cols (fun j -> f i j))

let zeros ~rows ~cols = make ~rows ~cols (fun _ _ -> 0)

let rows (m : t) = Array.length m

let cols (m : t) = Array.length m.(0)

let get (m : t) i j = m.(i).(j)

let random ?(seed = 7) ~rows ~cols () =
  let rng = Random.State.make [| seed; rows; cols |] in
  make ~rows ~cols (fun _ _ -> Random.State.int rng 256 - 128)

let mul a b =
  if cols a <> rows b then invalid_arg "Matrix.mul: dimension mismatch";
  let k = cols a in
  make ~rows:(rows a) ~cols:(cols b) (fun i j ->
      let acc = ref 0 in
      for x = 0 to k - 1 do
        acc := !acc + (a.(i).(x) * b.(x).(j))
      done;
      !acc)

let equal (a : t) b =
  rows a = rows b && cols a = cols b
  && begin
       let ok = ref true in
       for i = 0 to rows a - 1 do
         for j = 0 to cols a - 1 do
           if a.(i).(j) <> b.(i).(j) then ok := false
         done
       done;
       !ok
     end

let transpose m = make ~rows:(cols m) ~cols:(rows m) (fun i j -> m.(j).(i))

let pp fmt m =
  Array.iter
    (fun row ->
      Array.iter (fun v -> Format.fprintf fmt "%6d " v) row;
      Format.pp_print_newline fmt ())
    m
