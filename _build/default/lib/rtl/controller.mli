(** Configuration controller for the FuseCU cluster.

    The hardware drives a fused execution as a sequence of
    micro-commands over the XS and FU configuration wires (paper
    Fig. 7): set the PE modes, load or promote stationary data, stream
    operands, flip the inter-CU connections. This module models that
    control plane as an explicit program of commands interpreted against
    a {!Systolic} array, so the fused executions of {!Fusecu_sim} can be
    expressed — and tested — as command sequences rather than ad-hoc
    function calls.

    Commands own their cycle costs: configuration flips take one cycle,
    data phases take the engine's cycle count. *)

type command =
  | Set_mode of Xs_pe.mode  (** drive the XS configuration wires *)
  | Preload of Matrix.t  (** load a stationary operand *)
  | Promote  (** accumulators become stationary (tile fusion) *)
  | Clear
  | Run_os of { a : Matrix.t; b : Matrix.t }
      (** stream an output-stationary matmul into the accumulators *)
  | Run_os_from_acc of { rows : int; cols : int; b : Matrix.t }
      (** read the accumulated tile back (the off-chip round trip of an
          unfused execution), clear, and stream it as the next matmul's
          left operand *)
  | Run_stream of { m : int; d : Matrix.t }
      (** stream against the held stationary matrix; the product is
          appended to the trace outputs *)
  | Read_acc of { rows : int; cols : int }
      (** copy the accumulated tile into the trace outputs *)

type trace = {
  commands_run : int;
  cycles : int;
  outputs : Matrix.t list;  (** results of [Run_stream] phases, in order *)
}

val execute : Systolic.t -> command list -> (trace, string) result
(** Interpret a program. Errors propagate from the engine (oversized
    tiles, dimension mismatches) with the failing command's index. *)

val tile_fused_program : a:Matrix.t -> b:Matrix.t -> d:Matrix.t -> command list
(** The canonical tile-fusion sequence: clear, OS phase, promote,
    reconfigure, stream phase. *)

val unfused_program : a:Matrix.t -> b:Matrix.t -> d:Matrix.t -> command list
(** The same chain without fusion: the intermediate makes a round trip
    through memory ([Run_os_from_acc]) instead of being promoted in
    place. *)
