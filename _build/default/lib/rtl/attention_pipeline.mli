(** End-to-end attention on the structural FuseCU model:
    [scores = Q x K^T], an on-chip integer softmax, and
    [output = probs x V], all without the intermediate score matrix
    leaving the cluster — the workload the paper's fused architecture
    exists for.

    The matmuls run on {!Systolic} engines, probabilities requantize to
    int8 activations, and the result is compared against a full
    floating-point attention reference: agreement is within a small
    integer tolerance set by the softmax table and requantization
    granularity (asserted in tests). *)

type t = {
  output : Matrix.t;  (** int8-domain attention output *)
  cycles : int;  (** matmul phases plus one softmax pass per row wave *)
  max_abs_error : int;
      (** worst deviation from the rounded floating-point reference *)
}

val run : ?n:int -> q:Matrix.t -> k:Matrix.t -> v:Matrix.t -> unit
  -> (t, string) result
(** [q : seq x dh], [k : seq x dh], [v : seq x dh]; the score tile
    [seq x seq] must fit one [n x n] compute unit (default n = 32). *)

val reference : q:Matrix.t -> k:Matrix.t -> v:Matrix.t -> Matrix.t
(** Floating-point attention, rounded to the same int8 output
    domain. *)
