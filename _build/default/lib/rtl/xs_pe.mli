(** The X-Stationary processing element (paper Fig. 6).

    A standard MAC PE extended with multiplexers so the same datapath
    runs output-stationary (accumulate into the local register),
    input-stationary (multiply the {e held} value by the streamed value,
    add the partial sum arriving from a neighbour) or weight-stationary
    (IS with operand roles swapped). A final mux selects whether the
    forwarded activation is the incoming stream or the held result,
    which is what lets column fusion feed one PE's output straight into
    the next compute unit.

    The PE is a pure state machine: [step] consumes the cycle's inputs
    and produces the outputs that neighbouring PEs latch for the next
    cycle — exactly the register-transfer behaviour of the Chisel
    design, minus bit widths. *)

type mode =
  | Os  (** accumulate [a*b] into the local accumulator *)
  | Stationary  (** IS/WS: output partial sum [ps_in + held*b_in] *)

type t

val create : unit -> t

val set_mode : t -> mode -> unit

val load_stationary : t -> int -> unit
(** Latch a value into the stationary register (IS/WS preload). *)

val promote_acc : t -> unit
(** Move the accumulator into the stationary register and clear it —
    the tile-fusion trick: the OS result of phase 1 becomes the IS
    operand of phase 2 with no extra storage. *)

val acc : t -> int

val stationary : t -> int

val clear : t -> unit

type io = {
  a_in : int;  (** horizontal stream input *)
  b_in : int;  (** vertical stream input *)
  ps_in : int;  (** partial-sum input (IS/WS mode) *)
}

type out = {
  a_out : int;  (** forwarded horizontal value (next cycle) *)
  b_out : int;  (** forwarded vertical value (next cycle) *)
  ps_out : int;  (** partial-sum output (IS/WS mode) *)
}

val step : t -> io -> out
(** One clock edge. In [Os] mode [ps_out = 0] and the accumulator
    gains [a_in * b_in]; in [Stationary] mode
    [ps_out = ps_in + stationary * b_in] and the accumulator is
    untouched. Streams are always forwarded one hop. *)
