type t = { multiplier : int; shift : int }

let make ~multiplier ~shift =
  if multiplier < 0 || multiplier >= 32768 then
    invalid_arg "Requant.make: multiplier out of range";
  if shift < 0 || shift > 31 then invalid_arg "Requant.make: shift out of range";
  { multiplier; shift }

let identity = { multiplier = 1; shift = 0 }

let of_scale scale =
  if scale <= 0. || scale > 1. then
    invalid_arg "Requant.of_scale: scale must be in (0, 1]";
  (* normalize the scale into [0.5, 1) x 2^-shift, then fix the
     mantissa at 15 bits *)
  let rec normalize scale shift =
    if shift >= 31 then (scale, 31)
    else if scale < 0.5 then normalize (scale *. 2.) (shift + 1)
    else (scale, shift)
  in
  let mantissa, extra = normalize scale 0 in
  let multiplier = int_of_float (Float.round (mantissa *. 16384.)) in
  make ~multiplier:(min multiplier 32767) ~shift:(extra + 14)

let apply t v =
  let scaled = v * t.multiplier in
  let half = if t.shift = 0 then 0 else 1 lsl (t.shift - 1) in
  let rounded =
    if scaled >= 0 then (scaled + half) asr t.shift
    else -((-scaled + half) asr t.shift)
  in
  Fusecu_util.Arith.clamp ~lo:(-128) ~hi:127 rounded

let apply_matrix t m =
  Matrix.make ~rows:(Matrix.rows m) ~cols:(Matrix.cols m) (fun i j ->
      apply t (Matrix.get m i j))

let effective_scale t = float_of_int t.multiplier /. float_of_int (1 lsl t.shift)
