type mode = Os | Stationary

type t = {
  mutable mode : mode;
  mutable held : int;
  mutable accumulator : int;
}

let create () = { mode = Os; held = 0; accumulator = 0 }

let set_mode t m = t.mode <- m

let load_stationary t v = t.held <- v

let promote_acc t =
  t.held <- t.accumulator;
  t.accumulator <- 0

let acc t = t.accumulator

let stationary t = t.held

let clear t =
  t.held <- 0;
  t.accumulator <- 0

type io = { a_in : int; b_in : int; ps_in : int }

type out = { a_out : int; b_out : int; ps_out : int }

let step t { a_in; b_in; ps_in } =
  match t.mode with
  | Os ->
    t.accumulator <- t.accumulator + (a_in * b_in);
    { a_out = a_in; b_out = b_in; ps_out = 0 }
  | Stationary -> { a_out = a_in; b_out = b_in; ps_out = ps_in + (t.held * b_in) }
