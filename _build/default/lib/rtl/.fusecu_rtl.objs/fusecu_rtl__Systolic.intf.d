lib/rtl/systolic.mli: Matrix
