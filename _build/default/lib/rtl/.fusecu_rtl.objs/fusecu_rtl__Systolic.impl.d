lib/rtl/systolic.ml: Array Matrix Xs_pe
