lib/rtl/controller.ml: List Matrix Printf Systolic Xs_pe
