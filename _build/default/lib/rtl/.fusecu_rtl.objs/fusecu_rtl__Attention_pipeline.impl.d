lib/rtl/attention_pipeline.ml: Array Float Matrix Printf Requant Softmax_unit Systolic
