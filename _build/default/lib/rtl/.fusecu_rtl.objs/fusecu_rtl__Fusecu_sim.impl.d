lib/rtl/fusecu_sim.ml: Matrix Printf Systolic
