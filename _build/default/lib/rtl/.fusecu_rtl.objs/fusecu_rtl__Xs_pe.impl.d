lib/rtl/xs_pe.ml:
