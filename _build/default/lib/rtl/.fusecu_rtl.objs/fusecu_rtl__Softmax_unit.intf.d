lib/rtl/softmax_unit.mli: Matrix
