lib/rtl/matrix.mli: Format
