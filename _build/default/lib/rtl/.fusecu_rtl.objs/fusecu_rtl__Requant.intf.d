lib/rtl/requant.mli: Matrix
