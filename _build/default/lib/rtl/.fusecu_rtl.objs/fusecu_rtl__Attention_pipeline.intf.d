lib/rtl/attention_pipeline.mli: Matrix
