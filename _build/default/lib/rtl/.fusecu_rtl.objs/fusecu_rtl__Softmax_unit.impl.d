lib/rtl/softmax_unit.ml: Array Float Fusecu_util Matrix
