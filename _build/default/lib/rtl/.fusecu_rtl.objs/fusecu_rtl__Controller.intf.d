lib/rtl/controller.mli: Matrix Systolic Xs_pe
