lib/rtl/matrix.ml: Array Format Random
