lib/rtl/requant.ml: Float Fusecu_util Matrix
