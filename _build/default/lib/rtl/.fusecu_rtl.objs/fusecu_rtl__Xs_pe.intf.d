lib/rtl/xs_pe.mli:
