lib/rtl/fusecu_sim.mli: Matrix
