(** Small integer matrices for the structural simulator and its
    reference results. Values are kept as native ints; tests drive the
    simulator with int8-range data, matching the accelerator datapath. *)

type t = int array array
(** Row-major, rectangular. *)

val make : rows:int -> cols:int -> (int -> int -> int) -> t

val zeros : rows:int -> cols:int -> t

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> int

val random : ?seed:int -> rows:int -> cols:int -> unit -> t
(** Entries uniform in [\[-128, 127\]] (int8 range), deterministic in
    [seed]. *)

val mul : t -> t -> t
(** Reference matrix product. Raises [Invalid_argument] on dimension
    mismatch. *)

val equal : t -> t -> bool

val transpose : t -> t

val pp : Format.formatter -> t -> unit
