type command =
  | Set_mode of Xs_pe.mode
  | Preload of Matrix.t
  | Promote
  | Clear
  | Run_os of { a : Matrix.t; b : Matrix.t }
  | Run_os_from_acc of { rows : int; cols : int; b : Matrix.t }
  | Run_stream of { m : int; d : Matrix.t }
  | Read_acc of { rows : int; cols : int }

type trace = { commands_run : int; cycles : int; outputs : Matrix.t list }

let execute array program =
  let step (trace, index) command =
    let config_flip = 1 in
    let continue ?output cycles =
      let outputs =
        match output with Some m -> m :: trace.outputs | None -> trace.outputs
      in
      Ok
        ({ commands_run = trace.commands_run + 1;
           cycles = trace.cycles + cycles;
           outputs },
         index + 1)
    in
    match command with
    | Set_mode _mode ->
      (* the XS wires switch every PE in one cycle; the per-PE mode is
         (re)driven by the next data phase *)
      continue config_flip
    | Preload m ->
      Systolic.preload array m;
      continue (Matrix.rows m)
    | Promote ->
      Systolic.promote array;
      continue config_flip
    | Clear ->
      Systolic.clear array;
      continue config_flip
    | Run_os { a; b } -> (
      match Systolic.run_os array ~a ~b with
      | cycles -> continue cycles
      | exception Invalid_argument e ->
        Error (Printf.sprintf "command %d: %s" index e))
    | Run_os_from_acc { rows; cols; b } -> (
      match Systolic.read_acc array ~rows ~cols with
      | exception Invalid_argument e ->
        Error (Printf.sprintf "command %d: %s" index e)
      | intermediate -> (
        Systolic.clear array;
        match Systolic.run_os array ~a:intermediate ~b with
        | cycles ->
          (* the round trip: drain the tile out and stream it back in *)
          continue (rows + cycles)
        | exception Invalid_argument e ->
          Error (Printf.sprintf "command %d: %s" index e)))
    | Run_stream { m; d } -> (
      match Systolic.run_stream array ~m ~d with
      | product, cycles -> continue ~output:product cycles
      | exception Invalid_argument e ->
        Error (Printf.sprintf "command %d: %s" index e))
    | Read_acc { rows; cols } -> (
      match Systolic.read_acc array ~rows ~cols with
      | tile -> continue ~output:tile rows
      | exception Invalid_argument e ->
        Error (Printf.sprintf "command %d: %s" index e))
  in
  let rec loop acc = function
    | [] ->
      let trace, _ = acc in
      Ok { trace with outputs = List.rev trace.outputs }
    | command :: rest -> (
      match step acc command with
      | Ok next -> loop next rest
      | Error e -> Error e)
  in
  loop ({ commands_run = 0; cycles = 0; outputs = [] }, 0) program

let tile_fused_program ~a ~b ~d =
  [ Clear;
    Set_mode Xs_pe.Os;
    Run_os { a; b };
    Promote;
    Set_mode Xs_pe.Stationary;
    Run_stream { m = Matrix.rows a; d } ]

let unfused_program ~a ~b ~d =
  [ Clear;
    Set_mode Xs_pe.Os;
    Run_os { a; b };
    Run_os_from_acc { rows = Matrix.rows a; cols = Matrix.cols b; b = d };
    Read_acc { rows = Matrix.rows a; cols = Matrix.cols d } ]
