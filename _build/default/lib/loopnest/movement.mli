(** Tile-movement description of a schedule — the textual equivalent of
    the paper's Fig. 2/3 arrows.

    For each operand, says whether its tile is stationary across the
    whole nest, re-fetched along exactly one loop, or re-fetched on
    (combinations of) its own index loops; and for each loop level,
    which operands' tiles advance when it steps. *)

open Fusecu_tensor

type operand_motion =
  | Stationary  (** fetched once, never replaced *)
  | Swept of Dim.t list
      (** replaced whenever one of these loops advances (innermost
          first) *)

val motion : Matmul.t -> Schedule.t -> Operand.t -> operand_motion
(** How an operand's tile moves under the schedule. Loops with a single
    trip never appear. *)

val describe : Matmul.t -> Schedule.t -> string
(** A multi-line rendering: the loop nest with trip counts, then one
    line per operand, e.g.
    {v C stationary in the buffer (1 fetch)
       A swept by L (32 fetches)        v} *)
