open Fusecu_tensor

type per_operand = { fetches : int; traffic : int; revisit : int }

type t = { a : per_operand; b : per_operand; c : per_operand; total : int }

let revisit op (s : Schedule.t) operand =
  let trips d = Schedule.trips op s d in
  let free = Operand.free_dim operand in
  if trips free = 1 then 1
  else begin
    let d1, d2 = Operand.dims operand in
    let effective_pos d = if trips d > 1 then Some (Order.position s.order d) else None in
    match (effective_pos d1, effective_pos d2) with
    | None, None -> 1
    | Some p, None | None, Some p ->
      if Order.position s.order free < p then trips free else 1
    | Some p1, Some p2 ->
      if Order.position s.order free < max p1 p2 then trips free else 1
  end

let eval_operand op s operand =
  let r = revisit op s operand in
  let d1, d2 = Operand.dims operand in
  let size = Matmul.dim op d1 * Matmul.dim op d2 in
  let fetches = r * Schedule.trips op s d1 * Schedule.trips op s d2 in
  { fetches; traffic = r * size; revisit = r }

let eval ?(partial_sum_penalty = false) op s =
  let a = eval_operand op s Operand.A in
  let b = eval_operand op s Operand.B in
  let c = eval_operand op s Operand.C in
  let c =
    if partial_sum_penalty && c.revisit > 1 then
      { c with traffic = Matmul.operand_size op Operand.C * ((2 * c.revisit) - 1) }
    else c
  in
  { a; b; c; total = a.traffic + b.traffic + c.traffic }

let operand t = function Operand.A -> t.a | Operand.B -> t.b | Operand.C -> t.c

let is_nra op s operand = revisit op s operand = 1

let nra_operands op s = List.filter (is_nra op s) Operand.all

let nra_count op s = List.length (nra_operands op s)

let pp fmt t =
  let pp_one fmt (name, (o : per_operand)) =
    Format.fprintf fmt "%s: %s (x%d)" name
      (Fusecu_util.Units.pp_count o.traffic)
      o.revisit
  in
  Format.fprintf fmt "@[MA %s [%a; %a; %a]@]"
    (Fusecu_util.Units.pp_count t.total)
    pp_one ("A", t.a) pp_one ("B", t.b) pp_one ("C", t.c)
