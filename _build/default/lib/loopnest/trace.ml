open Fusecu_tensor

type event =
  | Fetch of { operand : Operand.t; tile : int * int }
  | Compute of { m : int; k : int; l : int }

let events op (s : Schedule.t) =
  let resident = Hashtbl.create 3 in
  let acc = ref [] in
  let dims = Order.dims s.order in
  let trips d = Schedule.trips op s d in
  (match List.map (fun d -> (d, trips d)) dims with
  | [ (d1, n1); (d2, n2); (_d3, n3) ] ->
    for i1 = 0 to n1 - 1 do
      for i2 = 0 to n2 - 1 do
        for i3 = 0 to n3 - 1 do
          let coord d =
            if Dim.equal d d1 then i1 else if Dim.equal d d2 then i2 else i3
          in
          List.iter
            (fun operand ->
              let da, db = Operand.dims operand in
              let tile = (coord da, coord db) in
              if Hashtbl.find_opt resident operand <> Some tile then begin
                Hashtbl.replace resident operand tile;
                acc := Fetch { operand; tile } :: !acc
              end)
            Operand.all;
          acc := Compute { m = coord Dim.M; k = coord Dim.K; l = coord Dim.L } :: !acc
        done
      done
    done
  | _ -> assert false);
  List.rev !acc

let fetch_count events operand =
  List.length
    (List.filter
       (function
         | Fetch { operand = x; _ } -> Operand.equal x operand
         | Compute _ -> false)
       events)

let tile_extent op (s : Schedule.t) d idx =
  let tile = Tiling.get s.tiling d in
  min tile (Matmul.dim op d - (idx * tile))

let traffic op s events =
  List.fold_left
    (fun acc -> function
      | Compute _ -> acc
      | Fetch { operand; tile = (ia, ib) } ->
        let da, db = Operand.dims operand in
        acc + (tile_extent op s da ia * tile_extent op s db ib))
    0 events

let render ?(max_events = 64) op s =
  let all = events op s in
  let buffer = Stdlib.Buffer.create 256 in
  let emit = function
    | Fetch { operand; tile = (a, b) } ->
      Printf.bprintf buffer "fetch %s[%d,%d]\n" (Operand.to_string operand) a b
    | Compute { m; k; l } -> Printf.bprintf buffer "compute (%d,%d,%d)\n" m k l
  in
  let rec take n = function
    | [] -> ()
    | _ when n = 0 ->
      Printf.bprintf buffer "... %d more events\n" (List.length all - max_events)
    | e :: rest ->
      emit e;
      take (n - 1) rest
  in
  take max_events all;
  Printf.bprintf buffer "total: %d fetches, %s elements\n"
    (List.length all - List.length (List.filter (function Compute _ -> true | Fetch _ -> false) all))
    (Fusecu_util.Units.pp_count (traffic op s all));
  Stdlib.Buffer.contents buffer
