(** Mechanical tile-level simulator: walks the flattened tile loop nest,
    keeping one resident tile per operand and counting actual fetch
    events and element traffic (with exact ragged-edge tile extents).

    This is the ground truth the closed-form model in {!Cost} is
    validated against in the test suite. Run time is proportional to the
    number of tile iterations, so use it on small operators only. *)

open Fusecu_tensor

val eval : Matmul.t -> Schedule.t -> Cost.t
(** Simulate the schedule and report the same structure as {!Cost.eval}
    (symmetric accounting; [revisit] is reported as the maximum number of
    times any single tile region of the operand was fetched). *)

val macs : Matmul.t -> Schedule.t -> int
(** Total multiply-accumulates executed by the simulated nest; always
    equals [Matmul.macs] — a sanity invariant used in tests. *)
