open Fusecu_tensor

type pair = { op1 : Matmul.t; op2 : Matmul.t }

let make_pair (op1 : Matmul.t) (op2 : Matmul.t) =
  if op2.m <> op1.m then
    Error (Printf.sprintf "fused pair: op2.M = %d <> op1.M = %d" op2.m op1.m)
  else if op2.k <> op1.l then
    Error (Printf.sprintf "fused pair: op2.K = %d <> op1.L = %d" op2.k op1.l)
  else Ok { op1; op2 }

let make_pair_exn op1 op2 =
  match make_pair op1 op2 with Ok p -> p | Error e -> invalid_arg e

type t = { producer : Schedule.t; consumer : Schedule.t }

type invalid =
  | Intermediate_redundant of [ `Producer | `Consumer ]
  | Tile_mismatch
  | Order_mismatch

let pp_invalid fmt = function
  | Intermediate_redundant `Producer ->
    Format.pp_print_string fmt "intermediate tensor refetched by producer"
  | Intermediate_redundant `Consumer ->
    Format.pp_print_string fmt "intermediate tensor refetched by consumer"
  | Tile_mismatch ->
    Format.pp_print_string fmt "intermediate tile sizes differ between operators"
  | Order_mismatch ->
    Format.pp_print_string fmt "intermediate production and consumption orders differ"

(* C is fully resident on a side when both of its dims are untiled there. *)
let c_resident_producer pair (s : Schedule.t) =
  Tiling.untiled pair.op1 s.tiling Dim.M && Tiling.untiled pair.op1 s.tiling Dim.L

let c_resident_consumer pair (s : Schedule.t) =
  Tiling.untiled pair.op2 s.tiling Dim.M && Tiling.untiled pair.op2 s.tiling Dim.K

let validate pair t =
  let p = t.producer and c = t.consumer in
  if not (Cost.is_nra pair.op1 p Operand.C) then
    Error (Intermediate_redundant `Producer)
  else if not (Cost.is_nra pair.op2 c Operand.A) then
    Error (Intermediate_redundant `Consumer)
  else if
    Tiling.get p.tiling Dim.M <> Tiling.get c.tiling Dim.M
    || Tiling.get p.tiling Dim.L <> Tiling.get c.tiling Dim.K
  then Error Tile_mismatch
  else if c_resident_producer pair p && c_resident_consumer pair c then Ok ()
  else begin
    (* The stream of C tiles leaves op1 in (M, L)-loop order and must
       enter op2 in the identical (M, K)-loop order. *)
    let m_major_producer =
      Order.position p.order Dim.M < Order.position p.order Dim.L
    in
    let m_major_consumer =
      Order.position c.order Dim.M < Order.position c.order Dim.K
    in
    if m_major_producer = m_major_consumer then Ok () else Error Order_mismatch
  end

let footprint t =
  let shared_c_tile = Tiling.operand_tile t.producer.tiling Operand.C in
  Schedule.footprint t.producer + Schedule.footprint t.consumer - shared_c_tile

let fits t buf = footprint t <= Buffer.elements buf

let traffic pair t =
  let prod = Cost.eval pair.op1 t.producer in
  let cons = Cost.eval pair.op2 t.consumer in
  prod.a.traffic + prod.b.traffic + cons.b.traffic + cons.c.traffic

let eval pair t buf =
  match validate pair t with
  | Error e -> Error (Format.asprintf "%a" pp_invalid e)
  | Ok () ->
    if not (fits t buf) then
      Error
        (Printf.sprintf "fused footprint %d exceeds buffer capacity %d"
           (footprint t) (Buffer.elements buf))
    else Ok (traffic pair t)

let unfused_traffic pair s1 s2 =
  (Cost.eval pair.op1 s1).total + (Cost.eval pair.op2 s2).total
