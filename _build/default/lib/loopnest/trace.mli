(** Tile-event traces of a schedule's execution.

    Where {!Cost} gives totals and {!Sim} validates them, [Trace] emits
    the actual sequence of buffer events — which tile of which operand
    is fetched before which computation — for debugging dataflows,
    driving downstream simulators, and rendering the movement diagrams
    of the paper's Fig. 2/3 in ASCII. Event counts grow with the tile
    iteration count; intended for small operators. *)

open Fusecu_tensor

type event =
  | Fetch of { operand : Operand.t; tile : int * int }
      (** load the tile with these per-dimension indices (ordered as
          {!Operand.dims}) into the buffer, evicting the previous one *)
  | Compute of { m : int; k : int; l : int }
      (** run one tile computation at these tile coordinates *)

val events : Matmul.t -> Schedule.t -> event list
(** The full trace, in execution order. *)

val fetch_count : event list -> Operand.t -> int

val traffic : Matmul.t -> Schedule.t -> event list -> int
(** Total elements fetched according to the trace (ragged-exact);
    always equals [(Cost.eval op s).total] — asserted in tests. *)

val render : ?max_events:int -> Matmul.t -> Schedule.t -> string
(** A compact textual rendering, one line per event, e.g.
    {v fetch A[0,1]   compute (0,1,0) v}; truncated at [max_events]
    (default 64) with a summary line. *)
