open Fusecu_tensor

type operand_motion = Stationary | Swept of Dim.t list

let motion op (s : Schedule.t) operand =
  let cost = Cost.eval op s in
  let per = Cost.operand cost operand in
  if per.fetches = 1 then Stationary
  else begin
    (* a loop sweeps the operand's tile if stepping it changes the tile:
       its own index loops always do; the free loop does when it causes
       revisits *)
    let d1, d2 = Operand.dims operand in
    let free = Operand.free_dim operand in
    let active d = Schedule.trips op s d > 1 in
    let own = List.filter active [ d1; d2 ] in
    let revisiting = if per.revisit > 1 && active free then [ free ] else [] in
    let by_depth =
      List.sort
        (fun a b -> compare (Order.position s.order b) (Order.position s.order a))
        (own @ revisiting)
    in
    Swept by_depth
  end

let describe op (s : Schedule.t) =
  let b = Stdlib.Buffer.create 256 in
  let trips d = Schedule.trips op s d in
  Printf.bprintf b "loop nest (outer to inner):\n";
  List.iter
    (fun d ->
      Printf.bprintf b "  for %s in %d tiles of %d\n" (Dim.to_string d) (trips d)
        (Tiling.get s.tiling d))
    (Order.dims s.order);
  let cost = Cost.eval op s in
  List.iter
    (fun operand ->
      let per = Cost.operand cost operand in
      match motion op s operand with
      | Stationary ->
        Printf.bprintf b "%s stationary in the buffer (1 fetch)\n"
          (Operand.to_string operand)
      | Swept dims ->
        Printf.bprintf b "%s swept by %s (%d fetches%s)\n"
          (Operand.to_string operand)
          (String.concat ", " (List.map Dim.to_string dims))
          per.fetches
          (if per.revisit > 1 then
             Printf.sprintf ", each tile refetched x%d" per.revisit
           else ""))
    Operand.all;
  Stdlib.Buffer.contents b
