(** Memory-access model for a fused pair of matmuls
    [A x B = C] then [C x D = E] (the paper's Sec. III-B).

    A fused execution never spills the intermediate [C] to memory, which
    is only possible when (paper, "Fusiability"):

    - [C] has non-redundant access in {e both} operators' schedules
      (each [C] tile is produced exactly once and consumed exactly
      once);
    - the two schedules agree on [C]'s tile size
      ([Tm1 = Tm2] and [Tl1 = Tk2]);
    - the production order of [C] tiles matches the consumption order
      (relative order of the [M] and [L] loops in op1 = relative order
      of the [M] and [K] loops in op2), unless [C] is held entirely
      on-chip by both sides, in which case order does not matter;
    - one tile of each live operand fits in the buffer simultaneously
      ([C]'s tile is shared between the two nests).

    The fused traffic is then the traffic of [A], [B] (producer side)
    plus [D], [E] (consumer side); [C] contributes nothing. *)

open Fusecu_tensor

type pair = { op1 : Matmul.t; op2 : Matmul.t }

val make_pair : Matmul.t -> Matmul.t -> (pair, string) result
(** Checks the chaining constraints [op2.m = op1.m], [op2.k = op1.l]. *)

val make_pair_exn : Matmul.t -> Matmul.t -> pair

type t = {
  producer : Schedule.t;  (** schedule of [A x B = C] *)
  consumer : Schedule.t;  (** schedule of [C x D = E] *)
}

type invalid =
  | Intermediate_redundant of [ `Producer | `Consumer ]
      (** [C] would be refetched on the named side. *)
  | Tile_mismatch  (** the two schedules disagree on [C]'s tile size *)
  | Order_mismatch  (** production order differs from consumption order *)

val validate : pair -> t -> (unit, invalid) result
(** Check the fusibility conditions above (excluding buffer capacity,
    which {!footprint} exposes separately). *)

val footprint : t -> int
(** Buffer elements needed by the fused execution: both nests' tiles
    with [C]'s tile counted once. *)

val fits : t -> Buffer.t -> bool

val traffic : pair -> t -> int
(** Memory traffic of a valid fused execution (elements). The caller is
    expected to have validated first; traffic of an invalid combination
    is still computed (it is what the fused machine would move) but
    meaningless. *)

val eval : pair -> t -> Buffer.t -> (int, string) result
(** Validate (including buffer capacity) and return the traffic. *)

val unfused_traffic : pair -> Schedule.t -> Schedule.t -> int
(** Traffic when the two operators run separately with the given
    schedules: the intermediate is written to memory once by op1 and
    read at least once by op2 (its producer-side cost is op1's [C]
    traffic, its consumer-side cost op2's [A] traffic). *)

val pp_invalid : Format.formatter -> invalid -> unit
