open Fusecu_tensor

type resident = { mutable key : (int * int) option }

let extent op tiling d idx =
  let tile = Tiling.get tiling d and size = Matmul.dim op d in
  min tile (size - (idx * tile))

let iter_nest op (s : Schedule.t) f =
  let dims = Order.dims s.order in
  match List.map (fun d -> (d, Schedule.trips op s d)) dims with
  | [ (d1, n1); (d2, n2); (_d3, n3) ] ->
    for i1 = 0 to n1 - 1 do
      for i2 = 0 to n2 - 1 do
        for i3 = 0 to n3 - 1 do
          let coord d =
            if Dim.equal d d1 then i1 else if Dim.equal d d2 then i2 else i3
          in
          f coord
        done
      done
    done
  | _ -> assert false

let eval op (s : Schedule.t) =
  let state = List.map (fun x -> (x, { key = None })) Operand.all in
  let fetches = Hashtbl.create 16 in
  let stats =
    List.map (fun x -> (x, (ref 0, ref 0))) Operand.all
    (* fetch count, traffic *)
  in
  iter_nest op s (fun coord ->
      List.iter
        (fun operand ->
          let d1, d2 = Operand.dims operand in
          let key = (coord d1, coord d2) in
          let res = List.assoc operand state in
          if res.key <> Some key then begin
            res.key <- Some key;
            let count, traffic = List.assoc operand stats in
            incr count;
            traffic :=
              !traffic + (extent op s.tiling d1 (fst key) * extent op s.tiling d2 (snd key));
            let hkey = (operand, key) in
            Hashtbl.replace fetches hkey
              (1 + Option.value ~default:0 (Hashtbl.find_opt fetches hkey))
          end)
        Operand.all);
  let per operand =
    let count, traffic = List.assoc operand stats in
    let revisit =
      Hashtbl.fold
        (fun (o, _) n acc -> if Operand.equal o operand then max acc n else acc)
        fetches 0
    in
    { Cost.fetches = !count; traffic = !traffic; revisit }
  in
  let a = per Operand.A and b = per Operand.B and c = per Operand.C in
  { Cost.a; b; c; total = a.traffic + b.traffic + c.traffic }

let macs op (s : Schedule.t) =
  let total = ref 0 in
  iter_nest op s (fun coord ->
      let ext d = extent op s.tiling d (coord d) in
      total := !total + (ext Dim.M * ext Dim.K * ext Dim.L));
  !total
