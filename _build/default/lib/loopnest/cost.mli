(** Exact memory-access model for a tiled matmul loop nest.

    Model (matches the paper's Sec. III-A): the buffer holds exactly one
    tile per operand; a tile is (re)fetched whenever the tile indices of
    its operand change between consecutive tile iterations. An operand
    whose tile is fetched exactly once per distinct tile — i.e. never
    refetched — has {e non-redundant access} (NRA).

    Closed form. Let [n_d] be the trip count of dimension [d] and let an
    operand [X] have index dims [S] and free dim [f]. Define [p] as the
    loop position (1 = outermost) of the {e innermost} loop in [S] with
    [n > 1]. Then the number of times each tile region of [X] is fetched
    is

    [revisit X = if n_f > 1 && position f < p then n_f else 1]

    and the element traffic is [revisit X * size X] — exact even for
    ragged (non-dividing) tile sizes, because every fetch sweep touches
    each element of [X] exactly once. This reproduces the paper's Eq. 1
    and Eq. 3 and is validated against the mechanical simulator in
    {!Sim}. *)

open Fusecu_tensor

type per_operand = {
  fetches : int;  (** number of tile-fetch events *)
  traffic : int;  (** elements moved between memory and buffer *)
  revisit : int;  (** times each tile region is fetched; 1 = NRA *)
}

type t = {
  a : per_operand;
  b : per_operand;
  c : per_operand;
  total : int;  (** total element traffic *)
}

val eval : ?partial_sum_penalty:bool -> Matmul.t -> Schedule.t -> t
(** Evaluate a schedule. With [partial_sum_penalty] (default [false],
    the paper's symmetric accounting), a revisited output tile costs a
    read {e and} a write per revisit: traffic
    [size_C * (2*revisit - 1)]. *)

val operand : t -> Operand.t -> per_operand

val revisit : Matmul.t -> Schedule.t -> Operand.t -> int
(** Just the revisit factor of one operand. *)

val is_nra : Matmul.t -> Schedule.t -> Operand.t -> bool
(** Whether the operand has non-redundant access under the schedule. *)

val nra_operands : Matmul.t -> Schedule.t -> Operand.t list
(** Operands accessed without redundancy, in [A < B < C] order. At least
    one operand is always NRA. *)

val nra_count : Matmul.t -> Schedule.t -> int
(** [1], [2] or [3] — the paper's Single-/Two-/Three-NRA classes. *)

val pp : Format.formatter -> t -> unit
