lib/loopnest/tiling.ml: Buffer Dim Format Fusecu_tensor Fusecu_util Matmul Operand
