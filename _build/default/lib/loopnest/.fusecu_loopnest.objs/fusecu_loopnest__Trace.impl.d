lib/loopnest/trace.ml: Dim Fusecu_tensor Fusecu_util Hashtbl List Matmul Operand Order Printf Schedule Stdlib Tiling
