lib/loopnest/sim.mli: Cost Fusecu_tensor Matmul Schedule
