lib/loopnest/schedule.ml: Dim Format Fusecu_tensor Order Tiling
