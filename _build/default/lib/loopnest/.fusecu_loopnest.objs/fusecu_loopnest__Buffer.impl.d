lib/loopnest/buffer.ml: Format Fusecu_util
