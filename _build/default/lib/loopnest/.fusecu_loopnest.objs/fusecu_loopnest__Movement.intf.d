lib/loopnest/movement.mli: Dim Fusecu_tensor Matmul Operand Schedule
