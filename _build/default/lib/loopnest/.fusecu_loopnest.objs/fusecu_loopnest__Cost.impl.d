lib/loopnest/cost.ml: Format Fusecu_tensor Fusecu_util List Matmul Operand Order Schedule
