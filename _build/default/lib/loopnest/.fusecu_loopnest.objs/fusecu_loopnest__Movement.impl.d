lib/loopnest/movement.ml: Cost Dim Fusecu_tensor List Operand Order Printf Schedule Stdlib String Tiling
