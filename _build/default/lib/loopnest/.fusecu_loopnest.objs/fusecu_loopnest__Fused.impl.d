lib/loopnest/fused.ml: Buffer Cost Dim Format Fusecu_tensor Matmul Operand Order Printf Schedule Tiling
