lib/loopnest/sim.ml: Cost Dim Fusecu_tensor Hashtbl List Matmul Operand Option Order Schedule Tiling
