lib/loopnest/cost.mli: Format Fusecu_tensor Matmul Operand Schedule
