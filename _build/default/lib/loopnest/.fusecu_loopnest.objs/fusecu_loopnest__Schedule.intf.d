lib/loopnest/schedule.mli: Buffer Dim Format Fusecu_tensor Matmul Order Tiling
