lib/loopnest/buffer.mli: Format
