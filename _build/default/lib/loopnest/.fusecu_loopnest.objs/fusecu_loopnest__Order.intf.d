lib/loopnest/order.mli: Dim Format Fusecu_tensor Operand
