lib/loopnest/order.ml: Dim Format Fusecu_tensor List Operand Printf
