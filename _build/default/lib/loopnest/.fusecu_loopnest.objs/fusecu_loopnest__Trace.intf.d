lib/loopnest/trace.mli: Fusecu_tensor Matmul Operand Schedule
