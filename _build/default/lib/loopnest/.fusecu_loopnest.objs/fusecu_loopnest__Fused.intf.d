lib/loopnest/fused.mli: Buffer Format Fusecu_tensor Matmul Schedule
