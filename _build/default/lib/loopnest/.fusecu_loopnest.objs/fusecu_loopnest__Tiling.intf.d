lib/loopnest/tiling.mli: Buffer Dim Format Fusecu_tensor Matmul Operand
