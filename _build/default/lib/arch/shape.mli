(** Logical PE-array shapes. FuseCU composes its four 128x128 compute
    units into square, narrow and wide configurations (paper Fig. 7). *)

type t = { rows : int; cols : int }

val make : rows:int -> cols:int -> t

val area : t -> int
(** Number of PEs, [rows * cols]. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit
