type job = { label : string; compute_cycles : float; bytes : float }

let max_jobs = 4096

let jobs_of_eval (e : Perf.eval) =
  let per_cu_peak =
    float_of_int (Platform.peak_macs_per_cycle e.platform)
    /. float_of_int e.platform.Platform.num_cus
  in
  let cus = e.platform.Platform.num_cus in
  let expanded =
    List.concat_map
      (fun (s : Perf.segment) ->
        let compute_cycles =
          float_of_int s.macs /. (per_cu_peak *. Float.max 1e-9 s.util_map)
        in
        let job = { label = s.label; compute_cycles; bytes = float_of_int s.traffic } in
        if s.count <= max_jobs / 8 then begin
          (* a wide operator with few instances is data-parallel along
             its rows: slice it so the CUs can share it *)
          let slices = if s.count < cus then cus * 4 / s.count else 1 in
          let slice =
            { job with
              compute_cycles = job.compute_cycles /. float_of_int slices;
              bytes = job.bytes /. float_of_int slices }
          in
          List.init (s.count * slices) (fun _ -> slice)
        end
        else begin
          (* merge instances so the expansion stays tractable *)
          let groups = max_jobs / 8 in
          let per_group = float_of_int s.count /. float_of_int groups in
          List.init groups (fun _ ->
              { job with
                compute_cycles = job.compute_cycles *. per_group;
                bytes = job.bytes *. per_group })
        end)
      e.segments
  in
  expanded

type running = {
  mutable compute_left : float;
  mutable bytes_left : float;
  mutable cu : int;
}

type result = {
  makespan : float;
  busy : float array;
  compute_bound : float;
  bandwidth_bound : float;
  utilization : float;
}

let run (p : Platform.t) jobs =
  let cus = p.Platform.num_cus in
  let bandwidth = float_of_int p.Platform.bw_bytes_per_cycle in
  let queue =
    (* longest (by standalone roofline length) first *)
    List.sort
      (fun a b ->
        compare
          (Float.max b.compute_cycles (b.bytes /. bandwidth))
          (Float.max a.compute_cycles (a.bytes /. bandwidth)))
      jobs
    |> ref
  in
  let running : running option array = Array.make cus None in
  let busy = Array.make cus 0. in
  let now = ref 0. in
  let total_compute = List.fold_left (fun acc j -> acc +. j.compute_cycles) 0. jobs in
  let total_bytes = List.fold_left (fun acc j -> acc +. j.bytes) 0. jobs in
  let dispatch () =
    Array.iteri
      (fun cu slot ->
        match (slot, !queue) with
        | None, job :: rest ->
          queue := rest;
          running.(cu) <-
            Some { compute_left = job.compute_cycles; bytes_left = job.bytes; cu }
        | _ -> ())
      running
  in
  let active () =
    Array.to_list running |> List.filter_map (fun slot -> slot)
  in
  dispatch ();
  let rec step () =
    match active () with
    | [] -> ()
    | jobs_now ->
      let share = bandwidth /. float_of_int (List.length jobs_now) in
      (* a job's remaining duration under the current shares: compute
         and transfer overlap, so it is the max of the two phases *)
      let duration (r : running) =
        Float.max r.compute_left (r.bytes_left /. share)
      in
      let dt =
        List.fold_left (fun acc r -> Float.min acc (duration r)) Float.infinity
          jobs_now
      in
      let dt = Float.max dt 1e-9 in
      now := !now +. dt;
      List.iter
        (fun r ->
          busy.(r.cu) <- busy.(r.cu) +. dt;
          r.compute_left <- Float.max 0. (r.compute_left -. dt);
          r.bytes_left <- Float.max 0. (r.bytes_left -. (share *. dt));
          if r.compute_left <= 1e-6 && r.bytes_left <= 1e-6 then
            running.(r.cu) <- None)
        jobs_now;
      dispatch ();
      step ()
  in
  step ();
  let makespan = !now in
  { makespan;
    busy;
    compute_bound = total_compute /. float_of_int cus;
    bandwidth_bound = total_bytes /. bandwidth;
    utilization =
      (if makespan <= 0. then 0.
       else
         Array.fold_left ( +. ) 0. busy /. (float_of_int cus *. makespan)) }

let simulate_eval (e : Perf.eval) = run e.platform (jobs_of_eval e)
