(** PE-level mapping: which buffer-level schedules a platform can
    execute, how buffer tiles are quantized to the array, and the
    utilization of a mapped dataflow.

    The {e anchor} of a schedule is the operand kept locally by the PE
    array (the operand with the largest buffer tile; Sec. IV-A's
    "stationary tile"). Platform restrictions:

    - the anchor operand must be in [platform.anchors];
    - the intended NRA class must be in [platform.classes];
    - on low-flexibility machines the anchor tile is additionally capped
      at the joint array footprint (2N per dim): their rigid dataflow
      streams directly against array-resident data and cannot re-block
      the stationary tensor in the buffer;
    - anchor tile dims snap down to the platform grain (128 / 64 / 16)
      unless the dimension itself is smaller.

    Utilization = spatial (how well the stationary tile fills the
    configurable array shapes) x temporal (systolic fill/drain overhead
    for the streamed dimension). *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

val intent_anchor : Nra.dataflow -> Operand.t
(** The operand a dataflow shape keeps locally: the stationary tensor
    (Single), the non-redundant tensor indexed by the untiled dim (Two),
    or the resident tensor (Three). *)

val schedule_anchor : Matmul.t -> Schedule.t -> Operand.t
(** Anchor recovered from an arbitrary schedule: the operand with the
    largest tile (ties broken towards non-redundant operands, then
    [A < B < C]). *)

val anchor_cap : Platform.t -> int option
(** Per-dimension cap on the anchor tile ([Some (2N)] for
    low-flexibility platforms, [None] otherwise). *)

val admit : Platform.t -> Matmul.t -> Buffer.t -> Principles.candidate
  -> Principles.candidate option
(** Apply the restrictions above to a principle candidate: check anchor
    and class, snap/cap the anchor tile dims, and re-check buffer fit.
    [None] when the candidate is not executable on the platform. *)

val spatial_util : Platform.t -> rows:int -> cols:int -> float
(** Fraction of PE slots doing useful work when a [rows x cols]
    stationary tile is mapped (chunked) onto the platform's array
    shapes; in (0, 1]. *)

val temporal_eff : Platform.t -> rows:int -> cols:int -> stream:int -> float
(** Systolic pipeline efficiency [s / (s + r + c - 2)] for streaming
    [stream] vectors through the best array shape for the tile. *)

val solo_util : Platform.t -> Matmul.t -> Schedule.t -> float
(** Combined mapping utilization of an intra-operator schedule. *)

(** How a fused pair maps onto FuseCU (Sec. IV-A). *)
type fusion_mapping =
  | Tile_fusion  (** tile-like intermediate held as stationary tile *)
  | Column_fusion  (** column-like intermediate streamed between two
                       array halves *)

val fusion_mapping_of : Fused.t -> fusion_mapping
(** Tile fusion when the intermediate tile is 2-D, column fusion when
    one of its dims is 1. *)

val fused_util : Platform.t -> Fused.pair -> Fused.t -> float
(** Combined mapping utilization of a fused execution. *)
