(** Inter-CU link model for fused executions.

    Column fusion streams intermediate columns from the producer half of
    the cluster into the consumer half through the edge muxes of
    Fig. 7. A link carries one element per edge PE per cycle, so a
    column of height [h] needs [ceil(h / link_width)] cycles; the
    producer emits one column per cycle in steady state, so fusion
    stalls whenever a column is taller than the link is wide. This
    module quantifies the link occupancy and stall cycles — the paper's
    implicit claim is that FuseCU's configurations keep the link
    exactly matched (no stall), which tests verify for the profitable
    patterns. *)

open Fusecu_loopnest

type transfer = {
  columns : int;  (** intermediate columns streamed *)
  column_height : int;  (** elements per column *)
  link_width : int;  (** elements the inter-CU link moves per cycle *)
  cycles_per_column : int;
  stall_cycles : int;  (** extra cycles beyond one column per cycle *)
}

val column_fusion_transfer : Platform.t -> Fused.pair -> Fused.t -> transfer option
(** The transfer a fused dataflow induces on the inter-CU link; [None]
    for tile fusion (the intermediate never crosses a link). The link
    width is the producer half's edge: [pe_dim] elements per cycle. *)

val total_elements : transfer -> int

val occupancy : transfer -> float
(** Fraction of link cycles doing useful work: 1.0 when columns and
    link are exactly matched. *)
