(** Energy model for workload execution.

    The paper motivates dataflow optimization by memory access being "a
    key factor in the energy consumption of tensor applications"; this
    module turns the traffic and MAC counts of a {!Perf.eval} into
    energy, using per-access costs of the usual 28/32 nm order
    (Horowitz, ISSCC'14 scaled to int8; DRAM access dominates on-chip
    access by ~2 orders of magnitude, buffer dominates register by ~1).

    Constants are a calibration surface, not a contribution: the claims
    that survive constant wiggle are (a) traffic reduction translates
    almost one-for-one into energy reduction for memory-bound layers and
    (b) the MAC energy floor bounds the achievable saving. *)

type costs = {
  dram_pj : float;  (** per element moved between DRAM and buffer *)
  buffer_pj : float;  (** per element moved between buffer and PEs *)
  mac_pj : float;  (** per multiply-accumulate *)
  static_pj_per_cycle : float;  (** leakage + clock tree, whole chip *)
}

val default_costs : costs
(** 160 pJ DRAM, 6 pJ buffer, 0.4 pJ int8 MAC, 50 pJ/cycle static. *)

type t = {
  dram_nj : float;
  buffer_nj : float;
  compute_nj : float;
  static_nj : float;
  total_nj : float;
}

val of_eval : ?costs:costs -> Perf.eval -> t
(** Energy of an evaluated workload. Buffer-to-PE traffic is
    approximated as one buffer access per MAC operand pair reused
    spatially: [macs / sqrt(PEs)] per the standard systolic reuse
    argument. *)

val saving : t -> t -> float
(** [saving a b] is the fraction of [b]'s energy that [a] avoids. *)

val pp : Format.formatter -> t -> unit
