(** Parts-based area model for FuseCU at 28 nm (paper Fig. 12).

    The paper synthesizes Chisel RTL with Design Compiler; we cannot, so
    each component gets a per-instance area constant of the right order
    for 28 nm standard-cell implementations (int8 MAC, registers, 2:1
    muxes). The claims under test are structural and survive constant
    wiggle: (a) the XS PE muxing is the dominant overhead, around 12% of
    the PE array; (b) the inter-CU interconnect and fusion control are
    negligible (< 0.1%), far below Planaria's reported 12.6%
    interconnect cost. *)

type component = {
  name : string;
  area_um2 : float;  (** total area of this component class *)
  overhead : bool;  (** introduced by FuseCU (vs. a standard array)? *)
}

type breakdown = {
  components : component list;
  base_um2 : float;  (** standard systolic-array area (non-overhead) *)
  overhead_um2 : float;
  overhead_pct : float;  (** overhead relative to the baseline array *)
  interconnect_pct : float;  (** FuseCU interconnect + fusion control only *)
}

val fusecu_breakdown : ?pe_dim:int -> ?num_cus:int -> unit -> breakdown
(** Defaults: 128x128 PEs per CU, 4 CUs (the TPUv4i-based FuseCU). *)

val pp : Format.formatter -> breakdown -> unit
