(** Feature ablation of the FuseCU design.

    DESIGN.md calls out three design choices behind FuseCU's results:
    flexible stationarity (the XS PE), adaptive tiling (CU resize), and
    compute-unit fusion. This module builds the lattice of platform
    variants between the rigid baseline and full FuseCU, so benchmarks
    can attribute the measured savings to individual features — the
    paper's UnfCU is one point of this lattice (everything but
    fusion). *)

type variant = {
  platform : Platform.t;
  adds : string;  (** the feature this step enables, "" for the base *)
}

val ladder : variant list
(** Rigid baseline → +flexible stationary → +adaptive tiling →
    +fusion (= FuseCU). Each step enables exactly one Table III
    attribute. *)

type step = {
  name : string;
  adds : string;
  traffic : int;
  cycles : int;
  ma_saving_vs_base : float;
  speedup_vs_base : float;
}

val run : ?buf:Fusecu_loopnest.Buffer.t -> Fusecu_workloads.Model.t list
  -> (step list, string) result
(** Evaluate every ladder step on the given models (summing traffic and
    cycles across them) and report each step's cumulative gain over the
    rigid baseline. *)
