type costs = {
  dram_pj : float;
  buffer_pj : float;
  mac_pj : float;
  static_pj_per_cycle : float;
}

let default_costs =
  { dram_pj = 160.; buffer_pj = 6.; mac_pj = 0.4; static_pj_per_cycle = 50. }

type t = {
  dram_nj : float;
  buffer_nj : float;
  compute_nj : float;
  static_nj : float;
  total_nj : float;
}

let of_eval ?(costs = default_costs) (e : Perf.eval) =
  let macs = float_of_int e.macs in
  let pes = float_of_int (Platform.total_pes e.platform) in
  (* each operand element fetched from the buffer feeds a systolic wave
     that reuses it across one array dimension *)
  let buffer_accesses = 2. *. macs /. sqrt pes in
  let dram_nj = float_of_int e.traffic_bytes *. costs.dram_pj /. 1e3 in
  let buffer_nj = buffer_accesses *. costs.buffer_pj /. 1e3 in
  let compute_nj = macs *. costs.mac_pj /. 1e3 in
  let static_nj = float_of_int e.cycles *. costs.static_pj_per_cycle /. 1e3 in
  { dram_nj; buffer_nj; compute_nj; static_nj;
    total_nj = dram_nj +. buffer_nj +. compute_nj +. static_nj }

let saving a b = 1. -. (a.total_nj /. b.total_nj)

let pp fmt t =
  Format.fprintf fmt
    "energy %.2f uJ (dram %.2f, buffer %.2f, compute %.2f, static %.2f)"
    (t.total_nj /. 1e3) (t.dram_nj /. 1e3) (t.buffer_nj /. 1e3)
    (t.compute_nj /. 1e3) (t.static_nj /. 1e3)
