open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_util

let intent_anchor = function
  | Nra.Single_nra { stationary } -> stationary
  | Nra.Two_nra { untiled; redundant } -> (
    match
      List.filter
        (fun x -> not (Operand.equal x redundant))
        (Operand.with_dim untiled)
    with
    | [ x ] -> x
    | _ -> assert false)
  | Nra.Three_nra { resident } -> resident

let schedule_anchor op (s : Schedule.t) =
  let score x =
    let tile = Tiling.operand_tile s.tiling x in
    let nra = if Cost.is_nra op s x then 1 else 0 in
    (tile, nra)
  in
  List.fold_left
    (fun best x -> if score x > score best then x else best)
    Operand.A [ Operand.B; Operand.C ]

let anchor_cap (p : Platform.t) =
  match p.flex with
  | Platform.Low -> Some (2 * p.pe_dim)
  | Platform.Mid | Platform.High -> None

(* Snap one anchor-tile dimension to the platform grain/cap. *)
let snap_dim (p : Platform.t) ~dim ~tile =
  let tile =
    match anchor_cap p with Some cap -> min tile cap | None -> tile
  in
  let tile = min tile dim in
  if tile >= dim then dim
  else if dim <= p.ma_grain then min tile dim
  else max p.ma_grain (tile / p.ma_grain * p.ma_grain)

let admit (p : Platform.t) op buf (c : Principles.candidate) =
  let anchor = intent_anchor c.intent in
  if not (List.mem anchor p.anchors) then None
  else if not (List.mem (Nra.class_of c.intent) p.classes) then None
  else begin
    let d1, d2 = Operand.dims anchor in
    let s = c.schedule in
    let snap d tiling =
      let tile = snap_dim p ~dim:(Matmul.dim op d) ~tile:(Tiling.get tiling d) in
      Tiling.with_dim op tiling d tile
    in
    let tiling = snap d2 (snap d1 s.tiling) in
    let schedule = Schedule.make tiling s.order in
    if Schedule.fits schedule buf then Some { c with schedule } else None
  end

let shapes_of (p : Platform.t) ~rows ~cols =
  match p.shaping with
  | Platform.Fixed_shapes shapes -> shapes
  | Platform.Grain g ->
    (* Fission composes an array matched to the (quantized) tile, within
       the total PE budget. *)
    let budget = Platform.total_pes p in
    let quant x = Arith.ceil_div x g * g in
    let r = min (quant rows) budget in
    let c = min (quant cols) (max g (budget / r)) in
    [ Shape.make ~rows:r ~cols:c ]

let chunk_efficiency ~rows ~cols (shape : Shape.t) =
  let slots r len = Arith.ceil_div len r * r in
  float_of_int (rows * cols)
  /. float_of_int (slots shape.rows rows * slots shape.cols cols)

let spatial_util p ~rows ~cols =
  let candidates = shapes_of p ~rows ~cols in
  List.fold_left
    (fun acc shape -> Float.max acc (chunk_efficiency ~rows ~cols shape))
    0. candidates

let best_shape p ~rows ~cols =
  let candidates = shapes_of p ~rows ~cols in
  List.fold_left
    (fun best shape ->
      if chunk_efficiency ~rows ~cols shape > chunk_efficiency ~rows ~cols best
      then shape
      else best)
    (List.hd candidates) candidates

let temporal_eff p ~rows ~cols ~stream =
  let shape = best_shape p ~rows ~cols in
  let r = min rows shape.Shape.rows and c = min cols shape.Shape.cols in
  float_of_int stream /. float_of_int (stream + r + c - 2)

let anchor_tile_dims (s : Schedule.t) anchor =
  let d1, d2 = Operand.dims anchor in
  (Tiling.get s.tiling d1, Tiling.get s.tiling d2, Operand.free_dim anchor)

let solo_util p op (s : Schedule.t) =
  let anchor = schedule_anchor op s in
  let rows, cols, free = anchor_tile_dims s anchor in
  let stream = Matmul.dim op free in
  spatial_util p ~rows ~cols *. temporal_eff p ~rows ~cols ~stream

type fusion_mapping = Tile_fusion | Column_fusion

let intermediate_tile (f : Fused.t) =
  (Tiling.get f.producer.tiling Dim.M, Tiling.get f.producer.tiling Dim.L)

let fusion_mapping_of f =
  let tm, tl = intermediate_tile f in
  if tm = 1 || tl = 1 then Column_fusion else Tile_fusion

let fused_util p (pair : Fused.pair) (f : Fused.t) =
  match fusion_mapping_of f with
  | Tile_fusion ->
    (* The intermediate tile is the stationary tile for both phases;
       phase 1 streams the reduction dim K1, phase 2 the output dim L2,
       with a single fill/drain. *)
    let rows, cols = intermediate_tile f in
    let stream = pair.Fused.op1.k + pair.Fused.op2.l in
    spatial_util p ~rows ~cols *. temporal_eff p ~rows ~cols ~stream
  | Column_fusion ->
    (* The array splits in two parts sharing its rows (Fig. 5(b)): the
       producer part holds its stationary operand across K1 columns,
       the consumer part accumulates the output across L2 columns, and
       intermediate columns stream between them. The two small operators
       pack side by side into one combined [rows x (K1 + L2)] footprint
       — the paper's "consolidating small MMs into larger
       computations". *)
    let tm, tl = intermediate_tile f in
    let shared_rows = if tm = 1 then tl else tm in
    let combined_cols = pair.Fused.op1.k + pair.Fused.op2.l in
    let columns = if tl = 1 then pair.Fused.op1.l else pair.Fused.op1.m in
    spatial_util p ~rows:shared_rows ~cols:combined_cols
    *. temporal_eff p ~rows:shared_rows ~cols:combined_cols ~stream:columns
