open Fusecu_tensor
open Fusecu_loopnest

type transfer = {
  columns : int;
  column_height : int;
  link_width : int;
  cycles_per_column : int;
  stall_cycles : int;
}

let column_fusion_transfer (p : Platform.t) (pair : Fused.pair) (f : Fused.t) =
  match Mapping.fusion_mapping_of f with
  | Mapping.Tile_fusion -> None
  | Mapping.Column_fusion ->
    let tm = Tiling.get f.producer.tiling Dim.M in
    let tl = Tiling.get f.producer.tiling Dim.L in
    (* the moving tile is the unit-width side; the resident side is the
       column height *)
    let column_height, columns_per_tile =
      if tl = 1 then (tm, pair.Fused.op1.l) else (tl, pair.Fused.op1.m)
    in
    let tile_instances =
      let trips d s = Schedule.trips pair.Fused.op1 s d in
      let all = trips Dim.M f.producer * trips Dim.K f.producer * trips Dim.L f.producer in
      (* columns stream once per tile pass over the moving dimension *)
      max 1 (all / max 1 (if tl = 1 then trips Dim.L f.producer else trips Dim.M f.producer))
    in
    let columns = columns_per_tile * tile_instances in
    let link_width = p.Platform.pe_dim in
    let cycles_per_column = Fusecu_util.Arith.ceil_div column_height link_width in
    Some
      { columns;
        column_height;
        link_width;
        cycles_per_column;
        stall_cycles = (cycles_per_column - 1) * columns }

let total_elements t = t.columns * t.column_height

let occupancy t =
  let used = float_of_int (total_elements t) in
  let available = float_of_int (t.columns * t.cycles_per_column * t.link_width) in
  used /. available
