
type variant = { platform : Platform.t; adds : string }

(* Step 2 keeps the rigid 128x128 arrays but allows any stationary
   operand; step 3 additionally unlocks the untiled-dimension classes
   and the CU shape set; step 4 is FuseCU itself. *)
let ladder =
  [ { platform = Platform.tpu_v4i; adds = "" };
    { platform = Platform.gemmini; adds = "flexible stationary (XS PE)" };
    { platform = Platform.unfcu; adds = "adaptive tiling (CU resize)" };
    { platform = Platform.fusecu; adds = "tensor fusion (FuseCU)" } ]

type step = {
  name : string;
  adds : string;
  traffic : int;
  cycles : int;
  ma_saving_vs_base : float;
  speedup_vs_base : float;
}

let run ?(buf = Fusecu_loopnest.Buffer.of_kib 512) models =
  let evaluate (p : Platform.t) =
    List.fold_left
      (fun acc model ->
        match acc with
        | Error _ as e -> e
        | Ok (traffic, cycles) -> (
          let w = Fusecu_workloads.Workload.of_model model in
          match Perf.eval_workload p buf w with
          | Ok e -> Ok (traffic + e.Perf.traffic, cycles + e.Perf.cycles)
          | Error e -> Error e))
      (Ok (0, 0)) models
  in
  match evaluate (List.hd ladder).platform with
  | Error e -> Error e
  | Ok (base_traffic, base_cycles) ->
    let rec steps acc = function
      | [] -> Ok (List.rev acc)
      | { platform; adds } :: rest -> (
        match evaluate platform with
        | Error e -> Error e
        | Ok (traffic, cycles) ->
          let step =
            { name = platform.Platform.name;
              adds;
              traffic;
              cycles;
              ma_saving_vs_base =
                1. -. (float_of_int traffic /. float_of_int base_traffic);
              speedup_vs_base =
                float_of_int base_cycles /. float_of_int cycles }
          in
          steps (step :: acc) rest)
    in
    steps [] ladder

