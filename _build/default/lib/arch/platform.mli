(** Spatial-accelerator platform models (the paper's Table III).

    Each platform restricts the buffer-level dataflow space the
    optimizer may use, following the paper's attribute matrix:

    - {b stationary flexibility} — which operand the PE array can keep
      locally (the {e anchor}: the operand given the largest buffer
      tile). WS-only machines (TPUv4i, Planaria) anchor only the weight
      tensor [B]; XS machines anchor any operand.
    - {b tiling flexibility} — [Low]: the array's fixed stationary tile
      cannot realize untiled-dimension dataflows, so only Single-NRA
      shapes are executable (an anchor tensor that happens to fit
      entirely still degenerates to Three-NRA), and anchor tile dims are
      quantized to the 128-PE grain. [High] (Planaria fission): all NRA
      classes, 16-PE grain, arbitrary array shapes. [Mid] (FuseCU CU
      composition): all NRA classes, 64-PE grain, the Fig. 7 shape set.
    - {b fusion} — whether operator chains may keep intermediates
      on-chip (FuseCU only).

    These restrictions feed {!Perf}, which runs the same principle-based
    optimizer over each platform's space ("All designs undergo our
    optimization process to select the best dataflow within their
    supported spaces"). *)

open Fusecu_tensor
open Fusecu_core

type flex = Low | Mid | High

type shaping =
  | Fixed_shapes of Shape.t list
      (** the array only forms these logical shapes *)
  | Grain of int
      (** fission at this granularity into arbitrary shapes (Planaria) *)

type t = {
  name : string;
  anchors : Operand.t list;  (** operands the PEs can keep stationary *)
  classes : Nra.t list;  (** NRA classes the array can execute *)
  ma_grain : int;  (** anchor-tile quantization for buffer-level tiling *)
  shaping : shaping;
  flex : flex;
  fusion : bool;
  pe_dim : int;  (** N: each CU is N x N *)
  num_cus : int;
  bw_bytes_per_cycle : int;  (** on-chip bandwidth (1 TB/s at ~1 GHz) *)
}

val tpu_v4i : t
val gemmini : t
val planaria : t
val unfcu : t
val fusecu : t

val all : t list
(** Comparison order of the paper's Fig. 10: TPUv4i, Gemmini, Planaria,
    UnfCU, FuseCU. *)

val total_pes : t -> int

val peak_macs_per_cycle : t -> int

val find : string -> t option

(** Rows of Table III. *)
val attribute_rows : unit -> string list list

val attribute_header : string list
