(** Discrete-event execution of a planned workload on the compute-unit
    cluster.

    {!Perf} charges each segment a roofline cycle count and sums them —
    implicitly a perfectly-balanced machine. This simulator schedules
    the actual segment instances onto the [num_cus] compute units
    (greedy, longest job first) with a {e shared} memory port: at any
    instant, running jobs split the bandwidth equally, and a job
    finishes when both its compute work (at its own mapping
    utilization, on one CU) and its traffic are done. Completions are
    processed event by event with rates recomputed at each event.

    The simulated makespan is never below either bound (aggregate
    compute, aggregate bandwidth) and exposes load imbalance and
    bandwidth contention that the closed-form model hides. *)

type job = {
  label : string;
  compute_cycles : float;  (** on one CU, at the job's utilization *)
  bytes : float;  (** traffic through the shared port *)
}

val jobs_of_eval : Perf.eval -> job list
(** Expand an evaluated workload into per-instance jobs (instances of a
    segment become separate jobs, capped at 4096 jobs by merging the
    smallest ones to keep simulation affordable). *)

type result = {
  makespan : float;  (** cycles until the last job completes *)
  busy : float array;  (** per-CU busy time *)
  compute_bound : float;  (** aggregate compute work / number of CUs *)
  bandwidth_bound : float;  (** aggregate bytes / port bandwidth *)
  utilization : float;  (** mean busy fraction across CUs *)
}

val run : Platform.t -> job list -> result
(** Simulate on the platform's CU count and bandwidth. Empty job lists
    yield a zero makespan. *)

val simulate_eval : Perf.eval -> result
(** Convenience: [run] on the eval's own platform. *)
