type component = { name : string; area_um2 : float; overhead : bool }

type breakdown = {
  components : component list;
  base_um2 : float;
  overhead_um2 : float;
  overhead_pct : float;
  interconnect_pct : float;
}

(* 28 nm standard-cell estimates, per instance (um^2). Register bits at
   ~6 um^2/bit, 2:1 muxes at ~1.2 um^2/bit; int8 multiplier plus 32-bit
   accumulate adder from synthesis folklore for this node. *)
let mac_int8 = 295.
let accumulator_reg32 = 192.
let io_regs = 96. (* two 8-bit operand registers *)
let pe_control = 18.
let mux2_bit = 1.2

(* The XS PE (Fig. 6) adds muxes on the stationary-register input
   (8 bits), the accumulate path (32 bits) and the activation output
   (8 bits), plus a small mode-config register. *)
let xs_mux_bits = 48.
let xs_config_regs = 16.

let fusecu_breakdown ?(pe_dim = 128) ?(num_cus = 4) () =
  let pes = float_of_int (pe_dim * pe_dim * num_cus) in
  let per_cu_edge_pes = float_of_int (2 * pe_dim) in
  let cus = float_of_int num_cus in
  let components =
    [ { name = "multipliers (int8)"; area_um2 = mac_int8 *. pes; overhead = false };
      { name = "accumulators"; area_um2 = accumulator_reg32 *. pes; overhead = false };
      { name = "base PE registers"; area_um2 = io_regs *. pes; overhead = false };
      { name = "base PE control"; area_um2 = pe_control *. pes; overhead = false };
      { name = "softmax unit"; area_um2 = 1.875e3 *. float_of_int pe_dim;
        overhead = false };
      { name = "array control"; area_um2 = 1.25e3 *. float_of_int pe_dim *. cus;
        overhead = false };
      { name = "XS PE muxes"; area_um2 = mux2_bit *. xs_mux_bits *. pes;
        overhead = true };
      { name = "XS config registers"; area_um2 = xs_config_regs *. pes;
        overhead = true };
      { name = "FuseCU resize interconnect";
        area_um2 = mux2_bit *. 16. *. per_cu_edge_pes *. cus;
        overhead = true };
      { name = "fusion control units"; area_um2 = 1.2e3 *. cus; overhead = true } ]
  in
  let sum f =
    List.fold_left (fun acc c -> if f c then acc +. c.area_um2 else acc) 0. components
  in
  let base_um2 = sum (fun c -> not c.overhead) in
  let overhead_um2 = sum (fun c -> c.overhead) in
  let interconnect =
    sum (fun c ->
        c.overhead
        && (c.name = "FuseCU resize interconnect" || c.name = "fusion control units"))
  in
  { components; base_um2; overhead_um2;
    overhead_pct = overhead_um2 /. base_um2;
    interconnect_pct = interconnect /. base_um2 }

let pp fmt b =
  let mm2 x = x /. 1e6 in
  Format.fprintf fmt "@[<v>FuseCU area breakdown (28 nm):@ %a@ %s@ %s@]"
    (Format.pp_print_list (fun fmt c ->
         Format.fprintf fmt "%-28s %8.3f mm2%s" c.name (mm2 c.area_um2)
           (if c.overhead then "  [overhead]" else "")))
    b.components
    (Printf.sprintf "total overhead: %.1f%% of the baseline array"
       (100. *. b.overhead_pct))
    (Printf.sprintf "interconnect+control: %.3f%%" (100. *. b.interconnect_pct))
