open Fusecu_tensor
open Fusecu_core

type flex = Low | Mid | High

type shaping = Fixed_shapes of Shape.t list | Grain of int

type t = {
  name : string;
  anchors : Operand.t list;
  classes : Nra.t list;
  ma_grain : int;
  shaping : shaping;
  flex : flex;
  fusion : bool;
  pe_dim : int;
  num_cus : int;
  bw_bytes_per_cycle : int;
}

let n = 128

let square = Shape.make ~rows:n ~cols:n

(* FuseCU / UnfCU CU compositions (Fig. 7): square, narrow and wide. *)
let cu_shapes =
  [ square;
    Shape.make ~rows:(2 * n) ~cols:n;
    Shape.make ~rows:n ~cols:(2 * n);
    Shape.make ~rows:(2 * n) ~cols:(2 * n);
    Shape.make ~rows:(4 * n) ~cols:n;
    Shape.make ~rows:n ~cols:(4 * n) ]

let base ~name ~anchors ~classes ~ma_grain ~shaping ~flex ~fusion =
  { name; anchors; classes; ma_grain; shaping; flex; fusion; pe_dim = n;
    num_cus = 4; bw_bytes_per_cycle = 1024 }

let tpu_v4i =
  base ~name:"TPUv4i" ~anchors:[ Operand.B ] ~classes:[ Nra.Single ] ~ma_grain:128
    ~shaping:(Fixed_shapes [ square ]) ~flex:Low ~fusion:false

let gemmini =
  base ~name:"Gemmini" ~anchors:Operand.all ~classes:[ Nra.Single ] ~ma_grain:128
    ~shaping:(Fixed_shapes [ square ]) ~flex:Low ~fusion:false

let planaria =
  base ~name:"Planaria" ~anchors:[ Operand.B ] ~classes:Nra.all ~ma_grain:16
    ~shaping:(Grain 16) ~flex:High ~fusion:false

let unfcu =
  base ~name:"UnfCU" ~anchors:Operand.all ~classes:Nra.all ~ma_grain:64
    ~shaping:(Fixed_shapes cu_shapes) ~flex:Mid ~fusion:false

let fusecu =
  base ~name:"FuseCU" ~anchors:Operand.all ~classes:Nra.all ~ma_grain:64
    ~shaping:(Fixed_shapes cu_shapes) ~flex:Mid ~fusion:true

let all = [ tpu_v4i; gemmini; planaria; unfcu; fusecu ]

let total_pes t = t.pe_dim * t.pe_dim * t.num_cus

let peak_macs_per_cycle = total_pes

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = target) all

let flex_name = function Low -> "low" | Mid -> "middle" | High -> "high"

let attribute_header =
  [ "Platform"; "Stationary Flex."; "Tiling Flex."; "Tensor Fusion" ]

let attribute_rows () =
  List.map
    (fun p ->
      [ p.name;
        (if List.length p.anchors > 1 then "yes" else "no");
        flex_name p.flex;
        (if p.fusion then "yes" else "no") ])
    all
