lib/arch/ablation.mli: Fusecu_loopnest Fusecu_workloads Platform
