lib/arch/area.ml: Format List Printf
