lib/arch/shape.ml: Format
