lib/arch/ablation.ml: Fusecu_loopnest Fusecu_workloads List Perf Platform
