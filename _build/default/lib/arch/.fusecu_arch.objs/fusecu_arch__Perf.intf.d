lib/arch/perf.mli: Buffer Format Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_workloads Intra Matmul Mode Platform Workload
