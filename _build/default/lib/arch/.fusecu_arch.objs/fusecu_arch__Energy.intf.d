lib/arch/energy.mli: Format Perf
