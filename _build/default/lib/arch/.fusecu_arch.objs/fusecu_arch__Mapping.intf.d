lib/arch/mapping.mli: Buffer Fusecu_core Fusecu_loopnest Fusecu_tensor Fused Matmul Nra Operand Platform Principles Schedule
