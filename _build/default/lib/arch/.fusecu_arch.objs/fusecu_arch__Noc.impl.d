lib/arch/noc.ml: Dim Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Mapping Platform Schedule Tiling
