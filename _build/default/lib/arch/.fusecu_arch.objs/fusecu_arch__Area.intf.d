lib/arch/area.mli: Format
