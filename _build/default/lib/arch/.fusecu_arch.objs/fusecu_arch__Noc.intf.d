lib/arch/noc.mli: Fusecu_loopnest Fused Platform
