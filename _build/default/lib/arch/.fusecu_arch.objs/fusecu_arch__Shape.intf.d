lib/arch/shape.mli: Format
