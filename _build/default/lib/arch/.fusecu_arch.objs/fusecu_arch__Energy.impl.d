lib/arch/energy.ml: Format Perf Platform
