lib/arch/platform.mli: Fusecu_core Fusecu_tensor Nra Operand Shape
