lib/arch/schedule_sim.mli: Perf Platform
