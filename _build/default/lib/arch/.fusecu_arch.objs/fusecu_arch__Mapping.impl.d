lib/arch/mapping.ml: Arith Cost Dim Float Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_util Fused List Matmul Nra Operand Platform Principles Schedule Shape Tiling
