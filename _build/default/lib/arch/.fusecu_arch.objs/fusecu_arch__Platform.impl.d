lib/arch/platform.ml: Fusecu_core Fusecu_tensor List Nra Operand Shape String
