lib/arch/schedule_sim.ml: Array Float List Perf Platform
