type t = { rows : int; cols : int }

let make ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Shape.make: dims must be >= 1";
  { rows; cols }

let area t = t.rows * t.cols

let transpose t = { rows = t.cols; cols = t.rows }

let pp fmt t = Format.fprintf fmt "%dx%d" t.rows t.cols
