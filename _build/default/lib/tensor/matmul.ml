type t = { name : string; m : int; k : int; l : int }

let make ?(name = "mm") ~m ~k ~l () =
  if m < 1 || k < 1 || l < 1 then invalid_arg "Matmul.make: dimensions must be >= 1";
  { name; m; k; l }

let pp fmt t =
  Format.fprintf fmt "%s: A(%d,%d) x B(%d,%d) = C(%d,%d)" t.name t.m t.k t.k t.l
    t.m t.l

let to_string t = Format.asprintf "%a" pp t

let equal a b = a.m = b.m && a.k = b.k && a.l = b.l && String.equal a.name b.name

let dim t = function Dim.M -> t.m | Dim.K -> t.k | Dim.L -> t.l

let dims_sorted t =
  let with_size = List.map (fun d -> (d, dim t d)) Dim.all in
  List.stable_sort (fun (_, a) (_, b) -> compare a b) with_size

let min_dim t =
  match dims_sorted t with d :: _ -> d | [] -> assert false

let operand_size t op =
  let d1, d2 = Operand.dims op in
  dim t d1 * dim t d2

let operands_sorted t =
  let with_size = List.map (fun op -> (op, operand_size t op)) Operand.all in
  List.stable_sort (fun (_, a) (_, b) -> compare a b) with_size

let min_operand t =
  match operands_sorted t with op :: _ -> op | [] -> assert false

let macs t = t.m * t.k * t.l

let ideal_ma t = (t.m * t.k) + (t.k * t.l) + (t.m * t.l)

let transpose t = { t with m = t.l; l = t.m }
