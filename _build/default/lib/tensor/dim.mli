(** The three loop dimensions of a matrix multiplication
    [A(M,K) x B(K,L) = C(M,L)].

    The paper's principles are phrased over these named dimensions; all
    tiling, scheduling and mapping structures index by [Dim.t]. *)

type t = M | K | L

val all : t list
(** [[M; K; L]] in canonical order. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int

val other : t -> t -> t
(** [other a b] is the third dimension, distinct from [a] and [b].
    Requires [a <> b]. *)

val pairs : (t * t) list
(** The three unordered dimension pairs [(M,K); (K,L); (M,L)], i.e. the
    index sets of operands A, B and C respectively. *)
