(** The three operand tensors of a matrix multiplication
    [A(M,K) x B(K,L) = C(M,L)].

    Dataflow terminology from the paper: "output-stationary" keeps [C]
    resident, "input-stationary" keeps [A], "weight-stationary" keeps
    [B]. *)

type t = A | B | C

val all : t list
(** [[A; B; C]]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int

val dims : t -> Dim.t * Dim.t
(** The index dimensions of an operand: [A -> (M, K)], [B -> (K, L)],
    [C -> (M, L)]. *)

val free_dim : t -> Dim.t
(** The one dimension an operand does {e not} depend on:
    [A -> L], [B -> M], [C -> K]. A tile of the operand can stay
    resident while only this dimension's loop advances. *)

val uses_dim : t -> Dim.t -> bool
(** Whether the operand is indexed by the given dimension. *)

val of_free_dim : Dim.t -> t
(** Inverse of [free_dim]. *)

val with_dim : Dim.t -> t list
(** The two operands indexed by a dimension, in [A < B < C] order. *)

val stationary_name : t -> string
(** Conventional dataflow name when this operand is kept stationary:
    ["IS"] for [A], ["WS"] for [B], ["OS"] for [C]. *)
