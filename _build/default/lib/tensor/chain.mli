(** A chain of matrix multiplications in which the output of each
    operator is the left-hand ([A]) input of the next:
    [A x B = C], [C x D = E], ... — the structure that operator fusion
    (Fig. 4/5 of the paper) acts on.

    Attention ([Q.K^T -> .V]) and feed-forward ([x.W1 -> .W2]) blocks
    both produce chains of this shape. *)

type t = private Matmul.t list
(** Non-empty; consecutive operators satisfy
    [next.m = prev.m] and [next.k = prev.l]. *)

val make : Matmul.t list -> (t, string) result
(** Validate the chaining constraints. *)

val make_exn : Matmul.t list -> t
(** Like {!make} but raises [Invalid_argument] on bad input. *)

val of_dims : ?name:string -> m:int -> int list -> t
(** [of_dims ~m [k0; k1; ...; kn]] builds the chain
    [(m,k0,k1); (m,k1,k2); ...]; [ks] must have at least two
    elements. *)

val ops : t -> Matmul.t list

val length : t -> int

val pairs : t -> (Matmul.t * Matmul.t) list
(** Consecutive operator pairs — the candidate fusion sites. *)

val intermediates : t -> int list
(** Element sizes of the intermediate tensors (the [C] of every operator
    except the last). *)

val total_macs : t -> int

val ideal_ma_unfused : t -> int
(** Lower-bound traffic when every operator runs separately: each
    intermediate is written by one operator and read back by the next. *)

val ideal_ma_fused : t -> int
(** Lower-bound traffic when all intermediates stay on chip. *)

val pp : Format.formatter -> t -> unit
