type t = A | B | C

let all = [ A; B; C ]

let to_string = function A -> "A" | B -> "B" | C -> "C"

let pp fmt x = Format.pp_print_string fmt (to_string x)

let equal (a : t) b = a = b

let compare (a : t) b = Stdlib.compare a b

let dims = function
  | A -> (Dim.M, Dim.K)
  | B -> (Dim.K, Dim.L)
  | C -> (Dim.M, Dim.L)

let free_dim = function A -> Dim.L | B -> Dim.M | C -> Dim.K

let uses_dim op d =
  let d1, d2 = dims op in
  Dim.equal d d1 || Dim.equal d d2

let of_free_dim = function Dim.L -> A | Dim.M -> B | Dim.K -> C

let with_dim d = List.filter (fun op -> uses_dim op d) all

let stationary_name = function A -> "IS" | B -> "WS" | C -> "OS"
