(** A matrix-multiplication operator [A(M,K) x B(K,L) = C(M,L)].

    This is the tensor operator the paper's principles are derived on.
    Sizes are in {e elements}; the byte width of an element is a property
    of the buffer model, not of the operator. *)

type t = private { name : string; m : int; k : int; l : int }

val make : ?name:string -> m:int -> k:int -> l:int -> unit -> t
(** Build an operator. All dimensions must be [>= 1]. *)

val pp : Format.formatter -> t -> unit
(** e.g. [bert_qkv: A(1024,768) x B(768,768) = C(1024,768)]. *)

val to_string : t -> string

val equal : t -> t -> bool

val dim : t -> Dim.t -> int
(** Size of a dimension. *)

val dims_sorted : t -> (Dim.t * int) list
(** Dimensions with sizes, smallest size first (ties in [M < K < L]
    order). *)

val min_dim : t -> Dim.t * int
(** The smallest dimension — the paper's [D_min]. *)

val operand_size : t -> Operand.t -> int
(** Number of elements of an operand tensor: [A = M*K], [B = K*L],
    [C = M*L]. *)

val operands_sorted : t -> (Operand.t * int) list
(** Operands with sizes, smallest first (ties in [A < B < C] order). *)

val min_operand : t -> Operand.t * int
(** The smallest operand tensor — the paper's [Tensor_min]. *)

val macs : t -> int
(** Multiply-accumulate count [M*K*L]. *)

val ideal_ma : t -> int
(** The communication lower bound with an unbounded buffer: every tensor
    touched exactly once, [MK + KL + ML] element accesses. *)

val transpose : t -> t
(** Swap the roles of [A] and [B] (i.e. compute [C^T = B^T x A^T]):
    exchanges [M] and [L]. Memory behaviour is symmetric under this
    operation, which tests exploit. *)
