type t = Matmul.t list

let validate ops =
  let rec check = function
    | (a : Matmul.t) :: (b : Matmul.t) :: rest ->
      if b.m <> a.m then
        Error
          (Printf.sprintf "chain: %s.M = %d but %s.M = %d" a.name a.m b.name b.m)
      else if b.k <> a.l then
        Error
          (Printf.sprintf "chain: %s.L = %d but %s.K = %d" a.name a.l b.name b.k)
      else check (b :: rest)
    | [ _ ] | [] -> Ok ()
  in
  match ops with
  | [] -> Error "chain: empty"
  | _ -> ( match check ops with Ok () -> Ok ops | Error e -> Error e)

let make ops = validate ops

let make_exn ops =
  match make ops with Ok t -> t | Error e -> invalid_arg e

let of_dims ?(name = "chain") ~m ks =
  match ks with
  | k0 :: (_ :: _ as rest) ->
    let rec build i k = function
      | [] -> []
      | l :: rest ->
        Matmul.make ~name:(Printf.sprintf "%s.%d" name i) ~m ~k ~l ()
        :: build (i + 1) l rest
    in
    make_exn (build 0 k0 rest)
  | _ -> invalid_arg "Chain.of_dims: need at least two entries in ks"

let ops t = t

let length = List.length

let rec pairs = function
  | a :: (b :: _ as rest) -> (a, b) :: pairs rest
  | [ _ ] | [] -> []

let intermediates t =
  match t with
  | [] -> []
  | _ :: rest_ops ->
    (* C of op i equals A of op i+1; enumerate all but the last output. *)
    List.map2
      (fun (prev : Matmul.t) _ -> prev.m * prev.l)
      (List.filteri (fun i _ -> i < List.length t - 1) t)
      rest_ops

let total_macs t = Fusecu_util.Arith.sum (List.map Matmul.macs t)

let ideal_ma_unfused t = Fusecu_util.Arith.sum (List.map Matmul.ideal_ma t)

let ideal_ma_fused t =
  (* Every intermediate is counted twice in the unfused bound (written
     once, read once); fusion removes both accesses. *)
  ideal_ma_unfused t - (2 * Fusecu_util.Arith.sum (intermediates t))

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt " ->@ ")
    Matmul.pp fmt t
