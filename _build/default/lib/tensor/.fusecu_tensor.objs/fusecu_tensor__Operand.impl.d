lib/tensor/operand.ml: Dim Format List Stdlib
