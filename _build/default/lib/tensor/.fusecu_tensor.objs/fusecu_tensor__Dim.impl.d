lib/tensor/dim.ml: Format Stdlib
