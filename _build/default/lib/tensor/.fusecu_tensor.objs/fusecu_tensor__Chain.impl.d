lib/tensor/chain.ml: Format Fusecu_util List Matmul Printf
