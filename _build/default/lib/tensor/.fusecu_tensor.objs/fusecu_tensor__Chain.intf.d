lib/tensor/chain.mli: Format Matmul
