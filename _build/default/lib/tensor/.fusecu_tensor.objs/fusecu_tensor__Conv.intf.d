lib/tensor/conv.mli: Format Matmul
