lib/tensor/conv.ml: Format Matmul
