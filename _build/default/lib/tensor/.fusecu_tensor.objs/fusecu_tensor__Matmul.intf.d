lib/tensor/matmul.mli: Dim Format Operand
