lib/tensor/operand.mli: Dim Format
