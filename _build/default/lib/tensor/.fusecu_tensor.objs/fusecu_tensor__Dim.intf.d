lib/tensor/dim.mli: Format
