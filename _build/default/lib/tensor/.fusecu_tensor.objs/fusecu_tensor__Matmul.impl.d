lib/tensor/matmul.ml: Dim Format List Operand String
