type t = M | K | L

let all = [ M; K; L ]

let to_string = function M -> "M" | K -> "K" | L -> "L"

let pp fmt d = Format.pp_print_string fmt (to_string d)

let equal (a : t) b = a = b

let compare (a : t) b = Stdlib.compare a b

let other a b =
  match (a, b) with
  | (M, K) | (K, M) -> L
  | (M, L) | (L, M) -> K
  | (K, L) | (L, K) -> M
  | (M, M) | (K, K) | (L, L) -> invalid_arg "Dim.other: equal dimensions"

let pairs = [ (M, K); (K, L); (M, L) ]
