type t = {
  name : string;
  n : int;
  c : int;
  h : int;
  w : int;
  k : int;
  r : int;
  s : int;
  stride : int;
  padding : int;
}

let make ?(name = "conv") ?(stride = 1) ?(padding = 0) ~n ~c ~h ~w ~k ~r ~s () =
  if n < 1 || c < 1 || h < 1 || w < 1 || k < 1 || r < 1 || s < 1 then
    invalid_arg "Conv.make: extents must be >= 1";
  if stride < 1 then invalid_arg "Conv.make: stride must be >= 1";
  if padding < 0 then invalid_arg "Conv.make: padding must be >= 0";
  if r > h + (2 * padding) || s > w + (2 * padding) then
    invalid_arg "Conv.make: kernel larger than the padded input";
  { name; n; c; h; w; k; r; s; stride; padding }

let output_height t = ((t.h + (2 * t.padding) - t.r) / t.stride) + 1

let output_width t = ((t.w + (2 * t.padding) - t.s) / t.stride) + 1

let to_matmul t =
  Matmul.make ~name:(t.name ^ ".im2col")
    ~m:(t.n * output_height t * output_width t)
    ~k:(t.c * t.r * t.s)
    ~l:t.k ()

let macs t = Matmul.macs (to_matmul t)

let input_elements t = t.n * t.c * t.h * t.w

let im2col_inflation t =
  let lowered = t.n * output_height t * output_width t * (t.c * t.r * t.s) in
  float_of_int lowered /. float_of_int (input_elements t)

let pp fmt t =
  Format.fprintf fmt "%s: n=%d c=%d %dx%d -> k=%d %dx%d kernel stride=%d pad=%d"
    t.name t.n t.c t.h t.w t.k t.r t.s t.stride t.padding
