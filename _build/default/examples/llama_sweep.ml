(* LLaMA2 sequence-length sweep across platforms (the paper's Fig. 11
   scenario as a library-user workflow).

   Run with:  dune exec examples/llama_sweep.exe

   For each sequence length, evaluates one decoder layer on TPUv4i and
   FuseCU, printing traffic, cycles and utilization side by side. The
   attention intermediate grows with seq^2, so FuseCU's fusion advantage
   widens with context length. *)

open Fusecu_loopnest
open Fusecu_workloads
open Fusecu_arch
open Fusecu_util

let () =
  let buf = Buffer.of_kib 512 in
  let t =
    Table.create
      [ "Seq"; "TPUv4i MA"; "FuseCU MA"; "saving"; "TPUv4i cycles";
        "FuseCU cycles"; "speedup" ]
  in
  let rows =
    List.map
      (fun seq ->
        let w = Workload.of_model (Sweep.llama2_at seq) in
        let eval p =
          match Perf.eval_workload p buf w with
          | Ok e -> e
          | Error e -> failwith e
        in
        let tpu = eval Platform.tpu_v4i and fusecu = eval Platform.fusecu in
        [ string_of_int seq;
          Units.pp_count tpu.traffic;
          Units.pp_count fusecu.traffic;
          Units.pp_pct (1. -. Perf.ma_ratio fusecu tpu);
          Units.pp_count tpu.cycles;
          Units.pp_count fusecu.cycles;
          Units.pp_ratio (Perf.speedup fusecu tpu) ])
      Sweep.seq_lengths
  in
  Table.print (Table.add_rows t rows);
  print_newline ();
  print_endline
    "The saving grows with sequence length: the seq x seq attention";
  print_endline
    "intermediate dominates traffic, and fusion keeps it on-chip."
