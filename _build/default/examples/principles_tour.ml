(* A tour of the four principles on one operator.

   Run with:  dune exec examples/principles_tour.exe

   Sweeps the buffer from tiny to large for a single matmul and shows
   the dataflow the principles choose at each point, the memory access
   it costs, and how the choice tracks the regime table of
   Sec. III-A4. Then demonstrates Principle 4 on a same-class and a
   cross-class fusion site. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_util

let op = Matmul.make ~name:"demo" ~m:512 ~k:256 ~l:384 ()

let () =
  Format.printf "operator: %a@." Matmul.pp op;
  let th = Regime.thresholds op in
  Printf.printf
    "regime thresholds: tiny <= %d < small <= %d < medium <= %d < large\n\n"
    th.tiny_max th.small_max th.medium_max;

  let t =
    Table.create
      [ "Buffer"; "Regime"; "Chosen dataflow"; "Schedule"; "MA"; "vs bound" ]
  in
  let rows =
    List.map
      (fun bytes ->
        let buf = Buffer.make bytes in
        let plan = Intra.optimize_exn op buf in
        [ Units.pp_bytes bytes;
          Regime.to_string plan.regime;
          Nra.dataflow_to_string plan.dataflow;
          Schedule.to_string plan.schedule;
          Units.pp_count (Intra.ma plan);
          Printf.sprintf "%.2fx" (Intra.redundancy plan) ])
      [ 1024; 4096; 16384; 40000; 90000; 160000; 600000 ]
  in
  Table.print (Table.add_rows t rows);

  print_newline ();
  print_endline "Principle 4 on fusion sites:";
  let same_class =
    Fused.make_pair_exn
      (Matmul.make ~name:"mm1" ~m:256 ~k:32 ~l:256 ())
      (Matmul.make ~name:"mm2" ~m:256 ~k:256 ~l:32 ())
  in
  let show pair buf =
    match Fusion.plan_pair pair buf with
    | Ok d -> Format.printf "  %a@." Fusion.pp_decision d
    | Error e -> Format.printf "  error: %s@." e
  in
  show same_class (Buffer.of_kib 32);
  let cross_class =
    Fused.make_pair_exn
      (Matmul.make ~name:"mm1" ~m:4096 ~k:2048 ~l:64 ())
      (Matmul.make ~name:"mm2" ~m:4096 ~k:64 ~l:32 ())
  in
  show cross_class (Buffer.of_kib 64)
