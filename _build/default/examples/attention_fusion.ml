(* Operator fusion on a transformer attention block.

   Run with:  dune exec examples/attention_fusion.exe

   The attention score/context pair (Q.K^T = S, then S.V = O) is the
   workload the paper's introduction motivates: the intermediate S is a
   seq x seq matrix that dwarfs its inputs, so keeping it on-chip is the
   single biggest traffic saving available. This example plans the pair
   with Principle 4, shows the chosen Fig. 4 pattern, and compares
   against running the operators separately. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

let () =
  let seq = 1024 and head_dim = 64 in
  let scores = Matmul.make ~name:"q.kT" ~m:seq ~k:head_dim ~l:seq () in
  let context = Matmul.make ~name:"s.v" ~m:seq ~k:seq ~l:head_dim () in
  let chain = Chain.make_exn [ scores; context ] in
  let buffer = Buffer.of_kib 512 in

  Format.printf "chain: %a@." Chain.pp chain;
  Format.printf "intermediate S holds %s elements@."
    (Fusecu_util.Units.pp_count (List.hd (Chain.intermediates chain)));

  (* per-operator classes drive Principle 4 *)
  List.iter
    (fun op ->
      let plan = Intra.optimize_exn op buffer in
      Format.printf "%s runs %a when alone@." op.Matmul.name Nra.pp_dataflow
        plan.dataflow)
    (Chain.ops chain);

  let pair = Fused.make_pair_exn scores context in
  (match Fusion.plan_pair pair buffer with
  | Error e -> failwith e
  | Ok (Fusion.No_fuse { why; _ }) ->
    Format.printf "not fused: %s@." why
  | Ok (Fusion.Fuse { pattern; fused; traffic }) ->
    Format.printf "@[<v>fused with pattern %a:@ producer %a@ consumer %a@]@."
      Fusion.pp_pattern pattern Schedule.pp fused.Fused.producer Schedule.pp
      fused.Fused.consumer;
    let unfused =
      Intra.ma (Intra.optimize_exn scores buffer)
      + Intra.ma (Intra.optimize_exn context buffer)
    in
    Format.printf "traffic: fused %s vs unfused %s -> %s saved@."
      (Fusecu_util.Units.pp_count traffic)
      (Fusecu_util.Units.pp_count unfused)
      (Fusecu_util.Units.pp_pct
         (1. -. (float_of_int traffic /. float_of_int unfused)));
    Format.printf "fused lower bound: %s (achieved: %s)@."
      (Fusecu_util.Units.pp_count (Lower_bound.chain_fused chain))
      (Fusecu_util.Units.pp_count traffic));

  (* a cross-class pair, for contrast: Principle 4 refuses *)
  print_newline ();
  let big = Matmul.make ~name:"big" ~m:8192 ~k:4096 ~l:64 () in
  let tiny = Matmul.make ~name:"tiny" ~m:8192 ~k:64 ~l:32 () in
  let cross = Fused.make_pair_exn big tiny in
  match Fusion.plan_pair cross (Buffer.of_kib 64) with
  | Ok (Fusion.No_fuse { why; _ }) ->
    Format.printf "cross-class pair: %s@." why
  | Ok (Fusion.Fuse _) -> print_endline "cross-class pair fused (unexpected here)"
  | Error e -> failwith e
