(* Extending the principles to convolution via im2col.

   Run with:  dune exec examples/conv_lowering.exe

   The paper notes the principles generalize to any operator expressible
   as nested for-loops. The standard route for 2-D convolution is the
   im2col lowering to a matmul; this example lowers a ResNet-style layer
   and an attention-era pointwise convolution, optimizes both, and
   reports the inflation the lowering costs on the input tensor. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

let describe conv =
  let mm = Conv.to_matmul conv in
  Format.printf "%a@." Conv.pp conv;
  Format.printf "  lowered: %a@." Matmul.pp mm;
  Format.printf "  im2col inflation of the input: %.2fx@."
    (Conv.im2col_inflation conv);
  let buffer = Buffer.of_kib 512 in
  match Intra.optimize mm buffer with
  | Error e -> Format.printf "  %s@." e
  | Ok plan ->
    Format.printf "  dataflow: %a, MA %s (%.2fx of the lower bound)@.@."
      Nra.pp_dataflow plan.dataflow
      (Fusecu_util.Units.pp_count (Intra.ma plan))
      (Intra.redundancy plan)

let () =
  describe
    (Conv.make ~name:"resnet-stem" ~n:8 ~c:3 ~h:224 ~w:224 ~k:64 ~r:7 ~s:7
       ~stride:2 ~padding:3 ());
  describe
    (Conv.make ~name:"resnet-3x3" ~n:8 ~c:128 ~h:28 ~w:28 ~k:128 ~r:3 ~s:3
       ~padding:1 ());
  describe
    (Conv.make ~name:"pointwise" ~n:8 ~c:256 ~h:14 ~w:14 ~k:1024 ~r:1 ~s:1 ())
