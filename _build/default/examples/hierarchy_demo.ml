(* Applying the principles at every level of the memory hierarchy.

   Run with:  dune exec examples/hierarchy_demo.exe

   Sec. IV-B of the paper re-derives its buffer-size regimes at the
   register level (BS = N^2) to conclude that untiled dimensions only
   ever need to reach 2N. This example builds the two-level
   DRAM -> buffer -> registers stack, optimizes one attention operator
   and one projection through both levels, and shows the derivation
   that sizes FuseCU's adaptive array. *)

open Fusecu_tensor
open Fusecu_core
open Fusecu_hierarchy

let () =
  let stack = Stack.tpu_like ~pe_dim:128 () in
  Format.printf "hierarchy:@.";
  List.iter (fun l -> Format.printf "  %a@." Level.pp l) (Stack.levels stack);
  print_newline ();

  List.iter
    (fun op ->
      match Stack.optimize stack op with
      | Ok plan -> Format.printf "%a@.@." Stack.pp_plan plan
      | Error e -> Printf.printf "%s\n" e)
    [ Matmul.make ~name:"attention-scores" ~m:1024 ~k:64 ~l:1024 ();
      Matmul.make ~name:"projection" ~m:16384 ~k:768 ~l:768 () ];

  (* the 2N derivation, programmatically *)
  let n = 128 in
  Printf.printf "register file of a %dx%d CU holds %d elements\n" n n
    (Register_level.register_capacity ~pe_dim:n);
  Printf.printf
    "untiling is register-optimal only when Dmin^2/4 < N^2, i.e. Dmin < %d\n"
    (Register_level.max_useful_untiled_dim ~pe_dim:n);
  List.iter
    (fun (label, op) ->
      Printf.printf "  %-18s Dmin-driven untiling %s; covered by the 2N array: %b\n"
        label
        (if Register_level.untiling_profitable ~pe_dim:n op then "useful"
         else "not useful")
        (Register_level.supported_by_fusecu ~pe_dim:n op))
    [ ("head_dim 64", Matmul.make ~m:1024 ~k:64 ~l:1024 ());
      ("head_dim 128", Matmul.make ~m:4096 ~k:128 ~l:4096 ());
      ("hidden 768", Matmul.make ~m:16384 ~k:768 ~l:768 ()) ]
