(* Quickstart: optimize the dataflow of one matrix multiplication.

   Run with:  dune exec examples/quickstart.exe

   The scenario is the paper's own worked example (Sec. III-A): a BERT
   projection matmul A(1024,768) x B(768,768) = C(1024,768) against a
   512 KB on-chip buffer. The principles classify the buffer regime,
   pick the Two-NRA dataflow analytically, and the resulting memory
   access matches the design-space-searched optimum. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core

let () =
  (* 1. describe the operator and the hardware buffer *)
  let op = Matmul.make ~name:"bert-projection" ~m:1024 ~k:768 ~l:768 () in
  let buffer = Buffer.of_kib 512 in
  Format.printf "operator: %a@." Matmul.pp op;
  Format.printf "buffer:   %a@." Buffer.pp buffer;

  (* 2. which buffer regime are we in? (Sec. III-A4) *)
  let regime = Regime.classify op buffer in
  Format.printf "regime:   %a -> expect %s@." Regime.pp regime
    (String.concat " or "
       (List.map Nra.to_string (Regime.expected_classes regime)));

  (* 3. one-shot optimization via the principles *)
  let plan = Intra.optimize_exn ~mode:Mode.Divisors op buffer in
  Format.printf "@[<v>chosen dataflow: %a@ schedule: %a@ cost: %a@]@."
    Nra.pp_dataflow plan.dataflow Schedule.pp plan.schedule Cost.pp plan.cost;

  (* 4. sanity-check against exhaustive design-space exploration *)
  (match Fusecu_dse.Exhaustive.search op buffer with
  | Some searched ->
    Format.printf "searched optimum: %s (over %d schedules) -> %s@."
      (Fusecu_util.Units.pp_count searched.cost.Cost.total)
      searched.explored
      (if searched.cost.Cost.total = Intra.ma plan then
         "the principles found it in one shot"
       else "principles differ from the searched optimum")
  | None -> print_endline "search infeasible");

  (* 5. how close are we to the unbounded-buffer lower bound? *)
  Format.printf "communication lower bound (unbounded buffer): %s; achieved %s (%.2fx)@."
    (Fusecu_util.Units.pp_count (Lower_bound.intra op))
    (Fusecu_util.Units.pp_count (Intra.ma plan))
    (Intra.redundancy plan)
