(* Driving the cycle-level FuseCU array model.

   Run with:  dune exec examples/fusecu_sim_demo.exe

   Executes the two fused-dataflow mappings of the paper's Fig. 5 on
   the structural simulator (XS PEs, systolic movement, inter-CU
   composition) and verifies every result against a reference matrix
   product:

   - tile fusion: A x B accumulates output-stationary, the result is
     promoted into the stationary registers (no extra storage), and the
     second matmul streams against it input-stationary;
   - column fusion: the cluster splits into an IS producer half and an
     OS consumer half with intermediate columns streaming between
     them. *)

open Fusecu_rtl

let n = 32

let cluster = Fusecu_sim.create ~n ()

let show name result reference =
  match result with
  | Error e -> Format.printf "%-24s error: %s@." name e
  | Ok (product, cycles) ->
    Format.printf "%-24s %6d cycles  %s@." name cycles
      (if Matrix.equal product reference then "matches reference"
       else "MISMATCH")

let () =
  Format.printf "FuseCU cluster: four %dx%d compute units@.@." n n;

  (* the paper's tile-fusion example shape: outer product then row
     reduction (Single-NRA fused dataflow) *)
  let a = Matrix.random ~seed:1 ~rows:n ~cols:8 () in
  let b = Matrix.random ~seed:2 ~rows:8 ~cols:n () in
  let d = Matrix.random ~seed:3 ~rows:n ~cols:8 () in
  let reference = Matrix.mul (Matrix.mul a b) d in
  show "tile fusion (1 CU)"
    (Fusecu_sim.run_tile_fused cluster Fusecu_sim.Square ~a ~b ~d)
    reference;

  (* the same chain mapped across all four CUs as a 2N x 2N square *)
  let a2 = Matrix.random ~seed:4 ~rows:(2 * n) ~cols:8 () in
  let b2 = Matrix.random ~seed:5 ~rows:8 ~cols:(2 * n) () in
  let d2 = Matrix.random ~seed:6 ~rows:(2 * n) ~cols:8 () in
  show "tile fusion (4 CUs)"
    (Fusecu_sim.run_tile_fused cluster Fusecu_sim.Big_square ~a:a2 ~b:b2 ~d:d2)
    (Matrix.mul (Matrix.mul a2 b2) d2);

  (* the paper's column-fusion example shape: row reduction then outer
     product (Two-NRA fused dataflow) *)
  let a3 = Matrix.random ~seed:7 ~rows:n ~cols:n () in
  let b3 = Matrix.random ~seed:8 ~rows:n ~cols:48 () in
  let d3 = Matrix.random ~seed:9 ~rows:48 ~cols:n () in
  show "column fusion (2 halves)"
    (Fusecu_sim.run_column_fused cluster Fusecu_sim.Square ~a:a3 ~b:b3 ~d:d3)
    (Matrix.mul (Matrix.mul a3 b3) d3);

  (* unfused back-to-back runs for the cycle comparison *)
  (match
     ( Fusecu_sim.run_mm cluster Fusecu_sim.Square ~a ~b,
       Fusecu_sim.run_tile_fused cluster Fusecu_sim.Square ~a ~b ~d )
   with
  | Ok (c, c1), Ok (_, fused_cycles) ->
    (match Fusecu_sim.run_mm cluster Fusecu_sim.Square ~a:c ~b:d with
    | Ok (_, c2) ->
      Format.printf
        "@.unfused: %d + %d cycles plus an off-chip round trip of %d elements;@."
        c1 c2
        (Matrix.rows c * Matrix.cols c);
      Format.printf "fused:   %d cycles with the intermediate promoted in place@."
        fused_cycles
    | Error e -> print_endline e)
  | Error e, _ | _, Error e -> print_endline e);

  (* every logical configuration of the cluster *)
  Format.printf "@.supported array configurations:@.";
  List.iter
    (fun config ->
      let rows, cols = Fusecu_sim.logical_shape cluster config in
      Format.printf "  %-22s -> %4dx%-4d (%d CUs)@."
        (Fusecu_sim.config_name config)
        rows cols
        (Fusecu_sim.cus_used config))
    Fusecu_sim.all_configs
