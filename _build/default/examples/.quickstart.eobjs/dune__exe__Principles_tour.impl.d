examples/principles_tour.ml: Buffer Format Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Fusion Intra List Matmul Nra Printf Regime Schedule Table Units
