examples/attention_fusion.ml: Buffer Chain Format Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_util Fused Fusion Intra List Lower_bound Matmul Nra Schedule
