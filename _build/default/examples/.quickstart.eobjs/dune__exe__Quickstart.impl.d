examples/quickstart.ml: Buffer Cost Format Fusecu_core Fusecu_dse Fusecu_loopnest Fusecu_tensor Fusecu_util Intra List Lower_bound Matmul Mode Nra Regime Schedule String
