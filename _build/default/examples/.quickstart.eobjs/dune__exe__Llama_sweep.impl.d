examples/llama_sweep.ml: Buffer Fusecu_arch Fusecu_loopnest Fusecu_util Fusecu_workloads List Perf Platform Sweep Table Units Workload
