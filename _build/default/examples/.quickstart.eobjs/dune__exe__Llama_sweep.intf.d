examples/llama_sweep.mli:
