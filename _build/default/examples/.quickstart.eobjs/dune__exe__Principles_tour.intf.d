examples/principles_tour.mli:
