examples/quickstart.mli:
