examples/conv_lowering.ml: Buffer Conv Format Fusecu_core Fusecu_loopnest Fusecu_tensor Fusecu_util Intra Matmul Nra
