examples/fusecu_sim_demo.mli:
