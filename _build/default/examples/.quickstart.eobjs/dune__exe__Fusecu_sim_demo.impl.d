examples/fusecu_sim_demo.ml: Format Fusecu_rtl Fusecu_sim List Matrix
