examples/conv_lowering.mli:
