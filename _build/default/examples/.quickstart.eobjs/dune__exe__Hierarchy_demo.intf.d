examples/hierarchy_demo.mli:
