examples/hierarchy_demo.ml: Format Fusecu_core Fusecu_hierarchy Fusecu_tensor Level List Matmul Printf Register_level Stack
