examples/attention_fusion.mli:
