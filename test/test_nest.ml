(* The projective loop-nest IR (lib/nest) against the legacy matmul
   stack and against its own simulator.

   The load-bearing locks:
   - on the MM instance, footprint/eval are bit-identical to
     Tiling.footprint/Cost.eval over entire schedule spaces;
   - Search.exhaustive returns the legacy Exhaustive.search winner
     (same tiles, same cost) including the PR 5 counterexample corpus;
   - the analytic cost equals resident-tile simulation on every nest
     kind (conv2d windows, batched/grouped MM, fused attention). *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_nest

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let mm_make ~m ~k ~l = Matmul.make ~name:"t" ~m ~k ~l ()

let all_tilings mm =
  let open Matmul in
  List.concat_map
    (fun tm ->
      List.concat_map
        (fun tk ->
          List.map
            (fun tl -> Tiling.make mm ~m:tm ~k:tk ~l:tl)
            (Fusecu_util.Arith.range 1 mm.l))
        (Fusecu_util.Arith.range 1 mm.k))
    (Fusecu_util.Arith.range 1 mm.m)

let per_nth (c : Nest.cost) i = c.Nest.per.(i)

(* legacy per-operand vs nest per-tensor, tensors listed A;B;C *)
let check_cost_identity mm nest tiling order =
  let legacy = Cost.eval mm (Schedule.make tiling order) in
  let s = Lower.schedule_of_mm nest ~tiling ~order in
  let cost = Nest.eval nest s in
  let ctx =
    Printf.sprintf "%s %s" (Tiling.footprint tiling |> string_of_int)
      (Order.to_string order)
  in
  check_int (ctx ^ " total") legacy.Cost.total cost.Nest.total;
  List.iteri
    (fun i (po : Cost.per_operand) ->
      let pn = per_nth cost i in
      check_int (ctx ^ " traffic") po.Cost.traffic pn.Nest.traffic;
      check_int (ctx ^ " fetches") po.Cost.fetches pn.Nest.fetches;
      check_int (ctx ^ " revisit") po.Cost.revisit pn.Nest.revisit)
    [ legacy.Cost.a; legacy.Cost.b; legacy.Cost.c ];
  check_int (ctx ^ " footprint") (Tiling.footprint tiling)
    (Nest.footprint nest s);
  check_bool (ctx ^ " valid") true (Nest.valid nest s);
  cost

let test_mm_cost_identity () =
  List.iter
    (fun mm ->
      let nest = Lower.of_matmul mm in
      check_int "ideal = intra bound" (Matmul.ideal_ma mm) (Bound.ideal nest);
      List.iter
        (fun tiling ->
          List.iter
            (fun order -> ignore (check_cost_identity mm nest tiling order))
            Order.all)
        (all_tilings mm))
    [ mm_make ~m:12 ~k:8 ~l:10; mm_make ~m:7 ~k:3 ~l:4; mm_make ~m:5 ~k:9 ~l:2 ]

(* the simulator agrees with the closed form on ragged MM tiles *)
let test_mm_sim_identity () =
  let mm = mm_make ~m:7 ~k:3 ~l:4 in
  let nest = Lower.of_matmul mm in
  List.iter
    (fun tiling ->
      List.iter
        (fun order ->
          let s = Lower.schedule_of_mm nest ~tiling ~order in
          let cost = Nest.eval nest s in
          let sim = Nsim.eval nest s in
          check_int "sim total" cost.Nest.total sim.Nest.total;
          Array.iteri
            (fun i (pn : Nest.per_tensor) ->
              let ps = per_nth sim i in
              check_int "sim traffic" pn.Nest.traffic ps.Nest.traffic;
              check_int "sim fetches" pn.Nest.fetches ps.Nest.fetches;
              check_int "sim revisit" pn.Nest.revisit ps.Nest.revisit)
            cost.Nest.per)
        Order.all)
    (all_tilings mm)

(* the admissible bound is below every schedule's actual traffic *)
let test_mm_bound_admissible () =
  let mm = mm_make ~m:6 ~k:4 ~l:5 in
  let nest = Lower.of_matmul mm in
  List.iter
    (fun tiling ->
      List.iter
        (fun order ->
          let s = Lower.schedule_of_mm nest ~tiling ~order in
          let cost = Nest.eval nest s in
          let trips = Array.init 3 (fun i -> Nest.trips nest s i) in
          let lb = Bound.penalized nest ~trips in
          check_bool "bound admissible" true (lb <= cost.Nest.total))
        Order.all)
    (all_tilings mm);
  check_int "all-ones trips = ideal" (Bound.ideal nest)
    (Bound.penalized nest ~trips:[| 1; 1; 1 |])

let nest_search_vs_legacy ~lattice mm bytes =
  let buffer = Buffer.make bytes in
  let nest = Lower.of_matmul mm in
  let space_lattice =
    match lattice with
    | Search.All -> Fusecu_dse.Space.All
    | Search.Divisors -> Fusecu_dse.Space.Divisors
    | Search.Pow2 -> Fusecu_dse.Space.Pow2
  in
  let legacy =
    Fusecu_dse.Exhaustive.search ~lattice:space_lattice
      ~pool:Fusecu_util.Pool.sequential mm buffer
  in
  let mine = Search.exhaustive ~lattice nest ~capacity:(Buffer.elements buffer) in
  (match (legacy, mine) with
  | None, None -> ()
  | Some lr, Some nr ->
    let lt = lr.Fusecu_dse.Exhaustive.schedule.Schedule.tiling in
    check_int "best total" lr.Fusecu_dse.Exhaustive.cost.Cost.total
      nr.Search.cost.Nest.total;
    check_int "best tile m" (Tiling.get lt Dim.M) nr.Search.schedule.Nest.tiles.(0);
    check_int "best tile k" (Tiling.get lt Dim.K) nr.Search.schedule.Nest.tiles.(1);
    check_int "best tile l" (Tiling.get lt Dim.L) nr.Search.schedule.Nest.tiles.(2)
  | Some _, None -> Alcotest.fail "nest search missed a feasible schedule"
  | None, Some _ -> Alcotest.fail "nest search invented a schedule");
  (legacy, mine)

let test_mm_search_parity () =
  List.iter
    (fun (m, k, l, bytes) ->
      ignore (nest_search_vs_legacy ~lattice:Search.Divisors
                (mm_make ~m ~k ~l) bytes);
      ignore (nest_search_vs_legacy ~lattice:Search.All (mm_make ~m ~k ~l) bytes))
    [
      (12, 8, 10, 64); (12, 8, 10, 256); (9, 9, 9, 40); (16, 4, 16, 100);
      (6, 6, 6, 3);  (* infeasible for anything but tiny tiles *)
      (5, 7, 11, 30);
    ]

(* PR 5 oracle counterexample corpus, replayed through the nest path *)
let regression_specs =
  [
    (7, 3, 4, 2, 16);
    (2, 2, 2, 2, 7);
    (2, 2, 2, 2, 11);
    (5, 2, 4, 6, 31);
    (5, 2, 4, 6, 33);
    (6, 1, 5, 4, 16);
  ]

let test_regression_corpus () =
  List.iter
    (fun (m, k, l, _l2, bytes) ->
      ignore (nest_search_vs_legacy ~lattice:Search.All (mm_make ~m ~k ~l) bytes))
    regression_specs

(* ---- windows / conv2d ---- *)

let conv_small =
  Conv.make ~name:"c" ~n:1 ~c:2 ~h:6 ~w:6 ~k:3 ~r:3 ~s:3 ()

let test_window_extents () =
  let cv = conv_small in
  let nest = Lower.of_conv cv in
  check_int "points = macs" (Conv.macs cv) (Nest.points nest);
  let input = List.hd nest.Nest.tensors in
  check_int "padded input size"
    (cv.Conv.n * cv.Conv.c
    * (((Conv.output_height cv - 1) * cv.Conv.stride) + Conv.effective_r cv)
    * (((Conv.output_width cv - 1) * cv.Conv.stride) + Conv.effective_s cv))
    (Nest.tensor_size nest input);
  let strided =
    Conv.make ~n:1 ~c:1 ~h:7 ~w:9 ~k:2 ~r:3 ~s:3 ~stride:2 ~dilation:2 ()
  in
  let n2 = Lower.of_conv strided in
  check_int "dilated points = macs" (Conv.macs strided) (Nest.points n2);
  (* halo-free ideal beats the im2col-inflated ideal for overlapping
     kernels *)
  check_bool "direct ideal < im2col ideal" true
    (Bound.ideal nest < Bound.ideal (Lower.of_conv_im2col cv))

(* deterministic schedule sampler for rank-n nests: cycle through each
   axis's divisor candidates with a little LCG, rotate the loop order *)
let sample_schedules nest count =
  let n = Nest.rank nest in
  let cands =
    Array.init n (fun i -> Fusecu_util.Arith.divisors nest.Nest.extents.(i))
  in
  let state = ref 12345 in
  let next m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  List.init count (fun j ->
      let tiles =
        Array.init n (fun i ->
            let c = cands.(i) in
            List.nth c (next (List.length c)))
      in
      let order = Array.init n (fun i -> (i + j) mod n) in
      Nest.schedule_make nest ~tiles ~order)

let check_sim_agrees name nest count =
  List.iter
    (fun s ->
      let cost = Nest.eval nest s in
      let sim = Nsim.eval nest s in
      check_int (name ^ " sim=analytic") cost.Nest.total sim.Nest.total;
      Array.iteri
        (fun i (pn : Nest.per_tensor) ->
          check_int (name ^ " per-tensor") pn.Nest.traffic
            (per_nth sim i).Nest.traffic)
        cost.Nest.per)
    (sample_schedules nest count)

let test_conv_sim () =
  check_sim_agrees "conv" (Lower.of_conv conv_small) 40;
  check_sim_agrees "conv-strided"
    (Lower.of_conv
       (Conv.make ~n:2 ~c:2 ~h:9 ~w:7 ~k:2 ~r:3 ~s:2 ~stride:2 ()))
    40;
  check_sim_agrees "conv-dilated"
    (Lower.of_conv
       (Conv.make ~n:1 ~c:2 ~h:9 ~w:9 ~k:2 ~r:3 ~s:3 ~dilation:2 ()))
    40

let test_bmm_gmm_sim () =
  check_sim_agrees "bmm" (Lower.batched_mm ~b:3 ~m:4 ~k:5 ~l:6 ()) 40;
  check_sim_agrees "gmm"
    (Lower.grouped_mm ~groups:2 ~heads:3 ~m:4 ~k:5 ~l:4 ())
    40

let test_attention () =
  let nest = Lower.attention_pair ~seq_q:6 ~seq_k:8 ~d:4 () in
  check_int "one internal" 1 (List.length (Nest.internals nest));
  (* S(m,n) with both free axes (d, e) innermost is revisit-free *)
  let valid_s =
    Nest.schedule_make nest ~tiles:[| 2; 2; 4; 4 |] ~order:[| 0; 1; 2; 3 |]
  in
  check_bool "flash-style order valid" true (Nest.valid nest valid_s);
  (* a tiled free axis outside a tiled used axis revisits S: invalid *)
  let invalid_s =
    Nest.schedule_make nest ~tiles:[| 2; 2; 2; 4 |] ~order:[| 2; 0; 1; 3 |]
  in
  check_bool "revisiting order invalid" false (Nest.valid nest invalid_s);
  check_sim_agrees "attn" nest 40;
  match Search.exhaustive nest ~capacity:64 with
  | None -> Alcotest.fail "attention search found nothing"
  | Some r ->
    check_bool "attn total >= ideal" true
      (r.Search.cost.Nest.total >= Bound.ideal nest);
    check_bool "attn winner valid" true (Nest.valid nest r.Search.schedule)

let test_chain () =
  let chain = Chain.of_dims ~m:6 [ 4; 5; 3 ] in
  let nest = Lower.of_chain chain in
  check_int "rank" 4 (Nest.rank nest);
  check_int "intermediates internal" 1 (List.length (Nest.internals nest));
  check_int "fused ideal" (Chain.ideal_ma_fused chain) (Bound.ideal nest);
  check_sim_agrees "chain" nest 30

(* ---- conv output-shape boundary cases (the bugfix) ---- *)

let test_conv_validation () =
  let err r = match r with Error e -> e | Ok _ -> "ok" in
  (* dilated kernel overflows the padded input: OCaml's truncating
     division used to round the would-be 0-position output up to 1 *)
  check_bool "dilated overflow rejected" true
    (err (Conv.validate ~n:1 ~c:1 ~h:4 ~w:4 ~k:1 ~r:3 ~s:3 ~dilation:2 ())
    = "kernel larger than the padded input");
  check_bool "width overflow rejected" true
    (Result.is_error
       (Conv.validate ~n:1 ~c:1 ~h:9 ~w:2 ~k:1 ~r:3 ~s:3 ~dilation:2 ()));
  check_bool "dilation >= 1" true
    (err (Conv.validate ~n:1 ~c:1 ~h:4 ~w:4 ~k:1 ~r:1 ~s:1 ~dilation:0 ())
    = "dilation must be >= 1");
  (* exact fit is legal and yields one output position *)
  (match Conv.validate ~n:1 ~c:1 ~h:5 ~w:5 ~k:1 ~r:3 ~s:3 ~dilation:2 () with
  | Error e -> Alcotest.fail ("exact dilated fit rejected: " ^ e)
  | Ok cv ->
    check_int "exact fit height" 1 (Conv.output_height cv);
    check_int "effective span" 5 (Conv.effective_r cv));
  (* stride larger than the data still yields a single position *)
  let cv = Conv.make ~n:1 ~c:1 ~h:3 ~w:3 ~k:1 ~r:3 ~s:3 ~stride:7 () in
  check_int "big stride height" 1 (Conv.output_height cv);
  check_int "big stride macs" (Conv.macs cv) (Nest.points (Lower.of_conv cv));
  Alcotest.check_raises "make raises structured message"
    (Invalid_argument "Conv.make: kernel larger than the padded input")
    (fun () ->
      ignore (Conv.make ~n:1 ~c:1 ~h:4 ~w:4 ~k:1 ~r:3 ~s:3 ~dilation:2 ()))

let test_schedule_validation () =
  let nest = Lower.of_matmul (mm_make ~m:4 ~k:4 ~l:4) in
  Alcotest.check_raises "tile over extent"
    (Invalid_argument "Nest.schedule_make: tile 5 out of [1,4] on axis m")
    (fun () ->
      ignore (Nest.schedule_make nest ~tiles:[| 5; 1; 1 |] ~order:[| 0; 1; 2 |]));
  Alcotest.check_raises "order not a permutation"
    (Invalid_argument "Nest.schedule_make: order is not a permutation")
    (fun () ->
      ignore (Nest.schedule_make nest ~tiles:[| 1; 1; 1 |] ~order:[| 0; 0; 2 |]))

let () =
  Alcotest.run "nest"
    [
      ( "mm-identity",
        [
          Alcotest.test_case "cost bit-identical" `Quick test_mm_cost_identity;
          Alcotest.test_case "sim bit-identical" `Quick test_mm_sim_identity;
          Alcotest.test_case "bound admissible" `Quick test_mm_bound_admissible;
          Alcotest.test_case "search parity" `Quick test_mm_search_parity;
          Alcotest.test_case "pr5 corpus" `Quick test_regression_corpus;
        ] );
      ( "beyond-mm",
        [
          Alcotest.test_case "window extents" `Quick test_window_extents;
          Alcotest.test_case "conv sim" `Quick test_conv_sim;
          Alcotest.test_case "bmm/gmm sim" `Quick test_bmm_gmm_sim;
          Alcotest.test_case "attention" `Quick test_attention;
          Alcotest.test_case "chain" `Quick test_chain;
        ] );
      ( "validation",
        [
          Alcotest.test_case "conv boundaries" `Quick test_conv_validation;
          Alcotest.test_case "schedule guards" `Quick test_schedule_validation;
        ] );
    ]
