(* The differential conformance oracle: regression counterexamples
   found (and fixed) during its development, the reproducibility
   guarantees it rests on, and property tests for the two invariants it
   polices hardest — analytic cost == simulated traffic on ragged
   schedules, and M<->L transpose symmetry of the stochastic
   searchers. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse
open Fusecu_oracle

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let problem_of_spec spec =
  match Problem.of_spec spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad spec %s: %s" spec e

(* ------------------------------------------------------------------ *)
(* Shrunk counterexamples from development, kept as regressions.       *)

(* Each of these specs, when first run through the oracle, exposed a
   real divergence:
   - the pair specs caught the fused pattern family missing the
     C-stationary block interior (fuse/optimal): the named paper
     patterns alone lost to [Fused_search] until [P_block] was added;
   - the tiny bs=7 / bs=11 specs sat exactly on the old (asymptotic)
     regime boundaries and misclassified until [Regime.thresholds]
     switched to the exact integer thresholds;
   - m=6,k=1,l=5,l2=4,bs=16 hit both at once.
   All must now pass every check, forever. *)
let regression_specs =
  [ "m=7,k=3,l=4,l2=2,bs=16";
    "m=2,k=2,l=2,l2=2,bs=7";
    "m=2,k=2,l=2,l2=2,bs=11";
    "m=5,k=2,l=4,l2=6,bs=31";
    "m=5,k=2,l=4,l2=6,bs=33";
    "m=6,k=1,l=5,l2=4,bs=16" ]

let test_regression_counterexamples () =
  List.iter
    (fun spec ->
      let o = Check.run (problem_of_spec spec) in
      Alcotest.(check (list string))
        (spec ^ " has no divergence") []
        (List.map
           (fun (f : Check.failure) -> f.Check.check ^ ": " ^ f.Check.detail)
           o.Check.failures);
      check_bool (spec ^ " ran checks") true (o.Check.checks > 0))
    regression_specs

(* The historical failure mode, asserted directly: on every pair
   regression, the principle planner's best-of-both traffic equals the
   exhaustive fused-vs-unfused optimum. *)
let test_best_of_both_matches_exhaustive () =
  List.iter
    (fun spec ->
      let p = problem_of_spec spec in
      match Problem.pair p with
      | None -> ()
      | Some pair -> (
        let buf = Problem.buffer p in
        let verdict = Fused_search.decide ~lattice:Space.All pair buf in
        match
          Fusion.plan_pair ~mode:Mode.Exact ~strategy:Fusion.Best_of_both pair
            buf
        with
        | Error _ ->
          check_bool (spec ^ " infeasible on both sides") true
            (verdict.Fused_search.best_traffic = None)
        | Ok decision ->
          Alcotest.(check (option int))
            (spec ^ " best-of-both = exhaustive")
            verdict.Fused_search.best_traffic
            (Some (Fusion.traffic_of_decision decision))))
    regression_specs

(* ------------------------------------------------------------------ *)
(* Reproducibility: specs, the PRNG, the generator, the runner.        *)

let test_spec_round_trip () =
  List.iter
    (fun (p : Problem.t) ->
      let spec = Problem.to_spec p in
      match Problem.of_spec spec with
      | Error e -> Alcotest.failf "%s does not parse back: %s" spec e
      | Ok q -> check_bool (spec ^ " round-trips") true (Problem.equal p q))
    [ { m = 7; k = 3; l = 4; shape = Problem.Single; bs = 16 };
      { m = 1; k = 1; l = 1; shape = Problem.Pair { l2 = 9 }; bs = 3 };
      { m = 24; k = 24; l = 24; shape = Problem.Chain3 { l2 = 5; l3 = 2 };
        bs = 4096 } ];
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (Result.is_error (Problem.of_spec bad)))
    [ ""; "m=1,k=1"; "m=0,k=1,l=1,bs=4"; "m=1,k=1,l=1,l3=2,bs=4";
      "m=1,k=1,l=1,bs=4,junk=9"; "m=x,k=1,l=1,bs=4" ]

(* The SplitMix64 stream is pinned by the module forever — a (seed,
   case) pair in an old CI log must regenerate the same problem on any
   OCaml version. These values are the contract. *)
let test_rng_pinned () =
  let r = Rng.make 7 in
  Alcotest.(check (list int))
    "first six draws at seed 7"
    [ 93621; 738951; 902336; 368050; 180918; 387076 ]
    (List.init 6 (fun _ -> Rng.int r 1_000_000))

let test_rng_ranges () =
  let r = Rng.make 123 in
  for _ = 1 to 1000 do
    let v = Rng.range r ~lo:3 ~hi:9 in
    check_bool "in range" true (v >= 3 && v <= 9)
  done

let test_generator_pinned () =
  let g = Rng.make 42 in
  Alcotest.(check (list string))
    "first five problems at seed 42"
    [ "m=5,k=22,l=2,bs=4"; "m=12,k=10,l=12,bs=3"; "m=1,k=7,l=1,l2=8,bs=3";
      "m=12,k=12,l=5,l2=2,bs=78"; "m=1,k=19,l=2,l2=3,bs=70" ]
    (List.init 5 (fun _ -> Problem.to_spec (Gen.problem g ~max_dim:24)))

let test_generator_valid () =
  let g = Rng.make 9 in
  for _ = 1 to 500 do
    let p = Gen.problem g ~max_dim:24 in
    check_bool "dims in bounds" true
      (p.Problem.m >= 1 && p.Problem.m <= 24 && p.Problem.k >= 1
     && p.Problem.k <= 24 && p.Problem.l >= 1 && p.Problem.l <= 24);
    check_bool "buffer sane" true (p.Problem.bs >= 3);
    check_bool "spec round-trips" true
      (match Problem.of_spec (Problem.to_spec p) with
      | Ok q -> Problem.equal p q
      | Error _ -> false)
  done

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)

let test_proposals_strictly_smaller () =
  let p = problem_of_spec "m=12,k=7,l=9,l2=4,bs=200" in
  List.iter
    (fun q ->
      check_bool
        (Printf.sprintf "%s < %s" (Problem.to_spec q) (Problem.to_spec p))
        true
        (Problem.size q < Problem.size p))
    (Shrink.proposals p)

(* Greedy minimization against a synthetic predicate lands exactly on
   the smallest failing instance. *)
let test_minimize_converges () =
  let p = problem_of_spec "m=24,k=13,l=17,l2=6,bs=500" in
  let shrunk = Shrink.minimize p ~still_fails:(fun q -> q.Problem.m >= 4) in
  check_int "minimal m" 4 shrunk.Problem.m;
  check_int "k shrunk to 1" 1 shrunk.Problem.k;
  check_int "l shrunk to 1" 1 shrunk.Problem.l;
  check_bool "pair dropped" true (shrunk.Problem.shape = Problem.Single);
  check_int "buffer at floor" 3 shrunk.Problem.bs;
  (* a predicate that never fails leaves the problem untouched *)
  check_bool "fixed point when nothing fails" true
    (Problem.equal p (Shrink.minimize p ~still_fails:(fun _ -> false)))

(* ------------------------------------------------------------------ *)
(* A miniature end-to-end oracle run                                   *)

let test_oracle_run_clean () =
  let report = Oracle.run ~cases:150 ~seed:7 ~max_dim:20 () in
  check_bool "no divergences" true (Oracle.ok report);
  check_int "cases" 150 report.Oracle.cases;
  check_bool "checks ran" true (report.Oracle.checks > 150);
  let sum t = List.fold_left (fun a (_, n) -> a + n) 0 t in
  check_int "shape tally covers every case" 150 (sum report.Oracle.by_shape);
  check_int "regime tally covers every case" 150 (sum report.Oracle.by_regime);
  (* same seed, same report *)
  let again = Oracle.run ~cases:150 ~seed:7 ~max_dim:20 () in
  check_int "deterministic checks" report.Oracle.checks again.Oracle.checks;
  Alcotest.(check (list (pair string int)))
    "deterministic tallies" report.Oracle.by_shape again.Oracle.by_shape

let test_check_spec_matches_run () =
  let p = problem_of_spec "m=6,k=1,l=5,l2=4,bs=16" in
  match Oracle.check_spec "m=6,k=1,l=5,l2=4,bs=16" with
  | Error e -> Alcotest.fail e
  | Ok (q, o) ->
    check_bool "same problem" true (Problem.equal p q);
    check_int "same verdict" (Check.run p).Check.checks o.Check.checks

(* ------------------------------------------------------------------ *)
(* Property: analytic cost == simulated traffic on ragged schedules    *)

let ragged_gen =
  QCheck.Gen.(
    let dim = int_range 1 12 in
    dim >>= fun m ->
    dim >>= fun k ->
    dim >>= fun l ->
    int_range 1 m >>= fun tm ->
    int_range 1 k >>= fun tk ->
    int_range 1 l >>= fun tl ->
    int_range 0 (List.length Order.all - 1) >>= fun oi ->
    return (m, k, l, tm, tk, tl, oi))

let prop_sim_equals_cost =
  QCheck.Test.make ~count:300
    ~name:"simulated traffic == analytic cost on arbitrary ragged schedules"
    (QCheck.make
       ~print:(fun (m, k, l, tm, tk, tl, oi) ->
         Printf.sprintf "%dx%dx%d tiles %d/%d/%d order %d" m k l tm tk tl oi)
       ragged_gen)
    (fun (m, k, l, tm, tk, tl, oi) ->
      let op = Matmul.make ~m ~k ~l () in
      let tiling = Tiling.make op ~m:tm ~k:tk ~l:tl in
      let schedule = Schedule.make tiling (List.nth Order.all oi) in
      let analytic = Cost.eval op schedule in
      let simulated = Sim.eval op schedule in
      analytic.Cost.total = simulated.Cost.total
      && List.for_all
           (fun x ->
             let a = Cost.operand analytic x and s = Cost.operand simulated x in
             a.Cost.traffic = s.Cost.traffic
             && a.Cost.fetches = s.Cost.fetches
             && a.Cost.revisit = s.Cost.revisit)
           Operand.all)

(* ------------------------------------------------------------------ *)
(* Property: the stochastic searchers are exact M<->L symmetries       *)

let searcher_gen =
  QCheck.Gen.(
    let dim = int_range 1 10 in
    dim >>= fun m ->
    dim >>= fun k ->
    dim >>= fun l ->
    int_range 3 120 >>= fun bs -> return (m, k, l, bs))

let searcher_print (m, k, l, bs) = Printf.sprintf "%dx%dx%d bs=%d" m k l bs

let transpose_invariant search (m, k, l, bs) =
  let op = Matmul.make ~m ~k ~l () in
  let opT = Matmul.transpose op in
  let buf = Buffer.make bs in
  match (search op buf, search opT buf) with
  | None, None -> true
  | Some a, Some b ->
    a.Exhaustive.cost.Cost.total = b.Exhaustive.cost.Cost.total
  | _ -> false

let prop_annealing_transpose =
  QCheck.Test.make ~count:60
    ~name:"annealing finds the same traffic on the M<->L transpose"
    (QCheck.make ~print:searcher_print searcher_gen)
    (transpose_invariant (fun op buf -> Annealing.search op buf))

let prop_genetic_transpose =
  QCheck.Test.make ~count:40
    ~name:"genetic finds the same traffic on the M<->L transpose"
    (QCheck.make ~print:searcher_print searcher_gen)
    (transpose_invariant (fun op buf -> Genetic.search op buf))

(* ------------------------------------------------------------------ *)
(* Whole-model planner graph oracle                                    *)

let corpus_specs =
  let ic = open_in "fixtures/graph_counterexamples.txt" in
  let rec go acc =
    match In_channel.input_line ic with
    | None ->
      close_in ic;
      List.rev acc
    | Some line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go acc else go (line :: acc)
  in
  go []

(* Every spec in the checked-in corpus must keep passing
   planner-vs-exhaustive conformance, forever. *)
let test_graph_corpus () =
  check_bool "corpus non-empty" true (corpus_specs <> []);
  List.iter
    (fun spec ->
      match Graph_check.check_spec spec with
      | Error e -> Alcotest.failf "bad corpus spec %s: %s" spec e
      | Ok (_, o) ->
        List.iter
          (fun (f : Graph_check.failure) ->
            Alcotest.failf "%s: [%s] %s" spec f.Graph_check.check
              f.Graph_check.detail)
          o.Graph_check.failures)
    corpus_specs

let test_graph_spec_round_trip () =
  List.iter
    (fun spec ->
      match Graph_check.of_spec spec with
      | Error e -> Alcotest.failf "bad spec %s: %s" spec e
      | Ok t -> Alcotest.(check string) spec spec (Graph_check.to_spec t))
    corpus_specs;
  check_bool "rejects bad edge order" true
    (Result.is_error (Graph_check.of_spec "m=2,b=9,nodes=1*2:2|1*2:2,edges=1-0"));
  check_bool "rejects dangling edge" true
    (Result.is_error (Graph_check.of_spec "m=2,b=9,nodes=1*2:2,edges=0-1"))

let test_graph_run_pinned () =
  let r1 = Graph_check.run ~cases:40 ~seed:5 () in
  let r2 = Graph_check.run ~cases:40 ~seed:5 () in
  check_int "checks pinned" r1.Graph_check.checks r2.Graph_check.checks;
  check_int "edges pinned" r1.Graph_check.candidate_edges
    r2.Graph_check.candidate_edges;
  check_int "fused pinned" r1.Graph_check.fused_cases r2.Graph_check.fused_cases;
  check_bool "clean" true (Graph_check.ok r1)

let test_graph_minimize_converges () =
  (* an artificial predicate: "fails" while the graph still has more
     than one node; the minimal still-failing graph therefore has
     exactly two nodes, no edges, and every dimension at its floor *)
  match Graph_check.of_spec "m=4,b=64,nodes=1*4:4|1*4:4|1*4:4,edges=0-1|1-2" with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let shrunk =
      Graph_check.minimize t ~still_fails:(fun t' ->
          List.length t'.Graph_check.nodes > 1)
    in
    Alcotest.(check string) "minimal failing graph"
      "m=1,b=3,nodes=1*1:1|1*1:1"
      (Graph_check.to_spec shrunk);
    (* a predicate that never fails leaves the spec untouched *)
    check_bool "fixed point when nothing fails" true
      (Graph_check.to_spec (Graph_check.minimize t ~still_fails:(fun _ -> false))
       = Graph_check.to_spec t)

let () =
  let qtest = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260806 |]) in
  Alcotest.run "oracle"
    [ ( "regressions",
        [ Alcotest.test_case "shrunk counterexamples stay fixed" `Quick
            test_regression_counterexamples;
          Alcotest.test_case "best-of-both = exhaustive on them" `Quick
            test_best_of_both_matches_exhaustive ] );
      ( "reproducibility",
        [ Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
          Alcotest.test_case "rng stream pinned" `Quick test_rng_pinned;
          Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
          Alcotest.test_case "generator pinned" `Quick test_generator_pinned;
          Alcotest.test_case "generator valid" `Quick test_generator_valid ] );
      ( "shrinker",
        [ Alcotest.test_case "proposals strictly smaller" `Quick
            test_proposals_strictly_smaller;
          Alcotest.test_case "greedy minimize converges" `Quick
            test_minimize_converges ] );
      ( "runner",
        [ Alcotest.test_case "150 cases, zero divergences" `Slow
            test_oracle_run_clean;
          Alcotest.test_case "check_spec = run" `Quick
            test_check_spec_matches_run ] );
      ( "graph-planner",
        [ Alcotest.test_case "corpus stays fixed" `Quick test_graph_corpus;
          Alcotest.test_case "spec round-trip" `Quick
            test_graph_spec_round_trip;
          Alcotest.test_case "run pinned and clean" `Quick test_graph_run_pinned;
          Alcotest.test_case "greedy minimize converges" `Quick
            test_graph_minimize_converges ] );
      ( "properties",
        [ qtest prop_sim_equals_cost;
          qtest prop_annealing_transpose;
          qtest prop_genetic_transpose ] ) ]
