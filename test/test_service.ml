(* The planning service: JSON codec round trips, protocol parsing and
   canonicalization, the sharded LRU plan cache, and end-to-end engine
   determinism over the checked-in fixture (cache on/off, domain
   counts, batch sizes). *)

open Fusecu_service
module Json = Fusecu_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json: printing and parsing                                          *)

let test_json_print () =
  check_str "null" "null" (Json.print Json.Null);
  check_str "true" "true" (Json.print (Json.Bool true));
  check_str "int" "-42" (Json.print (Json.Int (-42)));
  check_str "float keeps dot" "1.0" (Json.print (Json.Float 1.));
  check_str "string escapes" "\"a\\\"b\\n\\u0001\""
    (Json.print (Json.String "a\"b\n\001"));
  check_str "nested" "{\"a\":[1,2.5,null],\"b\":{}}"
    (Json.print
       (Json.Obj
          [ ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
            ("b", Json.Obj []) ]));
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Json.print: NaN and infinities are not representable")
    (fun () -> ignore (Json.print (Json.Float Float.nan)))

let test_json_parse () =
  let ok v s =
    match Json.parse s with
    | Ok v' -> check_bool (Printf.sprintf "parse %S" s) true (Json.equal v v')
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  ok (Json.Int 42) " 42 ";
  ok (Json.Float 42.) "42e0";
  ok (Json.Float 0.5) "0.5";
  ok (Json.Int (-7)) "-7";
  ok (Json.String "a/b\twith \"quotes\"") "\"a\\/b\\twith \\\"quotes\\\"\"";
  ok (Json.String "\xe2\x82\xac") "\"\\u20ac\"";
  (* astral plane via surrogate pair *)
  ok (Json.String "\xf0\x9d\x84\x9e") "\"\\ud834\\udd1e\"";
  ok (Json.List []) "[]";
  ok (Json.Obj [ ("k", Json.List [ Json.Bool false ]) ]) "{\"k\":[false]}";
  (* Int/Float distinction survives big magnitudes *)
  ok (Json.Float 1e300) "1e300"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Json.parse s)))
    [ ""; "   "; "{"; "}"; "[1,"; "[1 2]"; "\"abc"; "\"\\u12"; "\"\\q\"";
      "{\"a\"}"; "{\"a\":}"; "{\"a\":1,}"; "[1,2,]"; "tru"; "nul"; "+1"; "1.";
      "1e"; "-"; "1 2"; "[]]"; "{\"a\":1}x"; "\"unterminated\\\"";
      "\x01"; "\"raw\ncontrol\"" ]

(* \u escapes in the surrogate range are only valid as a high+low pair;
   a lone half used to reach the UTF-8 encoder and emit CESU-8-style
   bytes no conforming decoder accepts *)
let test_json_surrogates () =
  let ok v s =
    match Json.parse s with
    | Ok v' -> check_bool (Printf.sprintf "parse %S" s) true (Json.equal v v')
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  (* paired: decodes to the astral code point and round-trips *)
  ok (Json.String "\xf0\x9d\x84\x9e") "\"\\uD834\\uDD1E\"";
  (match Json.parse "\"\\ud834\\udd1e\"" with
  | Ok v ->
    check_bool "pair round-trips" true
      (Json.parse (Json.print v) = Ok v)
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rejects s =
    match Json.parse s with
    | Ok v ->
      Alcotest.failf "accepted %S as %s" s (Json.print v)
    | Error e ->
      check_bool
        (Printf.sprintf "%S error names the escape" s)
        true
        (contains e "invalid \\u escape")
  in
  rejects "\"\\uD834\"" (* lone high at end of string *);
  rejects "\"\\uD834x\"" (* lone high, ordinary char follows *);
  rejects "\"\\uD834\\n\"" (* lone high, non-\u escape follows *);
  rejects "\"\\uD834\\u0041\"" (* high followed by a non-low escape *);
  rejects "\"\\uD834\\uD834\"" (* high followed by another high *);
  rejects "\"\\uDD1E\"" (* lone low *);
  rejects "\"a\\uDC00b\"" (* lone low mid-string *)

let gen_json =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [ return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map
                 (fun f -> Json.Float (if Float.is_finite f then f else 0.))
                 float;
               map (fun s -> Json.String s) (string_size (0 -- 12)) ]
         in
         if n <= 0 then leaf
         else
           frequency
             [ (2, leaf);
               (1, map (fun vs -> Json.List vs) (list_size (0 -- 4) (self (n / 2))));
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (0 -- 4)
                      (pair (string_size (0 -- 8)) (self (n / 2)))) ) ])

let arb_json = QCheck.make gen_json ~print:Json.print

let prop_json_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"Json.parse (Json.print v) = v" arb_json
    (fun v ->
      match Json.parse (Json.print v) with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "no parse: %s" e)

let prop_json_hum_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse inverts print_hum" arb_json
    (fun v ->
      match Json.parse (Json.print_hum v) with
      | Ok v' -> Json.equal v v'
      | Error e -> QCheck.Test.fail_reportf "no parse: %s" e)

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)

let test_cache_basics () =
  let c = Cache.create ~shards:2 ~capacity:8 () in
  check_bool "miss" true (Cache.find c "a" = None);
  Cache.add c "a" 1;
  check_bool "hit" true (Cache.find c "a" = Some 1);
  Cache.add c "a" 2;
  check_bool "overwrite" true (Cache.find c "a" = Some 2);
  let st = Cache.stats c in
  check_int "hits" 2 st.Cache.hits;
  check_int "misses" 1 st.Cache.misses;
  check_int "entries" 1 st.Cache.entries;
  check_bool "hit rate" true (Float.abs (Cache.hit_rate st -. (2. /. 3.)) < 1e-9)

let test_cache_lru_eviction () =
  (* one shard makes the LRU order observable *)
  let c = Cache.create ~shards:1 ~capacity:3 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  ignore (Cache.find c "a");
  (* a is now most recent; b is LRU *)
  Cache.add c "d" 4;
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a kept" true (Cache.find c "a" = Some 1);
  check_bool "d kept" true (Cache.find c "d" = Some 4);
  let st = Cache.stats c in
  check_int "evictions" 1 st.Cache.evictions;
  check_int "bounded" 3 st.Cache.entries

let test_cache_capacity_zero () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c "a" 1;
  check_bool "stores nothing" true (Cache.find c "a" = None)

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~count:100 ~name:"cache entries <= shard-rounded capacity"
    QCheck.(pair (1 -- 20) (small_list (string_of_size Gen.(1 -- 3))))
    (fun (cap, keys) ->
      let shards = 4 in
      let c = Cache.create ~shards ~capacity:cap () in
      List.iteri (fun i k -> Cache.add c k i) keys;
      let per_shard = (cap + shards - 1) / shards in
      (Cache.stats c).Cache.entries <= min shards cap * per_shard)

(* [stats] must be a consistent snapshot — all shard locks held at
   once. The old shard-at-a-time read could observe an [add] between
   shards and return an [entries] total exceeding the capacity bound,
   or counters from different instants. Hammer the cache from writer
   threads while a reader polls, and require every snapshot to respect
   the capacity invariant and per-field monotonicity. *)
let test_cache_snapshot_consistent_under_load () =
  let shards = 4 and cap = 64 in
  let per_shard = (cap + shards - 1) / shards in
  let bound = shards * per_shard in
  let c = Cache.create ~shards ~capacity:cap () in
  let torn = Atomic.make 0 in
  let live = Atomic.make 4 in
  let writers =
    Array.init 4 (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to 4999 do
              let k = Printf.sprintf "w%d-%d" w (i mod 512) in
              (match Cache.find c k with
              | Some _ -> ()
              | None -> Cache.add c k i);
              (* systhreads only preempt at blocking points: yield so
                 the snapshot reader actually interleaves *)
              if i mod 64 = 0 then Thread.yield ()
            done;
            Atomic.decr live)
          ())
  in
  let prev = ref (Cache.stats c) in
  while Atomic.get live > 0 do
    let st = Cache.stats c in
    if st.Cache.entries > bound then Atomic.incr torn;
    if
      st.Cache.hits < !prev.Cache.hits
      || st.Cache.misses < !prev.Cache.misses
      || st.Cache.evictions < !prev.Cache.evictions
    then Atomic.incr torn;
    let occ = Cache.shard_occupancy c in
    if List.fold_left ( + ) 0 occ > bound then Atomic.incr torn;
    if List.exists (fun n -> n > per_shard) occ then Atomic.incr torn;
    prev := st;
    Thread.yield ()
  done;
  Array.iter Thread.join writers;
  check_int "torn snapshots" 0 (Atomic.get torn);
  let st = Cache.stats c in
  check_bool "saw traffic" true (st.Cache.hits + st.Cache.misses > 0)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let parse_ok line =
  match Protocol.parse_line line with
  | Ok (id, _tc, req) -> (id, req)
  | Error r -> Alcotest.failf "unexpected reject of %S: %s" line r.message

let parse_reject line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "expected a reject for %S" line
  | Error r -> r

let test_protocol_parse () =
  (match parse_ok "{\"op\":\"intra\",\"id\":7,\"m\":8,\"k\":9,\"l\":10}" with
  | Json.Int 7, Protocol.Call (Protocol.Intra { op; buffer; mode }) ->
    check_int "m" 8 op.Fusecu_tensor.Matmul.m;
    check_int "k" 9 op.Fusecu_tensor.Matmul.k;
    check_int "l" 10 op.Fusecu_tensor.Matmul.l;
    check_int "default buffer" (512 * 1024) buffer.Fusecu_loopnest.Buffer.bytes;
    check_bool "default mode" true (mode = Fusecu_core.Mode.Divisors)
  | _ -> Alcotest.fail "bad intra parse");
  (match parse_ok "{\"op\":\"chain\",\"m\":4,\"ks\":[5,6,7],\"buffer\":\"1KB\"}" with
  | Json.Null, Protocol.Call (Protocol.Chain { m; ks; buffer; _ }) ->
    check_int "m" 4 m;
    Alcotest.(check (list int)) "ks" [ 5; 6; 7 ] ks;
    check_int "buffer" 1024 buffer.Fusecu_loopnest.Buffer.bytes
  | _ -> Alcotest.fail "bad chain parse");
  (match parse_ok "{\"op\":\"eval\",\"model\":\"BeRt\"}" with
  | _, Protocol.Call (Protocol.Eval { model; _ }) ->
    check_str "model lowercased" "bert" model
  | _ -> Alcotest.fail "bad eval parse");
  (match parse_ok "{\"op\":\"stats\"}" with
  | _, Protocol.Stats -> ()
  | _ -> Alcotest.fail "bad stats parse")

let test_protocol_rejects () =
  let code line = (parse_reject line).Protocol.code in
  check_bool "not json" true (code "nope" = Protocol.Parse_error);
  check_bool "not an object" true (code "[1]" = Protocol.Bad_request);
  check_bool "no op" true (code "{\"m\":1}" = Protocol.Bad_request);
  check_bool "unknown op" true (code "{\"op\":\"warp\"}" = Protocol.Unknown_op);
  check_bool "bad version" true
    (code "{\"op\":\"stats\",\"v\":2}" = Protocol.Unsupported_version);
  check_bool "missing dim" true
    (code "{\"op\":\"intra\",\"m\":1,\"k\":1}" = Protocol.Bad_request);
  check_bool "zero dim" true
    (code "{\"op\":\"intra\",\"m\":0,\"k\":1,\"l\":1}" = Protocol.Bad_request);
  check_bool "short chain" true
    (code "{\"op\":\"chain\",\"m\":1,\"ks\":[2]}" = Protocol.Bad_request);
  check_bool "bad buffer" true
    (code "{\"op\":\"regime\",\"m\":1,\"k\":1,\"l\":1,\"buffer\":\"lots\"}"
    = Protocol.Bad_request);
  (* the reject still echoes the request id *)
  check_bool "id echoed" true
    ((parse_reject "{\"op\":\"warp\",\"id\":\"x\"}").Protocol.id
    = Json.String "x")

let test_protocol_canonicalization () =
  let call line =
    match parse_ok line with
    | _, Protocol.Call c -> c
    | _ -> Alcotest.fail "not a call"
  in
  let key line = Protocol.cache_key (fst (Protocol.canonicalize (call line))) in
  (* M x K x L and L x K x M canonicalize to one key *)
  check_str "intra transpose"
    (key "{\"op\":\"intra\",\"m\":100,\"k\":20,\"l\":30}")
    (key "{\"op\":\"intra\",\"m\":30,\"k\":20,\"l\":100}");
  (* buffer is keyed by element capacity, not byte spelling *)
  check_str "buffer spellings"
    (key "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8,\"buffer\":\"0.5MB\"}")
    (key "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8,\"buffer\":524288}");
  check_str "element widths"
    (key
       "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8,\"buffer\":\"2MB\",\"elt_bytes\":2}")
    (key "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8,\"buffer\":\"1MB\"}");
  check_str "regime transpose"
    (key "{\"op\":\"regime\",\"m\":100,\"k\":20,\"l\":30}")
    (key "{\"op\":\"regime\",\"m\":30,\"k\":20,\"l\":100}");
  (* distinct problems stay distinct *)
  check_bool "mode distinguishes" true
    (key "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8}"
    <> key "{\"op\":\"intra\",\"m\":8,\"k\":8,\"l\":8,\"mode\":\"pow2\"}");
  check_bool "fuse not dimension-sorted" true
    (key "{\"op\":\"fuse\",\"m\":100,\"k\":20,\"l\":30,\"l2\":30}"
    <> key "{\"op\":\"fuse\",\"m\":30,\"k\":20,\"l\":100,\"l2\":30}")

(* An intra answer for (m,k,l) must be the mirror of the answer for
   (l,k,m): same traffic, tiles and order swapped. *)
let test_engine_symmetry () =
  let engine = Engine.create (Engine.default_config ()) in
  let get line =
    match Engine.handle_lines engine [ line ] with
    | [ resp ] -> Result.get_ok (Json.parse resp)
    | _ -> Alcotest.fail "expected one response"
  in
  let r1 =
    get "{\"op\":\"intra\",\"m\":1024,\"k\":768,\"l\":768,\"buffer\":\"512KB\"}"
  in
  let r2 =
    get "{\"op\":\"intra\",\"m\":768,\"k\":768,\"l\":1024,\"buffer\":\"512KB\"}"
  in
  let field r path =
    List.fold_left
      (fun v k -> Option.get (Json.member k v))
      (Option.get (Json.member "result" r))
      path
  in
  check_bool "same traffic" true
    (Json.equal (field r1 [ "ma" ]) (field r2 [ "ma" ]));
  check_bool "tiles mirror (m)" true
    (Json.equal (field r1 [ "tiles"; "m" ]) (field r2 [ "tiles"; "l" ]));
  check_bool "tiles mirror (l)" true
    (Json.equal (field r1 [ "tiles"; "l" ]) (field r2 [ "tiles"; "m" ]));
  check_bool "same k tile" true
    (Json.equal (field r1 [ "tiles"; "k" ]) (field r2 [ "tiles"; "k" ]));
  check_bool "same class" true
    (Json.equal (field r1 [ "class" ]) (field r2 [ "class" ]));
  (* and the symmetric repeat was a cache hit *)
  check_bool "symmetric hit" true ((Engine.cache_stats engine).Cache.hits >= 1)

(* ------------------------------------------------------------------ *)
(* Engine over the checked-in fixture                                  *)

let fixture_lines =
  lazy
    (let ic = open_in "fixtures/service_requests.ndjson" in
     let rec go acc =
       match In_channel.input_line ic with
       | Some l -> go (l :: acc)
       | None ->
         close_in ic;
         List.rev acc
     in
     go [])

let is_stats_response line =
  match Json.parse line with
  | Ok r -> Json.member "op" r = Some (Json.String "stats")
  | Error _ -> false

let replay config ?batch () =
  Engine.handle_lines (Engine.create config) ?batch (Lazy.force fixture_lines)

let test_fixture_replay_matches_golden () =
  let out = replay (Engine.default_config ()) () in
  let golden =
    let ic = open_in "fixtures/service_responses.golden" in
    let rec go acc =
      match In_channel.input_line ic with
      | Some l -> go (l :: acc)
      | None ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  check_int "response count" (List.length golden) (List.length out);
  List.iteri
    (fun i (g, o) ->
      if g <> o then
        Alcotest.failf "golden mismatch at response %d:\n  golden: %s\n  got:    %s"
          (i + 1) g o)
    (List.combine golden out)

let test_fixture_cache_on_off_identical () =
  let base = Engine.default_config () in
  let on = replay { base with cache_enabled = true } () in
  let off = replay { base with cache_enabled = false; cache_entries = 0 } () in
  let strip = List.filter (fun l -> not (is_stats_response l)) in
  check_bool "cache on/off bit-identical (stats aside)" true (strip on = strip off)

let test_fixture_domains_and_batch_invariant () =
  let base = Engine.default_config () in
  let seq = replay { base with pool = Some Fusecu_util.Pool.sequential } () in
  let pool = Fusecu_util.Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Fusecu_util.Pool.shutdown pool)
    (fun () ->
      let par = replay { base with pool = Some pool } () in
      check_bool "1 vs 3 domains identical" true (seq = par);
      (* batch size moves batch boundaries (and so the hit/coalesced
         split in stats) but must not change any planning response *)
      let strip = List.filter (fun l -> not (is_stats_response l)) in
      let b1 = replay { base with pool = Some pool } ~batch:1 () in
      let b7 = replay { base with pool = Some pool } ~batch:7 () in
      check_bool "batch 1 vs 7 identical" true (strip b1 = strip b7);
      check_bool "batch vs default identical" true (strip b1 = strip seq))

let test_fixture_hit_rate_positive () =
  let engine = Engine.create (Engine.default_config ()) in
  ignore (Engine.handle_lines engine (Lazy.force fixture_lines));
  let st = Engine.cache_stats engine in
  check_bool "hits > 0" true (st.Cache.hits > 0);
  check_bool "hit rate > 0" true (Cache.hit_rate st > 0.)

(* Full-string FNV-1a must spread keys that differ only in their tails:
   [Hashtbl.hash]'s bounded traversal piled every such key onto one
   shard. The long shared prefix below models canonical cache keys,
   which open identically ("intra|m=..."). *)
let test_cache_shard_balance () =
  let shards = 8 and n = 1000 in
  let c = Cache.create ~shards ~capacity:(4 * n) () in
  let prefix = String.make 200 'p' in
  for i = 1 to n do
    Cache.add c (Printf.sprintf "%s|tail=%d" prefix i) i
  done;
  let occ = Cache.shard_occupancy c in
  check_int "all stored" n (List.fold_left ( + ) 0 occ);
  let expect = n / shards in
  List.iteri
    (fun i k ->
      if k < expect / 2 || k > expect * 2 then
        Alcotest.failf "shard %d holds %d of %d keys (expected ~%d)" i k n
          expect)
    occ;
  (* and the engine replaying the fixture must leave no shard empty:
     the canonical keys there share op/dimension prefixes too *)
  let engine = Engine.create (Engine.default_config ()) in
  ignore (Engine.handle_lines engine (Lazy.force fixture_lines));
  let occ =
    match Json.member "cache" (Engine.stats_result engine) with
    | Some cache -> (
      match Json.member "shard_entries" cache with
      | Some (Json.List ns) ->
        List.map (function Json.Int n -> n | _ -> -1) ns
      | _ -> Alcotest.fail "stats_result lacks shard_entries")
    | None -> Alcotest.fail "stats_result lacks cache"
  in
  check_bool "fixture leaves no shard empty" true
    (List.for_all (fun k -> k > 0) occ)

(* Verify-and-refine: the search mappers only ever replace a principle
   plan on a strict traffic improvement, and the principles are
   oracle-verified optimal — so every mapper must produce the same
   response bytes on the whole fixture, and no refinement may fire. *)
let test_fixture_mapper_invariant () =
  let base = Engine.default_config () in
  let with_mapper mapper =
    let engine = Engine.create { base with mapper } in
    let out = Engine.handle_lines engine (Lazy.force fixture_lines) in
    (out, Metrics.get (Engine.metrics engine) "mapper_improved")
  in
  let principles, _ = with_mapper Engine.Mapper_principles in
  let bnb, improved = with_mapper Engine.Mapper_bnb in
  check_bool "principles vs bnb identical" true (principles = bnb);
  check_int "bnb never beats the principles" 0 improved;
  let exhaustive, _ = with_mapper Engine.Mapper_exhaustive in
  check_bool "principles vs exhaustive identical" true (principles = exhaustive)

let test_mapper_parsing () =
  List.iter
    (fun (s, expected) ->
      check_bool ("parse " ^ s) true (Engine.mapper_of_string s = expected))
    [ ("bnb", Some Engine.Mapper_bnb);
      ("  BnB ", Some Engine.Mapper_bnb);
      ("principles", Some Engine.Mapper_principles);
      ("exhaustive", Some Engine.Mapper_exhaustive);
      ("anneal", Some Engine.Mapper_anneal);
      ("genetic", None);
      ("", None) ];
  List.iter
    (fun m ->
      check_bool
        ("round-trip " ^ Engine.mapper_name m)
        true
        (Engine.mapper_of_string (Engine.mapper_name m) = Some m))
    [ Engine.Mapper_principles; Engine.Mapper_bnb; Engine.Mapper_exhaustive;
      Engine.Mapper_anneal ]

let test_shutdown_stops_processing () =
  let engine = Engine.create (Engine.default_config ()) in
  let out =
    Engine.handle_lines engine
      [ "{\"op\":\"regime\",\"m\":8,\"k\":8,\"l\":8}";
        "{\"op\":\"shutdown\",\"id\":\"bye\"}";
        "{\"op\":\"regime\",\"m\":9,\"k\":9,\"l\":9}" ]
  in
  check_int "stops after shutdown" 2 (List.length out);
  check_bool "shutdown acked" true
    (match Json.parse (List.nth out 1) with
    | Ok r -> Json.member "op" r = Some (Json.String "shutdown")
    | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Socket server: fault-injection harness                              *)

(* Everything here drives the real [Server.serve_socket] accept loop
   over a Unix-domain socket in a temp directory: concurrent clients,
   mid-batch disconnects, half-closed peers, garbage and over-long
   lines, a slow-loris sender, signal-triggered drain. *)

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fusecu_test_%d_%d.sock" (Unix.getpid ()) !counter)

let quick_config =
  { Server.max_conns = 8; idle_timeout = 5.; max_line = 64 * 1024 }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* Read until the server closes the connection; split into lines. *)
let recv_lines fd =
  let buf = Buffer.create 1024 in
  let scratch = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd scratch 0 (Bytes.length scratch) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf scratch 0 n;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

(* One well-behaved exchange: send every line, half-close the write
   side (the server sees EOF and flushes), read responses until the
   server closes. *)
let exchange path lines =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      send_all fd (String.concat "\n" lines ^ "\n");
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      recv_lines fd)

let start_server ?(config = quick_config) ?batch engine path =
  let th =
    Thread.create
      (fun () -> Server.serve_socket engine ?batch ~config ~path ())
      ()
  in
  let rec wait n =
    if n = 0 then Alcotest.fail "server socket did not appear"
    else
      match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> ()
      | _ -> Alcotest.fail "server path is not a socket"
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        Thread.delay 0.02;
        wait (n - 1)
  in
  wait 250;
  th

let with_server ?config ?batch f =
  let engine = Engine.create (Engine.default_config ()) in
  let path = sock_path () in
  let th = start_server ?config ?batch engine path in
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent stop: the test body may already have shut the
         server down, in which case connect just fails. *)
      (try ignore (exchange path [ "{\"op\":\"shutdown\"}" ])
       with Unix.Unix_error _ -> ());
      Thread.join th;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f ~engine ~path)

(* A deterministic request mix (no [stats] — its counters legitimately
   depend on scheduling once several clients share the engine). *)
let fault_requests =
  [ "{\"op\":\"intra\",\"id\":1,\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}";
    "{\"op\":\"regime\",\"id\":2,\"m\":48,\"k\":64,\"l\":96}";
    "{\"op\":\"intra\",\"id\":3,\"m\":48,\"k\":64,\"l\":96,\"buffer\":\"8KB\"}";
    "{\"op\":\"fuse\",\"id\":4,\"m\":32,\"k\":32,\"l\":32,\"l2\":16,\"buffer\":\"16KB\"}";
    "{\"op\":\"chain\",\"id\":5,\"m\":16,\"ks\":[24,32,16],\"buffer\":\"16KB\"}";
    "{\"op\":\"intra\",\"id\":6,\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}";
    "{\"op\":\"nonsense\",\"id\":7}";
    "{\"op\":\"regime\",\"id\":8,\"m\":96,\"k\":64,\"l\":48}" ]

(* What a sequential, fresh engine answers — responses carry no cache or
   concurrency state, so this is the golden transcript for EVERY client
   regardless of interleaving (DESIGN.md §5). *)
let fault_golden () =
  Engine.handle_lines (Engine.create (Engine.default_config ())) fault_requests

let test_server_concurrent_clients_deterministic () =
  let golden = fault_golden () in
  (* max_conns below the client count exercises accept backpressure *)
  with_server
    ~config:{ quick_config with Server.max_conns = 2 }
    (fun ~engine:_ ~path ->
      let n = 4 in
      let results = Array.make n [] in
      let clients =
        List.init n (fun i ->
            Thread.create
              (fun () -> results.(i) <- exchange path fault_requests)
              ())
      in
      List.iter Thread.join clients;
      Array.iteri
        (fun i lines ->
          check_int (Printf.sprintf "client %d response count" i)
            (List.length golden) (List.length lines);
          List.iteri
            (fun j (g, o) ->
              if g <> o then
                Alcotest.failf "client %d response %d differs:\n  %s\n  %s" i j
                  g o)
            (List.combine golden lines))
        results)

let test_server_half_closed_client () =
  with_server (fun ~engine:_ ~path ->
      (* [exchange] half-closes the write side before reading anything:
         the server must treat that as end-of-requests, not as a dead
         client, and still deliver every response. *)
      let lines = exchange path fault_requests in
      check_int "all responses arrive" (List.length fault_requests)
        (List.length lines))

let test_server_mid_batch_disconnect () =
  with_server (fun ~engine ~path ->
      let fd = connect path in
      send_all fd
        (String.concat "\n"
           [ "{\"op\":\"intra\",\"m\":64,\"k\":64,\"l\":64,\"buffer\":\"8KB\"}";
             "{\"op\":\"regime\",\"m\":64,\"k\":64,\"l\":64}" ]
        ^ "\n");
      (* vanish without reading a byte *)
      Unix.close fd;
      (* the daemon must shrug it off and serve the next client *)
      let lines = exchange path fault_requests in
      check_int "next client served" (List.length fault_requests)
        (List.length lines);
      check_bool "both connections counted" true
        (Metrics.get (Engine.metrics engine) "conns_accepted" >= 2))

let test_server_garbage_line () =
  with_server (fun ~engine:_ ~path ->
      let lines =
        exchange path
          [ "this is not json";
            "{\"op\":\"regime\",\"id\":\"ok\",\"m\":8,\"k\":8,\"l\":8}" ]
      in
      check_int "two responses" 2 (List.length lines);
      (match Json.parse (List.nth lines 0) with
      | Ok r ->
        check_bool "garbage rejected" true
          (Json.member "ok" r = Some (Json.Bool false))
      | Error e -> Alcotest.failf "reject line is not json: %s" e);
      match Json.parse (List.nth lines 1) with
      | Ok r ->
        check_bool "valid request still served" true
          (Json.member "ok" r = Some (Json.Bool true))
      | Error e -> Alcotest.failf "response is not json: %s" e)

let test_server_oversized_line () =
  with_server
    ~config:{ quick_config with Server.max_line = 512 }
    (fun ~engine ~path ->
      (* a valid request, then a line that blows the bound: the valid
         request's response is drained first, then the reject lands and
         the connection is closed *)
      let huge = String.make 2048 'x' in
      let lines =
        exchange path
          [ "{\"op\":\"regime\",\"id\":\"ok\",\"m\":8,\"k\":8,\"l\":8}"; huge ]
      in
      check_int "response then reject" 2 (List.length lines);
      (match Json.parse (List.nth lines 1) with
      | Ok r ->
        check_bool "reject is an error" true
          (Json.member "ok" r = Some (Json.Bool false))
      | Error e -> Alcotest.failf "reject line is not json: %s" e);
      check_bool "oversize recorded" true
        (Metrics.get (Engine.metrics engine) "conn_oversized_lines" >= 1))

let test_server_slow_loris () =
  with_server
    ~config:{ quick_config with Server.idle_timeout = 0.4 }
    (fun ~engine ~path ->
      (* the stalled client sends an incomplete line and then nothing *)
      let loris = connect path in
      send_all loris "{\"op\":\"intra\",";
      (* a concurrent fast client must be served while the loris stalls *)
      let t0 = Unix.gettimeofday () in
      let lines = exchange path fault_requests in
      let fast_elapsed = Unix.gettimeofday () -. t0 in
      check_int "fast client fully served" (List.length fault_requests)
        (List.length lines);
      check_bool "fast client not delayed behind the stalled one" true
        (fast_elapsed < 5.);
      (* the loris is evicted by the idle timeout: its connection reaches
         EOF without us ever completing a request line *)
      let leftovers = recv_lines loris in
      Alcotest.(check (list string)) "loris got nothing" [] leftovers;
      Unix.close loris;
      check_bool "idle timeout recorded" true
        (Metrics.get (Engine.metrics engine) "conn_idle_timeouts" >= 1))

let test_server_sigterm_drains () =
  let requests =
    [ "{\"op\":\"intra\",\"id\":1,\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}";
      "{\"op\":\"regime\",\"id\":2,\"m\":48,\"k\":64,\"l\":96}";
      "{\"op\":\"chain\",\"id\":3,\"m\":16,\"ks\":[24,32,16],\"buffer\":\"16KB\"}" ]
  in
  let golden =
    Engine.handle_lines (Engine.create (Engine.default_config ())) requests
  in
  let engine = Engine.create (Engine.default_config ()) in
  let path = sock_path () in
  let th = start_server engine path in
  let fd = connect path in
  (* requests are in flight (batch 64 means nothing flushed yet) when
     the signal lands *)
  send_all fd (String.concat "\n" requests ^ "\n");
  Thread.delay 0.15;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  let lines = recv_lines fd in
  Unix.close fd;
  Thread.join th;
  Alcotest.(check (list string)) "in-flight requests drained" golden lines;
  check_bool "socket file removed" true (not (Sys.file_exists path))

let test_server_inband_shutdown_unlinks () =
  let engine = Engine.create (Engine.default_config ()) in
  let path = sock_path () in
  let th = start_server engine path in
  let lines =
    exchange path
      [ "{\"op\":\"regime\",\"id\":1,\"m\":8,\"k\":8,\"l\":8}";
        "{\"op\":\"shutdown\",\"id\":\"bye\"}" ]
  in
  Thread.join th;
  check_int "response + shutdown ack" 2 (List.length lines);
  check_bool "socket file removed" true (not (Sys.file_exists path));
  check_bool "no longer accepting" true
    (match connect path with
    | fd ->
      Unix.close fd;
      false
    | exception Unix.Unix_error _ -> true)

let test_server_rejects_non_socket_path () =
  let path = Filename.temp_file "fusecu_not_a_socket" ".txt" in
  let engine = Engine.create (Engine.default_config ()) in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Server.serve_socket engine ~path () with
      | () -> Alcotest.fail "serve_socket accepted a regular file"
      | exception Failure msg ->
        let contains sub =
          let n = String.length sub and m = String.length msg in
          let rec find i =
            i + n <= m && (String.sub msg i n = sub || find (i + 1))
          in
          find 0
        in
        check_bool "message names the problem" true (contains "not a socket");
        check_bool "file left in place" true (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics () =
  let m = Metrics.create () in
  check_int "zero" 0 (Metrics.get m "x");
  Metrics.incr m "x";
  Metrics.incr ~by:3 m "x";
  check_int "accumulates" 4 (Metrics.get m "x");
  Metrics.incr ~by:0 m "x";
  check_int "by 0 is a no-op" 4 (Metrics.get m "x");
  Metrics.incr m "a";
  Alcotest.(check (list (pair string int)))
    "counters sorted"
    [ ("a", 1); ("x", 4) ]
    (Metrics.counters m);
  check_str "counters_json deterministic" "{\"a\":1,\"x\":4}"
    (Json.print (Metrics.counters_json m));
  Metrics.observe m "lat" 0.001;
  Metrics.observe m "lat" 0.002;
  (* the full dump parses and carries the histogram *)
  match Json.parse (Json.print (Metrics.to_json m)) with
  | Ok j -> check_bool "dump has latencies" true (Json.member "latency" j <> None)
  | Error e -> Alcotest.failf "metrics dump does not round-trip: %s" e

let histogram_buckets m name =
  match Json.member "latency" (Metrics.to_json m) with
  | Some lat -> (
    match Json.member name lat with
    | Some h -> (
      match Json.member "buckets" h with
      | Some (Json.List bs) -> bs
      | _ -> Alcotest.fail "histogram has no bucket list")
    | None -> Alcotest.failf "histogram %s missing" name)
  | None -> Alcotest.fail "latency section missing"

(* Bucket boundaries: bin i covers [2^i, 2^(i+1)) µs. An observation of
   exactly 1 µs must land in the first bin (le_us = 2), sub-µs values
   clamp into it too, and anything past 2^29 µs goes to the open
   overflow bin (le_us = null). *)
let test_histogram_bucket_boundaries () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 1e-6;
  (match histogram_buckets m "lat" with
  | [ Json.Obj [ ("le_us", Json.Int 2); ("n", Json.Int 1) ] ] -> ()
  | bs -> Alcotest.failf "1us bucket wrong: %s" (Json.print (Json.List bs)));
  Metrics.observe m "lat" 1e-9;
  Metrics.observe m "lat" 0.;
  (match histogram_buckets m "lat" with
  | [ Json.Obj [ ("le_us", Json.Int 2); ("n", Json.Int 3) ] ] -> ()
  | bs -> Alcotest.failf "sub-us clamp wrong: %s" (Json.print (Json.List bs)));
  (* 2^29 µs ≈ 537 s: already the open bucket; so is an hour *)
  Metrics.observe m "lat" 537.;
  Metrics.observe m "lat" 3600.;
  (match histogram_buckets m "lat" with
  | [ Json.Obj [ ("le_us", Json.Int 2); _ ];
      Json.Obj [ ("le_us", Json.Null); ("n", Json.Int 2) ] ] -> ()
  | bs -> Alcotest.failf "overflow bucket wrong: %s" (Json.print (Json.List bs)));
  (* 2 µs is the *closed* upper bound of bin 0: it belongs to bin 1 *)
  Metrics.observe m "edge" 2e-6;
  match histogram_buckets m "edge" with
  | [ Json.Obj [ ("le_us", Json.Int 4); ("n", Json.Int 1) ] ] -> ()
  | bs -> Alcotest.failf "2us boundary wrong: %s" (Json.print (Json.List bs))

let test_gauges () =
  let m = Metrics.create () in
  Alcotest.(check (list (pair string (float 0.)))) "empty" [] (Metrics.gauges m);
  (* gauge-free dumps must not grow a gauges key (golden stability) *)
  check_bool "no gauges key when unset" true
    (Json.member "gauges" (Metrics.to_json m) = None);
  Metrics.set_gauge m "b" 2.;
  Metrics.set_gauge m "a" 1.5;
  Metrics.set_gauge m "b" 3.;
  Alcotest.(check (list (pair string (float 0.))))
    "sorted, last write wins"
    [ ("a", 1.5); ("b", 3.) ]
    (Metrics.gauges m);
  check_bool "gauges in dump" true
    (Json.member "gauges" (Metrics.to_json m)
    = Some (Json.Obj [ ("a", Json.Float 1.5); ("b", Json.Float 3.) ]))

let test_prometheus_exposition () =
  let m = Metrics.create () in
  Metrics.incr ~by:4 m "requests";
  Metrics.set_gauge m "cache_entries" 7.;
  Metrics.observe m "lat" 1e-6;
  Metrics.observe m "lat" 3e-6;
  Metrics.observe m "lat" 3600.;
  let text = Metrics.to_prometheus m in
  let expected =
    String.concat "\n"
      [ "# TYPE fusecu_requests counter";
        "fusecu_requests 4";
        "# TYPE fusecu_cache_entries gauge";
        "fusecu_cache_entries 7";
        "# TYPE fusecu_lat_seconds histogram";
        "fusecu_lat_seconds_bucket{le=\"2e-06\"} 1";
        "fusecu_lat_seconds_bucket{le=\"4e-06\"} 2";
        "fusecu_lat_seconds_bucket{le=\"+Inf\"} 3";
        "fusecu_lat_seconds_sum 3600.000004";
        "fusecu_lat_seconds_count 3";
        "" ]
  in
  check_str "exposition text" expected text;
  (* custom prefix + name sanitization *)
  let m2 = Metrics.create () in
  Metrics.incr m2 "weird-name!";
  check_str "sanitized"
    "# TYPE svc_weird_name_ counter\nsvc_weird_name_ 1\n"
    (Metrics.to_prometheus ~prefix:"svc_" m2)

(* ------------------------------------------------------------------ *)
(* Observability through the engine                                    *)

let test_stats_observability_fields () =
  let engine = Engine.create (Engine.default_config ()) in
  let out =
    Engine.handle_lines engine
      [ "{\"op\":\"regime\",\"m\":8,\"k\":8,\"l\":8}";
        "{\"op\":\"intra\",\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}";
        "not json";
        "{\"op\":\"stats\"}" ]
  in
  let stats = Result.get_ok (Json.parse (List.nth out 3)) in
  let result = Option.get (Json.member "result" stats) in
  (* one logical tick per request line, including the reject *)
  check_bool "uptime_ticks counts lines" true
    (Json.member "uptime_ticks" result = Some (Json.Int 4));
  let cache = Option.get (Json.member "cache" result) in
  let entries =
    match Json.member "entries" cache with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.fail "entries missing"
  in
  match Json.member "shard_entries" cache with
  | Some (Json.List shards) ->
    check_bool "one count per shard" true (List.length shards > 0);
    check_int "shard occupancy sums to entries" entries
      (List.fold_left
         (fun acc j ->
           match j with
           | Json.Int n -> acc + n
           | _ -> Alcotest.fail "non-int shard count")
         0 shards)
  | _ -> Alcotest.fail "shard_entries missing"

let test_metrics_op () =
  let engine = Engine.create (Engine.default_config ()) in
  let out =
    Engine.handle_lines engine
      [ "{\"op\":\"intra\",\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}";
        "{\"op\":\"metrics\",\"id\":\"m1\"}" ]
  in
  check_int "both answered" 2 (List.length out);
  let resp = Result.get_ok (Json.parse (List.nth out 1)) in
  check_bool "op echoed" true
    (Json.member "op" resp = Some (Json.String "metrics"));
  check_bool "id echoed" true
    (Json.member "id" resp = Some (Json.String "m1"));
  let result = Option.get (Json.member "result" resp) in
  check_bool "counters present" true (Json.member "counters" result <> None);
  check_bool "latency present" true (Json.member "latency" result <> None);
  (match Json.member "gauges" result with
  | Some g ->
    check_bool "uptime gauge" true (Json.member "uptime_ticks" g <> None);
    check_bool "cache gauge" true (Json.member "cache_entries" g <> None)
  | None -> Alcotest.fail "gauges missing from metrics op");
  (* unknown-op guidance now lists the metrics op *)
  let err =
    List.hd (Engine.handle_lines engine [ "{\"op\":\"nonsense\"}" ])
  in
  check_bool "unknown-op message lists metrics" true
    (match Json.parse err with
    | Ok r -> (
      match
        Option.bind (Json.member "error" r) (Json.member "message")
      with
      | Some (Json.String e) ->
        let contains sub s =
          let n = String.length sub and m = String.length s in
          let rec find i = i + n <= m && (String.sub s i n = sub || find (i + 1)) in
          find 0
        in
        contains "metrics" e
      | _ -> false)
    | Error _ -> false)

(* The acceptance criterion for the observability layer: turning on
   tracing AND debug logging must not change a single response byte. *)
let test_replay_identical_under_tracing_and_logging () =
  let plain = replay (Engine.default_config ()) () in
  let captured = ref 0 in
  Fusecu_util.Log.set_sink (fun _ -> incr captured);
  Fusecu_util.Log.set_level (Some Fusecu_util.Log.Debug);
  Fusecu_util.Trace.start ();
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Fusecu_util.Trace.stop ();
        Fusecu_util.Trace.clear ();
        Fusecu_util.Log.set_level None)
      (fun () -> replay (Engine.default_config ()) ())
  in
  check_bool "responses byte-identical" true (plain = traced);
  check_bool "yet logging was live" true (!captured > 0)

let test_metrics_exporter () =
  let engine = Engine.create (Engine.default_config ()) in
  ignore
    (Engine.handle_lines engine
       [ "{\"op\":\"intra\",\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}" ]);
  let exp =
    Server.start_metrics_exporter
      ~render:(fun () -> Engine.prometheus engine)
      ~addr:"127.0.0.1:0"
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop_metrics_exporter exp;
      (* stopping twice must be harmless *)
      Server.stop_metrics_exporter exp)
    (fun () ->
      let port = Server.exporter_port exp in
      check_bool "bound an ephemeral port" true (port > 0);
      let scrape () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
            recv_lines fd)
      in
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec find i = i + n <= m && (String.sub s i n = sub || find (i + 1)) in
        find 0
      in
      let body = String.concat "\n" (scrape ()) in
      check_bool "counter exposed" true
        (contains "# TYPE fusecu_requests counter" body);
      check_bool "histogram exposed" true
        (contains "fusecu_latency_intra_seconds_count 1" body);
      check_bool "gauges refreshed per scrape" true
        (contains "# TYPE fusecu_uptime_ticks gauge" body);
      (* a second scrape works: one connection = one exposition *)
      let body2 = String.concat "\n" (scrape ()) in
      check_bool "second scrape served" true
        (contains "fusecu_requests" body2))

let test_exporter_rejects_bad_addr () =
  List.iter
    (fun addr ->
      match
        Server.start_metrics_exporter ~render:(fun () -> "") ~addr
      with
      | exception Invalid_argument _ -> ()
      | exp ->
        Server.stop_metrics_exporter exp;
        Alcotest.failf "accepted %S" addr)
    [ ""; "127.0.0.1:"; "127.0.0.1:notaport"; "127.0.0.1:70000"; ":-1" ]

(* ------------------------------------------------------------------ *)
(* plan_model                                                          *)

let test_plan_model_parse () =
  (match parse_ok "{\"op\":\"plan_model\",\"model\":\"BeRt\",\"layers\":2}" with
  | _, Protocol.Call (Protocol.Plan_model { model; layers; buffer; _ }) ->
    check_str "model lowercased" "bert" model;
    check_int "layers" 2 layers;
    check_int "default buffer" (512 * 1024) buffer.Fusecu_loopnest.Buffer.bytes
  | _ -> Alcotest.fail "bad plan_model parse");
  (match parse_ok "{\"op\":\"plan_model\",\"model\":\"bert\"}" with
  | _, Protocol.Call (Protocol.Plan_model { layers; _ }) ->
    check_int "layers defaults to 1" 1 layers
  | _ -> Alcotest.fail "bad plan_model parse");
  let code line = (parse_reject line).Protocol.code in
  check_bool "missing model" true
    (code "{\"op\":\"plan_model\"}" = Protocol.Bad_request);
  check_bool "zero layers" true
    (code "{\"op\":\"plan_model\",\"model\":\"bert\",\"layers\":0}"
    = Protocol.Bad_request);
  check_bool "oversized layers" true
    (code "{\"op\":\"plan_model\",\"model\":\"bert\",\"layers\":65}"
    = Protocol.Bad_request)

let plan_model_line = "{\"op\":\"plan_model\",\"id\":1,\"model\":\"bert\"}"

(* Repeating a plan_model re-prices every fusion group through the plan
   cache: the second run must add no misses (every group eval hits) and
   return byte-identical responses. *)
let test_plan_model_cache_reuse () =
  let engine = Engine.create (Engine.default_config ()) in
  let first = Engine.handle_lines engine [ plan_model_line ] in
  let st1 = Engine.cache_stats engine in
  check_bool "first run misses" true (st1.Cache.misses > 0);
  let second = Engine.handle_lines engine [ plan_model_line ] in
  let st2 = Engine.cache_stats engine in
  check_bool "responses identical" true (first = second);
  check_int "repeat adds no misses" st1.Cache.misses st2.Cache.misses;
  check_bool "repeat is all hits" true (st2.Cache.hits > st1.Cache.hits)

(* The groups are cached under ordinary intra/chain keys, so a later
   point request for one of the solo operators is already warm. *)
let test_plan_model_seeds_point_requests () =
  let engine = Engine.create (Engine.default_config ()) in
  ignore (Engine.handle_lines engine [ plan_model_line ]);
  let st1 = Engine.cache_stats engine in
  ignore
    (Engine.handle_lines engine
       [ "{\"op\":\"intra\",\"id\":2,\"m\":16384,\"k\":768,\"l\":768}" ]);
  let st2 = Engine.cache_stats engine in
  check_int "wq already cached" st1.Cache.misses st2.Cache.misses;
  check_bool "hit" true (st2.Cache.hits > st1.Cache.hits)

let test_plan_model_counters () =
  let engine = Engine.create (Engine.default_config ()) in
  ignore (Engine.handle_lines engine [ plan_model_line ]);
  check_int "requests_plan_model" 1
    (Metrics.get (Engine.metrics engine) "requests_plan_model")

let test_plan_model_unknown_model () =
  let out =
    Engine.handle_lines
      (Engine.create (Engine.default_config ()))
      [ "{\"op\":\"plan_model\",\"id\":1,\"model\":\"resnet\"}" ]
  in
  match out with
  | [ line ] -> (
    match Json.parse line with
    | Ok r ->
      check_bool "error response" true (Json.member "ok" r = Some (Json.Bool false))
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected one response"

(* ------------------------------------------------------------------ *)
(* nest                                                                *)

let test_nest_parse () =
  (match
     parse_ok "{\"op\":\"nest\",\"kind\":\"MatMul\",\"m\":4,\"k\":5,\"l\":6}"
   with
  | _, Protocol.Call (Protocol.Nest { kind = Protocol.N_matmul { m; k; l }; _ })
    ->
    check_int "m" 4 m;
    check_int "k" 5 k;
    check_int "l" 6 l
  | _ -> Alcotest.fail "bad nest matmul parse");
  (match
     parse_ok
       "{\"op\":\"nest\",\"kind\":\"conv2d\",\"n\":1,\"c\":2,\"h\":6,\"w\":6,\
        \"k\":3,\"r\":3,\"s\":3}"
   with
  | _, Protocol.Call (Protocol.Nest { kind = Protocol.N_conv2d cv; _ }) ->
    check_int "stride defaults to 1" 1 cv.Fusecu_tensor.Conv.stride;
    check_int "padding defaults to 0" 0 cv.Fusecu_tensor.Conv.padding;
    check_int "dilation defaults to 1" 1 cv.Fusecu_tensor.Conv.dilation
  | _ -> Alcotest.fail "bad nest conv2d parse");
  (match
     parse_ok
       "{\"op\":\"nest\",\"kind\":\"attention\",\"seq_q\":8,\"seq_k\":8,\"d\":4}"
   with
  | _, Protocol.Call (Protocol.Nest { kind = Protocol.N_attention { d; dv; _ }; _ })
    ->
    check_int "dv defaults to d" d dv
  | _ -> Alcotest.fail "bad nest attention parse");
  let code line = (parse_reject line).Protocol.code in
  check_bool "missing kind" true
    (code "{\"op\":\"nest\",\"m\":4,\"k\":4,\"l\":4}" = Protocol.Bad_request);
  check_bool "unknown kind" true
    (code "{\"op\":\"nest\",\"kind\":\"warp\",\"m\":4}" = Protocol.Bad_request);
  check_bool "invalid conv rejected at parse" true
    (code
       "{\"op\":\"nest\",\"kind\":\"conv2d\",\"n\":1,\"c\":1,\"h\":3,\"w\":3,\
        \"k\":1,\"r\":5,\"s\":5}"
    = Protocol.Bad_request);
  check_bool "missing dims" true
    (code "{\"op\":\"nest\",\"kind\":\"batched_mm\",\"b\":2}"
    = Protocol.Bad_request)

(* The service's nest matmul answer must carry exactly the legacy
   exhaustive optimum (the nest mapper's MM-instance conformance,
   end to end through the wire). *)
let test_nest_matmul_matches_legacy () =
  let out =
    Engine.handle_lines
      (Engine.create (Engine.default_config ()))
      [ "{\"op\":\"nest\",\"id\":1,\"kind\":\"matmul\",\"m\":12,\"k\":8,\
         \"l\":10,\"buffer\":64}" ]
  in
  let legacy =
    match
      Fusecu_dse.Exhaustive.search ~pool:Fusecu_util.Pool.sequential
        (Fusecu_tensor.Matmul.make ~m:12 ~k:8 ~l:10 ())
        (Fusecu_loopnest.Buffer.make 64)
    with
    | Some r -> r
    | None -> Alcotest.fail "legacy search infeasible"
  in
  match out with
  | [ line ] -> (
    match Json.parse line with
    | Error e -> Alcotest.fail e
    | Ok r ->
      let result = Option.get (Json.member "result" r) in
      check_bool "ok" true (Json.member "ok" r = Some (Json.Bool true));
      check_bool "traffic = legacy exhaustive" true
        (Json.member "traffic" result
        = Some
            (Json.Int legacy.Fusecu_dse.Exhaustive.cost.Fusecu_loopnest.Cost.total));
      let tiles d =
        Fusecu_loopnest.Tiling.get
          legacy.Fusecu_dse.Exhaustive.schedule.Fusecu_loopnest.Schedule.tiling d
      in
      check_bool "tiles = legacy tiles" true
        (Json.member "tiles" result
        = Some
            (Json.List
               [ Json.Int (tiles Fusecu_tensor.Dim.M);
                 Json.Int (tiles Fusecu_tensor.Dim.K);
                 Json.Int (tiles Fusecu_tensor.Dim.L) ])))
  | _ -> Alcotest.fail "expected one response"

let nest_line =
  "{\"op\":\"nest\",\"id\":9,\"kind\":\"conv2d\",\"n\":1,\"c\":2,\"h\":6,\
   \"w\":6,\"k\":3,\"r\":3,\"s\":3,\"buffer\":64}"

let test_nest_cache_reuse () =
  let engine = Engine.create (Engine.default_config ()) in
  let first = Engine.handle_lines engine [ nest_line ] in
  let st1 = Engine.cache_stats engine in
  let second = Engine.handle_lines engine [ nest_line ] in
  let st2 = Engine.cache_stats engine in
  check_bool "responses identical" true (first = second);
  check_int "repeat adds no misses" st1.Cache.misses st2.Cache.misses;
  check_bool "repeat hits" true (st2.Cache.hits > st1.Cache.hits);
  check_int "requests_nest" 2 (Metrics.get (Engine.metrics engine) "requests_nest")

let test_nest_outcome_codec () =
  let r =
    Protocol.R_nest
      { Protocol.n_axes = [ "m"; "k"; "l" ];
        n_extents = [ 12; 8; 10 ];
        n_tiles = [ 6; 8; 1 ];
        n_order = [ "m"; "l"; "k" ];
        n_traffic = 376;
        n_ideal = 296;
        n_footprint = 62;
        n_points = 960;
        n_evaluated = 44 }
  in
  match Protocol.outcome_of_json (Protocol.outcome_to_json r) with
  | Ok r' -> check_bool "store codec round-trips R_nest" true (r = r')
  | Error e -> Alcotest.fail e

let test_nest_infeasible () =
  let out =
    Engine.handle_lines
      (Engine.create (Engine.default_config ()))
      [ "{\"op\":\"nest\",\"id\":3,\"kind\":\"matmul\",\"m\":64,\"k\":64,\
         \"l\":64,\"buffer\":2}" ]
  in
  match out with
  | [ line ] -> (
    match Json.parse line with
    | Ok r -> (
      check_bool "error response" true
        (Json.member "ok" r = Some (Json.Bool false));
      match Json.member "error" r with
      | Some e ->
        check_bool "infeasible code" true
          (Json.member "code" e = Some (Json.String "infeasible"))
      | None -> Alcotest.fail "missing error object")
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "expected one response"

(* ------------------------------------------------------------------ *)
(* Trace-context envelope: splice, strip, parse                        *)

let test_tc_envelope () =
  let plain = "{\"op\":\"stats\",\"id\":3}" in
  let stamped = Protocol.with_tc (Some "r7.12") plain in
  check_str "splice before the closing brace"
    "{\"op\":\"stats\",\"id\":3,\"tc\":\"r7.12\"}" stamped;
  check_str "strip restores the exact bytes" plain
    (Protocol.strip_tc ~tc:"r7.12" stamped);
  check_str "empty object splices without a comma" "{\"tc\":\"r1.0\"}"
    (Protocol.with_tc (Some "r1.0") "{}");
  check_str "None is the identity" plain (Protocol.with_tc None plain);
  check_str "non-object line unchanged" "nonsense"
    (Protocol.with_tc (Some "r1.0") "nonsense");
  check_str "strip without the suffix is the identity" plain
    (Protocol.strip_tc ~tc:"r9.9" plain);
  check_str "strip of a different tc is the identity" stamped
    (Protocol.strip_tc ~tc:"r7.13" stamped);
  (match Protocol.parse_line stamped with
  | Ok (Json.Int 3, Some tc, Protocol.Stats) -> check_str "tc parsed" "r7.12" tc
  | _ -> Alcotest.fail "stamped stats line did not parse");
  match Protocol.parse_line plain with
  | Ok (_, None, Protocol.Stats) -> ()
  | _ -> Alcotest.fail "unstamped line must carry no tc"

(* End-to-end propagation: a router-stamped request flows through the
   engine; the response echoes the stamp (strippable back to the plain
   bytes — the routed-golden precondition) and the engine's spans carry
   the context in their args, which is what lets a merged fleet trace
   correlate backend work with router spans. *)
let test_tc_propagation_roundtrip () =
  let plain =
    "{\"op\":\"intra\",\"id\":7,\"m\":96,\"k\":64,\"l\":48,\"buffer\":\"8KB\"}"
  in
  let stamped = Protocol.with_tc (Some "r1.5") plain in
  let run line =
    Engine.handle_lines (Engine.create (Engine.default_config ())) [ line ]
  in
  let baseline = run plain in
  Fusecu_util.Trace.start ();
  let traced, events =
    Fun.protect
      ~finally:(fun () ->
        Fusecu_util.Trace.stop ();
        Fusecu_util.Trace.clear ())
      (fun () ->
        let t = run stamped in
        (t, Fusecu_util.Trace.events ()))
  in
  (match (baseline, traced) with
  | [ b ], [ t ] ->
    check_str "stamped response = plain response + tc echo"
      (Protocol.with_tc (Some "r1.5") b) t;
    check_str "stripping the echo restores the plain bytes" b
      (Protocol.strip_tc ~tc:"r1.5" t)
  | _ -> Alcotest.fail "expected exactly one response per request");
  let carries e =
    List.exists
      (fun (k, v) -> k = "tc" && Json.equal v (Json.String "r1.5"))
      e.Fusecu_util.Trace.args
  in
  check_bool "an engine span carries the propagated context" true
    (List.exists carries events)

(* ------------------------------------------------------------------ *)
(* Router: 1-shard control-line identity                               *)

(* A 1-shard routed tier must reproduce the unrouted server transcript
   byte for byte INCLUDING control lines: the router passes the single
   backend's stats response through verbatim instead of re-wrapping it
   in a fleet merge (Router doc, "Determinism"). *)
let routed_identity_requests = fault_requests @ [ "{\"op\":\"stats\",\"id\":99}" ]

let test_router_single_shard_stats_identity () =
  let direct =
    with_server (fun ~engine:_ ~path -> exchange path routed_identity_requests)
  in
  let routed =
    with_server (fun ~engine:_ ~path ->
        let req = Filename.temp_file "fusecu_route_req" ".ndjson" in
        let resp = Filename.temp_file "fusecu_route_resp" ".ndjson" in
        Fun.protect
          ~finally:(fun () ->
            (try Sys.remove req with Sys_error _ -> ());
            try Sys.remove resp with Sys_error _ -> ())
          (fun () ->
            let oc = open_out req in
            List.iter
              (fun l -> output_string oc (l ^ "\n"))
              routed_identity_requests;
            close_out oc;
            let input = open_in req and output = open_out resp in
            Fun.protect
              ~finally:(fun () ->
                close_in_noerr input;
                close_out_noerr output)
              (fun () -> Router.run ~backends:[ path ] ~input ~output ());
            let ic = open_in resp in
            let rec lines acc =
              match input_line ic with
              | l -> lines (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
                lines [])))
  in
  check_int "response counts" (List.length direct) (List.length routed);
  List.iteri
    (fun i (d, r) ->
      if d <> r then
        Alcotest.failf "line %d diverges:\n  direct: %s\n  routed: %s" i d r)
    (List.combine direct routed)

(* ------------------------------------------------------------------ *)
(* Fleet: histogram codec and metric merging                           *)

let test_fleet_histogram_codec () =
  let open Fleet in
  (* empty histogram round-trips through the sparse encoding *)
  (match parse_histogram (histogram_to_json (empty_hist ())) with
  | Ok h ->
    check_int "empty count" 0 h.count;
    check_bool "empty bins" true (Array.for_all (( = ) 0) h.bins)
  | Error e -> Alcotest.failf "empty round-trip: %s" e);
  (* a saturated final open bucket (null bound) round-trips *)
  let bins = Array.make Metrics.buckets 0 in
  bins.(Metrics.buckets - 1) <- 5;
  let sat = { count = 5; total_s = 5000.; bins } in
  (match parse_histogram (histogram_to_json sat) with
  | Ok h ->
    check_int "open-bucket population survives" 5 h.bins.(Metrics.buckets - 1);
    check_int "count" 5 h.count
  | Error e -> Alcotest.failf "saturated round-trip: %s" e);
  (* merge is bucket-wise *)
  let b1 = Array.make Metrics.buckets 0 and b2 = Array.make Metrics.buckets 0 in
  b1.(0) <- 2;
  b1.(3) <- 1;
  b2.(3) <- 4;
  b2.(Metrics.buckets - 1) <- 1;
  let m =
    merge_histograms
      { count = 3; total_s = 1.; bins = b1 }
      { count = 5; total_s = 2.; bins = b2 }
  in
  check_int "merged count" 8 m.count;
  check_int "bucket 0" 2 m.bins.(0);
  check_int "bucket 3 (both sides)" 5 m.bins.(3);
  check_int "open bucket" 1 m.bins.(Metrics.buckets - 1);
  (* refusals: snapshots that don't fit the shared layout are errors,
     never guessed at *)
  let bucket le n = Json.Obj [ ("le_us", le); ("n", Json.Int n) ] in
  let hist ?(count = 1) buckets =
    Json.Obj
      [ ("count", Json.Int count);
        ("total_s", Json.Float 0.);
        ("buckets", Json.List buckets) ]
  in
  let refused what j =
    check_bool what true (Result.is_error (parse_histogram j))
  in
  refused "bound off the log2 lattice" (hist [ bucket (Json.Int 3) 1 ]);
  refused "bucket sum disagrees with count"
    (hist ~count:2 [ bucket (Json.Int 2) 1 ]);
  refused "negative count" (hist ~count:(-1) []);
  refused "not an object" (Json.Int 7)

let test_fleet_merge_metrics_sums () =
  let dump incrs obs ticks =
    let m = Metrics.create () in
    List.iter (fun (k, n) -> Metrics.incr ~by:n m k) incrs;
    List.iter (fun (k, s) -> Metrics.observe m k s) obs;
    Metrics.set_gauge m "uptime_ticks" (float_of_int ticks);
    Metrics.set_gauge m "cache_entries" 4.;
    Metrics.to_json m
  in
  let d0 =
    dump
      [ ("requests", 3) ]
      [ ("latency_intra", 0.0015); ("latency_intra", 0.5) ]
      10
  in
  let d1 =
    dump
      [ ("requests", 2); ("compute_errors", 1) ]
      [ ("latency_intra", 0.002); ("latency_chain", 1.0) ]
      7
  in
  check_bool "malformed dump refused" true
    (Result.is_error (Fleet.merge_metrics ~uptime_ticks:0 [ Json.Int 1 ]));
  match Fleet.merge_metrics ~uptime_ticks:42 [ d0; d1 ] with
  | Error e -> Alcotest.fail e
  | Ok merged ->
    let counter name =
      match Json.member "counters" merged with
      | Some (Json.Obj kvs) -> (
        match List.assoc_opt name kvs with Some (Json.Int n) -> n | _ -> 0)
      | _ -> Alcotest.fail "merged dump has no counters"
    in
    check_int "shared counters sum" 5 (counter "requests");
    check_int "one-sided counters union in" 1 (counter "compute_errors");
    let hist name =
      match Json.member "latency" merged with
      | Some (Json.Obj kvs) -> (
        match List.assoc_opt name kvs with
        | Some h -> (
          match Fleet.parse_histogram h with
          | Ok h -> h
          | Error e -> Alcotest.fail e)
        | None -> Alcotest.failf "histogram %s missing from merge" name)
      | _ -> Alcotest.fail "merged dump has no latency family"
    in
    check_int "histogram counts add" 3 (hist "latency_intra").Fleet.count;
    check_int "one-sided histogram unions in" 1
      (hist "latency_chain").Fleet.count;
    (* bucket-wise, not count-wise: 1.5 ms and 2 ms share a log2 bin,
       0.5 s lands elsewhere *)
    let h = hist "latency_intra" in
    check_int "shared bin holds both sides" 2
      h.Fleet.bins.(Metrics.bucket_of_seconds 0.002);
    check_int "distant bin unmerged" 1
      h.Fleet.bins.(Metrics.bucket_of_seconds 0.5);
    let gauge name =
      match Json.member "gauges" merged with
      | Some g -> Json.member name g
      | None -> None
    in
    check_bool "router clock replaces summed ticks" true
      (match gauge "uptime_ticks" with
      | Some (Json.Int 42) | Some (Json.Float 42.) -> true
      | _ -> false);
    check_bool "other gauges union-sum" true
      (match gauge "cache_entries" with
      | Some (Json.Float 8.) | Some (Json.Int 8) -> true
      | _ -> false);
    check_bool "per-shard dumps preserved in shard order" true
      (match Json.member "shards" merged with
      | Some s ->
        Json.equal s
          (Json.List
             (List.mapi
                (fun i d ->
                  Json.Obj [ ("shard", Json.Int i); ("result", d) ])
                [ d0; d1 ]))
      | None -> false)

(* Property: for arbitrary well-formed shard dumps, the fleet merge is
   exactly the element-wise sum — counters counter-wise, histograms
   bucket-wise — with the router's clock substituted for the summed
   ticks and every input preserved under "shards". *)
let prop_fleet_merge_is_sum =
  let counter_names = [ "requests"; "requests_intra"; "compute_errors" ] in
  let hist_names = [ "latency_intra"; "latency_chain" ] in
  let shard_gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 4)
           (pair (oneofl counter_names) (int_bound 50)))
        (list_size (int_bound 4)
           (pair (oneofl hist_names)
              (list_size (int_bound 6) (float_bound_exclusive 20.)))))
  in
  let print_spec (cs, hs) =
    Printf.sprintf "counters=[%s] hists=[%s]"
      (String.concat ";"
         (List.map (fun (k, n) -> Printf.sprintf "%s+%d" k n) cs))
      (String.concat ";"
         (List.map
            (fun (k, o) -> Printf.sprintf "%s(%d obs)" k (List.length o))
            hs))
  in
  QCheck.Test.make ~name:"fleet metrics merge = element-wise sum" ~count:100
    (QCheck.make
       ~print:(QCheck.Print.list print_spec)
       QCheck.Gen.(list_size (1 -- 3) shard_gen))
    (fun specs ->
      let dumps =
        List.mapi
          (fun i (counters, hists) ->
            let m = Metrics.create () in
            List.iter (fun (k, n) -> Metrics.incr ~by:n m k) counters;
            List.iter (fun (k, obs) -> List.iter (Metrics.observe m k) obs)
              hists;
            Metrics.set_gauge m "uptime_ticks" (float_of_int i);
            Metrics.to_json m)
          specs
      in
      match Fleet.merge_metrics ~uptime_ticks:99 dumps with
      | Error e -> QCheck.Test.fail_report e
      | Ok merged ->
        let counter_of dump name =
          match Json.member "counters" dump with
          | Some (Json.Obj kvs) -> (
            match List.assoc_opt name kvs with
            | Some (Json.Int n) -> n
            | _ -> 0)
          | _ -> 0
        in
        let hist_of dump name =
          match Json.member "latency" dump with
          | Some (Json.Obj kvs) -> (
            match List.assoc_opt name kvs with
            | Some h -> (
              match Fleet.parse_histogram h with
              | Ok h -> Some h
              | Error e -> QCheck.Test.fail_report e)
            | None -> None)
          | _ -> None
        in
        let counters_sum =
          List.for_all
            (fun name ->
              counter_of merged name
              = List.fold_left (fun acc d -> acc + counter_of d name) 0 dumps)
            counter_names
        in
        let hists_sum =
          List.for_all
            (fun name ->
              let parts = List.filter_map (fun d -> hist_of d name) dumps in
              match hist_of merged name with
              | None -> parts = []
              | Some m ->
                m.Fleet.count
                = List.fold_left (fun acc h -> acc + h.Fleet.count) 0 parts
                && Array.for_all Fun.id
                     (Array.init Metrics.buckets (fun b ->
                          m.Fleet.bins.(b)
                          = List.fold_left
                              (fun acc h -> acc + h.Fleet.bins.(b))
                              0 parts)))
            hist_names
        in
        let clock_replaced =
          match Json.member "gauges" merged with
          | Some g -> (
            match Json.member "uptime_ticks" g with
            | Some (Json.Int 99) | Some (Json.Float 99.) -> true
            | _ -> false)
          | None -> false
        in
        let shards_kept =
          match Json.member "shards" merged with
          | Some s ->
            Json.equal s
              (Json.List
                 (List.mapi
                    (fun i d ->
                      Json.Obj [ ("shard", Json.Int i); ("result", d) ])
                    dumps))
          | None -> false
        in
        counters_sum && hists_sum && clock_replaced && shards_kept)

(* ------------------------------------------------------------------ *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "fusecu-service"
    [ ( "json",
        [ Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "surrogate escapes" `Quick test_json_surrogates ]
      );
      ("json-properties", qcheck [ prop_json_roundtrip; prop_json_hum_roundtrip ]);
      ( "cache",
        [ Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
          Alcotest.test_case "snapshot consistent under load" `Quick
            test_cache_snapshot_consistent_under_load;
          Alcotest.test_case "shard balance (full-string hash)" `Quick
            test_cache_shard_balance ]
        @ qcheck [ prop_cache_never_exceeds_capacity ] );
      ( "protocol",
        [ Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "rejects" `Quick test_protocol_rejects;
          Alcotest.test_case "canonicalization" `Quick
            test_protocol_canonicalization;
          Alcotest.test_case "trace-context envelope" `Quick test_tc_envelope ]
      );
      ( "engine",
        [ Alcotest.test_case "transpose symmetry" `Quick test_engine_symmetry;
          Alcotest.test_case "fixture matches golden" `Quick
            test_fixture_replay_matches_golden;
          Alcotest.test_case "cache on/off identical" `Quick
            test_fixture_cache_on_off_identical;
          Alcotest.test_case "domains/batch invariant" `Quick
            test_fixture_domains_and_batch_invariant;
          Alcotest.test_case "hit rate positive" `Quick
            test_fixture_hit_rate_positive;
          Alcotest.test_case "mapper invariant (bytes + no refinement)" `Quick
            test_fixture_mapper_invariant;
          Alcotest.test_case "mapper parsing" `Quick test_mapper_parsing;
          Alcotest.test_case "plan_model parse" `Quick test_plan_model_parse;
          Alcotest.test_case "plan_model cache reuse" `Quick
            test_plan_model_cache_reuse;
          Alcotest.test_case "plan_model seeds point requests" `Quick
            test_plan_model_seeds_point_requests;
          Alcotest.test_case "plan_model counters" `Quick
            test_plan_model_counters;
          Alcotest.test_case "plan_model unknown model" `Quick
            test_plan_model_unknown_model;
          Alcotest.test_case "nest parse" `Quick test_nest_parse;
          Alcotest.test_case "nest matmul matches legacy" `Quick
            test_nest_matmul_matches_legacy;
          Alcotest.test_case "nest cache reuse" `Quick test_nest_cache_reuse;
          Alcotest.test_case "nest outcome codec" `Quick
            test_nest_outcome_codec;
          Alcotest.test_case "nest infeasible" `Quick test_nest_infeasible;
          Alcotest.test_case "shutdown barrier" `Quick
            test_shutdown_stops_processing ] );
      ( "server",
        [ Alcotest.test_case "concurrent clients deterministic" `Quick
            test_server_concurrent_clients_deterministic;
          Alcotest.test_case "half-closed client" `Quick
            test_server_half_closed_client;
          Alcotest.test_case "mid-batch disconnect" `Quick
            test_server_mid_batch_disconnect;
          Alcotest.test_case "garbage line" `Quick test_server_garbage_line;
          Alcotest.test_case "oversized line" `Quick test_server_oversized_line;
          Alcotest.test_case "slow loris vs fast client" `Quick
            test_server_slow_loris;
          Alcotest.test_case "sigterm drains in-flight" `Quick
            test_server_sigterm_drains;
          Alcotest.test_case "in-band shutdown unlinks" `Quick
            test_server_inband_shutdown_unlinks;
          Alcotest.test_case "non-socket path rejected" `Quick
            test_server_rejects_non_socket_path ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_metrics;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition ] );
      ( "observability",
        [ Alcotest.test_case "stats carries ticks and shard occupancy" `Quick
            test_stats_observability_fields;
          Alcotest.test_case "metrics op" `Quick test_metrics_op;
          Alcotest.test_case "replay identical under tracing+logging" `Quick
            test_replay_identical_under_tracing_and_logging;
          Alcotest.test_case "metrics exporter serves scrapes" `Quick
            test_metrics_exporter;
          Alcotest.test_case "exporter rejects bad addresses" `Quick
            test_exporter_rejects_bad_addr;
          Alcotest.test_case "trace-context propagation round-trip" `Quick
            test_tc_propagation_roundtrip ] );
      ( "fleet",
        [ Alcotest.test_case "histogram codec" `Quick
            test_fleet_histogram_codec;
          Alcotest.test_case "metrics merge sums" `Quick
            test_fleet_merge_metrics_sums ]
        @ qcheck [ prop_fleet_merge_is_sum ] );
      ( "router",
        [ Alcotest.test_case "1-shard stats byte-identity" `Quick
            test_router_single_shard_stats_identity ] ) ]