(* Persistent plan store: framing, recovery from every kind of damaged
   tail, duplicate-key resolution, compaction, and warm-replay
   byte-identity against the checked-in golden transcript. *)

open Fusecu_util
open Fusecu_service

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_tmp f =
  let path = Filename.temp_file "fusecu_test" ".store" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let open_exn path =
  match Store.open_ ~path with
  | Ok s -> s
  | Error e -> Alcotest.fail e

(* a few structurally different outcomes to persist; computed through
   the real engine so they exercise the full outcome serializer *)
let sample_outcomes =
  lazy
    (let engine = Engine.create (Engine.default_config ()) in
     List.filter_map
       (fun line ->
         match Protocol.parse_line line with
         | Ok (_, _, Protocol.Call c) -> (
           let canonical, _ = Protocol.canonicalize c in
           match Engine.compute engine canonical with
           | Ok outcome -> Some (Protocol.cache_key canonical, outcome)
           | Error _ -> None)
         | _ -> None)
       [ "{\"op\":\"intra\",\"m\":64,\"k\":48,\"l\":36,\"buffer\":\"64KB\"}";
         "{\"op\":\"fuse\",\"m\":64,\"k\":48,\"l\":36,\"l2\":24,\"buffer\":\"64KB\"}";
         "{\"op\":\"chain\",\"m\":32,\"ks\":[16,24,16],\"buffer\":\"64KB\"}";
         "{\"op\":\"regime\",\"m\":64,\"k\":48,\"l\":36,\"buffer\":\"64KB\"}" ])

let file_contents path = In_channel.with_open_bin path In_channel.input_all

let test_roundtrip () =
  let samples = Lazy.force sample_outcomes in
  check_bool "have samples" true (List.length samples >= 3);
  with_tmp (fun path ->
      let s = open_exn path in
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.flush s;
      check_int "appended" (List.length samples) (Store.appended s);
      Store.close s;
      let s = open_exn path in
      let r = Store.recovered s in
      Store.close s;
      check_int "records" (List.length samples) r.Store.records;
      check_int "dropped" 0 r.Store.dropped_records;
      check_int "dropped bytes" 0 r.Store.dropped_bytes;
      List.iter2
        (fun (k, o) (k', o') ->
          check_bool ("key " ^ k) true (k = k');
          check_bool ("outcome of " ^ k) true
            (Json.equal
               (Protocol.outcome_to_json o)
               (Protocol.outcome_to_json o')))
        samples r.Store.entries)

let test_duplicate_keys_last_wins () =
  let samples = Lazy.force sample_outcomes in
  let k0, o0 = List.nth samples 0 and _, o1 = List.nth samples 1 in
  with_tmp (fun path ->
      let s = open_exn path in
      Store.append s k0 o0;
      Store.append s "other" o1;
      Store.append s k0 o1 (* re-computation supersedes *);
      Store.close s;
      let s = open_exn path in
      let r = Store.recovered s in
      Store.close s;
      check_int "records before dedup" 3 r.Store.records;
      check_int "entries after dedup" 2 (List.length r.Store.entries);
      match List.assoc_opt k0 r.Store.entries with
      | Some o ->
        check_bool "later record won" true
          (Json.equal (Protocol.outcome_to_json o) (Protocol.outcome_to_json o1))
      | None -> Alcotest.fail "deduped key vanished")

(* every proper prefix of the file is a valid crash image: recovery
   keeps exactly the records whose full frame (newline included)
   survived, drops the tail, and truncates the file so appends never
   graft onto a fragment *)
let test_torn_tail_every_prefix () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let s = open_exn path in
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.close s;
      let pristine = file_contents path in
      let total = String.length pristine in
      (* frame boundaries: byte offsets just after each '\n' *)
      let boundaries = ref [ 0 ] in
      String.iteri
        (fun i c -> if c = '\n' then boundaries := (i + 1) :: !boundaries)
        pristine;
      for cut = 0 to total - 1 do
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub pristine 0 cut));
        let expected =
          List.length (List.filter (fun b -> b <= cut && b > 0) !boundaries)
        in
        let s = open_exn path in
        let r = Store.recovered s in
        check_int
          (Printf.sprintf "records after cut@%d" cut)
          expected r.Store.records;
        (* the truncated file must now be the clean prefix: reopening
           finds no further damage *)
        Store.close s;
        let s = open_exn path in
        let r2 = Store.recovered s in
        Store.close s;
        check_int
          (Printf.sprintf "stable after cut@%d" cut)
          0 r2.Store.dropped_bytes;
        check_int
          (Printf.sprintf "same records after cut@%d" cut)
          expected r2.Store.records
      done)

let test_corrupt_crc_drops_tail () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let s = open_exn path in
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.close s;
      let pristine = file_contents path in
      (* flip one payload byte inside the SECOND record: record 1
         stays valid, records 2.. are dropped *)
      let first_nl = String.index pristine '\n' in
      let target = first_nl + 12 in
      let bytes = Bytes.of_string pristine in
      Bytes.set bytes target
        (Char.chr (Char.code (Bytes.get bytes target) lxor 0x40));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc bytes);
      let s = open_exn path in
      let r = Store.recovered s in
      Store.close s;
      check_int "only the first record survives" 1 r.Store.records;
      check_bool "tail dropped" true (r.Store.dropped_records >= 1);
      check_int "file truncated to the clean prefix" (first_nl + 1)
        (String.length (file_contents path)))

let test_bad_hex_and_short_frames () =
  let samples = Lazy.force sample_outcomes in
  let k0, o0 = List.hd samples in
  List.iter
    (fun garbage ->
      with_tmp (fun path ->
          let s = open_exn path in
          Store.append s k0 o0;
          Store.close s;
          let clean = file_contents path in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (clean ^ garbage));
          let s = open_exn path in
          let r = Store.recovered s in
          Store.close s;
          check_int ("clean prefix survives " ^ String.escaped garbage) 1
            r.Store.records;
          check_bool "garbage dropped" true (r.Store.dropped_bytes > 0)))
    [ "zzzzzzzz {\"k\":\"x\",\"o\":null}\n" (* bad hex *);
      "00000000 {\"k\":\"x\",\"o\":null}\n" (* wrong CRC *);
      "short\n" (* too short for a frame *);
      "deadbeef_{\"k\":\"x\"}\n" (* missing separator space *);
      "deadbeef {not json}\n" (* CRC won't match; unparseable payload *) ]

let test_compact_atomic_and_equivalent () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let s = open_exn path in
      (* three generations of the same key plus live entries *)
      List.iter (fun (k, o) -> Store.append s k o) samples;
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.flush s;
      (match Store.compact s samples with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      (* post-compact appends land in the new file *)
      let k0, o0 = List.hd samples in
      Store.append s ("fresh|" ^ k0) o0;
      Store.close s;
      check_bool "no tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
      let s = open_exn path in
      let r = Store.recovered s in
      Store.close s;
      check_int "compacted + post-compact append"
        (List.length samples + 1)
        r.Store.records;
      check_int "no damage" 0 r.Store.dropped_bytes)

(* crash-window durability: a compact that died before its rename
   leaves a stale .tmp behind; the next open must recover the original
   log untouched, and the next compact must truncate (not trust, not
   append to) the leftover before publishing *)
let test_compact_crash_window () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let s = open_exn path in
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.flush s;
      Store.close s;
      let original = file_contents path in
      (* simulated crash mid-compact: a partial, torn temp file *)
      Out_channel.with_open_bin (path ^ ".tmp") (fun oc ->
          Out_channel.output_string oc "deadbeef {\"k\":\"torn");
      let s = open_exn path in
      let r = Store.recovered s in
      check_int "stale tmp invisible to recovery" (List.length samples)
        r.Store.records;
      check_int "log undamaged" 0 r.Store.dropped_bytes;
      check_bool "log bytes untouched" true (file_contents path = original);
      (match Store.compact s samples with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Store.close s;
      check_bool "tmp cleaned up" false (Sys.file_exists (path ^ ".tmp"));
      let s = open_exn path in
      let r = Store.recovered s in
      Store.close s;
      check_int "compact output clean" (List.length samples) r.Store.records;
      check_int "no torn bytes leaked in" 0 r.Store.dropped_bytes)

(* the end-to-end bar: an engine warm-loaded from a store (even one
   with a torn tail) must replay the fixture byte-identically to the
   cold golden on every planning line *)
let fixture_lines =
  lazy
    (let ic = open_in "fixtures/service_requests.ndjson" in
     let rec go acc =
       match In_channel.input_line ic with
       | Some l -> go (l :: acc)
       | None ->
         close_in ic;
         List.rev acc
     in
     go [])

let golden_lines =
  lazy
    (let ic = open_in "fixtures/service_responses.golden" in
     let rec go acc =
       match In_channel.input_line ic with
       | Some l -> go (l :: acc)
       | None ->
         close_in ic;
         List.rev acc
     in
     go [])

let is_stats_response line =
  match Json.parse line with
  | Ok r -> Json.member "op" r = Some (Json.String "stats")
  | Error _ -> false

let non_control = List.filter (fun l -> not (is_stats_response l))

let test_warm_replay_matches_golden () =
  with_tmp (fun path ->
      let requests = Lazy.force fixture_lines in
      let golden = Lazy.force golden_lines in
      (* cold run with a store: must match the golden exactly, stats
         included (warm-loading is add-only, counters start at zero) *)
      let s = open_exn path in
      let cold =
        Engine.handle_lines (Engine.create ~store:s (Engine.default_config ()))
          requests
      in
      Store.close s;
      check_bool "cold run with store matches golden" true (cold = golden);
      (* warm run: planning lines byte-identical, hits strictly up *)
      let s = open_exn path in
      check_bool "store has records" true
        ((Store.recovered s).Store.records > 0);
      let engine = Engine.create ~store:s (Engine.default_config ()) in
      let warm = Engine.handle_lines engine requests in
      let warm_stats = Engine.cache_stats engine in
      Store.close s;
      check_bool "warm planning lines match golden" true
        (non_control warm = non_control golden);
      check_bool "warm start raises hits" true
        (warm_stats.Cache.hits > warm_stats.Cache.misses);
      (* tear the tail off and replay again: still golden *)
      let pristine = file_contents path in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub pristine 0 (String.length pristine - 9)));
      let s = open_exn path in
      let torn =
        Engine.handle_lines (Engine.create ~store:s (Engine.default_config ()))
          requests
      in
      Store.close s;
      check_bool "torn-tail warm replay matches golden" true
        (non_control torn = non_control golden))

(* ------------------------------------------------------------------ *)
(* Instrumentation: flusher gauges/histograms and recovery counters.
   All of it lives off the response path (DESIGN.md §6b): the checks
   here pin down that a fresh store registers nothing — so the golden
   stats line is untouched — while flush traffic and recovered damage
   are fully visible in the metrics dump. *)

let hist_count metrics name =
  match Json.member "latency" (Metrics.to_json metrics) with
  | Some (Json.Obj kvs) -> (
    match List.assoc_opt name kvs with
    | Some h -> (
      match Json.member "count" h with Some (Json.Int n) -> n | _ -> 0)
    | None -> 0)
  | _ -> 0

let test_flusher_instrumentation () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let m = Metrics.create () in
      let s = open_exn path in
      Store.set_metrics s m;
      (* a fresh store registers no recovery counters *)
      check_int "no recovery counters on a fresh store" 0
        (List.length (Metrics.counters m));
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.flush s;
      (* the flusher's metrics writes land just after `flush` returns
         (they happen outside the store lock), hence the polls *)
      let rec await what cond n =
        if cond () then ()
        else if n = 0 then Alcotest.failf "timed out awaiting %s" what
        else begin
          Thread.delay 0.02;
          await what cond (n - 1)
        end
      in
      await "queue depth gauge to drain"
        (fun () ->
          List.assoc_opt "store_queue_depth" (Metrics.gauges m) = Some 0.)
        100;
      await "flush batches" (fun () -> hist_count m "store_flush_batch" >= 1) 100;
      await "append latencies"
        (fun () -> hist_count m "store_append_seconds" >= 1)
        100;
      let batches = hist_count m "store_flush_batch" in
      let appends = hist_count m "store_append_seconds" in
      (* more traffic only ever pushes the histograms forward: both
         record once per flushed batch, so a second flushed round adds
         at least one observation to each *)
      List.iter (fun (k, o) -> Store.append s ("again|" ^ k) o) samples;
      Store.flush s;
      await "flush-batch histogram growth"
        (fun () -> hist_count m "store_flush_batch" > batches)
        100;
      await "append histogram growth"
        (fun () -> hist_count m "store_append_seconds" > appends)
        100;
      Store.close s)

let test_recovery_counters () =
  let samples = Lazy.force sample_outcomes in
  with_tmp (fun path ->
      let s = open_exn path in
      List.iter (fun (k, o) -> Store.append s k o) samples;
      Store.close s;
      (* clean reopen: the load is counted, damage counters stay
         unregistered (zero-valued counters would pollute the
         deterministic counter set) *)
      let s = open_exn path in
      let m = Metrics.create () in
      Store.set_metrics s m;
      check_int "records loaded" (List.length samples)
        (Metrics.get m "store_records_loaded");
      check_bool "zero-valued damage counters stay unregistered" true
        ((not (List.mem_assoc "store_torn_tail_bytes" (Metrics.counters m)))
        && not (List.mem_assoc "store_dropped_records" (Metrics.counters m)));
      Store.close s;
      (* tear the final record's tail off — the crash image a kill -9
         mid-append leaves — and reopen: the drop is visible *)
      let pristine = file_contents path in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub pristine 0 (String.length pristine - 9)));
      let s = open_exn path in
      let m = Metrics.create () in
      Store.set_metrics s m;
      check_bool "torn bytes counted" true
        (Metrics.get m "store_torn_tail_bytes" > 0);
      check_int "surviving records counted"
        (List.length samples - 1)
        (Metrics.get m "store_records_loaded");
      Store.close s)

let () =
  Alcotest.run "fusecu-store"
    [ ( "framing",
        [ Alcotest.test_case "append/recover round trip" `Quick test_roundtrip;
          Alcotest.test_case "duplicate keys: last wins" `Quick
            test_duplicate_keys_last_wins ] );
      ( "recovery",
        [ Alcotest.test_case "torn tail at every byte" `Quick
            test_torn_tail_every_prefix;
          Alcotest.test_case "corrupt CRC severs the tail" `Quick
            test_corrupt_crc_drops_tail;
          Alcotest.test_case "bad hex / short / junk frames" `Quick
            test_bad_hex_and_short_frames ] );
      ( "compaction",
        [ Alcotest.test_case "atomic rename, appends continue" `Quick
            test_compact_atomic_and_equivalent;
          Alcotest.test_case "crash window: stale tmp, durable publish"
            `Quick test_compact_crash_window ] );
      ( "instrumentation",
        [ Alcotest.test_case "flusher gauges and histograms" `Quick
            test_flusher_instrumentation;
          Alcotest.test_case "recovery counters" `Quick test_recovery_counters
        ] );
      ( "replay",
        [ Alcotest.test_case "warm replay byte-identical to golden" `Quick
            test_warm_replay_matches_golden ] ) ]
