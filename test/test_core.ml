open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let nra_t : Nra.t Alcotest.testable = Alcotest.testable Nra.pp Nra.equal

let regime_t : Regime.t Alcotest.testable =
  Alcotest.testable Regime.pp Regime.equal

(* ------------------------------------------------------------------ *)
(* The paper's worked example (Sec. III-A):
   BERT MM 1024x768x768 with a 512 KB buffer. *)

let bert = Matmul.make ~name:"bert" ~m:1024 ~k:768 ~l:768 ()

let test_paper_example_regime () =
  let buf = Buffer.of_kib 512 in
  let th = Regime.thresholds bert in
  check_int "Dmin^2/2" (768 * 768 / 2) th.small_max;
  (* exact Large boundary: smallest tensor resident plus one row and
     one column of the other two (the paper's asymptotic Tensor_min) *)
  check_int "FP3min - 1" ((768 * 768) + 768 + 768 - 1) th.medium_max;
  Alcotest.check regime_t "medium buffer" Regime.Medium (Regime.classify bert buf)

let test_paper_example_dataflow () =
  let buf = Buffer.of_kib 512 in
  let plan = Intra.optimize_exn ~mode:Mode.Divisors bert buf in
  (match plan.dataflow with
  | Nra.Two_nra { untiled = Dim.K; redundant = Operand.B } -> ()
  | d -> Alcotest.failf "expected Two-NRA untiled K: %s" (Nra.dataflow_to_string d));
  check_int "T_M = 512 (paper)" 512 (Tiling.get plan.schedule.tiling Dim.M);
  check_int "T_L = 1" 1 (Tiling.get plan.schedule.tiling Dim.L);
  check_bool "K untiled" true (Tiling.untiled bert plan.schedule.tiling Dim.K);
  check_int "MA(B) = 2KL (paper)" (2 * 768 * 768) plan.cost.b.traffic;
  check_int "MA(A) = MK" (1024 * 768) plan.cost.a.traffic;
  check_int "MA(C) = ML" (1024 * 768) plan.cost.c.traffic

(* ------------------------------------------------------------------ *)
(* Regimes                                                             *)

let test_regime_bands () =
  (* square operator: Dmin = 64, min tensor = 4096 *)
  let op = Matmul.make ~m:64 ~k:64 ~l:64 () in
  let classify bytes = Regime.classify op (Buffer.make bytes) in
  Alcotest.check regime_t "tiny" Regime.Tiny (classify (64 * 64 / 4));
  Alcotest.check regime_t "small low" Regime.Small (classify ((64 * 64 / 4) + 1));
  Alcotest.check regime_t "small high" Regime.Small (classify (64 * 64 / 2));
  Alcotest.check regime_t "medium" Regime.Medium (classify ((64 * 64 / 2) + 1));
  (* Three-NRA is infeasible until the 64x64 tensor fits together with a
     64-row and a 64-column working tile, so Medium extends to 4223 *)
  Alcotest.check regime_t "medium high" Regime.Medium (classify ((64 * 64) + 127));
  Alcotest.check regime_t "large" Regime.Large (classify ((64 * 64) + 128))

(* Exact boundary arithmetic on every regime edge, for an odd and an
   even Dmin: bs <= floor(Dmin^2/4) is exactly the integer form of the
   paper's real-valued bound, and the Large edge is the exact Three-NRA
   feasibility footprint. *)
let test_regime_exact_boundaries () =
  let check_edges op =
    let th = Regime.thresholds op in
    let classify bs = Regime.classify op (Buffer.make bs) in
    Alcotest.check regime_t "tiny top" Regime.Tiny (classify th.tiny_max);
    Alcotest.check regime_t "small bottom" Regime.Small (classify (th.tiny_max + 1));
    Alcotest.check regime_t "small top" Regime.Small (classify th.small_max);
    Alcotest.check regime_t "medium bottom" Regime.Medium
      (classify (th.small_max + 1));
    Alcotest.check regime_t "medium top" Regime.Medium (classify th.medium_max);
    Alcotest.check regime_t "large bottom" Regime.Large (classify (th.medium_max + 1))
  in
  (* odd Dmin = 7: Dmin^2 = 49, floors at 12 / 24 *)
  let odd = Matmul.make ~m:7 ~k:9 ~l:11 () in
  let th = Regime.thresholds odd in
  check_int "odd tiny_max" 12 th.tiny_max;
  check_int "odd small_max" 24 th.small_max;
  check_int "odd medium_max" ((7 * 9) + 7 + 9 - 1) th.medium_max;
  check_edges odd;
  (* even Dmin = 8 *)
  let even = Matmul.make ~m:8 ~k:10 ~l:12 () in
  let th = Regime.thresholds even in
  check_int "even tiny_max" 16 th.tiny_max;
  check_int "even small_max" 32 th.small_max;
  check_int "even medium_max" ((8 * 10) + 8 + 10 - 1) th.medium_max;
  check_edges even

(* Dmin^2 on a pathological operator exceeds max_int; the thresholds
   must saturate rather than wrap negative (which used to classify
   every buffer as Large). *)
let test_regime_threshold_overflow () =
  let huge = 1 lsl 31 in
  let op = Matmul.make ~m:huge ~k:huge ~l:huge () in
  let th = Regime.thresholds op in
  check_bool "tiny_max positive" true (th.tiny_max > 0);
  check_bool "monotone" true
    (th.tiny_max <= th.small_max && th.small_max <= th.medium_max);
  check_int "tiny_max saturated" (max_int / 4) th.tiny_max;
  Alcotest.check regime_t "1M-element buffer is Tiny" Regime.Tiny
    (Regime.classify op (Buffer.make 1_000_000))

let test_expected_classes () =
  Alcotest.(check (list nra_t)) "tiny" [ Nra.Single ]
    (Regime.expected_classes Regime.Tiny);
  Alcotest.(check (list nra_t)) "small" [ Nra.Single; Nra.Two ]
    (Regime.expected_classes Regime.Small);
  Alcotest.(check (list nra_t)) "medium" [ Nra.Single; Nra.Two ]
    (Regime.expected_classes Regime.Medium);
  Alcotest.(check (list nra_t)) "large" [ Nra.Three ]
    (Regime.expected_classes Regime.Large)

(* The regime table predicts the class of the searched optimum (checked
   away from the exact boundaries, where either neighbour is allowed). *)
let test_regime_predicts_search () =
  let op = Matmul.make ~m:48 ~k:32 ~l:40 () in
  List.iter
    (fun bytes ->
      let buf = Buffer.make bytes in
      match Exhaustive.search ~lattice:Space.All op buf with
      | None -> Alcotest.fail "search infeasible"
      | Some best ->
        let cls = Nra.class_of (Nra.classify op best.schedule) in
        let expected = Regime.expected_classes (Regime.classify op buf) in
        check_bool
          (Printf.sprintf "bs=%d class %s in predicted set" bytes
             (Nra.to_string cls))
          true
          (List.mem cls expected))
    [ 128; 900; 4000 ]

(* ------------------------------------------------------------------ *)
(* Principle builders                                                  *)

let test_single_builder_shape () =
  let op = Matmul.make ~m:100 ~k:100 ~l:100 () in
  let buf = Buffer.make 200 in
  List.iter
    (fun stationary ->
      let cands = Principles.single Mode.Exact op buf ~stationary in
      check_bool "has candidates" true (cands <> []);
      List.iter
        (fun (c : Principles.candidate) ->
          check_bool "fits" true (Schedule.fits c.schedule buf);
          check_bool "stationary is NRA" true
            (Cost.is_nra op c.schedule stationary))
        cands)
    Operand.all

let test_two_builder_shape () =
  let op = Matmul.make ~m:64 ~k:16 ~l:64 () in
  let buf = Buffer.make 200 in
  List.iter
    (fun untiled ->
      List.iter
        (fun redundant ->
          let cands = Principles.two Mode.Exact op buf ~untiled ~redundant in
          List.iter
            (fun (c : Principles.candidate) ->
              check_bool "fits" true (Schedule.fits c.schedule buf);
              check_bool "untiled dim untiled" true
                (Tiling.untiled op c.schedule.tiling untiled))
            cands)
        (Operand.with_dim untiled))
    Dim.all;
  Alcotest.check_raises "bad redundant"
    (Invalid_argument "Principles.two: redundant operand must use the untiled dim")
    (fun () ->
      ignore (Principles.two Mode.Exact op buf ~untiled:Dim.K ~redundant:Operand.C))

let test_three_builder_shape () =
  let op = Matmul.make ~m:16 ~k:8 ~l:12 () in
  let big = Buffer.make 4096 in
  List.iter
    (fun resident ->
      match Principles.three Mode.Exact op big ~resident with
      | [ c ] ->
        check_int "ideal MA" (Matmul.ideal_ma op) (Cost.eval op c.schedule).total;
        check_int "three NRA" 3 (Cost.nra_count op c.schedule)
      | _ -> Alcotest.fail "expected exactly one candidate")
    Operand.all;
  let tiny = Buffer.make 16 in
  check_int "infeasible -> none" 0
    (List.length (Principles.three Mode.Exact op tiny ~resident:Operand.C))

let test_divisor_mode_quantizes () =
  let op = Matmul.make ~m:1024 ~k:768 ~l:768 () in
  let buf = Buffer.of_kib 512 in
  List.iter
    (fun (c : Principles.candidate) ->
      List.iter
        (fun d ->
          let t = Tiling.get c.schedule.tiling d in
          check_int
            (Printf.sprintf "tile %d divides %d" t (Matmul.dim op d))
            0
            (Matmul.dim op d mod t))
        Dim.all)
    (Intra.candidates ~mode:Mode.Divisors op buf)

(* ------------------------------------------------------------------ *)
(* Optimality: principles == exhaustive search                         *)

let gen_small_case =
  QCheck.Gen.(
    let* m = int_range 1 24 and* k = int_range 1 24 and* l = int_range 1 24 in
    let* bytes = int_range 3 600 in
    return (Matmul.make ~m ~k ~l (), bytes))

let arb_small_case =
  QCheck.make
    ~print:(fun (op, bytes) -> Printf.sprintf "%s bs=%d" (Matmul.to_string op) bytes)
    gen_small_case

let prop_principles_match_exhaustive =
  QCheck.Test.make ~count:250
    ~name:"principle-built dataflow matches exhaustive optimum" arb_small_case
    (fun (op, bytes) ->
      let buf = Buffer.make bytes in
      match (Intra.optimize op buf, Exhaustive.search ~lattice:Space.All op buf) with
      | Ok plan, Some best -> Intra.ma plan = best.cost.Cost.total
      | Error _, None -> true
      | Error _, Some _ | Ok _, None -> false)

let prop_principles_match_exhaustive_medium =
  QCheck.Test.make ~count:40 ~name:"principle optimum holds at medium dims"
    (QCheck.make
       ~print:(fun (op, bytes) ->
         Printf.sprintf "%s bs=%d" (Matmul.to_string op) bytes)
       QCheck.Gen.(
         let* m = int_range 8 64 and* k = int_range 8 64 and* l = int_range 8 64 in
         let* bytes = int_range 8 4000 in
         return (Matmul.make ~m ~k ~l (), bytes)))
    (fun (op, bytes) ->
      let buf = Buffer.make bytes in
      match (Intra.optimize op buf, Exhaustive.search ~lattice:Space.All op buf) with
      | Ok plan, Some best -> Intra.ma plan = best.cost.Cost.total
      | Error _, None -> true
      | Error _, Some _ | Ok _, None -> false)

let prop_optimizer_monotone_in_buffer =
  QCheck.Test.make ~count:100 ~name:"more buffer never hurts"
    (QCheck.make
       ~print:(fun ((op, b1), b2) ->
         Printf.sprintf "%s %d->%d" (Matmul.to_string op) b1 b2)
       QCheck.Gen.(
         let* case = gen_small_case in
         let* extra = int_range 0 500 in
         return (case, snd case + extra)))
    (fun ((op, b1), b2) ->
      match
        (Intra.optimize op (Buffer.make b1), Intra.optimize op (Buffer.make b2))
      with
      | Ok p1, Ok p2 -> Intra.ma p2 <= Intra.ma p1
      | Error _, _ -> true
      | Ok _, Error _ -> false)

let prop_redundancy_at_least_one =
  QCheck.Test.make ~count:150 ~name:"redundancy >= 1" arb_small_case
    (fun (op, bytes) ->
      match Intra.optimize op (Buffer.make bytes) with
      | Ok plan -> Intra.redundancy plan >= 1.0 -. 1e-9
      | Error _ -> true)

let test_large_buffer_hits_lower_bound () =
  let op = Matmul.make ~m:64 ~k:32 ~l:48 () in
  let buf = Buffer.make 100000 in
  let plan = Intra.optimize_exn op buf in
  check_int "ideal" (Matmul.ideal_ma op) (Intra.ma plan);
  Alcotest.check nra_t "three" Nra.Three (Nra.class_of plan.dataflow)

let test_infeasible_buffer () =
  let op = Matmul.make ~m:4 ~k:4 ~l:4 () in
  check_bool "bs=2 impossible" true
    (Result.is_error (Intra.optimize op (Buffer.make 2)));
  check_bool "bs=3 minimal" true (Result.is_ok (Intra.optimize op (Buffer.make 3)))

(* ------------------------------------------------------------------ *)
(* Nra classification                                                  *)

let test_classify_matches_builders () =
  let op = Matmul.make ~m:40 ~k:40 ~l:40 () in
  let check_class bytes expected =
    let plan = Intra.optimize_exn op (Buffer.make bytes) in
    Alcotest.check nra_t
      (Printf.sprintf "bs=%d" bytes)
      expected
      (Nra.class_of plan.dataflow)
  in
  check_class 100 Nra.Single;
  check_class 1000 Nra.Two;
  check_class 10000 Nra.Three

(* ------------------------------------------------------------------ *)
(* Fusion and Principle 4                                              *)

let mk_pair ~m ~k1 ~l1 ~l2 =
  Fused.make_pair_exn
    (Matmul.make ~name:"mm1" ~m ~k:k1 ~l:l1 ())
    (Matmul.make ~name:"mm2" ~m ~k:l1 ~l:l2 ())

let test_pattern_classes () =
  check_int "seven patterns" 7 (List.length Fusion.all_patterns);
  let nra_opt = Alcotest.option nra_t in
  Alcotest.check nra_opt "a" (Some Nra.Single)
    (Fusion.pattern_class Fusion.P_single_os_is);
  Alcotest.check nra_opt "b" (Some Nra.Two)
    (Fusion.pattern_class Fusion.P_two_os_is);
  Alcotest.check nra_opt "e" (Some Nra.Three)
    (Fusion.pattern_class Fusion.P_three_resident);
  Alcotest.check nra_opt "block spans classes" None
    (Fusion.pattern_class Fusion.P_block)

let test_profitable_is_equality () =
  List.iter
    (fun c1 ->
      List.iter
        (fun c2 ->
          check_bool "principle 4" (Nra.equal c1 c2) (Fusion.profitable c1 c2))
        Nra.all)
    Nra.all

let test_candidates_all_valid () =
  let pair = mk_pair ~m:32 ~k1:16 ~l1:24 ~l2:16 in
  List.iter
    (fun bytes ->
      let buf = Buffer.make bytes in
      List.iter
        (fun (_, fused, traffic) ->
          match Fused.eval pair fused buf with
          | Ok t -> check_int "traffic consistent" t traffic
          | Error e -> Alcotest.failf "invalid candidate: %s" e)
        (Fusion.candidates pair buf))
    [ 64; 256; 1024; 8192 ]

let test_attention_pair_fuses () =
  (* attention-like pair with a large intermediate: fusion must win *)
  let pair = mk_pair ~m:64 ~k1:8 ~l1:64 ~l2:8 in
  let buf = Buffer.make 4096 in
  match Fusion.plan_pair pair buf with
  | Ok (Fusion.Fuse { traffic; _ }) ->
    let unfused =
      Intra.ma (Intra.optimize_exn pair.op1 buf)
      + Intra.ma (Intra.optimize_exn pair.op2 buf)
    in
    check_bool "fusion reduces traffic" true (traffic < unfused);
    check_int "fused ideal achieved"
      (Chain.ideal_ma_fused (Chain.make_exn [ pair.op1; pair.op2 ]))
      traffic
  | Ok (Fusion.No_fuse { why; _ }) -> Alcotest.failf "expected fusion: %s" why
  | Error e -> Alcotest.fail e

let test_cross_class_does_not_fuse () =
  (* first op much larger than the second: classes differ at this buffer *)
  let pair = mk_pair ~m:512 ~k1:256 ~l1:16 ~l2:8 in
  let buf = Buffer.make 2048 in
  let c1 = Nra.class_of (Intra.optimize_exn pair.op1 buf).dataflow in
  let c2 = Nra.class_of (Intra.optimize_exn pair.op2 buf).dataflow in
  if not (Nra.equal c1 c2) then begin
    match Fusion.plan_pair pair buf with
    | Ok (Fusion.No_fuse _) -> ()
    | Ok (Fusion.Fuse _) -> Alcotest.fail "Principle 4 violated by planner"
    | Error e -> Alcotest.fail e
  end

let test_principle4_agreement () =
  (* Principle 4 is a heuristic from the continuous model; on small
     integer operators it must agree with the exhaustive fuse/no-fuse
     oracle in the vast majority of cases and never lose
     catastrophically. *)
  let rng = Random.State.make [| 4242 |] in
  let total = ref 0 and agree = ref 0 and worst = ref 1.0 in
  for _ = 1 to 80 do
    let d () = 2 + Random.State.int rng 14 in
    let m = d () in
    let k1 = d () in
    let l1 = d () in
    let l2 = d () in
    let pair = mk_pair ~m ~k1 ~l1 ~l2 in
    let buf = Buffer.make (6 + Random.State.int rng 500) in
    match Fusion.plan_pair pair buf with
    | Error _ -> ()
    | Ok decision -> (
      let v = Fused_search.decide ~lattice:Space.All pair buf in
      match v.best_traffic with
      | None -> ()
      | Some best ->
        incr total;
        let mine = Fusion.traffic_of_decision decision in
        let r = float_of_int mine /. float_of_int best in
        if r > !worst then worst := r;
        let i_fuse =
          match decision with Fusion.Fuse _ -> true | Fusion.No_fuse _ -> false
        in
        if i_fuse = v.fusion_wins || r < 1.02 then incr agree)
  done;
  check_bool "enough decided cases" true (!total > 40);
  let rate = float_of_int !agree /. float_of_int !total in
  check_bool (Printf.sprintf "agreement %.2f >= 0.85" rate) true (rate >= 0.85);
  check_bool (Printf.sprintf "worst loss %.2f bounded" !worst) true (!worst < 1.6)





(* ------------------------------------------------------------------ *)
(* Fig. 4 catalog                                                      *)

let test_catalog_methods () =
  check_int "single: one method" 1 (List.length (Catalog.methods_available Nra.Single));
  check_int "two: two methods" 2 (List.length (Catalog.methods_available Nra.Two));
  check_int "three: two methods" 2 (List.length (Catalog.methods_available Nra.Three))

let test_catalog_structure () =
  (* green arrows are exactly the same-class ones *)
  List.iter
    (fun (a : Catalog.arrow) ->
      check_bool "green = same class"
        (Nra.equal a.producer_class a.consumer_class)
        a.profitable)
    Catalog.arrows;
  check_bool "has green" true (Catalog.green <> []);
  check_bool "has red" true (Catalog.red <> []);
  (* every profitable arrow has a hardware mapping; red arrows have none *)
  List.iter
    (fun a -> check_bool "green mapped" true (Catalog.mapping_for a <> None))
    Catalog.green;
  List.iter
    (fun a -> check_bool "red unmapped" true (Catalog.mapping_for a = None))
    Catalog.red

let test_catalog_mappings_match_fig5 () =
  (* Single-NRA fusion (stationary C) is tile fusion; untiled-dim
     fusions are column fusion *)
  let find pc pm cc cm =
    List.find
      (fun (a : Catalog.arrow) ->
        a.producer_class = pc && a.producer_method = pm && a.consumer_class = cc
        && a.consumer_method = cm)
      Catalog.arrows
  in
  Alcotest.(check (option (Alcotest.testable (fun fmt -> function
    | `Tile_fusion -> Format.pp_print_string fmt "tile"
    | `Column_fusion -> Format.pp_print_string fmt "column") ( = ))))
    "single OS-IS is tile fusion" (Some `Tile_fusion)
    (Catalog.mapping_for
       (find Nra.Single Catalog.Keep_stationary Nra.Single Catalog.Keep_stationary));
  Alcotest.(check bool) "two untiled is column fusion" true
    (Catalog.mapping_for
       (find Nra.Two Catalog.Untile_dimension Nra.Two Catalog.Untile_dimension)
    = Some `Column_fusion)

(* ------------------------------------------------------------------ *)
(* Buffer sweeps                                                       *)

let test_sweep_monotone_and_transitions () =
  let op = Matmul.make ~m:256 ~k:192 ~l:160 () in
  let points =
    Buffer_sweep.run op
      ~bytes:(Buffer_sweep.geometric ~from_bytes:256 ~to_bytes:(1 lsl 20)
                ~steps_per_octave:2 ())
  in
  check_bool "enough points" true (List.length points > 10);
  (* MA never increases with buffer size *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      check_bool
        (Printf.sprintf "MA monotone at %d" b.Buffer_sweep.bytes)
        true
        (b.Buffer_sweep.ma <= a.Buffer_sweep.ma);
      monotone rest
    | _ -> ()
  in
  monotone points;
  (* the class ladder climbs Single -> Two -> Three per the paper *)
  check_bool "transitions match the paper's bands" true
    (Buffer_sweep.check_paper_bands op points);
  let classes = List.map (fun (_, a, b) -> (a, b)) (Buffer_sweep.transitions points) in
  check_bool "reaches Three-NRA" true
    (List.exists (fun (_, b) -> Nra.equal b Nra.Three) classes)

let test_sweep_geometric_ladder () =
  let ladder = Buffer_sweep.geometric ~from_bytes:1024 ~to_bytes:8192 () in
  Alcotest.(check (list int)) "doubling" [ 1024; 2048; 4096; 8192 ] ladder;
  Alcotest.check_raises "bad range"
    (Invalid_argument "Buffer_sweep.geometric: bad range") (fun () ->
      ignore (Buffer_sweep.geometric ~from_bytes:0 ()))

let prop_sweep_bands_hold =
  QCheck.Test.make ~count:60 ~name:"regime transitions follow the paper's bands"
    (QCheck.make
       ~print:(fun (m, k, l) -> Printf.sprintf "%dx%dx%d" m k l)
       QCheck.Gen.(
         let* m = int_range 16 128 and* k = int_range 16 128 in
         let* l = int_range 16 128 in
         return (m, k, l)))
    (fun (m, k, l) ->
      let op = Matmul.make ~m ~k ~l () in
      let points =
        Buffer_sweep.run op
          ~bytes:(Buffer_sweep.geometric ~from_bytes:16 ~to_bytes:131072
                    ~steps_per_octave:2 ())
      in
      Buffer_sweep.check_paper_bands op points)

(* ------------------------------------------------------------------ *)
(* Paper equations (library forms)                                     *)

let test_equations_match_cost_model () =
  let op = Matmul.make ~m:64 ~k:48 ~l:32 () in
  (* Eq. 1 vs the general model on a dividing tile *)
  List.iter
    (fun t ->
      let tiling = Tiling.make op ~m:t ~k:1 ~l:t in
      let order = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
      check_int
        (Printf.sprintf "Eq.1 at t=%d" t)
        (Equations.eq1_ma op ~t)
        (Cost.eval op (Schedule.make tiling order)).Cost.total)
    [ 4; 8; 16; 32 ];
  (* Eq. 3 vs the general model *)
  List.iter
    (fun t_m ->
      let tiling = Tiling.make op ~m:t_m ~k:48 ~l:1 in
      let order = Order.make ~outer:Dim.M ~mid:Dim.L ~inner:Dim.K in
      check_int
        (Printf.sprintf "Eq.3 at t_m=%d" t_m)
        (Equations.eq3_ma op ~t_m)
        (Cost.eval op (Schedule.make tiling order)).Cost.total)
    [ 2; 8; 16; 64 ];
  Alcotest.check_raises "Eq.1 needs dividing t"
    (Invalid_argument "Equations.eq1_ma: t must divide M and L") (fun () ->
      ignore (Equations.eq1_ma op ~t:7))

let test_equations_eq4_and_bands () =
  let op = bert in
  (* the worked example: BS = 512K elements, K = 768 -> T_M = 680 *)
  check_int "Eq.4 T_M" 680 (Equations.eq4_max_t_m op ~capacity:524288);
  check_bool "Eq.2 at that point" true
    (Equations.eq2_constraint ~t_m:680 ~t_k:768 ~t_l:1 ~capacity:524288);
  check_bool "Eq.2 rejects one more" false
    (Equations.eq2_constraint ~t_m:682 ~t_k:768 ~t_l:1 ~capacity:524288);
  let lo, hi = Equations.single_two_shift_band op in
  check_int "band low" (768 * 768 / 4) lo;
  check_int "band high" (768 * 768 / 2) hi;
  check_int "three threshold" (768 * 768) (Equations.three_threshold op)

(* ------------------------------------------------------------------ *)
(* Whole-chain fusion                                                  *)

let attention_3chain =
  (* qkT -> .V -> output projection per head: three links *)
  Chain.of_dims ~name:"attn3" ~m:64 [ 8; 64; 8; 8 ]

let test_multi_fusion_valid () =
  let buf = Buffer.make 8192 in
  match Multi_fusion.row_pipeline attention_3chain buf with
  | [] -> Alcotest.fail "expected row-pipeline candidates"
  | candidates ->
    List.iter
      (fun c ->
        match Multi_fusion.eval attention_3chain c buf with
        | Ok traffic ->
          check_bool "traffic at least fused bound" true
            (traffic >= Chain.ideal_ma_fused attention_3chain)
        | Error e -> Alcotest.fail e)
      candidates

let test_multi_fusion_hits_fused_bound () =
  let buf = Buffer.make 8192 in
  match Multi_fusion.plan attention_3chain buf with
  | Error e -> Alcotest.fail e
  | Ok (Multi_fusion.Fallback _) -> Alcotest.fail "expected full fusion"
  | Ok (Multi_fusion.Full_fusion { traffic; fused }) ->
    check_int "whole-chain fusion reaches the fused lower bound"
      (Chain.ideal_ma_fused attention_3chain)
      traffic;
    check_int "three schedules" 3
      (List.length fused.Multi_fusion.schedules)

let test_multi_fusion_beats_pairwise () =
  (* pairwise fusion must spill the middle intermediate at least once;
     full fusion never does *)
  let buf = Buffer.make 8192 in
  match
    (Multi_fusion.plan attention_3chain buf,
     Planner.plan_chain attention_3chain buf)
  with
  | Ok decision, Ok pairwise ->
    check_bool "full <= pairwise" true
      (Multi_fusion.traffic_of_decision decision <= pairwise.Planner.traffic)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_multi_fusion_falls_back () =
  (* weights cannot fit: the row pipeline is infeasible and planning
     falls back to the pairwise plan *)
  let big = Chain.of_dims ~name:"big" ~m:256 [ 512; 512; 512 ] in
  let buf = Buffer.make 4096 in
  match Multi_fusion.plan big buf with
  | Ok (Multi_fusion.Fallback _) -> ()
  | Ok (Multi_fusion.Full_fusion _) -> Alcotest.fail "expected fallback"
  | Error e -> Alcotest.fail e

let test_multi_fusion_validate_errors () =
  let chain = Chain.of_dims ~m:8 [ 4; 8; 4 ] in
  let bad =
    List.map
      (fun (op : Matmul.t) ->
        Schedule.make
          (Tiling.make op ~m:2 ~k:2 ~l:2)
          (Order.make ~outer:Dim.K ~mid:Dim.M ~inner:Dim.L))
      (Chain.ops chain)
  in
  match Multi_fusion.make chain bad with
  | Error e -> Alcotest.failf "make should accept counts: %s" e
  | Ok t ->
    check_bool "validation rejects redundant intermediates" true
      (Result.is_error (Multi_fusion.validate chain t));
    check_bool "wrong count rejected" true
      (Result.is_error (Multi_fusion.make chain (List.tl bad)))

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_planner_attention_chain () =
  let chain = Chain.of_dims ~name:"attn" ~m:64 [ 8; 64; 8 ] in
  let buf = Buffer.make 4096 in
  match Planner.plan_chain chain buf with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check_int "one fused segment" 1 (List.length plan.segments);
    (match plan.segments with
    | [ Planner.Fused_pair _ ] -> ()
    | _ -> Alcotest.fail "expected a fused pair");
    check_int "traffic is segment sum"
      (Fusecu_util.Arith.sum (List.map Planner.segment_traffic plan.segments))
      plan.traffic

let test_planner_three_op_chain () =
  let chain = Chain.of_dims ~name:"c3" ~m:32 [ 8; 32; 8; 32 ] in
  let buf = Buffer.make 4096 in
  match Planner.plan_chain chain buf with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let solos =
      List.length
        (List.filter (function Planner.Solo _ -> true | _ -> false) plan.segments)
    in
    check_bool "pairs formed" true (solos <= 1);
    check_bool "beats all-solo" true
      (match Planner.plan_ops (Chain.ops chain) buf with
      | Ok solo_plan -> plan.traffic <= solo_plan.traffic
      | Error _ -> false)

let test_planner_ops_bag () =
  let ops =
    [ Matmul.make ~m:16 ~k:16 ~l:16 (); Matmul.make ~m:8 ~k:8 ~l:8 () ]
  in
  match Planner.plan_ops ops (Buffer.make 2048) with
  | Ok plan ->
    check_int "two segments" 2 (List.length plan.segments);
    check_int "sum"
      (Fusecu_util.Arith.sum (List.map Planner.segment_traffic plan.segments))
      plan.traffic
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Lower bounds and Table I                                            *)

let test_lower_bounds () =
  let chain = Chain.of_dims ~m:16 [ 8; 16; 8 ] in
  check_bool "fused < unfused" true
    (Lower_bound.chain_fused chain < Lower_bound.chain_unfused chain);
  let op = Matmul.make ~m:16 ~k:16 ~l:16 () in
  check_int "intra" (Matmul.ideal_ma op) (Lower_bound.intra op);
  let r = Lower_bound.redundancy op (Buffer.make 4096) Mode.Exact in
  Alcotest.(check (float 1e-9)) "large buffer meets bound" 1.0 r

let test_summary_table () =
  check_int "six optimizers" 6 (List.length Summary.rows);
  let this_work = List.nth Summary.rows 5 in
  check_bool "principle-based" true
    (String.equal this_work.Summary.tiling_scheme "principle");
  check_bool "compute-unit fusion" true
    (String.equal this_work.Summary.fusion_medium "compute unit")


(* ------------------------------------------------------------------ *)
(* Register-level principles (Sec. IV-B)                               *)

let test_register_level_bounds () =
  check_int "capacity" (128 * 128) (Register_level.register_capacity ~pe_dim:128);
  check_int "2N bound" 256 (Register_level.max_useful_untiled_dim ~pe_dim:128);
  (* attention heads (Dmin = 64 < 2N) profit from untiling at register
     level; a 768-min-dim projection does not *)
  let qk = Matmul.make ~m:1024 ~k:64 ~l:1024 () in
  check_bool "dh=64 profits" true (Register_level.untiling_profitable ~pe_dim:128 qk);
  let proj = Matmul.make ~m:1024 ~k:768 ~l:768 () in
  check_bool "768 does not profit" false
    (Register_level.untiling_profitable ~pe_dim:128 proj)

let prop_fusecu_covers_all_useful_untiling =
  (* the paper's architecture argument: whenever the register-level
     principles would untile, the needed dimension fits within 2N *)
  QCheck.Test.make ~count:400 ~name:"2N adaptive array covers every useful untiling"
    (QCheck.make
       ~print:(fun (m, k, l, n) -> Printf.sprintf "%dx%dx%d N=%d" m k l n)
       QCheck.Gen.(
         let* m = int_range 1 4096 and* k = int_range 1 4096 in
         let* l = int_range 1 4096 and* n = int_range 4 256 in
         return (m, k, l, n)))
    (fun (m, k, l, n) ->
      Register_level.supported_by_fusecu ~pe_dim:n (Matmul.make ~m ~k ~l ()))

(* ------------------------------------------------------------------ *)
(* Explanations                                                        *)

let contains text needle =
  let n = String.length needle and t = String.length text in
  let rec scan i = i + n <= t && (String.sub text i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_explain_intra () =
  let buf = Buffer.of_kib 512 in
  match Explain.intra ~mode:Mode.Divisors bert buf with
  | Error e -> Alcotest.fail e
  | Ok text ->
    List.iter
      (fun needle ->
        check_bool ("mentions " ^ needle) true (contains text needle))
      [ "medium regime"; "Principle 2"; "Two-NRA"; "family comparison" ]

let test_explain_fusion () =
  let pair =
    Fused.make_pair_exn
      (Matmul.make ~name:"qk" ~m:256 ~k:16 ~l:256 ())
      (Matmul.make ~name:"sv" ~m:256 ~k:256 ~l:16 ())
  in
  match Explain.fusion pair (Buffer.make 8192) with
  | Error e -> Alcotest.fail e
  | Ok text ->
    check_bool "mentions Principle 4" true (contains text "Principle 4")

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
    [ prop_principles_match_exhaustive; prop_principles_match_exhaustive_medium;
      prop_optimizer_monotone_in_buffer; prop_redundancy_at_least_one;
      prop_fusecu_covers_all_useful_untiling; prop_sweep_bands_hold ]

let () =
  Alcotest.run "core"
    [ ( "paper example",
        [ Alcotest.test_case "regime" `Quick test_paper_example_regime;
          Alcotest.test_case "dataflow" `Quick test_paper_example_dataflow ] );
      ( "regimes",
        [ Alcotest.test_case "bands" `Quick test_regime_bands;
          Alcotest.test_case "exact boundaries" `Quick
            test_regime_exact_boundaries;
          Alcotest.test_case "threshold overflow" `Quick
            test_regime_threshold_overflow;
          Alcotest.test_case "expected classes" `Quick test_expected_classes;
          Alcotest.test_case "predicts searched class" `Quick
            test_regime_predicts_search ] );
      ( "builders",
        [ Alcotest.test_case "single" `Quick test_single_builder_shape;
          Alcotest.test_case "two" `Quick test_two_builder_shape;
          Alcotest.test_case "three" `Quick test_three_builder_shape;
          Alcotest.test_case "divisor quantization" `Quick
            test_divisor_mode_quantizes ] );
      ( "optimizer",
        [ Alcotest.test_case "large buffer hits bound" `Quick
            test_large_buffer_hits_lower_bound;
          Alcotest.test_case "infeasible buffer" `Quick test_infeasible_buffer;
          Alcotest.test_case "class follows buffer" `Quick
            test_classify_matches_builders ] );
      ( "fusion",
        [ Alcotest.test_case "pattern classes" `Quick test_pattern_classes;
          Alcotest.test_case "Principle 4 = class equality" `Quick
            test_profitable_is_equality;
          Alcotest.test_case "candidates valid" `Quick test_candidates_all_valid;
          Alcotest.test_case "attention pair fuses" `Quick
            test_attention_pair_fuses;
          Alcotest.test_case "cross-class stays unfused" `Quick
            test_cross_class_does_not_fuse;
          Alcotest.test_case "Principle 4 vs oracle (agreement stats)" `Slow
            test_principle4_agreement ] );
      ( "fig4 catalog",
        [ Alcotest.test_case "methods per class" `Quick test_catalog_methods;
          Alcotest.test_case "green/red structure" `Quick test_catalog_structure;
          Alcotest.test_case "mappings match Fig. 5" `Quick
            test_catalog_mappings_match_fig5 ] );
      ( "buffer sweep",
        [ Alcotest.test_case "monotone + transitions" `Quick
            test_sweep_monotone_and_transitions;
          Alcotest.test_case "geometric ladder" `Quick
            test_sweep_geometric_ladder ] );
      ( "equations",
        [ Alcotest.test_case "reduce to the cost model" `Quick
            test_equations_match_cost_model;
          Alcotest.test_case "Eq.4 and regime bands" `Quick
            test_equations_eq4_and_bands ] );
      ( "multi-fusion",
        [ Alcotest.test_case "row pipeline valid" `Quick test_multi_fusion_valid;
          Alcotest.test_case "reaches fused bound" `Quick
            test_multi_fusion_hits_fused_bound;
          Alcotest.test_case "beats pairwise" `Quick
            test_multi_fusion_beats_pairwise;
          Alcotest.test_case "falls back when infeasible" `Quick
            test_multi_fusion_falls_back;
          Alcotest.test_case "validation" `Quick
            test_multi_fusion_validate_errors ] );
      ( "planner",
        [ Alcotest.test_case "attention chain" `Quick test_planner_attention_chain;
          Alcotest.test_case "three-op chain" `Quick test_planner_three_op_chain;
          Alcotest.test_case "bag of ops" `Quick test_planner_ops_bag ] );
      ( "bounds",
        [ Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
          Alcotest.test_case "Table I data" `Quick test_summary_table ] );
      ( "register level",
        [ Alcotest.test_case "2N bound" `Quick test_register_level_bounds ] );
      ( "explain",
        [ Alcotest.test_case "intra derivation" `Quick test_explain_intra;
          Alcotest.test_case "fusion derivation" `Quick test_explain_fusion ] );
      ("properties", qsuite) ]
