open Fusecu_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_ceil_div () =
  check_int "exact" 4 (Arith.ceil_div 8 2);
  check_int "round up" 5 (Arith.ceil_div 9 2);
  check_int "one" 1 (Arith.ceil_div 1 128);
  check_int "zero" 0 (Arith.ceil_div 0 7)

let test_clamp () =
  check_int "below" 3 (Arith.clamp ~lo:3 ~hi:9 1);
  check_int "above" 9 (Arith.clamp ~lo:3 ~hi:9 99);
  check_int "inside" 5 (Arith.clamp ~lo:3 ~hi:9 5)

let test_isqrt () =
  check_int "0" 0 (Arith.isqrt 0);
  check_int "1" 1 (Arith.isqrt 1);
  check_int "8" 2 (Arith.isqrt 8);
  check_int "9" 3 (Arith.isqrt 9);
  check_int "large" 1024 (Arith.isqrt (1024 * 1024));
  check_int "large-1" 1023 (Arith.isqrt ((1024 * 1024) - 1))

(* Boundary behaviour near max_int: the naive fix-up squared [r + 1],
   which wraps negative for n >= 2^62 and used to report e.g.
   isqrt max_int = 2^31 - 1 instead of floor(sqrt(2^62 - 1)). *)
let test_isqrt_boundaries () =
  let isqrt_max = 2147483647 in
  (* 2^31 - 1 = floor(sqrt(2^62 - 1)) *)
  check_int "max_int" isqrt_max (Arith.isqrt max_int);
  check_int "max_int - 1" isqrt_max (Arith.isqrt (max_int - 1));
  (* exact square just below the overflow frontier *)
  check_int "(2^31 - 1)^2" isqrt_max (Arith.isqrt (isqrt_max * isqrt_max));
  check_int "(2^31 - 1)^2 - 1" (isqrt_max - 1)
    (Arith.isqrt ((isqrt_max * isqrt_max) - 1));
  check_int "2^60 is a square" (1 lsl 30) (Arith.isqrt (1 lsl 60));
  check_int "2^61" 1518500249 (Arith.isqrt (1 lsl 61));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Arith.isqrt: negative argument") (fun () ->
      ignore (Arith.isqrt (-1)));
  (* the invariant holds at every boundary point, checked without
     squaring (the squares themselves would overflow) *)
  List.iter
    (fun n ->
      let r = Arith.isqrt n in
      check_bool "r*r <= n (division form)" true (r = 0 || r <= n / r);
      check_bool "(r+1)^2 > n (division form)" true (r + 1 > n / (r + 1)))
    [ max_int; max_int - 1; (1 lsl 62) - 1; 1 lsl 61; (1 lsl 61) - 1 ]

let prop_isqrt =
  QCheck.Test.make ~count:500 ~name:"isqrt bounds" QCheck.(int_bound 1_000_000)
    (fun n ->
      let r = Arith.isqrt n in
      r * r <= n && (r + 1) * (r + 1) > n)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Arith.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Arith.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 13 ] (Arith.divisors 13);
  Alcotest.(check (list int)) "square" [ 1; 3; 9 ] (Arith.divisors 9)

(* the streaming space enumerator leans on these lattices: pin down the
   edge cases (1, primes, perfect squares, large dims) explicitly *)
let test_divisors_edge_cases () =
  Alcotest.(check (list int)) "2" [ 1; 2 ] (Arith.divisors 2);
  Alcotest.(check (list int)) "large prime" [ 1; 97 ] (Arith.divisors 97);
  Alcotest.(check (list int)) "perfect square 36"
    [ 1; 2; 3; 4; 6; 9; 12; 18; 36 ] (Arith.divisors 36);
  Alcotest.(check (list int)) "prime square 49" [ 1; 7; 49 ] (Arith.divisors 49);
  check_int "768 divisor count" 18 (List.length (Arith.divisors 768));
  check_int "1024 divisor count" 11 (List.length (Arith.divisors 1024));
  List.iter
    (fun n ->
      let ds = Arith.divisors n in
      check_bool "sorted strictly increasing" true
        (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ds - 1) ds)
           (List.tl ds));
      check_bool "starts at 1, ends at n" true
        (List.hd ds = 1 && List.nth ds (List.length ds - 1) = n))
    [ 1; 2; 16; 36; 97; 360; 1024 ]

let prop_divisors_pair_up =
  QCheck.Test.make ~count:200 ~name:"d divides n iff n/d divides n"
    QCheck.(1 -- 5000)
    (fun n ->
      let ds = Arith.divisors n in
      List.for_all (fun d -> List.mem (n / d) ds) ds)

let test_pow2s_edge_cases () =
  Alcotest.(check (list int)) "upto 1" [ 1 ] (Arith.pow2s_upto 1);
  Alcotest.(check (list int)) "upto 2" [ 1; 2 ] (Arith.pow2s_upto 2);
  Alcotest.(check (list int)) "upto 3" [ 1; 2 ] (Arith.pow2s_upto 3);
  Alcotest.(check (list int)) "upto exact pow2" [ 1; 2; 4; 8; 16 ]
    (Arith.pow2s_upto 16);
  Alcotest.(check (list int)) "upto pow2-1" [ 1; 2; 4; 8 ]
    (Arith.pow2s_upto 15);
  Alcotest.(check (list int)) "upto prime 97" [ 1; 2; 4; 8; 16; 32; 64 ]
    (Arith.pow2s_upto 97);
  check_int "upto 1024 count" 11 (List.length (Arith.pow2s_upto 1024))

let prop_divisors =
  QCheck.Test.make ~count:200 ~name:"divisors divide" QCheck.(1 -- 5000)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Arith.divisors n))

let test_pow2 () =
  check_bool "1" true (Arith.is_pow2 1);
  check_bool "768" false (Arith.is_pow2 768);
  check_bool "1024" true (Arith.is_pow2 1024);
  check_bool "0" false (Arith.is_pow2 0);
  check_int "next 1000" 1024 (Arith.next_pow2 1000);
  check_int "next 1024" 1024 (Arith.next_pow2 1024);
  Alcotest.(check (list int)) "upto 9" [ 1; 2; 4; 8 ] (Arith.pow2s_upto 9)

(* next_pow2 used to loop forever past the last representable power of
   two ([p * 2] wraps negative, so [p >= n] never fires). *)
let test_next_pow2_boundaries () =
  check_int "max_pow2 is 2^61" (1 lsl 61) Arith.max_pow2;
  check_int "at the frontier" Arith.max_pow2 (Arith.next_pow2 Arith.max_pow2);
  check_int "just below the frontier" Arith.max_pow2
    (Arith.next_pow2 (Arith.max_pow2 - 1));
  check_int "one past the previous power" Arith.max_pow2
    (Arith.next_pow2 ((Arith.max_pow2 lsr 1) + 1));
  Alcotest.check_raises "past the frontier terminates with an error"
    (Invalid_argument "Arith.next_pow2: no representable power of two >= n")
    (fun () -> ignore (Arith.next_pow2 (Arith.max_pow2 + 1)));
  Alcotest.check_raises "max_int terminates with an error"
    (Invalid_argument "Arith.next_pow2: no representable power of two >= n")
    (fun () -> ignore (Arith.next_pow2 max_int));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Arith.next_pow2: argument must be >= 1") (fun () ->
      ignore (Arith.next_pow2 0))

let test_gcd_negative () =
  check_int "both negative" 24 (Arith.gcd (-120) (-72));
  check_int "first negative" 24 (Arith.gcd (-120) 72);
  check_int "second negative" 24 (Arith.gcd 120 (-72));
  check_int "negative with zero" 7 (Arith.gcd (-7) 0);
  check_int "zero with negative" 7 (Arith.gcd 0 (-7));
  (* gcd(2^62, 2^62 - 2) = 2; the point is that it terminates even
     though [abs min_int = min_int] *)
  check_int "min_int terminates" 2 (Arith.gcd min_int (max_int - 1));
  check_int "min_int with odd" 1 (Arith.gcd min_int max_int)

let prop_gcd_total =
  QCheck.Test.make ~count:500 ~name:"gcd total and sign-insensitive"
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let g = Arith.gcd a b in
      if a = 0 && b = 0 then g = 0
      else g > 0 && abs a mod g = 0 && abs b mod g = 0)

let test_misc_arith () =
  check_int "gcd" 24 (Arith.gcd 120 72);
  check_int "gcd zero" 7 (Arith.gcd 0 7);
  Alcotest.(check (list int)) "range" [ 3; 4; 5 ] (Arith.range 3 5);
  Alcotest.(check (list int)) "range empty" [] (Arith.range 5 3);
  check_int "sum" 10 (Arith.sum [ 1; 2; 3; 4 ]);
  Alcotest.(check (list int)) "dedup" [ 1; 2; 5 ] (Arith.dedup_sorted [ 5; 1; 2; 1; 5 ])

let feq = Alcotest.(check (float 1e-9))

let test_stats () =
  feq "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  feq "geomean" 2. (Stats.geomean [ 1.; 4. ]);
  feq "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  feq "median even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  feq "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  feq "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  feq "stddev const" 0. (Stats.stddev [ 2.; 2.; 2. ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats: empty list")
    (fun () -> ignore (Stats.mean []))

let prop_geomean_le_mean =
  QCheck.Test.make ~count:200 ~name:"geomean <= mean"
    QCheck.(list_of_size Gen.(1 -- 10) (float_range 0.01 100.))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let test_units_pp () =
  check_str "bytes" "768B" (Units.pp_bytes 768);
  check_str "kb" "512KB" (Units.pp_bytes (Units.kib 512));
  check_str "mb" "32MB" (Units.pp_bytes (Units.mib 32));
  check_str "frac" "1.50KB" (Units.pp_bytes 1536);
  check_str "count" "1.50K" (Units.pp_count 1500);
  check_str "pct" "63.6%" (Units.pp_pct 0.636);
  check_str "ratio" "1.33x" (Units.pp_ratio 1.33)

let test_units_parse () =
  let ok = Alcotest.(check (result int string)) in
  ok "plain" (Ok 4096) (Units.parse_bytes "4096");
  ok "kb" (Ok 524288) (Units.parse_bytes "512KB");
  ok "kib" (Ok 524288) (Units.parse_bytes "512KiB");
  ok "mb" (Ok 33554432) (Units.parse_bytes "32mb");
  ok "gb" (Ok (1 lsl 30)) (Units.parse_bytes "1G");
  check_bool "garbage" true (Result.is_error (Units.parse_bytes "lots"));
  check_bool "empty" true (Result.is_error (Units.parse_bytes ""))

let prop_units_roundtrip =
  QCheck.Test.make ~count:200 ~name:"parse_bytes inverts kib"
    QCheck.(1 -- 100000)
    (fun n -> Units.parse_bytes (string_of_int n ^ "KB") = Ok (Units.kib n))

(* decimal-looking suffixes are binary by doc: 1.5MB = 1.5 * 2^20 *)
let test_units_parse_fractional () =
  let ok = Alcotest.(check (result int string)) in
  ok "1.5MB" (Ok 1572864) (Units.parse_bytes "1.5MB");
  ok "1.5KB" (Ok 1536) (Units.parse_bytes "1.5KB");
  ok "1.5KiB" (Ok 1536) (Units.parse_bytes "1.5KiB");
  ok "0.5GB" (Ok (1 lsl 29)) (Units.parse_bytes "0.5gb");
  ok "2.5k" (Ok 2560) (Units.parse_bytes "2.5k");
  ok "0.25MB" (Ok (256 * 1024)) (Units.parse_bytes "0.25MB");
  ok "1.5TB" (Ok (3 * (1 lsl 39))) (Units.parse_bytes "1.5TB");
  (* fractions must scale to whole bytes; bare fractional bytes never do *)
  check_bool "fractional bytes" true (Result.is_error (Units.parse_bytes "1.5"));
  check_bool "fractional B suffix" true
    (Result.is_error (Units.parse_bytes "1.5B"));
  ok "0.3KB rounds" (Ok 307) (Units.parse_bytes "0.3KB");
  check_bool "negative" true (Result.is_error (Units.parse_bytes "-1KB"));
  check_bool "negative fraction" true
    (Result.is_error (Units.parse_bytes "-1.5KB"));
  check_bool "nan" true (Result.is_error (Units.parse_bytes "nanKB"))

(* the integer fast path must detect multiplier overflow, not wrap:
   8388609 * 2^40 > 2^62 - 1 used to come back negative *)
let test_units_parse_overflow () =
  let ok = Alcotest.(check (result int string)) in
  check_bool "8388609TB rejected" true
    (Result.is_error (Units.parse_bytes "8388609TB"));
  check_bool "huge KB rejected" true
    (Result.is_error (Units.parse_bytes "4611686018427387904KB"));
  (* the largest representable TB count still parses exactly *)
  ok "4194303TB" (Ok (4194303 * (1 lsl 40))) (Units.parse_bytes "4194303TB");
  check_bool "4194304TB rejected" true
    (Result.is_error (Units.parse_bytes "4194304TB"));
  (* the fractional path has its own guard *)
  check_bool "8388609.5TB rejected" true
    (Result.is_error (Units.parse_bytes "8388609.5TB"))

let prop_units_parse_non_negative =
  QCheck.Test.make ~count:1000 ~name:"accepted parse_bytes is non-negative"
    QCheck.(
      pair
        (oneof [ 0 -- 100000; map abs int ])
        (oneofl [ ""; "B"; "KB"; "KiB"; "MB"; "GB"; "TB"; "k"; "m"; "g"; "t" ]))
    (fun (n, suffix) ->
      match Units.parse_bytes (string_of_int n ^ suffix) with
      | Error _ -> true (* overflow may be rejected, never wrapped *)
      | Ok v ->
        (* non-negative, and re-rendering parses back to the same count
           (pp_bytes rounds to two decimals: 0.5% + 1B tolerance) *)
        v >= 0
        &&
        (match Units.parse_bytes (Units.pp_bytes v) with
        | Error _ -> false
        | Ok w ->
          Float.abs (float_of_int (w - v))
          <= Float.max 1. (0.005 *. float_of_int v)))

let test_units_pp_negative () =
  (* the sign is re-attached after scaling the magnitude: a negative
     count must pick the same unit as its absolute value *)
  check_str "-512B" "-512B" (Units.pp_bytes (-512));
  check_str "-1.50KB" "-1.50KB" (Units.pp_bytes (-1536));
  check_str "-3MB" "-3MB" (Units.pp_bytes (-3 * 1024 * 1024));
  check_str "-100000B scales" "-97.66KB" (Units.pp_bytes (-100000));
  check_str "count" "-1.50K" (Units.pp_count (-1500));
  check_str "zero" "0B" (Units.pp_bytes 0)

let test_units_pp_parse_roundtrip () =
  let ok = Alcotest.(check (result int string)) in
  List.iter
    (fun n -> ok (Units.pp_bytes n) (Ok n) (Units.parse_bytes (Units.pp_bytes n)))
    [ 0; 1; 512; 1023; 1024; 1536; 524288; 1 lsl 20; 3 lsl 20; 1 lsl 29;
      1 lsl 30; 1 lsl 40; 3 * (1 lsl 39) ]

(* pp_bytes rounds to two decimals, so the generic inverse is only
   approximate: within 0.5% (plus one byte for sub-KB exact prints) *)
let prop_units_pp_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse_bytes . pp_bytes ~= id"
    QCheck.(0 -- (1 lsl 41))
    (fun n ->
      match Units.parse_bytes (Units.pp_bytes n) with
      | Error _ -> false
      | Ok m ->
        let tolerance = Float.max 1. (0.005 *. float_of_int n) in
        Float.abs (float_of_int (m - n)) <= tolerance)

let test_table () =
  let t =
    Table.create [ "name"; "value" ]
    |> fun t -> Table.add_rows t [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let rendered = Table.render t in
  check_bool "has header" true
    (String.length rendered > 0
    && String.sub rendered 0 1 = "|"
    && String.length (String.trim rendered) > 10);
  (* all lines equally wide *)
  let lines = String.split_on_char '\n' (String.trim rendered) in
  let widths = List.map String.length lines in
  check_bool "aligned" true (List.for_all (fun w -> w = List.hd widths) widths);
  check_int "line count" 4 (List.length lines)

let test_table_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  let t = Table.add_row t [ "only" ] in
  check_bool "renders" true (String.length (Table.render t) > 0);
  Alcotest.check_raises "too many"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      ignore (Table.add_row t [ "1"; "2"; "3"; "4" ]))


let test_csv_render () =
  let doc =
    Csv.create [ "a"; "b" ]
    |> fun d -> Csv.add_rows d [ [ "1"; "2" ]; [ "x,y"; "he said \"hi\"" ] ]
  in
  Alcotest.(check string) "rfc4180"
    "a,b\n1,2\n\"x,y\",\"he said \"\"hi\"\"\"\n" (Csv.render doc);
  Alcotest.check_raises "width" (Invalid_argument "Csv.add_row: width mismatch")
    (fun () -> ignore (Csv.add_row doc [ "only" ]))

let test_csv_escape () =
  check_str "plain" "abc" (Csv.escape "abc");
  check_str "comma" "\"a,b\"" (Csv.escape "a,b");
  check_str "quote" "\"a\"\"b\"" (Csv.escape "a\"b")

(* ------------------------------------------------------------------ *)
(* Log: leveled NDJSON records through a capturing sink *)

let with_log_capture level f =
  let lines = ref [] in
  Log.set_sink (fun l -> lines := l :: !lines);
  Log.set_level level;
  Fun.protect
    ~finally:(fun () -> Log.set_level None)
    (fun () -> f (fun () -> List.rev !lines))

let test_log_levels () =
  with_log_capture (Some Log.Warn) (fun captured ->
      check_bool "warn enabled" true (Log.enabled Log.Warn);
      check_bool "error enabled" true (Log.enabled Log.Error);
      check_bool "info filtered" false (Log.enabled Log.Info);
      Log.debug "dropped";
      Log.info "dropped";
      Log.warn "kept";
      Log.error "kept too";
      check_int "only warn and error emitted" 2 (List.length (captured ())));
  with_log_capture None (fun captured ->
      check_bool "off disables everything" false (Log.enabled Log.Error);
      Log.error "dropped";
      check_int "nothing emitted when off" 0 (List.length (captured ())))

let test_log_record_shape () =
  with_log_capture (Some Log.Debug) (fun captured ->
      Log.info ~fields:[ ("op", Json.String "intra"); ("n", Json.Int 3) ]
        "hello";
      match captured () with
      | [ line ] -> (
        match Json.parse line with
        | Error e -> Alcotest.failf "record is not JSON: %s" e
        | Ok obj ->
          check_bool "has ts" true (Json.member "ts" obj <> None);
          Alcotest.(check (option string)) "level"
            (Some "info")
            (Option.bind (Json.member "level" obj) (fun v ->
                 Result.to_option (Json.to_string_v v)));
          Alcotest.(check (option string)) "msg" (Some "hello")
            (Option.bind (Json.member "msg" obj) (fun v ->
                 Result.to_option (Json.to_string_v v)));
          Alcotest.(check (option string)) "field op" (Some "intra")
            (Option.bind (Json.member "op" obj) (fun v ->
                 Result.to_option (Json.to_string_v v)));
          check_bool "field n" true (Json.member "n" obj = Some (Json.Int 3)))
      | l -> Alcotest.failf "expected 1 record, got %d" (List.length l))

(* Process identity on every record: pid always, shard once set (the
   router sets it in forked children). Runs after the other log tests —
   set_shard is one-way, as in a real shard process. *)
let test_log_process_identity () =
  with_log_capture (Some Log.Debug) (fun captured ->
      Log.info "before shard";
      Log.set_shard 3;
      Log.warn "after shard";
      match captured () with
      | [ first; second ] ->
        (match Json.parse first with
        | Ok obj ->
          check_bool "pid present" true
            (Json.member "pid" obj = Some (Json.Int (Unix.getpid ())));
          check_bool "no shard before set_shard" true
            (Json.member "shard" obj = None)
        | Error e -> Alcotest.failf "first record is not JSON: %s" e);
        (match Json.parse second with
        | Ok obj ->
          check_bool "pid still present" true
            (Json.member "pid" obj = Some (Json.Int (Unix.getpid ())));
          check_bool "shard tagged" true
            (Json.member "shard" obj = Some (Json.Int 3))
        | Error e -> Alcotest.failf "second record is not JSON: %s" e)
      | l -> Alcotest.failf "expected 2 records, got %d" (List.length l))

let test_log_level_of_string () =
  let ok s = match Log.level_of_string s with Ok l -> l | Error e -> Alcotest.fail e in
  check_bool "debug" true (ok "debug" = Some Log.Debug);
  check_bool "INFO case-insensitive" true (ok "INFO" = Some Log.Info);
  check_bool "warning alias" true (ok "warning" = Some Log.Warn);
  check_bool "warn" true (ok "warn" = Some Log.Warn);
  check_bool "error" true (ok "error" = Some Log.Error);
  check_bool "off" true (ok "off" = None);
  check_bool "none" true (ok "none" = None);
  check_bool "unknown rejected" true
    (match Log.level_of_string "loud" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Json numeric round-trips                                            *)

let json_roundtrip v =
  match Json.parse (Json.print v) with
  | Ok v' -> Json.equal v v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_numeric_corners () =
  (* negative zero survives (sign bit included) *)
  check_bool "-0.0" true (json_roundtrip (Json.Float (-0.0)));
  (match Json.parse (Json.print (Json.Float (-0.0))) with
  | Ok (Json.Float f) ->
    check_bool "-0.0 sign bit" true (1. /. f = Float.neg_infinity)
  | _ -> Alcotest.fail "-0.0 did not reparse as a float");
  (* beyond-53-bit magnitudes and the int/float boundary *)
  List.iter
    (fun f -> check_bool (string_of_float f) true (json_roundtrip (Json.Float f)))
    [ 1e22; 1.0000000000000002e22; 9007199254740992.0 (* 2^53 *);
      9007199254740994.0; Float.max_float; Float.min_float; 4.5e-300 ];
  List.iter
    (fun i -> check_bool (string_of_int i) true (json_roundtrip (Json.Int i)))
    [ max_int; min_int; 9007199254740993 (* not float-representable *) ];
  (* int overflow in the text widens to float... *)
  (match Json.parse "4611686018427387904" with
  | Ok (Json.Float f) -> check_bool "widened" true (f = 4.611686018427388e18)
  | _ -> Alcotest.fail "int overflow did not widen");
  (* ...but a widening that overflows to infinity is malformed, not
     silently accepted as an unprintable value (the round-trip bug) *)
  List.iter
    (fun text ->
      match Json.parse text with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "overflowing literal %s accepted as %s" text
          (Json.print v))
    [ "1e999"; "-1e999"; "1" ^ String.make 400 '0';
      "[1, 2, 1e400]"; "{\"x\": -1e999}" ];
  (* NaN/infinity are not printable either way *)
  List.iter
    (fun f ->
      match Json.print (Json.Float f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "non-finite printed as %s" s)
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"json float round-trip"
    QCheck.(float)
    (fun f ->
      if Float.is_finite f then json_roundtrip (Json.Float f)
      else
        match Json.print (Json.Float f) with
        | exception Invalid_argument _ -> true
        | _ -> false)

let prop_json_int_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"json int round-trip"
    QCheck.(frequency [ (4, int); (1, oneofl [ max_int; min_int; 0; -1 ]) ])
    (fun i -> json_roundtrip (Json.Int i))

let qsuite = List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20250704 |]))
  [ prop_isqrt; prop_gcd_total; prop_divisors; prop_divisors_pair_up;
    prop_geomean_le_mean;
    prop_units_roundtrip; prop_units_pp_parse_roundtrip;
    prop_units_parse_non_negative; prop_json_float_roundtrip;
    prop_json_int_roundtrip ]

(* Pinned vectors: the store's record framing (CRC-32) and the cache /
   router placement hash (63-bit FNV-1a) are on-disk and cross-process
   contracts — silently changing either would orphan every persisted
   record and reshuffle shard placement. *)
let test_hash_vectors () =
  Alcotest.(check int) "crc32 check value" 0xCBF43926 (Hash.crc32 "123456789");
  Alcotest.(check int) "crc32 empty" 0 (Hash.crc32 "");
  Alcotest.(check int) "fnv empty" 860922984064492325
    (Hash.fnv1a64_positive "");
  Alcotest.(check int) "fnv a" 3414815163700866188 (Hash.fnv1a64_positive "a");
  Alcotest.(check int) "fnv ring point" 4235901432644666212
    (Hash.fnv1a64_positive "backend-0-vnode-0");
  check_bool "positive" true
    (List.for_all
       (fun s -> Hash.fnv1a64_positive s >= 0)
       [ ""; "x"; "intra|m=64|k=64|l=64|b=131072"; String.make 1000 '\xff' ])

let test_hash_crc_incremental () =
  (* ?init chains partial computations like zlib's crc32() *)
  let whole = Hash.crc32 "hello world" in
  let part = Hash.crc32 ~init:(Hash.crc32 "hello ") "world" in
  Alcotest.(check int) "incremental = whole" whole part

let () =
  Alcotest.run "util"
    [ ( "arith",
        [ Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "isqrt boundaries" `Quick test_isqrt_boundaries;
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "divisors edge cases" `Quick
            test_divisors_edge_cases;
          Alcotest.test_case "pow2s edge cases" `Quick test_pow2s_edge_cases;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "next_pow2 boundaries" `Quick
            test_next_pow2_boundaries;
          Alcotest.test_case "gcd negative" `Quick test_gcd_negative;
          Alcotest.test_case "misc" `Quick test_misc_arith ] );
      ( "stats",
        [ Alcotest.test_case "summary" `Quick test_stats ] );
      ( "units",
        [ Alcotest.test_case "pretty-print" `Quick test_units_pp;
          Alcotest.test_case "parse" `Quick test_units_parse;
          Alcotest.test_case "parse fractional" `Quick
            test_units_parse_fractional;
          Alcotest.test_case "parse overflow" `Quick test_units_parse_overflow;
          Alcotest.test_case "pretty-print negative" `Quick
            test_units_pp_negative;
          Alcotest.test_case "pp/parse round trip" `Quick
            test_units_pp_parse_roundtrip ] );
      ( "hash",
        [ Alcotest.test_case "pinned vectors" `Quick test_hash_vectors;
          Alcotest.test_case "crc incremental" `Quick
            test_hash_crc_incremental ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table;
          Alcotest.test_case "padding" `Quick test_table_padding ] );
      ( "csv",
        [ Alcotest.test_case "render" `Quick test_csv_render;
          Alcotest.test_case "escape" `Quick test_csv_escape ] );
      ( "json",
        [ Alcotest.test_case "numeric corners" `Quick
            test_json_numeric_corners ] );
      ( "log",
        [ Alcotest.test_case "level filtering" `Quick test_log_levels;
          Alcotest.test_case "record shape" `Quick test_log_record_shape;
          Alcotest.test_case "level_of_string" `Quick
            test_log_level_of_string;
          Alcotest.test_case "process identity" `Quick
            test_log_process_identity ] );
      ("properties", qsuite) ]
