open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_workloads
open Fusecu_planner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let node ?(count = 1) ?(m = 4) ?(k = 4) ?(l = 4) id name deps =
  { Graph.id;
    name;
    work = Graph.Op { op = Matmul.make ~m ~k ~l (); count };
    deps }

let graph nodes =
  match Graph.make nodes with Ok g -> g | Error e -> Alcotest.fail e

let edge_pairs (p : Partition.t) =
  List.map
    (fun (e : Partition.edge) -> (e.Partition.src, e.Partition.dst))
    p.Partition.selected

let plan_exn ?overlap ?evaluator g buf =
  match Partition.plan ?overlap ?evaluator g buf with
  | Ok p -> p
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Overlap arithmetic                                                  *)

let test_overlap () =
  let c = Overlap.default in
  check_int "slack" 10 (Overlap.slack c ~macs:800 ~traffic:40);
  check_int "slack clamped" 0 (Overlap.slack c ~macs:160 ~traffic:40);
  check_int "hidden capped by spill" 5
    (Overlap.hidden c ~macs:800 ~traffic:40 ~spill:5);
  check_int "hidden capped by slack" 10
    (Overlap.hidden c ~macs:800 ~traffic:40 ~spill:99);
  check_int "disabled" 0
    (Overlap.hidden Overlap.disabled ~macs:1_000_000 ~traffic:0 ~spill:99)

(* ------------------------------------------------------------------ *)
(* Group primitives                                                    *)

let test_group () =
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  let wo = Graph.find g 4 and ffn = Graph.find g 5 and att = Graph.find g 3 in
  check_bool "wo -> ffn chainable" true (Group.chainable wo ffn);
  check_bool "attention count blocks" false (Group.chainable att wo);
  check_int "ffn ops" 2 (List.length (Group.ops ffn));
  (match Group.merged [ wo; ffn ] with
  | Ok chain -> check_int "merged ops" 3 (List.length (Chain.ops chain))
  | Error e -> Alcotest.fail e);
  check_bool "merged rejects bad link" true
    (Result.is_error (Group.merged [ att; wo ]))

(* ------------------------------------------------------------------ *)
(* BERT end-to-end                                                     *)

let test_bert_fuses_at_large_buffer () =
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  let p = plan_exn g (Buffer.make (8 * 1024 * 1024)) in
  Alcotest.(check (list (pair int int))) "wo -> ffn" [ (4, 5) ] (edge_pairs p);
  check_int "five groups" 5 (List.length p.Partition.groups);
  check_bool "beats unfused" true
    (p.Partition.effective < p.Partition.unfused_effective)

let test_bert_overlap_declines_marginal_fusion () =
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  let buf = Buffer.make (512 * 1024) in
  (* with the double-buffering credit on, the split's two hidden
     boundary spills outweigh the ~4.5M raw saving of merging wo+ffn *)
  let p = plan_exn g buf in
  Alcotest.(check (list (pair int int))) "no fusion" [] (edge_pairs p);
  (* credit off: raw traffic is all that counts, so the merge wins *)
  let p' = plan_exn ~overlap:Overlap.disabled g buf in
  Alcotest.(check (list (pair int int))) "fusion" [ (4, 5) ] (edge_pairs p')

let agree_with_exhaustive ?overlap ?evaluator g buf =
  let p = plan_exn ?overlap ?evaluator g buf in
  match Partition.exhaustive ?overlap ?evaluator g buf with
  | Error e -> Alcotest.fail e
  | Ok ex ->
    let b = ex.Partition.best in
    check_int "effective" b.Partition.effective p.Partition.effective;
    check_int "traffic" b.Partition.traffic p.Partition.traffic;
    Alcotest.(check (list (pair int int)))
      "selection" (edge_pairs b) (edge_pairs p);
    p

let test_bert_matches_exhaustive () =
  let g1 = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  let g2 = Graph.stack (Graph.of_model Zoo.bert) ~layers:2 in
  List.iter
    (fun bytes ->
      let buf = Buffer.make bytes in
      ignore (agree_with_exhaustive g1 buf);
      ignore (agree_with_exhaustive g2 buf))
    [ 512 * 1024; 8 * 1024 * 1024 ]

(* ------------------------------------------------------------------ *)
(* Search structure                                                    *)

let test_pure_chain_uses_dp () =
  (* a -> b -> c with no other consumers: a clean run, solved by the
     DP with no branch-and-bound at all *)
  let g =
    graph [ node 0 "a" []; node 1 "b" [ 0 ]; node 2 "c" [ 1 ] ]
  in
  let p = agree_with_exhaustive g (Buffer.make 64) in
  let s = p.Partition.stats in
  check_bool "dp ran" true (s.Partition.dp_states > 0);
  check_int "no b&b" 0 s.Partition.bnb_nodes

let test_branchy_uses_bnb () =
  (* ffn -> {wq', wk', wv'} style branch: not a clean run *)
  let g =
    graph
      [ node 0 "a" []; node 1 "b" [ 0 ]; node 2 "c" [ 0 ]; node 3 "d" [ 0 ] ]
  in
  let p = agree_with_exhaustive g (Buffer.make 64) in
  check_bool "b&b ran" true (p.Partition.stats.Partition.bnb_nodes > 0)

let test_contracted_cycle_rejected () =
  (* the only candidate edge is the shortcut a -> b, but c sits between
     them (a -> c -> b, with counts that block fusing through c):
     merging {a, b} would contract to a cycle through c, so even an
     evaluator that prices merged groups at zero must keep every node
     solo *)
  let g =
    graph
      [ node 0 "a" []; node ~count:2 1 "c" [ 0 ]; node 2 "b" [ 0; 1 ] ]
  in
  let evaluator chain =
    Ok (if List.length (Chain.ops chain) > 1 then 0 else 10)
  in
  let p = plan_exn ~overlap:Overlap.disabled ~evaluator g (Buffer.make 64) in
  check_int "one candidate edge" 1 p.Partition.stats.Partition.candidate_edges;
  Alcotest.(check (list (pair int int))) "shortcut rejected" [] (edge_pairs p);
  check_int "all solo" 3 (List.length p.Partition.groups);
  ignore
    (agree_with_exhaustive ~overlap:Overlap.disabled ~evaluator g
       (Buffer.make 64))

let test_tie_break_prefers_unfused () =
  (* evaluator priced so that fusing is exactly cost-neutral: the
     deterministic tie-break must keep the all-singleton partition *)
  let g = graph [ node 0 "a" []; node 1 "b" [ 0 ] ] in
  let evaluator chain = Ok (10 * List.length (Chain.ops chain)) in
  let p = plan_exn ~overlap:Overlap.disabled ~evaluator g (Buffer.make 64) in
  Alcotest.(check (list (pair int int))) "no fusion on a tie" [] (edge_pairs p);
  check_int "two groups" 2 (List.length p.Partition.groups);
  ignore
    (agree_with_exhaustive ~overlap:Overlap.disabled ~evaluator g
       (Buffer.make 64))

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

let test_infeasible_buffer () =
  let g = graph [ node 0 "a" [] ] in
  check_bool "plan refuses" true
    (Result.is_error (Partition.plan g (Buffer.make 2)));
  check_bool "exhaustive refuses" true
    (Result.is_error (Partition.exhaustive g (Buffer.make 2)))

let test_evaluator_error_propagates () =
  let g = graph [ node 0 "a" [] ] in
  let evaluator _ = Error "boom" in
  match Partition.plan ~evaluator g (Buffer.make 64) with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check string) "diagnostic" "node a infeasible: boom" e

(* ------------------------------------------------------------------ *)
(* Baseline consistency                                                *)

let test_unfused_baseline () =
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  let p = plan_exn g (Buffer.make (8 * 1024 * 1024)) in
  (* the baseline is the empty selection priced by the same machinery *)
  let solo =
    List.fold_left
      (fun acc (n : Graph.node) ->
        match Group.merged [ n ] with
        | Ok chain -> (
          match
            Partition.default_evaluator (Buffer.make (8 * 1024 * 1024)) chain
          with
          | Ok per -> acc + (Group.count n * per)
          | Error e -> Alcotest.fail e)
        | Error e -> Alcotest.fail e)
      0 (Graph.nodes g)
  in
  check_int "unfused raw = sum of solo evals" solo p.Partition.unfused_traffic;
  check_bool "effective <= unfused" true
    (p.Partition.effective <= p.Partition.unfused_effective)

let () =
  Alcotest.run "planner"
    [ ( "overlap",
        [ Alcotest.test_case "slack and hidden" `Quick test_overlap ] );
      ( "group",
        [ Alcotest.test_case "chainability and merging" `Quick test_group ] );
      ( "bert",
        [ Alcotest.test_case "fuses at 8MB" `Quick
            test_bert_fuses_at_large_buffer;
          Alcotest.test_case "overlap declines marginal fusion" `Quick
            test_bert_overlap_declines_marginal_fusion;
          Alcotest.test_case "matches exhaustive" `Quick
            test_bert_matches_exhaustive;
          Alcotest.test_case "unfused baseline" `Quick test_unfused_baseline ] );
      ( "search",
        [ Alcotest.test_case "chains use the DP" `Quick test_pure_chain_uses_dp;
          Alcotest.test_case "branches use b&b" `Quick test_branchy_uses_bnb;
          Alcotest.test_case "contracted cycles rejected" `Quick
            test_contracted_cycle_rejected;
          Alcotest.test_case "cost ties stay unfused" `Quick
            test_tie_break_prefers_unfused ] );
      ( "errors",
        [ Alcotest.test_case "infeasible buffer" `Quick test_infeasible_buffer;
          Alcotest.test_case "evaluator errors propagate" `Quick
            test_evaluator_error_propagates ] ) ]
