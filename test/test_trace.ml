(* Fusecu_util.Trace: the span collector behind `--trace`. The contract
   under test: disabled collection is a no-op with no events; spans nest
   with per-domain depths; the ring drops oldest events but the
   per-category summary stays exact; the Chrome export has a fixed,
   deterministic shape under a synthetic clock; and concurrent recording
   from pool domains never tears an event. *)

open Fusecu_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* A deterministic clock: every read advances by exactly one second.
   [with_span] reads the clock twice (entry and exit), so span k of a
   straight-line program has a 1 s duration and nesting produces exact,
   predictable timestamps. *)
let install_synthetic_clock () =
  let t = ref (-1.) in
  Trace.set_clock (fun () ->
      t := !t +. 1.;
      !t)

let with_collection ?capacity f =
  Trace.start ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.stop ();
      Trace.clear ();
      Trace.set_clock Unix.gettimeofday)
    f

let test_disabled_is_noop () =
  Trace.set_clock Unix.gettimeofday;
  check_bool "off by default here" false (Trace.is_enabled ());
  let r = Trace.with_span ~cat:"x" "body" (fun () -> 41 + 1) in
  check_int "body ran" 42 r;
  check_int "no events" 0 (List.length (Trace.events ()));
  check_int "no summary" 0 (List.length (Trace.summary ()))

let test_span_nesting () =
  install_synthetic_clock ();
  with_collection (fun () ->
      let r =
        Trace.with_span ~cat:"outer" "a" (fun () ->
            Trace.with_span ~cat:"inner" "b" (fun () -> 7))
      in
      check_int "result" 7 r;
      match Trace.events () with
      | [ inner; outer ] ->
        (* spans are recorded at completion: inner closes first *)
        check_str "inner name" "b" inner.Trace.name;
        check_str "outer name" "a" outer.Trace.name;
        check_int "inner depth" 2 inner.Trace.depth;
        check_int "outer depth" 1 outer.Trace.depth;
        (* clock reads: outer t0 = 0, inner t0 = 1, inner t1 = 2,
           outer t1 = 3 (seconds -> microseconds) *)
        Alcotest.(check (float 0.)) "inner ts" 1e6 inner.Trace.ts_us;
        Alcotest.(check (float 0.)) "inner dur" 1e6 inner.Trace.dur_us;
        Alcotest.(check (float 0.)) "outer ts" 0. outer.Trace.ts_us;
        Alcotest.(check (float 0.)) "outer dur" 3e6 outer.Trace.dur_us
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_span_records_on_exception () =
  install_synthetic_clock ();
  with_collection (fun () ->
      (try
         Trace.with_span ~cat:"boom" "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      match Trace.events () with
      | [ ev ] ->
        check_str "recorded despite raise" "failing" ev.Trace.name;
        check_int "depth unwound" 1 ev.Trace.depth
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* depth counter must be back to zero: a following span is depth 1 *)
  install_synthetic_clock ();
  with_collection (fun () ->
      Trace.with_span "after" (fun () -> ());
      match Trace.events () with
      | [ ev ] -> check_int "depth reset after raise" 1 ev.Trace.depth
      | _ -> Alcotest.fail "expected 1 event")

let test_ring_overflow () =
  install_synthetic_clock ();
  with_collection ~capacity:4 (fun () ->
      for i = 0 to 9 do
        Trace.with_span ~cat:"tick" (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      let evs = Trace.events () in
      check_int "ring keeps capacity" 4 (List.length evs);
      Alcotest.(check (list string))
        "oldest evicted first"
        [ "s6"; "s7"; "s8"; "s9" ]
        (List.map (fun e -> e.Trace.name) evs);
      check_int "dropped counts overwrites" 6 (Trace.dropped ());
      (* the summary is eviction-proof *)
      match Trace.summary () with
      | [ s ] ->
        check_str "category" "tick" s.Trace.cat;
        check_int "summary counts all 10" 10 s.Trace.count;
        Alcotest.(check (float 1e-9)) "total time exact" 10. s.Trace.total_s
      | l -> Alcotest.failf "expected 1 category, got %d" (List.length l))

(* The Chrome export under the synthetic clock, compared against an
   expected JSON value (printed through the same serializer, so the test
   pins structure and values without depending on float formatting). *)
let test_chrome_json_golden () =
  install_synthetic_clock ();
  with_collection (fun () ->
      Trace.with_span ~cat:"enumerate"
        ~args:[ ("n", Json.Int 3) ]
        "search"
        (fun () -> Trace.with_span ~cat:"evaluate" "chunk" (fun () -> ()));
      let tid = (Domain.self () :> int) in
      let event ~name ~cat ~ts ~dur ~depth ~args =
        Json.Obj
          [ ("name", Json.String name);
            ("cat", Json.String cat);
            ("ph", Json.String "X");
            ("ts", Json.Float ts);
            ("dur", Json.Float dur);
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj (("depth", Json.Int depth) :: args)) ]
      in
      let expected =
        Json.Obj
          [ ( "traceEvents",
              Json.List
                [ event ~name:"chunk" ~cat:"evaluate" ~ts:1e6 ~dur:1e6
                    ~depth:2 ~args:[];
                  event ~name:"search" ~cat:"enumerate" ~ts:0. ~dur:3e6
                    ~depth:1
                    ~args:[ ("n", Json.Int 3) ] ] );
            ("displayTimeUnit", Json.String "ms") ]
      in
      check_str "chrome JSON" (Json.print expected)
        (Json.print (Trace.to_chrome_json ()));
      (* and the export round-trips through the parser *)
      let path = Filename.temp_file "fusecu_trace" ".json" in
      Trace.export path;
      let contents = In_channel.with_open_text path In_channel.input_all in
      Sys.remove path;
      match Json.parse contents with
      | Error e -> Alcotest.failf "exported file does not parse: %s" e
      | Ok parsed ->
        check_bool "file equals in-memory JSON" true
          (Json.equal parsed (Trace.to_chrome_json ())))

(* Concurrent spans closed on several pool domains: every event must be
   whole (mutex-serialized recording), the count exact, and each
   domain's depths self-consistent. *)
let test_concurrent_recording () =
  Trace.set_clock Unix.gettimeofday;
  let pool = Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      with_collection (fun () ->
          let spans_per_chunk = 25 in
          let total =
            Pool.parallel_fold ~pool ~chunks:8 ~lo:0 ~hi:8
              ~fold:(fun lo hi ->
                for _ = lo to hi - 1 do
                  for i = 0 to spans_per_chunk - 1 do
                    Trace.with_span ~cat:"work"
                      ~args:[ ("i", Json.Int i) ]
                      "unit"
                      (fun () -> ())
                  done
                done;
                hi - lo)
              ~merge:( + ) 0
          in
          check_int "all chunks ran" 8 total;
          (* user spans + the pool's own per-chunk spans *)
          let evs = Trace.events () in
          let work =
            List.filter (fun (e : Trace.event) -> e.cat = "work") evs
          in
          let pool_spans =
            List.filter (fun (e : Trace.event) -> e.cat = "pool") evs
          in
          check_int "every span recorded whole" (8 * spans_per_chunk)
            (List.length work);
          check_bool "pool chunks traced" true (List.length pool_spans > 0);
          List.iter
            (fun e ->
              check_str "no torn name" "unit" e.Trace.name;
              check_bool "depth positive" true (e.Trace.depth >= 1);
              check_bool "duration non-negative" true (e.Trace.dur_us >= 0.))
            work;
          (* eviction-proof totals agree with the ring (no eviction
             here: default capacity far exceeds the event count) *)
          match
            List.find_opt (fun s -> s.Trace.cat = "work") (Trace.summary ())
          with
          | Some s -> check_int "summary count" (8 * spans_per_chunk) s.Trace.count
          | None -> Alcotest.fail "work category missing from summary"))

let test_trace_ids_unique () =
  let a = Trace.new_trace_id () in
  let b = Trace.new_trace_id () in
  let c = Trace.new_trace_id () in
  check_bool "positive" true (a >= 1);
  check_bool "strictly increasing" true (a < b && b < c)

let test_clear () =
  install_synthetic_clock ();
  with_collection (fun () ->
      Trace.with_span "x" (fun () -> ());
      Trace.clear ();
      check_int "events cleared" 0 (List.length (Trace.events ()));
      check_int "summary cleared" 0 (List.length (Trace.summary ()));
      check_int "dropped cleared" 0 (Trace.dropped ());
      check_bool "still collecting" true (Trace.is_enabled ());
      Trace.with_span "y" (fun () -> ());
      check_int "records again" 1 (List.length (Trace.events ())))

(* Per-process export shape: a real pid on every event plus a leading
   process_name metadata record, ready for cross-process merging. The
   default export (pid 1, no metadata) is pinned separately by
   [test_chrome_json_golden]. *)
let test_process_lane_export () =
  install_synthetic_clock ();
  with_collection (fun () ->
      Trace.with_span ~cat:"c" "s" (fun () -> ());
      match Trace.to_chrome_json ~pid:42 ~process_name:"shard-7" () with
      | Json.Obj fields -> (
        match List.assoc "traceEvents" fields with
        | Json.List (meta :: evs) ->
          check_bool "has span events" true (evs <> []);
          check_bool "metadata first" true
            (Json.member "ph" meta = Some (Json.String "M"));
          check_bool "metadata is process_name" true
            (Json.member "name" meta = Some (Json.String "process_name"));
          check_bool "metadata pid" true
            (Json.member "pid" meta = Some (Json.Int 42));
          (match Json.member "args" meta with
          | Some args ->
            check_bool "lane title" true
              (Json.member "name" args = Some (Json.String "shard-7"))
          | None -> Alcotest.fail "metadata has no args");
          List.iter
            (fun ev ->
              check_bool "event pid" true
                (Json.member "pid" ev = Some (Json.Int 42)))
            evs
        | _ -> Alcotest.fail "no traceEvents list")
      | _ -> Alcotest.fail "not an object")

(* merge_chrome: pooled events stably sorted by timestamp, metadata
   leading, malformed inputs refused by index. *)
let merge_ev ~pid ~ts name =
  Json.Obj
    [ ("name", Json.String name);
      ("cat", Json.String "t");
      ("ph", Json.String "X");
      ("ts", Json.Float ts);
      ("dur", Json.Float 1.);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj []) ]

let merged_names merged =
  match Json.member "traceEvents" merged with
  | Some (Json.List evs) ->
    List.map
      (fun ev ->
        match Json.member "name" ev with
        | Some (Json.String n) -> n
        | _ -> "?")
      evs
  | _ -> Alcotest.fail "merged trace has no traceEvents"

let test_merge_chrome_interleaves () =
  let meta =
    Json.Obj
      [ ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "router") ]) ]
  in
  let t1 =
    Json.Obj
      [ ( "traceEvents",
          Json.List [ merge_ev ~pid:1 ~ts:10. "a"; merge_ev ~pid:1 ~ts:30. "c" ]
        );
        ("displayTimeUnit", Json.String "ms") ]
  in
  let t2 =
    Json.Obj
      [ ( "traceEvents",
          Json.List [ meta; merge_ev ~pid:2 ~ts:20. "b" ] ) ]
  in
  match Trace.merge_chrome [ t1; t2 ] with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok merged ->
    (* metadata first despite arriving in the second file; events
       interleaved across processes by timestamp *)
    Alcotest.(check (list string))
      "timeline order"
      [ "process_name"; "a"; "b"; "c" ]
      (merged_names merged);
    check_bool "displayTimeUnit kept" true
      (Json.member "displayTimeUnit" merged = Some (Json.String "ms"))

let test_merge_chrome_stable_on_ties () =
  let t1 =
    Json.Obj
      [ ("traceEvents", Json.List [ merge_ev ~pid:1 ~ts:5. "first" ]) ]
  in
  let t2 =
    Json.Obj
      [ ("traceEvents", Json.List [ merge_ev ~pid:2 ~ts:5. "second" ]) ]
  in
  match Trace.merge_chrome [ t1; t2 ] with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok merged ->
    Alcotest.(check (list string))
      "equal timestamps keep input order" [ "first"; "second" ]
      (merged_names merged)

let test_merge_chrome_refuses_malformed () =
  let good = Json.Obj [ ("traceEvents", Json.List []) ] in
  (match Trace.merge_chrome [ good; Json.Int 3 ] with
  | Ok _ -> Alcotest.fail "merged a non-object trace"
  | Error e ->
    check_bool "error names the bad input" true
      (String.length e >= 7 && String.sub e 0 7 = "trace 1"));
  match Trace.merge_chrome [] with
  | Ok merged -> Alcotest.(check (list string)) "empty merge" [] (merged_names merged)
  | Error e -> Alcotest.failf "empty merge failed: %s" e

let () =
  Alcotest.run "trace"
    [ ( "spans",
        [ Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "nesting and synthetic clock" `Quick
            test_span_nesting;
          Alcotest.test_case "span recorded on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "clear" `Quick test_clear ] );
      ( "ring",
        [ Alcotest.test_case "overflow keeps newest, summary exact" `Quick
            test_ring_overflow ] );
      ( "export",
        [ Alcotest.test_case "chrome JSON golden" `Quick
            test_chrome_json_golden;
          Alcotest.test_case "process lane export" `Quick
            test_process_lane_export ] );
      ( "merge",
        [ Alcotest.test_case "interleaves by timestamp" `Quick
            test_merge_chrome_interleaves;
          Alcotest.test_case "stable on ties" `Quick
            test_merge_chrome_stable_on_ties;
          Alcotest.test_case "refuses malformed input" `Quick
            test_merge_chrome_refuses_malformed ] );
      ( "concurrency",
        [ Alcotest.test_case "no torn events under the pool" `Quick
            test_concurrent_recording;
          Alcotest.test_case "trace ids unique" `Quick test_trace_ids_unique ]
      ) ]
