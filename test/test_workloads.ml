open Fusecu_tensor
open Fusecu_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_zoo_table2 () =
  check_int "seven models" 7 (List.length Zoo.all);
  let check_params (m : Model.t) heads seq hidden =
    check_int (m.name ^ " heads") heads m.heads;
    check_int (m.name ^ " seq") seq m.seq;
    check_int (m.name ^ " hidden") hidden m.hidden;
    check_int (m.name ^ " batch") 16 m.batch
  in
  check_params Zoo.bert 12 1024 768;
  check_params Zoo.gpt2 12 2048 768;
  check_params Zoo.blenderbot 16 256 1024;
  check_params Zoo.xlm 16 1024 2048;
  check_params Zoo.deberta_v2 24 1024 1536;
  check_params Zoo.llama2 32 4096 4096;
  check_params Zoo.albert 64 1024 4096

let test_head_dims () =
  check_int "bert head dim" 64 (Model.head_dim Zoo.bert);
  check_int "xlm head dim" 128 (Model.head_dim Zoo.xlm);
  check_int "llama2 head dim" 128 (Model.head_dim Zoo.llama2);
  check_int "albert head dim" 64 (Model.head_dim Zoo.albert)

let test_model_validation () =
  Alcotest.check_raises "indivisible"
    (Invalid_argument "Model.make: hidden must be divisible by heads") (fun () ->
      ignore (Model.make ~name:"x" ~heads:3 ~seq:8 ~hidden:8 ()))

let test_find () =
  check_bool "finds llama2" true (Zoo.find "llama2" <> None);
  check_bool "case insensitive" true (Zoo.find "BERT" <> None);
  check_bool "missing" true (Zoo.find "resnet" = None)

let test_workload_structure () =
  let w = Workload.of_model Zoo.bert in
  (* 4 projections + attention chain + FFN chain *)
  check_int "six items" 6 (List.length (Workload.items w));
  check_int "two fusable chains" 2 (List.length (Workload.chains w));
  let attention_count =
    List.find_map
      (function
        | Workload.Fusable { chain; count }
          when List.exists
                 (fun (op : Matmul.t) -> String.length op.name >= 2 && op.k = 64)
                 (Chain.ops chain) ->
          Some count
        | _ -> None)
      (Workload.items w)
  in
  check_int "attention instances = batch*heads" (16 * 12)
    (Option.value ~default:0 attention_count)

let test_workload_shapes () =
  let w = Workload.of_model Zoo.bert in
  let ops = Workload.all_ops w in
  (* projections are (batch*seq) x hidden x hidden *)
  let proj =
    List.find (fun ((op : Matmul.t), _) -> op.name = "Bert.wq") ops |> fst
  in
  check_int "proj M" (16 * 1024) proj.m;
  check_int "proj K" 768 proj.k;
  (* attention scores are seq x head_dim x seq *)
  let qk = List.find (fun ((op : Matmul.t), _) -> op.name = "Bert.qk") ops |> fst in
  check_int "qk M" 1024 qk.m;
  check_int "qk K" 64 qk.k;
  check_int "qk L" 1024 qk.l;
  (* FFN expands by 4 *)
  let ff1 =
    List.find (fun ((op : Matmul.t), _) -> op.name = "Bert.ff1") ops |> fst
  in
  check_int "ff1 L" (4 * 768) ff1.l

let test_workload_macs () =
  let w = Workload.of_model Zoo.bert in
  (* closed form for one encoder layer, batch 16:
     4 projections: 4 * bs*h*h
     attention: b*heads * 2 * seq*dh*seq
     ffn: 2 * bs*h*4h *)
  let bs = 16 * 1024 and h = 768 and dh = 64 and heads = 12 and seq = 1024 in
  let expected =
    (4 * bs * h * h)
    + (16 * heads * 2 * seq * dh * seq)
    + (2 * bs * h * 4 * h)
  in
  check_int "total macs" expected (Workload.total_macs w)

let test_chains_are_valid () =
  List.iter
    (fun model ->
      let w = Workload.of_model model in
      List.iter
        (fun (chain, count) ->
          check_bool "positive count" true (count >= 1);
          check_int "length 2" 2 (Chain.length chain))
        (Workload.chains w))
    Zoo.all

let test_sweep () =
  Alcotest.(check (list int)) "sweep points"
    [ 256; 512; 1024; 2048; 4096; 8192; 16384 ]
    Sweep.seq_lengths;
  let m = Sweep.llama2_at 256 in
  check_int "seq set" 256 m.Model.seq;
  check_int "hidden kept" 4096 m.Model.hidden;
  check_int "seven workloads" 7 (List.length (Sweep.workloads ()));
  (* traffic-relevant shape: attention scores scale with seq^2 *)
  let w = Workload.of_model m in
  let qk =
    List.find (fun ((op : Matmul.t), _) -> op.k = 128 && op.m = 256)
      (Workload.all_ops w)
    |> fst
  in
  check_int "qk L = seq" 256 qk.l

let test_with_seq_renames () =
  let m = Model.with_seq Zoo.llama2 8192 in
  check_bool "name includes seq" true
    (String.length m.Model.name > String.length Zoo.llama2.Model.name)


let test_softmax_accounting () =
  let m = Zoo.bert in
  check_int "unfused = 2*b*h*seq^2" (2 * 16 * 12 * 1024 * 1024)
    (Softmax.extra_unfused_traffic m);
  check_int "fused is free" 0 (Softmax.fused_traffic m);
  check_bool "meaningful fraction" true (Softmax.relative_weight m > 0.1);
  (* longer sequences make softmax relatively heavier *)
  check_bool "grows with seq" true
    (Softmax.relative_weight (Sweep.llama2_at 8192)
    > Softmax.relative_weight (Sweep.llama2_at 512))


let test_gqa_projections () =
  let m = Zoo.llama2_70b_gqa in
  check_int "query heads" 64 m.Model.heads;
  check_int "kv heads" 8 m.Model.kv_heads;
  let w = Workload.of_model m in
  let find name =
    fst (List.find (fun ((op : Matmul.t), _) -> op.name = name) (Workload.all_ops w))
  in
  let dh = Model.head_dim m in
  check_int "wq full width" m.Model.hidden (find "LLaMA2-70B.wq").l;
  check_int "wk narrowed to kv heads" (8 * dh) (find "LLaMA2-70B.wk").l;
  check_int "wv narrowed to kv heads" (8 * dh) (find "LLaMA2-70B.wv").l;
  Alcotest.check_raises "kv must divide heads"
    (Invalid_argument "Model.make: heads must be divisible by kv_heads")
    (fun () ->
      ignore (Model.make ~name:"x" ~heads:6 ~kv_heads:4 ~seq:8 ~hidden:12 ()))


(* ------------------------------------------------------------------ *)
(* Dependency graph                                                    *)

let test_graph_structure () =
  let g = Graph.of_model Zoo.bert in
  check_int "six nodes" 6 (List.length (Graph.nodes g));
  check_bool "valid" true (Result.is_ok (Graph.validate g));
  let attention = Graph.find g 3 in
  Alcotest.(check (list int)) "attention needs q,k,v" [ 0; 1; 2 ]
    attention.Graph.deps;
  check_int "macs match workload"
    (Workload.total_macs (Workload.of_model Zoo.bert))
    (Graph.total_macs g)

let test_graph_critical_path () =
  let g = Graph.of_model Zoo.bert in
  let unit_cost _ = 1 in
  (* q/k/v run in parallel: depth = proj, attention, wo, ffn = 4 *)
  check_int "depth 4" 4 (Graph.critical_path g ~cost:unit_cost);
  check_int "sequential 6" 6 (Graph.sequential g ~cost:unit_cost);
  check_bool "cp <= sequential" true
    (Graph.critical_path g ~cost:unit_cost <= Graph.sequential g ~cost:unit_cost)

let test_graph_stack () =
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:3 in
  check_int "three layers" 18 (List.length (Graph.nodes g));
  check_bool "valid" true (Result.is_ok (Graph.validate g));
  check_int "depth scales" 12 (Graph.critical_path g ~cost:(fun _ -> 1));
  (* the second layer's projections wait for the first layer's FFN *)
  let l1_wq = Graph.find g 6 in
  Alcotest.(check (list int)) "cross-layer dep" [ 5 ] l1_wq.Graph.deps;
  Alcotest.check_raises "zero layers"
    (Invalid_argument "Graph.stack: layers must be >= 1") (fun () ->
      ignore (Graph.stack (Graph.of_model Zoo.bert) ~layers:0))


let test_graph_stack_one () =
  (* layers:1 is the identity shape but with layer-qualified names, so
     single-layer and multi-layer planning see the same namespace *)
  let g = Graph.stack (Graph.of_model Zoo.bert) ~layers:1 in
  check_int "six nodes" 6 (List.length (Graph.nodes g));
  check_bool "valid" true (Result.is_ok (Graph.validate g));
  Alcotest.(check string) "renamed" "L0.wq" (Graph.find g 0).Graph.name;
  Alcotest.(check string) "renamed last" "L0.ffn" (Graph.find g 5).Graph.name;
  Alcotest.(check (list int)) "deps preserved" [ 0; 1; 2 ]
    (Graph.find g 3).Graph.deps;
  check_int "same depth" 4 (Graph.critical_path g ~cost:(fun _ -> 1))

let op_node id name deps =
  { Graph.id; name; work = Graph.Op { op = Matmul.make ~m:4 ~k:4 ~l:4 (); count = 1 };
    deps }

let test_graph_duplicate_dep () =
  match Graph.make [ op_node 0 "a" []; op_node 1 "b" [ 0; 0 ] ] with
  | Ok _ -> Alcotest.fail "duplicate dependency accepted"
  | Error e ->
    Alcotest.(check string) "diagnostic"
      "node 1 (b) lists dependency 0 twice" e

let test_graph_diamond () =
  (* a -> {b, c} -> d: both branches overlap, so depth is 3 of 4 *)
  match
    Graph.make
      [ op_node 0 "a" []; op_node 1 "b" [ 0 ]; op_node 2 "c" [ 0 ];
        op_node 3 "d" [ 1; 2 ] ]
  with
  | Error e -> Alcotest.fail e
  | Ok g ->
    check_int "depth 3" 3 (Graph.critical_path g ~cost:(fun _ -> 1));
    check_int "sequential 4" 4 (Graph.sequential g ~cost:(fun _ -> 1));
    check_int "weighted depth" 7
      (Graph.critical_path g ~cost:(fun n -> if n.Graph.name = "c" then 5 else 1))

let test_graph_dot () =
  let dot = Graph.to_dot (Graph.of_model Zoo.bert) in
  let contains needle =
    let n = String.length needle and t = String.length dot in
    let rec scan i = i + n <= t && (String.sub dot i n = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "digraph" true (contains "digraph workload");
  check_bool "attention node" true (contains "attention");
  check_bool "edge" true (contains "n3 -> n4")

let () =
  Alcotest.run "workloads"
    [ ( "zoo",
        [ Alcotest.test_case "Table II parameters" `Quick test_zoo_table2;
          Alcotest.test_case "head dims" `Quick test_head_dims;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "find" `Quick test_find ] );
      ( "workload",
        [ Alcotest.test_case "structure" `Quick test_workload_structure;
          Alcotest.test_case "operator shapes" `Quick test_workload_shapes;
          Alcotest.test_case "mac count" `Quick test_workload_macs;
          Alcotest.test_case "chains valid" `Quick test_chains_are_valid ] );
      ( "graph",
        [ Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "critical path" `Quick test_graph_critical_path;
          Alcotest.test_case "stacking" `Quick test_graph_stack;
          Alcotest.test_case "single-layer stack" `Quick test_graph_stack_one;
          Alcotest.test_case "duplicate dependency" `Quick
            test_graph_duplicate_dep;
          Alcotest.test_case "diamond critical path" `Quick test_graph_diamond;
          Alcotest.test_case "dot export" `Quick test_graph_dot ] );
      ( "gqa",
        [ Alcotest.test_case "grouped-query projections" `Quick
            test_gqa_projections ] );
      ( "softmax",
        [ Alcotest.test_case "traffic accounting" `Quick test_softmax_accounting ] );
      ( "sweep",
        [ Alcotest.test_case "llama2 sweep" `Quick test_sweep;
          Alcotest.test_case "with_seq renames" `Quick test_with_seq_renames ] ) ]
