(* Fusecu_util.Pool: the domain pool under the parallel DSE engine.
   The contract under test: chunking covers the index range exactly
   once, ordered merging makes results domain-count independent,
   exceptions propagate to the caller, and a size-1 pool is exactly a
   direct fold. *)

open Fusecu_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Every index in [lo, hi) visited exactly once, across chunk counts and
   pool sizes. *)
let test_chunks_cover_range () =
  List.iter
    (fun (domains, chunks, lo, hi) ->
      with_pool domains (fun pool ->
          let visits = Array.make (hi - lo) 0 in
          let sum =
            Pool.parallel_fold ~pool ?chunks ~lo ~hi
              ~fold:(fun clo chi ->
                let s = ref 0 in
                for i = clo to chi - 1 do
                  (* chunks write disjoint subranges: no races *)
                  visits.(i - lo) <- visits.(i - lo) + 1;
                  s := !s + i
                done;
                !s)
              ~merge:( + ) 0
          in
          Array.iter (fun v -> check_int "visited exactly once" 1 v) visits;
          check_int
            (Printf.sprintf "sum over [%d,%d) on %d domains" lo hi domains)
            ((hi * (hi - 1) / 2) - (lo * (lo - 1) / 2))
            sum))
    [ (1, None, 0, 100);
      (4, None, 0, 100);
      (4, Some 7, 3, 103);
      (4, Some 1, 0, 10);
      (4, Some 1000, 0, 10);  (* more chunks than elements *)
      (3, Some 4, 5, 6) ]

let test_empty_range () =
  with_pool 4 (fun pool ->
      check_int "hi = lo" 42
        (Pool.parallel_fold ~pool ~lo:7 ~hi:7
           ~fold:(fun _ _ -> Alcotest.fail "fold must not run")
           ~merge:( + ) 42);
      check_int "hi < lo" 42
        (Pool.parallel_fold ~pool ~lo:7 ~hi:0
           ~fold:(fun _ _ -> Alcotest.fail "fold must not run")
           ~merge:( + ) 42))

(* Size-1 pool (and the [sequential] constant) must equal a direct
   fold, merge applied once. *)
let test_size_one_is_direct_fold () =
  let direct lo hi =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + (i * i)
    done;
    !s
  in
  List.iter
    (fun pool ->
      check_int "sum of squares" (direct 0 50)
        (Pool.parallel_fold ~pool ~lo:0 ~hi:50 ~fold:direct ~merge:( + ) 0))
    [ Pool.sequential; ];
  with_pool 1 (fun pool ->
      check_int "created size-1 pool" (direct 0 50)
        (Pool.parallel_fold ~pool ~lo:0 ~hi:50 ~fold:direct ~merge:( + ) 0);
      check_int "size" 1 (Pool.size pool))

let test_merge_order_deterministic () =
  (* merging in ascending chunk order: concatenation of per-chunk lists
     must rebuild the range in order, whatever the pool size *)
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let xs =
            Pool.parallel_fold ~pool ~chunks:13 ~lo:0 ~hi:64
              ~fold:(fun lo hi -> List.init (hi - lo) (fun i -> lo + i))
              ~merge:(fun a b -> a @ b)
              []
          in
          Alcotest.(check (list int)) "in order" (List.init 64 Fun.id) xs))
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          check_bool "raises" true
            (match
               Pool.parallel_fold ~pool ~chunks:8 ~lo:0 ~hi:80
                 ~fold:(fun lo hi ->
                   for i = lo to hi - 1 do
                     if i = 57 then raise (Boom i)
                   done;
                   hi - lo)
                 ~merge:( + ) 0
             with
            | _ -> false
            | exception Boom 57 -> true);
          (* the pool survives a failed region *)
          check_int "usable after failure" 10
            (Pool.parallel_fold ~pool ~lo:0 ~hi:10
               ~fold:(fun lo hi -> hi - lo)
               ~merge:( + ) 0)))
    [ 1; 4 ]

(* A nested region on the same pool must not deadlock: it runs inline. *)
let test_nested_region () =
  with_pool 4 (fun pool ->
      let total =
        Pool.parallel_fold ~pool ~chunks:4 ~lo:0 ~hi:4
          ~fold:(fun lo hi ->
            let inner = ref 0 in
            for _ = lo to hi - 1 do
              inner :=
                !inner
                + Pool.parallel_fold ~pool ~lo:0 ~hi:10
                    ~fold:(fun a b -> b - a)
                    ~merge:( + ) 0
            done;
            !inner)
          ~merge:( + ) 0
      in
      check_int "4 x inner sum of 10" 40 total)

let test_parallel_map () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let arr = Array.init 37 (fun i -> i) in
          let out = Pool.parallel_map ~pool (fun x -> x * x) arr in
          check_int "length" 37 (Array.length out);
          Array.iteri (fun i y -> check_int "order preserved" (i * i) y) out;
          Alcotest.(check (array int)) "empty" [||]
            (Pool.parallel_map ~pool (fun x -> x) [||])))
    [ 1; 4 ]

let test_default_size_positive () =
  let n = Pool.default_size () in
  check_bool "within [1, 64]" true (n >= 1 && n <= 64)

let test_create_invalid () =
  Alcotest.check_raises "size 0"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create 0))

let test_shutdown_idempotent () =
  let pool = Pool.create 3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_int "size still reported" 3 (Pool.size pool)

(* Worker stats: chunk counts must add up to the chunks submitted, jobs
   count the regions (including inline fallbacks), and reset zeroes
   everything. *)
let test_stats () =
  with_pool 4 (fun pool ->
      Pool.reset_stats pool;
      let chunks = 16 in
      ignore
        (Pool.parallel_fold ~pool ~chunks ~lo:0 ~hi:160
           ~fold:(fun lo hi -> hi - lo)
           ~merge:( + ) 0);
      let jobs, workers = Pool.stats pool in
      check_int "one region" 1 jobs;
      check_int "stats cover every worker" 4 (List.length workers);
      check_int "chunks accounted exactly once" chunks
        (List.fold_left (fun acc (w : Pool.worker_stat) -> acc + w.chunks) 0
           workers);
      List.iter
        (fun (w : Pool.worker_stat) ->
          check_bool "run time non-negative" true (w.run_s >= 0.);
          check_bool "wait time non-negative" true (w.wait_s >= 0.))
        workers;
      (* nested regions run inline on worker 0 and still count as jobs *)
      ignore
        (Pool.parallel_fold ~pool ~chunks:2 ~lo:0 ~hi:2
           ~fold:(fun lo hi ->
             Pool.parallel_fold ~pool ~lo:0 ~hi:(hi - lo)
               ~fold:(fun a b -> b - a)
               ~merge:( + ) 0)
           ~merge:( + ) 0);
      let jobs, _ = Pool.stats pool in
      check_bool "outer + inline inner regions counted" true (jobs >= 3);
      Pool.reset_stats pool;
      let jobs, workers = Pool.stats pool in
      check_int "jobs reset" 0 jobs;
      List.iter
        (fun (w : Pool.worker_stat) ->
          check_int "chunks reset" 0 w.chunks;
          check_bool "times reset" true (w.run_s = 0. && w.wait_s = 0.))
        workers)

let test_stats_json_shape () =
  with_pool 2 (fun pool ->
      ignore
        (Pool.parallel_fold ~pool ~chunks:4 ~lo:0 ~hi:8
           ~fold:(fun lo hi -> hi - lo)
           ~merge:( + ) 0);
      let j = Pool.stats_json pool in
      check_bool "size" true (Json.member "size" j = Some (Json.Int 2));
      check_bool "jobs" true (Json.member "jobs" j = Some (Json.Int 1));
      match Json.member "workers" j with
      | Some (Json.List ws) -> check_int "one entry per worker" 2 (List.length ws)
      | _ -> Alcotest.fail "workers list missing")

let () =
  Alcotest.run "pool"
    [ ( "parallel_fold",
        [ Alcotest.test_case "chunks cover range once" `Quick
            test_chunks_cover_range;
          Alcotest.test_case "empty range" `Quick test_empty_range;
          Alcotest.test_case "size 1 = direct fold" `Quick
            test_size_one_is_direct_fold;
          Alcotest.test_case "merge order deterministic" `Quick
            test_merge_order_deterministic;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested region runs inline" `Quick
            test_nested_region ] );
      ( "parallel_map",
        [ Alcotest.test_case "order preserved" `Quick test_parallel_map ] );
      ( "lifecycle",
        [ Alcotest.test_case "default size" `Quick test_default_size_positive;
          Alcotest.test_case "create invalid" `Quick test_create_invalid;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent ] );
      ( "stats",
        [ Alcotest.test_case "chunks and jobs accounted" `Quick test_stats;
          Alcotest.test_case "stats_json shape" `Quick test_stats_json_shape ]
      ) ]
