(* End-to-end checks that cross library boundaries: the optimizers, the
   architecture model and the structural simulator telling one
   consistent story. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_arch
open Fusecu_rtl

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Principle plan -> RTL execution: a fused plan chosen by the
   optimizer runs correctly on the structural FuseCU model. *)

let test_fused_plan_executes_on_rtl () =
  (* attention-like pair small enough to map on one CU *)
  let n = 16 in
  let m = 16 and dh = 4 in
  let op1 = Matmul.make ~name:"qk" ~m ~k:dh ~l:m () in
  let op2 = Matmul.make ~name:"sv" ~m ~k:m ~l:dh () in
  let pair = Fused.make_pair_exn op1 op2 in
  let buf = Buffer.make 2048 in
  match Fusion.plan_pair pair buf with
  | Error e -> Alcotest.fail e
  | Ok (Fusion.No_fuse { why; _ }) -> Alcotest.failf "expected fusion: %s" why
  | Ok (Fusion.Fuse { fused; _ }) ->
    let cluster = Fusecu_sim.create ~n () in
    let a = Matrix.random ~seed:1 ~rows:m ~cols:dh () in
    let b = Matrix.random ~seed:2 ~rows:dh ~cols:m () in
    let d = Matrix.random ~seed:3 ~rows:m ~cols:dh () in
    let reference = Matrix.mul (Matrix.mul a b) d in
    let result =
      match Mapping.fusion_mapping_of fused with
      | Mapping.Tile_fusion ->
        Fusecu_sim.run_tile_fused cluster Fusecu_sim.Square ~a ~b ~d
      | Mapping.Column_fusion ->
        Fusecu_sim.run_column_fused cluster Fusecu_sim.Square ~a ~b ~d
    in
    (match result with
    | Ok (e, _) -> check_bool "RTL matches reference" true (Matrix.equal e reference)
    | Error e -> Alcotest.fail e)

(* ------------------------------------------------------------------ *)
(* The two fused mappings of Sec. IV-A appear for the expected tile
   shapes (paper's worked mapping examples). *)

let test_mapping_kind_follows_tile_shape () =
  (* Single-NRA fused dataflow: tile-like C -> tile fusion *)
  let pair =
    Fused.make_pair_exn
      (Matmul.make ~m:256 ~k:256 ~l:256 ())
      (Matmul.make ~m:256 ~k:256 ~l:256 ())
  in
  let buf = Buffer.make 20000 in
  (match Fusion.plan_pair pair buf with
  | Ok (Fusion.Fuse { fused; _ }) ->
    if Nra.equal (Fusion.fused_nra pair fused) Nra.Single then
      check_bool "single-NRA fusion maps as tile fusion" true
        (Mapping.fusion_mapping_of fused = Mapping.Tile_fusion)
  | Ok (Fusion.No_fuse _) | Error _ -> ());
  (* Two-NRA fused dataflow: column-like C -> column fusion *)
  let pair2 =
    Fused.make_pair_exn
      (Matmul.make ~m:512 ~k:96 ~l:96 ())
      (Matmul.make ~m:512 ~k:96 ~l:512 ())
  in
  let buf2 = Buffer.make 3000 in
  match Fusion.plan_pair pair2 buf2 with
  | Ok (Fusion.Fuse { fused; _ }) ->
    if Nra.equal (Fusion.fused_nra pair2 fused) Nra.Two then
      check_bool "two-NRA fusion maps as column fusion" true
        (Mapping.fusion_mapping_of fused = Mapping.Column_fusion)
  | Ok (Fusion.No_fuse _) | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Fig. 11 shape: FuseCU's advantage over TPUv4i grows with sequence
   length. *)

let test_seq_length_sensitivity () =
  let buf = Buffer.of_kib 512 in
  let ratio seq =
    let w = Fusecu_workloads.Workload.of_model (Fusecu_workloads.Sweep.llama2_at seq) in
    match
      (Perf.eval_workload Platform.fusecu buf w,
       Perf.eval_workload Platform.tpu_v4i buf w)
    with
    | Ok f, Ok t -> Perf.ma_ratio f t
    | _ -> Alcotest.fail "eval failed"
  in
  let short = ratio 256 and long = ratio 2048 in
  check_bool "both save memory" true (short < 1.0 && long < 1.0);
  check_bool "longer sequences save more (Fig. 11)" true (long < short)

(* ------------------------------------------------------------------ *)
(* Headline Fig. 10 averages over the full model zoo keep the paper's
   ordering of savings: TPUv4i ~ Gemmini >> Planaria. *)

let test_zoo_average_savings_ordering () =
  let buf = Buffer.of_kib 512 in
  let models = Fusecu_workloads.Zoo.[ bert; blenderbot; xlm ] in
  let avg_ratio vs =
    let ratios =
      List.map
        (fun m ->
          let w = Fusecu_workloads.Workload.of_model m in
          match
            (Perf.eval_workload Platform.fusecu buf w, Perf.eval_workload vs buf w)
          with
          | Ok f, Ok o -> Perf.ma_ratio f o
          | _ -> Alcotest.fail "eval failed")
        models
    in
    Fusecu_util.Stats.geomean ratios
  in
  let vs_tpu = avg_ratio Platform.tpu_v4i in
  let vs_gem = avg_ratio Platform.gemmini in
  let vs_planaria = avg_ratio Platform.planaria in
  check_bool "saves vs tpu" true (vs_tpu < 1.0);
  check_bool "saves vs gemmini" true (vs_gem < 1.0);
  check_bool "saves vs planaria" true (vs_planaria < 1.0);
  (* Planaria is the strongest baseline in the paper *)
  check_bool "planaria hardest to beat" true
    (vs_planaria > vs_tpu && vs_planaria > vs_gem)

(* ------------------------------------------------------------------ *)
(* Optimizer cost consistency: the chain planner's traffic equals the
   per-segment costs recomputed from scratch. *)

let test_planner_traffic_recomputable () =
  let chain = Chain.of_dims ~name:"ffn" ~m:128 [ 32; 128; 32 ] in
  let buf = Buffer.make 8192 in
  match Planner.plan_chain chain buf with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let recomputed =
      List.map
        (function
          | Planner.Solo p -> (Cost.eval p.Intra.op p.Intra.schedule).Cost.total
          | Planner.Fused_pair { pair; fused; _ } -> Fused.traffic pair fused)
        plan.segments
    in
    check_int "traffic recomputable" (Fusecu_util.Arith.sum recomputed) plan.traffic

let () =
  Alcotest.run "integration"
    [ ( "plan-to-rtl",
        [ Alcotest.test_case "fused plan executes on the array" `Quick
            test_fused_plan_executes_on_rtl;
          Alcotest.test_case "mapping kind follows tile shape" `Quick
            test_mapping_kind_follows_tile_shape ] );
      ( "paper shapes",
        [ Alcotest.test_case "Fig. 11 sequence sensitivity" `Quick
            test_seq_length_sensitivity;
          Alcotest.test_case "Fig. 10 savings ordering" `Quick
            test_zoo_average_savings_ordering ] );
      ( "consistency",
        [ Alcotest.test_case "planner traffic recomputable" `Quick
            test_planner_traffic_recomputable ] ) ]
