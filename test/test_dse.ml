open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Space                                                               *)

let test_tile_candidates () =
  Alcotest.(check (list int)) "all" [ 1; 2; 3; 4 ] (Space.tile_candidates Space.All 4);
  Alcotest.(check (list int)) "divisors" [ 1; 2; 3; 6 ]
    (Space.tile_candidates Space.Divisors 6);
  Alcotest.(check (list int)) "pow2" [ 1; 2; 4; 6 ]
    (Space.tile_candidates Space.Pow2 6);
  List.iter
    (fun lattice ->
      List.iter
        (fun n ->
          let c = Space.tile_candidates lattice n in
          check_bool "has 1" true (List.mem 1 c);
          check_bool "has n" true (List.mem n c))
        [ 1; 7; 12; 64 ])
    [ Space.All; Space.Divisors; Space.Pow2 ]

let test_space_respects_buffer () =
  let op = Matmul.make ~m:8 ~k:8 ~l:8 () in
  let buf = Buffer.make 50 in
  List.iter
    (fun t -> check_bool "fits" true (Tiling.footprint t <= 50))
    (Space.tilings Space.All op buf);
  check_int "size = 6 x tilings"
    (6 * List.length (Space.tilings Space.All op buf))
    (Space.size Space.All op buf)

(* the counted size must equal the enumerated size on every lattice,
   including buffers that prune most of the space *)
let test_space_size_counts () =
  List.iter
    (fun (m, k, l, bytes) ->
      let op = Matmul.make ~m ~k ~l () in
      let buf = Buffer.make bytes in
      List.iter
        (fun lattice ->
          check_int
            (Printf.sprintf "counted = enumerated at %dx%dx%d/%d" m k l bytes)
            (List.length (Space.schedules lattice op buf))
            (Space.size lattice op buf))
        [ Space.All; Space.Divisors; Space.Pow2 ])
    [ (8, 8, 8, 50); (12, 10, 9, 3); (12, 10, 9, 60); (24, 24, 24, 300);
      (64, 48, 36, 100_000); (7, 7, 7, 2) ]

(* streaming fold = materialized list, and index-range partitioning
   reassembles the space exactly *)
let test_space_streaming_matches_list () =
  let op = Matmul.make ~m:12 ~k:10 ~l:9 () in
  let buf = Buffer.make 80 in
  List.iter
    (fun lattice ->
      let listed = Space.schedules lattice op buf in
      let streamed =
        List.rev (Space.fold lattice op buf ~init:[] ~f:(fun acc s -> s :: acc))
      in
      check_int "same count" (List.length listed) (List.length streamed);
      List.iter2
        (fun a b -> check_bool "same schedule" true (Schedule.equal a b))
        listed streamed;
      (* chop the raw index range into uneven pieces: concatenation must
         rebuild the same enumeration *)
      let space = Space.compile lattice op buf in
      let n = Space.raw_size space in
      let pieces = [ (0, n / 3); (n / 3, n / 2); (n / 2, n); (n, n + 5) ] in
      let chopped =
        List.concat_map
          (fun (lo, hi) ->
            List.rev
              (Space.fold_range space ~lo ~hi ~init:[]
                 ~f:(fun acc _ s -> s :: acc)))
          pieces
      in
      check_int "partitioned count" (List.length listed) (List.length chopped);
      List.iter2
        (fun a b -> check_bool "partitioned order" true (Schedule.equal a b))
        listed chopped)
    [ Space.All; Space.Divisors; Space.Pow2 ]

(* ------------------------------------------------------------------ *)
(* Exhaustive                                                          *)

let test_exhaustive_small () =
  let op = Matmul.make ~m:4 ~k:4 ~l:4 () in
  let buf = Buffer.make 48 in
  match Exhaustive.search ~lattice:Space.All op buf with
  | None -> Alcotest.fail "expected a result"
  | Some r ->
    check_bool "fits" true (Schedule.fits r.schedule buf);
    check_bool "explored all" true (r.explored = Space.size Space.All op buf);
    (* everything fits: ideal MA *)
    check_int "ideal" (Matmul.ideal_ma op) r.cost.Cost.total

let test_exhaustive_infeasible () =
  let op = Matmul.make ~m:4 ~k:4 ~l:4 () in
  check_bool "bs=2" true (Exhaustive.search (Matmul.make ~m:4 ~k:4 ~l:4 ()) (Buffer.make 2) = None);
  ignore op

let test_best_per_class () =
  let op = Matmul.make ~m:24 ~k:24 ~l:24 () in
  let buf = Buffer.make 300 in
  let per_class = Exhaustive.best_per_class ~lattice:Space.All op buf in
  check_bool "several classes present" true (List.length per_class >= 2);
  List.iter
    (fun (cls, (r : Exhaustive.result)) ->
      check_bool "class matches schedule" true
        (Nra.equal cls (Nra.class_of (Nra.classify op r.schedule))))
    per_class;
  (* the global optimum equals the best class optimum *)
  match Exhaustive.search ~lattice:Space.All op buf with
  | None -> Alcotest.fail "no optimum"
  | Some best ->
    let min_class =
      List.fold_left
        (fun acc (_, (r : Exhaustive.result)) -> min acc r.cost.Cost.total)
        max_int per_class
    in
    check_int "global = min over classes" best.cost.Cost.total min_class

(* ------------------------------------------------------------------ *)
(* Parallel determinism: the pool-split search must return bit-identical
   results to the sequential path — same schedule, same cost, same
   explored count — for any domain count.                              *)

let determinism_cases =
  [ (24, 24, 24, 300, Space.All);
    (48, 36, 60, 800, Space.Divisors);
    (64, 64, 64, 500, Space.Pow2);
    (96, 24, 48, 2000, Space.Divisors);
    (4, 4, 4, 2, Space.All) (* infeasible: both sides must agree on None *) ]

let with_pool n f =
  let pool = Fusecu_util.Pool.create n in
  Fun.protect ~finally:(fun () -> Fusecu_util.Pool.shutdown pool) (fun () ->
      f pool)

let test_parallel_search_deterministic () =
  with_pool 4 (fun pool ->
      List.iter
        (fun (m, k, l, bytes, lattice) ->
          let op = Matmul.make ~m ~k ~l () in
          let buf = Buffer.make bytes in
          let seq =
            Exhaustive.search ~lattice ~pool:Fusecu_util.Pool.sequential op buf
          in
          let par = Exhaustive.search ~lattice ~pool op buf in
          match (seq, par) with
          | None, None -> ()
          | Some s, Some p ->
            check_bool
              (Printf.sprintf "same schedule at %dx%dx%d/%d" m k l bytes)
              true
              (Schedule.equal s.schedule p.schedule);
            check_int "same cost" s.cost.Cost.total p.cost.Cost.total;
            check_int "same explored" s.explored p.explored
          | _ -> Alcotest.fail "sequential and parallel feasibility disagree")
        determinism_cases)

let test_parallel_best_per_class_deterministic () =
  with_pool 4 (fun pool ->
      List.iter
        (fun (m, k, l, bytes, lattice) ->
          let op = Matmul.make ~m ~k ~l () in
          let buf = Buffer.make bytes in
          let seq =
            Exhaustive.best_per_class ~lattice
              ~pool:Fusecu_util.Pool.sequential op buf
          in
          let par = Exhaustive.best_per_class ~lattice ~pool op buf in
          check_int "same classes" (List.length seq) (List.length par);
          List.iter2
            (fun (c1, (r1 : Exhaustive.result)) (c2, (r2 : Exhaustive.result)) ->
              check_bool "same class" true (Nra.equal c1 c2);
              check_bool "same schedule" true
                (Schedule.equal r1.schedule r2.schedule);
              check_int "same cost" r1.cost.Cost.total r2.cost.Cost.total;
              check_int "same explored" r1.explored r2.explored)
            seq par)
        determinism_cases)

let test_parallel_fused_search_deterministic () =
  with_pool 4 (fun pool ->
      let pair =
        Fused.make_pair_exn
          (Matmul.make ~name:"qk" ~m:24 ~k:6 ~l:24 ())
          (Matmul.make ~name:"sv" ~m:24 ~k:24 ~l:6 ())
      in
      List.iter
        (fun bytes ->
          let buf = Buffer.make bytes in
          let seq =
            Fused_search.exhaustive ~lattice:Space.All
              ~pool:Fusecu_util.Pool.sequential pair buf
          in
          let par = Fused_search.exhaustive ~lattice:Space.All ~pool pair buf in
          match (seq, par) with
          | None, None -> ()
          | Some s, Some p ->
            check_int "same traffic" s.traffic p.traffic;
            check_int "same explored" s.explored p.explored;
            check_bool "same producer" true
              (Schedule.equal s.fused.Fused.producer p.fused.Fused.producer);
            check_bool "same consumer" true
              (Schedule.equal s.fused.Fused.consumer p.fused.Fused.consumer)
          | _ -> Alcotest.fail "fused feasibility disagrees")
        [ 200; 1024; 4000 ])

(* the GA never touches the pool: a fixed seed must reproduce the same
   answer whatever the global domain count is *)
let test_genetic_ignores_domains () =
  let op = Matmul.make ~m:48 ~k:36 ~l:60 () in
  let buf = Buffer.make 800 in
  Fusecu_util.Pool.set_global_size 1;
  let a = Genetic.search op buf in
  Fusecu_util.Pool.set_global_size 4;
  let b = Genetic.search op buf in
  Fusecu_util.Pool.set_global_size (Fusecu_util.Pool.default_size ());
  match (a, b) with
  | Some a, Some b ->
    check_int "same traffic across domain counts" a.cost.Cost.total
      b.cost.Cost.total;
    check_bool "same schedule across domain counts" true
      (Schedule.equal a.schedule b.schedule);
    check_int "same evaluations" a.explored b.explored
  | _ -> Alcotest.fail "GA found nothing"

(* ------------------------------------------------------------------ *)
(* Genetic                                                             *)

let test_genetic_deterministic () =
  let op = Matmul.make ~m:48 ~k:36 ~l:60 () in
  let buf = Buffer.make 800 in
  match (Genetic.search op buf, Genetic.search op buf) with
  | Some a, Some b ->
    check_int "same traffic" a.cost.Cost.total b.cost.Cost.total;
    check_bool "same schedule" true (Schedule.equal a.schedule b.schedule)
  | _ -> Alcotest.fail "GA found nothing"

let test_genetic_near_optimal () =
  (* the GA should land within a modest factor of the exhaustive optimum
     on divisor-rich operators *)
  let cases =
    [ (48, 36, 60, 800); (64, 64, 64, 500); (96, 24, 48, 2000); (32, 32, 32, 4000) ]
  in
  List.iter
    (fun (m, k, l, bytes) ->
      let op = Matmul.make ~m ~k ~l () in
      let buf = Buffer.make bytes in
      match (Genetic.search op buf, Exhaustive.search op buf) with
      | Some ga, Some ex ->
        let ratio =
          float_of_int ga.cost.Cost.total /. float_of_int ex.cost.Cost.total
        in
        check_bool
          (Printf.sprintf "GA within 1.25x at %dx%dx%d/%d (got %.3f)" m k l bytes
             ratio)
          true (ratio <= 1.25)
      | _ -> Alcotest.fail "search failed")
    cases

let test_genetic_infeasible () =
  let op = Matmul.make ~m:4 ~k:4 ~l:4 () in
  check_bool "no feasible genome" true (Genetic.search op (Buffer.make 2) = None)

let test_genetic_explores_less_than_exhaustive_on_big_spaces () =
  let op = Matmul.make ~m:960 ~k:960 ~l:960 () in
  let buf = Buffer.of_kib 64 in
  match Genetic.search op buf with
  | None -> Alcotest.fail "GA found nothing"
  | Some ga ->
    check_bool "bounded evaluations" true
      (ga.explored <= 48 * 61 (* pop x (gens+1) *));
    check_bool "far smaller than the space" true
      (ga.explored < Space.size Space.Divisors op buf)

(* ------------------------------------------------------------------ *)
(* Fused search                                                        *)

let attention_pair ~m ~dh =
  Fused.make_pair_exn
    (Matmul.make ~name:"qk" ~m ~k:dh ~l:m ())
    (Matmul.make ~name:"sv" ~m ~k:m ~l:dh ())

let test_fused_exhaustive_valid () =
  let pair = attention_pair ~m:24 ~dh:6 in
  let buf = Buffer.make 1024 in
  match Fused_search.exhaustive ~lattice:Space.All pair buf with
  | None -> Alcotest.fail "no fused dataflow found"
  | Some r -> (
    match Fused.eval pair r.fused buf with
    | Ok t -> check_int "traffic consistent" t r.traffic
    | Error e -> Alcotest.failf "searched fused dataflow invalid: %s" e)

let test_fused_beats_unfused_on_attention () =
  let pair = attention_pair ~m:24 ~dh:6 in
  let buf = Buffer.make 1024 in
  let v = Fused_search.decide ~lattice:Space.All pair buf in
  check_bool "fusion wins" true v.fusion_wins

let test_fused_search_ga_close_to_exhaustive () =
  let pair = attention_pair ~m:24 ~dh:6 in
  let buf = Buffer.make 1024 in
  match
    (Fused_search.genetic ~lattice:Space.All pair buf,
     Fused_search.exhaustive ~lattice:Space.All pair buf)
  with
  | Some ga, Some ex ->
    check_bool "GA within 1.3x of optimum" true
      (float_of_int ga.traffic /. float_of_int ex.traffic <= 1.3)
  | _ -> Alcotest.fail "fused search failed"

let test_principle_fusion_close_to_searched () =
  (* Fig. 9's claim, fusion included: the principle plan is close to the
     searched one across buffer sizes. *)
  let pair = attention_pair ~m:32 ~dh:8 in
  List.iter
    (fun bytes ->
      let buf = Buffer.make bytes in
      match Fusion.plan_pair pair buf with
      | Error _ -> ()
      | Ok decision -> (
        let v = Fused_search.decide ~lattice:Space.All pair buf in
        match v.best_traffic with
        | None -> ()
        | Some best ->
          let mine = Fusion.traffic_of_decision decision in
          check_bool
            (Printf.sprintf "bs=%d: %d vs searched %d" bytes mine best)
            true
            (float_of_int mine /. float_of_int best <= 1.25)))
    [ 80; 200; 600; 1500; 4000 ]


(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)

let test_annealing_deterministic () =
  let op = Matmul.make ~m:48 ~k:36 ~l:60 () in
  let buf = Buffer.make 800 in
  match (Annealing.search op buf, Annealing.search op buf) with
  | Some a, Some b ->
    check_int "same traffic" a.cost.Cost.total b.cost.Cost.total
  | _ -> Alcotest.fail "annealing found nothing"

let test_annealing_near_optimal () =
  List.iter
    (fun (m, k, l, bytes) ->
      let op = Matmul.make ~m ~k ~l () in
      let buf = Buffer.make bytes in
      match (Annealing.search op buf, Exhaustive.search op buf) with
      | Some sa, Some ex ->
        let ratio =
          float_of_int sa.cost.Cost.total /. float_of_int ex.cost.Cost.total
        in
        check_bool
          (Printf.sprintf "SA within 1.3x at %dx%dx%d/%d (got %.3f)" m k l bytes
             ratio)
          true (ratio <= 1.3)
      | _ -> Alcotest.fail "search failed")
    [ (48, 36, 60, 800); (64, 64, 64, 500); (96, 24, 48, 2000) ]

let test_annealing_infeasible () =
  check_bool "no feasible state" true
    (Annealing.search (Matmul.make ~m:4 ~k:4 ~l:4 ()) (Buffer.make 2) = None)


let test_random_search_bounded_quality () =
  let op = Matmul.make ~m:64 ~k:64 ~l:64 () in
  let buf = Buffer.make 2000 in
  match (Random_search.search op buf, Exhaustive.search op buf) with
  | Some rand, Some ex ->
    check_bool "feasible" true (Schedule.fits rand.schedule buf);
    check_bool "never better than exhaustive" true
      (rand.cost.Cost.total >= ex.cost.Cost.total);
    (* with 2000 samples on a small lattice it should land close *)
    check_bool "within 2x" true
      (float_of_int rand.cost.Cost.total /. float_of_int ex.cost.Cost.total <= 2.0)
  | _ -> Alcotest.fail "search failed"

let test_random_search_deterministic () =
  let op = Matmul.make ~m:48 ~k:36 ~l:60 () in
  let buf = Buffer.make 800 in
  match (Random_search.search op buf, Random_search.search op buf) with
  | Some a, Some b -> check_int "same" a.cost.Cost.total b.cost.Cost.total
  | _ -> Alcotest.fail "none"

(* ------------------------------------------------------------------ *)
(* Branch and bound: must reproduce the exhaustive optimum bit-for-bit  *)

let mode_of_lattice = function
  | Space.All -> Mode.Exact
  | Space.Divisors -> Mode.Divisors
  | Space.Pow2 -> Mode.Pow2

let principle_seed lattice op buf =
  match Intra.optimize ~mode:(mode_of_lattice lattice) op buf with
  | Ok (plan : Intra.plan) -> Some plan.schedule
  | Error _ -> None

let check_bnb_matches ?seed tag lattice op buf =
  let ex = Exhaustive.search ~lattice op buf in
  let bnb, stats = Bnb.search_with_stats ~lattice ?seed op buf in
  match (ex, bnb) with
  | None, None -> ()
  | Some e, Some b ->
    check_bool (tag ^ ": same schedule") true
      (Schedule.equal e.schedule b.schedule);
    check_int (tag ^ ": same cost") e.cost.Cost.total b.cost.Cost.total;
    (* +1: on near-empty spaces the seed's own evaluation can make the
       seeded search cost one more eval than the trivial enumeration *)
    check_bool (tag ^ ": fewer evaluations") true (b.explored <= e.explored + 1);
    check_int (tag ^ ": stats consistent") b.explored stats.Bnb.explored
  | Some _, None -> Alcotest.failf "%s: bnb missed a feasible space" tag
  | None, Some _ -> Alcotest.failf "%s: bnb invented a schedule" tag

let test_bnb_matches_exhaustive () =
  List.iter
    (fun (m, k, l, bytes, lattice) ->
      let op = Matmul.make ~m ~k ~l () in
      let buf = Buffer.make bytes in
      let tag = Printf.sprintf "%dx%dx%d/%d" m k l bytes in
      check_bnb_matches (tag ^ " unseeded") lattice op buf;
      check_bnb_matches (tag ^ " seeded") lattice op buf
        ?seed:(principle_seed lattice op buf))
    (determinism_cases
    @ [ (17, 5, 23, 120, Space.All);
        (7, 7, 7, 2, Space.All);
        (1, 96, 1, 40, Space.Divisors);
        (60, 48, 36, 100_000, Space.Divisors) (* everything fits: Large *) ])

(* an off-lattice seed (here: a Pow2-quantized plan offered to a
   Divisors search) must be discarded, not trusted as an incumbent *)
let test_bnb_ignores_foreign_seed () =
  let op = Matmul.make ~m:48 ~k:36 ~l:60 () in
  let buf = Buffer.make 800 in
  match Intra.optimize ~mode:Mode.Pow2 op buf with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check_bnb_matches "foreign seed" Space.Divisors op buf ~seed:plan.schedule

let test_bnb_prunes_hard_when_seeded () =
  (* a divisor-rich operator with a roomy buffer sits in a regime where
     the principles are exact: the seeded search must evaluate a tiny
     fraction of what enumeration would *)
  let op = Matmul.make ~m:96 ~k:24 ~l:48 () in
  let buf = Buffer.make 2000 in
  let seed = principle_seed Space.Divisors op buf in
  let r, _ = Bnb.search_with_stats ~lattice:Space.Divisors ?seed op buf in
  match (r, Exhaustive.search ~lattice:Space.Divisors op buf) with
  | Some b, Some e ->
    check_bool
      (Printf.sprintf "bnb %d evals <= 10%% of exhaustive %d" b.explored
         e.explored)
      true
      (10 * b.explored <= e.explored)
  | _ -> Alcotest.fail "search failed"

let check_bnb_fused_matches ?seed tag lattice pair buf =
  let ex = Fused_search.exhaustive ~lattice pair buf in
  let bnb = Bnb.search_fused ~lattice ?seed pair buf in
  match (ex, bnb) with
  | None, None -> ()
  | Some e, Some b ->
    check_int (tag ^ ": same traffic") e.traffic b.traffic;
    check_bool (tag ^ ": same producer") true
      (Schedule.equal e.fused.Fused.producer b.fused.Fused.producer);
    check_bool (tag ^ ": same consumer") true
      (Schedule.equal e.fused.Fused.consumer b.fused.Fused.consumer);
    check_bool (tag ^ ": fewer evaluations") true (b.explored <= e.explored)
  | Some _, None -> Alcotest.failf "%s: fused bnb missed a dataflow" tag
  | None, Some _ -> Alcotest.failf "%s: fused bnb invented a dataflow" tag

let test_bnb_fused_matches_exhaustive () =
  let pair = attention_pair ~m:24 ~dh:6 in
  List.iter
    (fun bytes ->
      let buf = Buffer.make bytes in
      let tag = Printf.sprintf "attention/%d" bytes in
      check_bnb_fused_matches (tag ^ " unseeded") Space.All pair buf;
      (* seed from the exhaustive winner itself: the tightest possible
         in-space bound must not change the answer *)
      let seed =
        Option.map
          (fun (r : Fused_search.result) -> r.fused)
          (Fused_search.exhaustive ~lattice:Space.All pair buf)
      in
      check_bnb_fused_matches (tag ^ " seeded") Space.All pair buf ?seed)
    [ 60; 200; 1024; 4000 ]

(* The six shrunk counterexamples PR 5's oracle surfaced (see
   test_oracle.ml): boundary problems that once exposed principle bugs
   are exactly where an inadmissible pruning bound would bite. *)
let pr5_counterexamples =
  [ (7, 3, 4, 2, 16);
    (2, 2, 2, 2, 7);
    (2, 2, 2, 2, 11);
    (5, 2, 4, 6, 31);
    (5, 2, 4, 6, 33);
    (6, 1, 5, 4, 16) ]

let test_bnb_pr5_counterexamples () =
  List.iter
    (fun (m, k, l, l2, bytes) ->
      let buf = Buffer.make bytes in
      let op1 = Matmul.make ~name:"p" ~m ~k ~l () in
      let op2 = Matmul.make ~name:"c" ~m ~k:l ~l:l2 () in
      let tag = Printf.sprintf "m=%d,k=%d,l=%d,l2=%d,bs=%d" m k l l2 bytes in
      List.iter
        (fun op ->
          check_bnb_matches (tag ^ " intra") Space.All op buf
            ?seed:(principle_seed Space.All op buf))
        [ op1; op2 ];
      let pair = Fused.make_pair_exn op1 op2 in
      check_bnb_fused_matches (tag ^ " fused") Space.All pair buf)
    pr5_counterexamples

(* qcheck property: on random problems spanning all three regimes (tiny
   buffers up to everything-fits), the canonicalized problem's B&B
   answer equals exhaustive's in traffic AND schedule, on every lattice,
   seeded or not. *)
let bnb_qcheck_prop =
  let gen =
    QCheck.Gen.(
      tup4 (int_range 1 14) (int_range 1 14) (int_range 1 14) (int_range 0 2))
  in
  let print (m, k, l, r) = Printf.sprintf "m=%d k=%d l=%d regime=%d" m k l r in
  QCheck.Test.make ~count:60 ~name:"bnb = exhaustive across regimes"
    (QCheck.make ~print gen)
    (fun (m, k, l, rsel) ->
      let op0 = Matmul.make ~m ~k ~l () in
      (* service-style M<->L canonicalization *)
      let op = if op0.m <= op0.l then op0 else Matmul.transpose op0 in
      let full = Matmul.ideal_ma op in
      let bytes =
        match rsel with
        | 0 -> 2 + ((m + k + l) mod 7) (* tiny, often infeasible *)
        | 1 -> max 4 (full / 3) (* partial residency *)
        | _ -> full + 8 (* everything fits: Large *)
      in
      let buf = Buffer.make bytes in
      List.iter
        (fun lattice ->
          let tag = Printf.sprintf "%s/%d" (Matmul.to_string op) bytes in
          check_bnb_matches (tag ^ " unseeded") lattice op buf;
          check_bnb_matches (tag ^ " seeded") lattice op buf
            ?seed:(principle_seed lattice op buf))
        [ Space.All; Space.Divisors; Space.Pow2 ];
      true)

(* ------------------------------------------------------------------ *)
(* Nest branch-and-bound: bit-identical to the nest exhaustive scan     *)

module NSearch = Fusecu_nest.Search
module NNest = Fusecu_nest.Nest
module NLower = Fusecu_nest.Lower

let nest_zoo () =
  [
    ("mm", NLower.of_matmul (Matmul.make ~m:12 ~k:8 ~l:10 ()), [ 40; 120; 400 ]);
    ( "conv",
      NLower.of_conv (Conv.make ~n:1 ~c:2 ~h:6 ~w:6 ~k:3 ~r:3 ~s:3 ()),
      [ 64; 200 ] );
    ("bmm", NLower.batched_mm ~b:3 ~m:4 ~k:5 ~l:6 (), [ 50; 150 ]);
    ("gmm", NLower.grouped_mm ~groups:2 ~heads:3 ~m:4 ~k:5 ~l:4 (), [ 60; 200 ]);
    ("attn", NLower.attention_pair ~seq_q:6 ~seq_k:8 ~d:4 (), [ 64; 160 ]);
    ("chain", NLower.of_chain (Chain.of_dims ~m:6 [ 4; 5; 3 ]), [ 40; 100 ]);
  ]

let check_nest_bnb_matches name lattice nest buf ?seed () =
  let exp =
    NSearch.exhaustive ~lattice nest ~capacity:(Buffer.elements buf)
  in
  let got = Nest_bnb.search ~lattice ?seed nest buf in
  match (exp, got) with
  | None, None -> ()
  | Some e, Some g ->
    check_int (name ^ " total") e.NSearch.cost.NNest.total
      g.NSearch.cost.NNest.total;
    check_int (name ^ " tiling idx") e.NSearch.tiling_index g.NSearch.tiling_index;
    check_int (name ^ " order rank") e.NSearch.order_rank g.NSearch.order_rank;
    Alcotest.(check (array int))
      (name ^ " tiles") e.NSearch.schedule.NNest.tiles
      g.NSearch.schedule.NNest.tiles;
    Alcotest.(check (array int))
      (name ^ " order") e.NSearch.schedule.NNest.order
      g.NSearch.schedule.NNest.order;
    check_bool (name ^ " no extra evals") true
      (g.NSearch.evaluated <= e.NSearch.evaluated)
  | Some _, None -> Alcotest.fail (name ^ ": nest bnb found nothing")
  | None, Some _ -> Alcotest.fail (name ^ ": nest bnb invented a result")

let test_nest_bnb_matches_exhaustive () =
  List.iter
    (fun (name, nest, sizes) ->
      List.iter
        (fun bytes ->
          let buf = Buffer.make bytes in
          List.iter
            (fun lattice ->
              check_nest_bnb_matches
                (Printf.sprintf "%s/%d" name bytes)
                lattice nest buf ())
            [ NSearch.All; NSearch.Divisors; NSearch.Pow2 ])
        sizes)
    (nest_zoo ())

let test_nest_bnb_seeds () =
  let nest = NLower.of_matmul (Matmul.make ~m:12 ~k:8 ~l:10 ()) in
  let buf = Buffer.make 64 in
  (match NSearch.exhaustive ~lattice:NSearch.Divisors nest ~capacity:64 with
  | None -> Alcotest.fail "expected a feasible schedule"
  | Some e ->
    check_nest_bnb_matches "in-space seed" NSearch.Divisors nest buf
      ~seed:e.NSearch.schedule ();
    let _, stats =
      Nest_bnb.search_with_stats ~lattice:NSearch.Divisors
        ~seed:e.NSearch.schedule nest buf
    in
    check_bool "seed prunes" true (stats.Bnb.pruned_bound > 0));
  (* 5 is off the divisor lattice of 12: the seed must be discarded,
     not trusted, and the result unchanged *)
  let off =
    NNest.schedule_make nest ~tiles:[| 5; 1; 1 |] ~order:[| 0; 1; 2 |]
  in
  check_nest_bnb_matches "off-lattice seed" NSearch.Divisors nest buf ~seed:off
    ()

let () =
  Alcotest.run "dse"
    [ ( "space",
        [ Alcotest.test_case "tile candidates" `Quick test_tile_candidates;
          Alcotest.test_case "buffer pruning" `Quick test_space_respects_buffer;
          Alcotest.test_case "size counted = enumerated" `Quick
            test_space_size_counts;
          Alcotest.test_case "streaming = list, partitionable" `Quick
            test_space_streaming_matches_list ] );
      ( "exhaustive",
        [ Alcotest.test_case "small op" `Quick test_exhaustive_small;
          Alcotest.test_case "infeasible" `Quick test_exhaustive_infeasible;
          Alcotest.test_case "best per class" `Quick test_best_per_class ] );
      ( "determinism",
        [ Alcotest.test_case "parallel search = sequential" `Quick
            test_parallel_search_deterministic;
          Alcotest.test_case "parallel best-per-class = sequential" `Quick
            test_parallel_best_per_class_deterministic;
          Alcotest.test_case "parallel fused search = sequential" `Quick
            test_parallel_fused_search_deterministic;
          Alcotest.test_case "genetic ignores FUSECU_DOMAINS" `Quick
            test_genetic_ignores_domains ] );
      ( "genetic",
        [ Alcotest.test_case "deterministic" `Quick test_genetic_deterministic;
          Alcotest.test_case "near optimal" `Quick test_genetic_near_optimal;
          Alcotest.test_case "infeasible" `Quick test_genetic_infeasible;
          Alcotest.test_case "bounded evaluations" `Quick
            test_genetic_explores_less_than_exhaustive_on_big_spaces ] );
      ( "annealing",
        [ Alcotest.test_case "deterministic" `Quick test_annealing_deterministic;
          Alcotest.test_case "near optimal" `Quick test_annealing_near_optimal;
          Alcotest.test_case "infeasible" `Quick test_annealing_infeasible ] );
      ( "random",
        [ Alcotest.test_case "bounded quality" `Quick
            test_random_search_bounded_quality;
          Alcotest.test_case "deterministic" `Quick
            test_random_search_deterministic ] );
      ( "bnb",
        [ Alcotest.test_case "matches exhaustive" `Quick
            test_bnb_matches_exhaustive;
          Alcotest.test_case "ignores off-lattice seeds" `Quick
            test_bnb_ignores_foreign_seed;
          Alcotest.test_case "seeded pruning power" `Quick
            test_bnb_prunes_hard_when_seeded;
          Alcotest.test_case "fused matches exhaustive" `Quick
            test_bnb_fused_matches_exhaustive;
          Alcotest.test_case "PR 5 counterexamples" `Quick
            test_bnb_pr5_counterexamples;
          QCheck_alcotest.to_alcotest bnb_qcheck_prop ] );
      ( "nest-bnb",
        [ Alcotest.test_case "matches nest exhaustive" `Quick
            test_nest_bnb_matches_exhaustive;
          Alcotest.test_case "seed handling" `Quick test_nest_bnb_seeds ] );
      ( "fused",
        [ Alcotest.test_case "exhaustive valid" `Quick test_fused_exhaustive_valid;
          Alcotest.test_case "fusion wins on attention" `Quick
            test_fused_beats_unfused_on_attention;
          Alcotest.test_case "GA close to exhaustive" `Quick
            test_fused_search_ga_close_to_exhaustive;
          Alcotest.test_case "principles close to searched (Fig. 9)" `Quick
            test_principle_fusion_close_to_searched ] ) ]
