open Fusecu_util

(* 1 µs .. 2^29 µs (~9 min) in doubling buckets, plus one open bucket. *)
let buckets = 30

type histogram = {
  mutable count : int;
  mutable total_s : float;
  bins : int array;  (** [bins.(i)]: observations in [[2^i, 2^(i+1)) µs] *)
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters name (ref by))

let get t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let bucket_of_seconds s =
  let us = s *. 1e6 in
  if us < 1. then 0
  else
    let b = int_of_float (Float.log2 us) in
    min b (buckets - 1)

let observe t name seconds =
  let seconds = Float.max 0. seconds in
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = { count = 0; total_s = 0.; bins = Array.make buckets 0 } in
          Hashtbl.replace t.histograms name h;
          h
      in
      h.count <- h.count + 1;
      h.total_s <- h.total_s +. seconds;
      let b = bucket_of_seconds seconds in
      h.bins.(b) <- h.bins.(b) + 1)

(* Callers must hold [t.mutex]. *)
let counters_locked t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = with_lock t (fun () -> counters_locked t)

let counters_json t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t))

let histogram_json h =
  let bins =
    Array.to_list h.bins
    |> List.mapi (fun i n ->
           if n = 0 then None
           else
             (* upper bound of bucket i in µs; the last bucket is open *)
             let le =
               if i = buckets - 1 then Json.Null else Json.Int (1 lsl (i + 1))
             in
             Some (Json.Obj [ ("le_us", le); ("n", Json.Int n) ]))
    |> List.filter_map Fun.id
  in
  Json.Obj
    [ ("count", Json.Int h.count);
      ("total_s", Json.Float h.total_s);
      ("buckets", Json.List bins) ]

let to_json t =
  (* Counters and histograms are snapshotted under ONE lock acquisition:
     taking the lock once for each half would let an update land between
     the two reads and produce a torn dump (e.g. a request counted whose
     latency is missing, or vice versa). *)
  let counters, hists =
    with_lock t (fun () ->
        ( counters_locked t,
          Hashtbl.fold
            (fun k h acc ->
              (k, { h with bins = Array.copy h.bins }) :: acc)
            t.histograms []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b) ))
  in
  Json.Obj
    [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("latency", Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) hists)) ]
