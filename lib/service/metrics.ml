open Fusecu_util

(* 1 µs .. 2^29 µs (~9 min) in doubling buckets, plus one open bucket. *)
let buckets = 30

type histogram = {
  mutable count : int;
  mutable total_s : float;
  bins : int array;  (** [bins.(i)]: observations in [[2^i, 2^(i+1)) µs] *)
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
}

let create () =
  { mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 8;
    gauges = Hashtbl.create 8 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters name (ref by))

let get t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let bucket_of_seconds s =
  let us = s *. 1e6 in
  if us < 1. then 0
  else
    let b = int_of_float (Float.log2 us) in
    min b (buckets - 1)

let observe t name seconds =
  let seconds = Float.max 0. seconds in
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = { count = 0; total_s = 0.; bins = Array.make buckets 0 } in
          Hashtbl.replace t.histograms name h;
          h
      in
      h.count <- h.count + 1;
      h.total_s <- h.total_s +. seconds;
      let b = bucket_of_seconds seconds in
      h.bins.(b) <- h.bins.(b) + 1)

let set_gauge t name v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

(* Callers must hold [t.mutex]. *)
let gauges_locked t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t = with_lock t (fun () -> gauges_locked t)

(* Callers must hold [t.mutex]. *)
let counters_locked t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = with_lock t (fun () -> counters_locked t)

let counters_json t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t))

let histogram_json h =
  let bins =
    Array.to_list h.bins
    |> List.mapi (fun i n ->
           if n = 0 then None
           else
             (* upper bound of bucket i in µs; the last bucket is open *)
             let le =
               if i = buckets - 1 then Json.Null else Json.Int (1 lsl (i + 1))
             in
             Some (Json.Obj [ ("le_us", le); ("n", Json.Int n) ]))
    |> List.filter_map Fun.id
  in
  Json.Obj
    [ ("count", Json.Int h.count);
      ("total_s", Json.Float h.total_s);
      ("buckets", Json.List bins) ]

(* One-lock snapshot of every metric family: taking the lock once per
   family would let an update land between the reads and produce a torn
   dump (e.g. a request counted whose latency is missing). *)
let snapshot t =
  with_lock t (fun () ->
      ( counters_locked t,
        Hashtbl.fold
          (fun k h acc -> (k, { h with bins = Array.copy h.bins }) :: acc)
          t.histograms []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b),
        gauges_locked t ))

let to_json t =
  let counters, hists, gauges = snapshot t in
  Json.Obj
    ([ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
       ("latency", Json.Obj (List.map (fun (k, h) -> (k, histogram_json h)) hists))
     ]
    @
    if gauges = [] then []
    else
      [ ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gauges))
      ])

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4)                           *)

(* Metric names may only contain [a-zA-Z0-9_:]; ours are snake_case
   already, but sanitize defensively so a weird counter name cannot
   corrupt the exposition. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let pp_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips, so [_sum] keeps full
       precision (%.15g drops sub-µs tails on multi-hour totals) *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_prometheus ?(prefix = "fusecu_") t =
  let counters, hists, gauges = snapshot t in
  let b = Stdlib.Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Stdlib.Buffer.add_string b (s ^ "\n")) fmt in
  List.iter
    (fun (k, v) ->
      let n = sanitize (prefix ^ k) in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    counters;
  List.iter
    (fun (k, v) ->
      let n = sanitize (prefix ^ k) in
      line "# TYPE %s gauge" n;
      line "%s %s" n (pp_float v))
    gauges;
  List.iter
    (fun (k, h) ->
      let n = sanitize (prefix ^ k ^ "_seconds") in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          (* bucket i spans [2^i, 2^(i+1)) µs; emit the cumulative count
             at each non-empty bin (sparse buckets are valid) *)
          if c > 0 && i < buckets - 1 then
            line "%s_bucket{le=\"%s\"} %d" n
              (pp_float (float_of_int (1 lsl (i + 1)) *. 1e-6))
              !cum)
        h.bins;
      line "%s_bucket{le=\"+Inf\"} %d" n h.count;
      line "%s_sum %s" n (pp_float h.total_s);
      line "%s_count %d" n h.count)
    hists;
  Stdlib.Buffer.contents b
