(** Request metrics for the planning service: monotonic (only ever
    incremented) named counters plus log2-bucketed latency histograms.

    Counters are the {e deterministic} half — request counts, cache
    hits/misses/evictions, error counts — and are what the in-band
    [{"op":"stats"}] response reports, so that serve output stays
    byte-identical across runs and domain counts. Latency histograms are
    wall-clock dependent and only appear in the full {!to_json} dump
    written at shutdown (behind [--metrics]).

    All operations are thread-safe (a single mutex; the service's
    sequential drain phase does almost all the updating, workers only
    record latencies). *)

type t

val create : unit -> t

val buckets : int
(** Number of log2 histogram bins (1 µs doubling up to one final open
    bin). Shared by every histogram, so bucket-wise merging across
    processes ({!Fleet}) is always aligned. *)

val bucket_of_seconds : float -> int
(** Bin index ([0 .. buckets-1]) an observation of this many seconds
    lands in: bin [i] spans [[2^i, 2^(i+1)) µs]; the last bin is open. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter (created at zero on first use). [by] defaults
    to 1 and must be [>= 0] — counters are monotonic. *)

val get : t -> string -> int
(** Current value of a counter (0 when never incremented). *)

val observe : t -> string -> float -> unit
(** Record one latency observation, in seconds, into the named
    histogram. *)

val set_gauge : t -> string -> float -> unit
(** Set a named gauge to an instantaneous value (created on first use).
    Unlike counters, gauges may move in either direction — they report
    point-in-time state such as cache occupancy or uptime ticks. *)

val gauges : t -> (string * float) list
(** Snapshot of all gauges, sorted by name. *)

val counters : t -> (string * int) list
(** Snapshot of all counters, sorted by name (deterministic). *)

val counters_json : t -> Fusecu_util.Json.t
(** The deterministic counters as a JSON object (keys sorted). *)

val to_json : t -> Fusecu_util.Json.t
(** Full dump: counters, latency histograms and (when any exist) gauges,
    snapshotted atomically (one lock acquisition covers every family, so
    a concurrent update cannot tear the dump). Each histogram reports
    [count], [total_s] and log2 buckets [{"le_us": upper, "n": count}]
    covering 1 µs .. ~17 min (observations above the last bound land in
    a final open bucket). Not deterministic — wall-clock data. *)

val sanitize : string -> string
(** Replace any character outside the Prometheus metric-name charset
    ([a-zA-Z0-9_:]) with ['_']. *)

val pp_float : float -> string
(** Prometheus sample-value formatting: integral floats print without a
    fraction; others use the shortest representation that round-trips. *)

val to_prometheus : ?prefix:string -> t -> string
(** Prometheus text exposition (format 0.0.4) of the same atomic
    snapshot: counters as [# TYPE .. counter], gauges as gauge, and each
    latency histogram as a [_seconds] histogram with cumulative
    [_bucket{le="..."}] lines (bucket bounds are the log2 µs bins
    converted to seconds; the open bin maps to [+Inf]), plus [_sum] and
    [_count]. [prefix] (default ["fusecu_"]) is prepended to every
    metric name; names are sanitized to the Prometheus charset. *)
