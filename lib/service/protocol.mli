(** The planning service's typed request/response protocol (schema
    version 1).

    Requests are newline-delimited JSON objects:
    {v
    {"op":"intra","v":1,"id":1,"m":1024,"k":768,"l":768,
     "buffer":"512KB","mode":"divisors"}
    v}
    covering the planner entry points [intra], [fuse], [regime],
    [eval], [chain] and [plan_model], plus the control operations
    [stats], [metrics] and [shutdown].
    Common fields: ["op"] (required), ["v"] (schema version, optional,
    must be 1 when present), ["id"] (any JSON value, echoed verbatim in
    the response, defaults to [null]), ["buffer"] (bytes as an integer
    or a {!Fusecu_util.Units.parse_bytes} string, default 512 KiB),
    ["elt_bytes"] (default 1) and ["mode"] (["exact"] / ["divisors"] /
    ["pow2"], default ["divisors"] — the CLI's default lattice).

    Responses are one JSON object per request, in request order:
    [{"id":...,"ok":true,"op":...,"result":{...}}] on success,
    [{"id":...,"ok":false,"error":{"code":...,"message":...}}]
    otherwise. Error codes are a closed enum ({!error_code}) so clients
    can dispatch without string matching on messages.

    {1 Canonicalization}

    [intra] and [regime] requests are canonicalized before keying the
    plan cache {e and before computing} (so responses are bit-identical
    whether or not the cache is enabled): the operator is transposed to
    [M <= L] ([M x K x L] and [L x K x M] are the same problem — the
    matmul cost model is symmetric under exchanging the roles of [A]
    and [B]; see {!Fusecu_tensor.Matmul.transpose} and DESIGN.md §5),
    and the buffer is keyed by its {e element} capacity, the only
    buffer property the element-denominated planners observe. The
    resulting plan is mapped back through {!apply_transform} (tile
    sizes, loop order, and dataflow labels swap [M] with [L] and [A]
    with [B]). [fuse] and [chain] have no established symmetry and key
    on their exact shape; [eval] keys on (model, buffer bytes,
    elt_bytes, mode) since byte traffic depends on the element width. *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
module Json = Fusecu_util.Json

val version : int

(** {1 Requests} *)

type nest_kind =
  | N_matmul of { m : int; k : int; l : int }
  | N_conv2d of Conv.t
  | N_batched_mm of { b : int; m : int; k : int; l : int }
  | N_grouped_mm of { groups : int; heads : int; m : int; k : int; l : int }
  | N_attention of { seq_q : int; seq_k : int; d : int; dv : int }
      (** fused score x value pair: Q(seq_q,d) K(seq_k,d) V(seq_k,dv),
          scores internal (Principle-4 fused) *)

type call =
  | Intra of { op : Matmul.t; buffer : Buffer.t; mode : Mode.t }
  | Fuse of { op : Matmul.t; l2 : int; buffer : Buffer.t; mode : Mode.t }
      (** producer [op], consumer [C x D(L, l2)] — the CLI's [fuse] *)
  | Regime of { op : Matmul.t; buffer : Buffer.t }
  | Eval of { model : string; buffer : Buffer.t; elt_bytes : int; mode : Mode.t }
      (** [model] is stored lowercase (zoo lookup is case-insensitive) *)
  | Chain of { m : int; ks : int list; buffer : Buffer.t; mode : Mode.t }
  | Plan_model of {
      model : string;
      layers : int;
      buffer : Buffer.t;
      elt_bytes : int;
      mode : Mode.t;
    }
      (** whole-model partition into fusion groups ([layers] stacked
          copies of the model's encoder layer, default 1, max 64).
          Handled sequentially by the engine; each group is priced
          through the shared plan cache under its ordinary [intra] /
          [chain] key, so the model-level answer both reuses and seeds
          the per-operator entries. *)
  | Nest of { kind : nest_kind; buffer : Buffer.t; mode : Mode.t }
      (** exact schedule search over the projective loop-nest IR
          (wire op ["nest"], field ["kind"] one of [matmul],
          [conv2d], [batched_mm], [grouped_mm], [attention]); ["mode"]
          selects the tiling lattice as for the matmul ops. conv2d
          shapes are validated with {!Fusecu_tensor.Conv.validate}
          and rejected as [bad_request] before reaching the engine. *)

type request =
  | Call of call
  | Stats  (** in-band deterministic counters snapshot *)
  | Metrics_req of { quiet : bool }
      (** full metrics dump — counters, gauges and wall-clock latency
          histograms ({!Metrics.to_json}). Unlike [stats] the payload is
          {e not} deterministic, so it never appears in golden
          transcripts. [quiet] (wire field ["quiet"], default [false])
          marks an out-of-band scrape — e.g. the Prometheus exporter
          polling over a side connection — that must not advance
          [uptime_ticks] or any request counter, so scraping cannot
          perturb the deterministic counters. *)
  | Shutdown  (** stop the server after responding *)

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Bad_request  (** missing / ill-typed / out-of-range field *)
  | Unsupported_version
  | Unknown_op
  | Unknown_model
  | Infeasible  (** the planner returned an error (e.g. buffer too small) *)

val error_code_to_string : error_code -> string

type reject = { id : Json.t; code : error_code; message : string }

val parse_line : string -> (Json.t * string option * request, reject) result
(** Parse one request line into its echoed [id], the trace context
    stamped by the router (the ["tc"] envelope member, [None] when
    absent — old clients never send it) and the typed request. On
    reject, the [id] is recovered from the malformed object when
    possible. *)

val op_name : call -> string

val nest_kind_name : nest_kind -> string

val nest_kind_dims : nest_kind -> (string * int) list
(** Wire/cache field order of a kind's dimensions (fixed). *)

(** {1 Canonicalization and cache keys} *)

type transform = Identity | Transpose_ml

val canonicalize : call -> call * transform
(** The cache-canonical form of a call and the transform that maps
    results on the canonical call back to the original orientation. *)

val cache_key : call -> string
(** Deterministic cache key of an (already canonical) call. *)

(** {1 Outcomes} *)

type intra_result = {
  ma : int;
  redundancy : float;
  footprint : int;
  tile_m : int;
  tile_k : int;
  tile_l : int;
  order : Dim.t list;  (** outer to inner *)
  nra : Nra.t;
  dataflow : Nra.dataflow;
  regime : Regime.t;
}

val intra_result_of_plan : Intra.plan -> intra_result

type fuse_result =
  | Fused of { pattern : Fusion.pattern; nra : Nra.t; traffic : int }
  | Not_fused of {
      why : string;
      traffic : int;
      producer : Nra.t;
      consumer : Nra.t;
    }

type regime_result = {
  regime : Regime.t;
  thresholds : Regime.thresholds;
  classes : Nra.t list;
}

type eval_cells = {
  traffic : int;
  traffic_bytes : int;
  macs : int;
  cycles : int;
  utilization : float;
}

type eval_row = { platform : string; cells : (eval_cells, string) result }

type chain_segment = Solo_seg of int | Fused_seg of string * int

type chain_result =
  | Full_fusion of { traffic : int; fused_bound : int }
  | Pairwise of { traffic : int; segments : chain_segment list }

type plan_group = {
  members : string list;  (** node names, path order *)
  count : int;
  ops : int;  (** matmul operators in the merged chain *)
  group_traffic : int;
  group_hidden : int;
}

type plan_model_result = {
  nodes : int;
  plan_groups : plan_group list;
  fused_edges : string list;  (** selected edges, ["src->dst"] *)
  traffic : int;
  hidden : int;
  effective : int;
  unfused_traffic : int;
  unfused_effective : int;
  candidate_edges : int;
  components : int;
  dp_states : int;
  bnb_nodes : int;
  bnb_pruned : int;
}

type nest_result = {
  n_axes : string list;  (** axis names, rank order *)
  n_extents : int list;
  n_tiles : int list;  (** winning tile per axis, rank order *)
  n_order : string list;  (** axis names, outermost first *)
  n_traffic : int;
  n_ideal : int;  (** unbounded-buffer communication lower bound *)
  n_footprint : int;
  n_points : int;
  n_evaluated : int;  (** schedules cost-evaluated by the mapper *)
}

type outcome =
  | R_intra of intra_result
  | R_fuse of fuse_result
  | R_regime of regime_result
  | R_eval of eval_row list
  | R_chain of chain_result
  | R_plan_model of plan_model_result
  | R_nest of nest_result

val outcome_to_json : outcome -> Json.t
(** Structural encoding for the persistent plan store ({!Store}): every
    variant is tagged and every field round-trips exactly, unlike the
    human-facing [result] payload (which has no inverse). *)

val outcome_of_json : Json.t -> (outcome, string) result
(** Inverse of {!outcome_to_json}; [Error] on unknown tags or missing /
    ill-typed fields (a store record from a future schema is treated as
    damage and dropped, never guessed at). *)

val apply_transform : transform -> outcome -> outcome
(** Map an outcome computed on the canonical call back to the request's
    original orientation. Only {!R_intra} carries orientation-dependent
    data (tiles, loop order, dataflow labels); every other outcome is
    invariant. *)

(** {1 Responses} *)

val response_ok : id:Json.t -> call:call -> outcome -> string
(** One compact JSON line. The [result] payload echoes the problem
    (original orientation) and the outcome fields; field order is fixed
    so output is byte-deterministic. *)

val response_ok_json : id:Json.t -> op:string -> result:Json.t -> string
(** Generic success line for control operations ([stats], [shutdown]). *)

val response_error : id:Json.t -> code:error_code -> message:string -> string

val reject_response : reject -> string

(** {1 Trace-context envelope}

    The router stamps each routed request with a trace context
    ["r<trace-id>.<origin-seq>"] so backend spans can be correlated with
    router spans in a merged timeline. Both directions splice the member
    textually (never reparse-and-reprint), so stamping cannot perturb a
    single byte of the rest of the line — the precondition for routed
    golden transcripts staying exact. *)

val with_tc : string option -> string -> string
(** [with_tc (Some t) line] returns [line] with [,"tc":"t"] spliced
    before the final ['}'] of a JSON-object line (non-object lines are
    returned unchanged); [with_tc None line] is [line]. *)

val strip_tc : tc:string -> string -> string
(** Remove the exact trailing [,"tc":"tc"] member spliced by
    {!with_tc}, restoring the original line byte-for-byte; lines without
    that exact suffix are returned unchanged. *)
