open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
module Json = Fusecu_util.Json
module Units = Fusecu_util.Units

let version = 1

type nest_kind =
  | N_matmul of { m : int; k : int; l : int }
  | N_conv2d of Conv.t
  | N_batched_mm of { b : int; m : int; k : int; l : int }
  | N_grouped_mm of { groups : int; heads : int; m : int; k : int; l : int }
  | N_attention of { seq_q : int; seq_k : int; d : int; dv : int }

type call =
  | Intra of { op : Matmul.t; buffer : Buffer.t; mode : Mode.t }
  | Fuse of { op : Matmul.t; l2 : int; buffer : Buffer.t; mode : Mode.t }
  | Regime of { op : Matmul.t; buffer : Buffer.t }
  | Eval of { model : string; buffer : Buffer.t; elt_bytes : int; mode : Mode.t }
  | Chain of { m : int; ks : int list; buffer : Buffer.t; mode : Mode.t }
  | Plan_model of {
      model : string;
      layers : int;
      buffer : Buffer.t;
      elt_bytes : int;
      mode : Mode.t;
    }
  | Nest of { kind : nest_kind; buffer : Buffer.t; mode : Mode.t }

type request =
  | Call of call
  | Stats
  | Metrics_req of { quiet : bool }
  | Shutdown

type error_code =
  | Parse_error
  | Bad_request
  | Unsupported_version
  | Unknown_op
  | Unknown_model
  | Infeasible

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unsupported_version -> "unsupported_version"
  | Unknown_op -> "unknown_op"
  | Unknown_model -> "unknown_model"
  | Infeasible -> "infeasible"

type reject = { id : Json.t; code : error_code; message : string }

let op_name = function
  | Intra _ -> "intra"
  | Fuse _ -> "fuse"
  | Regime _ -> "regime"
  | Eval _ -> "eval"
  | Chain _ -> "chain"
  | Plan_model _ -> "plan_model"
  | Nest _ -> "nest"

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let mode_of_string = function
  | "exact" -> Ok Mode.Exact
  | "divisors" -> Ok Mode.Divisors
  | "pow2" -> Ok Mode.Pow2
  | s -> Error (Printf.sprintf "unknown mode %S (exact, divisors or pow2)" s)

let mode_to_string = function
  | Mode.Exact -> "exact"
  | Mode.Divisors -> "divisors"
  | Mode.Pow2 -> "pow2"

(* Bad_request-producing field readers over the decoded object. *)
exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let dim_field obj name =
  match Json.member name obj with
  | None -> fail "missing required field %S" name
  | Some v -> (
    match Json.to_int v with
    | Ok n when n >= 1 -> n
    | Ok n -> fail "field %S must be >= 1, got %d" name n
    | Error e -> fail "field %S: %s" name e)

let default_buffer_bytes = 512 * 1024

let buffer_field obj =
  let elt_bytes =
    match Json.member "elt_bytes" obj with
    | None -> 1
    | Some v -> (
      match Json.to_int v with
      | Ok n when n >= 1 -> n
      | Ok n -> fail "field \"elt_bytes\" must be >= 1, got %d" n
      | Error e -> fail "field \"elt_bytes\": %s" e)
  in
  let bytes =
    match Json.member "buffer" obj with
    | None -> default_buffer_bytes
    | Some (Json.Int n) when n >= 1 -> n
    | Some (Json.Int n) -> fail "field \"buffer\" must be >= 1 byte, got %d" n
    | Some (Json.String s) -> (
      match Units.parse_bytes s with
      | Ok n when n >= 1 -> n
      | Ok _ -> fail "field \"buffer\" must be at least one byte"
      | Error e -> fail "field \"buffer\": %s" e)
    | Some v ->
      ignore v;
      fail "field \"buffer\" must be an integer byte count or a size string"
  in
  (Buffer.make ~elt_bytes bytes, elt_bytes)

let mode_field obj =
  match Json.member "mode" obj with
  | None -> Mode.Divisors
  | Some v -> (
    match Json.to_string_v v with
    | Error e -> fail "field \"mode\": %s" e
    | Ok s -> (
      match mode_of_string s with Ok m -> m | Error e -> fail "%s" e))

let matmul_field obj =
  let m = dim_field obj "m" and k = dim_field obj "k" and l = dim_field obj "l" in
  Matmul.make ~m ~k ~l ()

let parse_call obj op =
  match op with
  | "intra" ->
    let buffer, _ = buffer_field obj in
    Ok (Call (Intra { op = matmul_field obj; buffer; mode = mode_field obj }))
  | "fuse" ->
    let buffer, _ = buffer_field obj in
    let l2 = dim_field obj "l2" in
    Ok (Call (Fuse { op = matmul_field obj; l2; buffer; mode = mode_field obj }))
  | "regime" ->
    let buffer, _ = buffer_field obj in
    Ok (Call (Regime { op = matmul_field obj; buffer }))
  | "eval" ->
    let model =
      match Json.member "model" obj with
      | None -> fail "missing required field %S" "model"
      | Some v -> (
        match Json.to_string_v v with
        | Ok s -> String.lowercase_ascii s
        | Error e -> fail "field \"model\": %s" e)
    in
    let buffer, elt_bytes = buffer_field obj in
    Ok (Call (Eval { model; buffer; elt_bytes; mode = mode_field obj }))
  | "chain" ->
    let m = dim_field obj "m" in
    let ks =
      match Json.member "ks" obj with
      | None -> fail "missing required field %S" "ks"
      | Some v -> (
        match Json.to_list v with
        | Error e -> fail "field \"ks\": %s" e
        | Ok vs ->
          let ks =
            List.map
              (fun v ->
                match Json.to_int v with
                | Ok n when n >= 1 -> n
                | Ok n -> fail "field \"ks\": entries must be >= 1, got %d" n
                | Error e -> fail "field \"ks\": %s" e)
              vs
          in
          if List.length ks < 2 then
            fail "field \"ks\" needs at least two entries (a chain of >= 2 ops)"
          else ks)
    in
    let buffer, _ = buffer_field obj in
    Ok (Call (Chain { m; ks; buffer; mode = mode_field obj }))
  | "plan_model" ->
    let model =
      match Json.member "model" obj with
      | None -> fail "missing required field %S" "model"
      | Some v -> (
        match Json.to_string_v v with
        | Ok s -> String.lowercase_ascii s
        | Error e -> fail "field \"model\": %s" e)
    in
    let layers =
      match Json.member "layers" obj with
      | None -> 1
      | Some v -> (
        match Json.to_int v with
        | Ok n when n >= 1 && n <= 64 -> n
        | Ok n -> fail "field \"layers\" must be in [1, 64], got %d" n
        | Error e -> fail "field \"layers\": %s" e)
    in
    let buffer, elt_bytes = buffer_field obj in
    Ok (Call (Plan_model { model; layers; buffer; elt_bytes; mode = mode_field obj }))
  | "nest" ->
    let kind_s =
      match Json.member "kind" obj with
      | None -> fail "missing required field %S" "kind"
      | Some v -> (
        match Json.to_string_v v with
        | Ok s -> String.lowercase_ascii s
        | Error e -> fail "field \"kind\": %s" e)
    in
    let opt_dim name default =
      match Json.member name obj with
      | None -> default
      | Some _ -> dim_field obj name
    in
    let kind =
      match kind_s with
      | "matmul" ->
        N_matmul
          { m = dim_field obj "m"; k = dim_field obj "k"; l = dim_field obj "l" }
      | "conv2d" -> (
        let padding =
          match Json.member "padding" obj with
          | None -> 0
          | Some v -> (
            match Json.to_int v with
            | Ok n when n >= 0 -> n
            | Ok n -> fail "field \"padding\" must be >= 0, got %d" n
            | Error e -> fail "field \"padding\": %s" e)
        in
        match
          Conv.validate
            ~stride:(opt_dim "stride" 1)
            ~dilation:(opt_dim "dilation" 1)
            ~padding ~n:(dim_field obj "n") ~c:(dim_field obj "c")
            ~h:(dim_field obj "h") ~w:(dim_field obj "w") ~k:(dim_field obj "k")
            ~r:(dim_field obj "r") ~s:(dim_field obj "s") ()
        with
        | Ok cv -> N_conv2d cv
        | Error e -> fail "invalid conv2d: %s" e)
      | "batched_mm" ->
        N_batched_mm
          { b = dim_field obj "b"; m = dim_field obj "m"; k = dim_field obj "k";
            l = dim_field obj "l" }
      | "grouped_mm" ->
        let groups = dim_field obj "groups" and heads = dim_field obj "heads" in
        N_grouped_mm
          { groups; heads; m = dim_field obj "m"; k = dim_field obj "k";
            l = dim_field obj "l" }
      | "attention" ->
        let d = dim_field obj "d" in
        N_attention
          { seq_q = dim_field obj "seq_q"; seq_k = dim_field obj "seq_k"; d;
            dv = opt_dim "dv" d }
      | other ->
        fail
          "unknown nest kind %S (matmul, conv2d, batched_mm, grouped_mm, \
           attention)"
          other
    in
    let buffer, _ = buffer_field obj in
    Ok (Call (Nest { kind; buffer; mode = mode_field obj }))
  | "stats" -> Ok Stats
  | "metrics" ->
    let quiet =
      match Json.member "quiet" obj with
      | None -> false
      | Some (Json.Bool b) -> b
      | Some v -> fail "field \"quiet\" must be a boolean, got %s" (Json.print v)
    in
    Ok (Metrics_req { quiet })
  | "shutdown" -> Ok Shutdown
  | other ->
    Error
      { id = Json.Null;
        code = Unknown_op;
        message =
          Printf.sprintf
            "unknown op %S (intra, fuse, regime, eval, chain, plan_model, \
             nest, stats, metrics, shutdown)"
            other }

let parse_line line =
  match Json.parse line with
  | Error e -> Error { id = Json.Null; code = Parse_error; message = e }
  | Ok obj ->
    let id = Option.value ~default:Json.Null (Json.member "id" obj) in
    (* Trace context stamped by the router ("tc"); unknown members are
       ignored by design, so old clients and servers interoperate. *)
    let tc =
      match Json.member "tc" obj with Some (Json.String t) -> Some t | _ -> None
    in
    let reject code message = Error { id; code; message } in
    let dispatch () =
      match Json.member "op" obj with
      | None -> reject Bad_request "missing required field \"op\""
      | Some opv -> (
        match Json.to_string_v opv with
        | Error e -> reject Bad_request (Printf.sprintf "field \"op\": %s" e)
        | Ok op -> (
          match parse_call obj op with
          | Ok req -> Ok (id, tc, req)
          | Error r -> Error { r with id }
          | exception Bad m -> reject Bad_request m))
    in
    (match obj with
    | Json.Obj _ -> (
      match Json.member "v" obj with
      | None -> dispatch () (* no "v": treated as the current version *)
      | Some (Json.Int v) when v = version -> dispatch ()
      | Some v ->
        reject Unsupported_version
          (Printf.sprintf "unsupported schema version %s (this server speaks v%d)"
             (Json.print v) version))
    | _ -> reject Bad_request "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)

type transform = Identity | Transpose_ml

let canonicalize call =
  match call with
  | Intra { op; buffer; mode } when op.Matmul.m > op.Matmul.l ->
    (Intra { op = Matmul.transpose op; buffer; mode }, Transpose_ml)
  | Regime { op; buffer } when op.Matmul.m > op.Matmul.l ->
    (Regime { op = Matmul.transpose op; buffer }, Transpose_ml)
  | _ -> (call, Identity)

let nest_kind_name = function
  | N_matmul _ -> "matmul"
  | N_conv2d _ -> "conv2d"
  | N_batched_mm _ -> "batched_mm"
  | N_grouped_mm _ -> "grouped_mm"
  | N_attention _ -> "attention"

(* Field order is fixed: it is both the cache-key digit order and the
   response echo order. *)
let nest_kind_dims = function
  | N_matmul { m; k; l } -> [ ("m", m); ("k", k); ("l", l) ]
  | N_conv2d cv ->
    [ ("n", cv.Conv.n); ("c", cv.Conv.c); ("h", cv.Conv.h); ("w", cv.Conv.w);
      ("k", cv.Conv.k); ("r", cv.Conv.r); ("s", cv.Conv.s);
      ("stride", cv.Conv.stride); ("padding", cv.Conv.padding);
      ("dilation", cv.Conv.dilation) ]
  | N_batched_mm { b; m; k; l } -> [ ("b", b); ("m", m); ("k", k); ("l", l) ]
  | N_grouped_mm { groups; heads; m; k; l } ->
    [ ("groups", groups); ("heads", heads); ("m", m); ("k", k); ("l", l) ]
  | N_attention { seq_q; seq_k; d; dv } ->
    [ ("seq_q", seq_q); ("seq_k", seq_k); ("d", d); ("dv", dv) ]

let cache_key call =
  match call with
  | Intra { op; buffer; mode } ->
    Printf.sprintf "i|%s|%d|%d|%d|%d" (mode_to_string mode) op.Matmul.m
      op.Matmul.k op.Matmul.l (Buffer.elements buffer)
  | Fuse { op; l2; buffer; mode } ->
    Printf.sprintf "f|%s|%d|%d|%d|%d|%d" (mode_to_string mode) op.Matmul.m
      op.Matmul.k op.Matmul.l l2 (Buffer.elements buffer)
  | Regime { op; buffer } ->
    Printf.sprintf "r|%d|%d|%d|%d" op.Matmul.m op.Matmul.k op.Matmul.l
      (Buffer.elements buffer)
  | Eval { model; buffer; elt_bytes; mode } ->
    Printf.sprintf "e|%s|%s|%d|%d" (mode_to_string mode) model
      buffer.Buffer.bytes elt_bytes
  | Chain { m; ks; buffer; mode } ->
    Printf.sprintf "c|%s|%d|%s|%d" (mode_to_string mode) m
      (String.concat "," (List.map string_of_int ks))
      (Buffer.elements buffer)
  | Plan_model { model; layers; buffer; elt_bytes; mode } ->
    Printf.sprintf "pm|%s|%s|%d|%d|%d" (mode_to_string mode) model layers
      buffer.Buffer.bytes elt_bytes
  | Nest { kind; buffer; mode } ->
    Printf.sprintf "n|%s|%s|%s|%d" (mode_to_string mode) (nest_kind_name kind)
      (String.concat ","
         (List.map (fun (_, v) -> string_of_int v) (nest_kind_dims kind)))
      (Buffer.elements buffer)

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)

type intra_result = {
  ma : int;
  redundancy : float;
  footprint : int;
  tile_m : int;
  tile_k : int;
  tile_l : int;
  order : Dim.t list;
  nra : Nra.t;
  dataflow : Nra.dataflow;
  regime : Regime.t;
}

let intra_result_of_plan (plan : Intra.plan) =
  let s = plan.schedule in
  { ma = Intra.ma plan;
    redundancy = Intra.redundancy plan;
    footprint = Schedule.footprint s;
    tile_m = Tiling.get s.tiling Dim.M;
    tile_k = Tiling.get s.tiling Dim.K;
    tile_l = Tiling.get s.tiling Dim.L;
    order = Order.dims s.order;
    nra = Nra.class_of plan.dataflow;
    dataflow = plan.dataflow;
    regime = plan.regime }

type fuse_result =
  | Fused of { pattern : Fusion.pattern; nra : Nra.t; traffic : int }
  | Not_fused of {
      why : string;
      traffic : int;
      producer : Nra.t;
      consumer : Nra.t;
    }

type regime_result = {
  regime : Regime.t;
  thresholds : Regime.thresholds;
  classes : Nra.t list;
}

type eval_cells = {
  traffic : int;
  traffic_bytes : int;
  macs : int;
  cycles : int;
  utilization : float;
}

type eval_row = { platform : string; cells : (eval_cells, string) result }

type chain_segment = Solo_seg of int | Fused_seg of string * int

type chain_result =
  | Full_fusion of { traffic : int; fused_bound : int }
  | Pairwise of { traffic : int; segments : chain_segment list }

type plan_group = {
  members : string list;
  count : int;
  ops : int;
  group_traffic : int;
  group_hidden : int;
}

type plan_model_result = {
  nodes : int;
  plan_groups : plan_group list;
  fused_edges : string list;
  traffic : int;
  hidden : int;
  effective : int;
  unfused_traffic : int;
  unfused_effective : int;
  candidate_edges : int;
  components : int;
  dp_states : int;
  bnb_nodes : int;
  bnb_pruned : int;
}

type nest_result = {
  n_axes : string list;  (** axis names, rank order *)
  n_extents : int list;
  n_tiles : int list;  (** winning tile per axis, rank order *)
  n_order : string list;  (** axis names, outermost first *)
  n_traffic : int;
  n_ideal : int;  (** unbounded-buffer communication lower bound *)
  n_footprint : int;
  n_points : int;
  n_evaluated : int;  (** schedules cost-evaluated by the mapper *)
}

type outcome =
  | R_intra of intra_result
  | R_fuse of fuse_result
  | R_regime of regime_result
  | R_eval of eval_row list
  | R_chain of chain_result
  | R_plan_model of plan_model_result
  | R_nest of nest_result

(* Relabel canonical-frame results for the original (transposed)
   request: the canonical computation ran on [transpose op], whose A is
   the original B^T, B the original A^T, M the original L.  Counts
   (traffic, footprint, regime, class) are invariant — see DESIGN.md §5. *)
let swap_dim = function Dim.M -> Dim.L | Dim.L -> Dim.M | Dim.K -> Dim.K

let swap_operand = function
  | Operand.A -> Operand.B
  | Operand.B -> Operand.A
  | Operand.C -> Operand.C

let transpose_dataflow = function
  | Nra.Single_nra { stationary } ->
    Nra.Single_nra { stationary = swap_operand stationary }
  | Nra.Two_nra { untiled; redundant } ->
    Nra.Two_nra { untiled = swap_dim untiled; redundant = swap_operand redundant }
  | Nra.Three_nra { resident } ->
    Nra.Three_nra { resident = swap_operand resident }

let apply_transform tf outcome =
  match (tf, outcome) with
  | Identity, o -> o
  | Transpose_ml, R_intra r ->
    R_intra
      { r with
        tile_m = r.tile_l;
        tile_l = r.tile_m;
        order = List.map swap_dim r.order;
        dataflow = transpose_dataflow r.dataflow }
  | Transpose_ml, o -> o

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let problem_fields call =
  let buffer_fields (b : Buffer.t) =
    [ ("buffer_bytes", Json.Int b.bytes); ("elt_bytes", Json.Int b.elt_bytes) ]
  in
  match call with
  | Intra { op; buffer; mode } ->
    [ ("m", Json.Int op.Matmul.m); ("k", Json.Int op.Matmul.k);
      ("l", Json.Int op.Matmul.l) ]
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]
  | Fuse { op; l2; buffer; mode } ->
    [ ("m", Json.Int op.Matmul.m); ("k", Json.Int op.Matmul.k);
      ("l", Json.Int op.Matmul.l); ("l2", Json.Int l2) ]
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]
  | Regime { op; buffer } ->
    [ ("m", Json.Int op.Matmul.m); ("k", Json.Int op.Matmul.k);
      ("l", Json.Int op.Matmul.l) ]
    @ buffer_fields buffer
  | Eval { model; buffer; elt_bytes = _; mode } ->
    [ ("model", Json.String model) ]
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]
  | Chain { m; ks; buffer; mode } ->
    [ ("m", Json.Int m);
      ("ks", Json.List (List.map (fun k -> Json.Int k) ks)) ]
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]
  | Plan_model { model; layers; buffer; elt_bytes = _; mode } ->
    [ ("model", Json.String model); ("layers", Json.Int layers) ]
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]
  | Nest { kind; buffer; mode } ->
    (("kind", Json.String (nest_kind_name kind))
    :: List.map (fun (n, v) -> (n, Json.Int v)) (nest_kind_dims kind))
    @ buffer_fields buffer
    @ [ ("mode", Json.String (mode_to_string mode)) ]

let nest_outcome_fields r =
  [ ("axes", Json.List (List.map (fun a -> Json.String a) r.n_axes));
    ("extents", Json.List (List.map (fun e -> Json.Int e) r.n_extents));
    ("tiles", Json.List (List.map (fun t -> Json.Int t) r.n_tiles));
    ("order", Json.List (List.map (fun a -> Json.String a) r.n_order));
    ("traffic", Json.Int r.n_traffic);
    ("ideal", Json.Int r.n_ideal);
    ("footprint", Json.Int r.n_footprint);
    ("points", Json.Int r.n_points);
    ("evaluated", Json.Int r.n_evaluated) ]

let outcome_fields = function
  | R_intra r ->
    [ ("ma", Json.Int r.ma);
      ("redundancy", Json.Float r.redundancy);
      ("footprint", Json.Int r.footprint);
      ("tiles",
       Json.Obj
         [ ("m", Json.Int r.tile_m); ("k", Json.Int r.tile_k);
           ("l", Json.Int r.tile_l) ]);
      ("order",
       Json.List (List.map (fun d -> Json.String (Dim.to_string d)) r.order));
      ("class", Json.String (Nra.to_string r.nra));
      ("dataflow", Json.String (Nra.dataflow_to_string r.dataflow));
      ("regime", Json.String (Regime.to_string r.regime)) ]
  | R_fuse (Fused { pattern; nra; traffic }) ->
    [ ("fuse", Json.Bool true);
      ("pattern", Json.String (Fusion.pattern_name pattern));
      ("class", Json.String (Nra.to_string nra));
      ("traffic", Json.Int traffic) ]
  | R_fuse (Not_fused { why; traffic; producer; consumer }) ->
    [ ("fuse", Json.Bool false);
      ("why", Json.String why);
      ("producer_class", Json.String (Nra.to_string producer));
      ("consumer_class", Json.String (Nra.to_string consumer));
      ("traffic", Json.Int traffic) ]
  | R_regime r ->
    [ ("regime", Json.String (Regime.to_string r.regime));
      ("thresholds",
       Json.Obj
         [ ("tiny_max", Json.Int r.thresholds.Regime.tiny_max);
           ("small_max", Json.Int r.thresholds.Regime.small_max);
           ("medium_max", Json.Int r.thresholds.Regime.medium_max) ]);
      ("classes",
       Json.List
         (List.map (fun c -> Json.String (Nra.to_string c)) r.classes)) ]
  | R_eval rows ->
    [ ("platforms",
       Json.List
         (List.map
            (fun row ->
              match row.cells with
              | Ok c ->
                Json.Obj
                  [ ("name", Json.String row.platform);
                    ("traffic", Json.Int c.traffic);
                    ("traffic_bytes", Json.Int c.traffic_bytes);
                    ("macs", Json.Int c.macs);
                    ("cycles", Json.Int c.cycles);
                    ("utilization", Json.Float c.utilization) ]
              | Error e ->
                Json.Obj
                  [ ("name", Json.String row.platform);
                    ("error", Json.String e) ])
            rows)) ]
  | R_chain (Full_fusion { traffic; fused_bound }) ->
    [ ("decision", Json.String "full_fusion");
      ("traffic", Json.Int traffic);
      ("fused_bound", Json.Int fused_bound) ]
  | R_chain (Pairwise { traffic; segments }) ->
    [ ("decision", Json.String "pairwise");
      ("traffic", Json.Int traffic);
      ("segments",
       Json.List
         (List.map
            (function
              | Solo_seg t ->
                Json.Obj [ ("kind", Json.String "solo"); ("traffic", Json.Int t) ]
              | Fused_seg (pattern, t) ->
                Json.Obj
                  [ ("kind", Json.String "fused");
                    ("pattern", Json.String pattern);
                    ("traffic", Json.Int t) ])
            segments)) ]

  | R_plan_model r ->
    [ ("nodes", Json.Int r.nodes);
      ("group_count", Json.Int (List.length r.plan_groups));
      ("groups",
       Json.List
         (List.map
            (fun g ->
              Json.Obj
                [ ("members",
                   Json.List (List.map (fun n -> Json.String n) g.members));
                  ("count", Json.Int g.count);
                  ("ops", Json.Int g.ops);
                  ("traffic", Json.Int g.group_traffic);
                  ("hidden", Json.Int g.group_hidden) ])
            r.plan_groups));
      ("fused_edges",
       Json.List (List.map (fun e -> Json.String e) r.fused_edges));
      ("traffic", Json.Int r.traffic);
      ("hidden", Json.Int r.hidden);
      ("effective", Json.Int r.effective);
      ("unfused_traffic", Json.Int r.unfused_traffic);
      ("unfused_effective", Json.Int r.unfused_effective);
      ("search",
       Json.Obj
         [ ("candidate_edges", Json.Int r.candidate_edges);
           ("components", Json.Int r.components);
           ("dp_states", Json.Int r.dp_states);
           ("bnb_nodes", Json.Int r.bnb_nodes);
           ("bnb_pruned", Json.Int r.bnb_pruned) ]) ]
  | R_nest r -> nest_outcome_fields r

let response_ok ~id ~call outcome =
  Json.print
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool true);
         ("op", Json.String (op_name call));
         ("result", Json.Obj (problem_fields call @ outcome_fields outcome)) ])

let response_ok_json ~id ~op ~result =
  Json.print
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool true); ("op", Json.String op);
         ("result", result) ])

let response_error ~id ~code ~message =
  Json.print
    (Json.Obj
       [ ("id", id); ("ok", Json.Bool false);
         ("error",
          Json.Obj
            [ ("code", Json.String (error_code_to_string code));
              ("message", Json.String message) ]) ])

let reject_response r = response_error ~id:r.id ~code:r.code ~message:r.message

(* ------------------------------------------------------------------ *)
(* Trace-context envelope                                              *)

(* The router stamps requests and the engine echoes responses by splicing
   a trailing "tc" member textually rather than reparsing and reprinting
   the line: reprinting would have to round-trip floats and member order
   exactly, and any drift there would break the byte-identical golden
   transcripts. The splice leaves non-object lines untouched. *)

let tc_suffix tc = ",\"tc\":" ^ Json.print (Json.String tc) ^ "}"

let with_tc tc line =
  match tc with
  | None -> line
  | Some t ->
    let n = String.length line in
    if n < 2 || line.[n - 1] <> '}' then line
    else if line = "{}" then "{\"tc\":" ^ Json.print (Json.String t) ^ "}"
    else String.sub line 0 (n - 1) ^ tc_suffix t

let strip_tc ~tc line =
  let suffix = tc_suffix tc in
  let sn = String.length suffix and n = String.length line in
  if n >= sn && String.sub line (n - sn) sn = suffix then
    String.sub line 0 (n - sn) ^ "}"
  else line

(* ------------------------------------------------------------------ *)
(* Store serialization                                                 *)

(* A structural outcome codec for the persistent plan store. Distinct
   from [outcome_fields]: that output is the human/wire shape and has no
   inverse (several variants collapse onto the same field names), while
   this one tags every variant and round-trips exactly. Enum decoding is
   inverse-by-construction — each decoder searches the closed list of
   variants for the one whose [to_string] matches — so it can never
   drift from the encoders. *)

let ( let* ) = Result.bind

let enum_of_string ~what ~to_string all s =
  match List.find_opt (fun v -> String.equal (to_string v) s) all with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "store: unknown %s %S" what s)

let dim_of_string = enum_of_string ~what:"dim" ~to_string:Dim.to_string Dim.[ M; K; L ]

let operand_of_string =
  enum_of_string ~what:"operand" ~to_string:Operand.to_string Operand.[ A; B; C ]

let nra_of_string = enum_of_string ~what:"class" ~to_string:Nra.to_string Nra.all

let regime_of_string =
  enum_of_string ~what:"regime" ~to_string:Regime.to_string
    Regime.[ Tiny; Small; Medium; Large ]

let pattern_of_string =
  enum_of_string ~what:"pattern" ~to_string:Fusion.pattern_name
    Fusion.all_patterns

let dataflow_to_json = function
  | Nra.Single_nra { stationary } ->
    Json.Obj
      [ ("t", Json.String "single");
        ("stationary", Json.String (Operand.to_string stationary)) ]
  | Nra.Two_nra { untiled; redundant } ->
    Json.Obj
      [ ("t", Json.String "two");
        ("untiled", Json.String (Dim.to_string untiled));
        ("redundant", Json.String (Operand.to_string redundant)) ]
  | Nra.Three_nra { resident } ->
    Json.Obj
      [ ("t", Json.String "three");
        ("resident", Json.String (Operand.to_string resident)) ]

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "store: missing field %S" name)

let int_field name j = Result.bind (field name j) Json.to_int
let float_field name j = Result.bind (field name j) Json.to_float
let string_field name j = Result.bind (field name j) Json.to_string_v
let bool_field name j = Result.bind (field name j) Json.to_bool
let list_field name j = Result.bind (field name j) Json.to_list

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    l (Ok [])

let dataflow_of_json j =
  let* tag = string_field "t" j in
  match tag with
  | "single" ->
    let* s = Result.bind (string_field "stationary" j) operand_of_string in
    Ok (Nra.Single_nra { stationary = s })
  | "two" ->
    let* u = Result.bind (string_field "untiled" j) dim_of_string in
    let* r = Result.bind (string_field "redundant" j) operand_of_string in
    Ok (Nra.Two_nra { untiled = u; redundant = r })
  | "three" ->
    let* r = Result.bind (string_field "resident" j) operand_of_string in
    Ok (Nra.Three_nra { resident = r })
  | t -> Error (Printf.sprintf "store: unknown dataflow tag %S" t)

let outcome_to_json = function
  | R_intra r ->
    Json.Obj
      [ ("t", Json.String "intra");
        ("ma", Json.Int r.ma);
        ("redundancy", Json.Float r.redundancy);
        ("footprint", Json.Int r.footprint);
        ("tile_m", Json.Int r.tile_m);
        ("tile_k", Json.Int r.tile_k);
        ("tile_l", Json.Int r.tile_l);
        ("order",
         Json.List (List.map (fun d -> Json.String (Dim.to_string d)) r.order));
        ("class", Json.String (Nra.to_string r.nra));
        ("dataflow", dataflow_to_json r.dataflow);
        ("regime", Json.String (Regime.to_string r.regime)) ]
  | R_fuse (Fused { pattern; nra; traffic }) ->
    Json.Obj
      [ ("t", Json.String "fused");
        ("pattern", Json.String (Fusion.pattern_name pattern));
        ("class", Json.String (Nra.to_string nra));
        ("traffic", Json.Int traffic) ]
  | R_fuse (Not_fused { why; traffic; producer; consumer }) ->
    Json.Obj
      [ ("t", Json.String "not_fused");
        ("why", Json.String why);
        ("traffic", Json.Int traffic);
        ("producer", Json.String (Nra.to_string producer));
        ("consumer", Json.String (Nra.to_string consumer)) ]
  | R_regime r ->
    Json.Obj
      [ ("t", Json.String "regime");
        ("regime", Json.String (Regime.to_string r.regime));
        ("tiny_max", Json.Int r.thresholds.Regime.tiny_max);
        ("small_max", Json.Int r.thresholds.Regime.small_max);
        ("medium_max", Json.Int r.thresholds.Regime.medium_max);
        ("classes",
         Json.List
           (List.map (fun c -> Json.String (Nra.to_string c)) r.classes)) ]
  | R_eval rows ->
    Json.Obj
      [ ("t", Json.String "eval");
        ("rows",
         Json.List
           (List.map
              (fun row ->
                match row.cells with
                | Ok c ->
                  Json.Obj
                    [ ("platform", Json.String row.platform);
                      ("ok", Json.Bool true);
                      ("traffic", Json.Int c.traffic);
                      ("traffic_bytes", Json.Int c.traffic_bytes);
                      ("macs", Json.Int c.macs);
                      ("cycles", Json.Int c.cycles);
                      ("utilization", Json.Float c.utilization) ]
                | Error e ->
                  Json.Obj
                    [ ("platform", Json.String row.platform);
                      ("ok", Json.Bool false);
                      ("error", Json.String e) ])
              rows)) ]
  | R_chain (Full_fusion { traffic; fused_bound }) ->
    Json.Obj
      [ ("t", Json.String "chain_full");
        ("traffic", Json.Int traffic);
        ("fused_bound", Json.Int fused_bound) ]
  | R_chain (Pairwise { traffic; segments }) ->
    Json.Obj
      [ ("t", Json.String "chain_pairwise");
        ("traffic", Json.Int traffic);
        ("segments",
         Json.List
           (List.map
              (function
                | Solo_seg t ->
                  Json.Obj
                    [ ("kind", Json.String "solo"); ("traffic", Json.Int t) ]
                | Fused_seg (pattern, t) ->
                  Json.Obj
                    [ ("kind", Json.String "fused");
                      ("pattern", Json.String pattern);
                      ("traffic", Json.Int t) ])
              segments)) ]
  | R_plan_model r ->
    Json.Obj
      [ ("t", Json.String "plan_model");
        ("nodes", Json.Int r.nodes);
        ("groups",
         Json.List
           (List.map
              (fun g ->
                Json.Obj
                  [ ("members",
                     Json.List (List.map (fun n -> Json.String n) g.members));
                    ("count", Json.Int g.count);
                    ("ops", Json.Int g.ops);
                    ("traffic", Json.Int g.group_traffic);
                    ("hidden", Json.Int g.group_hidden) ])
              r.plan_groups));
        ("fused_edges",
         Json.List (List.map (fun e -> Json.String e) r.fused_edges));
        ("traffic", Json.Int r.traffic);
        ("hidden", Json.Int r.hidden);
        ("effective", Json.Int r.effective);
        ("unfused_traffic", Json.Int r.unfused_traffic);
        ("unfused_effective", Json.Int r.unfused_effective);
        ("candidate_edges", Json.Int r.candidate_edges);
        ("components", Json.Int r.components);
        ("dp_states", Json.Int r.dp_states);
        ("bnb_nodes", Json.Int r.bnb_nodes);
        ("bnb_pruned", Json.Int r.bnb_pruned) ]
  | R_nest r ->
    Json.Obj
      [ ("t", Json.String "nest");
        ("axes", Json.List (List.map (fun a -> Json.String a) r.n_axes));
        ("extents", Json.List (List.map (fun e -> Json.Int e) r.n_extents));
        ("tiles", Json.List (List.map (fun x -> Json.Int x) r.n_tiles));
        ("order", Json.List (List.map (fun a -> Json.String a) r.n_order));
        ("traffic", Json.Int r.n_traffic);
        ("ideal", Json.Int r.n_ideal);
        ("footprint", Json.Int r.n_footprint);
        ("points", Json.Int r.n_points);
        ("evaluated", Json.Int r.n_evaluated) ]

let outcome_of_json j =
  let* tag = string_field "t" j in
  match tag with
  | "intra" ->
    let* ma = int_field "ma" j in
    let* redundancy = float_field "redundancy" j in
    let* footprint = int_field "footprint" j in
    let* tile_m = int_field "tile_m" j in
    let* tile_k = int_field "tile_k" j in
    let* tile_l = int_field "tile_l" j in
    let* order =
      Result.bind (list_field "order" j)
        (map_result (fun d -> Result.bind (Json.to_string_v d) dim_of_string))
    in
    let* nra = Result.bind (string_field "class" j) nra_of_string in
    let* dataflow = Result.bind (field "dataflow" j) dataflow_of_json in
    let* regime = Result.bind (string_field "regime" j) regime_of_string in
    Ok
      (R_intra
         { ma; redundancy; footprint; tile_m; tile_k; tile_l; order; nra;
           dataflow; regime })
  | "fused" ->
    let* pattern = Result.bind (string_field "pattern" j) pattern_of_string in
    let* nra = Result.bind (string_field "class" j) nra_of_string in
    let* traffic = int_field "traffic" j in
    Ok (R_fuse (Fused { pattern; nra; traffic }))
  | "not_fused" ->
    let* why = string_field "why" j in
    let* traffic = int_field "traffic" j in
    let* producer = Result.bind (string_field "producer" j) nra_of_string in
    let* consumer = Result.bind (string_field "consumer" j) nra_of_string in
    Ok (R_fuse (Not_fused { why; traffic; producer; consumer }))
  | "regime" ->
    let* regime = Result.bind (string_field "regime" j) regime_of_string in
    let* tiny_max = int_field "tiny_max" j in
    let* small_max = int_field "small_max" j in
    let* medium_max = int_field "medium_max" j in
    let* classes =
      Result.bind (list_field "classes" j)
        (map_result (fun c -> Result.bind (Json.to_string_v c) nra_of_string))
    in
    Ok
      (R_regime
         { regime;
           thresholds = { Regime.tiny_max; small_max; medium_max };
           classes })
  | "eval" ->
    let* rows =
      Result.bind (list_field "rows" j)
        (map_result (fun row ->
             let* platform = string_field "platform" row in
             let* ok = bool_field "ok" row in
             if ok then
               let* traffic = int_field "traffic" row in
               let* traffic_bytes = int_field "traffic_bytes" row in
               let* macs = int_field "macs" row in
               let* cycles = int_field "cycles" row in
               let* utilization = float_field "utilization" row in
               Ok
                 { platform;
                   cells =
                     Ok { traffic; traffic_bytes; macs; cycles; utilization } }
             else
               let* e = string_field "error" row in
               Ok { platform; cells = Error e }))
    in
    Ok (R_eval rows)
  | "chain_full" ->
    let* traffic = int_field "traffic" j in
    let* fused_bound = int_field "fused_bound" j in
    Ok (R_chain (Full_fusion { traffic; fused_bound }))
  | "chain_pairwise" ->
    let* traffic = int_field "traffic" j in
    let* segments =
      Result.bind (list_field "segments" j)
        (map_result (fun seg ->
             let* kind = string_field "kind" seg in
             match kind with
             | "solo" ->
               let* t = int_field "traffic" seg in
               Ok (Solo_seg t)
             | "fused" ->
               let* pattern = string_field "pattern" seg in
               let* t = int_field "traffic" seg in
               Ok (Fused_seg (pattern, t))
             | k -> Error (Printf.sprintf "store: unknown segment kind %S" k)))
    in
    Ok (R_chain (Pairwise { traffic; segments }))
  | "plan_model" ->
    let* nodes = int_field "nodes" j in
    let* plan_groups =
      Result.bind (list_field "groups" j)
        (map_result (fun g ->
             let* members =
               Result.bind (list_field "members" g) (map_result Json.to_string_v)
             in
             let* count = int_field "count" g in
             let* ops = int_field "ops" g in
             let* group_traffic = int_field "traffic" g in
             let* group_hidden = int_field "hidden" g in
             Ok { members; count; ops; group_traffic; group_hidden }))
    in
    let* fused_edges =
      Result.bind (list_field "fused_edges" j) (map_result Json.to_string_v)
    in
    let* traffic = int_field "traffic" j in
    let* hidden = int_field "hidden" j in
    let* effective = int_field "effective" j in
    let* unfused_traffic = int_field "unfused_traffic" j in
    let* unfused_effective = int_field "unfused_effective" j in
    let* candidate_edges = int_field "candidate_edges" j in
    let* components = int_field "components" j in
    let* dp_states = int_field "dp_states" j in
    let* bnb_nodes = int_field "bnb_nodes" j in
    let* bnb_pruned = int_field "bnb_pruned" j in
    Ok
      (R_plan_model
         { nodes; plan_groups; fused_edges; traffic; hidden; effective;
           unfused_traffic; unfused_effective; candidate_edges; components;
           dp_states; bnb_nodes; bnb_pruned })
  | "nest" ->
    let* n_axes =
      Result.bind (list_field "axes" j) (map_result Json.to_string_v)
    in
    let* n_extents =
      Result.bind (list_field "extents" j) (map_result Json.to_int)
    in
    let* n_tiles = Result.bind (list_field "tiles" j) (map_result Json.to_int) in
    let* n_order =
      Result.bind (list_field "order" j) (map_result Json.to_string_v)
    in
    let* n_traffic = int_field "traffic" j in
    let* n_ideal = int_field "ideal" j in
    let* n_footprint = int_field "footprint" j in
    let* n_points = int_field "points" j in
    let* n_evaluated = int_field "evaluated" j in
    Ok
      (R_nest
         { n_axes; n_extents; n_tiles; n_order; n_traffic; n_ideal;
           n_footprint; n_points; n_evaluated })
  | t -> Error (Printf.sprintf "store: unknown outcome tag %S" t)
