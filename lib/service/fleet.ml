module Json = Fusecu_util.Json

(* Fleet-level aggregation of per-shard snapshots. Everything here works
   on the *wire* JSON shapes ({!Engine.stats_result} payloads and
   {!Metrics.to_json} dumps) rather than on [Metrics.t] values, because
   the shards are separate processes: the router only ever sees their
   serialized snapshots. Merging is deterministic — counters sum,
   histograms add bucket-wise (every process shares the same log2 bin
   layout, [Metrics.buckets]), and key order in merged objects is
   sorted, like the per-process encoders. *)

let ( let* ) = Result.bind

type hist = { count : int; total_s : float; bins : int array }

let empty_hist () =
  { count = 0; total_s = 0.; bins = Array.make Metrics.buckets 0 }

(* Inverse of the sparse bucket encoding in [Metrics.histogram_json]:
   bin i is encoded as {"le_us": 2^(i+1), "n": _}, the final open bin as
   {"le_us": null, "n": _}. Anything that is not exactly a power-of-two
   bound from that layout is a mismatched histogram — snapshots from a
   different schema — and is refused rather than guessed at. *)
let bin_of_bound = function
  | Json.Null -> Ok (Metrics.buckets - 1)
  | Json.Int le when le >= 2 ->
    let rec log2 v acc = if v <= 1 then acc else log2 (v lsr 1) (acc + 1) in
    let i = log2 le 0 - 1 in
    if i >= 0 && i < Metrics.buckets - 1 && 1 lsl (i + 1) = le then Ok i
    else Error (Printf.sprintf "bucket bound %d is not a log2 bin bound" le)
  | v -> Error ("bad bucket bound " ^ Json.print v)

let parse_histogram j =
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram: missing %S" name)
  in
  let* count = Result.bind (field "count") Json.to_int in
  let* total_s = Result.bind (field "total_s") Json.to_float in
  let* entries = Result.bind (field "buckets") Json.to_list in
  let h = { count; total_s; bins = Array.make Metrics.buckets 0 } in
  let rec fill = function
    | [] ->
      if Array.fold_left ( + ) 0 h.bins <> count then
        Error "histogram: bucket sum does not match count"
      else Ok h
    | e :: rest ->
      let* n =
        match Json.member "n" e with
        | Some v -> Json.to_int v
        | None -> Error "histogram: bucket missing \"n\""
      in
      let* i =
        match Json.member "le_us" e with
        | Some v -> bin_of_bound v
        | None -> Error "histogram: bucket missing \"le_us\""
      in
      if n < 0 then Error "histogram: negative bucket count"
      else begin
        h.bins.(i) <- h.bins.(i) + n;
        fill rest
      end
  in
  fill entries

let merge_histograms a b =
  { count = a.count + b.count;
    total_s = a.total_s +. b.total_s;
    bins = Array.init Metrics.buckets (fun i -> a.bins.(i) + b.bins.(i)) }

(* Must stay byte-compatible with [Metrics.histogram_json] so a merged
   fleet dump has the same shape as a single process's. *)
let histogram_to_json h =
  let bins =
    Array.to_list h.bins
    |> List.mapi (fun i n ->
           if n = 0 then None
           else
             let le =
               if i = Metrics.buckets - 1 then Json.Null
               else Json.Int (1 lsl (i + 1))
             in
             Some (Json.Obj [ ("le_us", le); ("n", Json.Int n) ]))
    |> List.filter_map Fun.id
  in
  Json.Obj
    [ ("count", Json.Int h.count);
      ("total_s", Json.Float h.total_s);
      ("buckets", Json.List bins) ]

(* ------------------------------------------------------------------ *)
(* Keyed unions                                                        *)

let obj_entries what j =
  match j with
  | Json.Obj kvs -> Ok kvs
  | _ -> Error (what ^ " is not an object")

(* Union-sum of per-shard integer maps, keys sorted (the per-process
   encoders sort too, so merged output stays deterministic). *)
let sum_counters maps =
  let tbl = Hashtbl.create 32 in
  let rec add_all = function
    | [] -> Ok ()
    | kvs :: rest ->
      let rec add = function
        | [] -> add_all rest
        | (k, v) :: kvs ->
          let* n = Json.to_int v in
          Hashtbl.replace tbl k
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl k));
          add kvs
      in
      add kvs
  in
  let* () = add_all maps in
  Ok
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let sum_gauges maps =
  let tbl = Hashtbl.create 16 in
  let rec add_all = function
    | [] -> Ok ()
    | kvs :: rest ->
      let rec add = function
        | [] -> add_all rest
        | (k, v) :: kvs ->
          let* f = Json.to_float v in
          Hashtbl.replace tbl k
            (f +. Option.value ~default:0. (Hashtbl.find_opt tbl k));
          add kvs
      in
      add kvs
  in
  let* () = add_all maps in
  Ok
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let merge_hist_maps maps =
  let tbl = Hashtbl.create 16 in
  let rec add_all = function
    | [] -> Ok ()
    | kvs :: rest ->
      let rec add = function
        | [] -> add_all rest
        | (k, v) :: kvs ->
          let* h = parse_histogram v in
          let merged =
            match Hashtbl.find_opt tbl k with
            | Some prev -> merge_histograms prev h
            | None -> h
          in
          Hashtbl.replace tbl k merged;
          add kvs
      in
      add kvs
  in
  let* () = add_all maps in
  Ok
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let shards_breakdown results =
  ( "shards",
    Json.List
      (List.mapi
         (fun i r -> Json.Obj [ ("shard", Json.Int i); ("result", r) ])
         results) )

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let merge_stats ~uptime_ticks results =
  let cache_field name r =
    let* cache =
      match Json.member "cache" r with
      | Some c -> Ok c
      | None -> Error "stats: missing \"cache\""
    in
    match Json.member name cache with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "stats: missing cache field %S" name)
  in
  let sum_cache name =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* v = Result.bind (cache_field name r) Json.to_int in
        Ok (acc + v))
      (Ok 0) results
  in
  let* enabled =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* b = Result.bind (cache_field "enabled" r) Json.to_bool in
        Ok (acc || b))
      (Ok false) results
  in
  let* capacity = sum_cache "capacity" in
  let* entries = sum_cache "entries" in
  let* hits = sum_cache "hits" in
  let* misses = sum_cache "misses" in
  let* evictions = sum_cache "evictions" in
  let* coalesced = sum_cache "coalesced" in
  let* shard_entries =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* l = Result.bind (cache_field "shard_entries" r) Json.to_list in
        Ok (acc @ l))
      (Ok []) results
  in
  let* counter_maps =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* c =
          match Json.member "counters" r with
          | Some c -> obj_entries "stats counters" c
          | None -> Error "stats: missing \"counters\""
        in
        Ok (c :: acc))
      (Ok []) results
  in
  let* counters = sum_counters (List.rev counter_maps) in
  (* same field order as a single server's stats payload, so fleet and
     per-process responses read identically; the hit rate is recomputed
     through the same [Cache.hit_rate] formula for float-exactness *)
  Ok
    (Json.Obj
       [ ( "cache",
           Json.Obj
             [ ("enabled", Json.Bool enabled);
               ("capacity", Json.Int capacity);
               ("entries", Json.Int entries);
               ("shard_entries", Json.List shard_entries);
               ("hits", Json.Int hits);
               ("misses", Json.Int misses);
               ("evictions", Json.Int evictions);
               ("coalesced", Json.Int coalesced);
               ("hit_rate",
                Json.Float (Cache.hit_rate { Cache.hits; misses; evictions; entries }))
             ] );
         ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
         ("uptime_ticks", Json.Int uptime_ticks);
         shards_breakdown results ])

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)

let merge_metrics ~uptime_ticks dumps =
  let member_entries name j =
    match Json.member name j with
    | Some v -> obj_entries ("metrics " ^ name) v
    | None -> Error (Printf.sprintf "metrics: missing %S" name)
  in
  let* counter_maps =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* c = member_entries "counters" d in
        Ok (c :: acc))
      (Ok []) dumps
  in
  let* counters = sum_counters (List.rev counter_maps) in
  let* hist_maps =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* h = member_entries "latency" d in
        Ok (h :: acc))
      (Ok []) dumps
  in
  let* hists = merge_hist_maps (List.rev hist_maps) in
  let* gauge_maps =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        match Json.member "gauges" d with
        | Some g ->
          let* g = obj_entries "metrics gauges" g in
          Ok (g :: acc)
        | None -> Ok acc)
      (Ok []) dumps
  in
  let* gauges = sum_gauges (List.rev gauge_maps) in
  (* fleet uptime is the router's own request-line count — summing the
     backends' would double-count every fanned-out control line *)
  let gauges =
    List.filter (fun (k, _) -> k <> "uptime_ticks") gauges
    @ [ ("uptime_ticks", float_of_int uptime_ticks) ]
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Ok
    (Json.Obj
       [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
         ("latency",
          Json.Obj (List.map (fun (k, h) -> (k, histogram_to_json h)) hists));
         ("gauges",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gauges));
         shards_breakdown dumps ])

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

type parsed_dump = {
  counters : (string * int) list;
  hists : (string * hist) list;
  gauges : (string * float) list;
}

let parse_dump d =
  let* counters =
    match Json.member "counters" d with
    | Some c ->
      let* kvs = obj_entries "counters" c in
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* n = Json.to_int v in
          Ok ((k, n) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | None -> Ok []
  in
  let* hists =
    match Json.member "latency" d with
    | Some l ->
      let* kvs = obj_entries "latency" l in
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* h = parse_histogram v in
          Ok ((k, h) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | None -> Ok []
  in
  let* gauges =
    match Json.member "gauges" d with
    | Some g ->
      let* kvs = obj_entries "gauges" g in
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* f = Json.to_float v in
          Ok ((k, f) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | None -> Ok []
  in
  Ok { counters; hists; gauges }

(* Family names across the whole fleet, sorted. [pick] projects the
   per-dump association list for one metric family kind. *)
let family_names pick router shards =
  List.sort_uniq String.compare
    (List.map fst (pick router)
    @ List.concat_map (fun d -> List.map fst (pick d)) shards)

let fleet_prometheus ?(prefix = "fusecu_") ~router shards =
  let* router = parse_dump router in
  let* shards =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* p = parse_dump d in
        Ok (p :: acc))
      (Ok []) shards
    |> Result.map List.rev
  in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (* Counters and gauges: one TYPE line per family, the router's own
     series unlabeled, each shard's series labeled {shard="i"}. Router
     metric names ("router_" prefixed) and backend names are disjoint in
     practice, but mixing labeled and unlabeled series in a family is
     valid exposition regardless. *)
  let scalar_families ~kind ~pp pick =
    List.iter
      (fun name ->
        let n = Metrics.sanitize (prefix ^ name) in
        line "# TYPE %s %s" n kind;
        (match List.assoc_opt name (pick router) with
        | Some v -> line "%s %s" n (pp v)
        | None -> ());
        List.iteri
          (fun i d ->
            match List.assoc_opt name (pick d) with
            | Some v -> line "%s{shard=\"%d\"} %s" n i (pp v)
            | None -> ())
          shards)
      (family_names pick router shards)
  in
  scalar_families ~kind:"counter" ~pp:string_of_int (fun d -> d.counters);
  scalar_families ~kind:"gauge" ~pp:Metrics.pp_float (fun d -> d.gauges);
  let hist_series n ~labels h =
    let sep = if labels = "" then "" else "," in
    let cum = ref 0 in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        if c > 0 && i < Metrics.buckets - 1 then
          line "%s_bucket{%s%sle=\"%s\"} %d" n labels sep
            (Metrics.pp_float (float_of_int (1 lsl (i + 1)) *. 1e-6))
            !cum)
      h.bins;
    line "%s_bucket{%s%sle=\"+Inf\"} %d" n labels sep h.count;
    let suffix = if labels = "" then "" else "{" ^ labels ^ "}" in
    line "%s_sum%s %s" n suffix (Metrics.pp_float h.total_s);
    line "%s_count%s %d" n suffix h.count
  in
  List.iter
    (fun name ->
      let n = Metrics.sanitize (prefix ^ name ^ "_seconds") in
      line "# TYPE %s histogram" n;
      (match List.assoc_opt name router.hists with
      | Some h -> hist_series n ~labels:"" h
      | None -> ());
      List.iteri
        (fun i d ->
          match List.assoc_opt name d.hists with
          | Some h -> hist_series n ~labels:(Printf.sprintf "shard=\"%d\"" i) h
          | None -> ())
        shards)
    (family_names (fun d -> d.hists) router shards);
  Ok (Buffer.contents b)
