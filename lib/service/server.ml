let serve_channel engine ?batch ic oc =
  let next () = In_channel.input_line ic in
  let emit line =
    Out_channel.output_string oc line;
    Out_channel.output_char oc '\n';
    Out_channel.flush oc
  in
  Engine.run engine ?batch ~next ~emit ()

(* Sequential accept loop: one engine (one cache, one metrics registry)
   across all connections; a client's "shutdown" stops the daemon. *)
let serve_socket engine ?batch ~path =
  (* A client that disconnects before reading its responses must not
     kill the daemon: turn SIGPIPE into EPIPE (caught below). *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = ref false in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      while not !stop do
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        let next () = In_channel.input_line ic in
        let emit line =
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n';
          Out_channel.flush oc;
          (* Engine.run returns right after emitting the shutdown
             response; remember that it happened to stop accepting. *)
          match Fusecu_util.Json.parse line with
          | Ok response ->
            if Fusecu_util.Json.member "op" response = Some (String "shutdown")
            then stop := true
          | Error _ -> ()
        in
        (try Engine.run engine ?batch ~next ~emit ()
         with
         | Sys_error _ | End_of_file
         | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
           () (* client went away mid-batch *));
        (try Unix.close client with Unix.Unix_error _ -> ())
      done)
