(* Transport layer for the planning daemon.

   Channel mode stays a plain drain of an [in_channel]. Socket mode is a
   concurrent accept loop: every connection gets its own systhread
   running [Engine.run] against a select-based bounded line reader, with
   a connection cap (backpressure: the accept loop stops accepting while
   the cap is reached), per-connection idle/read timeouts, an input
   line-length bound, and graceful shutdown (SIGINT / SIGTERM / in-band
   [shutdown]) that stops accepting, drains in-flight batches, closes
   the listener and unlinks the socket path.

   Sharing one [Engine] across connection threads is safe: the cache and
   metrics registry are mutex-guarded, and concurrent [Pool] regions
   degrade to inline sequential execution. Per-client response bytes
   stay deterministic because canonicalization runs on every request
   whether or not its result is served from the cache — a hit returns
   bit-for-bit what a fresh computation would (DESIGN.md §5). *)

type socket_config = {
  max_conns : int;
  idle_timeout : float;
  max_line : int;
}

let default_socket_config =
  { max_conns = 16; idle_timeout = 30.; max_line = 1 lsl 20 }

(* How often blocking loops re-check the stop flag, in seconds. Bounds
   both shutdown latency and idle-timeout precision. *)
let poll_slice = 0.05

(* ------------------------------------------------------------------ *)
(* Channel mode                                                        *)

let serve_channel engine ?batch ic oc =
  let next () = In_channel.input_line ic in
  let emit line =
    Out_channel.output_string oc line;
    Out_channel.output_char oc '\n';
    Out_channel.flush oc
  in
  ignore (Engine.run engine ?batch ~next ~emit ())

(* ------------------------------------------------------------------ *)
(* Select-based bounded line reader                                    *)

type read_result =
  | Line of string
  | Eof
  | Timeout  (** no complete line within the idle timeout *)
  | Oversized  (** line exceeded [max_line] before its newline *)
  | Stopped  (** server shutdown requested *)

type reader = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (** received bytes not yet returned as lines *)
  scratch : Bytes.t;
  mutable scanned : int;  (** prefix of [pending] known newline-free *)
  mutable at_eof : bool;
  mutable swept : bool;  (** final post-shutdown drain already done *)
}

let reader_of_fd fd =
  { fd;
    pending = Buffer.create 512;
    scratch = Bytes.create 4096;
    scanned = 0;
    at_eof = false;
    swept = false }

(* Consume everything already delivered to the kernel buffer without
   blocking. Used once at shutdown so requests the client sent before
   the stop signal are still answered ("drain in-flight"). *)
let drain_available r =
  let rec go () =
    match Unix.select [ r.fd ] [] [] 0. with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
      | 0 -> r.at_eof <- true
      | n ->
        Buffer.add_subbytes r.pending r.scratch 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        r.at_eof <- true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Take the first '\n'-terminated line out of [r.pending], if any. *)
let take_line r =
  let len = Buffer.length r.pending in
  let rec find i =
    if i >= len then None
    else if Buffer.nth r.pending i = '\n' then Some i
    else find (i + 1)
  in
  match find r.scanned with
  | None ->
    r.scanned <- len;
    None
  | Some i ->
    let line = Buffer.sub r.pending 0 i in
    let rest = Buffer.sub r.pending (i + 1) (len - i - 1) in
    Buffer.clear r.pending;
    Buffer.add_string r.pending rest;
    r.scanned <- 0;
    Some line

(* One line, or the reason there is none. A partial line followed by EOF
   is returned as a line (matching [In_channel.input_line]); the idle
   deadline covers the whole wait for one complete line, so a client
   trickling bytes forever (slow loris) still times out. *)
let read_line ~stop ~idle_timeout ~max_line r =
  let deadline =
    if idle_timeout > 0. then Unix.gettimeofday () +. idle_timeout
    else infinity
  in
  let rec go () =
    match take_line r with
    | Some line -> if String.length line > max_line then Oversized else Line line
    | None ->
      if Buffer.length r.pending > max_line then Oversized
      else if r.at_eof then
        if Buffer.length r.pending > 0 then begin
          let line = Buffer.contents r.pending in
          Buffer.clear r.pending;
          r.scanned <- 0;
          Line line
        end
        else Eof
      else if Atomic.get stop then
        if r.swept then Stopped
        else begin
          (* one last non-blocking sweep, then re-scan: lines the client
             delivered before the shutdown are still served *)
          r.swept <- true;
          drain_available r;
          go ()
        end
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then Timeout
        else begin
          let wait = Float.min poll_slice (deadline -. now) in
          (match Unix.select [ r.fd ] [] [] wait with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.read r.fd r.scratch 0 (Bytes.length r.scratch) with
            | 0 -> r.at_eof <- true
            | n -> Buffer.add_subbytes r.pending r.scratch 0 n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              ->
              r.at_eof <- true)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go ()
        end
      end
  in
  go ()

(* Blocking write of the whole string, with a liveness bound: a peer
   that stops reading cannot wedge the connection thread forever. *)
exception Write_stalled

let write_all ~idle_timeout fd s =
  let len = String.length s in
  let b = Bytes.of_string s in
  let deadline =
    if idle_timeout > 0. then Unix.gettimeofday () +. idle_timeout
    else infinity
  in
  let rec go off =
    if off < len then begin
      let now = Unix.gettimeofday () in
      if now >= deadline then raise Write_stalled;
      match Unix.select [] [ fd ] [] (Float.min poll_slice (deadline -. now)) with
      | _, [], _ -> go off
      | _, _ :: _, _ ->
        let n = Unix.write fd b off (len - off) in
        go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

(* Re-export the transport primitives for other line-protocol front
   ends (the {!Router}): same select-sliced reads, idle deadlines,
   line bounds and stalled-write protection as server connections. *)
module Line_reader = struct
  type t = reader

  type result = read_result =
    | Line of string
    | Eof
    | Timeout
    | Oversized
    | Stopped

  let create = reader_of_fd
  let read = read_line
end

(* ------------------------------------------------------------------ *)
(* Socket mode                                                         *)

type conn = { finished : bool ref; thread : Thread.t }

type server = {
  engine : Engine.t;
  config : socket_config;
  stop : bool Atomic.t;
  lock : Mutex.t;  (** guards [active] and [conns] *)
  mutable active : int;
  mutable conns : conn list;
}

let request_stop srv = Atomic.set srv.stop true

let handle_connection srv ?batch client =
  let { idle_timeout; max_line; _ } = srv.config in
  let m = Engine.metrics srv.engine in
  let reader = reader_of_fd client in
  let close_reason = ref `Eof in
  let next () =
    match read_line ~stop:srv.stop ~idle_timeout ~max_line reader with
    | Line l -> Some l
    | Eof -> None
    | Stopped ->
      close_reason := `Stopped;
      None
    | Timeout ->
      Metrics.incr m "conn_idle_timeouts";
      close_reason := `Timeout;
      None
    | Oversized ->
      Metrics.incr m "conn_oversized_lines";
      close_reason := `Oversized;
      None
  in
  let emit line = write_all ~idle_timeout client (line ^ "\n") in
  (try
     (* The reader turns timeout / oversize / shutdown into end-of-input,
        so Engine.run always drains the pending batch before returning:
        responses for requests received so far are emitted even when the
        connection is about to be closed for cause. *)
     (match Engine.run srv.engine ?batch ~next ~emit () with
     | Engine.Shutdown -> request_stop srv
     | Engine.Drained -> ());
     match !close_reason with
     | `Oversized ->
       (* Tell the client why it is being dropped (best effort — it may
          already be gone). *)
       emit
         (Protocol.response_error ~id:Fusecu_util.Json.Null
            ~code:Protocol.Bad_request
            ~message:
              (Printf.sprintf
                 "input line exceeds max-line (%d bytes); closing connection"
                 max_line))
     | `Eof | `Timeout | `Stopped -> ()
   with
  | Sys_error _ | End_of_file | Write_stalled ->
    Metrics.incr m "conn_client_drops"
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    (* client went away mid-batch *)
    Metrics.incr m "conn_client_drops");
  (try Unix.shutdown client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close client with Unix.Unix_error _ -> ());
  Metrics.incr m "conns_closed"

(* Join connection threads that have finished (their [finished] flag is
   set in the thread's own cleanup, so join returns promptly), keeping
   the tracked list proportional to live connections. *)
let reap srv =
  let done_ =
    Mutex.protect srv.lock (fun () ->
        let d, live = List.partition (fun c -> !(c.finished)) srv.conns in
        srv.conns <- live;
        d)
  in
  List.iter (fun c -> Thread.join c.thread) done_

let serve_socket engine ?batch ?(config = default_socket_config) ~path () =
  if config.max_conns < 1 then invalid_arg "serve_socket: max_conns < 1";
  if config.max_line < 1 then invalid_arg "serve_socket: max_line < 1";
  (* A client that disconnects before reading its responses must not
     kill the daemon: turn SIGPIPE into EPIPE (caught above). *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ ->
    failwith
      (Printf.sprintf
         "serve: %s exists and is not a socket; remove it or pick another \
          --socket path"
         path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let srv =
    { engine;
      config;
      stop = Atomic.make false;
      lock = Mutex.create ();
      active = 0;
      conns = [] }
  in
  (* SIGINT / SIGTERM initiate the same graceful drain as an in-band
     shutdown request. The handlers only flip the atomic — every
     blocking loop re-checks it within [poll_slice]. Previous
     dispositions are restored on exit so embedders (tests) keep their
     own handling. *)
  let install signal =
    try
      Some (signal, Sys.signal signal (Sys.Signal_handle (fun _ -> request_stop srv)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let metrics = Engine.metrics engine in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      (* Drain: connection threads see the stop flag at their next read
         boundary, flush their pending batch, and exit. *)
      let conns = Mutex.protect srv.lock (fun () -> srv.conns) in
      List.iter (fun c -> Thread.join c.thread) conns;
      List.iter (fun (s, behavior) -> Sys.set_signal s behavior) saved)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock (max 16 config.max_conns);
      Unix.set_nonblock sock;
      while not (Atomic.get srv.stop) do
        reap srv;
        (* Backpressure: while [max_conns] connections are active, wait
           for a slot instead of accepting more. *)
        let have_slot =
          Mutex.protect srv.lock (fun () -> srv.active < config.max_conns)
        in
        if not have_slot then
          ignore
            (try Unix.select [] [] [] poll_slice
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []))
        else
          match Unix.select [ sock ] [] [] poll_slice with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
            match Unix.accept ~cloexec:true sock with
            | exception
                Unix.Unix_error
                  ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                    | Unix.ECONNABORTED),
                    _,
                    _ )
              -> ()
            | client, _ ->
              Metrics.incr metrics "conns_accepted";
              Mutex.protect srv.lock (fun () -> srv.active <- srv.active + 1);
              let finished = ref false in
              let thread =
                Thread.create
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () ->
                        Mutex.protect srv.lock (fun () ->
                            srv.active <- srv.active - 1;
                            finished := true))
                      (fun () -> handle_connection srv ?batch client))
                  ()
              in
              Mutex.protect srv.lock (fun () ->
                  srv.conns <- { finished; thread } :: srv.conns))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)

(* ------------------------------------------------------------------ *)
(* Metrics exporter                                                    *)

(* An HTTP-less TCP text endpoint: each accepted connection immediately
   receives [render ()] (Prometheus text exposition) and is closed —
   [nc host port] is a complete client. Runs on its own systhread so it
   never touches the engine's request path; [render] only reads the
   mutex-guarded metrics registry. *)
type exporter = {
  esock : Unix.file_descr;
  eport : int;
  estop : bool Atomic.t;
  mutable ethread : Thread.t option;
}

let parse_metrics_addr addr =
  let host, port_s =
    match String.rindex_opt addr ':' with
    | Some i ->
      (String.sub addr 0 i, String.sub addr (i + 1) (String.length addr - i - 1))
    | None -> ("127.0.0.1", addr)
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt (String.trim port_s) with
  | Some p when p >= 0 && p <= 65535 -> (host, p)
  | _ ->
    invalid_arg
      (Printf.sprintf "metrics-addr %S: expected PORT or HOST:PORT" addr)

let exporter_loop ex ~render () =
  while not (Atomic.get ex.estop) do
    match Unix.select [ ex.esock ] [] [] poll_slice with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true ex.esock with
      | exception
          Unix.Unix_error
            ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
              | Unix.ECONNABORTED | Unix.EBADF ),
              _,
              _ )
        -> ()
      | client, _ ->
        (try write_all ~idle_timeout:5. client (render ())
         with
        | Write_stalled | Sys_error _ -> ()
        | Unix.Unix_error _ -> ());
        (try Unix.shutdown client Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> Atomic.set ex.estop true
  done

let start_metrics_exporter ~render ~addr =
  let host, port = parse_metrics_addr addr in
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        invalid_arg (Printf.sprintf "metrics-addr: unknown host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))
  in
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (inet, port));
     Unix.listen sock 8;
     Unix.set_nonblock sock
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let ex =
    { esock = sock; eport = bound_port; estop = Atomic.make false;
      ethread = None }
  in
  ex.ethread <- Some (Thread.create (exporter_loop ex ~render) ());
  ex

let exporter_port ex = ex.eport

let stop_metrics_exporter ex =
  if not (Atomic.exchange ex.estop true) then begin
    Option.iter Thread.join ex.ethread;
    ex.ethread <- None;
    try Unix.close ex.esock with Unix.Unix_error _ -> ()
  end
