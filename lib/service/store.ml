module Hash = Fusecu_util.Hash
module Json = Fusecu_util.Json
module Log = Fusecu_util.Log

(* On-disk format: one record per line,

     CCCCCCCC {"k":<cache key>,"o":<outcome>}\n

   where CCCCCCCC is the lowercase %08x CRC-32 of everything after the
   single separating space. The payload is compact JSON from the
   deterministic printer, so a record is byte-reproducible from its
   (key, outcome) pair. Appends go through a write-behind queue drained
   by a flusher thread — the engine's sequential drain phase never
   blocks on disk. Recovery reads records in order until the first
   damaged one (short frame, bad hex, CRC mismatch, unparseable payload,
   or a final line without its newline — a torn append) and drops the
   rest: bytes past the first damage have no trustworthy framing, and
   the append-only discipline means everything before it is intact.
   Later records win on duplicate keys, so re-computation after eviction
   simply supersedes the old record; compaction rewrites one record per
   live key into a temp file and atomically renames it over the log. *)

type recovery = {
  entries : (string * Protocol.outcome) list;  (** file order, deduped *)
  records : int;  (** valid records read (before dedup) *)
  dropped_records : int;
  dropped_bytes : int;
}

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  queue : (string * Protocol.outcome) Queue.t;
  mutex : Mutex.t;
  cond : Condition.t;  (* signalled on enqueue and on stop *)
  drained : Condition.t;  (* signalled when the queue empties *)
  mutable stop : bool;
  mutable flusher : Thread.t option;
  mutable appended : int;
  recovery : recovery;
  mutable metrics : Metrics.t option;
      (* instrumentation sink ([set_metrics]); never read while holding
         [mutex] is required — metrics calls happen after unlock, so the
         only lock order is store.mutex before metrics.mutex *)
}

let frame key outcome =
  let payload =
    Json.print
      (Json.Obj [ ("k", Json.String key); ("o", Protocol.outcome_to_json outcome) ])
  in
  Printf.sprintf "%08x %s\n" (Hash.crc32 payload) payload

let parse_record line =
  let n = String.length line in
  if n < 10 || line.[8] <> ' ' then Error "short or unframed record"
  else
    let crc_hex = String.sub line 0 8 in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | None -> Error "bad CRC hex"
    | Some crc ->
      let payload = String.sub line 9 (n - 9) in
      if Hash.crc32 payload <> crc then Error "CRC mismatch"
      else (
        match Json.parse payload with
        | Error e -> Error e
        | Ok j -> (
          match (Json.member "k" j, Json.member "o" j) with
          | Some (Json.String k), Some o -> (
            match Protocol.outcome_of_json o with
            | Ok outcome -> Ok (k, outcome)
            | Error e -> Error e)
          | _ -> Error "payload is not {\"k\":...,\"o\":...}"))

let recover path =
  if not (Sys.file_exists path) then
    { entries = []; records = 0; dropped_records = 0; dropped_bytes = 0 }
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let tbl = Hashtbl.create 256 in
    let order = ref [] in
    let records = ref 0 in
    let pos = ref 0 in
    let damaged = ref false in
    while (not !damaged) && !pos < len do
      match String.index_from_opt raw !pos '\n' with
      | None -> damaged := true (* torn final append: no newline *)
      | Some nl -> (
        let line = String.sub raw !pos (nl - !pos) in
        match parse_record line with
        | Error _ -> damaged := true
        | Ok (k, outcome) ->
          incr records;
          if not (Hashtbl.mem tbl k) then order := k :: !order;
          Hashtbl.replace tbl k outcome;
          pos := nl + 1)
    done;
    let dropped_bytes = if !damaged then len - !pos else 0 in
    let dropped_records =
      (* count newline-framed lines in the damaged tail, + a trailing
         fragment if the file does not end in '\n' *)
      if not !damaged then 0
      else begin
        let lines = ref 0 in
        let has_fragment = ref false in
        String.iteri
          (fun i c ->
            if i >= !pos then
              if c = '\n' then (incr lines; has_fragment := false)
              else has_fragment := true)
          raw;
        !lines + if !has_fragment then 1 else 0
      end
    in
    { entries =
        List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order;
      records = !records;
      dropped_records;
      dropped_bytes }
  end

let write_string fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let flusher_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.cond t.mutex
    done;
    let batch = Queue.create () in
    Queue.transfer t.queue batch;
    if t.stop && Queue.is_empty batch then running := false;
    Mutex.unlock t.mutex;
    if not (Queue.is_empty batch) then begin
      let buf = Buffer.create 1024 in
      Queue.iter (fun (k, o) -> Buffer.add_string buf (frame k o)) batch;
      let t0 = Unix.gettimeofday () in
      write_string t.fd (Buffer.contents buf);
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock t.mutex;
      t.appended <- t.appended + Queue.length batch;
      Condition.broadcast t.drained;
      let depth = Queue.length t.queue in
      Mutex.unlock t.mutex;
      match t.metrics with
      | Some m ->
        Metrics.observe m "store_flush_batch"
          (float_of_int (Queue.length batch));
        Metrics.observe m "store_append_seconds" (Float.max 0. dt);
        Metrics.set_gauge m "store_queue_depth" (float_of_int depth)
      | None -> ()
    end
  done;
  Mutex.lock t.mutex;
  Condition.broadcast t.drained;
  Mutex.unlock t.mutex

let open_append path =
  Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

let open_ ~path =
  match recover path with
  | exception Sys_error e -> Error (Printf.sprintf "store %s: %s" path e)
  | recovery ->
    (match open_append path with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "store %s: %s" path (Unix.error_message err))
    | fd ->
      (* A damaged tail would corrupt the next append (its first bytes
         would graft onto the torn fragment), so truncate it away. *)
      if recovery.dropped_bytes > 0 then begin
        let keep =
          (Unix.fstat fd).Unix.st_size - recovery.dropped_bytes
        in
        Unix.ftruncate fd keep;
        Log.warn "store recovery dropped damaged tail"
          ~fields:
            [ ("path", Json.String path);
              ("dropped_records", Json.Int recovery.dropped_records);
              ("dropped_bytes", Json.Int recovery.dropped_bytes) ]
      end;
      let t =
        { path;
          fd;
          queue = Queue.create ();
          mutex = Mutex.create ();
          cond = Condition.create ();
          drained = Condition.create ();
          stop = false;
          flusher = None;
          appended = 0;
          recovery;
          metrics = None }
      in
      t.flusher <- Some (Thread.create flusher_loop t);
      Ok t)

let recovered t = t.recovery

let set_metrics t m =
  t.metrics <- Some m;
  (* Recovery counters are registered only when nonzero: a cold fresh
     store must leave the deterministic counter set untouched so the
     full-transcript golden compare of a cold run (store drill) stays
     exact. Warm/damaged opens surface what recovery found. *)
  let r = t.recovery in
  if r.records > 0 then Metrics.incr ~by:r.records m "store_records_loaded";
  if r.dropped_records > 0 then
    Metrics.incr ~by:r.dropped_records m "store_dropped_records";
  if r.dropped_bytes > 0 then
    Metrics.incr ~by:r.dropped_bytes m "store_torn_tail_bytes"

let append t key outcome =
  Mutex.lock t.mutex;
  if not t.stop then begin
    Queue.add (key, outcome) t.queue;
    Condition.signal t.cond
  end;
  let depth = Queue.length t.queue in
  Mutex.unlock t.mutex;
  match t.metrics with
  | Some m -> Metrics.set_gauge m "store_queue_depth" (float_of_int depth)
  | None -> ()

let flush t =
  Mutex.lock t.mutex;
  while not (Queue.is_empty t.queue) do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex

let appended t =
  Mutex.lock t.mutex;
  let n = t.appended in
  Mutex.unlock t.mutex;
  n

(* fsync a directory so a rename inside it survives a crash; best
   effort where directories cannot be opened/synced (some filesystems
   return EINVAL) *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd

let compact t entries =
  flush t;
  let tmp = t.path ^ ".tmp" in
  (* a stale temp file from a compact that crashed mid-write must not
     poison this one: truncate it via open_out_bin, never append *)
  match
    let oc = open_out_bin tmp in
    List.iter (fun (k, o) -> output_string oc (frame k o)) entries;
    (* durability order: temp contents on disk before the rename
       publishes them, parent directory entry on disk after — without
       the first fsync a crash soon after the rename can leave the log
       pointing at zero-length or partial data; without the second the
       rename itself can vanish (the old log is gone either way on
       journalled-metadata filesystems) *)
    Stdlib.flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    Sys.rename tmp t.path;
    fsync_dir (Filename.dirname t.path)
  with
  | exception (Sys_error _ | Unix.Unix_error _ as exn) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    let msg =
      match exn with
      | Sys_error e -> e
      | Unix.Unix_error (err, fn, _) ->
        Printf.sprintf "%s: %s" fn (Unix.error_message err)
      | _ -> assert false
    in
    Error (Printf.sprintf "store compact %s: %s" t.path msg)
  | () ->
    (* the append fd still points at the old inode; reopen on the new *)
    Unix.close t.fd;
    t.fd <- open_append t.path;
    Ok ()

let close t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  (match t.flusher with Some th -> Thread.join th | None -> ());
  t.flusher <- None;
  Unix.close t.fd
