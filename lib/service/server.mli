(** Transport layer for the planning daemon: newline-delimited JSON over
    stdin/stdout or a Unix-domain socket.

    Channel mode is the pipeline-friendly form —
    {v echo '{"op":"intra",...}' | fusecu_opt serve v}
    — reading until EOF (or a [shutdown] request). Socket mode binds a
    path and serves clients {e concurrently}: each accepted connection
    runs on its own thread against the shared engine (one plan cache,
    one metrics registry), bounded by {!socket_config}. Misbehaving
    clients are contained per connection — a stalled sender hits the
    idle timeout, an over-long line is rejected, a client that vanishes
    mid-batch is dropped — and each such event lands in a
    {!Metrics} counter ([conns_accepted], [conns_closed],
    [conn_idle_timeouts], [conn_oversized_lines], [conn_client_drops]).

    Shutdown is graceful on SIGINT, SIGTERM, or an in-band [shutdown]
    request: the listener stops accepting and is closed, the socket
    path is unlinked, and in-flight connections drain their pending
    batch (every request already received gets its response) before
    their threads are joined. *)

type socket_config = {
  max_conns : int;
      (** connection cap; the accept loop applies backpressure (stops
          accepting) while this many connections are active *)
  idle_timeout : float;
      (** seconds a connection may sit without delivering a complete
          request line (and per-response write-liveness bound) before it
          is closed; [<= 0.] disables the timeout *)
  max_line : int;
      (** longest accepted request line in bytes; longer input gets a
          [bad_request] error response and the connection is closed *)
}

val default_socket_config : socket_config
(** 16 connections, 30 s idle timeout, 1 MiB line bound. *)

val serve_channel : Engine.t -> ?batch:int -> in_channel -> out_channel -> unit
(** Drain the input channel through {!Engine.run}; responses are
    flushed after every batch. *)

val serve_socket :
  Engine.t -> ?batch:int -> ?config:socket_config -> path:string -> unit -> unit
(** Listen on a Unix-domain socket at [path] (an existing {e socket}
    file there is replaced) and serve connections concurrently until a
    [shutdown] request or a termination signal arrives; the socket file
    is removed on exit and previous signal dispositions are restored.

    Raises [Failure] when [path] exists and is not a socket,
    [Invalid_argument] on a non-positive [max_conns]/[max_line], and
    [Unix.Unix_error] on bind/listen failures. *)

(** {1 Line transport primitives}

    The server's select-based bounded line reader and stall-protected
    writer, re-exported so other line-protocol front ends (the
    {!Router}) reuse the exact timeout/backpressure machinery instead of
    reimplementing it. *)

module Line_reader : sig
  type t

  type result =
    | Line of string
    | Eof
    | Timeout  (** no complete line within the idle timeout *)
    | Oversized  (** line exceeded [max_line] before its newline *)
    | Stopped  (** [stop] flag was set *)

  val create : Unix.file_descr -> t

  val read :
    stop:bool Atomic.t -> idle_timeout:float -> max_line:int -> t -> result
  (** One line, or the reason there is none. A partial line at EOF is
      returned as a line; the idle deadline covers the whole wait for
      one complete line (slow-loris-proof); [idle_timeout <= 0.]
      disables the deadline. *)
end

exception Write_stalled

val write_all : idle_timeout:float -> Unix.file_descr -> string -> unit
(** Write the whole string, bounded by [idle_timeout] of write-readiness
    waiting; raises {!Write_stalled} when the peer stops reading. *)

(** {1 Metrics exporter} *)

type exporter

val start_metrics_exporter : render:(unit -> string) -> addr:string -> exporter
(** Bind a TCP listener at [addr] ("PORT" or "HOST:PORT"; host defaults
    to 127.0.0.1, port 0 binds an ephemeral port — see
    {!exporter_port}) and serve [render ()] to every connection on a
    dedicated thread: the client connects, receives the full text
    (Prometheus exposition when [render] is {!Engine.prometheus}) and
    the connection is closed — no HTTP framing, [nc host port] is a
    complete scrape. Raises [Invalid_argument] on a malformed address
    and [Unix.Unix_error] on bind failures. *)

val exporter_port : exporter -> int
(** The actually-bound port (useful with port 0). *)

val stop_metrics_exporter : exporter -> unit
(** Stop accepting, join the exporter thread and close the listener.
    Idempotent. *)
