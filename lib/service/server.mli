(** Transport layer for the planning daemon: newline-delimited JSON over
    stdin/stdout or a Unix-domain socket.

    Channel mode is the pipeline-friendly form —
    {v echo '{"op":"intra",...}' | fusecu_opt serve v}
    — reading until EOF (or a [shutdown] request). Socket mode binds a
    path, accepts one client at a time and serves each connection with
    the same engine (so the plan cache and metrics persist across
    connections) until a client sends [shutdown]. *)

val serve_channel : Engine.t -> ?batch:int -> in_channel -> out_channel -> unit
(** Drain the input channel through {!Engine.run}; responses are
    flushed after every batch. *)

val serve_socket : Engine.t -> ?batch:int -> path:string -> unit
(** Listen on a Unix-domain socket at [path] (an existing socket file
    there is replaced) and serve connections sequentially until a
    [shutdown] request arrives; the socket file is removed on exit.
    Raises [Unix.Unix_error] on bind/listen failures. *)
