(** A sharded, bounded, LRU plan cache keyed by canonical request
    strings ({!Protocol.canonicalize}).

    Sharding: keys hash to one of [shards] independent sub-caches, each
    behind its own mutex, so concurrent lookups from worker domains only
    contend when they collide on a shard. Capacity is global and divided
    evenly across shards (rounded up); each shard evicts its own
    least-recently-used entry when it overflows, so the bound is
    per-shard [ceil (capacity / shards)] and the total never exceeds
    [shards * ceil (capacity / shards)].

    Recency is a per-shard monotonically increasing tick stamped on
    every hit and insert; eviction scans the shard for the minimum stamp
    (O(entries-per-shard), fine for the bounded shard sizes the service
    uses — capacity comes from [FUSECU_CACHE_ENTRIES]).

    Determinism: hit/miss/eviction behaviour depends only on the
    sequence of [find]/[add] calls. The service engine performs all
    cache access in its sequential drain phase, in request order, so
    cache statistics are byte-identical across [FUSECU_DOMAINS]
    settings. *)

type 'a t

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [capacity] is the total entry bound ([>= 0]; 0 means the cache
    stores nothing and every [find] misses). [shards] defaults to 8 and
    is clamped to [\[1, capacity\]] when [capacity > 0]. *)

val capacity : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; refreshes the entry's recency on hit and bumps the hit or
    miss counter. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite; evicts the shard's LRU entry first when the
    shard is full. A no-op when [capacity = 0]. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : 'a t -> stats
(** Consistent snapshot: all shard locks are held for the duration of
    the read (acquired and released in index order), so concurrent
    [add]s can never produce a torn view — [entries] is bounded by the
    capacity invariant and counters from one instant. *)

val shard_occupancy : 'a t -> int list
(** Entry count of each shard, in shard order, under the same
    all-shards snapshot as {!stats}. Deterministic for a given sequence
    of [find]/[add] calls (sharding is full-string FNV-1a,
    {!Fusecu_util.Hash.fnv1a64_positive}, and the engine drains
    sequentially), so safe to report in [stats] responses compared
    against goldens. *)

val fold_entries : 'a t -> (string -> 'a -> 'acc -> 'acc) -> 'acc -> 'acc
(** Fold over every (key, value) pair under the all-shards snapshot, in
    unspecified order. Used by the persistent store to capture a
    consistent image for compaction. *)

val hit_rate : stats -> float
(** [hits / (hits + misses)]; 0 when no lookups have happened. *)
