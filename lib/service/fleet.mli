(** Fleet-level aggregation of per-shard observability snapshots.

    The router's backends are separate processes, so aggregation works
    on the serialized wire shapes — {!Engine} [stats] payloads and
    {!Metrics.to_json} dumps — not on live [Metrics.t] values. Counters
    sum, histograms merge bucket-wise (every process shares the
    {!Metrics.buckets} log2 bin layout), gauges sum, and every merged
    object keeps sorted keys, so fleet responses are exactly as
    deterministic as their inputs. Malformed or schema-mismatched
    snapshots are refused with [Error], never guessed at. *)

module Json = Fusecu_util.Json

(** {1 Histograms} *)

type hist = { count : int; total_s : float; bins : int array }
(** A dense decoding of the sparse wire histogram; [bins] has
    {!Metrics.buckets} slots. *)

val empty_hist : unit -> hist

val parse_histogram : Json.t -> (hist, string) result
(** Inverse of the sparse [{"count";"total_s";"buckets":[{"le_us";"n"}]}]
    encoding. [Error] on a bound that is not a bin bound of the shared
    layout, a negative count, or a bucket sum disagreeing with [count]. *)

val merge_histograms : hist -> hist -> hist
(** Bucket-wise sum; [count] and [total_s] add. *)

val histogram_to_json : hist -> Json.t
(** Byte-compatible with [Metrics.histogram_json] (sparse, non-empty
    bins only, final open bin as [null]). *)

(** {1 In-band fan-out merges} *)

val merge_stats : uptime_ticks:int -> Json.t list -> (Json.t, string) result
(** Merge per-shard [stats] result payloads (shard order): cache
    hits/misses/evictions/entries/capacity/coalesced sum,
    [shard_entries] concatenate, [hit_rate] is recomputed through
    {!Cache.hit_rate} on the summed totals, counters union-sum.
    [uptime_ticks] is the {e router's} own request-line count — the
    fleet's logical clock stays a pure function of client request count,
    whereas summing backend ticks would count every fanned-out control
    line N times. The full per-shard payloads are preserved under a
    trailing ["shards"] key. *)

val merge_metrics : uptime_ticks:int -> Json.t list -> (Json.t, string) result
(** Merge per-shard {!Metrics.to_json} dumps: counters union-sum,
    latency histograms bucket-wise, gauges union-sum except
    [uptime_ticks], which is replaced by the router's count (same
    argument as {!merge_stats}). Per-shard dumps preserved under
    ["shards"]. *)

(** {1 Prometheus exposition} *)

val fleet_prometheus :
  ?prefix:string -> router:Json.t -> Json.t list -> (string, string) result
(** Fleet text exposition (format 0.0.4) from the router's own metrics
    dump plus one scraped dump per shard (shard order): one [# TYPE]
    line per family, router series unlabeled, shard series labeled
    [{shard="i"}] (histogram buckets get [shard] and [le] labels).
    [prefix] defaults to ["fusecu_"], as in {!Metrics.to_prometheus}. *)
