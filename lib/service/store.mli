(** The persistent plan store: an append-only, CRC-framed NDJSON log of
    [(canonical cache key, outcome)] records, so plan caches survive
    restarts and warm instantly.

    {b Format.} One record per line:
    [CCCCCCCC {"k":<cache key>,"o":<outcome>}\n] where [CCCCCCCC] is the
    lowercase hex CRC-32 ({!Fusecu_util.Hash.crc32}) of the payload
    after the single separating space, and the payload is compact JSON
    from the deterministic printer ({!Protocol.outcome_to_json}).

    {b Recovery invariant.} Records are valid up to the first damaged
    one (short frame, bad hex, CRC mismatch, unparseable payload, or a
    torn final append without its newline); everything from the first
    damage onward is dropped — append-only writing means every earlier
    byte is intact, and framing after a damaged record cannot be
    trusted. The damaged tail is also truncated from the file on open so
    subsequent appends never graft onto a torn fragment. Later records
    win on duplicate keys (re-computation after LRU eviction supersedes
    the old record).

    {b Write-behind.} {!append} only enqueues; a dedicated flusher
    thread batches frames to the append-mode fd, so the engine's
    sequential drain phase never blocks on disk. {!flush} waits for the
    queue to empty (tests and compaction); {!close} drains and joins.

    {b Compaction.} {!compact} writes one record per live entry to
    [path ^ ".tmp"] and atomically renames it over the log, then reopens
    the append fd on the new inode — a reader or a crash sees either the
    old log or the new one, never a half-written file. *)

type t

type recovery = {
  entries : (string * Protocol.outcome) list;
      (** first-seen key order, later duplicates folded in *)
  records : int;  (** valid records read, before dedup *)
  dropped_records : int;  (** line-shaped fragments in the damaged tail *)
  dropped_bytes : int;
}

val open_ : path:string -> (t, string) result
(** Recover [path] (created if absent), truncate any damaged tail, and
    start the flusher thread. *)

val recovered : t -> recovery
(** What {!open_} found — feed [entries] to {!Cache.add} to warm-load. *)

val set_metrics : t -> Metrics.t -> unit
(** Attach an instrumentation sink (the engine wires its own registry at
    {!Engine.create}). Registers the recovery counters
    [store_records_loaded], [store_dropped_records] and
    [store_torn_tail_bytes] — {e only} the nonzero ones, so a cold fresh
    store leaves the deterministic counter set (and with it the golden
    [stats] line) untouched — and makes the flusher maintain the
    [store_queue_depth] gauge plus [store_flush_batch] /
    [store_append_seconds] histograms. None of these appear on any
    response path except the non-golden [metrics] dump, so
    instrumentation cannot perturb transcripts. *)

val append : t -> string -> Protocol.outcome -> unit
(** Enqueue one record for the flusher; never blocks on disk. Silently
    dropped after {!close} (shutdown races are benign: the store is a
    cache of recomputable plans, not a system of record). *)

val flush : t -> unit
(** Block until every enqueued record has been written to the fd. *)

val appended : t -> int
(** Records written by the flusher since {!open_}. *)

val compact : t -> (string * Protocol.outcome) list -> (unit, string) result
(** Atomically replace the log with exactly [entries] (e.g. from
    {!Cache.fold_entries}). Drains the queue first. *)

val close : t -> unit
(** Drain, join the flusher, close the fd. *)
