open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_dse
open Fusecu_util
module Partition = Fusecu_planner.Partition
module Pgroup = Fusecu_planner.Group
module Wgraph = Fusecu_workloads.Graph

type mapper = Mapper_principles | Mapper_bnb | Mapper_exhaustive | Mapper_anneal

let mapper_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "principles" -> Some Mapper_principles
  | "bnb" -> Some Mapper_bnb
  | "exhaustive" -> Some Mapper_exhaustive
  | "anneal" -> Some Mapper_anneal
  | _ -> None

let mapper_name = function
  | Mapper_principles -> "principles"
  | Mapper_bnb -> "bnb"
  | Mapper_exhaustive -> "exhaustive"
  | Mapper_anneal -> "anneal"

type config = {
  cache_enabled : bool;
  cache_entries : int;
  cache_shards : int;
  pool : Pool.t option;
  slow_log_ms : float option;
  mapper : mapper;
}

let default_cache_entries = 4096

let default_mapper = Mapper_bnb

let default_config () =
  let entries =
    match Sys.getenv_opt "FUSECU_CACHE_ENTRIES" with
    | Some s -> ( match int_of_string_opt s with Some n -> max 0 n | None -> default_cache_entries)
    | None -> default_cache_entries
  in
  let mapper =
    match Sys.getenv_opt "FUSECU_MAPPER" with
    | Some s -> ( match mapper_of_string s with Some m -> m | None -> default_mapper)
    | None -> default_mapper
  in
  { cache_enabled = entries > 0;
    cache_entries = entries;
    cache_shards = 8;
    pool = None;
    slow_log_ms = None;
    mapper }

type t = {
  config : config;
  cache : Protocol.outcome Cache.t;
  store : Store.t option;
  metrics : Metrics.t;
  ticks : int Atomic.t;
      (* logical clock: one tick per flushed batch and per control
         request — deterministic "uptime", unlike wall time *)
  seq : int Atomic.t;  (* next request sequence number, for log lines *)
}

let create ?metrics ?store config =
  let cache =
    Cache.create ~shards:config.cache_shards
      ~capacity:(if config.cache_enabled then config.cache_entries else 0)
      ()
  in
  (* Warm-load recovered plans straight into the cache. Only [add] is
     used (no [find]), so the hit/miss counters stay zero and the
     response stream is byte-identical to a cold start — warm state only
     changes which computes are skipped, and cache on/off is already
     proven response-invariant. *)
  (match store with
  | Some s when config.cache_enabled ->
    List.iter
      (fun (key, outcome) -> Cache.add cache key outcome)
      (Store.recovered s).Store.entries
  | _ -> ());
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  (match store with Some s -> Store.set_metrics s metrics | None -> ());
  { config; cache; store; metrics; ticks = Atomic.make 0; seq = Atomic.make 0 }

(* Persist a plan the moment it enters the cache: both sites run in the
   engine's sequential phases, and [Store.append] only enqueues for the
   write-behind flusher, so the hot path never touches disk. *)
let cache_insert t key outcome =
  Cache.add t.cache key outcome;
  match t.store with Some s -> Store.append s key outcome | None -> ()

let metrics t = t.metrics

let store t = t.store

let cache_snapshot t =
  Cache.fold_entries t.cache (fun k v acc -> (k, v) :: acc) []

let cache_stats t = Cache.stats t.cache

let uptime_ticks t = Atomic.get t.ticks

let tick t = ignore (Atomic.fetch_and_add t.ticks 1)

(* ------------------------------------------------------------------ *)
(* Planner dispatch                                                    *)

(* The refinement search space per quantization mode. [Exact] requests
   refine over the divisor lattice, not the full integer lattice: the
   hot path verifies the closed-form plan against the divisor-lattice
   optimum (the space the paper's DSE baselines search), because
   All-lattice search at paper-sized operators costs orders of
   magnitude more per cache miss. Full-integer-lattice agreement is
   enforced separately, on tractable sizes, by the oracle's
   [--mapper bnb] checks. *)
let refine_lattice = function
  | Mode.Exact | Mode.Divisors -> Space.Divisors
  | Mode.Pow2 -> Space.Pow2

let note_mapper_stats t (stats : Bnb.stats) =
  (* Histograms only: they surface in the [metrics] op and the
     Prometheus exporter but never in the golden-compared [stats]
     counters, so turning the mapper on cannot perturb fixture bytes. *)
  Metrics.observe t.metrics "mapper_nodes" (float_of_int stats.Bnb.nodes);
  Metrics.observe t.metrics "mapper_pruned"
    (float_of_int (stats.Bnb.pruned_bound + stats.Bnb.pruned_infeasible))

(* Verify-and-refine: run the configured search mapper seeded from the
   closed-form plan and adopt its schedule only on a strict traffic
   improvement. The principles are conjectured (and oracle-soaked) to be
   optimal, so the replacement — and the [mapper_improved] counter — is
   expected to never fire; when it does, the counter is the tripwire. *)
let refine_intra t ~mode buffer (plan : Intra.plan) =
  let searched =
    match t.config.mapper with
    | Mapper_principles -> None
    | Mapper_bnb ->
      let r, stats =
        Bnb.search_with_stats ~lattice:(refine_lattice mode)
          ~seed:plan.Intra.schedule plan.Intra.op buffer
      in
      note_mapper_stats t stats;
      r
    | Mapper_exhaustive ->
      Exhaustive.search ~lattice:(refine_lattice mode) ~pool:Pool.sequential
        plan.Intra.op buffer
    | Mapper_anneal ->
      Annealing.search ~lattice:(refine_lattice mode) plan.Intra.op buffer
  in
  match searched with
  | Some r when r.Exhaustive.cost.Cost.total < plan.Intra.cost.Cost.total ->
    Metrics.incr t.metrics "mapper_improved";
    { plan with
      schedule = r.Exhaustive.schedule;
      cost = r.Exhaustive.cost;
      dataflow = Nra.classify plan.Intra.op r.Exhaustive.schedule }
  | _ -> plan

let refine_fused t ~mode pair buffer ~fused ~traffic =
  let searched =
    match t.config.mapper with
    | Mapper_principles | Mapper_anneal -> None
    | Mapper_bnb ->
      let r, stats =
        Bnb.search_fused_with_stats ~lattice:(refine_lattice mode) ~seed:fused
          pair buffer
      in
      note_mapper_stats t stats;
      r
    | Mapper_exhaustive ->
      Fused_search.exhaustive ~lattice:(refine_lattice mode)
        ~pool:Pool.sequential pair buffer
  in
  match searched with
  | Some r when r.Fused_search.traffic < traffic ->
    Metrics.incr t.metrics "mapper_improved";
    (r.Fused_search.fused, r.Fused_search.traffic)
  | _ -> (fused, traffic)

let refine_chain t ~mode buffer (plan : Planner.plan) =
  match t.config.mapper with
  | Mapper_principles -> plan
  | _ ->
    let segments =
      List.map
        (function
          | Planner.Solo p -> Planner.Solo (refine_intra t ~mode buffer p)
          | Planner.Fused_pair { pair; pattern; fused; traffic } ->
            let fused, traffic =
              refine_fused t ~mode pair buffer ~fused ~traffic
            in
            Planner.Fused_pair { pair; pattern; fused; traffic })
        plan.Planner.segments
    in
    { Planner.segments;
      traffic = Arith.sum (List.map Planner.segment_traffic segments) }

let rec compute t (call : Protocol.call) :
    (Protocol.outcome, Protocol.error_code * string) result =
  match call with
  | Intra { op; buffer; mode } -> (
    match Intra.optimize ~mode op buffer with
    | Ok plan ->
      let plan = refine_intra t ~mode buffer plan in
      Ok (Protocol.R_intra (Protocol.intra_result_of_plan plan))
    | Error e -> Error (Protocol.Infeasible, e))
  | Fuse { op; l2; buffer; mode } -> (
    let op2 =
      Matmul.make ~name:"consumer" ~m:op.Matmul.m ~k:op.Matmul.l ~l:l2 ()
    in
    let pair = Fused.make_pair_exn op op2 in
    match Fusion.plan_pair ~mode pair buffer with
    | Error e -> Error (Protocol.Infeasible, e)
    | Ok (Fusion.Fuse { pattern; fused; traffic }) ->
      let fused, traffic = refine_fused t ~mode pair buffer ~fused ~traffic in
      Ok
        (Protocol.R_fuse
           (Protocol.Fused { pattern; nra = Fusion.fused_nra pair fused; traffic }))
    | Ok (Fusion.No_fuse { plan1; plan2; traffic; why }) ->
      let plan1 = refine_intra t ~mode buffer plan1 in
      let plan2 = refine_intra t ~mode buffer plan2 in
      let traffic = min traffic (Intra.ma plan1 + Intra.ma plan2) in
      Ok
        (Protocol.R_fuse
           (Protocol.Not_fused
              { why;
                traffic;
                producer = Nra.class_of plan1.Intra.dataflow;
                consumer = Nra.class_of plan2.Intra.dataflow })))
  | Regime { op; buffer } ->
    let regime = Regime.classify op buffer in
    Ok
      (Protocol.R_regime
         { regime;
           thresholds = Regime.thresholds op;
           classes = Regime.expected_classes regime })
  | Eval { model; buffer; elt_bytes; mode } -> (
    match Fusecu_workloads.Zoo.find model with
    | None ->
      Error
        ( Protocol.Unknown_model,
          Printf.sprintf "unknown model %S (try: %s)" model
            (String.concat ", "
               (List.map
                  (fun (m : Fusecu_workloads.Model.t) ->
                    String.lowercase_ascii m.name)
                  Fusecu_workloads.Zoo.all)) )
    | Some model ->
      let w = Fusecu_workloads.Workload.of_model model in
      (* one row per platform; the nested per-layer parallelism of
         eval_workload is forced sequential — the engine already runs
         whole requests on worker domains *)
      let rows =
        List.map
          (fun (p : Fusecu_arch.Platform.t) ->
            match
              Fusecu_arch.Perf.eval_workload ~mode ~elt_bytes
                ~pool:Pool.sequential p buffer w
            with
            | Ok e ->
              { Protocol.platform = p.name;
                cells =
                  Ok
                    { Protocol.traffic = e.traffic;
                      traffic_bytes = e.traffic_bytes;
                      macs = e.macs;
                      cycles = e.cycles;
                      utilization = e.utilization } }
            | Error e -> { Protocol.platform = p.name; cells = Error e })
          Fusecu_arch.Platform.all
      in
      Ok (Protocol.R_eval rows))
  | Chain { m; ks; buffer; mode } -> (
    let chain = Chain.of_dims ~name:"chain" ~m ks in
    match Multi_fusion.plan ~mode chain buffer with
    | Error e -> Error (Protocol.Infeasible, e)
    | Ok (Multi_fusion.Full_fusion { traffic; _ }) ->
      Ok
        (Protocol.R_chain
           (Protocol.Full_fusion
              { traffic; fused_bound = Chain.ideal_ma_fused chain }))
    | Ok (Multi_fusion.Fallback plan) ->
      let plan = refine_chain t ~mode buffer plan in
      let segments =
        List.map
          (function
            | Planner.Solo p -> Protocol.Solo_seg (Intra.ma p)
            | Planner.Fused_pair { pattern; traffic; _ } ->
              Protocol.Fused_seg (Fusion.pattern_name pattern, traffic))
          plan.Planner.segments
      in
      Ok
        (Protocol.R_chain
           (Protocol.Pairwise { traffic = plan.Planner.traffic; segments })))
  | Nest { kind; buffer; mode } -> (
    let nest =
      let module Lower = Fusecu_nest.Lower in
      match kind with
      | Protocol.N_matmul { m; k; l } ->
        Lower.of_matmul (Matmul.make ~name:"nest" ~m ~k ~l ())
      | Protocol.N_conv2d cv -> Lower.of_conv cv
      | Protocol.N_batched_mm { b; m; k; l } -> Lower.batched_mm ~b ~m ~k ~l ()
      | Protocol.N_grouped_mm { groups; heads; m; k; l } ->
        Lower.grouped_mm ~groups ~heads ~m ~k ~l ()
      | Protocol.N_attention { seq_q; seq_k; d; dv } ->
        Lower.attention_pair ~seq_q ~seq_k ~d ~dv ()
    in
    let lattice =
      match mode with
      | Mode.Exact -> Fusecu_nest.Search.All
      | Mode.Divisors -> Fusecu_nest.Search.Divisors
      | Mode.Pow2 -> Fusecu_nest.Search.Pow2
    in
    match Fusecu_dse.Nest_bnb.search ~lattice nest buffer with
    | None ->
      Error
        ( Protocol.Infeasible,
          Printf.sprintf
            "no feasible schedule: buffer (%d elements) cannot hold one tile \
             per tensor"
            (Buffer.elements buffer) )
    | Some r ->
      let module Nest = Fusecu_nest.Nest in
      let s = r.Fusecu_nest.Search.schedule in
      let axes = Array.to_list nest.Nest.axes in
      Ok
        (Protocol.R_nest
           { Protocol.n_axes = axes;
             n_extents = Array.to_list nest.Nest.extents;
             n_tiles = Array.to_list s.Nest.tiles;
             n_order =
               List.map (fun i -> nest.Nest.axes.(i)) (Array.to_list s.Nest.order);
             n_traffic = r.Fusecu_nest.Search.cost.Nest.total;
             n_ideal = Fusecu_nest.Bound.ideal nest;
             n_footprint = Nest.footprint nest s;
             n_points = Nest.points nest;
             n_evaluated = r.Fusecu_nest.Search.evaluated }))
  | Plan_model _ ->
    (* reachable only through direct [compute] callers (benchmarks);
       [run] intercepts plan_model before batching so the cache-backed
       variant below stays on the sequential path *)
    plan_model_impl t ~use_cache:false call

(* Whole-model partitioning. Each fusion group the partitioner probes
   becomes an ordinary [intra] (single operator) or [chain] (merged
   chain) sub-call, canonicalized and priced through the shared plan
   cache under that sub-call's own key — so a [plan_model] both reuses
   per-operator entries seeded by earlier point requests and leaves
   entries behind for later ones. Cache access stays on the caller's
   (sequential) thread, which keeps the stats counters deterministic.
   The response bytes are cache-independent: a hit returns exactly what
   [compute] would have produced, by verify-and-refine. *)
and plan_model_impl t ~use_cache (call : Protocol.call) :
    (Protocol.outcome, Protocol.error_code * string) result =
  match call with
  | Plan_model { model; layers; buffer; elt_bytes = _; mode } -> (
    match Fusecu_workloads.Zoo.find model with
    | None ->
      Error
        ( Protocol.Unknown_model,
          Printf.sprintf "unknown model %S (try: %s)" model
            (String.concat ", "
               (List.map
                  (fun (m : Fusecu_workloads.Model.t) ->
                    String.lowercase_ascii m.name)
                  Fusecu_workloads.Zoo.all)) )
    | Some m -> (
      let graph = Wgraph.stack (Wgraph.of_model m) ~layers in
      let evaluator chain =
        let ops = Chain.ops chain in
        let sub =
          match ops with
          | [ op ] -> Protocol.Intra { op; buffer; mode }
          | (first : Matmul.t) :: _ ->
            let ks =
              first.Matmul.k :: List.map (fun (o : Matmul.t) -> o.Matmul.l) ops
            in
            Protocol.Chain { m = first.Matmul.m; ks; buffer; mode }
          | [] -> assert false
        in
        let canonical, _ = Protocol.canonicalize sub in
        let key = Protocol.cache_key canonical in
        let cached = if use_cache then Cache.find t.cache key else None in
        let outcome =
          match cached with
          | Some outcome -> Ok outcome
          | None -> (
            match compute t canonical with
            | Ok outcome ->
              if use_cache then cache_insert t key outcome;
              Ok outcome
            | Error (_, msg) -> Error msg)
        in
        match outcome with
        | Error e -> Error e
        | Ok (Protocol.R_intra r) -> Ok r.Protocol.ma
        | Ok (Protocol.R_chain (Protocol.Full_fusion { traffic; _ }))
        | Ok (Protocol.R_chain (Protocol.Pairwise { traffic; _ })) ->
          Ok traffic
        | Ok _ -> Error "plan_model: unexpected sub-call outcome"
      in
      match Partition.plan ~evaluator graph buffer with
      | Error e -> Error (Protocol.Infeasible, e)
      | Ok p ->
        let s = p.Partition.stats in
        Metrics.observe t.metrics "planner_nodes"
          (float_of_int (s.Partition.dp_states + s.Partition.bnb_nodes));
        Metrics.observe t.metrics "planner_pruned"
          (float_of_int s.Partition.bnb_pruned);
        Metrics.observe t.metrics "planner_groups"
          (float_of_int (List.length p.Partition.groups));
        let name_of id = (Wgraph.find graph id).Wgraph.name in
        let plan_groups =
          List.map
            (fun (g : Partition.group) ->
              { Protocol.members =
                  List.map
                    (fun (n : Wgraph.node) -> n.Wgraph.name)
                    g.Partition.members;
                count = g.Partition.count;
                ops =
                  List.fold_left
                    (fun a n -> a + List.length (Pgroup.ops n))
                    0 g.Partition.members;
                group_traffic = g.Partition.traffic;
                group_hidden = g.Partition.hidden })
            p.Partition.groups
        in
        let fused_edges =
          List.map
            (fun (e : Partition.edge) ->
              Printf.sprintf "%s->%s" (name_of e.Partition.src)
                (name_of e.Partition.dst))
            p.Partition.selected
        in
        Ok
          (Protocol.R_plan_model
             { Protocol.nodes = List.length (Wgraph.nodes graph);
               plan_groups;
               fused_edges;
               traffic = p.Partition.traffic;
               hidden = p.Partition.hidden;
               effective = p.Partition.effective;
               unfused_traffic = p.Partition.unfused_traffic;
               unfused_effective = p.Partition.unfused_effective;
               candidate_edges = s.Partition.candidate_edges;
               components = s.Partition.components;
               dp_states = s.Partition.dp_states;
               bnb_nodes = s.Partition.bnb_nodes;
               bnb_pruned = s.Partition.bnb_pruned })))
  | _ -> Error (Protocol.Bad_request, "plan_model_impl: not a plan_model call")

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)

(* One request slot of a batch, filled over the flush phases. [tc] is
   the router-stamped trace context, echoed on the response line and
   attached to this request's spans so a merged fleet timeline can
   correlate backend work with the originating router span. *)
type slot =
  | Ready of string  (** response already determined (rejects) *)
  | Hit of {
      id : Json.t;
      tc : string option;
      call : Protocol.call;  (** original orientation, for the echo *)
      transform : Protocol.transform;
      outcome : Protocol.outcome;  (** canonical orientation *)
    }
  | Pending of {
      id : Json.t;
      tc : string option;
      call : Protocol.call;
      transform : Protocol.transform;
      work : int;  (** index into the batch's unique work list *)
    }

let tc_args = function
  | None -> []
  | Some t -> [ ("tc", Json.String t) ]

let slot_tc = function Ready _ -> None | Hit { tc; _ } | Pending { tc; _ } -> tc

let stats_result t =
  let st = Cache.stats t.cache in
  Json.Obj
    [ ( "cache",
        Json.Obj
          [ ("enabled", Json.Bool (Cache.capacity t.cache > 0));
            ("capacity", Json.Int (Cache.capacity t.cache));
            ("entries", Json.Int st.entries);
            ("shard_entries",
             Json.List
               (List.map (fun n -> Json.Int n) (Cache.shard_occupancy t.cache)));
            ("hits", Json.Int st.hits);
            ("misses", Json.Int st.misses);
            ("evictions", Json.Int st.evictions);
            ("coalesced", Json.Int (Metrics.get t.metrics "cache_coalesced"));
            ("hit_rate", Json.Float (Cache.hit_rate st)) ] );
      ("counters", Metrics.counters_json t.metrics);
      ("uptime_ticks", Json.Int (uptime_ticks t)) ]

(* Refresh point-in-time gauges, then render every metric family. Used
   by both the in-band [metrics] op and the [--metrics-addr] TCP
   exporter. *)
let metrics_result t =
  let st = Cache.stats t.cache in
  Metrics.set_gauge t.metrics "cache_entries" (float_of_int st.entries);
  Metrics.set_gauge t.metrics "uptime_ticks" (float_of_int (uptime_ticks t));
  Metrics.to_json t.metrics

let prometheus t =
  let st = Cache.stats t.cache in
  Metrics.set_gauge t.metrics "cache_entries" (float_of_int st.entries);
  Metrics.set_gauge t.metrics "uptime_ticks" (float_of_int (uptime_ticks t));
  Metrics.to_prometheus t.metrics

let flush t batch emit =
  match batch with
  | [] -> ()
  | batch ->
    let pool =
      match t.config.pool with Some p -> p | None -> Pool.get_global ()
    in
    Metrics.incr t.metrics "batches";
    (* Request-scoped ids: one trace id per batch, one sequence number
       per request. Both live only in traces and logs — never in the
       response stream — so determinism is untouched. *)
    let trace_id = Trace.new_trace_id () in
    let seq_base = Atomic.fetch_and_add t.seq (List.length batch) in
    Trace.with_span ~cat:"service"
      ~args:
        [ ("trace", Json.Int trace_id); ("batch", Json.Int (List.length batch)) ]
      "engine.flush"
    @@ fun () ->
    let cache_on = Cache.capacity t.cache > 0 in
    let work = ref [] and work_count = ref 0 in
    let pending_by_key = Hashtbl.create 16 in
    let enqueue canonical =
      let key = Protocol.cache_key canonical in
      match Hashtbl.find_opt pending_by_key key with
      | Some i when cache_on ->
        Metrics.incr t.metrics "cache_coalesced";
        i
      | _ ->
        let i = !work_count in
        work := canonical :: !work;
        incr work_count;
        if cache_on then Hashtbl.replace pending_by_key key i;
        i
    in
    (* phase 1: sequential lookup, request order *)
    let slots =
      List.map
        (fun item ->
          match item with
          | Error (reject : Protocol.reject) ->
            Metrics.incr t.metrics "rejects";
            Ready (Protocol.reject_response reject)
          | Ok (id, tc, call) ->
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics ("requests_" ^ Protocol.op_name call);
            Trace.with_span ~cat:"service"
              ~args:
                (("op", Json.String (Protocol.op_name call))
                :: ("trace", Json.Int trace_id)
                :: tc_args tc)
              "engine.cache"
            @@ fun () ->
            let canonical, transform = Protocol.canonicalize call in
            let cached =
              if cache_on then Cache.find t.cache (Protocol.cache_key canonical)
              else None
            in
            (match cached with
            | Some outcome -> Hit { id; tc; call; transform; outcome }
            | None ->
              Pending { id; tc; call; transform; work = enqueue canonical }))
        batch
    in
    (* phase 2: parallel compute of the deduplicated work list *)
    let work = Array.of_list (List.rev !work) in
    let results =
      Pool.parallel_map ~pool ~label:"engine.compute"
        (fun canonical ->
          let op = Protocol.op_name canonical in
          let t0 = Unix.gettimeofday () in
          let r =
            Trace.with_span ~cat:"evaluate"
              ~args:[ ("op", Json.String op); ("trace", Json.Int trace_id) ]
              "engine.compute"
              (fun () -> compute t canonical)
          in
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.observe t.metrics ("latency_" ^ op) dt;
          (match t.config.slow_log_ms with
          | Some ms when dt *. 1000. >= ms ->
            Log.warn
              ~fields:
                [ ("trace", Json.Int trace_id);
                  ("op", Json.String op);
                  ("key", Json.String (Protocol.cache_key canonical));
                  ("ms", Json.Float (dt *. 1000.)) ]
              "slow request"
          | _ -> ());
          r)
        work
    in
    (* phase 3: sequential drain — cache inserts then responses, in
       request order *)
    if cache_on then
      Array.iteri
        (fun i result ->
          match result with
          | Ok outcome -> cache_insert t (Protocol.cache_key work.(i)) outcome
          | Error _ -> ())
        results;
    let access_log = Log.enabled Log.Debug in
    List.iteri
      (fun idx slot ->
        Trace.with_span ~cat:"service"
          ~args:
            (("trace", Json.Int trace_id)
            :: ("seq", Json.Int (seq_base + idx))
            :: tc_args (slot_tc slot))
          "engine.respond"
        @@ fun () ->
        let line, kind, tc =
          match slot with
          | Ready line -> (line, "reject", None)
          | Hit { id; tc; call; transform; outcome } ->
            ( Protocol.response_ok ~id ~call
                (Protocol.apply_transform transform outcome),
              "hit", tc )
          | Pending { id; tc; call; transform; work = i } -> (
            match results.(i) with
            | Ok outcome ->
              ( Protocol.response_ok ~id ~call
                  (Protocol.apply_transform transform outcome),
                "computed", tc )
            | Error (code, message) ->
              Metrics.incr t.metrics "compute_errors";
              (Protocol.response_error ~id ~code ~message, "error", tc))
        in
        if access_log then
          Log.debug
            ~fields:
              [ ("trace", Json.Int trace_id);
                ("seq", Json.Int (seq_base + idx));
                ("kind", Json.String kind) ]
            "response";
        emit (Protocol.with_tc tc line))
      slots

type stop_reason = Drained | Shutdown

let run t ?(batch = 64) ~next ~emit () =
  let batch_size = max 1 batch in
  let pending = ref [] in
  let flush_pending () =
    flush t (List.rev !pending) emit;
    pending := []
  in
  let rec loop () =
    match next () with
    | None ->
      flush_pending ();
      Drained
    | Some line -> (
      if String.trim line = "" then loop ()
      else begin
        (* Parse first, then tick: every non-empty line still advances
           the logical clock exactly once — except a quiet metrics
           scrape, which by contract leaves all deterministic state
           untouched — so uptime stays invariant to batch size, domain
           count and cache settings. *)
        let parsed =
          Trace.with_span ~cat:"service" "engine.parse" (fun () ->
              Protocol.parse_line line)
        in
        match parsed with
        | Ok (id, tc, Protocol.Metrics_req { quiet = true }) ->
          (* out-of-band scrape (Prometheus exporter, fleet merge):
             still a batch barrier for snapshot ordering, but no tick
             and no counter movement, so scraping cannot perturb the
             golden counters *)
          flush_pending ();
          emit
            (Protocol.with_tc tc
               (Protocol.response_ok_json ~id ~op:"metrics"
                  ~result:(metrics_result t)));
          loop ()
        | _ -> (
          tick t;
          match parsed with
          | Ok (id, tc, Protocol.Stats) ->
            flush_pending ();
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics "requests_stats";
            emit
              (Protocol.with_tc tc
                 (Protocol.response_ok_json ~id ~op:"stats"
                    ~result:(stats_result t)));
            loop ()
          | Ok (id, tc, Protocol.Metrics_req _) ->
            flush_pending ();
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics "requests_metrics";
            emit
              (Protocol.with_tc tc
                 (Protocol.response_ok_json ~id ~op:"metrics"
                    ~result:(metrics_result t)));
            loop ()
          | Ok (id, tc, Protocol.Shutdown) ->
            flush_pending ();
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics "requests_shutdown";
            emit
              (Protocol.with_tc tc
                 (Protocol.response_ok_json ~id ~op:"shutdown"
                    ~result:(Json.Obj [ ("stopping", Json.Bool true) ])));
            Shutdown
          | Ok (id, tc, Protocol.Call (Protocol.Plan_model _ as call)) ->
            (* a batch barrier, like [stats]: the partitioner reads and
               seeds the plan cache, which must only happen sequentially
               for the counters to stay deterministic *)
            flush_pending ();
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics "requests_plan_model";
            let t0 = Unix.gettimeofday () in
            let outcome =
              plan_model_impl t ~use_cache:(Cache.capacity t.cache > 0) call
            in
            let dt = Unix.gettimeofday () -. t0 in
            Metrics.observe t.metrics "latency_plan_model" dt;
            (* structured slow-plan record with the per-group cost
               breakdown, so slow whole-model plans are diagnosable
               from logs alone (stderr only — never the response) *)
            (match (t.config.slow_log_ms, outcome, call) with
            | Some ms, Ok (Protocol.R_plan_model r), Protocol.Plan_model p
              when dt *. 1000. >= ms ->
              Log.warn
                ~fields:
                  (("op", Json.String "plan_model")
                  :: ("model", Json.String p.model)
                  :: ("layers", Json.Int p.layers)
                  :: ("ms", Json.Float (dt *. 1000.))
                  :: ("traffic", Json.Int r.Protocol.traffic)
                  :: ("hidden", Json.Int r.Protocol.hidden)
                  :: tc_args tc
                  @ [ ("groups",
                       Json.List
                         (List.map
                            (fun (g : Protocol.plan_group) ->
                              Json.Obj
                                [ ("members",
                                   Json.List
                                     (List.map
                                        (fun n -> Json.String n)
                                        g.Protocol.members));
                                  ("traffic", Json.Int g.Protocol.group_traffic);
                                  ("hidden", Json.Int g.Protocol.group_hidden) ])
                            r.Protocol.plan_groups)) ])
                "slow plan"
            | _ -> ());
            let line =
              match outcome with
              | Ok outcome -> Protocol.response_ok ~id ~call outcome
              | Error (code, message) ->
                Metrics.incr t.metrics "compute_errors";
                Protocol.response_error ~id ~code ~message
            in
            emit (Protocol.with_tc tc line);
            loop ()
          | Ok (id, tc, Protocol.Call call) ->
            pending := Ok (id, tc, call) :: !pending;
            if List.length !pending >= batch_size then flush_pending ();
            loop ()
          | Error reject ->
            pending := Error reject :: !pending;
            if List.length !pending >= batch_size then flush_pending ();
            loop ())
      end)
  in
  loop ()

let handle_lines t ?batch lines =
  let input = ref lines in
  let out = ref [] in
  let next () =
    match !input with
    | [] -> None
    | l :: rest ->
      input := rest;
      Some l
  in
  let emit line = out := line :: !out in
  ignore (run t ?batch ~next ~emit ());
  List.rev !out
