open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_util

type config = {
  cache_enabled : bool;
  cache_entries : int;
  cache_shards : int;
  pool : Pool.t option;
}

let default_cache_entries = 4096

let default_config () =
  let entries =
    match Sys.getenv_opt "FUSECU_CACHE_ENTRIES" with
    | Some s -> ( match int_of_string_opt s with Some n -> max 0 n | None -> default_cache_entries)
    | None -> default_cache_entries
  in
  { cache_enabled = entries > 0;
    cache_entries = entries;
    cache_shards = 8;
    pool = None }

type t = {
  config : config;
  cache : Protocol.outcome Cache.t;
  metrics : Metrics.t;
}

let create ?metrics config =
  { config;
    cache =
      Cache.create ~shards:config.cache_shards
        ~capacity:(if config.cache_enabled then config.cache_entries else 0)
        ();
    metrics = (match metrics with Some m -> m | None -> Metrics.create ()) }

let metrics t = t.metrics

let cache_stats t = Cache.stats t.cache

(* ------------------------------------------------------------------ *)
(* Planner dispatch                                                    *)

let compute t (call : Protocol.call) :
    (Protocol.outcome, Protocol.error_code * string) result =
  ignore t;
  match call with
  | Intra { op; buffer; mode } -> (
    match Intra.optimize ~mode op buffer with
    | Ok plan -> Ok (Protocol.R_intra (Protocol.intra_result_of_plan plan))
    | Error e -> Error (Protocol.Infeasible, e))
  | Fuse { op; l2; buffer; mode } -> (
    let op2 =
      Matmul.make ~name:"consumer" ~m:op.Matmul.m ~k:op.Matmul.l ~l:l2 ()
    in
    let pair = Fused.make_pair_exn op op2 in
    match Fusion.plan_pair ~mode pair buffer with
    | Error e -> Error (Protocol.Infeasible, e)
    | Ok (Fusion.Fuse { pattern; traffic; _ }) ->
      Ok (Protocol.R_fuse (Protocol.Fused { pattern; traffic }))
    | Ok (Fusion.No_fuse { plan1; plan2; traffic; why }) ->
      Ok
        (Protocol.R_fuse
           (Protocol.Not_fused
              { why;
                traffic;
                producer = Nra.class_of plan1.Intra.dataflow;
                consumer = Nra.class_of plan2.Intra.dataflow })))
  | Regime { op; buffer } ->
    let regime = Regime.classify op buffer in
    Ok
      (Protocol.R_regime
         { regime;
           thresholds = Regime.thresholds op;
           classes = Regime.expected_classes regime })
  | Eval { model; buffer; elt_bytes; mode } -> (
    match Fusecu_workloads.Zoo.find model with
    | None ->
      Error
        ( Protocol.Unknown_model,
          Printf.sprintf "unknown model %S (try: %s)" model
            (String.concat ", "
               (List.map
                  (fun (m : Fusecu_workloads.Model.t) ->
                    String.lowercase_ascii m.name)
                  Fusecu_workloads.Zoo.all)) )
    | Some model ->
      let w = Fusecu_workloads.Workload.of_model model in
      (* one row per platform; the nested per-layer parallelism of
         eval_workload is forced sequential — the engine already runs
         whole requests on worker domains *)
      let rows =
        List.map
          (fun (p : Fusecu_arch.Platform.t) ->
            match
              Fusecu_arch.Perf.eval_workload ~mode ~elt_bytes
                ~pool:Pool.sequential p buffer w
            with
            | Ok e ->
              { Protocol.platform = p.name;
                cells =
                  Ok
                    { Protocol.traffic = e.traffic;
                      traffic_bytes = e.traffic_bytes;
                      macs = e.macs;
                      cycles = e.cycles;
                      utilization = e.utilization } }
            | Error e -> { Protocol.platform = p.name; cells = Error e })
          Fusecu_arch.Platform.all
      in
      Ok (Protocol.R_eval rows))
  | Chain { m; ks; buffer; mode } -> (
    let chain = Chain.of_dims ~name:"chain" ~m ks in
    match Multi_fusion.plan ~mode chain buffer with
    | Error e -> Error (Protocol.Infeasible, e)
    | Ok (Multi_fusion.Full_fusion { traffic; _ }) ->
      Ok
        (Protocol.R_chain
           (Protocol.Full_fusion
              { traffic; fused_bound = Chain.ideal_ma_fused chain }))
    | Ok (Multi_fusion.Fallback plan) ->
      let segments =
        List.map
          (function
            | Planner.Solo p -> Protocol.Solo_seg (Intra.ma p)
            | Planner.Fused_pair { pattern; traffic; _ } ->
              Protocol.Fused_seg (Fusion.pattern_name pattern, traffic))
          plan.Planner.segments
      in
      Ok
        (Protocol.R_chain
           (Protocol.Pairwise { traffic = plan.Planner.traffic; segments })))

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)

(* One request slot of a batch, filled over the flush phases. *)
type slot =
  | Ready of string  (** response already determined (rejects) *)
  | Hit of {
      id : Json.t;
      call : Protocol.call;  (** original orientation, for the echo *)
      transform : Protocol.transform;
      outcome : Protocol.outcome;  (** canonical orientation *)
    }
  | Pending of {
      id : Json.t;
      call : Protocol.call;
      transform : Protocol.transform;
      work : int;  (** index into the batch's unique work list *)
    }

let stats_result t =
  let st = Cache.stats t.cache in
  Json.Obj
    [ ( "cache",
        Json.Obj
          [ ("enabled", Json.Bool (Cache.capacity t.cache > 0));
            ("capacity", Json.Int (Cache.capacity t.cache));
            ("entries", Json.Int st.entries);
            ("hits", Json.Int st.hits);
            ("misses", Json.Int st.misses);
            ("evictions", Json.Int st.evictions);
            ("coalesced", Json.Int (Metrics.get t.metrics "cache_coalesced"));
            ("hit_rate", Json.Float (Cache.hit_rate st)) ] );
      ("counters", Metrics.counters_json t.metrics) ]

let flush t batch emit =
  match batch with
  | [] -> ()
  | batch ->
    let pool =
      match t.config.pool with Some p -> p | None -> Pool.get_global ()
    in
    Metrics.incr t.metrics "batches";
    let cache_on = Cache.capacity t.cache > 0 in
    let work = ref [] and work_count = ref 0 in
    let pending_by_key = Hashtbl.create 16 in
    let enqueue canonical =
      let key = Protocol.cache_key canonical in
      match Hashtbl.find_opt pending_by_key key with
      | Some i when cache_on ->
        Metrics.incr t.metrics "cache_coalesced";
        i
      | _ ->
        let i = !work_count in
        work := canonical :: !work;
        incr work_count;
        if cache_on then Hashtbl.replace pending_by_key key i;
        i
    in
    (* phase 1: sequential lookup, request order *)
    let slots =
      List.map
        (fun item ->
          match item with
          | Error (reject : Protocol.reject) ->
            Metrics.incr t.metrics "rejects";
            Ready (Protocol.reject_response reject)
          | Ok (id, call) -> (
            Metrics.incr t.metrics "requests";
            Metrics.incr t.metrics ("requests_" ^ Protocol.op_name call);
            let canonical, transform = Protocol.canonicalize call in
            let cached =
              if cache_on then Cache.find t.cache (Protocol.cache_key canonical)
              else None
            in
            match cached with
            | Some outcome -> Hit { id; call; transform; outcome }
            | None -> Pending { id; call; transform; work = enqueue canonical }))
        batch
    in
    (* phase 2: parallel compute of the deduplicated work list *)
    let work = Array.of_list (List.rev !work) in
    let results =
      Pool.parallel_map ~pool
        (fun canonical ->
          let t0 = Unix.gettimeofday () in
          let r = compute t canonical in
          Metrics.observe t.metrics
            ("latency_" ^ Protocol.op_name canonical)
            (Unix.gettimeofday () -. t0);
          r)
        work
    in
    (* phase 3: sequential drain — cache inserts then responses, in
       request order *)
    if cache_on then
      Array.iteri
        (fun i result ->
          match result with
          | Ok outcome -> Cache.add t.cache (Protocol.cache_key work.(i)) outcome
          | Error _ -> ())
        results;
    List.iter
      (fun slot ->
        let line =
          match slot with
          | Ready line -> line
          | Hit { id; call; transform; outcome } ->
            Protocol.response_ok ~id ~call
              (Protocol.apply_transform transform outcome)
          | Pending { id; call; transform; work = i } -> (
            match results.(i) with
            | Ok outcome ->
              Protocol.response_ok ~id ~call
                (Protocol.apply_transform transform outcome)
            | Error (code, message) ->
              Metrics.incr t.metrics "compute_errors";
              Protocol.response_error ~id ~code ~message)
        in
        emit line)
      slots

type stop_reason = Drained | Shutdown

let run t ?(batch = 64) ~next ~emit () =
  let batch_size = max 1 batch in
  let pending = ref [] in
  let flush_pending () =
    flush t (List.rev !pending) emit;
    pending := []
  in
  let rec loop () =
    match next () with
    | None ->
      flush_pending ();
      Drained
    | Some line -> (
      if String.trim line = "" then loop ()
      else
        match Protocol.parse_line line with
        | Ok (id, Protocol.Stats) ->
          flush_pending ();
          Metrics.incr t.metrics "requests";
          Metrics.incr t.metrics "requests_stats";
          emit (Protocol.response_ok_json ~id ~op:"stats" ~result:(stats_result t));
          loop ()
        | Ok (id, Protocol.Shutdown) ->
          flush_pending ();
          Metrics.incr t.metrics "requests";
          Metrics.incr t.metrics "requests_shutdown";
          emit
            (Protocol.response_ok_json ~id ~op:"shutdown"
               ~result:(Json.Obj [ ("stopping", Json.Bool true) ]));
          Shutdown
        | Ok (id, Protocol.Call call) ->
          pending := Ok (id, call) :: !pending;
          if List.length !pending >= batch_size then flush_pending ();
          loop ()
        | Error reject ->
          pending := Error reject :: !pending;
          if List.length !pending >= batch_size then flush_pending ();
          loop ())
  in
  loop ()

let handle_lines t ?batch lines =
  let input = ref lines in
  let out = ref [] in
  let next () =
    match !input with
    | [] -> None
    | l :: rest ->
      input := rest;
      Some l
  in
  let emit line = out := line :: !out in
  ignore (run t ?batch ~next ~emit ());
  List.rev !out
