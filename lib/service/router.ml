module Hash = Fusecu_util.Hash
module Json = Fusecu_util.Json
module Log = Fusecu_util.Log
module Trace = Fusecu_util.Trace

(* The sharding front end: consistent-hashes each request's canonical
   cache key onto one of N backend sockets (each an ordinary
   [serve --socket] process), forwards the raw NDJSON line, and
   reassembles responses in request order.

   Determinism argument (DESIGN.md §9): a backend's response bytes for a
   call depend only on the call — canonicalization runs on every
   request, and cache state only decides whether a plan is recomputed,
   never what it is (the PR 2 invariant, re-proven per mapper in PR 6).
   Routing by canonical key keeps each key's traffic on one shard (so
   caches still deduplicate), and order reassembly makes the output
   stream a permutation-free merge: the transcript is byte-identical
   for every shard count, cold or warm. Control lines are the one
   exception — [stats]/[metrics] counters are per-process state, so
   they are fanned out to every backend and merged ({!Fleet}): counters
   sum, histograms add bucket-wise, and the fleet's [uptime_ticks] is
   the router's own request-line count (a pure function of client
   traffic — summed backend ticks would count each fan-out N times). A
   1-shard tier emits backend 0's control responses verbatim, so it
   reproduces the single-server transcript exactly, control lines
   included; cross-shard-count comparisons still exclude control lines
   because the counters themselves are shard-count dependent.

   Trace propagation: each routable call is stamped with a trace
   context ["r<trace>.<seq>"] (the ["tc"] envelope member, spliced
   textually — {!Protocol.with_tc} — so no other byte of the line can
   change). Backends echo it on their responses and attach it to their
   spans; the router strips the exact echo before emitting, so routed
   output stays byte-identical to unrouted output whether or not anyone
   is tracing. A client-supplied ["tc"] wins (first binding) and passes
   through untouched.

   Plumbing: one reader thread per backend pushes response lines into
   that backend's FIFO; the forwarding loop never waits for responses
   (a backend holds requests in a batch until it flushes, so
   stop-and-wait would deadlock against batching); an emitter thread
   pops (request order → backend) assignments and blocks on the right
   FIFO. Per-backend ordering is guaranteed by the server (responses in
   request order per connection), which is all the emitter needs. *)

type backend = {
  index : int;
  fd : Unix.file_descr;
  reader : Server.Line_reader.t;
  lines : string Queue.t;  (* response FIFO, reader thread -> emitter *)
  mutable closed : bool;  (* reader saw EOF/timeout; no more lines *)
  mutex : Mutex.t;
  cond : Condition.t;
}

type config = { idle_timeout : float; max_line : int; vnodes : int }

let default_config = { idle_timeout = 30.; max_line = 1 lsl 20; vnodes = 64 }

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                *)

(* Ring points are hashed from backend *indices*, not socket paths, so
   the ring — and therefore every key's placement — is a pure function
   of the shard count: stable across restarts and across machines. *)
let build_ring ~vnodes n =
  let points =
    Array.init (n * vnodes) (fun i ->
        let b = i / vnodes and v = i mod vnodes in
        (Hash.fnv1a64_positive (Printf.sprintf "backend-%d-vnode-%d" b v), b))
  in
  Array.sort compare points;
  points

let ring_lookup ring h =
  let n = Array.length ring in
  (* first point with hash >= h, wrapping to ring.(0) *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst ring.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  snd ring.(if i = n then 0 else i)

(* Where a raw request line goes. Calls route by canonical cache key —
   the same string that keys the plan cache and the store, so one key's
   repeats always land on the shard that cached it. Rejects route by the
   raw line (any backend computes identical reject bytes; hashing just
   spreads the load). [stats]/[metrics] fan out to every backend for the
   fleet merge; [shutdown] broadcasts so every backend stops. *)
type routing =
  | To of { backend : int; stamp : bool }  (** forward to one backend *)
  | Fanout of { op : string }  (** stats/metrics: ask everyone, merge *)
  | Broadcast  (** shutdown: every backend must stop *)

let route_line ring line =
  match Protocol.parse_line line with
  | Ok (_, _, Protocol.Call c) ->
    let canonical, _ = Protocol.canonicalize c in
    To
      { backend =
          ring_lookup ring (Hash.fnv1a64_positive (Protocol.cache_key canonical));
        stamp = true }
  | Ok (_, _, Protocol.Stats) -> Fanout { op = "stats" }
  | Ok (_, _, Protocol.Metrics_req _) -> Fanout { op = "metrics" }
  | Ok (_, _, Protocol.Shutdown) -> Broadcast
  | Error _ ->
    To { backend = ring_lookup ring (Hash.fnv1a64_positive line); stamp = false }

(* ------------------------------------------------------------------ *)
(* Backend plumbing                                                    *)

let connect_backend ~index path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    { index;
      fd;
      reader = Server.Line_reader.create fd;
      lines = Queue.create ();
      closed = false;
      mutex = Mutex.create ();
      cond = Condition.create () }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith
      (Printf.sprintf "route: cannot connect to backend %s: %s" path
         (Unix.error_message err))

let reader_loop ~stop ~config b () =
  let running = ref true in
  while !running do
    match
      Server.Line_reader.read ~stop ~idle_timeout:config.idle_timeout
        ~max_line:config.max_line b.reader
    with
    | Server.Line_reader.Line l ->
      Mutex.lock b.mutex;
      Queue.add l b.lines;
      Condition.signal b.cond;
      Mutex.unlock b.mutex
    | Eof | Timeout | Oversized | Stopped ->
      Mutex.lock b.mutex;
      b.closed <- true;
      Condition.broadcast b.cond;
      Mutex.unlock b.mutex;
      running := false
  done

(* Pop the next response from a backend; [None] when it closed without
   delivering one (death mid-request — the emitter substitutes an error
   line so the client still gets one response per request). *)
let pop_line b =
  Mutex.lock b.mutex;
  let rec go () =
    if not (Queue.is_empty b.lines) then Some (Queue.pop b.lines)
    else if b.closed then None
    else begin
      Condition.wait b.cond b.mutex;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock b.mutex;
  r

(* ------------------------------------------------------------------ *)
(* The front loop                                                      *)

type order_entry =
  | Expect of { backend : int; tc : string option }
      (** emit the next line from this backend, stripping the echoed
          trace context *)
  | Expect_fanout of { op : string; uptime : int }
      (** stats/metrics fan-out: pop one line from {e every} backend (in
          shard order) and emit the {!Fleet} merge; [uptime] is the
          router's line count at the moment the request was read *)
  | Expect_broadcast
      (** shutdown fan-out: emit backend 0's ack, discard the rest *)
  | Done

let run ?(config = default_config) ?metrics ~backends ~input ~output () =
  if backends = [] then invalid_arg "Router.run: no backends";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let bs = List.mapi (fun i path -> connect_backend ~index:i path) backends in
  let barr = Array.of_list bs in
  let n = Array.length barr in
  let ring = build_ring ~vnodes:config.vnodes n in
  let stop = Atomic.make false in
  let readers =
    Array.map (fun b -> Thread.create (reader_loop ~stop ~config b) ()) barr
  in
  (* Instrumentation: all optional, all off the response path, so routed
     bytes are invariant to whether a registry is attached. In-flight is
     tracked per backend (sends minus emitted responses). *)
  let mincr ?by name =
    match metrics with Some m -> Metrics.incr ?by m name | None -> ()
  in
  let mgauge name v =
    match metrics with Some m -> Metrics.set_gauge m name v | None -> ()
  in
  let inflight = Array.init n (fun _ -> Atomic.make 0) in
  let inflight_gauge = Array.init n (Printf.sprintf "router_inflight_shard_%d") in
  let note_sent i =
    let v = Atomic.fetch_and_add inflight.(i) 1 + 1 in
    mgauge inflight_gauge.(i) (float_of_int v)
  in
  let note_emitted i =
    let v = Atomic.fetch_and_add inflight.(i) (-1) - 1 in
    mgauge inflight_gauge.(i) (float_of_int v)
  in
  let order = Queue.create () in
  let omutex = Mutex.create () in
  let ocond = Condition.create () in
  let push_order e =
    Mutex.lock omutex;
    Queue.add e order;
    let depth = Queue.length order in
    Mutex.unlock omutex;
    Condition.signal ocond;
    mgauge "router_reassembly_depth" (float_of_int depth)
  in
  let backend_error b =
    Protocol.response_error ~id:Json.Null ~code:Protocol.Bad_request
      ~message:
        (Printf.sprintf "router: backend %d closed before responding" b)
  in
  (* One trace id per router run; each routed call gets "r<id>.<seq>". *)
  let trace_run = Trace.new_trace_id () in
  let lines_seen = ref 0 in
  let emit_line line =
    output_string output line;
    output_char output '\n';
    flush output
  in
  (* Pop one response from every backend, shard order. *)
  let pop_all () = Array.to_list (Array.map pop_line barr) in
  let merge_fanout ~op ~uptime =
    match pop_all () with
    | [ only ] ->
      (* 1-shard fleet: the single backend's control response verbatim,
         byte-identical to an unrouted server *)
      (match only with Some l -> l | None -> backend_error 0)
    | popped -> (
      let parse_result (i, l) =
        match l with
        | None -> Error (Printf.sprintf "backend %d closed" i)
        | Some l -> (
          match Json.parse l with
          | Error e -> Error (Printf.sprintf "backend %d: %s" i e)
          | Ok r -> (
            match (Json.member "id" r, Json.member "result" r) with
            | Some id, Some result -> Ok (id, result)
            | _ -> Error (Printf.sprintf "backend %d: not an ok response" i)))
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
          match parse_result x with
          | Ok r -> collect (r :: acc) rest
          | Error _ as e -> e)
      in
      match collect [] (List.mapi (fun i l -> (i, l)) popped) with
      | Error e ->
        mincr "router_backend_errors";
        Protocol.response_error ~id:Json.Null ~code:Protocol.Bad_request
          ~message:(Printf.sprintf "router: fleet %s merge failed: %s" op e)
      | Ok results -> (
        let id = match results with (id, _) :: _ -> id | [] -> Json.Null in
        let payloads = List.map snd results in
        let merged =
          if op = "stats" then Fleet.merge_stats ~uptime_ticks:uptime payloads
          else Fleet.merge_metrics ~uptime_ticks:uptime payloads
        in
        match merged with
        | Ok result -> Protocol.response_ok_json ~id ~op ~result
        | Error e ->
          mincr "router_backend_errors";
          Protocol.response_error ~id ~code:Protocol.Bad_request
            ~message:(Printf.sprintf "router: fleet %s merge failed: %s" op e)))
  in
  let emitter =
    Thread.create
      (fun () ->
        let running = ref true in
        while !running do
          Mutex.lock omutex;
          while Queue.is_empty order do
            Condition.wait ocond omutex
          done;
          let entry = Queue.pop order in
          let depth = Queue.length order in
          Mutex.unlock omutex;
          mgauge "router_reassembly_depth" (float_of_int depth);
          match entry with
          | Done -> running := false
          | Expect { backend = i; tc } ->
            Trace.with_span ~cat:"router"
              ~args:[ ("backend", Json.Int i) ]
              "router.reassemble"
            @@ fun () ->
            let line =
              match pop_line barr.(i) with
              | Some l -> (
                match tc with Some t -> Protocol.strip_tc ~tc:t l | None -> l)
              | None ->
                mincr "router_backend_errors";
                backend_error i
            in
            note_emitted i;
            emit_line line
          | Expect_fanout { op; uptime } ->
            Trace.with_span ~cat:"router"
              ~args:[ ("op", Json.String op) ]
              "router.reassemble"
            @@ fun () ->
            let line = merge_fanout ~op ~uptime in
            Array.iteri (fun i _ -> note_emitted i) barr;
            emit_line line
          | Expect_broadcast ->
            let line =
              match pop_line barr.(0) with
              | Some l -> l
              | None ->
                mincr "router_backend_errors";
                backend_error 0
            in
            (* the other backends' acks are intentionally left in their
               FIFOs: one request, one response line *)
            note_emitted 0;
            emit_line line
        done)
      ()
  in
  let send b line =
    try
      Server.write_all ~idle_timeout:config.idle_timeout b.fd (line ^ "\n");
      true
    with
    | Server.Write_stalled -> false
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      false
  in
  let bytes_counter = Array.init n (Printf.sprintf "router_routed_bytes_shard_%d") in
  let send_counted b line =
    (match metrics with
    | Some m ->
      let by = String.length line + 1 in
      Metrics.incr m ~by "router_routed_bytes";
      Metrics.incr m ~by bytes_counter.(b.index)
    | None -> ());
    note_sent b.index;
    ignore (send b line)
  in
  let shutting_down = ref false in
  (try
     while not !shutting_down do
       match In_channel.input_line input with
       | None -> shutting_down := true
       | Some line ->
         (* Blank lines produce no response from a backend (the engine
            skips them), so forwarding one would wedge the reassembly
            order — skip them here exactly as an unrouted server does. *)
         if String.trim line = "" then ()
         else begin
           incr lines_seen;
           mincr "router_requests";
           mgauge "router_lines_seen" (float_of_int !lines_seen);
           let seq = !lines_seen in
           Trace.with_span ~cat:"router"
             ~args:[ ("seq", Json.Int seq) ]
             "router.enqueue"
           @@ fun () ->
           match
             Trace.with_span ~cat:"router" "router.route" (fun () ->
                 route_line ring line)
           with
           | To { backend = i; stamp } ->
             let tc =
               if stamp then Some (Printf.sprintf "r%d.%d" trace_run seq)
               else None
             in
             send_counted barr.(i) (Protocol.with_tc tc line);
             push_order (Expect { backend = i; tc })
           | Fanout { op } ->
             mincr "router_fanouts";
             Array.iter (fun b -> send_counted b line) barr;
             push_order (Expect_fanout { op; uptime = !lines_seen })
           | Broadcast ->
             send_counted barr.(0) line;
             Array.iteri (fun i b -> if i > 0 then ignore (send b line)) barr;
             push_order Expect_broadcast;
             shutting_down := true
         end
     done
   with Sys_error _ -> ());
  (* Half-close every backend: the servers see EOF, flush their final
     partial batch, respond, and close — exactly the drain an ordinary
     client disconnect gets. *)
  Array.iter
    (fun b ->
      try Unix.shutdown b.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
    barr;
  push_order Done;
  Thread.join emitter;
  Atomic.set stop true;
  Array.iter Thread.join readers;
  Array.iter
    (fun b -> try Unix.close b.fd with Unix.Unix_error _ -> ())
    barr

(* ------------------------------------------------------------------ *)
(* Out-of-band scraping (Prometheus exporter)                          *)

(* A fresh connection per scrape, sending a *quiet* metrics request: the
   backend answers without ticking its logical clock or moving any
   counter, so an exporter polling concurrently with a golden replay
   cannot perturb a single deterministic byte. *)
let scrape_metrics ?(timeout = 5.) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (err, _, _) ->
        Error
          (Printf.sprintf "scrape %s: %s" path (Unix.error_message err))
      | () -> (
        match
          Server.write_all ~idle_timeout:timeout fd
            "{\"op\":\"metrics\",\"quiet\":true}\n"
        with
        | exception Server.Write_stalled -> Error ("scrape " ^ path ^ ": stalled")
        | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "scrape %s: %s" path (Unix.error_message err))
        | () -> (
          let reader = Server.Line_reader.create fd in
          match
            Server.Line_reader.read ~stop:(Atomic.make false)
              ~idle_timeout:timeout ~max_line:(1 lsl 22) reader
          with
          | Server.Line_reader.Line l -> (
            match Json.parse l with
            | Error e -> Error (Printf.sprintf "scrape %s: %s" path e)
            | Ok r -> (
              match Json.member "result" r with
              | Some result -> Ok result
              | None -> Error ("scrape " ^ path ^ ": no result payload")))
          | Eof | Timeout | Oversized | Stopped ->
            Error ("scrape " ^ path ^ ": no response"))))

let fleet_prometheus_render ?prefix ~metrics ~sockets () =
  let shard_dumps =
    List.map
      (fun path ->
        match scrape_metrics path with
        | Ok dump -> dump
        | Error e ->
          Metrics.incr metrics "router_scrape_errors";
          Log.warn ~fields:[ ("error", Json.String e) ] "fleet scrape failed";
          (* an unscrapeable shard contributes no series this pass *)
          Json.Obj [])
      sockets
  in
  match Fleet.fleet_prometheus ?prefix ~router:(Metrics.to_json metrics) shard_dumps with
  | Ok text -> text
  | Error e -> Printf.sprintf "# fleet exposition failed: %s\n" e

(* ------------------------------------------------------------------ *)
(* Spawning a local shard fleet                                        *)

(* Fork one [serve --socket] child per shard. Used by the [route]
   subcommand when the caller wants the router to own its backends
   rather than connect to externally-managed ones. The child re-execs
   nothing: it runs [Server.serve_socket] directly on a fresh engine in
   the forked image, so flags (mapper, cache size, store) are plain
   OCaml values. *)
type child = { pid : int; socket : string }

let wait_for_socket ?(timeout = 10.) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_SOCK -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let spawn_shard ?batch ?trace ~make_engine ~socket ~server_config i =
  (* don't let the child inherit (and re-flush at exit) buffered output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* child: serve until shutdown/SIGTERM, then exit — never return to
       the caller's code *)
    let status =
      try
        (* shard identity for merged stderr and (via the environment)
           any exec'd descendants *)
        Log.set_shard i;
        Unix.putenv "FUSECU_LOG_SHARD" (string_of_int i);
        (match trace with Some _ -> Trace.start () | None -> ());
        let engine : Engine.t = make_engine i in
        Server.serve_socket engine ?batch ~config:server_config ~path:socket ();
        (match Engine.store engine with
        | Some s -> Store.close s
        | None -> ());
        (match trace with
        | Some path ->
          Trace.export ~pid:(Unix.getpid ())
            ~process_name:(Printf.sprintf "shard-%d" i)
            path
        | None -> ());
        0
      with e ->
        prerr_endline ("route shard: " ^ Printexc.to_string e);
        1
    in
    Stdlib.exit status
  | pid -> { pid; socket }

let stop_children children =
  List.iter
    (fun c -> try Unix.kill c.pid Sys.sigterm with Unix.Unix_error _ -> ())
    children;
  List.iter
    (fun c ->
      try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ())
    children
