module Hash = Fusecu_util.Hash
module Json = Fusecu_util.Json
module Log = Fusecu_util.Log

(* The sharding front end: consistent-hashes each request's canonical
   cache key onto one of N backend sockets (each an ordinary
   [serve --socket] process), forwards the raw NDJSON line, and
   reassembles responses in request order.

   Determinism argument (DESIGN.md §9): a backend's response bytes for a
   call depend only on the call — canonicalization runs on every
   request, and cache state only decides whether a plan is recomputed,
   never what it is (the PR 2 invariant, re-proven per mapper in PR 6).
   Routing by canonical key keeps each key's traffic on one shard (so
   caches still deduplicate), and order reassembly makes the output
   stream a permutation-free merge: the transcript is byte-identical
   for every shard count, cold or warm. Control lines are the one
   exception — [stats]/[metrics] counters are per-process state, so
   they are pinned to backend 0 (a 1-shard tier reproduces the
   single-server transcript exactly, control lines included) and
   excluded from cross-shard-count comparisons.

   Plumbing: one reader thread per backend pushes response lines into
   that backend's FIFO; the forwarding loop never waits for responses
   (a backend holds requests in a batch until it flushes, so
   stop-and-wait would deadlock against batching); an emitter thread
   pops (request order → backend) assignments and blocks on the right
   FIFO. Per-backend ordering is guaranteed by the server (responses in
   request order per connection), which is all the emitter needs. *)

type backend = {
  index : int;
  fd : Unix.file_descr;
  reader : Server.Line_reader.t;
  lines : string Queue.t;  (* response FIFO, reader thread -> emitter *)
  mutable closed : bool;  (* reader saw EOF/timeout; no more lines *)
  mutex : Mutex.t;
  cond : Condition.t;
}

type config = { idle_timeout : float; max_line : int; vnodes : int }

let default_config = { idle_timeout = 30.; max_line = 1 lsl 20; vnodes = 64 }

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                *)

(* Ring points are hashed from backend *indices*, not socket paths, so
   the ring — and therefore every key's placement — is a pure function
   of the shard count: stable across restarts and across machines. *)
let build_ring ~vnodes n =
  let points =
    Array.init (n * vnodes) (fun i ->
        let b = i / vnodes and v = i mod vnodes in
        (Hash.fnv1a64_positive (Printf.sprintf "backend-%d-vnode-%d" b v), b))
  in
  Array.sort compare points;
  points

let ring_lookup ring h =
  let n = Array.length ring in
  (* first point with hash >= h, wrapping to ring.(0) *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst ring.(mid) < h then bsearch (mid + 1) hi else bsearch lo mid
  in
  let i = bsearch 0 n in
  snd ring.(if i = n then 0 else i)

(* Where a raw request line goes. Calls route by canonical cache key —
   the same string that keys the plan cache and the store, so one key's
   repeats always land on the shard that cached it. Rejects route by the
   raw line (any backend computes identical reject bytes; hashing just
   spreads the load). *)
type routing =
  | To of int  (** forward to one backend *)
  | Broadcast  (** shutdown: every backend must stop *)

let route_line ring line =
  match Protocol.parse_line line with
  | Ok (_, Protocol.Call c) ->
    let canonical, _ = Protocol.canonicalize c in
    To (ring_lookup ring (Hash.fnv1a64_positive (Protocol.cache_key canonical)))
  | Ok (_, (Protocol.Stats | Protocol.Metrics_req)) -> To 0
  | Ok (_, Protocol.Shutdown) -> Broadcast
  | Error _ -> To (ring_lookup ring (Hash.fnv1a64_positive line))

(* ------------------------------------------------------------------ *)
(* Backend plumbing                                                    *)

let connect_backend ~index path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    { index;
      fd;
      reader = Server.Line_reader.create fd;
      lines = Queue.create ();
      closed = false;
      mutex = Mutex.create ();
      cond = Condition.create () }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    failwith
      (Printf.sprintf "route: cannot connect to backend %s: %s" path
         (Unix.error_message err))

let reader_loop ~stop ~config b () =
  let running = ref true in
  while !running do
    match
      Server.Line_reader.read ~stop ~idle_timeout:config.idle_timeout
        ~max_line:config.max_line b.reader
    with
    | Server.Line_reader.Line l ->
      Mutex.lock b.mutex;
      Queue.add l b.lines;
      Condition.signal b.cond;
      Mutex.unlock b.mutex
    | Eof | Timeout | Oversized | Stopped ->
      Mutex.lock b.mutex;
      b.closed <- true;
      Condition.broadcast b.cond;
      Mutex.unlock b.mutex;
      running := false
  done

(* Pop the next response from a backend; [None] when it closed without
   delivering one (death mid-request — the emitter substitutes an error
   line so the client still gets one response per request). *)
let pop_line b =
  Mutex.lock b.mutex;
  let rec go () =
    if not (Queue.is_empty b.lines) then Some (Queue.pop b.lines)
    else if b.closed then None
    else begin
      Condition.wait b.cond b.mutex;
      go ()
    end
  in
  let r = go () in
  Mutex.unlock b.mutex;
  r

(* ------------------------------------------------------------------ *)
(* The front loop                                                      *)

type order_entry =
  | Expect of int  (** emit the next line from this backend *)
  | Expect_broadcast
      (** shutdown fan-out: emit backend 0's ack, discard the rest *)
  | Done

let run ?(config = default_config) ~backends ~input ~output () =
  if backends = [] then invalid_arg "Router.run: no backends";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let bs = List.mapi (fun i path -> connect_backend ~index:i path) backends in
  let barr = Array.of_list bs in
  let n = Array.length barr in
  let ring = build_ring ~vnodes:config.vnodes n in
  let stop = Atomic.make false in
  let readers =
    Array.map (fun b -> Thread.create (reader_loop ~stop ~config b) ()) barr
  in
  let order = Queue.create () in
  let omutex = Mutex.create () in
  let ocond = Condition.create () in
  let push_order e =
    Mutex.lock omutex;
    Queue.add e order;
    Condition.signal ocond;
    Mutex.unlock omutex
  in
  let backend_error b =
    Protocol.response_error ~id:Json.Null ~code:Protocol.Bad_request
      ~message:
        (Printf.sprintf "router: backend %d closed before responding" b)
  in
  let emitter =
    Thread.create
      (fun () ->
        let running = ref true in
        while !running do
          Mutex.lock omutex;
          while Queue.is_empty order do
            Condition.wait ocond omutex
          done;
          let entry = Queue.pop order in
          Mutex.unlock omutex;
          match entry with
          | Done -> running := false
          | Expect i ->
            let line =
              match pop_line barr.(i) with
              | Some l -> l
              | None -> backend_error i
            in
            output_string output line;
            output_char output '\n';
            flush output
          | Expect_broadcast ->
            let line =
              match pop_line barr.(0) with
              | Some l -> l
              | None -> backend_error 0
            in
            (* the other backends' acks are intentionally left in their
               FIFOs: one request, one response line *)
            output_string output line;
            output_char output '\n';
            flush output
        done)
      ()
  in
  let send b line =
    try
      Server.write_all ~idle_timeout:config.idle_timeout b.fd (line ^ "\n");
      true
    with
    | Server.Write_stalled -> false
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      false
  in
  let shutting_down = ref false in
  (try
     while not !shutting_down do
       match In_channel.input_line input with
       | None -> shutting_down := true
       | Some line -> (
         match route_line ring line with
         | To i ->
           if send barr.(i) line then push_order (Expect i)
           else push_order (Expect i) (* reader marks closed; emitter
                                         substitutes the error line *)
         | Broadcast ->
           Array.iter (fun b -> ignore (send b line)) barr;
           push_order Expect_broadcast;
           shutting_down := true)
     done
   with Sys_error _ -> ());
  (* Half-close every backend: the servers see EOF, flush their final
     partial batch, respond, and close — exactly the drain an ordinary
     client disconnect gets. *)
  Array.iter
    (fun b ->
      try Unix.shutdown b.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())
    barr;
  push_order Done;
  Thread.join emitter;
  Atomic.set stop true;
  Array.iter Thread.join readers;
  Array.iter
    (fun b -> try Unix.close b.fd with Unix.Unix_error _ -> ())
    barr

(* ------------------------------------------------------------------ *)
(* Spawning a local shard fleet                                        *)

(* Fork one [serve --socket] child per shard. Used by the [route]
   subcommand when the caller wants the router to own its backends
   rather than connect to externally-managed ones. The child re-execs
   nothing: it runs [Server.serve_socket] directly on a fresh engine in
   the forked image, so flags (mapper, cache size, store) are plain
   OCaml values. *)
type child = { pid : int; socket : string }

let wait_for_socket ?(timeout = 10.) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_SOCK -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let spawn_shard ?batch ~make_engine ~socket ~server_config i =
  (* don't let the child inherit (and re-flush at exit) buffered output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* child: serve until shutdown/SIGTERM, then exit — never return to
       the caller's code *)
    let status =
      try
        let engine : Engine.t = make_engine i in
        Server.serve_socket engine ?batch ~config:server_config ~path:socket ();
        (match Engine.store engine with
        | Some s -> Store.close s
        | None -> ());
        0
      with e ->
        prerr_endline ("route shard: " ^ Printexc.to_string e);
        1
    in
    Stdlib.exit status
  | pid -> { pid; socket }

let stop_children children =
  List.iter
    (fun c -> try Unix.kill c.pid Sys.sigterm with Unix.Unix_error _ -> ())
    children;
  List.iter
    (fun c ->
      try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ())
    children
