(** The batched planning executor behind the [serve] subcommand.

    The engine drains newline-delimited {!Protocol} requests, serves
    repeats out of the canonicalizing plan {!Cache}, fans uncached work
    across {!Fusecu_util.Pool} worker domains, and emits one response
    line per request {e in request order}, so the output stream is
    byte-deterministic regardless of [FUSECU_DOMAINS], batch size or
    cache configuration (see DESIGN.md §5 for why canonicalization
    preserves this).

    Batch lifecycle: requests accumulate until the batch is full, a
    control request ([stats] / [shutdown]) arrives, or the input ends;
    a flush then runs three phases —

    + {b lookup} (sequential, request order): canonicalize, probe the
      cache; misses are deduplicated into a unique work list (a repeat
      of an in-flight key {e coalesces} onto the first occurrence);
    + {b compute} (parallel): the unique work list runs on the pool via
      [parallel_map], which preserves ordering;
    + {b drain} (sequential, request order): successful outcomes are
      inserted into the cache, every outcome is mapped back through
      {!Protocol.apply_transform} and serialized.

    Because the cache is only touched in the sequential phases, its
    hit/miss/eviction counters — and therefore the [stats] response —
    are deterministic too. Control requests act as batch barriers, so a
    [stats] response reflects exactly the requests before it in the
    stream. *)

open Fusecu_util

(** Which search mapper backs uncached [intra] / [fuse] / [chain]
    computes. Every search mapper runs {e verify-and-refine}: the
    closed-form principle plan is built first, the mapper is seeded from
    it, and the searched schedule replaces the plan only on a strict
    traffic improvement — so on principle-optimal problems (all of them,
    per the conformance oracle) responses are byte-identical across
    mappers and the [mapper_improved] counter stays zero. *)
type mapper =
  | Mapper_principles  (** closed-form plan only, no search *)
  | Mapper_bnb
      (** exact branch-and-bound ({!Fusecu_dse.Bnb}) — the default;
          node/prune tallies land in the [mapper_nodes] /
          [mapper_pruned] histograms *)
  | Mapper_exhaustive  (** full enumeration ({!Fusecu_dse.Exhaustive}) *)
  | Mapper_anneal
      (** simulated annealing ({!Fusecu_dse.Annealing}); intra only —
          fused and chain sites fall back to the principle plan *)

val mapper_of_string : string -> mapper option
(** Parses ["principles" | "bnb" | "exhaustive" | "anneal"]
    (case-insensitively); [None] otherwise. *)

val mapper_name : mapper -> string

type config = {
  cache_enabled : bool;
  cache_entries : int;  (** total LRU capacity across shards *)
  cache_shards : int;
  pool : Pool.t option;  (** [None]: the process-global pool *)
  slow_log_ms : float option;
      (** when set, any single compute taking at least this many
          milliseconds emits a [Log.warn] record (op, cache key,
          duration, trace id). [None] disables the slow log. *)
  mapper : mapper;
}

val default_config : unit -> config
(** Cache on, capacity from [FUSECU_CACHE_ENTRIES] (default 4096,
    clamped to [>= 0]), 8 shards, global pool, slow log off, mapper from
    [FUSECU_MAPPER] (default [Mapper_bnb]; unrecognized values fall back
    to the default). *)

type t

val create : ?metrics:Metrics.t -> ?store:Store.t -> config -> t
(** When [store] is given and the cache is enabled, its recovered
    entries ({!Store.recovered}) warm-load the cache — via [add] only,
    so hit/miss counters start at zero and responses stay byte-identical
    to a cold start — and every plan inserted into the cache thereafter
    is also appended to the store (write-behind; the sequential drain
    phase never blocks on disk). The engine does not own the store's
    lifecycle: the caller closes it after the engine stops. *)

val store : t -> Store.t option

val cache_snapshot : t -> (string * Protocol.outcome) list
(** Consistent (key, outcome) image of the live cache
    ({!Cache.fold_entries}), for {!Store.compact}. *)

val metrics : t -> Metrics.t

val cache_stats : t -> Cache.stats

val uptime_ticks : t -> int
(** Logical uptime: the number of request lines this engine has seen
    (calls, rejects and control requests alike). Deterministic for a
    given request stream — invariant to batch size, domain count and
    cache settings — so safe to report in golden-compared [stats]
    responses, unlike wall-clock uptime. *)

val stats_result : t -> Json.t
(** The deterministic [stats] payload: cache counters (plus per-shard
    occupancy, hit rate and coalesced count), the metrics counters, and
    {!uptime_ticks}. *)

val metrics_result : t -> Json.t
(** The full (non-deterministic) [metrics] payload: refreshes the
    point-in-time gauges ([cache_entries], [uptime_ticks]) and returns
    {!Metrics.to_json} — counters, gauges and wall-clock latency
    histograms. *)

val prometheus : t -> string
(** Same snapshot as {!metrics_result}, rendered as Prometheus text
    exposition ({!Metrics.to_prometheus}). This is what the
    [--metrics-addr] TCP exporter serves. *)

val compute : t -> Protocol.call
  -> (Protocol.outcome, Protocol.error_code * string) result
(** Run one (already canonical) call against the planners. Exposed for
    the benchmark harness; normal traffic goes through {!run}. *)

type stop_reason =
  | Drained  (** [next] returned [None] (end of input) *)
  | Shutdown  (** an in-band [shutdown] request was served *)

val run :
  t ->
  ?batch:int ->
  next:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  stop_reason
(** Drain request lines from [next] (until it returns [None] or a
    [shutdown] request) and hand each response line to [emit]. [batch]
    (default 64, min 1) bounds how many requests a flush covers. The
    return value says {e why} the loop stopped, so transports can react
    to an in-band [shutdown] without re-parsing emitted responses. *)

val handle_lines : t -> ?batch:int -> string list -> string list
(** Convenience wrapper over {!run} for tests and fixture replay. *)
