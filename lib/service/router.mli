(** The sharding front end ([route] subcommand): consistent-hashes each
    request's canonical cache key onto one of N backend sockets (each an
    ordinary [serve --socket] server), forwards the raw NDJSON lines,
    and reassembles responses in request order.

    {b Determinism.} Response bytes for a call depend only on the call
    (canonicalization runs on every request; cache state decides whether
    a plan is recomputed, never what it is), so the reassembled
    transcript is byte-identical for every shard count and across
    cold/warm stores. [stats]/[metrics] are the exception — their
    counters are per-process — so they are pinned to backend 0: a
    1-shard tier reproduces the single-server transcript exactly,
    control lines included, and cross-shard-count comparisons exclude
    control lines. [shutdown] is broadcast to every backend; the client
    sees backend 0's (byte-identical) ack.

    {b Placement.} The ring hashes backend indices, not socket paths
    ({!Fusecu_util.Hash.fnv1a64_positive}, 64 virtual nodes per backend
    by default), so a key's shard is a pure function of the shard
    count — stable across restarts, which is what lets each shard's
    persistent store stay authoritative for its keys. *)

type config = {
  idle_timeout : float;
      (** per-backend read/write liveness bound, as in
          {!Server.socket_config} *)
  max_line : int;  (** longest accepted backend response line *)
  vnodes : int;  (** virtual nodes per backend on the hash ring *)
}

val default_config : config
(** 30 s, 1 MiB, 64 vnodes. *)

val run :
  ?config:config ->
  backends:string list ->
  input:in_channel ->
  output:out_channel ->
  unit ->
  unit
(** Connect to the backend sockets, then pump [input] to EOF (or an
    in-band [shutdown], which is broadcast): one response line per
    request line, in request order. A backend that dies mid-request
    yields a [bad_request] error line for each of its outstanding
    requests rather than wedging the stream. Raises [Failure] when a
    backend socket cannot be connected, [Invalid_argument] on an empty
    backend list. *)

(** {1 Spawning a local shard fleet} *)

type child = { pid : int; socket : string }

val wait_for_socket : ?timeout:float -> string -> bool
(** Poll until [path] exists as a socket (a forked shard has bound it)
    or the timeout elapses. *)

val spawn_shard :
  ?batch:int ->
  make_engine:(int -> Engine.t) ->
  socket:string ->
  server_config:Server.socket_config ->
  int ->
  child
(** Fork a shard process serving [socket]: the child builds its engine
    via [make_engine i] (shard index — e.g. to open a per-shard store),
    runs {!Server.serve_socket} until shutdown, closes the engine's
    store, and exits. *)

val stop_children : child list -> unit
(** SIGTERM then reap every child (each drains gracefully — PR 3's
    signal handling). *)
