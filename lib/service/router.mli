(** The sharding front end ([route] subcommand): consistent-hashes each
    request's canonical cache key onto one of N backend sockets (each an
    ordinary [serve --socket] server), forwards the raw NDJSON lines,
    and reassembles responses in request order.

    {b Determinism.} Response bytes for a call depend only on the call
    (canonicalization runs on every request; cache state decides whether
    a plan is recomputed, never what it is), so the reassembled
    transcript is byte-identical for every shard count and across
    cold/warm stores. [stats]/[metrics] are the exception — their
    counters are per-process — so they fan out to every backend and the
    router emits the {!Fleet} merge (counters summed, histograms
    bucket-wise, per-shard payloads under a ["shards"] key); a 1-shard
    tier passes the single backend's control responses through verbatim,
    reproducing the single-server transcript exactly, control lines
    included. The fleet's [uptime_ticks] is the router's own request-line
    count, a pure function of client traffic. Cross-shard-count
    comparisons still exclude control lines (counters are shard-count
    dependent). [shutdown] is broadcast to every backend; the client
    sees backend 0's (byte-identical) ack. Blank input lines are
    skipped, exactly as an unrouted server skips them.

    {b Trace propagation.} Each routable call is stamped with a trace
    context ["r<trace>.<seq>"] in the ["tc"] envelope member
    ({!Protocol.with_tc} — a textual splice, so no other byte changes).
    Backends attach it to their spans and echo it on responses; the
    router strips the exact echo before emitting. Routed output is
    therefore byte-identical whether or not tracing, logging or a
    metrics registry is enabled anywhere in the fleet.

    {b Placement.} The ring hashes backend indices, not socket paths
    ({!Fusecu_util.Hash.fnv1a64_positive}, 64 virtual nodes per backend
    by default), so a key's shard is a pure function of the shard
    count — stable across restarts, which is what lets each shard's
    persistent store stay authoritative for its keys. *)

type config = {
  idle_timeout : float;
      (** per-backend read/write liveness bound, as in
          {!Server.socket_config} *)
  max_line : int;  (** longest accepted backend response line *)
  vnodes : int;  (** virtual nodes per backend on the hash ring *)
}

val default_config : config
(** 30 s, 1 MiB, 64 vnodes. *)

val run :
  ?config:config ->
  ?metrics:Metrics.t ->
  backends:string list ->
  input:in_channel ->
  output:out_channel ->
  unit ->
  unit
(** Connect to the backend sockets, then pump [input] to EOF (or an
    in-band [shutdown], which is broadcast): one response line per
    request line, in request order. A backend that dies mid-request
    yields a [bad_request] error line for each of its outstanding
    requests rather than wedging the stream. When [metrics] is given the
    router maintains its own registry — [router_requests],
    [router_routed_bytes] (total and per shard), [router_fanouts],
    [router_backend_errors] counters; per-backend
    [router_inflight_shard_i] and [router_reassembly_depth] gauges —
    all off the response path. Raises [Failure] when a backend socket
    cannot be connected, [Invalid_argument] on an empty backend list. *)

(** {1 Out-of-band scraping} *)

val scrape_metrics : ?timeout:float -> string -> (Fusecu_util.Json.t, string) result
(** Open a fresh connection to a backend socket, send a {e quiet}
    metrics request ([{"op":"metrics","quiet":true}]) and return the
    dump payload. Quiet scrapes move no counter and no tick, so polling
    concurrently with a golden replay cannot perturb any deterministic
    byte. *)

val fleet_prometheus_render :
  ?prefix:string -> metrics:Metrics.t -> sockets:string list -> unit -> string
(** Render the fleet Prometheus exposition for the [--metrics-addr]
    exporter: scrape every backend ({!scrape_metrics}), merge with the
    router's own registry, label shard series with [{shard="i"}]
    ({!Fleet.fleet_prometheus}). A shard that fails to scrape
    contributes no series for that pass (and bumps
    [router_scrape_errors]); an unrenderable fleet yields a comment
    line, never an exception. *)

(** {1 Spawning a local shard fleet} *)

type child = { pid : int; socket : string }

val wait_for_socket : ?timeout:float -> string -> bool
(** Poll until [path] exists as a socket (a forked shard has bound it)
    or the timeout elapses. *)

val spawn_shard :
  ?batch:int ->
  ?trace:string ->
  make_engine:(int -> Engine.t) ->
  socket:string ->
  server_config:Server.socket_config ->
  int ->
  child
(** Fork a shard process serving [socket]: the child builds its engine
    via [make_engine i] (shard index — e.g. to open a per-shard store),
    runs {!Server.serve_socket} until shutdown, closes the engine's
    store, and exits. The child tags its log records with the shard
    index ({!Fusecu_util.Log.set_shard}; [FUSECU_LOG_SHARD] is exported
    for exec'd descendants). When [trace] names a file, the child
    collects spans for its whole life and exports them there as a
    Chrome trace on exit, under its real pid with a ["shard-i"] process
    lane — ready for {!Fusecu_util.Trace.merge_chrome}. *)

val stop_children : child list -> unit
(** SIGTERM then reap every child (each drains gracefully — PR 3's
    signal handling). *)
