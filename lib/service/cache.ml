type 'a entry = { value : 'a; mutable stamp : int }

type 'a shard = {
  mutex : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'a t = { shards : 'a shard array; per_shard : int; capacity : int }

let create ?(shards = 8) ~capacity () =
  if capacity < 0 then invalid_arg "Cache.create: capacity < 0";
  let shards = if capacity = 0 then 1 else max 1 (min shards capacity) in
  let per_shard = if capacity = 0 then 0 else (capacity + shards - 1) / shards in
  { shards =
      Array.init shards (fun _ ->
          { mutex = Mutex.create ();
            table = Hashtbl.create 64;
            tick = 0;
            hits = 0;
            misses = 0;
            evictions = 0 });
    per_shard;
    capacity }

let capacity t = t.capacity

(* Full-string FNV-1a: [Hashtbl.hash]'s bounded traversal ignores the
   tails of long canonical keys (chain/plan_model keys differing only in
   their last operators would pile onto one shard). The same hash routes
   keys across router backends and fingerprints store records, so shard
   placement, routing, and persistence all agree on one stable function. *)
let shard_of t key =
  t.shards.(Fusecu_util.Hash.fnv1a64_positive key mod Array.length t.shards)

let with_lock shard f =
  Mutex.lock shard.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock shard.mutex) f

let find t key =
  let s = shard_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table key with
      | Some e ->
        s.tick <- s.tick + 1;
        e.stamp <- s.tick;
        s.hits <- s.hits + 1;
        Some e.value
      | None ->
        s.misses <- s.misses + 1;
        None)

let evict_lru s =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      s.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove s.table k;
    s.evictions <- s.evictions + 1
  | None -> ()

let add t key value =
  if t.per_shard > 0 then
    let s = shard_of t key in
    with_lock s (fun () ->
        if (not (Hashtbl.mem s.table key)) && Hashtbl.length s.table >= t.per_shard
        then evict_lru s;
        s.tick <- s.tick + 1;
        Hashtbl.replace s.table key { value; stamp = s.tick })

type stats = { hits : int; misses : int; evictions : int; entries : int }

(* Snapshots hold every shard lock at once (acquired in index order, so
   two concurrent snapshots cannot deadlock) rather than folding shard by
   shard: locking one shard at a time lets an [add] land between reads
   and produce a torn view — e.g. [entries > capacity] or a miss counted
   without its insert — the same bug PR 3 fixed in [Metrics.to_json]. *)
let with_all_locked t f =
  Array.iter (fun s -> Mutex.lock s.mutex) t.shards;
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Mutex.unlock s.mutex) t.shards)
    f

let stats t =
  with_all_locked t (fun () ->
      Array.fold_left
        (fun acc (s : _ shard) ->
          { hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            entries = acc.entries + Hashtbl.length s.table })
        { hits = 0; misses = 0; evictions = 0; entries = 0 }
        t.shards)

let shard_occupancy t =
  with_all_locked t (fun () ->
      Array.to_list (Array.map (fun s -> Hashtbl.length s.table) t.shards))

let fold_entries t f init =
  with_all_locked t (fun () ->
      Array.fold_left
        (fun acc s -> Hashtbl.fold (fun k e acc -> f k e.value acc) s.table acc)
        init t.shards)

let hit_rate st =
  let lookups = st.hits + st.misses in
  if lookups = 0 then 0. else float_of_int st.hits /. float_of_int lookups
