(** Platform-level performance model.

    Every platform runs the same principle-based optimizer over its own
    restricted dataflow space ({!Mapping.admit}); the resulting traffic
    and mapping utilization feed a roofline: a segment's cycle count is
    the maximum of its compute time (peak MACs x mapping utilization)
    and its memory time (traffic / on-chip bandwidth). *)

open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_workloads

val serialization : float ref
(** Fraction of the shorter roofline phase (compute vs memory) that
    cannot hide behind the longer one: 0 = perfect double-buffered
    overlap, 1 = fully serialized. Default 0.5 (calibrated; see
    DESIGN.md). *)

val plan_op : ?mode:Mode.t -> Platform.t -> Buffer.t -> Matmul.t
  -> (Intra.plan, string) result
(** Best intra-operator plan within the platform's space (ranked by
    roofline cycles, then traffic). *)

(** One scheduled piece of work. *)
type segment = {
  label : string;
  count : int;  (** identical instances *)
  macs : int;  (** per instance *)
  traffic : int;  (** elements per instance *)
  util_map : float;  (** mapping utilization (spatial x temporal) *)
  cycles : int;  (** per instance, after the roofline *)
}

type eval = {
  platform : Platform.t;
  workload : Workload.t;
  segments : segment list;
  traffic : int;  (** total elements *)
  traffic_bytes : int;
  macs : int;
  cycles : int;
  utilization : float;  (** achieved MACs / (peak x cycles) *)
}

val eval_workload :
  ?mode:Mode.t -> ?elt_bytes:int -> ?pool:Fusecu_util.Pool.t -> Platform.t
  -> Buffer.t -> Workload.t -> (eval, string) result
(** Plan and cost a full workload: standalone operators through
    {!plan_op}; fusable chains through the fusion planner when the
    platform supports fusion, and operator-by-operator otherwise.
    Items (layers) are planned in parallel on the pool (default: the
    global pool); the result is independent of the domain count. *)

val ma_ratio : eval -> eval -> float
(** [ma_ratio a b] is [a.traffic / b.traffic] — memory access of [a]
    normalized to [b]. *)

val speedup : eval -> eval -> float
(** [speedup a b] is [b.cycles / a.cycles] — how much faster [a] is. *)

val pp : Format.formatter -> eval -> unit
