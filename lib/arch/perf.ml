open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_core
open Fusecu_workloads

(* Fraction of the shorter phase that cannot hide behind the longer
   one: 0 = perfect double-buffered overlap, 1 = fully serialized
   load/compute. Spatial accelerators with a single shared buffer port
   overlap imperfectly; 0.5 is the calibrated default (see DESIGN.md). *)
let serialization = ref 0.5

let roofline (p : Platform.t) ~elt_bytes ~macs ~traffic ~util_map =
  let peak = float_of_int (Platform.peak_macs_per_cycle p) in
  let compute = ceil (float_of_int macs /. (peak *. Float.max 1e-9 util_map)) in
  let memory =
    ceil (float_of_int (traffic * elt_bytes) /. float_of_int p.bw_bytes_per_cycle)
  in
  int_of_float
    (Float.max compute memory +. (!serialization *. Float.min compute memory))

(* Candidates are ranked by roofline cycles first, then traffic: when a
   segment is compute-bound, an array-friendly tiling with marginally
   more traffic beats a ragged traffic-optimal one; when memory-bound,
   traffic decides the cycles anyway. elt_bytes = 1 here matches the
   eval default; cycle ordering is insensitive to it in practice. *)
let rank_key (p : Platform.t) op (schedule : Schedule.t) =
  let cost = Cost.eval op schedule in
  let util_map = Mapping.solo_util p op schedule in
  let cycles =
    roofline p ~elt_bytes:1 ~macs:(Matmul.macs op) ~traffic:cost.Cost.total
      ~util_map
  in
  (cycles, cost.Cost.total, Schedule.footprint schedule)

let plan_op ?(mode = Mode.Exact) (p : Platform.t) buf op =
  let admit = Mapping.admit p op buf in
  let candidates =
    List.filter_map admit (Intra.candidates ~mode op buf)
    @ List.filter_map admit (Intra.candidates ~mode:Mode.Divisors op buf)
  in
  match candidates with
  | [] ->
    Error
      (Format.asprintf "%s cannot execute %a within %a" p.name Matmul.pp op
         Buffer.pp buf)
  | first :: rest ->
    let best =
      List.fold_left
        (fun best (c : Principles.candidate) ->
          if rank_key p op c.schedule < rank_key p op best.Principles.schedule then
            c
          else best)
        first rest
    in
    let schedule = best.Principles.schedule in
    Ok
      { Intra.op; schedule;
        cost = Cost.eval op schedule;
        dataflow = Nra.classify op schedule;
        regime = Regime.classify op buf }

type segment = {
  label : string;
  count : int;
  macs : int;
  traffic : int;
  util_map : float;
  cycles : int;
}

type eval = {
  platform : Platform.t;
  workload : Workload.t;
  segments : segment list;
  traffic : int;
  traffic_bytes : int;
  macs : int;
  cycles : int;
  utilization : float;
}

let solo_segment (p : Platform.t) ~elt_bytes ~count (plan : Intra.plan) =
  let macs = Matmul.macs plan.op in
  let traffic = Intra.ma plan in
  let util_map = Mapping.solo_util p plan.op plan.schedule in
  { label = plan.op.name; count; macs; traffic; util_map;
    cycles = roofline p ~elt_bytes ~macs ~traffic ~util_map }

let fused_segment (p : Platform.t) ~elt_bytes ~count (pair : Fused.pair) fused
    traffic =
  let macs = Matmul.macs pair.op1 + Matmul.macs pair.op2 in
  let util_map = Mapping.fused_util p pair fused in
  { label = Printf.sprintf "%s+%s" pair.op1.name pair.op2.name;
    count; macs; traffic; util_map;
    cycles = roofline p ~elt_bytes ~macs ~traffic ~util_map }

(* A fusable pair on a fusion-capable platform: compare the best fused
   dataflow against the two solo plans, both under the roofline, and
   keep whichever finishes sooner (ties to less traffic) — "the best
   dataflow within the supported space". Principle 4 gates which pairs
   are considered at all. *)
let plan_pair_segments ?mode (p : Platform.t) buf ~elt_bytes ~count pair =
  let solo () =
    match (plan_op ?mode p buf pair.Fused.op1, plan_op ?mode p buf pair.Fused.op2)
    with
    | Ok p1, Ok p2 ->
      Ok [ solo_segment p ~elt_bytes ~count p1; solo_segment p ~elt_bytes ~count p2 ]
    | Error e, _ | _, Error e -> Error e
  in
  if not p.fusion then solo ()
  else begin
    let profitable =
      match
        (Intra.optimize ?mode pair.Fused.op1 buf,
         Intra.optimize ?mode pair.Fused.op2 buf)
      with
      | Ok p1, Ok p2 ->
        Fusion.profitable (Nra.class_of p1.dataflow) (Nra.class_of p2.dataflow)
      | _ -> false
    in
    if not profitable then solo ()
    else begin
      let fused_candidates =
        List.map
          (fun (_, fused, traffic) ->
            fused_segment p ~elt_bytes ~count pair fused traffic)
          (Fusion.candidates ?mode pair buf)
      in
      let best_fused =
        List.fold_left
          (fun acc (s : segment) ->
            match acc with
            | Some (b : segment) when (b.cycles, b.traffic) <= (s.cycles, s.traffic)
              -> acc
            | _ -> Some s)
          None fused_candidates
      in
      match (best_fused, solo ()) with
      | None, solo_result -> solo_result
      | Some fused, Error _ -> Ok [ fused ]
      | Some fused, Ok solo_segments ->
        let total f = Fusecu_util.Arith.sum (List.map f solo_segments) in
        let solo_cycles = total (fun s -> s.cycles) in
        let solo_traffic = total (fun s -> s.traffic) in
        if (fused.cycles, fused.traffic) <= (solo_cycles, solo_traffic) then
          Ok [ fused ]
        else Ok solo_segments
    end
  end

let plan_chain_segments ?mode (p : Platform.t) buf ~elt_bytes ~count chain =
  match Chain.ops chain with
  | [ op1; op2 ] ->
    plan_pair_segments ?mode p buf ~elt_bytes ~count (Fused.make_pair_exn op1 op2)
  | ops ->
    (* longer chains: greedy pairwise left-to-right *)
    let rec loop acc = function
      | op1 :: op2 :: rest -> (
        match
          plan_pair_segments ?mode p buf ~elt_bytes ~count
            (Fused.make_pair_exn op1 op2)
        with
        | Ok segs -> loop (List.rev_append segs acc) rest
        | Error e -> Error e)
      | [ op ] -> (
        match plan_op ?mode p buf op with
        | Ok plan -> Ok (List.rev (solo_segment p ~elt_bytes ~count plan :: acc))
        | Error e -> Error e)
      | [] -> Ok (List.rev acc)
    in
    loop [] ops

let eval_workload ?mode ?(elt_bytes = 1) ?pool (p : Platform.t) buf workload =
  (* workload items (layers) are planned independently, one per pool
     chunk; the in-order combine below keeps the segment order and the
     first-error-wins behaviour of the sequential path *)
  let items = Array.of_list (Workload.items workload) in
  let planned =
    Fusecu_util.Pool.parallel_map ?pool
      (function
        | Workload.Single_op { op; count } ->
          Result.map
            (fun plan -> [ solo_segment p ~elt_bytes ~count plan ])
            (plan_op ?mode p buf op)
        | Workload.Fusable { chain; count } ->
          plan_chain_segments ?mode p buf ~elt_bytes ~count chain)
      items
  in
  let combined =
    Array.fold_left
      (fun acc item ->
        match (acc, item) with
        | Error _, _ -> acc
        | Ok acc, Ok segments -> Ok (List.rev_append segments acc)
        | Ok _, Error e -> Error e)
      (Ok []) planned
  in
  match Result.map List.rev combined with
  | Error e -> Error e
  | Ok segments ->
    let total f = Fusecu_util.Arith.sum (List.map f segments) in
    let traffic = total (fun s -> s.traffic * s.count) in
    let macs = total (fun s -> s.macs * s.count) in
    let cycles = total (fun s -> s.cycles * s.count) in
    let peak = float_of_int (Platform.peak_macs_per_cycle p) in
    Ok
      { platform = p; workload; segments; traffic;
        traffic_bytes = traffic * elt_bytes; macs; cycles;
        utilization = float_of_int macs /. (peak *. float_of_int (max 1 cycles)) }

let ma_ratio a b = float_of_int a.traffic /. float_of_int b.traffic

let speedup a b = float_of_int b.cycles /. float_of_int a.cycles

let pp fmt e =
  Format.fprintf fmt
    "@[<v>%s on %s: traffic=%s macs=%s cycles=%s utilization=%s@]"
    e.workload.Workload.name e.platform.Platform.name
    (Fusecu_util.Units.pp_count e.traffic)
    (Fusecu_util.Units.pp_count e.macs)
    (Fusecu_util.Units.pp_count e.cycles)
    (Fusecu_util.Units.pp_pct e.utilization)
