type t = {
  name : string;
  n : int;
  c : int;
  h : int;
  w : int;
  k : int;
  r : int;
  s : int;
  stride : int;
  padding : int;
  dilation : int;
}

let effective_r t = ((t.r - 1) * t.dilation) + 1

let effective_s t = ((t.s - 1) * t.dilation) + 1

let output_height t = ((t.h + (2 * t.padding) - effective_r t) / t.stride) + 1

let output_width t = ((t.w + (2 * t.padding) - effective_s t) / t.stride) + 1

let validate ?(name = "conv") ?(stride = 1) ?(padding = 0) ?(dilation = 1) ~n
    ~c ~h ~w ~k ~r ~s () =
  if n < 1 || c < 1 || h < 1 || w < 1 || k < 1 || r < 1 || s < 1 then
    Error "extents must be >= 1"
  else if stride < 1 then Error "stride must be >= 1"
  else if padding < 0 then Error "padding must be >= 0"
  else if dilation < 1 then Error "dilation must be >= 1"
  else begin
    let t = { name; n; c; h; w; k; r; s; stride; padding; dilation } in
    (* OCaml integer division truncates toward zero, so a dilated
       kernel overflowing the padded input would silently yield
       output_height = (negative)/stride + 1 = 1 for small overflows
       instead of going non-positive — check the span, not the
       quotient. *)
    if effective_r t > h + (2 * padding) || effective_s t > w + (2 * padding)
    then Error "kernel larger than the padded input"
    else if output_height t < 1 || output_width t < 1 then
      Error "output has no positions"
    else Ok t
  end

let make ?name ?stride ?padding ?dilation ~n ~c ~h ~w ~k ~r ~s () =
  match validate ?name ?stride ?padding ?dilation ~n ~c ~h ~w ~k ~r ~s () with
  | Ok t -> t
  | Error e -> invalid_arg ("Conv.make: " ^ e)

let to_matmul t =
  Matmul.make ~name:(t.name ^ ".im2col")
    ~m:(t.n * output_height t * output_width t)
    ~k:(t.c * t.r * t.s)
    ~l:t.k ()

let macs t = Matmul.macs (to_matmul t)

let input_elements t = t.n * t.c * t.h * t.w

let im2col_inflation t =
  let lowered = t.n * output_height t * output_width t * (t.c * t.r * t.s) in
  float_of_int lowered /. float_of_int (input_elements t)

let pp fmt t =
  Format.fprintf fmt "%s: n=%d c=%d %dx%d -> k=%d %dx%d kernel stride=%d pad=%d"
    t.name t.n t.c t.h t.w t.k t.r t.s t.stride t.padding;
  if t.dilation <> 1 then Format.fprintf fmt " dil=%d" t.dilation
