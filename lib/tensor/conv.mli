(** 2-D convolution as a tensor operator.

    The paper notes that "Principle 1-4 can be extended to other tensor
    operators, as all tensor operators can be represented as for-loops".
    The standard route for convolution is the im2col lowering: a
    convolution with [n] images, [c] input channels, [k] output
    channels, [r x s] kernels and [p x q] output positions is exactly
    the matmul

    {v  A(n*p*q, c*r*s) x B(c*r*s, k) = C(n*p*q, k)  v}

    whose memory behaviour the principles then optimize directly. The
    lowering inflates the input tensor by the kernel overlap factor;
    {!im2col_inflation} quantifies it so users can account for it when
    comparing against direct convolution dataflows. *)

type t = private {
  name : string;
  n : int;  (** batch *)
  c : int;  (** input channels *)
  h : int;  (** input height *)
  w : int;  (** input width *)
  k : int;  (** output channels *)
  r : int;  (** kernel height *)
  s : int;  (** kernel width *)
  stride : int;
  padding : int;
  dilation : int;
}

val validate : ?name:string -> ?stride:int -> ?padding:int -> ?dilation:int ->
  n:int -> c:int -> h:int -> w:int -> k:int -> r:int -> s:int -> unit ->
  (t, string) result
(** All extents [>= 1]; [stride >= 1]; [padding >= 0]; [dilation >= 1];
    the dilated kernel span [(r-1)*dilation + 1] must fit inside the
    padded input and both output extents must be [>= 1]. The span check
    is explicit because OCaml's truncating division would otherwise
    round a slightly-too-large kernel to a bogus 1-position output
    instead of a non-positive one. *)

val make : ?name:string -> ?stride:int -> ?padding:int -> ?dilation:int ->
  n:int -> c:int -> h:int -> w:int -> k:int -> r:int -> s:int -> unit -> t
(** {!validate}, raising [Invalid_argument] on [Error]. *)

val effective_r : t -> int
(** Dilated kernel height span [(r-1)*dilation + 1]. *)

val effective_s : t -> int

val output_height : t -> int

val output_width : t -> int

val to_matmul : t -> Matmul.t
(** The im2col-lowered matmul. *)

val macs : t -> int
(** MAC count of the convolution — equal to the lowered matmul's. *)

val input_elements : t -> int
(** Elements of the original (un-inflated) input activation tensor. *)

val im2col_inflation : t -> float
(** Ratio of the lowered [A] matrix size to the original input tensor
    size ([>= 1]); 1.0 for 1x1 kernels at stride 1. *)

val pp : Format.formatter -> t -> unit
