(** Communication lower bounds the principles target, and redundancy
    metrics relative to them. *)

open Fusecu_tensor
open Fusecu_loopnest

val intra : Matmul.t -> int
(** Unbounded-buffer lower bound for a single operator: every tensor
    accessed once ([MK + KL + ML]). *)

val chain_unfused : Chain.t -> int
(** Lower bound when every operator in a chain runs separately. *)

val chain_fused : Chain.t -> int
(** Lower bound when every intermediate stays on-chip. *)

val nest_ideal : Fusecu_nest.Nest.t -> int
(** Unbounded-buffer bound of a projective nest: external tensors
    accessed once, internals free. Reduces to {!intra} on
    [Lower.of_matmul] and to {!chain_fused} on [Lower.of_chain]. *)

val achieved : Matmul.t -> Buffer.t -> Mode.t -> int
(** Traffic of the principle-optimized intra dataflow — the paper's
    claimed buffer-constrained communication lower bound. Raises on an
    infeasible buffer. *)

val redundancy : Matmul.t -> Buffer.t -> Mode.t -> float
(** [achieved / intra]: 1.0 when the unbounded bound is met. *)
