(** Inter-operator dataflow: fusibility, profitability (Principle 4) and
    one-shot construction of the profitable fused dataflows of Fig. 4.

    A fused pair [A x B = C; C x D = E] keeps [C] entirely on-chip. The
    paper shows fusion is {e fusible} whenever the intermediate avoids
    redundant access in both operators, and {e profitable} exactly when
    both operators run the same NRA class. *)

open Fusecu_loopnest

(** The profitable fused-dataflow patterns (green arrows of Fig. 4). *)
type pattern =
  | P_single_os_is
      (** (a): both Single-NRA; producer output-stationary, consumer
          input-stationary; shared stationary tile of [C]. *)
  | P_two_os_is
      (** (b): both Two-NRA; producer untiles its reduction dim [K1],
          consumer untiles its output dim [L2]; [C] moves as a
          column-like tile (one dim maximized, the other 1). *)
  | P_two_untile_shared
      (** (c): both Two-NRA; the shared dimension [L1 = K2] is untiled
          on both sides. *)
  | P_three_untile_m
      (** (d), variant 1: both Three-NRA; [M] untiled on both sides
          ([C] streams column by column). *)
  | P_three_untile_shared
      (** (d), variant 2: both Three-NRA; the shared dim [L1 = K2]
          untiled on both sides. *)
  | P_three_resident
      (** (e): both Three-NRA; the whole of [C] stays on-chip. *)
  | P_block
      (** Generalized C-stationary block family: shared [C] tile
          [(t_m, t_l)] with [t_m] swept trip-aligned and [t_l]
          maximized, producer [K] / consumer [L] tiles in
          [{minimal, untiled}], all order pairs. Subsumes the six named
          patterns and is complete over the valid fused-pair space, so
          [Best_of_both] matches exhaustive search exactly (the named
          builders alone miss mixed-class optima on ragged sizes —
          found by the differential oracle, see DESIGN.md Sec. 7c). *)

val all_patterns : pattern list

val pattern_class : pattern -> Nra.t option
(** The NRA class a named paper pattern belongs to; [None] for
    {!P_block}, whose class depends on the tile sizes chosen (use
    {!fused_nra} on a concrete fused dataflow instead). *)

val fused_nra : Fused.pair -> Fused.t -> Nra.t
(** The NRA class a concrete fused dataflow achieves: the weaker of the
    two sides' classes, recovered from the actual schedules. *)

val pattern_name : pattern -> string

val pp_pattern : Format.formatter -> pattern -> unit

val profitable : Nra.t -> Nra.t -> bool
(** Principle 4: fusion is profitable iff the classes are equal. *)

val candidates : ?mode:Mode.t -> ?patterns:pattern list -> Fused.pair -> Buffer.t
  -> (pattern * Fused.t * int) list
(** Build, validate and cost every feasible fused dataflow from the
    requested patterns (default: all); each entry carries its memory
    traffic. Candidates that fail {!Fused.eval} are dropped. *)

(** The outcome of planning a candidate fusion site. *)
type decision =
  | Fuse of { pattern : pattern; fused : Fused.t; traffic : int }
  | No_fuse of { plan1 : Intra.plan; plan2 : Intra.plan; traffic : int; why : string }

val traffic_of_decision : decision -> int

type strategy =
  | By_principle
      (** Apply Principle 4: fuse only when the two operators' intra
          NRA classes agree (using patterns of that class); otherwise
          run unfused. *)
  | Best_of_both
      (** Oracle: evaluate every fused candidate and the unfused
          schedule, return whichever moves less data. Used to validate
          Principle 4. *)

val plan_pair : ?mode:Mode.t -> ?strategy:strategy -> Fused.pair -> Buffer.t
  -> (decision, string) result
(** Decide whether (and how) to fuse a pair. [strategy] defaults to
    [By_principle]. [Error] only when even unfused intra optimization is
    infeasible. *)

val pp_decision : Format.formatter -> decision -> unit
