open Fusecu_tensor
open Fusecu_loopnest

let bprintf = Printf.bprintf

let principle_for = function
  | Nra.Single -> "Principle 1: maximize the stationary tensor's tile dims"
  | Nra.Two -> "Principle 2: untile the smallest dimension"
  | Nra.Three -> "Principle 3: keep the smallest tensor resident"

let intra ?(mode = Mode.Exact) op buf =
  match Intra.optimize ~mode op buf with
  | Error e -> Error e
  | Ok plan ->
    let b = Stdlib.Buffer.create 512 in
    let th = Regime.thresholds op in
    bprintf b "operator %s\n" (Matmul.to_string op);
    let _, dmin = Matmul.min_dim op in
    let min_op, tensor_min = Matmul.min_operand op in
    bprintf b "smallest dimension Dmin = %d; smallest tensor %s = %d elements\n"
      dmin (Operand.to_string min_op) tensor_min;
    bprintf b
      "regime thresholds: Dmin^2/4 = %d | Dmin^2/2 = %d | FP3min-1 = %d\n"
      th.tiny_max th.small_max th.medium_max;
    bprintf b "buffer holds %d elements -> %s regime -> %s expected\n"
      (Buffer.elements buf)
      (Regime.to_string plan.regime)
      (String.concat " or "
         (List.map Nra.to_string (Regime.expected_classes plan.regime)));
    bprintf b "%s\n" (principle_for (Nra.class_of plan.dataflow));
    bprintf b "chosen: %s with schedule %s\n"
      (Nra.dataflow_to_string plan.dataflow)
      (Schedule.to_string plan.schedule);
    bprintf b "memory access %s (lower bound %s, redundancy %.2fx)\n"
      (Fusecu_util.Units.pp_count (Intra.ma plan))
      (Fusecu_util.Units.pp_count (Matmul.ideal_ma op))
      (Intra.redundancy plan);
    bprintf b "%s" (Movement.describe op plan.schedule);
    (* best candidate of each family for contrast *)
    let families = Hashtbl.create 4 in
    List.iter
      (fun (c : Principles.candidate) ->
        (* group by what the schedule actually does (an intent can
           degenerate, e.g. Single with a full tile behaves as Three) *)
        let cls = Nra.class_of (Nra.classify op c.schedule) in
        let total = (Cost.eval op c.schedule).Cost.total in
        match Hashtbl.find_opt families cls with
        | Some (best, _) when best <= total -> ()
        | _ -> Hashtbl.replace families cls (total, c.schedule))
      (Intra.candidates ~mode op buf);
    bprintf b "family comparison:\n";
    List.iter
      (fun cls ->
        match Hashtbl.find_opt families cls with
        | None -> bprintf b "  %-10s infeasible in this buffer\n" (Nra.to_string cls)
        | Some (total, schedule) ->
          bprintf b "  %-10s MA %-10s %s\n" (Nra.to_string cls)
            (Fusecu_util.Units.pp_count total)
            (Schedule.to_string schedule))
      Nra.all;
    Ok (Stdlib.Buffer.contents b)

let fusion ?(mode = Mode.Exact) (pair : Fused.pair) buf =
  match
    (Intra.optimize ~mode pair.op1 buf, Intra.optimize ~mode pair.op2 buf)
  with
  | Error e, _ | _, Error e -> Error e
  | Ok p1, Ok p2 -> (
    let b = Stdlib.Buffer.create 512 in
    let c1 = Nra.class_of p1.dataflow and c2 = Nra.class_of p2.dataflow in
    bprintf b "producer %s runs %s; consumer %s runs %s\n"
      pair.op1.Matmul.name (Nra.to_string c1) pair.op2.Matmul.name
      (Nra.to_string c2);
    bprintf b "Principle 4: fusion is %s (classes %s)\n"
      (if Fusion.profitable c1 c2 then "profitable" else "not profitable")
      (if Nra.equal c1 c2 then "match" else "differ");
    match Fusion.plan_pair ~mode pair buf with
    | Error e -> Error e
    | Ok (Fusion.No_fuse { traffic; why; _ }) ->
      bprintf b "decision: run unfused (%s), total traffic %s\n" why
        (Fusecu_util.Units.pp_count traffic);
      Ok (Stdlib.Buffer.contents b)
    | Ok (Fusion.Fuse { pattern; traffic; fused }) ->
      let unfused = Intra.ma p1 + Intra.ma p2 in
      bprintf b "decision: fuse with pattern %s\n" (Fusion.pattern_name pattern);
      bprintf b "  producer schedule %s\n" (Schedule.to_string fused.Fused.producer);
      bprintf b "  consumer schedule %s\n" (Schedule.to_string fused.Fused.consumer);
      bprintf b "  traffic %s vs %s unfused (%s saved)\n"
        (Fusecu_util.Units.pp_count traffic)
        (Fusecu_util.Units.pp_count unfused)
        (Fusecu_util.Units.pp_pct
           (1. -. (float_of_int traffic /. float_of_int unfused)));
      Ok (Stdlib.Buffer.contents b))
