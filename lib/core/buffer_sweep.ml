open Fusecu_loopnest

type point = { bytes : int; ma : int; nra : Nra.t; redundancy : float }

let run ?(mode = Mode.Exact) ?pool op ~bytes =
  Fusecu_util.Trace.with_span ~cat:"enumerate" "buffer_sweep.run" @@ fun () ->
  let sorted = Array.of_list (Fusecu_util.Arith.dedup_sorted bytes) in
  (* points are independent: optimize each buffer size on its own
     domain; parallel_map preserves the increasing-bytes order *)
  let points =
    Fusecu_util.Pool.parallel_map ?pool ~label:"buffer_sweep.run"
      (fun b ->
        Fusecu_util.Trace.with_span ~cat:"evaluate"
          ~args:[ ("bytes", Fusecu_util.Json.Int b) ]
          "buffer_sweep.point"
        @@ fun () ->
        match Intra.optimize ~mode op (Buffer.make b) with
        | Error _ -> None
        | Ok plan ->
          Some
            { bytes = b;
              ma = Intra.ma plan;
              nra = Nra.class_of plan.dataflow;
              redundancy = Intra.redundancy plan })
      sorted
  in
  List.filter_map Fun.id (Array.to_list points)

let geometric ?(from_bytes = 1024) ?(to_bytes = 32 * 1024 * 1024)
    ?(steps_per_octave = 1) () =
  if from_bytes < 1 || to_bytes < from_bytes || steps_per_octave < 1 then
    invalid_arg "Buffer_sweep.geometric: bad range";
  let ratio = 2. ** (1. /. float_of_int steps_per_octave) in
  let rec build acc value =
    if value > float_of_int to_bytes then List.rev acc
    else build (int_of_float value :: acc) (value *. ratio)
  in
  Fusecu_util.Arith.dedup_sorted (build [] (float_of_int from_bytes))

let transitions points =
  Fusecu_util.Trace.with_span ~cat:"merge" "buffer_sweep.transitions"
  @@ fun () ->
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Nra.equal a.nra b.nra then go rest
      else (b.bytes, a.nra, b.nra) :: go rest
    | [ _ ] | [] -> []
  in
  go points

let check_paper_bands op points =
  let th = Regime.thresholds op in
  let previous_sample bytes =
    List.fold_left
      (fun acc p -> if p.bytes < bytes then max acc p.bytes else acc)
      0 points
  in
  (* The paper's shift points come from continuous analysis; with
     integer (ceil) trip counts the crossover drifts upward, up to about
     a factor of two past Dmin^2/2 for small Dmin. The sound invariants
     are therefore: never shift to Two below Dmin^2/4, the last Single
     sample within twice the band's upper edge, and never shift to Three
     before the smallest tensor fits. *)
  List.for_all
    (fun (bytes, before, after) ->
      match (before, after) with
      | Nra.Single, Nra.Two ->
        bytes > th.tiny_max && previous_sample bytes <= 2 * th.small_max
      | Nra.Two, Nra.Single ->
        (* inside the band either class can win ("for small buffers,
           both Single-NRA and Two-NRA dataflow can be used") *)
        bytes <= 2 * th.small_max
      | (Nra.Single | Nra.Two), Nra.Three -> bytes > th.medium_max
      | _ -> false)
    (transitions points)
