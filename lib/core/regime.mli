(** Buffer-size regimes (paper Sec. III-A4): which NRA class is optimal
    follows directly from the buffer capacity relative to the operator's
    dimension sizes.

    {v
    Tiny:    BS <= Dmin^2/4                  -> Single-NRA
    Small:   Dmin^2/4 < BS <= Dmin^2/2       -> Single- or Two-NRA
    Medium:  Dmin^2/2 < BS <  FP3min         -> Single- or Two-NRA
    Large:   BS >= FP3min                    -> Three-NRA
    v}

    where [FP3min] is the exact integer feasibility threshold of the
    Three-NRA class ({!three_min_footprint}). The paper states the
    Medium/Large boundary asymptotically as [Tensor_min] (the size of
    the smallest tensor); the exact boundary adds the working row and
    column that must sit next to the resident tensor, and using it makes
    the Large prediction ("a Three-NRA dataflow meets the unbounded
    lower bound") hold for every integer buffer size, not just
    asymptotically. Likewise the paper predicts only Two-NRA in the
    Medium band; for small [Dmin] a Single-NRA dataflow can remain
    optimal well past [Dmin^2/2], so {!expected_classes} keeps both
    (differential testing against exhaustive search is what forced both
    refinements — see DESIGN.md Sec. 7c). *)

open Fusecu_tensor
open Fusecu_loopnest

type t = Tiny | Small | Medium | Large

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

type thresholds = {
  tiny_max : int;  (** [Dmin^2 / 4] elements *)
  small_max : int;  (** [Dmin^2 / 2] elements *)
  medium_max : int;  (** [three_min_footprint - 1] elements *)
}

val three_min_footprint : Matmul.t -> int
(** The smallest buffer in which any Three-NRA dataflow fits:
    [min over operands of (size + d1 + d2)] — the resident tensor plus
    one row and one column of the other two. Saturates at [max_int]
    instead of overflowing for absurdly large operators. *)

val thresholds : Matmul.t -> thresholds
(** All three regime boundaries. Overflow-safe: [Dmin^2] saturates at
    [max_int] rather than wrapping negative, so huge operators classify
    as [Tiny]/[Small] for every representable buffer instead of
    misclassifying as [Large]. *)

val classify : Matmul.t -> Buffer.t -> t
(** Which regime a buffer falls into for an operator. *)

val expected_classes : t -> Nra.t list
(** The NRA classes that can be optimal in a regime (exact-integer
    refinement of the paper's asymptotic prediction, validated by the
    differential oracle). *)
