open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type t = Tiny | Small | Medium | Large

let to_string = function
  | Tiny -> "tiny"
  | Small -> "small"
  | Medium -> "medium"
  | Large -> "large"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) b = a = b

type thresholds = { tiny_max : int; small_max : int; medium_max : int }

let three_min_footprint op =
  (* A Three-NRA dataflow keeps one operand fully resident with both of
     its dims untiled and minimizes the remaining tile to 1, so its
     footprint is exactly [size + d1 + d2] (one row and one column of
     the other two tensors alongside the resident one). The cheapest
     choice over the three operands is the exact feasibility threshold
     of the Large regime. *)
  List.fold_left
    (fun acc operand ->
      let d1, d2 = Operand.dims operand in
      let s1 = Matmul.dim op d1 and s2 = Matmul.dim op d2 in
      min acc (Arith.add_sat (Arith.mul_sat s1 s2) (Arith.add_sat s1 s2)))
    max_int Operand.all

let thresholds op =
  let _, dmin = Matmul.min_dim op in
  let dmin2 = Arith.mul_sat dmin dmin in
  { tiny_max = dmin2 / 4;
    small_max = dmin2 / 2;
    medium_max = three_min_footprint op - 1 }

let classify op buf =
  let bs = Buffer.elements buf in
  let t = thresholds op in
  if bs <= t.tiny_max then Tiny
  else if bs <= t.small_max then Small
  else if bs <= t.medium_max then Medium
  else Large

let expected_classes = function
  | Tiny -> [ Nra.Single ]
  | Small -> [ Nra.Single; Nra.Two ]
  | Medium -> [ Nra.Single; Nra.Two ]
  | Large -> [ Nra.Three ]
