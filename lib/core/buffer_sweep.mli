(** Buffer-size sweeps of the principle-based optimizer — the analysis
    behind Fig. 9's x-axis and the regime table's empirical validation.

    A sweep runs the one-shot optimizer at a series of buffer sizes and
    reports, per point, the memory access and the NRA class actually
    chosen; {!transitions} extracts where the class changes, which the
    paper predicts near [Dmin^2/4 .. Dmin^2/2] (Single to Two; integer trip
    counts drift the crossover upward by up to ~2x at small Dmin) and
    at the smallest tensor's size (Two to Three). *)

open Fusecu_tensor

type point = {
  bytes : int;
  ma : int;
  nra : Nra.t;
  redundancy : float;  (** MA over the unbounded lower bound *)
}

val run :
  ?mode:Mode.t -> ?pool:Fusecu_util.Pool.t -> Matmul.t -> bytes:int list
  -> point list
(** Optimize at each buffer size (infeasible points are skipped);
    points are returned in increasing buffer order. Buffer sizes are
    optimized in parallel on the pool (default: the global pool);
    results do not depend on the domain count. *)

val geometric : ?from_bytes:int -> ?to_bytes:int -> ?steps_per_octave:int ->
  unit -> int list
(** A geometric ladder of buffer sizes, default 1 KiB to 32 MiB doubling
    each step ([steps_per_octave = 1]). *)

val transitions : point list -> (int * Nra.t * Nra.t) list
(** Buffer sizes at which the chosen class changes, with the classes on
    either side. *)

val check_paper_bands : Matmul.t -> point list -> bool
(** Whether every observed transition is consistent with the paper's
    regime table: a Single-to-Two shift inside (or adjacent to)
    [\[Dmin^2/4, Dmin^2/2\]] sampling gaps, and the shift into Three-NRA
    no earlier than the smallest tensor fits. Within the Single/Two
    band either class may win (and they may alternate — the paper's
    "small buffer" case); sampling granularity is respected. *)
