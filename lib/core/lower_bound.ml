open Fusecu_tensor

let intra = Matmul.ideal_ma

let chain_unfused = Chain.ideal_ma_unfused

let chain_fused = Chain.ideal_ma_fused

let nest_ideal = Fusecu_nest.Bound.ideal

let achieved op buf mode = Intra.ma (Intra.optimize_exn ~mode op buf)

let redundancy op buf mode =
  float_of_int (achieved op buf mode) /. float_of_int (intra op)
