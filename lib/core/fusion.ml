open Fusecu_tensor
open Fusecu_loopnest
open Fusecu_util

type pattern =
  | P_single_os_is
  | P_two_os_is
  | P_two_untile_shared
  | P_three_untile_m
  | P_three_untile_shared
  | P_three_resident
  | P_block

let all_patterns =
  (* [P_block] last: ties go to the named paper pattern. *)
  [ P_single_os_is; P_two_os_is; P_two_untile_shared; P_three_untile_m;
    P_three_untile_shared; P_three_resident; P_block ]

let pattern_class = function
  | P_single_os_is -> Some Nra.Single
  | P_two_os_is | P_two_untile_shared -> Some Nra.Two
  | P_three_untile_m | P_three_untile_shared | P_three_resident -> Some Nra.Three
  | P_block -> None

let pattern_name = function
  | P_single_os_is -> "single/OS-IS"
  | P_two_os_is -> "two/OS-IS"
  | P_two_untile_shared -> "two/untile-shared"
  | P_three_untile_m -> "three/untile-M"
  | P_three_untile_shared -> "three/untile-shared"
  | P_three_resident -> "three/resident-C"
  | P_block -> "block/C-stationary"

let pp_pattern fmt p = Format.pp_print_string fmt (pattern_name p)

let weaker a b =
  match (a, b) with
  | Nra.Single, _ | _, Nra.Single -> Nra.Single
  | Nra.Two, _ | _, Nra.Two -> Nra.Two
  | Nra.Three, Nra.Three -> Nra.Three

let fused_nra (pair : Fused.pair) (f : Fused.t) =
  weaker
    (Nra.class_of (Nra.classify pair.op1 f.producer))
    (Nra.class_of (Nra.classify pair.op2 f.consumer))

let profitable = Nra.equal

let wiggle = [ -2; -1; 0; 1; 2 ]

let order ~outer ~mid ~inner = Order.make ~outer ~mid ~inner

(* Build a fused dataflow from explicit tile triples; [None] if the
   schedules are invalid or do not fit the buffer. *)
let build pair buf ~t1:(m1, k1, l1) ~o1 ~t2:(m2, k2, l2) ~o2 =
  let { Fused.op1; op2 } = pair in
  let producer = Schedule.make (Tiling.make op1 ~m:m1 ~k:k1 ~l:l1) o1 in
  let consumer = Schedule.make (Tiling.make op2 ~m:m2 ~k:k2 ~l:l2) o2 in
  let fused = { Fused.producer; consumer } in
  match Fused.eval pair fused buf with
  | Ok traffic -> Some (fused, traffic)
  | Error _ -> None

let dedup_fused cands =
  let equal_f (a : Fused.t) (b : Fused.t) =
    Schedule.equal a.producer b.producer && Schedule.equal a.consumer b.consumer
  in
  let rec uniq seen = function
    | [] -> []
    | ((_, f, _) as c) :: rest ->
      if List.exists (equal_f f) seen then uniq seen rest
      else c :: uniq (f :: seen) rest
  in
  uniq [] cands

(* Candidate tile values around a closed-form seed, quantized on a
   dimension of op1. *)
let seeds mode op1 dim base extra =
  let raw = base :: (extra @ List.map (fun w -> base + w) wiggle) in
  let q = List.map (fun t -> Mode.quantize mode op1 dim (max t 1)) raw in
  Arith.dedup_sorted q

let build_pattern mode pair buf p =
  let { Fused.op1; op2 } = pair in
  let bs = Buffer.elements buf in
  let open Dim in
  match p with
  | P_single_os_is ->
    (* Stationary C tile (t_m, t_l); joint footprint t_m*t_l + 2t_m + 2t_l. *)
    let sym = Arith.isqrt (bs + 4) - 2 in
    let partner t = (bs - (2 * t)) / (t + 2) in
    List.filter_map
      (fun tm ->
        let tl = partner tm in
        if tm < 1 || tl < 1 then None
        else begin
          let tl = Mode.quantize mode op1 L tl in
          build pair buf ~t1:(tm, 1, tl)
            ~o1:(order ~outer:M ~mid:L ~inner:K)
            ~t2:(tm, tl, 1)
            ~o2:(order ~outer:M ~mid:K ~inner:L)
        end)
      (seeds mode op1 M sym [ op1.m; partner op1.l ])
  | P_two_os_is ->
    (* Column-like C: one maximized dim t, the other 1; producer untiles
       K1, consumer untiles L2. Two mirrored variants: maximize M, or
       maximize the shared dim L1 = K2. *)
    let budget = (bs - op1.k - op2.l) / (op1.k + op2.l + 1) in
    let via_m =
      List.filter_map
        (fun t ->
          build pair buf ~t1:(t, op1.k, 1)
            ~o1:(order ~outer:M ~mid:L ~inner:K)
            ~t2:(t, 1, op2.l)
            ~o2:(order ~outer:M ~mid:K ~inner:L))
        (seeds mode op1 M budget [])
    in
    let via_shared =
      List.filter_map
        (fun t ->
          build pair buf ~t1:(1, op1.k, t)
            ~o1:(order ~outer:L ~mid:M ~inner:K)
            ~t2:(1, t, op2.l)
            ~o2:(order ~outer:K ~mid:M ~inner:L))
        (seeds mode op1 L budget [])
    in
    via_m @ via_shared
  | P_two_untile_shared ->
    (* Shared dim L1 = K2 untiled on both sides. *)
    let budget = (bs - (2 * op1.l)) / (op1.l + 2) in
    List.filter_map
      (fun t ->
        build pair buf ~t1:(t, 1, op1.l)
          ~o1:(order ~outer:M ~mid:K ~inner:L)
          ~t2:(t, op2.k, 1)
          ~o2:(order ~outer:M ~mid:L ~inner:K))
      (seeds mode op1 M budget [])
  | P_three_untile_m ->
    List.filter_map
      (fun () ->
        build pair buf ~t1:(op1.m, op1.k, 1)
          ~o1:(order ~outer:L ~mid:M ~inner:K)
          ~t2:(op2.m, 1, op2.l)
          ~o2:(order ~outer:K ~mid:M ~inner:L))
      [ () ]
  | P_three_untile_shared ->
    List.filter_map
      (fun () ->
        build pair buf ~t1:(1, op1.k, op1.l)
          ~o1:(order ~outer:M ~mid:K ~inner:L)
          ~t2:(1, op2.k, op2.l)
          ~o2:(order ~outer:M ~mid:K ~inner:L))
      [ () ]
  | P_three_resident ->
    List.filter_map
      (fun () ->
        build pair buf ~t1:(op1.m, 1, op1.l)
          ~o1:(order ~outer:K ~mid:M ~inner:L)
          ~t2:(op2.m, op2.k, 1)
          ~o2:(order ~outer:L ~mid:M ~inner:K))
      [ () ]
  | P_block ->
    (* Generalized C-stationary block family; the six named patterns
       are specific points of it, and it is complete over the valid
       fused-pair space (DESIGN.md Sec. 7c), which is what makes
       [Best_of_both] agree with exhaustive search:
       - a shared C tile (t_m, t_l) with t_m swept over the O(sqrt M)
         trip-aligned tile sizes and t_l maximized under the joint
         footprint (fused traffic is non-increasing in t_l);
       - the producer K tile and consumer L tile influence traffic only
         through "minimal" vs "untiled" (the intermediate is pinned
         non-redundant on both sides, so their trip counts never enter
         a revisit factor), hence (t_k1, t_l2) in {1, K1} x {1, L2};
       - every order pair, validated by [Fused.eval]; only the
         traffic-best order pair per tiling is kept, so the candidate
         list stays O(sqrt M). *)
    let trip_align d t =
      if t >= d then d else Arith.ceil_div d (Arith.ceil_div d t)
    in
    let tm_sweep =
      let r = Arith.isqrt op1.m in
      Arith.dedup_sorted
        (List.concat (List.init r (fun i -> [ i + 1; Arith.ceil_div op1.m (i + 1) ])))
    in
    let minor_pairs =
      List.concat_map
        (fun tk1 -> List.map (fun tl2 -> (tk1, tl2)) (Arith.dedup_sorted [ 1; op2.l ]))
        (Arith.dedup_sorted [ 1; op1.k ])
    in
    List.concat_map
      (fun tm ->
        let tm = Mode.quantize mode op1 M tm in
        List.filter_map
          (fun (tk1, tl2) ->
            let tl = (bs - (tm * (tk1 + tl2))) / (tk1 + tm + tl2) in
            if tl < 1 then None
            else begin
              let tl =
                Mode.quantize mode op1 L (trip_align op1.l (min op1.l tl))
              in
              let best_over_orders =
                List.concat_map
                  (fun o1 ->
                    List.filter_map
                      (fun o2 ->
                        build pair buf ~t1:(tm, tk1, tl) ~o1 ~t2:(tm, tl, tl2) ~o2)
                      Order.all)
                  Order.all
              in
              match best_over_orders with
              | [] -> None
              | first :: rest ->
                Some
                  (List.fold_left
                     (fun ((_, bt) as acc) ((_, t) as c) ->
                       if t < bt then c else acc)
                     first rest)
            end)
          minor_pairs)
      tm_sweep

let candidates ?(mode = Mode.Exact) ?(patterns = all_patterns) pair buf =
  let all =
    List.concat_map
      (fun p ->
        List.map (fun (f, traffic) -> (p, f, traffic)) (build_pattern mode pair buf p))
      patterns
  in
  dedup_fused all

type decision =
  | Fuse of { pattern : pattern; fused : Fused.t; traffic : int }
  | No_fuse of { plan1 : Intra.plan; plan2 : Intra.plan; traffic : int; why : string }

let traffic_of_decision = function
  | Fuse { traffic; _ } -> traffic
  | No_fuse { traffic; _ } -> traffic

type strategy = By_principle | Best_of_both

let best_candidate cands =
  match cands with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun ((_, _, bt) as best) ((_, _, t) as c) -> if t < bt then c else best)
         first rest)

let plan_pair ?(mode = Mode.Exact) ?(strategy = By_principle) pair buf =
  let { Fused.op1; op2 } = pair in
  match (Intra.optimize ~mode op1 buf, Intra.optimize ~mode op2 buf) with
  | Error e, _ | _, Error e -> Error e
  | Ok plan1, Ok plan2 ->
    let unfused_traffic = Intra.ma plan1 + Intra.ma plan2 in
    let no_fuse why = No_fuse { plan1; plan2; traffic = unfused_traffic; why } in
    let decide patterns why_empty =
      match best_candidate (candidates ~mode ~patterns pair buf) with
      | Some (pattern, fused, traffic) when traffic <= unfused_traffic ->
        Fuse { pattern; fused; traffic }
      | Some _ -> no_fuse "fused dataflow moves more data than unfused"
      | None -> no_fuse why_empty
    in
    let c1 = Nra.class_of plan1.dataflow and c2 = Nra.class_of plan2.dataflow in
    (match strategy with
    | By_principle ->
      if not (profitable c1 c2) then
        Ok
          (no_fuse
             (Format.asprintf "Principle 4: %a vs %a dataflow, fusion unprofitable"
                Nra.pp c1 Nra.pp c2))
      else
        (* Principle 4 says to fuse; the fused execution shares the
           buffer between both operators, so its own NRA class may be
           lower than the solo classes — every pattern keeps the two
           sides in the same class, which is all the principle asks. *)
        Ok (decide all_patterns "no feasible fused dataflow")
    | Best_of_both -> Ok (decide all_patterns "no feasible fused dataflow"))

let pp_decision fmt = function
  | Fuse { pattern; traffic; fused } ->
    Format.fprintf fmt "@[<v>fuse [%a] traffic=%s@ producer=%a@ consumer=%a@]"
      pp_pattern pattern
      (Units.pp_count traffic)
      Schedule.pp fused.Fused.producer Schedule.pp fused.Fused.consumer
  | No_fuse { traffic; why; _ } ->
    Format.fprintf fmt "no-fuse traffic=%s (%s)" (Units.pp_count traffic) why
