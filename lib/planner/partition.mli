(** Globally optimal partition of a workload graph into fusion groups.

    A partition is a subset of the graph's {e candidate edges} — the
    dependency edges that are shape- and count-compatible with fusion
    ({!Group.chainable}). Selected edges glue nodes into path-shaped
    groups (each node has at most one fused producer and one fused
    consumer); contracting the groups must leave the dependency graph
    acyclic, or no schedule could order them.

    Each group is priced by the per-group evaluator (the paper's
    principle machinery via {!Fusecu_core.Intra} /
    {!Fusecu_core.Multi_fusion}), plus a re-materialization charge for
    fused intermediates that other consumers still read from DRAM,
    minus an {!Overlap} credit for boundary transfers that
    double-buffering hides behind compute. The objective is the sum of
    effective group costs.

    Chain-shaped regions whose nodes have no other producers or
    consumers are solved exactly by dynamic programming over cut
    points; branchy regions fall back to branch-and-bound over their
    candidate edges. Ties are broken deterministically: the selection
    whose edge-indicator vector is lexicographically smallest (scanning
    edges in ascending id, unselected before selected) wins, so
    cost-neutral fusions are always rejected. {!exhaustive} enumerates
    every subset with the same validity, cost, and tie-break rules and
    is the conformance oracle for {!plan}. *)

open Fusecu_tensor
open Fusecu_core
open Fusecu_loopnest
open Fusecu_workloads

type edge = { id : int; src : Graph.node_id; dst : Graph.node_id }
(** A candidate (fusible) dependency edge. Ids are dense and assigned
    in topological discovery order. *)

type group = {
  members : Graph.node list;  (** path order *)
  count : int;
  traffic : int;
      (** count-scaled elements, including re-materialized
          intermediates read by consumers outside the group *)
  spill : int;  (** count-scaled boundary outputs written to DRAM *)
  hidden : int;  (** the overlap credit, [<= spill] *)
  macs : int;
}

val group_cost : group -> int
(** [traffic - hidden] — the group's contribution to the objective. *)

type stats = {
  candidate_edges : int;
  components : int;
  dp_runs : int;  (** components solved by the DP *)
  dp_states : int;  (** DP cells evaluated *)
  bnb_nodes : int;  (** branch-and-bound decisions explored *)
  bnb_pruned : int;  (** subtrees cut by the cost bound *)
  group_evals : int;  (** distinct group evaluations (cache misses) *)
}

type t = {
  groups : group list;  (** ordered by first member's position *)
  selected : edge list;  (** the chosen fused edges, ascending id *)
  traffic : int;
  hidden : int;
  effective : int;  (** the minimized objective *)
  unfused_traffic : int;  (** all-singleton partition, raw *)
  unfused_effective : int;  (** all-singleton partition, after overlap *)
  stats : stats;
}

type evaluator = Chain.t -> (int, string) result
(** Per-instance traffic of one (possibly merged) operator chain. The
    service supplies a plan-cache-backed evaluator; count scaling and
    the re-materialization / overlap terms are applied by the
    partitioner. *)

val default_evaluator : ?mode:Mode.t -> Buffer.t -> evaluator
(** Single operators via {!Intra.optimize}, longer chains via
    {!Multi_fusion.plan} — exactly the service's uncached compute
    path. [mode] defaults to [Divisors]. *)

val plan :
  ?overlap:Overlap.config ->
  ?mode:Mode.t ->
  ?evaluator:evaluator ->
  Graph.t ->
  Buffer.t ->
  (t, string) result
(** The optimal partition. [Error] if the graph fails
    {!Graph.validate} or any single node is infeasible at this buffer
    size. [mode] (default [Divisors]) is only used when [evaluator] is
    not supplied. *)

type exhaustive_result = {
  best : t;
  partitions : int;  (** subsets enumerated, [2^edges] *)
  valid : int;  (** subsets passing validity + feasibility *)
}

val exhaustive :
  ?overlap:Overlap.config ->
  ?mode:Mode.t ->
  ?evaluator:evaluator ->
  Graph.t ->
  Buffer.t ->
  (exhaustive_result, string) result
(** Ground truth by full enumeration; refuses graphs with more than 20
    candidate edges. [plan] must agree on cost, traffic, and the
    selected edge set. *)
