(** DRAM double-buffering / overlap credit for inter-group transfers.

    Fusing everything is not free (buffer pressure) and fusing nothing
    is not the true baseline either: with double-buffered DRAM queues, a
    group whose compute time exceeds its transfer time can stream its
    boundary tensors (the outputs it spills to DRAM for the next group)
    behind the MAC array. The partitioner therefore minimizes
    {e effective} traffic: raw traffic minus the boundary bytes that
    hide behind compute. The model is a roofline ratio — a group with
    [macs / intensity > traffic] has slack, and up to [slack] of its
    spilled elements are free. *)

type config = {
  intensity : int;
      (** MACs the array retires per element streamed from DRAM; the
          roofline break-even ratio. [<= 0] disables hiding. *)
}

val default : config
(** [intensity = 16] — a 16x16 output-stationary array consuming one
    operand element per cycle per edge retires 16 MACs per streamed
    element at the break-even point. *)

val disabled : config
(** No overlap: effective traffic equals raw traffic. *)

val slack : config -> macs:int -> traffic:int -> int
(** [max 0 (macs / intensity - traffic)] — spare transfer budget (in
    elements) while the group computes; [0] when disabled. *)

val hidden : config -> macs:int -> traffic:int -> spill:int -> int
(** Elements of [spill] (the group's DRAM-bound boundary outputs) that
    double-buffering hides: [min spill (slack ...)]. *)
