type config = { intensity : int }

let default = { intensity = 16 }
let disabled = { intensity = 0 }

let slack { intensity } ~macs ~traffic =
  if intensity <= 0 then 0 else max 0 ((macs / intensity) - traffic)

let hidden config ~macs ~traffic ~spill =
  min spill (slack config ~macs ~traffic)
