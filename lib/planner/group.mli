(** Fusion-group primitives over {!Fusecu_workloads.Graph} nodes.

    A fusion group is a path of graph nodes executed as one merged
    operator chain. Two adjacent nodes can share a group (Principle 4
    territory — the group evaluator decides whether the merged chain is
    actually worth fusing) only when their instance counts match and the
    producer's output tensor is shape-compatible with the consumer's
    left input. *)

open Fusecu_tensor
open Fusecu_workloads

val ops : Graph.node -> Matmul.t list
(** The node's operators in execution order (a singleton for [Op]
    work). *)

val count : Graph.node -> int
(** Instance count of the node's work. *)

val out_elems : Graph.node -> int
(** Elements of the node's output tensor per instance ([m * l] of its
    last operator). *)

val weight_elems : Graph.node -> int
(** Count-scaled elements of the node's stationary [B] operands — a
    lower bound on any schedule's traffic for this node, used for
    branch-and-bound pruning. *)

val node_macs : Graph.node -> int
(** Count-scaled MAC total of the node. *)

val chainable : Graph.node -> Graph.node -> bool
(** [chainable u v]: the dependency edge [u -> v] may be fused —
    instance counts match, [v]'s first operator consumes a tensor of
    exactly [u]'s output shape ([m] rows, [k = u.l]). *)

val merged : Graph.node list -> (Chain.t, string) result
(** The concatenated operator chain of a group path; fails if any link
    violates the chaining constraint. *)
