open Fusecu_tensor
open Fusecu_workloads

let ops (n : Graph.node) =
  match n.Graph.work with
  | Graph.Op { op; _ } -> [ op ]
  | Graph.Chain { chain; _ } -> Chain.ops chain

let count (n : Graph.node) =
  match n.Graph.work with
  | Graph.Op { count; _ } -> count
  | Graph.Chain { count; _ } -> count

let last_op n =
  match List.rev (ops n) with
  | op :: _ -> op
  | [] -> assert false (* Chain.t is non-empty *)

let first_op n = match ops n with op :: _ -> op | [] -> assert false

let out_elems n =
  let op = last_op n in
  op.Matmul.m * op.Matmul.l

let weight_elems n =
  count n
  * List.fold_left
      (fun acc (op : Matmul.t) -> acc + (op.Matmul.k * op.Matmul.l))
      0 (ops n)

let node_macs n =
  count n * List.fold_left (fun acc op -> acc + Matmul.macs op) 0 (ops n)

let chainable u v =
  count u = count v
  &&
  let last = last_op u and first = first_op v in
  first.Matmul.m = last.Matmul.m && first.Matmul.k = last.Matmul.l

let merged members = Chain.make (List.concat_map ops members)
