open Fusecu_tensor
open Fusecu_core
open Fusecu_workloads

type edge = { id : int; src : Graph.node_id; dst : Graph.node_id }

type group = {
  members : Graph.node list;
  count : int;
  traffic : int;
  spill : int;
  hidden : int;
  macs : int;
}

let group_cost g = g.traffic - g.hidden

type stats = {
  candidate_edges : int;
  components : int;
  dp_runs : int;
  dp_states : int;
  bnb_nodes : int;
  bnb_pruned : int;
  group_evals : int;
}

type t = {
  groups : group list;
  selected : edge list;
  traffic : int;
  hidden : int;
  effective : int;
  unfused_traffic : int;
  unfused_effective : int;
  stats : stats;
}

type evaluator = Chain.t -> (int, string) result

let default_evaluator ?(mode = Mode.Divisors) buf chain =
  match Chain.ops chain with
  | [ op ] -> (
    match Intra.optimize ~mode op buf with
    | Ok plan -> Ok (Intra.ma plan)
    | Error _ as e -> e)
  | _ -> (
    match Multi_fusion.plan ~mode chain buf with
    | Ok decision -> Ok (Multi_fusion.traffic_of_decision decision)
    | Error _ as e -> e)

type ctx = {
  nodes : Graph.node list;
  node_of : (Graph.node_id, Graph.node) Hashtbl.t;
  users : (Graph.node_id, Graph.node_id list) Hashtbl.t;
  overlap : Overlap.config;
  evaluator : evaluator;
  (* the stationary-operand floors in the branch-and-bound bound are
     only admissible for the built-in cost semantics; a caller-supplied
     evaluator may price groups below them, so floors are disabled and
     the bound falls back to closed-groups-only (still exact, weaker
     pruning) *)
  floors : bool;
  eval_cache : (Graph.node_id list, (group, string) result) Hashtbl.t;
  mutable group_evals : int;
  mutable dp_states : int;
  mutable bnb_nodes : int;
  mutable bnb_pruned : int;
}

let make_ctx ~overlap ~evaluator ~floors graph =
  let nodes = Graph.nodes graph in
  let node_of = Hashtbl.create 32 in
  let users = Hashtbl.create 32 in
  List.iter
    (fun (n : Graph.node) ->
      Hashtbl.replace node_of n.Graph.id n;
      Hashtbl.replace users n.Graph.id [])
    nodes;
  List.iter
    (fun (n : Graph.node) ->
      List.iter
        (fun d -> Hashtbl.replace users d (Hashtbl.find users d @ [ n.Graph.id ]))
        n.Graph.deps)
    nodes;
  { nodes;
    node_of;
    users;
    overlap;
    evaluator;
    floors;
    eval_cache = Hashtbl.create 64;
    group_evals = 0;
    dp_states = 0;
    bnb_nodes = 0;
    bnb_pruned = 0 }

let users_of ctx id = try Hashtbl.find ctx.users id with Not_found -> []

(* Count-scaled cost of running [members] as one fused group. Traffic
   is the evaluator's schedule for the merged chain plus the
   re-materialized intermediates other consumers still read from DRAM;
   spill is every member output that reaches DRAM, the pool the overlap
   credit draws from. Memoized — the DP, the B&B, and the exhaustive
   oracle all re-price the same paths. *)
let eval_group ctx (members : Graph.node list) =
  let key = List.map (fun (n : Graph.node) -> n.Graph.id) members in
  match Hashtbl.find_opt ctx.eval_cache key with
  | Some r -> r
  | None ->
    let r =
      match Group.merged members with
      | Error e -> Error e
      | Ok chain -> (
        match ctx.evaluator chain with
        | Error e -> Error e
        | Ok per_instance ->
          let count = Group.count (List.hd members) in
          let rec walk remat spill = function
            | [] -> (remat, spill)
            | (n : Graph.node) :: rest ->
              let next =
                match rest with
                | (s : Graph.node) :: _ -> Some s.Graph.id
                | [] -> None
              in
              let external_user =
                List.exists (fun u -> Some u <> next) (users_of ctx n.Graph.id)
              in
              let out = count * Group.out_elems n in
              let remat =
                if next <> None && external_user then remat + out else remat
              in
              let spill =
                if next = None || external_user then spill + out else spill
              in
              walk remat spill rest
          in
          let remat, spill = walk 0 0 members in
          let traffic = (count * per_instance) + remat in
          let macs =
            List.fold_left (fun acc n -> acc + Group.node_macs n) 0 members
          in
          let hidden = Overlap.hidden ctx.overlap ~macs ~traffic ~spill in
          Ok { members; count; traffic; spill; hidden; macs })
    in
    ctx.group_evals <- ctx.group_evals + 1;
    Hashtbl.add ctx.eval_cache key r;
    r

let solo_cost ctx (n : Graph.node) =
  match eval_group ctx [ n ] with
  | Ok g -> group_cost g
  | Error _ -> max_int (* unreachable after the feasibility pass *)

let candidate_edges ctx =
  let pairs =
    List.fold_left
      (fun acc (v : Graph.node) ->
        List.fold_left
          (fun acc d ->
            let u = Hashtbl.find ctx.node_of d in
            if Group.chainable u v then (d, v.Graph.id) :: acc else acc)
          acc v.Graph.deps)
      [] ctx.nodes
  in
  List.mapi (fun id (src, dst) -> { id; src; dst }) (List.rev pairs)

(* --- selections ------------------------------------------------- *)

(* A selection is a bool per candidate edge id. The tie-break order is
   the selection's indicator vector read in ascending edge id with
   unselected < selected, so equal-cost plans prefer cutting the
   earliest edge. Selections are summarized as their ascending id list;
   under that encoding the indicator order is: first differing element
   decides, and the list whose element is LARGER is the smaller
   selection (it leaves the earlier edge unselected). *)
let rec chi_less a b =
  match (a, b) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys -> if x = y then chi_less xs ys else x > y

let better (c1, s1) (c2, s2) = c1 < c2 || (c1 = c2 && chi_less s1 s2)

let sel_to_ids (edges : edge array) sel =
  Array.fold_right (fun e acc -> if sel.(e.id) then e.id :: acc else acc) edges
    []

let groups_of_selection ctx (edges : edge array) sel =
  let succ = Hashtbl.create 16 and pred = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      if sel.(e.id) then begin
        Hashtbl.replace succ e.src e.dst;
        Hashtbl.replace pred e.dst e.src
      end)
    edges;
  let rec walk (n : Graph.node) =
    match Hashtbl.find_opt succ n.Graph.id with
    | Some s -> n :: walk (Hashtbl.find ctx.node_of s)
    | None -> [ n ]
  in
  List.filter_map
    (fun (n : Graph.node) ->
      if Hashtbl.mem pred n.Graph.id then None else Some (walk n))
    ctx.nodes

(* Valid iff every node has at most one fused producer and consumer
   (groups are paths) and contracting the groups leaves the dependency
   graph acyclic — otherwise no execution order of the groups exists. *)
let valid_selection ctx (edges : edge array) sel =
  let out_deg = Hashtbl.create 16 and in_deg = Hashtbl.create 16 in
  let degree_ok = ref true in
  Array.iter
    (fun e ->
      if sel.(e.id) then begin
        if Hashtbl.mem out_deg e.src then degree_ok := false
        else Hashtbl.replace out_deg e.src ();
        if Hashtbl.mem in_deg e.dst then degree_ok := false
        else Hashtbl.replace in_deg e.dst ()
      end)
    edges;
  !degree_ok
  &&
  let groups = groups_of_selection ctx edges sel in
  let n_groups = List.length groups in
  let gid = Hashtbl.create 16 in
  List.iteri
    (fun i members ->
      List.iter (fun (n : Graph.node) -> Hashtbl.replace gid n.Graph.id i) members)
    groups;
  let adj = Array.make n_groups [] in
  let indeg = Array.make n_groups 0 in
  List.iter
    (fun (n : Graph.node) ->
      let gn = Hashtbl.find gid n.Graph.id in
      List.iter
        (fun d ->
          let gd = Hashtbl.find gid d in
          if gd <> gn && not (List.mem gn adj.(gd)) then begin
            adj.(gd) <- gn :: adj.(gd);
            indeg.(gn) <- indeg.(gn) + 1
          end)
        n.Graph.deps)
    ctx.nodes;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    incr processed;
    List.iter
      (fun h ->
        indeg.(h) <- indeg.(h) - 1;
        if indeg.(h) = 0 then Queue.add h queue)
      adj.(g)
  done;
  !processed = n_groups

let cost_of_selection ctx (edges : edge array) sel =
  let rec go acc groups = function
    | [] -> Some (acc, List.rev groups)
    | members :: rest -> (
      match eval_group ctx members with
      | Error _ -> None
      | Ok g -> go (acc + group_cost g) (g :: groups) rest)
  in
  go 0 [] (groups_of_selection ctx edges sel)

(* --- search ----------------------------------------------------- *)

let components (edges : edge array) =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | Some _ -> x
    | None ->
      Hashtbl.replace parent x x;
      x
  in
  Array.iter
    (fun e ->
      let ra = find e.src and rb = find e.dst in
      if ra <> rb then Hashtbl.replace parent ra rb)
    edges;
  let buckets = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun e ->
      let r = find e.src in
      match Hashtbl.find_opt buckets r with
      | None ->
        order := r :: !order;
        Hashtbl.replace buckets r [ e ]
      | Some l -> Hashtbl.replace buckets r (e :: l))
    edges;
  List.rev_map (fun r -> List.rev (Hashtbl.find buckets r)) !order

(* A component is a clean run when its edges form a simple path whose
   links are private: the producer's only user is the consumer and the
   consumer's only dependency is the producer. A group made of such
   links is entered only at its head and left only at its tail, and the
   selected edges are real dependency edges, so any contracted cycle
   through it would be a cycle in the original DAG — impossible. Every
   subset of a clean run is therefore valid and its optimum composes
   with the rest of the graph; the DP below is exact. *)
let clean_run ctx comp =
  let private_link e =
    users_of ctx e.src = [ e.dst ]
    && (Hashtbl.find ctx.node_of e.dst).Graph.deps = [ e.src ]
  in
  if not (List.for_all private_link comp) then None
  else begin
    let succ = Hashtbl.create 8 and has_pred = Hashtbl.create 8 in
    List.iter
      (fun e ->
        Hashtbl.replace succ e.src e;
        Hashtbl.replace has_pred e.dst ())
      comp;
    match List.find_opt (fun e -> not (Hashtbl.mem has_pred e.src)) comp with
    | None -> None (* cannot happen in a DAG *)
    | Some start ->
      let rec walk id =
        match Hashtbl.find_opt succ id with
        | Some e -> e :: walk e.dst
        | None -> []
      in
      let path = walk start.src in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a.id < b.id && ascending rest
        | _ -> true
      in
      if List.length path = List.length comp && ascending path then begin
        let nodes =
          Hashtbl.find ctx.node_of start.src
          :: List.map (fun e -> Hashtbl.find ctx.node_of e.dst) path
        in
        Some (nodes, Array.of_list path)
      end
      else None
  end

(* Exact DP over cut points of a clean run: best.(i) is the optimal
   (cost, selected ids) for the first i nodes; the last group covers
   nodes j..i and the recurrence scans every j. The tie-break composes
   because a prefix's edge ids all precede the last group's. *)
let dp_run ctx run_nodes (run_edges : edge array) =
  let nodes = Array.of_list run_nodes in
  let k = Array.length nodes in
  let best = Array.make (k + 1) None in
  best.(0) <- Some (0, []);
  for i = 1 to k do
    for j = 1 to i do
      match best.(j - 1) with
      | None -> ()
      | Some (pc, ps) -> (
        ctx.dp_states <- ctx.dp_states + 1;
        let members = Array.to_list (Array.sub nodes (j - 1) (i - j + 1)) in
        match eval_group ctx members with
        | Error _ -> ()
        | Ok g ->
          let tail = List.init (i - j) (fun x -> run_edges.(j - 1 + x).id) in
          let cand = (pc + group_cost g, ps @ tail) in
          (match best.(i) with
          | Some cur when not (better cand cur) -> ()
          | _ -> best.(i) <- Some cand))
    done
  done;
  match best.(k) with Some (_, ids) -> ids | None -> []

(* Branch-and-bound over one component's edges (or, in the global
   fallback, all of them). Edges are decided in ascending id with the
   unselected branch first, so selections are enumerated in tie-break
   order and the first incumbent at the optimal cost is the final
   answer. The bound prices fully-decided groups exactly and open
   nodes at their stationary-operand floor minus maximal overlap. *)
let bnb ctx (edges : edge array) comp =
  let search = Array.of_list comp in
  let m = Array.length search in
  let sel = Array.make (Array.length edges) false in
  let comp_nodes = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace comp_nodes e.src ();
      Hashtbl.replace comp_nodes e.dst ())
    comp;
  let last_touch = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      Hashtbl.replace last_touch e.src i;
      Hashtbl.replace last_touch e.dst i)
    search;
  let c0 =
    List.fold_left
      (fun acc (n : Graph.node) ->
        if Hashtbl.mem comp_nodes n.Graph.id then acc else acc + solo_cost ctx n)
      0 ctx.nodes
  in
  let q = ctx.overlap.Overlap.intensity in
  let floor_of (n : Graph.node) =
    if not ctx.floors then 0
    else Group.weight_elems n - (if q > 0 then Group.node_macs n / q else 0)
  in
  let lower_bound idx =
    let succ = Hashtbl.create 8 and pred = Hashtbl.create 8 in
    Array.iter
      (fun e ->
        if sel.(e.id) then begin
          Hashtbl.replace succ e.src e.dst;
          Hashtbl.replace pred e.dst e.src
        end)
      search;
    let decided id =
      match Hashtbl.find_opt last_touch id with
      | Some last -> last < idx
      | None -> true
    in
    let closed = ref 0 and open_floor = ref 0 and infeasible = ref false in
    List.iter
      (fun (n : Graph.node) ->
        if Hashtbl.mem comp_nodes n.Graph.id && not (Hashtbl.mem pred n.Graph.id)
        then begin
          let rec collect id =
            let node = Hashtbl.find ctx.node_of id in
            match Hashtbl.find_opt succ id with
            | Some s -> node :: collect s
            | None -> [ node ]
          in
          let members = collect n.Graph.id in
          if List.for_all (fun (x : Graph.node) -> decided x.Graph.id) members
          then
            match eval_group ctx members with
            | Ok g -> closed := !closed + group_cost g
            | Error _ -> infeasible := true
          else
            List.iter
              (fun x -> open_floor := !open_floor + floor_of x)
              members
        end)
      ctx.nodes;
    if !infeasible then max_int else c0 + !closed + max 0 !open_floor
  in
  let incumbent = ref None in
  let out_used = Hashtbl.create 8 and in_used = Hashtbl.create 8 in
  let rec go idx =
    ctx.bnb_nodes <- ctx.bnb_nodes + 1;
    if idx = m then begin
      if valid_selection ctx edges sel then
        match cost_of_selection ctx edges sel with
        | None -> ()
        | Some (cost, _) -> (
          let cand = (cost, sel_to_ids edges sel) in
          match !incumbent with
          | Some cur when not (better cand cur) -> ()
          | _ -> incumbent := Some cand)
    end
    else begin
      let prune =
        match !incumbent with
        | Some (inc, _) -> lower_bound idx > inc
        | None -> false
      in
      if prune then ctx.bnb_pruned <- ctx.bnb_pruned + 1
      else begin
        go (idx + 1);
        let e = search.(idx) in
        if (not (Hashtbl.mem out_used e.src)) && not (Hashtbl.mem in_used e.dst)
        then begin
          Hashtbl.replace out_used e.src ();
          Hashtbl.replace in_used e.dst ();
          sel.(e.id) <- true;
          go (idx + 1);
          sel.(e.id) <- false;
          Hashtbl.remove out_used e.src;
          Hashtbl.remove in_used e.dst
        end
      end
    end
  in
  go 0;
  match !incumbent with Some (_, ids) -> ids | None -> []

(* --- entry points ----------------------------------------------- *)

let feasibility ctx =
  let rec go = function
    | [] -> Ok ()
    | (n : Graph.node) :: rest -> (
      match eval_group ctx [ n ] with
      | Error e ->
        Error (Printf.sprintf "node %s infeasible: %s" n.Graph.name e)
      | Ok _ -> go rest)
  in
  go ctx.nodes

let assemble ctx (edges : edge array) sel ~components:n_components ~dp_runs =
  match cost_of_selection ctx edges sel with
  | None -> Error "planner: selected an infeasible partition"
  | Some (effective, groups) ->
    let traffic = List.fold_left (fun a (g : group) -> a + g.traffic) 0 groups in
    let hidden = List.fold_left (fun a (g : group) -> a + g.hidden) 0 groups in
    let empty = Array.make (Array.length edges) false in
    (match cost_of_selection ctx edges empty with
    | None -> Error "planner: unfused baseline infeasible"
    | Some (unfused_effective, ugroups) ->
      let unfused_traffic =
        List.fold_left (fun a (g : group) -> a + g.traffic) 0 ugroups
      in
      let selected =
        List.filter (fun e -> sel.(e.id)) (Array.to_list edges)
      in
      Ok
        { groups;
          selected;
          traffic;
          hidden;
          effective;
          unfused_traffic;
          unfused_effective;
          stats =
            { candidate_edges = Array.length edges;
              components = n_components;
              dp_runs;
              dp_states = ctx.dp_states;
              bnb_nodes = ctx.bnb_nodes;
              bnb_pruned = ctx.bnb_pruned;
              group_evals = ctx.group_evals } })

let prepare ~overlap ~mode ~evaluator graph buf =
  let floors = evaluator = None in
  let evaluator =
    match evaluator with
    | Some e -> e
    | None -> default_evaluator ~mode buf
  in
  match Graph.validate graph with
  | Error e -> Error ("invalid graph: " ^ e)
  | Ok () ->
    let ctx = make_ctx ~overlap ~evaluator ~floors graph in
    (match feasibility ctx with Error e -> Error e | Ok () -> Ok ctx)

let plan ?(overlap = Overlap.default) ?(mode = Mode.Divisors) ?evaluator graph
    buf =
  match prepare ~overlap ~mode ~evaluator graph buf with
  | Error e -> Error e
  | Ok ctx ->
    let edges = Array.of_list (candidate_edges ctx) in
    let comps = components edges in
    let sel = Array.make (Array.length edges) false in
    let dp_runs = ref 0 in
    List.iter
      (fun comp ->
        let chosen =
          match clean_run ctx comp with
          | Some (run_nodes, run_edges) ->
            incr dp_runs;
            dp_run ctx run_nodes run_edges
          | None -> bnb ctx edges comp
        in
        List.iter (fun id -> sel.(id) <- true) chosen)
      comps;
    (* Per-component optima can in principle interact through a
       contracted cycle spanning components; clean runs never do, and
       branchy ones almost never. Verify, and on the rare clash rerun
       the branch-and-bound jointly over every candidate edge. *)
    if not (valid_selection ctx edges sel) then begin
      Array.fill sel 0 (Array.length sel) false;
      List.iter (fun id -> sel.(id) <- true) (bnb ctx edges (Array.to_list edges))
    end;
    assemble ctx edges sel ~components:(List.length comps) ~dp_runs:!dp_runs

type exhaustive_result = { best : t; partitions : int; valid : int }

let exhaustive ?(overlap = Overlap.default) ?(mode = Mode.Divisors) ?evaluator
    graph buf =
  match prepare ~overlap ~mode ~evaluator graph buf with
  | Error e -> Error e
  | Ok ctx ->
    let edges = Array.of_list (candidate_edges ctx) in
    let m = Array.length edges in
    if m > 20 then
      Error
        (Printf.sprintf
           "exhaustive partition enumeration: %d candidate edges exceed the 20-edge cap"
           m)
    else begin
      let sel = Array.make m false in
      let best = ref None in
      let valid = ref 0 in
      for mask = 0 to (1 lsl m) - 1 do
        for i = 0 to m - 1 do
          sel.(i) <- mask land (1 lsl i) <> 0
        done;
        if valid_selection ctx edges sel then
          match cost_of_selection ctx edges sel with
          | None -> ()
          | Some (cost, _) -> (
            incr valid;
            let cand = (cost, sel_to_ids edges sel) in
            match !best with
            | Some cur when not (better cand cur) -> ()
            | _ -> best := Some cand)
      done;
      match !best with
      | None -> Error "exhaustive: no valid partition"
      | Some (_, ids) ->
        Array.fill sel 0 m false;
        List.iter (fun id -> sel.(id) <- true) ids;
        (match
           assemble ctx edges sel
             ~components:(List.length (components edges))
             ~dp_runs:0
         with
        | Error e -> Error e
        | Ok best ->
          Ok { best; partitions = 1 lsl m; valid = !valid })
    end
