(** The seven attention-based models of the paper's Table II. *)

val bert : Model.t
val gpt2 : Model.t
val blenderbot : Model.t
val xlm : Model.t
val deberta_v2 : Model.t
val llama2 : Model.t
val albert : Model.t

val llama2_70b_gqa : Model.t
(** A grouped-query-attention variant (64 query heads, 8 KV heads) —
    not part of the paper's Table II, used by the GQA extension
    experiments. *)

val all : Model.t list
(** In the paper's table order (excludes the GQA variant). *)

val find : string -> Model.t option
(** Case-insensitive lookup by name. *)

val nest_cases : (string * Fusecu_nest.Nest.t) list
(** Beyond-matmul workloads as projective nests: conv2d (plain,
    strided, pointwise), per-head batched MM, grouped-query-attention
    scores, and a fused attention score x value pair. Scaled-down
    shapes, sized so the exhaustive Divisors-lattice ground truth
    stays enumerable in benches and tests. *)

val find_nest : string -> Fusecu_nest.Nest.t option
(** Case-insensitive lookup in {!nest_cases}. *)
