(** Dependency graph of a transformer layer's operator work.

    {!Workload} is a bag (enough for traffic totals); the graph adds
    the data dependencies — Q/K/V projections are independent of each
    other, attention needs all three, the FFN follows the output
    projection — so latency can be computed as a critical path over a
    machine that runs independent nodes concurrently, and multi-layer
    models can be stacked. *)

type node_id = int

type work =
  | Op of { op : Fusecu_tensor.Matmul.t; count : int }
  | Chain of { chain : Fusecu_tensor.Chain.t; count : int }

type node = { id : node_id; name : string; work : work; deps : node_id list }

type t

val nodes : t -> node list
(** In a valid topological order (every dependency precedes its
    user). *)

val find : t -> node_id -> node

val of_model : Model.t -> t
(** One encoder layer:
    [wq, wk, wv] (independent) -> attention chain -> [wo] -> FFN
    chain. *)

val stack : t -> layers:int -> t
(** The graph repeated [layers] times, each layer's inputs depending on
    the previous layer's final node. [layers >= 1]. *)

val make : node list -> (t, string) result
(** Build a graph from an explicit node list (topological order).
    Fails with the {!validate} diagnostic if the list is not a valid
    graph. Used by the planner oracle to build arbitrary small DAGs
    outside the {!of_model} shapes. *)

val validate : t -> (unit, string) result
(** Checks dependency references, acyclicity (topological
    consistency), and that no node lists the same dependency twice. *)

val critical_path : t -> cost:(node -> int) -> int
(** Longest dependency chain under the given per-node cost; independent
    nodes overlap fully (an upper bound on achievable parallelism). *)

val sequential : t -> cost:(node -> int) -> int
(** Sum of all node costs — the no-parallelism bound. *)

val total_macs : t -> int

val to_dot : t -> string
(** Graphviz rendering of the dependency structure (one box per node,
    labelled with its MAC count). *)

val pp : Format.formatter -> t -> unit
