let bert = Model.make ~name:"Bert" ~heads:12 ~seq:1024 ~hidden:768 ()

let gpt2 = Model.make ~name:"GPT-2" ~heads:12 ~seq:2048 ~hidden:768 ()

let blenderbot = Model.make ~name:"Blenderbot" ~heads:16 ~seq:256 ~hidden:1024 ()

let xlm = Model.make ~name:"XLM" ~heads:16 ~seq:1024 ~hidden:2048 ()

let deberta_v2 = Model.make ~name:"DeBERTa-v2" ~heads:24 ~seq:1024 ~hidden:1536 ()

let llama2 = Model.make ~name:"LLaMA2" ~heads:32 ~seq:4096 ~hidden:4096 ()

let albert = Model.make ~name:"ALBERT" ~heads:64 ~seq:1024 ~hidden:4096 ()

let llama2_70b_gqa =
  Model.make ~name:"LLaMA2-70B" ~heads:64 ~kv_heads:8 ~seq:4096 ~hidden:8192 ()

let all = [ bert; gpt2; blenderbot; xlm; deberta_v2; llama2; albert ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt
    (fun (m : Model.t) -> String.lowercase_ascii m.name = target)
    all

(* Beyond-matmul cases priced through the projective nest IR. Shapes
   are scaled-down but structurally faithful (ResNet-style conv
   blocks, per-head attention batches, LLaMA2-70B's 8-group GQA, one
   flash-style fused score x value pair); sized so the Divisors-lattice
   exhaustive ground truth stays enumerable in benches and tests. *)
let nest_cases =
  let open Fusecu_nest in
  let conv = Fusecu_tensor.Conv.make in
  [ ("conv3x3", Lower.of_conv (conv ~n:1 ~c:16 ~h:14 ~w:14 ~k:16 ~r:3 ~s:3 ()));
    ("conv3x3-strided",
     Lower.of_conv
       (conv ~stride:2 ~padding:1 ~n:1 ~c:8 ~h:14 ~w:14 ~k:16 ~r:3 ~s:3 ()));
    ("conv1x1", Lower.of_conv (conv ~n:1 ~c:64 ~h:7 ~w:7 ~k:16 ~r:1 ~s:1 ()));
    ("bmm-heads", Lower.batched_mm ~name:"bmm-heads" ~b:12 ~m:64 ~k:64 ~l:64 ());
    ("gqa-scores",
     Lower.grouped_mm ~name:"gqa-scores" ~groups:8 ~heads:8 ~m:64 ~k:64 ~l:64 ());
    ("attn-pair",
     Lower.attention_pair ~name:"attn-pair" ~seq_q:64 ~seq_k:64 ~d:64 ()) ]

let find_nest name =
  let target = String.lowercase_ascii name in
  Option.map snd
    (List.find_opt (fun (n, _) -> String.lowercase_ascii n = target) nest_cases)
