open Fusecu_tensor

type node_id = int

type work =
  | Op of { op : Matmul.t; count : int }
  | Chain of { chain : Chain.t; count : int }

type node = { id : node_id; name : string; work : work; deps : node_id list }

type t = node list (* topological order *)

let nodes t = t

let find t id =
  match List.find_opt (fun n -> n.id = id) t with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Graph.find: no node %d" id)

let of_model (m : Model.t) =
  let w = Workload.of_model m in
  let items = Workload.items w in
  let named suffix =
    List.find_map
      (function
        | Workload.Single_op { op; count } when op.Matmul.name = m.name ^ "." ^ suffix
          ->
          Some (Op { op; count })
        | _ -> None)
      items
  in
  let chain_with pred =
    List.find_map
      (function
        | Workload.Fusable { chain; count } when pred chain ->
          Some (Chain { chain; count })
        | _ -> None)
      items
  in
  let get what = function
    | Some work -> work
    | None -> invalid_arg ("Graph.of_model: missing " ^ what)
  in
  let attention_chain =
    chain_with (fun chain ->
        List.exists
          (fun (op : Matmul.t) -> op.name = m.name ^ ".qk")
          (Chain.ops chain))
  in
  let ffn_chain =
    chain_with (fun chain ->
        List.exists
          (fun (op : Matmul.t) -> op.name = m.name ^ ".ff1")
          (Chain.ops chain))
  in
  [ { id = 0; name = "wq"; work = get "wq" (named "wq"); deps = [] };
    { id = 1; name = "wk"; work = get "wk" (named "wk"); deps = [] };
    { id = 2; name = "wv"; work = get "wv" (named "wv"); deps = [] };
    { id = 3; name = "attention"; work = get "attention" attention_chain;
      deps = [ 0; 1; 2 ] };
    { id = 4; name = "wo"; work = get "wo" (named "wo"); deps = [ 3 ] };
    { id = 5; name = "ffn"; work = get "ffn" ffn_chain; deps = [ 4 ] } ]

let stack t ~layers =
  if layers < 1 then invalid_arg "Graph.stack: layers must be >= 1";
  let size = List.length t in
  let last_id = size - 1 in
  List.concat
    (List.init layers (fun layer ->
         let offset = layer * size in
         List.map
           (fun n ->
             let deps =
               if n.deps = [] && layer > 0 then
                 [ ((layer - 1) * size) + last_id ]
               else List.map (fun d -> d + offset) n.deps
             in
             { n with
               id = n.id + offset;
               name = Printf.sprintf "L%d.%s" layer n.name;
               deps })
           t))

let duplicate_dep deps =
  let rec go = function
    | a :: rest -> if List.mem a rest then Some a else go rest
    | [] -> None
  in
  go deps

let validate t =
  let seen = Hashtbl.create 16 in
  let rec check = function
    | [] -> Ok ()
    | n :: rest -> (
      if Hashtbl.mem seen n.id then
        Error (Printf.sprintf "duplicate node id %d" n.id)
      else if List.exists (fun d -> not (Hashtbl.mem seen d)) n.deps then
        Error
          (Printf.sprintf "node %d (%s) depends on a later or missing node" n.id
             n.name)
      else
        match duplicate_dep n.deps with
        | Some d ->
          Error
            (Printf.sprintf "node %d (%s) lists dependency %d twice" n.id n.name
               d)
        | None ->
          Hashtbl.add seen n.id ();
          check rest)
  in
  check t

let make nodes =
  match validate nodes with Ok () -> Ok nodes | Error e -> Error e

let critical_path t ~cost =
  let finish = Hashtbl.create 16 in
  List.fold_left
    (fun latest n ->
      let ready =
        List.fold_left
          (fun acc d -> max acc (Hashtbl.find finish d))
          0 n.deps
      in
      let done_at = ready + cost n in
      Hashtbl.replace finish n.id done_at;
      max latest done_at)
    0 t

let sequential t ~cost = List.fold_left (fun acc n -> acc + cost n) 0 t

let work_macs = function
  | Op { op; count } -> count * Matmul.macs op
  | Chain { chain; count } -> count * Chain.total_macs chain

let total_macs t = List.fold_left (fun acc n -> acc + work_macs n.work) 0 t

let to_dot t =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph workload {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      Printf.bprintf b "  n%d [shape=box,label=\"%s\\n%s MACs\"];\n" n.id n.name
        (Fusecu_util.Units.pp_count (work_macs n.work));
      List.iter (fun d -> Printf.bprintf b "  n%d -> n%d;\n" d n.id) n.deps)
    t;
  Buffer.add_string b "}\n";
  Buffer.contents b

let pp fmt t =
  Format.pp_print_list
    (fun fmt n ->
      Format.fprintf fmt "%d:%s deps=[%s]" n.id n.name
        (String.concat ";" (List.map string_of_int n.deps)))
    fmt t
